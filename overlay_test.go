package overlay

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPublicAPIEndToEnd exercises the documented user journey: generate,
// solve, audit, simulate, save/load.
func TestPublicAPIEndToEnd(t *testing.T) {
	in := NewUniformInstance(DefaultUniformConfig(2, 6, 12), 5)
	res, err := Solve(in, DefaultSolveOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit.WeightFactor < 0.25-1e-9 {
		t.Fatalf("weight factor %v below guarantee", res.Audit.WeightFactor)
	}
	a := AuditDesign(in, res.Design)
	if a.Cost != res.Audit.Cost {
		t.Fatal("re-audit disagrees with solve audit")
	}
	sr := Simulate(in, res.Design, DefaultSimConfig(2))
	if sr.DemandingSinks != in.NumSinks {
		t.Fatalf("demanding sinks %d, want %d", sr.DemandingSinks, in.NumSinks)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	if err := SaveInstance(in, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSinks != in.NumSinks {
		t.Fatal("round trip lost sinks")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRepair(t *testing.T) {
	in := NewUniformInstance(DefaultUniformConfig(2, 8, 14), 9)
	opts := DefaultSolveOptions(3)
	opts.RepairCoverage = true
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Repair should push most sinks to full demand.
	if res.Audit.MetDemand < res.Audit.Sinks/2 {
		t.Fatalf("repair left %d/%d sinks meeting Φ", res.Audit.MetDemand, res.Audit.Sinks)
	}
}

func TestPublicAPIGreedyAndExact(t *testing.T) {
	in := NewUniformInstance(DefaultUniformConfig(1, 4, 5), 2)
	g, err := GreedyDesign(in)
	if err != nil {
		t.Fatal(err)
	}
	gc := g.Cost(in)
	d, cost, optimal, err := ExactDesign(in, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || !optimal {
		t.Fatal("tiny instance must solve exactly")
	}
	if cost > gc+1e-9 {
		t.Fatalf("exact cost %v above greedy %v", cost, gc)
	}
	removed := ImproveDesign(in, g, 1.0)
	if g.Cost(in) > gc {
		t.Fatalf("Improve raised cost (removed %d)", removed)
	}
}

func TestPublicAPIClusteredColors(t *testing.T) {
	in := NewClusteredInstance(DefaultClusteredConfig(2, 2, 2, 4), 3)
	if in.NumColors != 2 {
		t.Fatal("expected ISP colors")
	}
	res, err := Solve(in, DefaultSolveOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PathRounding {
		t.Fatal("colored instances must use §6.5 path rounding")
	}
}

func TestPublicAPIMacWorld(t *testing.T) {
	in := NewMacWorldInstance(DefaultMacWorldConfig(), 1)
	if in.NumSources != 1 {
		t.Fatal("one keynote stream expected")
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}
