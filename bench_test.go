// Benchmarks regenerating every table and figure of EXPERIMENTS.md (one
// Benchmark per experiment ID), plus micro-benchmarks of the individual
// pipeline stages. Run:
//
//	go test -bench=. -benchmem                 # quick-mode suite
//	go run ./cmd/overlaybench                  # full tables, human-readable
package overlay

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gapflow"
	"repro/internal/gen"
	"repro/internal/live"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/obs"
	"repro/internal/round"
	"repro/internal/sim"
)

// runExp benchmarks one experiment in quick mode, reporting the rendered
// table once under -v via b.Log.
func runExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, e := range exp.All() {
			if e.ID == id {
				tb := e.Run(exp.QuickConfig())
				if i == 0 && testing.Verbose() {
					b.Logf("\n%s", tb.String())
				}
			}
		}
	}
}

func BenchmarkT1EndToEndApprox(b *testing.B)       { runExp(b, "T1") }
func BenchmarkT2RoundingGuarantees(b *testing.B)   { runExp(b, "T2") }
func BenchmarkT3ParameterTradeoff(b *testing.B)    { runExp(b, "T3") }
func BenchmarkF3IntegralityGap(b *testing.B)       { runExp(b, "F3") }
func BenchmarkT4ColorConstraints(b *testing.B)     { runExp(b, "T4") }
func BenchmarkT5LossModel(b *testing.B)            { runExp(b, "T5") }
func BenchmarkT6ISPFailure(b *testing.B)           { runExp(b, "T6") }
func BenchmarkT7Scalability(b *testing.B)          { runExp(b, "T7") }
func BenchmarkT8Baselines(b *testing.B)            { runExp(b, "T8") }
func BenchmarkT9LiveEventScenario(b *testing.B)    { runExp(b, "T9") }
func BenchmarkT10Bandwidth(b *testing.B)           { runExp(b, "T10") }
func BenchmarkT11EdgeCapacities(b *testing.B)      { runExp(b, "T11") }
func BenchmarkT12ChernoffTails(b *testing.B)       { runExp(b, "T12") }
func BenchmarkT13MulticastTree(b *testing.B)       { runExp(b, "T13") }
func BenchmarkT14IngestCaps(b *testing.B)          { runExp(b, "T14") }
func BenchmarkT15CorrelatedOutages(b *testing.B)   { runExp(b, "T15") }
func BenchmarkA1CuttingPlaneAblation(b *testing.B) { runExp(b, "A1") }
func BenchmarkA2GapVsPathRounding(b *testing.B)    { runExp(b, "A2") }
func BenchmarkA3RepairCost(b *testing.B)           { runExp(b, "A3") }
func BenchmarkL1FlashCrowd(b *testing.B)           { runExp(b, "L1") }
func BenchmarkL2DiurnalStickiness(b *testing.B)    { runExp(b, "L2") }
func BenchmarkL3RollingISPOutage(b *testing.B)     { runExp(b, "L3") }
func BenchmarkL4BackboneRepricing(b *testing.B)    { runExp(b, "L4") }
func BenchmarkL5IncrementalRebuild(b *testing.B)   { runExp(b, "L5") }

// TestIncrementalRebuildAcceptance is the incremental-LP-rebuild acceptance
// gate on the 50-epoch flash crowd: warm+sticky epochs must spend at least
// 3x less wall in LP construction (lp-build + lp-patch) than the per-epoch
// full-rebuild baseline, while agreeing with it on every solver-visible
// number (the patched LP is bit-identical to a fresh build, so costs,
// pivots, and churn must match exactly).
func TestIncrementalRebuildAcceptance(t *testing.T) {
	sc := live.FlashCrowd(1, 50)
	// Pin refactorize-on-install in both arms: only the incremental arm keeps
	// lp.Problems alive across epochs, so only it can resume persisted
	// factorizations — letting persistence differ between the arms perturbs
	// near-tie pivot choices by ulps and masks what this test locks (the
	// patched LP being identical to a rebuilt one). Persistence equivalence
	// has its own locks in internal/lp and internal/live/equiv_test.go.
	mkCfg := func(noIncr bool) live.Config {
		cfg := live.Config{Policy: live.WarmStickyPolicy(), NoIncremental: noIncr}
		cfg.Solver.RefactorOnInstall = true
		return cfg
	}
	rebuild, err := live.Run(sc, mkCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	incr, err := live.Run(sc, mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if incr.TotalTrueCost != rebuild.TotalTrueCost || incr.TotalPivots != rebuild.TotalPivots ||
		incr.TotalArcChurn != rebuild.TotalArcChurn || incr.TotalReflectorChurn != rebuild.TotalReflectorChurn {
		t.Fatalf("incremental run diverged from the rebuild baseline: cost %.17g/%.17g pivots %d/%d churn %d/%d",
			incr.TotalTrueCost, rebuild.TotalTrueCost, incr.TotalPivots, rebuild.TotalPivots,
			incr.TotalArcChurn, rebuild.TotalArcChurn)
	}
	if incr.TotalLPRebuilds != 1 {
		t.Fatalf("incremental timeline performed %d full builds, want exactly the epoch-0 one", incr.TotalLPRebuilds)
	}
	baseNS, incrNS := rebuild.LPConstructionNS(), incr.LPConstructionNS()
	speedup := float64(baseNS) / float64(incrNS)
	t.Logf("LP construction over 50 epochs: rebuild %v, incremental %v (%.1fx), %d cells patched",
		time.Duration(baseNS), time.Duration(incrNS), speedup, incr.TotalLPPatches)
	if speedup < 3 {
		t.Fatalf("incremental LP construction only %.2fx faster than rebuild (want >=3x): %d vs %d ns",
			speedup, baseNS, incrNS)
	}
}

// TestPersistentSolverAcceptance is the PR 6 acceptance gate on the
// 50-epoch flash crowd: against the previous solver behavior (Dantzig
// pricing, refactorize at every warm-start install), the current defaults
// (devex pricing, persistent basis factorization) must (1) adopt carried
// factorizations across the warm timeline, (2) perform strictly fewer
// from-scratch refactorizations, (3) spend no more pivots — and the warm
// churn re-solves must stay ≥2x cheaper in pivots than cold re-solves of
// the same timeline under the previous behavior (they are ~14x cheaper;
// the stack of warm starts + persistence + devex is what buys it). The
// epoch wall must also drop: best-of-3 total wall, current vs previous.
func TestPersistentSolverAcceptance(t *testing.T) {
	sc := live.FlashCrowd(1, 50)
	mk := func(prev bool, policy live.Policy) *live.RunReport {
		t.Helper()
		cfg := live.Config{Policy: policy}
		if prev {
			cfg.Solver.Pricing = lp.DantzigPricing
			cfg.Solver.RefactorOnInstall = true
		}
		rep, err := live.Run(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cur := mk(false, live.WarmStickyPolicy())
	prev := mk(true, live.WarmStickyPolicy())
	coldPrev := mk(true, live.ColdPolicy())

	if cur.TotalFTUpdates == 0 {
		t.Fatal("no warm start adopted a persisted factorization across the timeline")
	}
	if prev.TotalFTUpdates != 0 {
		t.Fatal("previous-behavior run adopted factorizations")
	}
	if cur.TotalRefactorizations >= prev.TotalRefactorizations {
		t.Fatalf("persistence saved no refactorizations: %d vs %d",
			cur.TotalRefactorizations, prev.TotalRefactorizations)
	}
	if cur.TotalPivots > prev.TotalPivots {
		t.Fatalf("devex + persistence spent more pivots than the previous solver: %d vs %d",
			cur.TotalPivots, prev.TotalPivots)
	}
	if cur.TotalPivots*2 > coldPrev.TotalPivots {
		t.Fatalf("warm churn re-solves not >=2x cheaper in pivots than previous-solver cold re-solves: %d vs %d",
			cur.TotalPivots, coldPrev.TotalPivots)
	}
	bestWall := func(prev bool) int64 {
		best := int64(0)
		for i := 0; i < 3; i++ {
			if w := mk(prev, live.WarmStickyPolicy()).TotalWallNS; best == 0 || w < best {
				best = w
			}
		}
		return best
	}
	curNS, prevNS := bestWall(false), bestWall(true)
	t.Logf("50-epoch flash crowd: pivots %d vs %d (prev) vs %d (prev cold) | refactorizations %d vs %d | FT updates %d | best wall %v vs %v (%.2fx)",
		cur.TotalPivots, prev.TotalPivots, coldPrev.TotalPivots,
		cur.TotalRefactorizations, prev.TotalRefactorizations, cur.TotalFTUpdates,
		time.Duration(curNS), time.Duration(prevNS), float64(prevNS)/float64(curNS))
	if curNS >= prevNS && !raceEnabled {
		t.Fatalf("epoch wall did not drop: best-of-3 %v (current) vs %v (previous solver)",
			time.Duration(curNS), time.Duration(prevNS))
	}

	// The sharded path must additionally skip sub-instance extraction for
	// every post-build epoch (cached sub-instances patched in place).
	shCfg := live.Config{Policy: live.WarmStickyPolicy()}
	shCfg.Solver.Shards = 3
	sh, err := live.Run(sc, shCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sh.TotalExtractionsSkipped == 0 {
		t.Fatal("sharded timeline never reused a cached sub-instance")
	}
}

// TestObservabilityOverheadAcceptance is the PR 7 acceptance gate: running
// a 20-epoch flash-crowd timeline with the full observability tap on —
// canonical metrics registry plus JSONL tracer — must cost less than 3% of
// epoch wall versus the uninstrumented run. Arms are interleaved 7x and
// each epoch's wall is taken as the minimum across runs before summing, so
// a single GC pause or scheduler preemption in one run cannot poison the
// comparison. Under the race detector the assertion is informational only
// (instrumented atomics distort the ratio).
func TestObservabilityOverheadAcceptance(t *testing.T) {
	const runs = 7
	sc := live.FlashCrowd(1, 20)
	runOnce := func(o *obs.Observer) []int64 {
		t.Helper()
		cfg := live.Config{Policy: live.WarmStickyPolicy(), Obs: o}
		rep, err := live.Run(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		walls := make([]int64, len(rep.Epochs))
		for i, er := range rep.Epochs {
			walls[i] = er.WallNS
		}
		return walls
	}
	mkObs := func() *obs.Observer {
		reg := obs.NewRegistry()
		obs.Canonical(reg)
		return &obs.Observer{Reg: reg, Tr: obs.NewTracer(io.Discard)}
	}
	perEpochMin := func(all [][]int64) int64 {
		total := int64(0)
		for e := range all[0] {
			best := all[0][e]
			for _, walls := range all[1:] {
				if walls[e] < best {
					best = walls[e]
				}
			}
			total += best
		}
		return total
	}
	var off, on [][]int64
	for i := 0; i < runs; i++ {
		off = append(off, runOnce(nil))
		on = append(on, runOnce(mkObs()))
	}
	offNS, onNS := perEpochMin(off), perEpochMin(on)
	ratio := float64(onNS) / float64(offNS)
	t.Logf("20-epoch flash crowd, per-epoch-min wall over %d runs: obs off %v, obs on %v (%.2f%% overhead)",
		runs, time.Duration(offNS), time.Duration(onNS), 100*(ratio-1))
	if ratio > 1.03 && !raceEnabled {
		t.Fatalf("observability overhead %.1f%% exceeds the 3%% budget (off %v, on %v)",
			100*(ratio-1), time.Duration(offNS), time.Duration(onNS))
	}
}

// --- micro-benchmarks of the observability hot paths ---

// BenchmarkObsCounterAdd measures the metrics hot path: one atomic
// float-CAS add on a pre-resolved counter handle.
func BenchmarkObsCounterAdd(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkObsHistogramObserve measures one histogram observation
// (binary-search bucket + two atomics) on a pre-resolved handle.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

// BenchmarkObsLabeledResolve measures the cold path the stage tracker
// takes: resolving a labeled instance through the registry each call.
func BenchmarkObsLabeledResolve(b *testing.B) {
	reg := obs.NewRegistry()
	obs.Canonical(reg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter(obs.MStageRuns, obs.L("stage", "lp-solve")).Inc()
	}
}

// BenchmarkObsSpanStartEnd measures one traced span round trip: start,
// end, append-encode, write (the tracer's whole per-span cost).
func BenchmarkObsSpanStartEnd(b *testing.B) {
	tr := obs.NewTracer(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(nil, "lp-solve", obs.A("shard", 3))
		sp.End()
	}
}

// BenchmarkLiveTimelineWarmObserved is BenchmarkLiveTimelineWarm with the
// full observability tap on — the ratio against the plain benchmark is the
// end-to-end overhead the acceptance test bounds.
func BenchmarkLiveTimelineWarmObserved(b *testing.B) {
	sc := live.FlashCrowd(1, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := obs.NewRegistry()
		obs.Canonical(reg)
		cfg := live.Config{Policy: live.WarmStickyPolicy(),
			Obs: &obs.Observer{Reg: reg, Tr: obs.NewTracer(io.Discard)}}
		if _, err := live.Run(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the pipeline stages ---

// BenchmarkStageLPSolve measures the exact simplex on the §2 relaxation —
// per §5.1 this dominates the end-to-end running time.
func BenchmarkStageLPSolve(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageLPSolveDense solves the same relaxation with the dense
// tableau reference solver — the baseline the sparse revised simplex is
// measured against (BENCH_*.json tracks the ratio across PRs).
func BenchmarkStageLPSolveDense(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := lpmodel.Build(in, lpmodel.DefaultOptions(in))
		if _, err := p.SolveOpts(lp.Options{Dense: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageLPWarmResolve measures a warm-started re-solve of a
// cost-churned instance — the §1.3 monitoring-loop workload.
func BenchmarkStageLPWarmResolve(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	base, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		b.Fatal(err)
	}
	churned := in.Clone()
	for i := 0; i < churned.NumReflectors; i++ {
		for j := 0; j < churned.NumSinks; j++ {
			if (i+j)%3 == 0 {
				churned.RefSinkCost[i][j] *= 1.15
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := lpmodel.DefaultOptions(churned)
		opts.WarmStart = base.Basis
		if _, err := lpmodel.SolveLP(churned, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageRounding measures the §3 randomized rounding alone.
func BenchmarkStageRounding(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round.Apply(in, fs, round.DefaultOptions(uint64(i)))
	}
}

// BenchmarkStageGAPFlow measures the §5 conversion-network rounding alone.
func BenchmarkStageGAPFlow(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		b.Fatal(err)
	}
	r := round.Apply(in, fs, round.DefaultOptions(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gapflow.Round(in, r.XBar)
	}
}

// BenchmarkEndToEndSolve measures the full pipeline.
func BenchmarkEndToEndSolve(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(in, core.DefaultOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveTimelineWarm measures a full 20-epoch flash-crowd timeline
// under the warm+sticky policy — the live engine's steady-state workload.
func BenchmarkLiveTimelineWarm(b *testing.B) {
	sc := live.FlashCrowd(1, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := live.Run(sc, live.Config{Policy: live.WarmStickyPolicy()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveTimelineCold is the same timeline with cold re-solves — the
// ratio against BenchmarkLiveTimelineWarm is the engine's headline speedup.
func BenchmarkLiveTimelineCold(b *testing.B) {
	sc := live.FlashCrowd(1, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := live.Run(sc, live.Config{Policy: live.ColdPolicy()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketSim measures simulator throughput (packets × sinks per op).
func BenchmarkPacketSim(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	res, err := core.Solve(in, core.DefaultOptions(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(1)
	cfg.Packets = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(in, res.Design, cfg)
	}
	b.SetBytes(int64(cfg.Packets * in.NumSinks))
}

// BenchmarkShardedVsMonolithic compares the two solve paths on a 120-sink
// clustered instance (the size keeps the monolithic op affordable for
// -benchtime 1x smoke runs; BENCH_shard.json tracks the scaling story
// through 2000 sinks, where only the sharded path terminates).
func BenchmarkShardedVsMonolithic(b *testing.B) {
	in := gen.Clustered(gen.DefaultClustered(2, 6, 2, 10), 7)
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(in, core.DefaultOptions(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shards-6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := core.DefaultOptions(1)
			opts.Shards = 6
			if _, err := core.Solve(in, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedLiveEpochs measures the sharded re-solve loop: a 10-epoch
// repricing timeline at 3 shards with per-shard warm state.
func BenchmarkShardedLiveEpochs(b *testing.B) {
	sc := live.GradualRepricing(5, 10)
	for i := 0; i < b.N; i++ {
		cfg := live.Config{Policy: live.WarmStickyPolicy()}
		cfg.Solver.Shards = 3
		if _, err := live.Run(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
