// Live event: the §1 MacWorld-keynote scenario. Plans capacity the way the
// paper's introduction does (50,000 viewers, 50 Mbps media servers), designs
// the middle-mile overlay with the approximation algorithm, and validates
// delivered quality with the packet simulator under both smooth and bursty
// loss.
//
//	go run ./examples/liveevent
package main

import (
	"fmt"
	"log"
	"math"

	overlay "repro"
	"repro/internal/sim"
)

func main() {
	cfg := overlay.DefaultMacWorldConfig()

	// --- The §1 capacity arithmetic. ---
	viewers := cfg.EdgeServers * cfg.ViewersPerSink
	aggGbps := float64(viewers) * cfg.StreamKbps / 1e6
	servers := int(math.Ceil(aggGbps * 1000 / cfg.ReflectorMbps))
	fmt.Println("=== server-bottleneck arithmetic (paper §1) ===")
	fmt.Printf("viewers: %d × %.0f kbps = %.1f Gbps aggregate egress\n", viewers, cfg.StreamKbps, aggGbps)
	fmt.Printf("at %.0f Mbps per media server: %d servers, spread across colos\n", cfg.ReflectorMbps, servers)
	fmt.Printf("(the paper's event: 50,000 viewers, 16.5 Gbps peak, hundreds of servers)\n\n")

	// --- Middle-mile overlay design (with the §7 repair pass so every
	// edgeserver reaches the full quality target, not just W/4). ---
	in := overlay.NewMacWorldInstance(cfg, 2)
	opts := overlay.DefaultSolveOptions(11)
	opts.RepairCoverage = true
	res, err := overlay.Solve(in, opts)
	if err != nil {
		log.Fatal(err)
	}
	built := 0
	for _, b := range res.Design.Build {
		if b {
			built++
		}
	}
	fmt.Println("=== overlay design ===")
	fmt.Printf("edgeserver clusters: %d, reflector colos: %d (built %d)\n",
		in.NumSinks, in.NumReflectors, built)
	fmt.Printf("fanout per reflector: %.0f streams (%.0f Mbps / %.0f kbps)\n",
		in.Fanout[0], cfg.ReflectorMbps, cfg.StreamKbps)
	fmt.Printf("design cost %.1f vs LP bound %.1f (ratio %.2f)\n",
		res.Audit.Cost, res.LPCost, res.ApproxRatio())
	fmt.Printf("edgeservers meeting Φ=%.1f%% analytically: %d/%d\n\n",
		cfg.Threshold*100, res.Audit.MetDemand, res.Audit.Sinks)

	// --- Packet-level validation, smooth and bursty. ---
	for _, mode := range []struct {
		name  string
		model sim.LossModel
	}{{"iid loss", sim.IID}, {"bursty loss (Gilbert–Elliott)", sim.GilbertElliott}} {
		scfg := overlay.DefaultSimConfig(5)
		scfg.Packets = 60000
		scfg.Model = mode.model
		r := overlay.Simulate(in, res.Design, scfg)
		fmt.Printf("=== packet simulation: %s ===\n", mode.name)
		fmt.Printf("edgeservers meeting threshold: %d/%d, mean loss %.5f, worst %.5f\n\n",
			r.MeetCount, r.DemandingSinks, r.MeanPostLoss, r.WorstPostLoss)
	}
}
