// Multistream: native multi-stream sinks instead of the paper's copy-split
// WLOG. A clustered network where every sink subscribes to two of three
// streams is solved natively (grouped demand units, shared fanout), the
// optimum is cross-checked against the copy-split expansion, and a
// one-stream switch demonstrates the fractional viewer-churn accounting the
// copies could not express.
//
//	go run ./examples/multistream
package main

import (
	"fmt"
	"log"

	overlay "repro"
	"repro/internal/live"
	"repro/internal/netmodel"
)

func main() {
	// 3 streams, 18 sinks each subscribing to 2 of them = 36 demand units.
	cfg := overlay.DefaultClusteredConfig(3, 3, 3, 6)
	cfg.StreamsPerSink = 2
	cfg.Fanout *= 2 // each sink now pulls two streams
	in := overlay.NewClusteredInstance(cfg, 11)
	fmt.Printf("instance %s: %d streams, %d reflectors, %d demand units across %d multi-stream sinks\n",
		in.Name, in.NumSources, in.NumReflectors, in.NumSinks, in.NumViewers())

	res, err := overlay.Solve(in, overlay.DefaultSolveOptions(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== native design audit ===")
	fmt.Println(res.Audit)
	fmt.Printf("sinks fully served (every subscribed stream met): %d/%d viewers, %d/%d subscriptions\n",
		res.Audit.MetViewers, res.Audit.Viewers, res.Audit.MetDemand, res.Audit.Sinks)

	// The paper's §2 WLOG, executed: splitting each sink into one copy per
	// stream must not change the LP optimum.
	split := in.SplitStreams()
	nat, err := overlay.Solve(in, lpOnly(1))
	if err != nil {
		log.Fatal(err)
	}
	sp, err := overlay.Solve(split, lpOnly(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== copy-split equivalence (the WLOG as a theorem) ===\n")
	fmt.Printf("native LP optimum %.4f | copy-split LP optimum %.4f | equal: %v\n",
		nat.LPCost, sp.LPCost, nat.LPCost == sp.LPCost)

	// Fractional churn: re-pull ONE of a sink's two streams and compare the
	// native accounting against the copy-split view.
	moved := res.Design.Clone()
	lo, _ := in.ViewerRange(0)
	for i := range moved.Serve {
		if moved.Serve[i][lo] { // move viewer 0's first stream elsewhere
			moved.Serve[i][lo] = false
			moved.Serve[(i+1)%in.NumReflectors][lo] = true
			break
		}
	}
	viewers, streams := netmodel.ViewerChurn(in, res.Design, moved)
	sv, _ := netmodel.ViewerChurn(split, res.Design, moved)
	fmt.Printf("\n=== one-stream switch on a 2-stream sink ===\n")
	fmt.Printf("stream switches: %d | native viewer churn: %.2f | copy-split would report: %.2f\n",
		streams, viewers, sv)

	// A short popularity-wave timeline with the live engine: stream
	// subscribe/unsubscribe churn rides the incremental LP patch path.
	sc, err := live.Make("streamwave", 11, 12)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := live.Run(sc, live.Config{Policy: live.WarmStickyPolicy()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== 12-epoch stream popularity wave (warm+sticky, incremental LP) ===\n")
	fmt.Printf("stream switches: %d | viewer churn: %.1f | LP builds: %d | cells patched: %d | all audits ok: %v\n",
		rep.TotalStreamChurn, rep.TotalViewerChurn, rep.TotalLPRebuilds, rep.TotalLPPatches, rep.AllAuditOK)
}

func lpOnly(seed uint64) overlay.SolveOptions {
	o := overlay.DefaultSolveOptions(seed)
	o.LPOnly = true
	return o
}
