// Observability: run a live churn timeline with the full telemetry tap on —
// the canonical metrics registry, the hierarchical solve tracer, and the
// per-epoch hook the overlaylive CLI uses to feed its /healthz and /slo
// endpoints — then render what came out: Prometheus exposition text, the
// per-stage wall quantiles, and a flame summary of the span tree.
//
// The same observer plugged into live.Config here is what
// `overlaylive -listen :8080 -trace run.jsonl` wires up for real serving
// (plus net/http/pprof); obs.NewServer(reg).Handler() is the HTTP side.
//
//	go run ./examples/observability
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/live"
	"repro/internal/obs"
)

func main() {
	// A 16-epoch flash crowd under the warm+sticky policy.
	sc := live.FlashCrowd(7, 16)

	// The observer: one metrics registry (pre-registered with the canonical
	// overlay_* families) and one JSONL tracer. Everything the solve stack
	// records flows through this pair; a nil observer costs nothing and
	// leaves the run byte-identical.
	reg := obs.NewRegistry()
	obs.Canonical(reg)
	var trace bytes.Buffer
	cfg := live.Config{
		Policy: live.WarmStickyPolicy(),
		Obs:    &obs.Observer{Reg: reg, Tr: obs.NewTracer(&trace)},
		OnEpoch: func(er live.EpochReport) {
			// The CLI uses this hook to refresh /healthz and /slo.
			if len(er.Events) > 0 {
				fmt.Printf("epoch %2d: %-38s cost %.1f, %d pivots, SLO window %.0f%%\n",
					er.Epoch, strings.Join(er.Events, "; "), er.TrueCost, er.Pivots, 100*er.SLOWindowFrac)
			}
		},
	}
	rep, err := live.Run(sc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The registry, in Prometheus text exposition format (what /metrics
	// serves). Shown here filtered to the epoch and solver counters.
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== /metrics (excerpt) ===")
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "overlay_epochs_total") ||
			strings.HasPrefix(line, "overlay_solves_total") ||
			strings.HasPrefix(line, "overlay_lp_pivots_total") ||
			strings.HasPrefix(line, "overlay_lp_ft_updates_total") ||
			strings.HasPrefix(line, "overlay_lp_patched_cells_total") ||
			strings.HasPrefix(line, "overlay_slo_window_availability") {
			fmt.Println(line)
		}
	}

	// Per-stage wall quantiles across the timeline (also in the -json
	// report as epoch_wall_quantiles / stage_wall_quantiles).
	fmt.Println("\n=== stage wall quantiles across epochs ===")
	fmt.Printf("%-12s %12s %12s %12s\n", "stage", "p50", "p95", "p99")
	fmt.Printf("%-12s %12v %12v %12v\n", "(epoch)",
		time.Duration(rep.EpochWallQuantiles.P50NS),
		time.Duration(rep.EpochWallQuantiles.P95NS),
		time.Duration(rep.EpochWallQuantiles.P99NS))
	for _, stage := range []string{"lp-patch", "lp-solve", "round", "audit"} {
		if q, ok := rep.StageWallQuantiles[stage]; ok {
			fmt.Printf("%-12s %12v %12v %12v\n", stage,
				time.Duration(q.P50NS), time.Duration(q.P95NS), time.Duration(q.P99NS))
		}
	}

	// The span tree, aggregated into a flame summary: epoch spans at the
	// root, core stages beneath, simplex events (refactorizations, FT
	// adoptions, devex resets) counted per span.
	recs, err := obs.ReadTrace(&trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== flame summary of the solve trace ===")
	fmt.Print(obs.Flame(recs).Render())
}
