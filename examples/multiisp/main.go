// Multi-ISP resilience: the §6.4 color-constraint scenario. Builds two
// designs for the same clustered network — one forcing every sink's copies
// onto distinct ISPs (color constraints), one unconstrained — then fails
// each ISP in turn and compares how many edgeservers keep their quality
// target (the WorldCom-outage drill from §1.2).
//
//	go run ./examples/multiisp
package main

import (
	"fmt"
	"log"

	overlay "repro"
	"repro/internal/reliability"
)

func main() {
	cfg := overlay.DefaultClusteredConfig(2, 3, 3, 6) // 3 regions × 3 ISPs
	in := overlay.NewClusteredInstance(cfg, 4)
	// ISP 0 runs a promotion: its bandwidth is 4× cheaper. A pure
	// cost-optimizer will pile every copy onto ISP 0 — precisely the
	// concentration risk §6.4's constraints exist to prevent.
	for i := 0; i < in.NumReflectors; i++ {
		if in.Color[i] == 0 {
			in.ReflectorCost[i] *= 0.25
			for k := 0; k < in.NumSources; k++ {
				in.SrcRefCost[k][i] *= 0.25
			}
			for j := 0; j < in.NumSinks; j++ {
				in.RefSinkCost[i][j] *= 0.25
			}
		}
	}
	fmt.Printf("network: %d reflector colos across %d ISPs (ISP 0 discounted 4×), %d edgeservers\n\n",
		in.NumReflectors, in.NumColors, in.NumSinks)

	opts := overlay.DefaultSolveOptions(9)
	opts.RepairCoverage = true // top up to full demand so the drill is apples-to-apples
	colored, err := overlay.Solve(in, opts)
	if err != nil {
		log.Fatal(err)
	}
	plainIn := in.Clone()
	plainIn.Color = nil
	plainIn.NumColors = 0
	plain, err := overlay.Solve(plainIn, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %10s %22s\n", "design", "cost", "copies/ISP per sink")
	fmt.Printf("%-28s %10.1f %22s\n", "ISP-diverse (§6.4 colors)", colored.Audit.Cost, "≤ 1 (enforced)")
	fmt.Printf("%-28s %10.1f %22s\n\n", "unconstrained", plain.Audit.Cost, "unbounded")

	fmt.Println("=== ISP outage drill (exact reliability, §1.2 catastrophe model) ===")
	fmt.Println("metric 1: sinks still meeting full Φ; metric 2: sinks still receiving a usable")
	fmt.Println("stream at all (≥1 surviving copy — the paper's \"still serve most of the sinks\")")
	fmt.Printf("%-10s | %-22s | %-22s\n", "failed ISP", "ISP-diverse  Φ / served", "unconstrained Φ / served")
	for isp := 0; isp < in.NumColors; isp++ {
		cPhi, cServed := surviving(in, colored.Design, isp)
		pPhi, pServed := surviving(in, plain.Design, isp)
		fmt.Printf("%-10d | %8d/%d %6d/%d | %8d/%d %6d/%d\n", isp,
			cPhi, in.NumSinks, cServed, in.NumSinks,
			pPhi, in.NumSinks, pServed, in.NumSinks)
	}
	fmt.Println("\nthe diverse design costs more but never blacks out a sink population with one ISP —")
	fmt.Println("exactly the trade the paper's §6.4 constraints buy (WorldCom 10/3/2002, C&W–PSINet de-peering)")
}

// surviving evaluates the design with ISP isp down: sinks still meeting
// their full threshold, and sinks still receiving at least one copy.
func surviving(in *overlay.Instance, d *overlay.Design, isp int) (meetPhi, served int) {
	crippled := d.Clone()
	for i := 0; i < in.NumReflectors; i++ {
		if in.Color[i] == isp {
			for j := 0; j < in.NumSinks; j++ {
				crippled.Serve[i][j] = false
			}
		}
	}
	for j := 0; j < in.NumSinks; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		fail := reliability.SinkFailure(in, crippled, j)
		if 1-fail >= in.Threshold[j]-1e-12 {
			meetPhi++
		}
		if fail < 1 { // at least one copy still flows
			served++
		}
	}
	return
}
