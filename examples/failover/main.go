// Failover loop: the §1.3 operational mode. The paper notes the algorithm
// "can be rerun as often as needed so that the overlay network adapts to
// changes in the link failure probabilities or costs." This example runs
// three epochs: a healthy network, a degradation event (one region's
// transit links turn lossy), and a recomputation that routes around it —
// measuring delivered quality before and after the re-solve.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	overlay "repro"
)

func main() {
	// 3 ISPs: with §6.4 color constraints a sink gets at most one copy
	// per ISP, so 3 ISPs leave enough diversity to survive a region-wide
	// degradation (with 2 the degraded scenario is provably infeasible —
	// an instructive property of the color model in its own right).
	cfg := overlay.DefaultClusteredConfig(2, 3, 3, 6)
	in := overlay.NewClusteredInstance(cfg, 12)

	solveOpts := overlay.DefaultSolveOptions(5)
	solveOpts.RepairCoverage = true

	fmt.Println("=== epoch 1: healthy network, initial design ===")
	res, err := overlay.Solve(in, solveOpts)
	if err != nil {
		log.Fatal(err)
	}
	report(in, res)

	// A degradation event: every link out of reflectors 0..(ISPs-1)
	// (region 0's colos) jumps to 25% loss — a congested/failing transit
	// provider, the middle-mile problem of §1.
	fmt.Println("\n=== epoch 2: region-0 transit degrades to 25% loss, old design still in place ===")
	degraded := in.Clone()
	for i := 0; i < cfg.ISPs; i++ { // region 0's reflectors
		for k := 0; k < degraded.NumSources; k++ {
			degraded.SrcRefLoss[k][i] = 0.25
		}
		for j := 0; j < degraded.NumSinks; j++ {
			degraded.RefSinkLoss[i][j] = 0.25
		}
	}
	// The *old* design on the *new* loss reality:
	oldAudit := overlay.AuditDesign(degraded, res.Design)
	sim := overlay.Simulate(degraded, res.Design, overlay.DefaultSimConfig(3))
	fmt.Printf("old design on degraded network: %d/%d sinks meet Φ (analytic), %d/%d (packet sim)\n",
		oldAudit.MetDemand, oldAudit.Sinks, sim.MeetCount, sim.DemandingSinks)

	fmt.Println("\n=== epoch 3: re-solve with measured losses (the §1.3 loop) ===")
	solveOpts.Seed = 6
	cold, err := overlay.Reoptimize(degraded, res.Design, 0, solveOpts)
	if err != nil {
		log.Fatal(err)
	}
	report(degraded, cold.Result)
	fmt.Printf("cold re-solve: %d service arcs changed\n", cold.ArcChurn)

	sticky, err := overlay.Reoptimize(degraded, res.Design, 0.5, solveOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("churn-aware re-solve (stickiness 0.5): %d arcs changed, cost %.1f (cold %.1f)\n",
		sticky.ArcChurn, sticky.Audit.Cost, cold.Audit.Cost)
	fmt.Printf("quality after sticky re-solve: %d/%d sinks meet Φ\n",
		sticky.Audit.MetDemand, sticky.Audit.Sinks)
}

func report(in *overlay.Instance, res *overlay.SolveResult) {
	fmt.Printf("cost %.1f (LP bound %.1f), weight factor %.2f, sinks meeting Φ analytically: %d/%d\n",
		res.Audit.Cost, res.LPCost, res.Audit.WeightFactor, res.Audit.MetDemand, res.Audit.Sinks)
	sim := overlay.Simulate(in, res.Design, overlay.DefaultSimConfig(8))
	fmt.Printf("packet sim: %d/%d meet Φ, mean post-reconstruction loss %.5f\n",
		sim.MeetCount, sim.DemandingSinks, sim.MeanPostLoss)
}
