// Quickstart: generate a small overlay-design instance, run the paper's
// approximation algorithm, audit the result, and packet-simulate it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	overlay "repro"
)

func main() {
	// A random 2-stream network: 8 reflectors, 16 edgeserver sinks,
	// per-hop loss 0.5%–5%, sink quality targets 95%–99.5%.
	in := overlay.NewUniformInstance(overlay.DefaultUniformConfig(2, 8, 16), 7)

	res, err := overlay.Solve(in, overlay.DefaultSolveOptions(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== design audit ===")
	fmt.Println(res.Audit)
	fmt.Printf("LP lower bound %.2f → integral cost %.2f (ratio %.2f)\n",
		res.LPCost, res.Audit.Cost, res.ApproxRatio())
	fmt.Printf("paper guarantee check: weight factor %.2f ≥ 0.25, fanout factor %.2f ≤ 4\n",
		res.Audit.WeightFactor, res.Audit.FanoutFactor)

	built := 0
	for _, b := range res.Design.Build {
		if b {
			built++
		}
	}
	fmt.Printf("reflectors built: %d/%d\n", built, in.NumReflectors)

	// Validate with the packet-level simulator (10k packets per stream).
	simRes := overlay.Simulate(in, res.Design, overlay.DefaultSimConfig(1))
	fmt.Println("\n=== packet simulation ===")
	fmt.Printf("sinks meeting their threshold: %d/%d\n", simRes.MeetCount, simRes.DemandingSinks)
	fmt.Printf("mean post-reconstruction loss: %.4f (worst sink %.4f)\n",
		simRes.MeanPostLoss, simRes.WorstPostLoss)

	// The approximation promises W/4; operators want W. The §7-style
	// repair pass tops the design up to full demand where capacity admits.
	opts := overlay.DefaultSolveOptions(42)
	opts.RepairCoverage = true
	repaired, err := overlay.Solve(in, opts)
	if err != nil {
		log.Fatal(err)
	}
	simRep := overlay.Simulate(in, repaired.Design, overlay.DefaultSimConfig(1))
	fmt.Println("\n=== with coverage repair (§7 heuristic) ===")
	fmt.Printf("cost %.2f (was %.2f), sinks meeting threshold: %d/%d (analytic %d/%d)\n",
		repaired.Audit.Cost, res.Audit.Cost, simRep.MeetCount, simRep.DemandingSinks,
		repaired.Audit.MetDemand, repaired.Audit.Sinks)
}
