// Package overlay is the public API of this repository: a complete
// implementation of the overlay multicast network design system of
//
//	K. Andreev, B. M. Maggs, A. Meyerson, R. K. Sitaraman.
//	"Designing Overlay Multicast Networks For Streaming", SPAA 2003.
//
// The library designs three-stage overlay networks (sources → reflectors →
// edgeserver sinks, Figure 1 of the paper) that deliver live streams at
// minimum bandwidth cost subject to reflector fanout limits and per-sink
// reliability demands, using the paper's LP-rounding approximation
// algorithm: exact LP relaxation, §3 randomized rounding, and either the §5
// modified-GAP flow rounding or the §6.5 Srinivasan–Teo-style path rounding
// when ISP color constraints (§6.4) or reflector–sink capacities (§6.3) are
// present.
//
// The LP relaxation is solved exactly by a sparse, warm-startable revised
// simplex (internal/lp): the constraint matrix is held in compressed
// column form, the basis inverse as an eta file with periodic
// refactorization, and re-solves of a churned instance (Reoptimize) or of
// branch-and-bound children (ExactDesign) restart from the previous basis
// instead of from scratch. Solve itself runs as an instrumented staged
// pipeline — LP build/solve, rounding, integralization, repair, audit —
// with per-stage wall time and allocation counters in SolveResult.Stages.
//
// At scale, set SolveOptions.Shards ≥ 2: the instance is partitioned into
// commodity-region shards solved as independent small LPs in parallel,
// with an iterative coordination pass reconciling shared reflector fanout
// capacity (internal/shard). The sharded path keeps the paper's audit
// guarantee and, past a few hundred sinks, beats the monolithic solve by
// orders of magnitude — at 2000 sinks the monolithic simplex no longer
// terminates while 8-shard solves finish in seconds (BENCH_shard.json).
//
// A typical use:
//
//	in := overlay.NewClusteredInstance(overlay.DefaultClusteredConfig(2, 3, 2, 8), 1)
//	res, err := overlay.Solve(in, overlay.DefaultSolveOptions(42))
//	if err != nil { ... }
//	fmt.Println(res.Audit)                     // cost + guarantee audit
//	sim := overlay.Simulate(in, res.Design, overlay.DefaultSimConfig(7))
//	fmt.Println(sim.MeanPostLoss)              // packet-level validation
//
// Subsystems (instance model, LP solver, rounding stages, packet simulator,
// baselines, exact IP solver) live under internal/ and are documented there;
// this package re-exports the surface a downstream user needs.
package overlay

import (
	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/greedy"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Instance is a 3-level overlay design problem: the tripartite digraph with
// per-edge loss probabilities and costs, reflector build costs and fanouts,
// per-sink demands, and the §6 extension data (bandwidths, capacities, ISP
// colors). See netmodel.Instance for field documentation.
type Instance = netmodel.Instance

// Design is an integral overlay network: reflectors built, streams
// ingested, and (reflector → sink) service assignments.
type Design = netmodel.Design

// Audit is the constraint-by-constraint evaluation of a Design.
type Audit = netmodel.Audit

// SolveOptions configures the approximation algorithm.
type SolveOptions = core.Options

// SolveResult carries the design plus per-stage diagnostics (LP optimum,
// rounding instrumentation, timings).
type SolveResult = core.Result

// SimConfig configures the packet-level simulator.
type SimConfig = sim.Config

// SimResult reports per-sink post-reconstruction stream quality.
type SimResult = sim.Result

// UniformConfig parameterizes random uniform instances.
type UniformConfig = gen.UniformConfig

// ClusteredConfig parameterizes Akamai-like geo/ISP-clustered instances.
type ClusteredConfig = gen.ClusteredConfig

// MacWorldConfig parameterizes the §1 MacWorld-keynote live-event scenario.
type MacWorldConfig = gen.MacWorldConfig

// DefaultSolveOptions returns the paper's constants (c = 64, up to 8
// re-randomizations on tail events).
func DefaultSolveOptions(seed uint64) SolveOptions { return core.DefaultOptions(seed) }

// Solve runs the full approximation algorithm of the paper on the instance:
// LP relaxation → randomized rounding → GAP or path rounding → audit.
func Solve(in *Instance, opts SolveOptions) (*SolveResult, error) { return core.Solve(in, opts) }

// AuditDesign re-checks any design (from Solve, a baseline, or handwritten)
// against every constraint of the instance.
func AuditDesign(in *Instance, d *Design) Audit { return netmodel.AuditDesign(in, d) }

// ReoptimizeResult is a churn-aware re-solve outcome (§1.3 operations).
type ReoptimizeResult = core.ReoptimizeResult

// Reoptimize re-solves an updated instance while biasing toward the prior
// deployed design (stickiness ∈ [0,1); 0 = cold solve), reporting how many
// service arcs changed — the §1.3 monitoring loop with operational churn
// control.
func Reoptimize(in *Instance, prior *Design, stickiness float64, opts SolveOptions) (*ReoptimizeResult, error) {
	return core.Reoptimize(in, prior, stickiness, opts)
}

// DefaultSimConfig returns a 10k-packet IID simulation configuration.
func DefaultSimConfig(seed uint64) SimConfig { return sim.DefaultConfig(seed) }

// Simulate plays packets through the design and measures the
// post-reconstruction loss at every edgeserver (§1.1 reconstruction:
// dedup, reorder, hole-filling, deadline).
func Simulate(in *Instance, d *Design, cfg SimConfig) *SimResult { return sim.Run(in, d, cfg) }

// DefaultUniformConfig returns a medium-difficulty uniform random instance
// configuration of the given shape.
func DefaultUniformConfig(sources, reflectors, sinks int) UniformConfig {
	return gen.DefaultUniform(sources, reflectors, sinks)
}

// NewUniformInstance draws a uniform random instance.
func NewUniformInstance(cfg UniformConfig, seed uint64) *Instance { return gen.Uniform(cfg, seed) }

// DefaultClusteredConfig returns the Akamai-like clustered topology
// configuration (regions × ISPs colos, skewed viewership).
func DefaultClusteredConfig(sources, regions, isps, sinksPerRegion int) ClusteredConfig {
	return gen.DefaultClustered(sources, regions, isps, sinksPerRegion)
}

// NewClusteredInstance draws a clustered instance; reflector colors are ISPs
// so the §6.4 color constraints are available.
func NewClusteredInstance(cfg ClusteredConfig, seed uint64) *Instance {
	return gen.Clustered(cfg, seed)
}

// DefaultMacWorldConfig returns the live-event scenario with the paper's §1
// numbers (50 Mbps reflectors, ~50k viewers).
func DefaultMacWorldConfig() MacWorldConfig { return gen.DefaultMacWorld() }

// NewMacWorldInstance builds the live-event instance.
func NewMacWorldInstance(cfg MacWorldConfig, seed uint64) *Instance { return gen.MacWorld(cfg, seed) }

// GreedyDesign runs the capacitated multi-cover greedy baseline: hard
// feasibility (never violates fanout or colors), no cost guarantee.
func GreedyDesign(in *Instance) (*Design, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return greedy.Greedy(in).Design, nil
}

// ExactDesign solves the §2 integer program exactly by branch and bound.
// Exponential worst case: use only for tiny instances. The bool reports
// whether optimality was proven within the node limit.
func ExactDesign(in *Instance, nodeLimit int) (*Design, float64, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, false, err
	}
	res, err := bnb.Solve(in, bnb.Options{NodeLimit: nodeLimit})
	if err != nil {
		return nil, 0, false, err
	}
	return res.Design, res.Cost, res.Optimal, nil
}

// ImproveDesign removes redundant assignments from a design while keeping
// every sink at or above keepFactor of its weight demand; returns the number
// of service arcs removed.
func ImproveDesign(in *Instance, d *Design, keepFactor float64) int {
	return greedy.Improve(in, d, keepFactor)
}

// LoadInstance reads an instance from a JSON file; SaveInstance writes one.
func LoadInstance(path string) (*Instance, error) { return netmodel.LoadFile(path) }

// SaveInstance writes the instance to a JSON file.
func SaveInstance(in *Instance, path string) error { return in.SaveFile(path) }
