//go:build race

package overlay

// raceEnabled reports whether the race detector instruments this test
// binary. Wall-clock assertions are skipped under it: instrumentation
// inflates and reorders timings enough to invert real speedups.
const raceEnabled = true
