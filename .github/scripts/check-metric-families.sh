#!/usr/bin/env bash
# Assert a Prometheus text-format dump declares every named metric family.
#
#   check-metric-families.sh METRICS_FILE FAMILY...
#
# On a missing family the whole dump is printed for the job log before
# failing, so the breakage is diagnosable from CI output alone.
set -euo pipefail
file=$1
shift
for m in "$@"; do
  if ! grep -q "^# TYPE $m " "$file"; then
    echo "missing metric family $m" >&2
    cat "$file"
    exit 1
  fi
done
