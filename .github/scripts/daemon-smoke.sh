#!/usr/bin/env bash
# End-to-end smoke of the overlayd provisioning daemon: boot it, stream a
# delta burst at it, check the placement and SLO surfaces, SIGTERM it, and
# restart from the shutdown snapshot asserting the resume is warm —
# byte-identical placement responses across the restart, the persisted
# basis adopted (ft_updates > 0), and fewer refactorizations than the cold
# boot needed. Finally the ingested event log is exported as a scenario
# and replayed through overlaylive.
#
#   daemon-smoke.sh [PORT]
#
# Artifacts (daemon-*.json/.log, placement-*.json) land in the cwd.
set -euo pipefail
PORT=${1:-9151}
BASE="http://127.0.0.1:$PORT"
BASE2="http://127.0.0.1:$((PORT + 1))"

go build -o overlayd ./cmd/overlayd
go build -o overlaylive ./cmd/overlaylive

./overlayd -listen "127.0.0.1:$PORT" -scenario streamwave -seed 7 \
  -snapshot daemon-snap.json -pressure -1 > daemon-run.log 2>&1 &
OD=$!
.github/scripts/wait-http.sh "$BASE/healthz"

# Cold-boot baseline: epoch 0's provisioning solve factorizes from scratch.
curl -sf "$BASE/status" > daemon-cold-status.json
jq -e '.epoch == 0 and .totals.solves == 1 and .last.audit_ok' daemon-cold-status.json
COLD_REFACS=$(jq '.last.refactorizations' daemon-cold-status.json)
test "$COLD_REFACS" -ge 1

# Delta burst — subscription joins plus a fanout change — then force the
# epoch-1 solve and check the placement and SLO read surfaces.
curl -sf -X POST --data-binary @- "$BASE/deltas" <<'EOF'
[
  {"note": "joins", "set_threshold": [{"sink": 0, "value": 0.35}, {"sink": 3, "value": 0.4}]},
  {"note": "fanout", "set_fanout": [{"ref": 0, "value": 6}]}
]
EOF
curl -sf -X POST "$BASE/solve" > daemon-solve1.json
jq -e '.epoch == 1 and .edits == 3 and .audit_ok' daemon-solve1.json

curl -sf "$BASE/placement?sink=0" > placement-pre.json
jq -e '
  .sink == 0 and .epoch == 1
  and (.streams | length) >= 2
  and ([.streams[] | select(.active)] | length) >= 1
  and ([.streams[] | select(.active) | (.reflectors | length) > 0 and .met] | all)
' placement-pre.json
# The verdict itself depends on how many sinks the solver individually
# satisfies (~the 0.5 default target); the smoke pins the surface's shape:
# both breakdown axes populated, the window parameters as configured.
curl -sf "$BASE/slo" > daemon-slo.json
jq -e '
  .window == 8 and .target == 0.5
  and (.streams | length) >= 2
  and (.regions | length) >= 1
  and ([.streams[] | has("frac") and has("window_frac") and has("active_sinks")] | all)
' daemon-slo.json
curl -sf "$BASE/metrics" > daemon-metrics.txt
.github/scripts/check-metric-families.sh daemon-metrics.txt \
  overlay_epochs_total overlay_stream_slo_availability \
  overlay_lp_ft_updates_total overlay_lp_refactorizations_total

kill -TERM "$OD"
wait "$OD"
grep -q "shut down cleanly" daemon-run.log

# Warm restart from the shutdown snapshot.
./overlayd -listen "127.0.0.1:$((PORT + 1))" -scenario streamwave -seed 7 \
  -snapshot daemon-snap.json -resume -pressure -1 > daemon-resume.log 2>&1 &
OD2=$!
.github/scripts/wait-http.sh "$BASE2/healthz"
grep -q "resumed from daemon-snap.json" daemon-resume.log

curl -sf "$BASE2/status" > daemon-resumed-status.json
jq -e '.epoch == 1 and .pending_deltas == 0' daemon-resumed-status.json
curl -sf "$BASE2/placement?sink=0" > placement-post.json
cmp placement-pre.json placement-post.json

curl -sf -X POST "$BASE2/solve" > daemon-solve2.json
jq -e '.epoch == 2 and .audit_ok and .ft_updates > 0 and .lp_rebuilds == 0' daemon-solve2.json
WARM_REFACS=$(jq '.refactorizations' daemon-solve2.json)
test "$WARM_REFACS" -lt "$COLD_REFACS"

# The ingested event log replays as a scenario.
curl -sf "$BASE2/scenario" > daemon-scenario.json
jq -e '.name == "overlayd" and (.events | length) == 2' daemon-scenario.json
./overlaylive -replay daemon-scenario.json -policy warm -json daemon-replay.json
jq -e '[.runs[].all_audit_ok] | all' daemon-replay.json

kill -TERM "$OD2"
wait "$OD2"
echo "daemon smoke passed: cold refactorizations=$COLD_REFACS, warm=$WARM_REFACS"
