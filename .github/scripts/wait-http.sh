#!/usr/bin/env bash
# Poll an HTTP endpoint until it answers 2xx.
#
#   wait-http.sh URL [TRIES] [SLEEP]
#
# Exits 0 as soon as curl succeeds, 1 after TRIES (default 100) attempts
# SLEEP (default 0.2s) apart. Used by the smoke jobs to wait for a
# just-launched server's /healthz before scraping it.
set -euo pipefail
url=$1
tries=${2:-100}
pause=${3:-0.2}
for _ in $(seq 1 "$tries"); do
  if curl -sf "$url" > /dev/null; then
    exit 0
  fi
  sleep "$pause"
done
echo "endpoint $url never came up" >&2
exit 1
