#!/usr/bin/env bash
# Wait for a background process (pid recorded in a file) to exit.
#
#   wait-pid.sh PIDFILE [TRIES] [SLEEP]
#
# Exits 0 once the pid is gone, 1 if it is still alive after TRIES
# (default 240) checks SLEEP (default 0.5s) apart — a hung timeline fails
# the job instead of feeding half-written artifacts to the checks below.
set -euo pipefail
pid=$(cat "$1")
tries=${2:-240}
pause=${3:-0.5}
for _ in $(seq 1 "$tries"); do
  if ! kill -0 "$pid" 2>/dev/null; then
    exit 0
  fi
  sleep "$pause"
done
echo "process $pid still running after $tries checks" >&2
exit 1
