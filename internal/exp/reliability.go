package exp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/stats"
)

// T5LossModel cross-validates the three views of stream quality the paper
// relies on: the closed-form product (§1.3), Monte-Carlo sampling of the
// same model, and the full packet-level simulation with reconstruction
// (§1.1) — across a redundancy curve of 1..5 serving reflectors.
func T5LossModel(cfg Config) *stats.Table {
	t := stats.NewTable("T5 — redundancy curve: post-reconstruction loss vs number of reflectors",
		"copies", "analytic", "Monte-Carlo", "packet sim (IID)", "packet sim (bursty)", "agree?")
	// One stream, identical hops at 5% loss each hop: per-path failure
	// ≈ 0.0975, so m copies ⇒ ≈ 0.0975^m.
	in := netmodel.NewZeroInstance(1, 5, 1)
	for i := 0; i < 5; i++ {
		in.ReflectorCost[i] = 1
		in.Fanout[i] = 10
		in.SrcRefLoss[0][i] = 0.05
		in.RefSinkLoss[i][0] = 0.05
		in.SrcRefCost[0][i] = 1
		in.RefSinkCost[i][0] = 1
	}
	in.Threshold[0] = 0.999
	packets := 400000
	mcTrials := 400000
	if cfg.Quick {
		packets, mcTrials = 60000, 60000
	}
	for copies := 1; copies <= 5; copies++ {
		d := netmodel.NewDesign(in)
		for i := 0; i < copies; i++ {
			d.Serve[i][0] = true
		}
		d.Normalize(in)
		analytic := reliability.SinkFailure(in, d, 0)
		mc := reliability.MonteCarloSinkFailure(in, d, 0, mcTrials, cfg.seed(copies))
		scfg := sim.DefaultConfig(cfg.seed(copies) + 7)
		scfg.Packets = packets
		scfg.DeadlineMs = 1e9
		iid := sim.Run(in, d, scfg).Sinks[0].PostLoss
		scfg.Model = sim.GilbertElliott
		ge := sim.Run(in, d, scfg).Sinks[0].PostLoss
		tol := 6*math.Sqrt(math.Max(analytic, 1e-7)/float64(packets)) + 5e-4
		agree := math.Abs(mc-analytic) <= tol && math.Abs(iid-analytic) <= tol
		t.AddRowf(copies, analytic, mc, iid, ge, yes(agree))
	}
	t.AddNote("per-path failure = p1+p2−p1p2 = %.4f; m copies multiply failures (§1.3)", in.PathFailure(0, 0))
	t.AddNote("bursty (Gilbert–Elliott) runs keep the same average loss per link; §1.3 allows within-link correlation")
	t.AddNote("MinReflectorsFor(0.0975, 0.999) = %d — the planning rule the redundancy curve justifies",
		reliability.MinReflectorsFor(in.PathFailure(0, 0), 0.999))
	return t
}

// T12ChernoffTails validates Theorem 4.2 / Appendix A: empirical tails of
// sums of independent [0,1] variables never exceed the stated bounds.
func T12ChernoffTails(cfg Config) *stats.Table {
	t := stats.NewTable("T12 — Hoeffding–Chernoff tails (Theorem 4.2): empirical vs bound",
		"n", "δ", "P(S≤(1−δ)µ) emp", "bound e^(−δ²µ/2)", "P(S≥(1+δ)µ) emp", "bound e^(−δ²µ/3)", "dominated?")
	trials := 200000
	if cfg.Quick {
		trials = 30000
	}
	for _, n := range []int{20, 60, 120} {
		for _, delta := range []float64{0.1, 0.25, 0.5} {
			mu := float64(n) / 2
			lo, hi := reliability.EmpiricalTail(n, delta, trials, cfg.seed(n*7+int(delta*100)))
			bl := reliability.HoeffdingChernoffLower(mu, delta)
			bh := reliability.HoeffdingChernoffUpper(mu, delta)
			t.AddRowf(n, delta, lo, bl, hi, bh, yes(lo <= bl+3e-3 && hi <= bh+3e-3))
		}
	}
	t.AddNote("S = sum of n i.i.d. U[0,1]; µ = n/2; %d trials per cell", trials)
	return t
}

// T7Scalability measures running time against LP size (§5.1: total running
// time equals solving an LP with O(|S||R||D|) variables and constraints).
func T7Scalability(cfg Config) *stats.Table {
	t := stats.NewTable("T7 — running-time scaling (§5.1: the LP solve dominates)",
		"S×R×D", "LP vars", "LP rows", "pivots", "LP time", "round time", "integralize time", "LP share")
	type size struct{ s, r, d int }
	sizes := []size{{1, 4, 8}, {2, 6, 12}, {2, 8, 20}, {3, 10, 28}, {3, 12, 40}, {4, 14, 60}}
	if cfg.Quick {
		sizes = []size{{1, 4, 8}, {2, 6, 12}}
	}
	for _, sz := range sizes {
		in := gen.Uniform(gen.DefaultUniform(sz.s, sz.r, sz.d), cfg.seed(sz.r*100+sz.d))
		start := time.Now()
		res, err := core.Solve(in, core.DefaultOptions(cfg.seed(3)))
		if err != nil {
			t.AddRow(fmt.Sprintf("%d×%d×%d", sz.s, sz.r, sz.d), "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		total := time.Since(start)
		share := float64(res.Timings.LP) / float64(total) * 100
		t.AddRowf(fmt.Sprintf("%d×%d×%d", sz.s, sz.r, sz.d),
			res.Timings.TotalVars, res.Timings.TotalRows, res.Timings.LPPivots,
			res.Timings.LP.Round(time.Microsecond).String(),
			res.Timings.Rounding.Round(time.Microsecond).String(),
			res.Timings.Integral.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f%%", share))
	}
	t.AddNote("the LP has Θ(R·D) variables here because each split sink demands one commodity (§2 WLOG)")
	t.AddNote("solved by the sparse revised simplex (CSC columns, eta-file basis inverse, ≈2.5× the")
	t.AddNote("dense tableau on 2×8×20); §5.1's conclusion (deployable, LP-bound) holds throughout")
	return t
}

// T9LiveEvent reproduces the §1 capacity-planning arithmetic of the
// MacWorld'02 keynote and then designs + packet-simulates the overlay.
func T9LiveEvent(cfg Config) *stats.Table {
	mw := gen.DefaultMacWorld()
	t := stats.NewTable("T9 — MacWorld'02-class live event (§1 motivation)",
		"quantity", "value", "paper reference")
	viewers := mw.EdgeServers * mw.ViewersPerSink
	aggGbps := float64(viewers) * mw.StreamKbps / 1e6
	serversNeeded := int(math.Ceil(aggGbps * 1000 / 50))
	t.AddRowf("simultaneous viewers", viewers, "~50,000 (Jan 2002 keynote)")
	t.AddRowf("aggregate egress (Gbps)", aggGbps, "16.5 Gbps peak in the paper's event")
	t.AddRowf("50 Mbps media servers needed", serversNeeded, "\"hundreds of servers\" (§1)")

	in := gen.MacWorld(mw, cfg.seed(2))
	res, err := core.Solve(in, core.DefaultOptions(cfg.seed(4)))
	if err != nil {
		t.AddNote("solve failed: %v", err)
		return t
	}
	ropts := core.DefaultOptions(cfg.seed(4))
	ropts.RepairCoverage = true
	deployed, err := core.Solve(in, ropts)
	if err != nil {
		t.AddNote("repair solve failed: %v", err)
		return t
	}
	built := 0
	for _, b := range deployed.Design.Build {
		if b {
			built++
		}
	}
	t.AddRowf("reflectors built / available", fmt.Sprintf("%d/%d", built, in.NumReflectors), "middle-mile overlay (§1.1)")
	t.AddRowf("raw design: cost/LP, Φ met", fmt.Sprintf("%.3f, %d/%d", res.ApproxRatio(), res.Audit.MetDemand, res.Audit.Sinks), "paper guarantee: weight ≥ W/4")
	t.AddRowf("deployed (repaired): cost/LP, Φ met", fmt.Sprintf("%.3f, %d/%d", deployed.ApproxRatio(), deployed.Audit.MetDemand, deployed.Audit.Sinks), "§7 heuristic tops up to full Φ")

	scfg := sim.DefaultConfig(cfg.seed(6))
	scfg.Packets = 120000
	if cfg.Quick {
		scfg.Packets = 20000
	}
	simRes := sim.Run(in, deployed.Design, scfg)
	t.AddRowf("edgeservers meeting Φ (packet sim)", fmt.Sprintf("%d/%d", simRes.MeetCount, simRes.DemandingSinks), "reconstruction of §1.1")
	t.AddRowf("mean post-reconstruction loss", simRes.MeanPostLoss, "loss threshold model (§1.2)")
	t.AddRowf("worst-sink post-reconstruction loss", simRes.WorstPostLoss, "quality goal Φ=99.9% ⇒ ≤ 0.001")
	return t
}
