package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs the entire suite in quick mode and asserts
// every table renders with at least one data row and no "NO" verdict in the
// columns that certify a paper bound.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(cfg)
			if tb == nil {
				t.Fatal("nil table")
			}
			out := tb.String()
			if len(tb.Rows) == 0 {
				t.Fatalf("no rows:\n%s", out)
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestF3ExactValues(t *testing.T) {
	tb := F3IntegralityGap()
	out := tb.String()
	if strings.Contains(out, "NO") {
		t.Fatalf("figure-3 reproduction mismatch:\n%s", out)
	}
	if !strings.Contains(out, "3.5") {
		t.Fatalf("fractional 3.5 missing:\n%s", out)
	}
}

func TestT12BoundsHold(t *testing.T) {
	tb := T12ChernoffTails(QuickConfig())
	if strings.Contains(tb.String(), "NO") {
		t.Fatalf("Chernoff bound violated empirically:\n%s", tb.String())
	}
}

func TestT1GuaranteesHold(t *testing.T) {
	tb := T1EndToEndApprox(QuickConfig())
	if strings.Contains(tb.String(), "NO") {
		t.Fatalf("end-to-end guarantee violated:\n%s", tb.String())
	}
}

// TestLSeriesClaimsHold runs the live-engine experiments and asserts every
// certified claim column reports YES (audits pass, warm speedup floor met,
// churn monotone in stickiness).
func TestLSeriesClaimsHold(t *testing.T) {
	cfg := QuickConfig()
	for _, e := range All() {
		if !strings.HasPrefix(e.ID, "L") {
			continue
		}
		tb := e.Run(cfg)
		if strings.Contains(tb.String(), "NO") {
			t.Fatalf("%s claim violated:\n%s", e.ID, tb.String())
		}
	}
}
