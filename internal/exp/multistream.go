package exp

import (
	"fmt"
	"math"

	"repro/internal/live"
	"repro/internal/lpmodel"
	"repro/internal/stats"
)

// L6MultiStream measures what native multi-stream sinks buy over the
// paper's copy-split WLOG on the stream-churn scenarios: the LP optimum is
// identical (the golden harness locks it; the table re-verifies on each
// base), but the ACCOUNTING differs — the copy-split view charges a full
// viewer leave+join for every stream toggle, while the native model counts
// the real sink fractionally. The overcount column is the factor by which
// the WLOG view would have exaggerated viewer churn, and the patch columns
// show stream churn riding the incremental LP path (one build, the rest
// patches).
func L6MultiStream(cfg Config) *stats.Table {
	t := stats.NewTable("L6 — multi-stream sinks: native vs copy-split accounting",
		"scenario", "epochs", "units/viewers", "Σstream switch", "Σviewer churn", "overcount",
		"Σpatches", "rebuilds", "lp ≡ split", "all audits ok")
	epochs := liveEpochs(cfg)
	for _, name := range []string{"streamwave", "streamfailover"} {
		sc, err := live.Make(name, cfg.seed(6), epochs)
		if err != nil {
			t.AddNote("%s: %v", name, err)
			continue
		}
		rep, err := live.Run(sc, live.Config{Policy: live.WarmStickyPolicy()})
		if err != nil {
			t.AddNote("%s failed: %v", name, err)
			continue
		}
		// Re-verify the WLOG theorem on this base: the native LP optimum
		// must equal the copy-split optimum.
		equal := false
		if nat, err := lpmodel.SolveLP(sc.Base, lpmodel.DefaultOptions(sc.Base)); err == nil {
			split := sc.Base.SplitStreams()
			if sp, err := lpmodel.SolveLP(split, lpmodel.DefaultOptions(split)); err == nil {
				equal = math.Abs(nat.Cost-sp.Cost) <= 1e-9*(1+math.Abs(sp.Cost))
			}
		}
		overcount := "-"
		if rep.TotalViewerChurn > 0 {
			overcount = fmt.Sprintf("%.1fx", float64(rep.TotalStreamChurn)/rep.TotalViewerChurn)
		}
		t.AddRowf(name, epochs,
			fmt.Sprintf("%d/%d", sc.Base.NumSinks, sc.Base.NumViewers()),
			rep.TotalStreamChurn, rep.TotalViewerChurn, overcount,
			rep.TotalLPPatches, rep.TotalLPRebuilds, yes(equal), yes(rep.AllAuditOK))
	}
	t.AddNote("the copy-split WLOG charges one full viewer per stream toggle; native accounting charges the moved fraction of the real sink")
	t.AddNote("stream subscribe/unsubscribe events reach the LP as in-place covering-row patches — the single rebuild is epoch 0")
	return t
}
