package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

// The S-series experiments validate the sharded solve path (internal/shard):
// one LP per commodity-region shard solved in parallel, reconciled by the
// capacity-coordination pass. S1 measures what sharding buys (and costs) at
// a fixed size, S2 how the gap grows with the sink population — the
// monolithic simplex is superlinear in model size, so the speedup compounds
// — and S3 how the coordination pass behaves when reflector capacity is
// actually scarce. cmd/overlaybench -shardjson runs the extended S2 sweep
// (through 2000 sinks, where the monolithic solver no longer terminates)
// and records it in BENCH_shard.json.

// shardTopo returns the S-series workload: a clustered topology sized so
// the monolithic reference solve stays affordable inline.
func shardTopo(cfg Config) (gen.ClusteredConfig, uint64) {
	if cfg.Quick {
		return gen.DefaultClustered(2, 6, 2, 10), cfg.seed(0) // D=120
	}
	return gen.DefaultClustered(2, 8, 2, 25), cfg.seed(0) // D=200
}

func auditOf(res *core.Result) (string, bool) {
	ok := res.AuditOK()
	return yes(ok), ok
}

// S1ShardedVsMonolithic sweeps the shard count on one instance: wall clock,
// total pivots, audited cost, and the cost ratio against the monolithic
// solve. The acceptance claim is ≥2x wall speedup at 8 shards with the cost
// ratio inside the property-tested 1.30x bound (in practice it hovers
// around 1x: what sharding loses to split capacity, consolidation wins back
// by deduplicating builds).
func S1ShardedVsMonolithic(cfg Config) *stats.Table {
	t := stats.NewTable("S1 — sharded vs monolithic: cost / wall / pivots by shard count",
		"shards", "wall", "Σpivots", "ΣLP vars", "cost", "vs mono", "rounds", "audit ok")
	cc, seed := shardTopo(cfg)
	in := gen.Clustered(cc, seed)

	var monoWall time.Duration
	var monoCost float64
	speedOK, costOK := false, true
	for _, k := range []int{1, 2, 4, 8} {
		opts := core.DefaultOptions(seed)
		opts.Shards = k
		start := time.Now()
		res, err := core.Solve(in, opts)
		if err != nil {
			t.AddNote("shards=%d failed: %v", k, err)
			continue
		}
		wall := time.Since(start)
		okStr, _ := auditOf(res)
		if k == 1 {
			monoWall, monoCost = wall, res.Audit.Cost
			t.AddRowf("1 (mono)", wall.Round(time.Millisecond).String(), res.Timings.LPPivots,
				res.Timings.TotalVars, res.Audit.Cost, "1.000x", "-", okStr)
			continue
		}
		ratio := res.Audit.Cost / monoCost
		if k == 8 {
			speedOK = wall*2 <= monoWall
		}
		if ratio > 1.30 {
			costOK = false
		}
		t.AddRowf(k, wall.Round(time.Millisecond).String(), res.Timings.LPPivots,
			res.Timings.TotalVars, res.Audit.Cost, fmt.Sprintf("%.3fx", ratio),
			res.ShardInfo.Rounds, okStr)
	}
	t.AddRow("8-shard ≥2x?", "", "", "", "", "", "", yes(speedOK))
	t.AddNote("claim: 8 shards beat the monolithic wall ≥2x with cost within 1.30x (cost bound held: %s)", yes(costOK))
	t.AddNote("instance %s: |D|=%d sinks, |R|=%d reflectors", in.Name, in.NumSinks, in.NumReflectors)
	return t
}

// S2ScalingWithSinks grows the sink population at a fixed 8-shard split and
// compares walls. The monolithic wall grows superlinearly (it is skipped
// above a budget rather than silently truncating the table); the sharded
// wall grows roughly linearly in the number of shards times the per-shard
// LP cost. The extended sweep through 2000 sinks lives in overlaybench
// -shardjson / BENCH_shard.json, where the monolithic solver's failure at
// scale is recorded with a deadline proof instead of an open-ended wait.
func S2ScalingWithSinks(cfg Config) *stats.Table {
	t := stats.NewTable("S2 — wall-clock scaling with sink count (8 shards)",
		"sinks", "mono wall", "sharded wall", "speedup", "cost vs mono", "audit ok")
	sizes := []int{15, 30} // sinks per region; regions×isps = 8 reflectors
	if !cfg.Quick {
		sizes = []int{15, 30, 45}
	}
	const monoBudgetSinks = 400 // above this the inline mono solve is minutes
	for _, spr := range sizes {
		cc := gen.DefaultClustered(2, 4, 2, spr)
		in := gen.Clustered(cc, cfg.seed(1))
		opts := core.DefaultOptions(cfg.seed(1))
		opts.Shards = 8
		start := time.Now()
		sharded, err := core.Solve(in, opts)
		if err != nil {
			t.AddNote("sharded D=%d failed: %v", in.NumSinks, err)
			continue
		}
		shardWall := time.Since(start)
		okStr, _ := auditOf(sharded)
		if in.NumSinks > monoBudgetSinks {
			t.AddRowf(in.NumSinks, "skipped (budget)", shardWall.Round(time.Millisecond).String(),
				"-", "-", okStr)
			continue
		}
		start = time.Now()
		mono, err := core.Solve(in, core.DefaultOptions(cfg.seed(1)))
		if err != nil {
			t.AddNote("mono D=%d failed: %v", in.NumSinks, err)
			continue
		}
		monoWall := time.Since(start)
		t.AddRowf(in.NumSinks, monoWall.Round(time.Millisecond).String(),
			shardWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(monoWall)/float64(shardWall)),
			fmt.Sprintf("%.3fx", sharded.Audit.Cost/mono.Audit.Cost), okStr)
	}
	t.AddNote("monolithic solves above %d sinks are skipped by budget, not measured as 0 — see BENCH_shard.json for the 2000-sink run", monoBudgetSinks)
	return t
}

// S3CoordinationUnderScarcity shrinks reflector fanouts toward the bare
// minimum and watches the coordination pass work: with ample capacity the
// initial affinity split is final (0 rounds); as capacity tightens, shards
// saturate their allocations and the re-bid/re-solve machinery engages.
// Every design must still pass the audit, and the cost ratio to the
// monolithic solve must stay inside the property bound.
func S3CoordinationUnderScarcity(cfg Config) *stats.Table {
	t := stats.NewTable("S3 — coordination under capacity scarcity (4 shards)",
		"fanout scale", "rounds", "re-solves", "consolidated", "cost vs mono", "Σpivots", "audit ok")
	cc, seed := shardTopo(cfg)
	base := cc.Fanout
	for _, scale := range []float64{1.0, 0.7, 0.5} {
		cc.Fanout = int(float64(base)*scale + 0.5)
		in := gen.Clustered(cc, seed)
		mono, err := core.Solve(in, core.DefaultOptions(seed))
		if err != nil {
			t.AddRowf(fmt.Sprintf("%.2f", scale), "-", "-", "-", "-", "-", "infeasible for mono too: "+yes(false))
			continue
		}
		opts := core.DefaultOptions(seed)
		opts.Shards = 4
		res, err := core.Solve(in, opts)
		if err != nil {
			t.AddNote("scale %.2f sharded failed: %v", scale, err)
			continue
		}
		okStr, _ := auditOf(res)
		si := res.ShardInfo
		fb := ""
		if si.Fallback {
			fb = " (FELL BACK)"
		}
		t.AddRowf(fmt.Sprintf("%.2f", scale), si.Rounds, si.Resolves, si.ConsolidatedBuilds,
			fmt.Sprintf("%.3fx%s", res.Audit.Cost/mono.Audit.Cost, fb),
			res.Timings.LPPivots, okStr)
	}
	t.AddNote("fanout scale 1.0 ≈ 3 service slots per sink; 0.5 leaves barely enough for double coverage")
	t.AddNote("coordination re-allocates slack capacity only (it never displaces live service), so at knife-edge scarcity it falls back to the monolithic solve — the honest safety valve, reported per row")
	return t
}
