package exp

import (
	"fmt"

	"repro/internal/live"
	"repro/internal/stats"
)

// The L-series experiments exercise the live churn engine (internal/live):
// where the T-series validates the paper's static guarantees, the L-series
// validates the §1.3 monitoring loop — repeated incremental re-provisioning
// under timed churn — and quantifies what warm-started sticky re-solves buy
// over cold ones across whole timelines rather than a single re-solve.

// liveEpochs picks the timeline length: full runs use 40 epochs, quick runs
// 12 (enough for every scenario to fire its events at least once).
func liveEpochs(cfg Config) int {
	if cfg.Quick {
		return 12
	}
	return 40
}

// runPolicies drives one scenario under cold and warm+sticky and returns
// both reports.
func runPolicies(sc *live.Scenario) (cold, warm *live.RunReport, err error) {
	reps, err := live.ComparePolicies(sc,
		[]live.Policy{live.ColdPolicy(), live.WarmStickyPolicy()}, live.Config{})
	if err != nil {
		return nil, nil, err
	}
	return reps[0], reps[1], nil
}

// addPolicyRow renders one policy's totals as a table row.
func addPolicyRow(t *stats.Table, rep *live.RunReport) {
	t.AddRowf(rep.Policy.Name, len(rep.Epochs), rep.TotalPivots, rep.TotalArcChurn,
		rep.TotalReflectorChurn, rep.TotalTrueCost, yes(rep.AllAuditOK))
}

// L1FlashCrowd replays a flash-crowd timeline under both policies: the
// acceptance claim is that warm+sticky re-solves spend at least 3x fewer
// total simplex pivots than cold re-solves while every epoch still passes
// the paper's audit.
func L1FlashCrowd(cfg Config) *stats.Table {
	t := stats.NewTable("L1 — flash crowd: cold vs warm+sticky re-provisioning",
		"policy", "epochs", "Σpivots", "Σarc churn", "Σrefl churn", "Σcost", "all audits ok")
	epochs := liveEpochs(cfg)
	trials := cfg.trials(3)
	var worst float64
	for s := 0; s < trials; s++ {
		sc := live.FlashCrowd(cfg.seed(s), epochs)
		cold, warm, err := runPolicies(sc)
		if err != nil {
			t.AddNote("seed %d failed: %v", cfg.seed(s), err)
			continue
		}
		if s == 0 {
			addPolicyRow(t, cold)
			addPolicyRow(t, warm)
		}
		ratio := float64(cold.TotalPivots) / float64(warm.TotalPivots)
		if worst == 0 || ratio < worst {
			worst = ratio
		}
	}
	// The ≥3x claim is for full-length timelines; the quick horizon packs
	// events into nearly every epoch, and devex pricing compresses the cold
	// baseline it is measured against (cold solves take far fewer pivots than
	// under Dantzig), so its floor is 1.8x (the 50-epoch acceptance test in
	// internal/live asserts the 3x claim directly).
	floor := 3.0
	if cfg.Quick {
		floor = 1.8
	}
	t.AddRow("speedup ok?", "", "", "", "", "", yes(worst >= floor))
	t.AddNote("worst pivot ratio cold/warm over %d seeds: %.1fx (claim: ≥%.0fx)", trials, worst, floor)
	return t
}

// L2DiurnalStickiness sweeps stickiness on a fixed diurnal timeline: churn
// must fall monotonically as stickiness grows, at a bounded cost premium.
func L2DiurnalStickiness(cfg Config) *stats.Table {
	t := stats.NewTable("L2 — diurnal wave: stickiness vs churn trade-off",
		"stickiness", "Σpivots", "Σarc churn", "Σrefl churn", "Σcost", "cost premium", "all audits ok")
	epochs := liveEpochs(cfg)
	sc := live.DiurnalWave(cfg.seed(0), epochs)
	var base float64
	prevChurn := -1
	monotone := true
	for _, s := range []float64{0, 0.2, 0.4, 0.6} {
		rep, err := live.Run(sc, live.Config{
			Policy: live.Policy{Name: fmt.Sprintf("s=%.1f", s), Stickiness: s, WarmStart: true}})
		if err != nil {
			t.AddNote("stickiness %.1f failed: %v", s, err)
			continue
		}
		if s == 0 {
			base = rep.TotalTrueCost
		}
		premium := "-"
		if base > 0 {
			premium = fmt.Sprintf("%+.1f%%", 100*(rep.TotalTrueCost/base-1))
		}
		t.AddRowf(s, rep.TotalPivots, rep.TotalArcChurn, rep.TotalReflectorChurn,
			rep.TotalTrueCost, premium, yes(rep.AllAuditOK))
		if prevChurn >= 0 && rep.TotalArcChurn > prevChurn {
			monotone = false
		}
		prevChurn = rep.TotalArcChurn
	}
	t.AddRow("churn monotone?", "", "", "", "", "", yes(monotone))
	t.AddNote("stickiness discounts deployed arcs' costs, trading re-solve optimality for viewer stability")
	return t
}

// L3RollingISPOutage drills availability: as each ISP fails and recovers,
// every epoch's design must keep the audit guarantee, and churn should
// concentrate at the failure/recovery epochs.
func L3RollingISPOutage(cfg Config) *stats.Table {
	t := stats.NewTable("L3 — rolling ISP outages: availability under failures",
		"policy", "epochs", "Σpivots", "Σarc churn", "min weight factor", "worst epoch", "all audits ok")
	epochs := liveEpochs(cfg)
	sc := live.RollingISPOutage(cfg.seed(0), epochs)
	for _, p := range []live.Policy{live.ColdPolicy(), live.WarmStickyPolicy()} {
		rep, err := live.Run(sc, live.Config{Policy: p})
		if err != nil {
			t.AddNote("policy %s failed: %v", p.Name, err)
			continue
		}
		minWF, worstEpoch := 0.0, -1
		for _, er := range rep.Epochs {
			if worstEpoch < 0 || er.WeightFactor < minWF {
				minWF, worstEpoch = er.WeightFactor, er.Epoch
			}
		}
		t.AddRowf(p.Name, len(rep.Epochs), rep.TotalPivots, rep.TotalArcChurn,
			minWF, worstEpoch, yes(rep.AllAuditOK))
	}
	t.AddNote("outage = fanout 0 on every reflector of the ISP; §6.4 colors cap copies per surviving ISP at 1")
	return t
}

// L4BackboneAndRepricing runs the two remaining scenario families —
// correlated backbone failure and gradual repricing — comparing how closely
// each policy tracks the LP lower bound through the incidents.
func L4BackboneAndRepricing(cfg Config) *stats.Table {
	t := stats.NewTable("L4 — backbone failure & gradual repricing: cost tracking through incidents",
		"scenario", "policy", "Σpivots", "Σarc churn", "Σcost", "Σcost/ΣLP", "all audits ok")
	epochs := liveEpochs(cfg)
	for _, name := range []string{"backbone", "repricing"} {
		sc, err := live.Make(name, cfg.seed(1), epochs)
		if err != nil {
			t.AddNote("%s: %v", name, err)
			continue
		}
		cold, warm, err := runPolicies(sc)
		if err != nil {
			t.AddNote("%s failed: %v", name, err)
			continue
		}
		// Ratio vs the COLD run's LP bound (the warm run's LP is biased).
		var lpSum float64
		for _, er := range cold.Epochs {
			lpSum += er.LPCost
		}
		for _, rep := range []*live.RunReport{cold, warm} {
			t.AddRowf(name, rep.Policy.Name, rep.TotalPivots, rep.TotalArcChurn,
				rep.TotalTrueCost, rep.TotalTrueCost/lpSum, yes(rep.AllAuditOK))
		}
	}
	t.AddNote("backbone incidents degrade every inter-region link at once (§1.4 correlated failure), with graceful quality degradation for remote-origin viewers")
	return t
}
