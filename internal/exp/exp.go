// Package exp is the experiment harness: one function per table/figure in
// EXPERIMENTS.md, each returning a stats.Table with the measured values next
// to the paper's claimed bound. The paper itself (a SPAA'03 theory paper)
// has no measurement section — its §7 defers implementation to future work —
// so this suite validates every quantitative claim (Lemmas 4.1/4.3/4.6, the
// §5 end-to-end factor-4 guarantee, the §6.5 extension bounds, the Figure-3
// integrality gap, §5.1 running time) and reproduces the §1 Akamai
// deployment scenarios that motivated the system.
//
// Both cmd/overlaybench and the repository-root benchmarks run these
// functions; EXPERIMENTS.md records their output.
package exp

import (
	"runtime"

	"repro/internal/stats"
)

// Config scales the experiment suite.
type Config struct {
	// Trials per cell (default 10; Quick uses fewer).
	Trials int
	// Quick shrinks instance sizes and trial counts so the whole suite
	// finishes in seconds (used by `go test -bench` smoke runs).
	Quick bool
	// Workers for parallel trial execution (0 = GOMAXPROCS).
	Workers int
	// BaseSeed offsets all seeds (default 1).
	BaseSeed uint64
}

// DefaultConfig returns the full-size configuration.
func DefaultConfig() Config {
	return Config{Trials: 10, Workers: runtime.GOMAXPROCS(0), BaseSeed: 1}
}

// QuickConfig returns a configuration that runs the suite in seconds.
func QuickConfig() Config {
	return Config{Trials: 3, Quick: true, Workers: runtime.GOMAXPROCS(0), BaseSeed: 1}
}

func (c Config) trials(full int) int {
	if c.Trials > 0 {
		full = c.Trials
	}
	if c.Quick && full > 3 {
		full = 3
	}
	return full
}

func (c Config) seed(i int) uint64 {
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	return c.BaseSeed + uint64(i)*1000003
}

// Experiment couples an ID to its runner, for the `all` driver.
type Experiment struct {
	ID   string
	Name string
	Run  func(Config) *stats.Table
}

// All lists every experiment in EXPERIMENTS.md order.
func All() []Experiment {
	return []Experiment{
		{"T1", "End-to-end approximation vs exact OPT", T1EndToEndApprox},
		{"T2", "Randomized-rounding guarantees (Lemmas 4.1/4.3/4.6)", T2RoundingGuarantees},
		{"T3", "The c / δ trade-off", T3ParameterTradeoff},
		{"F3", "Figure 3 integrality gap", func(c Config) *stats.Table { return F3IntegralityGap() }},
		{"T4", "Color constraints via §6.5 path rounding", T4ColorConstraints},
		{"T5", "Loss model: analytic vs Monte-Carlo vs packet simulation", T5LossModel},
		{"T6", "ISP outage drill: color-diverse vs unconstrained designs", T6ISPFailure},
		{"T7", "Running time scaling (§5.1: the LP dominates)", T7Scalability},
		{"T8", "Baselines: greedy / random / LP-rounding", T8Baselines},
		{"T9", "MacWorld'02 live-event scenario (§1)", T9LiveEvent},
		{"T10", "§6.1 heterogeneous stream bandwidths", T10Bandwidth},
		{"T11", "§6.3 reflector→sink capacities", T11EdgeCapacities},
		{"T12", "Hoeffding–Chernoff tails (Thm 4.2 / App. A)", T12ChernoffTails},
		{"T13", "§1.4 single-tree distribution vs multi-path overlay", T13MulticastTree},
		{"T14", "§6.2 ingest caps: realized vs O(log n) violation", T14IngestCaps},
		{"T15", "Correlated ISP outages vs independent prediction", T15CorrelatedOutages},
		{"A1", "Ablation: constraint (4) cutting plane on/off", A1CuttingPlaneAblation},
		{"A2", "Ablation: §5 GAP flow vs §6.5 path rounding", A2GapVsPathRounding},
		{"A3", "Coverage repair: W/4 guarantee → full demand", A3RepairCost},
		{"S1", "Sharded vs monolithic solves: cost/wall/pivots", S1ShardedVsMonolithic},
		{"S2", "Sharded solve scaling with sink count", S2ScalingWithSinks},
		{"S3", "Shard coordination under capacity scarcity", S3CoordinationUnderScarcity},
		{"L1", "Live: flash crowd, cold vs warm+sticky re-solves", L1FlashCrowd},
		{"L2", "Live: diurnal wave, stickiness vs churn", L2DiurnalStickiness},
		{"L3", "Live: rolling ISP outages, availability", L3RollingISPOutage},
		{"L4", "Live: backbone failure & repricing, cost tracking", L4BackboneAndRepricing},
		{"L5", "Live: incremental LP rebuild, patch vs rebuild wall", L5IncrementalRebuild},
		{"L6", "Live: multi-stream sinks, native vs copy-split accounting", L6MultiStream},
	}
}
