package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/par"
	"repro/internal/reliability"
	"repro/internal/round"
	"repro/internal/stats"
)

// T4ColorConstraints validates §6.4/§6.5: with ISP colors on, the path
// rounding keeps at most one copy per (ISP, sink) up to the additive bound,
// with cost within the §6.5 factor of the fractional stage.
func T4ColorConstraints(cfg Config) *stats.Table {
	t := stats.NewTable("T4 — §6.4 color constraints via §6.5 path rounding",
		"ISPs", "trials", "cost/LP mean", "max color excess", "max fanout excess", "bounds (≤7 / ≤7)", "boxes served")
	trials := cfg.trials(6)
	isps := []int{2, 3, 4}
	if cfg.Quick {
		isps = []int{2, 3}
	}
	for _, m := range isps {
		type obs struct {
			ratio                  float64
			colorEx                int
			fanoutEx               float64
			served, total, retries int
			ok                     bool
		}
		outs := par.Map(trials, cfg.Workers, func(ti int) obs {
			ccfg := gen.DefaultClustered(2, 2, m, 5)
			if cfg.Quick {
				ccfg = gen.DefaultClustered(2, 2, m, 3)
			}
			in := gen.Clustered(ccfg, cfg.seed(ti))
			res, err := core.Solve(in, core.DefaultOptions(cfg.seed(ti)+11))
			if err != nil || res.STResult == nil {
				return obs{}
			}
			return obs{
				ratio:    res.Audit.Cost / math.Max(res.LPCost, 1e-12),
				colorEx:  res.STResult.MaxColorExcess,
				fanoutEx: math.Max(res.STResult.MaxFanoutExcess, 0),
				served:   res.STResult.ServedBoxes,
				total:    res.STResult.TotalBoxes,
				retries:  res.STResult.Retries,
				ok:       true,
			}
		})
		var ratios []float64
		maxColor, maxFan := 0, 0.0
		served, total, n := 0, 0, 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			n++
			ratios = append(ratios, o.ratio)
			if o.colorEx > maxColor {
				maxColor = o.colorEx
			}
			if o.fanoutEx > maxFan {
				maxFan = o.fanoutEx
			}
			served += o.served
			total += o.total
		}
		if n == 0 {
			t.AddRow(fmt.Sprint(m), "0", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRowf(m, n, stats.Mean(ratios), maxColor, maxFan,
			yes(maxColor <= 7 && maxFan <= 7), fmt.Sprintf("%d/%d", served, total))
	}
	t.AddNote("§6.5 guarantees: cost < 14× fractional stage, additive constraint violation < 7")
	return t
}

// T6ISPFailure is the §6.4 motivation drill: build designs with and without
// color constraints on a network where one ISP is heavily discounted (so a
// pure cost optimizer concentrates there), fail each ISP in turn, and
// measure both full-quality survivors and sinks still served at all (the
// blackout metric behind "we will still serve most of the sinks").
func T6ISPFailure(cfg Config) *stats.Table {
	t := stats.NewTable("T6 — ISP outage drill on a network with one discounted ISP",
		"design", "cost", "meet Φ (healthy)", "worst-ISP: meet Φ", "worst-ISP: still served", "blackouts?")
	ccfg := gen.DefaultClustered(2, 2, 3, 6)
	if cfg.Quick {
		ccfg = gen.DefaultClustered(2, 2, 3, 3)
	}
	in := gen.Clustered(ccfg, cfg.seed(0))
	// Discount ISP 0 to create concentration pressure (§6.4 motivation).
	for i := 0; i < in.NumReflectors; i++ {
		if in.Color[i] == 0 {
			in.ReflectorCost[i] *= 0.25
			for k := 0; k < in.NumSources; k++ {
				in.SrcRefCost[k][i] *= 0.25
			}
			for j := 0; j < in.NumSinks; j++ {
				in.RefSinkCost[i][j] *= 0.25
			}
		}
	}

	opts := core.DefaultOptions(cfg.seed(1))
	opts.RepairCoverage = true // both designs serve full demand when healthy
	colored, err := core.Solve(in, opts)
	if err != nil {
		t.AddNote("colored solve failed: %v", err)
		return t
	}
	plainIn := in.Clone()
	plainIn.Color = nil
	plainIn.NumColors = 0
	plain, err := core.Solve(plainIn, opts)
	if err != nil {
		t.AddNote("plain solve failed: %v", err)
		return t
	}

	eval := func(d *netmodel.Design) (baseMeet, worstMeet, worstServed int) {
		baseMeet, _ = countSurvivors(in, d, -1)
		worstMeet, worstServed = in.NumSinks+1, in.NumSinks+1
		for isp := 0; isp < in.NumColors; isp++ {
			m, s := countSurvivors(in, d, isp)
			if m < worstMeet {
				worstMeet = m
			}
			if s < worstServed {
				worstServed = s
			}
		}
		return
	}
	cb, cwm, cws := eval(colored.Design)
	pb, pwm, pws := eval(plain.Design)
	t.AddRowf("color-constrained (§6.4)", colored.Audit.Cost, frac(cb, in.NumSinks),
		frac(cwm, in.NumSinks), frac(cws, in.NumSinks), yes(cws < in.NumSinks))
	t.AddRowf("unconstrained", plain.Audit.Cost, frac(pb, in.NumSinks),
		frac(pwm, in.NumSinks), frac(pws, in.NumSinks), yes(pws < in.NumSinks))
	t.AddNote("\"still served\" = at least one copy flowing after the ISP failure (no blackout)")
	t.AddNote("the colored design pays more but no single ISP failure can black out its sinks")
	return t
}

func frac(a, b int) string { return fmt.Sprintf("%d/%d", a, b) }

// countSurvivors evaluates the design with ISP failedISP down (-1 = none):
// sinks meeting their full threshold and sinks with at least one copy.
func countSurvivors(in *netmodel.Instance, d *netmodel.Design, failedISP int) (meetPhi, served int) {
	surviving := d
	if failedISP >= 0 {
		surviving = d.Clone()
		for i := 0; i < in.NumReflectors; i++ {
			if in.Color != nil && in.Color[i] == failedISP {
				for j := 0; j < in.NumSinks; j++ {
					surviving.Serve[i][j] = false
				}
			}
		}
	}
	for j := 0; j < in.NumSinks; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		fail := reliability.SinkFailure(in, surviving, j)
		if 1-fail >= in.Threshold[j]-1e-12 {
			meetPhi++
		}
		if fail < 1 {
			served++
		}
	}
	return
}

// T10Bandwidth validates the §6.1 extension: streams with heterogeneous
// bandwidths B^k consume fanout proportionally, and the guarantees survive.
func T10Bandwidth(cfg Config) *stats.Table {
	t := stats.NewTable("T10 — §6.1 heterogeneous stream bandwidths",
		"bandwidths", "trials", "cost/LP mean", "min weight fac", "max BW-weighted fanout fac", "within ×4?")
	trials := cfg.trials(6)
	type scen struct {
		name string
		bw   []float64
	}
	scens := []scen{
		{"uniform (1,1)", []float64{1, 1}},
		{"mixed (1,2)", []float64{1, 2}},
		{"skewed (1,4)", []float64{1, 4}},
	}
	for _, sc := range scens {
		type obs struct {
			ratio, wf, ff float64
			ok            bool
		}
		outs := par.Map(trials, cfg.Workers, func(ti int) obs {
			ucfg := gen.DefaultUniform(2, 8, 14)
			if cfg.Quick {
				ucfg = gen.DefaultUniform(2, 6, 10)
			}
			// Scale fanouts up so heavy streams stay feasible.
			ucfg.FanoutLo *= 4
			ucfg.FanoutHi *= 4
			in := gen.Uniform(ucfg, cfg.seed(ti))
			in.Bandwidth = append([]float64(nil), sc.bw...)
			res, err := core.Solve(in, core.DefaultOptions(cfg.seed(ti)+23))
			if err != nil {
				return obs{}
			}
			return obs{ratio: res.ApproxRatio(), wf: res.Audit.WeightFactor, ff: res.Audit.FanoutFactor, ok: true}
		})
		var ratios []float64
		minWF, maxFF := math.Inf(1), 0.0
		n := 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			n++
			ratios = append(ratios, o.ratio)
			minWF = math.Min(minWF, o.wf)
			maxFF = math.Max(maxFF, o.ff)
		}
		if n == 0 {
			t.AddRow(sc.name, "0", "-", "-", "-", "-")
			continue
		}
		t.AddRowf(sc.name, n, stats.Mean(ratios), minWF, maxFF, yes(maxFF <= 4+1e-9))
	}
	t.AddNote("fanout factor counts B^k-weighted use per §6.1 constraints (3'),(4')")
	return t
}

// T11EdgeCapacities validates §6.3: per reflector→sink arc capacities are
// modeled as LP bounds and honored by the path rounding (hard: an arc with
// u<1 is never used integrally).
func T11EdgeCapacities(cfg Config) *stats.Table {
	t := stats.NewTable("T11 — §6.3 reflector→sink arc capacities",
		"capped arcs", "trials", "cost/LP mean", "cap violations", "min weight fac")
	trials := cfg.trials(6)
	for _, frac := range []float64{0, 0.2, 0.4} {
		type obs struct {
			ratio, wf float64
			viol      int
			ok        bool
		}
		outs := par.Map(trials, cfg.Workers, func(ti int) obs {
			ucfg := gen.DefaultUniform(1, 8, 12)
			if cfg.Quick {
				ucfg = gen.DefaultUniform(1, 6, 8)
			}
			in := gen.Uniform(ucfg, cfg.seed(ti))
			rng := stats.NewRNG(cfg.seed(ti) + 99)
			in.EdgeCap = make([][]float64, in.NumReflectors)
			for i := range in.EdgeCap {
				in.EdgeCap[i] = make([]float64, in.NumSinks)
				for j := range in.EdgeCap[i] {
					if rng.Float64() < frac {
						in.EdgeCap[i][j] = 0 // forbidden arc
					} else {
						in.EdgeCap[i][j] = 1
					}
				}
			}
			res, err := core.Solve(in, core.DefaultOptions(cfg.seed(ti)+31))
			if err != nil {
				return obs{}
			}
			viol := 0
			for i := range res.Design.Serve {
				for j, s := range res.Design.Serve[i] {
					if s && in.EdgeCap[i][j] < 1 {
						viol++
					}
				}
			}
			return obs{ratio: res.ApproxRatio(), wf: res.Audit.WeightFactor, viol: viol, ok: true}
		})
		var ratios []float64
		minWF := math.Inf(1)
		viol, n := 0, 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			n++
			ratios = append(ratios, o.ratio)
			minWF = math.Min(minWF, o.wf)
			viol += o.viol
		}
		if n == 0 {
			t.AddRow(fmt.Sprintf("%.0f%%", frac*100), "0", "-", "-", "-")
			continue
		}
		t.AddRowf(fmt.Sprintf("%.0f%%", frac*100), n, stats.Mean(ratios), viol, minWF)
	}
	t.AddNote("capacities < 1 forbid arcs outright for integral assignments; feasible instances get costlier as arcs disappear")
	return t
}

// A1CuttingPlaneAblation measures the effect of constraint (4): the IP does
// not need it (Claim 2.1) but the §4 analysis of the rounding does. Without
// it, fanout violations after rounding get heavier tails.
func A1CuttingPlaneAblation(cfg Config) *stats.Table {
	t := stats.NewTable("A1 — ablation: cutting plane (4) in the LP",
		"variant", "LP cost", "mean max-fanout factor after rounding", "seeds with fanout > 2F")
	size := [3]int{2, 8, 20}
	if cfg.Quick {
		size = [3]int{2, 6, 12}
	}
	in := gen.Uniform(gen.DefaultUniform(size[0], size[1], size[2]), 23)
	trials := cfg.trials(100)
	for _, withPlane := range []bool{true, false} {
		opts := core.Options{Seed: 1, LPOnly: true, DisableCuttingPlane: !withPlane}
		res, err := core.Solve(in, opts)
		if err != nil {
			t.AddNote("LP failed: %v", err)
			return t
		}
		type obs struct {
			ff  float64
			bad bool
		}
		// Use a small multiplier (C=1) so the rounding genuinely
		// randomizes — at the paper's c=64 the saturated procedure is
		// deterministic and the cutting plane's effect is invisible.
		outs := par.Map(trials, cfg.Workers, func(ti int) obs {
			r := roundWith(in, res, cfg.seed(ti))
			return obs{ff: r.MaxFanoutFactor, bad: r.FanoutViolations > 0}
		})
		var ffs []float64
		bad := 0
		for _, o := range outs {
			ffs = append(ffs, o.ff)
			if o.bad {
				bad++
			}
		}
		name := "with (4)"
		if !withPlane {
			name = "without (4)"
		}
		t.AddRowf(name, res.LPCost, stats.Mean(ffs), fmt.Sprintf("%d/%d", bad, trials))
	}
	t.AddNote("Claim 2.1: (4) is redundant for the IP; §4 uses it as the cutting plane that makes Lemma 4.6 go through")
	t.AddNote("rounding at C=1 (randomization regime); at this scale the fanout tail never fires either way —")
	t.AddNote("the plane is insurance for the adversarial instances of the proof, not a practical-cost item")
	return t
}

// A2GapVsPathRounding compares the two final-stage rounders on the same
// (uncolored) instances: §5 GAP flow vs §6.5 path sampling.
func A2GapVsPathRounding(cfg Config) *stats.Table {
	t := stats.NewTable("A2 — ablation: §5 GAP flow rounding vs §6.5 path rounding (no colors)",
		"rounder", "trials", "cost/LP mean", "min weight fac", "max fanout fac")
	trials := cfg.trials(8)
	for _, forcePath := range []bool{false, true} {
		type obs struct {
			ratio, wf, ff float64
			ok            bool
		}
		outs := par.Map(trials, cfg.Workers, func(ti int) obs {
			size := gen.DefaultUniform(2, 8, 14)
			if cfg.Quick {
				size = gen.DefaultUniform(2, 6, 10)
			}
			in := gen.Uniform(size, cfg.seed(ti))
			opts := core.DefaultOptions(cfg.seed(ti) + 41)
			opts.ForcePathRounding = forcePath
			res, err := core.Solve(in, opts)
			if err != nil {
				return obs{}
			}
			return obs{ratio: res.ApproxRatio(), wf: res.Audit.WeightFactor, ff: res.Audit.FanoutFactor, ok: true}
		})
		var ratios []float64
		minWF, maxFF := math.Inf(1), 0.0
		n := 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			n++
			ratios = append(ratios, o.ratio)
			minWF = math.Min(minWF, o.wf)
			maxFF = math.Max(maxFF, o.ff)
		}
		name := "§5 GAP flow"
		if forcePath {
			name = "§6.5 path sampling"
		}
		if n == 0 {
			t.AddRow(name, "0", "-", "-", "-")
			continue
		}
		t.AddRowf(name, n, stats.Mean(ratios), minWF, maxFF)
	}
	t.AddNote("the GAP flow is deterministic given x̄ and exploits flow integrality; path sampling generalizes to entangled constraints")
	return t
}

// roundWith reruns the §3 rounding against a precomputed LP result at the
// randomization-regime multiplier C=1 and returns its instrumentation.
func roundWith(in *netmodel.Instance, lpRes *core.Result, seed uint64) round.Instrumentation {
	r := round.Apply(in, lpRes.Frac, round.Options{C: 1, Seed: seed, MinMultiplier: 1})
	return r.Instrument(in, lpRes.LPCost)
}
