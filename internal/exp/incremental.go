package exp

import (
	"fmt"
	"time"

	"repro/internal/live"
	"repro/internal/stats"
)

// L5IncrementalRebuild measures what the delta-driven LP patching buys: for
// every library scenario, the same warm+sticky timeline is run twice — once
// rebuilding the constraint matrix each epoch (the PR 3 baseline), once
// patching it in place from the epoch's dirty sets — and the table compares
// the summed lp-build / lp-build+lp-patch wall. The runs must agree on
// every solver-visible number (cost, pivots, churn): the patched LP is
// bit-identical to a fresh build, so the speedup is free.
func L5IncrementalRebuild(cfg Config) *stats.Table {
	t := stats.NewTable("L5 — incremental LP rebuild: per-epoch lp construction, patch vs rebuild",
		"scenario", "epochs", "rebuild Σlp-build", "incr Σbuild+patch", "speedup", "Σpatches", "rebuilds", "identical")
	epochs := liveEpochs(cfg)
	var worst float64
	for _, name := range live.Names() {
		sc, err := live.Make(name, cfg.seed(2), epochs)
		if err != nil {
			t.AddNote("%s: %v", name, err)
			continue
		}
		// Refactorize on warm-start install in both arms: only the incremental
		// arm keeps lp.Problems alive, so only it can resume persisted
		// factorizations — the "identical" column compares the patched LP to
		// a rebuilt one, not the persistence path (which internal/lp and
		// internal/live/equiv_test.go lock separately).
		mkCfg := func(noIncr bool) live.Config {
			c := live.Config{Policy: live.WarmStickyPolicy(), NoIncremental: noIncr}
			c.Solver.RefactorOnInstall = true
			return c
		}
		base, err := live.Run(sc, mkCfg(true))
		if err != nil {
			t.AddNote("%s rebuild run failed: %v", name, err)
			continue
		}
		incr, err := live.Run(sc, mkCfg(false))
		if err != nil {
			t.AddNote("%s incremental run failed: %v", name, err)
			continue
		}
		identical := base.TotalTrueCost == incr.TotalTrueCost &&
			base.TotalPivots == incr.TotalPivots &&
			base.TotalArcChurn == incr.TotalArcChurn
		baseNS, incrNS := base.LPConstructionNS(), incr.LPConstructionNS()
		speedup := float64(baseNS) / float64(incrNS)
		if worst == 0 || speedup < worst {
			worst = speedup
		}
		t.AddRowf(name, epochs,
			time.Duration(baseNS).Round(time.Microsecond).String(),
			time.Duration(incrNS).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup),
			incr.TotalLPPatches, incr.TotalLPRebuilds, yes(identical))
	}
	t.AddNote("worst lp-construction speedup across the library: %.1fx (the 50-epoch flash-crowd acceptance in bench_test.go asserts ≥3x)", worst)
	t.AddNote("each epoch patches only the LP cells its deltas touched; epoch 0 is the one full build")
	return t
}
