package exp

import (
	"fmt"
	"math"

	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/greedy"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/par"
	"repro/internal/round"
	"repro/internal/stats"
)

// T1EndToEndApprox measures the end-to-end algorithm against the exact IP
// optimum on tiny instances: cost ratio, weight retention factor (paper
// bound: ≥ 1/4), fanout factor (paper bound: ≤ 4).
func T1EndToEndApprox(cfg Config) *stats.Table {
	t := stats.NewTable("T1 — End-to-end approximation vs exact OPT (paper §5: weight ≥ W/4, fanout ≤ 4F, cost O(log n)·OPT)",
		"family", "trials", "cost/OPT mean", "cost/OPT max", "cost/LP mean", "minWeightFac", "maxFanoutFac", "all ≥ 1/4?", "all ≤ 4?")
	type family struct {
		name string
		mk   func(seed uint64) *netmodel.Instance
	}
	fams := []family{
		{"uniform 1×5×7", func(s uint64) *netmodel.Instance { return gen.Uniform(gen.DefaultUniform(1, 5, 7), s) }},
		{"uniform 2×5×6", func(s uint64) *netmodel.Instance { return gen.Uniform(gen.DefaultUniform(2, 5, 6), s) }},
		{"setcover 8×5", func(s uint64) *netmodel.Instance {
			return gen.SetCover(gen.SetCoverConfig{Elements: 8, Sets: 5, Density: 0.4}, s)
		}},
	}
	if cfg.Quick {
		fams = []family{
			{"uniform 1×4×5", func(s uint64) *netmodel.Instance { return gen.Uniform(gen.DefaultUniform(1, 4, 5), s) }},
			{"setcover 6×4", func(s uint64) *netmodel.Instance {
				return gen.SetCover(gen.SetCoverConfig{Elements: 6, Sets: 4, Density: 0.4}, s)
			}},
		}
	}
	trials := cfg.trials(8)
	for _, fam := range fams {
		type outcome struct {
			ratioOPT, ratioLP, wf, ff float64
			ok                        bool
		}
		outs := par.Map(trials, cfg.Workers, func(ti int) outcome {
			in := fam.mk(cfg.seed(ti))
			// Prime the incumbent with the greedy cost when greedy
			// fully covers — a valid upper bound that prunes hard.
			bOpts := bnb.Options{NodeLimit: 60000}
			if g := greedy.Greedy(in); g.Covered == g.Demanding {
				bOpts.InitialUpper = g.Design.Cost(in) + 1e-9
			}
			ex, err := bnb.Solve(in, bOpts)
			if err != nil || ex.Design == nil {
				return outcome{}
			}
			res, err := core.Solve(in, core.DefaultOptions(cfg.seed(ti)+7))
			if err != nil {
				return outcome{}
			}
			return outcome{
				ratioOPT: res.Audit.Cost / math.Max(ex.Cost, 1e-12),
				ratioLP:  res.ApproxRatio(),
				wf:       res.Audit.WeightFactor,
				ff:       res.Audit.FanoutFactor,
				ok:       true,
			}
		})
		var rOPT, rLP []float64
		minWF, maxFF := math.Inf(1), 0.0
		n := 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			n++
			rOPT = append(rOPT, o.ratioOPT)
			rLP = append(rLP, o.ratioLP)
			if o.wf < minWF {
				minWF = o.wf
			}
			if o.ff > maxFF {
				maxFF = o.ff
			}
		}
		if n == 0 {
			t.AddRow(fam.name, "0", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRowf(fam.name, n, stats.Mean(rOPT), stats.MaxFloat(rOPT), stats.Mean(rLP),
			minWF, maxFF, yes(minWF >= 0.25-1e-9), yes(maxFF <= 4+1e-9))
	}
	t.AddNote("paper guarantees: weight factor ≥ 1/4 and fanout factor ≤ 4 always; cost within O(log n) of OPT")
	t.AddNote("cost/OPT < 1 is legitimate: the algorithm is bicriteria — it may undercut the exact optimum of the")
	t.AddNote("FULLY-constrained IP because its own output only promises the relaxed (W/4, 4F) constraints")
	return t
}

// T2RoundingGuarantees isolates the §3 stage and validates Lemma 4.1 (cost),
// Lemma 4.3 (weight retention at δ=1/4), Lemma 4.6 (fanout ≤ 2F), each over
// many independent seeds on a fixed medium instance.
func T2RoundingGuarantees(cfg Config) *stats.Table {
	size := [3]int{2, 8, 24}
	if cfg.Quick {
		size = [3]int{2, 6, 14}
	}
	in := gen.Uniform(gen.DefaultUniform(size[0], size[1], size[2]), 42)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	t := stats.NewTable(fmt.Sprintf("T2 — §3 rounding stage on uniform %d×%d×%d (n=%d sinks)", size[0], size[1], size[2], size[2]),
		"metric", "measured", "paper bound", "holds?")
	if err != nil {
		t.AddNote("LP infeasible: %v", err)
		return t
	}
	trials := cfg.trials(200)
	type obs struct {
		cost, minWF, maxFF float64
		wViol, fViol       int
	}
	outs := par.Map(trials, cfg.Workers, func(ti int) obs {
		r := round.Apply(in, fs, round.DefaultOptions(cfg.seed(ti)))
		inst := r.Instrument(in, fs.Cost)
		return obs{cost: r.Cost, minWF: inst.MinWeightFactor, maxFF: inst.MaxFanoutFactor,
			wViol: inst.WeightViolations, fViol: inst.FanoutViolations}
	})
	var costs, wfs, ffs []float64
	wBad, fBad := 0, 0
	for _, o := range outs {
		costs = append(costs, o.cost)
		wfs = append(wfs, o.minWF)
		ffs = append(ffs, o.maxFF)
		if o.wViol > 0 {
			wBad++
		}
		if o.fViol > 0 {
			fBad++
		}
	}
	lambda := 64 * math.Log(float64(in.NumSinks))
	t.AddRowf("E[cost] / LP", stats.Mean(costs)/fs.Cost, fmt.Sprintf("≤ c·ln n = %.1f (Lemma 4.1)", lambda),
		yes(stats.Mean(costs)/fs.Cost <= lambda*1.05))
	t.AddRowf("min weight factor (mean over seeds)", stats.Mean(wfs), "≥ 3/4 w.h.p. (Lemma 4.3, δ=1/4)",
		yes(stats.Mean(wfs) >= 0.75))
	t.AddRowf("seeds with any weight constraint < 3/4", fmt.Sprintf("%d/%d", wBad, len(outs)),
		"prob < 1/n per constraint", yes(float64(wBad) <= math.Max(1, float64(len(outs)))*0.1))
	t.AddRowf("max fanout factor (mean over seeds)", stats.Mean(ffs), "≤ 2 w.h.p. (Lemma 4.6, c ≥ 24)",
		yes(stats.Mean(ffs) <= 2))
	t.AddRowf("seeds with any fanout > 2F", fmt.Sprintf("%d/%d", fBad, len(outs)), "rare", yes(float64(fBad) <= math.Max(1, float64(len(outs)))*0.1))
	t.AddNote("instance: %s; LP cost %.4f; %d rounding seeds", in.Name, fs.Cost, trials)
	return t
}

// T3ParameterTradeoff sweeps the rounding constant c: smaller c means
// cheaper solutions but more weight-constraint violations — the
// multicriterion trade-off §1.6 and §4 describe.
func T3ParameterTradeoff(cfg Config) *stats.Table {
	size := [3]int{2, 8, 20}
	if cfg.Quick {
		size = [3]int{2, 6, 12}
	}
	in := gen.Uniform(gen.DefaultUniform(size[0], size[1], size[2]), 17)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	t := stats.NewTable("T3 — trade-off in the rounding constant c (δ²·c = 4 ⇒ δ = 2/√c)",
		"c", "λ=c·ln n", "cost/LP mean", "weight-violation seeds", "fanout-violation seeds", "min weight factor")
	if err != nil {
		t.AddNote("LP infeasible: %v", err)
		return t
	}
	trials := cfg.trials(100)
	// The sweep deliberately extends BELOW the paper's constants: once
	// c·ln n exceeds 1/ẑ for every reflector, step [1] saturates ż = 1
	// and the procedure becomes deterministic (the LP is near-integral on
	// realistic instances). Genuine coin flips — and hence violations —
	// only appear at small multipliers.
	for _, c := range []float64{0.25, 0.5, 1, 2, 4, 16, 64} {
		type obs struct {
			cost, minWF float64
			w, f        bool
		}
		outs := par.Map(trials, cfg.Workers, func(ti int) obs {
			o := round.Options{C: c, Seed: cfg.seed(ti), MinMultiplier: 1}
			r := round.Apply(in, fs, o)
			inst := r.Instrument(in, fs.Cost)
			return obs{cost: r.Cost, minWF: inst.MinWeightFactor,
				w: inst.WeightViolations > 0, f: inst.FanoutViolations > 0}
		})
		var costs, wfs []float64
		wBad, fBad := 0, 0
		for _, o := range outs {
			costs = append(costs, o.cost)
			wfs = append(wfs, o.minWF)
			if o.w {
				wBad++
			}
			if o.f {
				fBad++
			}
		}
		lambda := math.Max(c*math.Log(float64(in.NumSinks)), 1)
		t.AddRowf(c, lambda, stats.Mean(costs)/fs.Cost,
			fmt.Sprintf("%d/%d", wBad, trials), fmt.Sprintf("%d/%d", fBad, trials), stats.MinFloat(wfs))
	}
	t.AddNote("larger c: provably safer (fewer weight violations, Lemma 4.3 tail δ=1/4) at higher expected cost;")
	t.AddNote("at the paper's c=64 the multiplier saturates every ż to 1 on this instance — fully deterministic, zero violations")
	return t
}

// T8Baselines compares the LP-rounding algorithm with the greedy and random
// baselines on matched instances: cost (normalized by the LP lower bound)
// and feasibility profile.
func T8Baselines(cfg Config) *stats.Table {
	t := stats.NewTable("T8 — algorithm vs baselines (cost normalized by LP lower bound)",
		"method", "cost/LP mean", "cost/LP max", "coverage", "fanout ≤ F?", "notes")
	size := [3]int{2, 10, 20}
	if cfg.Quick {
		size = [3]int{2, 6, 10}
	}
	trials := cfg.trials(10)
	type obs struct {
		lp, algo, greedyC, randC float64
		algoFF                   float64
		algoWF                   float64
		gCov, gDem               int
		rCov                     int
		ok                       bool
	}
	outs := par.Map(trials, cfg.Workers, func(ti int) obs {
		in := gen.Uniform(gen.DefaultUniform(size[0], size[1], size[2]), cfg.seed(ti))
		res, err := core.Solve(in, core.DefaultOptions(cfg.seed(ti)+3))
		if err != nil {
			return obs{}
		}
		g := greedy.Greedy(in)
		r := greedy.Random(in, cfg.seed(ti)+5)
		return obs{
			lp:      res.LPCost,
			algo:    res.Audit.Cost,
			algoFF:  res.Audit.FanoutFactor,
			algoWF:  res.Audit.WeightFactor,
			greedyC: g.Design.Cost(in),
			randC:   r.Design.Cost(in),
			gCov:    g.Covered, gDem: g.Demanding, rCov: r.Covered,
			ok: true,
		}
	})
	var aR, gR, rR []float64
	var wfMin, ffMax float64 = math.Inf(1), 0
	gCov, gDem, rCov := 0, 0, 0
	for _, o := range outs {
		if !o.ok {
			continue
		}
		aR = append(aR, o.algo/o.lp)
		gR = append(gR, o.greedyC/o.lp)
		rR = append(rR, o.randC/o.lp)
		if o.algoWF < wfMin {
			wfMin = o.algoWF
		}
		if o.algoFF > ffMax {
			ffMax = o.algoFF
		}
		gCov += o.gCov
		gDem += o.gDem
		rCov += o.rCov
	}
	t.AddRowf("LP-round (paper)", stats.Mean(aR), stats.MaxFloat(aR),
		fmt.Sprintf("≥ W/4 all (min fac %.2f)", wfMin),
		fmt.Sprintf("≤ 4F (max fac %.2f)", ffMax), "soft constraints, provable cost")
	t.AddRowf("greedy", stats.Mean(gR), stats.MaxFloat(gR),
		fmt.Sprintf("%d/%d full", gCov, gDem), "yes (hard)", "no cost guarantee")
	t.AddRowf("random", stats.Mean(rR), stats.MaxFloat(rR),
		fmt.Sprintf("%d/%d full", rCov, gDem), "yes (hard)", "strawman")
	t.AddNote("§1.5: greedy matches the set-cover bound only without capacities/multicover; the LP algorithm handles both")
	return t
}

// A3RepairCost quantifies the §7-style repair pass: what does topping the
// approximation's W/4 guarantee up to full demand cost, and how does the
// repaired design compare with pure greedy?
func A3RepairCost(cfg Config) *stats.Table {
	t := stats.NewTable("A3 — coverage repair (§7 heuristic): cost of going from W/4 to full demand",
		"method", "cost/LP mean", "sinks at full Φ-weight", "min weight factor")
	size := [3]int{2, 10, 20}
	if cfg.Quick {
		size = [3]int{2, 6, 10}
	}
	trials := cfg.trials(8)
	type obs struct {
		lp, raw, rep, grd   float64
		rawFull, repFull, n int
		rawMin, repMin      float64
		grdFull             int
		ok                  bool
	}
	outs := par.Map(trials, cfg.Workers, func(ti int) obs {
		in := gen.Uniform(gen.DefaultUniform(size[0], size[1], size[2]), cfg.seed(ti))
		raw, err := core.Solve(in, core.DefaultOptions(cfg.seed(ti)+3))
		if err != nil {
			return obs{}
		}
		ropts := core.DefaultOptions(cfg.seed(ti) + 3)
		ropts.RepairCoverage = true
		rep, err := core.Solve(in, ropts)
		if err != nil {
			return obs{}
		}
		g := greedy.Greedy(in)
		o := obs{lp: raw.LPCost, raw: raw.Audit.Cost, rep: rep.Audit.Cost,
			grd: g.Design.Cost(in), rawMin: raw.Audit.WeightFactor, repMin: rep.Audit.WeightFactor, ok: true}
		o.rawFull = countFullWeight(in, raw.Design)
		o.repFull = countFullWeight(in, rep.Design)
		o.grdFull = countFullWeight(in, g.Design)
		o.n = in.NumSinks
		return o
	})
	var rawR, repR, grdR []float64
	rawFull, repFull, grdFull, total := 0, 0, 0, 0
	rawMin, repMin := math.Inf(1), math.Inf(1)
	for _, o := range outs {
		if !o.ok {
			continue
		}
		rawR = append(rawR, o.raw/o.lp)
		repR = append(repR, o.rep/o.lp)
		grdR = append(grdR, o.grd/o.lp)
		rawFull += o.rawFull
		repFull += o.repFull
		grdFull += o.grdFull
		total += o.n
		rawMin = math.Min(rawMin, o.rawMin)
		repMin = math.Min(repMin, o.repMin)
	}
	t.AddRowf("LP-round (raw, paper)", stats.Mean(rawR), frac(rawFull, total), rawMin)
	t.AddRowf("LP-round + repair", stats.Mean(repR), frac(repFull, total), repMin)
	t.AddRowf("greedy only", stats.Mean(grdR), frac(grdFull, total), "n/a")
	t.AddNote("repair keeps colors hard and fanout ≤ 4F while adding the cheapest effective arcs")
	return t
}

// countFullWeight counts sinks whose weight meets full demand.
func countFullWeight(in *netmodel.Instance, d *netmodel.Design) int {
	n := 0
	for j := 0; j < in.NumSinks; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		if d.SinkWeight(in, j) >= in.Demand(j)-1e-9 {
			n++
		}
	}
	return n
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
