package exp

import (
	"math"

	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/stats"
)

// F3IntegralityGap reproduces the paper's Figure 3: a flow network with an
// entangled-set capacity ({ab, pq} ≤ 3) whose maximum integral s–t flow is 3
// while the fractional optimum is 3.5. This gap is exactly why §6.5 must
// round the path LP with Srinivasan–Teo instead of plain flow integrality.
func F3IntegralityGap() *stats.Table {
	f := gen.NewFigure3()
	frac := figure3FractionalMax(f)
	integral := figure3IntegralMax(f)
	t := stats.NewTable("F3 — Figure 3 integrality gap under the entangled-set constraint {ab,pq} ≤ 3",
		"quantity", "measured", "paper", "match?")
	t.AddRowf("max fractional s→t flow", frac, 3.5, yes(math.Abs(frac-3.5) < 1e-6))
	t.AddRowf("max integral s→t flow", float64(integral), 3.0, yes(integral == 3))
	t.AddRowf("gap (fractional − integral)", frac-float64(integral), 0.5, yes(math.Abs(frac-float64(integral)-0.5) < 1e-6))
	t.AddNote("paper's fractional witness: 2 on s→a, 1.5 on s→p, split at a: 0.5 on a→q, 1.5 on a→b")
	return t
}

// figure3FractionalMax solves the max-flow LP with the entangled constraint.
func figure3FractionalMax(f *gen.Figure3) float64 {
	p := lp.NewProblem(len(f.Edges))
	for e, ed := range f.Edges {
		p.SetBounds(e, 0, ed.Cap)
	}
	// Flow conservation at internal nodes A, P, Q, B.
	for _, node := range []int{f.A, f.P, f.Q, f.B} {
		var coefs []lp.Coef
		for e, ed := range f.Edges {
			if ed.To == node {
				coefs = append(coefs, lp.Coef{Var: e, Val: 1})
			}
			if ed.From == node {
				coefs = append(coefs, lp.Coef{Var: e, Val: -1})
			}
		}
		p.AddConstraint(lp.EQ, 0, coefs...)
	}
	// Entangled set.
	var ent []lp.Coef
	for _, e := range f.EntangledSet {
		ent = append(ent, lp.Coef{Var: e, Val: 1})
	}
	p.AddConstraint(lp.LE, f.EntangledCap, ent...)
	// Maximize inflow to T.
	for e, ed := range f.Edges {
		if ed.To == f.T {
			p.SetObjectiveCoef(e, -1)
		}
	}
	sol, err := p.Solve()
	if err != nil || sol.Status != lp.Optimal {
		return math.NaN()
	}
	return -sol.Objective
}

// figure3IntegralMax brute-forces integer edge flows (caps ≤ 2, 7 edges).
func figure3IntegralMax(f *gen.Figure3) int {
	n := len(f.Edges)
	flows := make([]int, n)
	best := 0
	var rec func(e int)
	rec = func(e int) {
		if e == n {
			// Check conservation and entanglement.
			for _, node := range []int{f.A, f.P, f.Q, f.B} {
				net := 0
				for i, ed := range f.Edges {
					if ed.To == node {
						net += flows[i]
					}
					if ed.From == node {
						net -= flows[i]
					}
				}
				if net != 0 {
					return
				}
			}
			ent := 0
			for _, i := range f.EntangledSet {
				ent += flows[i]
			}
			if float64(ent) > f.EntangledCap {
				return
			}
			val := 0
			for i, ed := range f.Edges {
				if ed.To == f.T {
					val += flows[i]
				}
			}
			if val > best {
				best = val
			}
			return
		}
		for v := 0; v <= int(f.Edges[e].Cap); v++ {
			flows[e] = v
			rec(e + 1)
		}
		flows[e] = 0
	}
	rec(0)
	return best
}
