package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/par"
	"repro/internal/reliability"
	"repro/internal/round"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// T13MulticastTree quantifies §1.4's critique of tree-based distribution
// against the paper's multi-path overlay, on the same instances:
//
//   - delivered quality (a single lossy path caps a tree sink's quality),
//   - the co-loss ratio (tree sinks sharing an upstream lose the *same*
//     packets: "all of the leaves downstream will see the same loss"),
//   - the blast radius of a single reflector failure ("all of the leaves
//     downstream of the failure lose access to the stream").
func T13MulticastTree(cfg Config) *stats.Table {
	t := stats.NewTable("T13 — §1.4: single-tree distribution vs the paper's multi-path overlay",
		"design", "cost/LP", "sinks meeting Φ (sim)", "mean post-loss", "joint-loss rate/pair", "co-loss ratio", "worst blast radius")
	size := gen.DefaultUniform(2, 8, 16)
	if cfg.Quick {
		size = gen.DefaultUniform(2, 6, 10)
	}
	in := gen.Uniform(size, cfg.seed(3))
	lpRes, err := core.Solve(in, core.Options{Seed: 1, LPOnly: true})
	if err != nil {
		t.AddNote("LP failed: %v", err)
		return t
	}

	packets := 60000
	if cfg.Quick {
		packets = 15000
	}
	evaluate := func(d *netmodel.Design) (meet string, mean, joint, coLoss float64, blast int) {
		scfg := sim.DefaultConfig(cfg.seed(8))
		scfg.Packets = packets
		scfg.TrackCoLoss = true
		r := sim.Run(in, d, scfg)
		return fmt.Sprintf("%d/%d", r.MeetCount, r.DemandingSinks), r.MeanPostLoss,
			r.JointLossRate, r.CoLossRatio, tree.MaxBlastRadius(in, d)
	}

	tr := tree.Build(in)
	meet, mean, joint, co, blast := evaluate(tr.Design)
	t.AddRowf("single tree (§1.4)", tr.Design.Cost(in)/lpRes.LPCost, meet, mean, joint, co, blast)

	opts := core.DefaultOptions(cfg.seed(5))
	opts.RepairCoverage = true
	ov, err := core.Solve(in, opts)
	if err != nil {
		t.AddNote("overlay solve failed: %v", err)
		return t
	}
	meet, mean, joint, co, blast = evaluate(ov.Design)
	t.AddRowf("multi-path overlay", ov.Audit.Cost/lpRes.LPCost, meet, mean, joint, co, blast)

	t.AddNote("joint-loss rate/pair: probability a same-stream sink pair loses the SAME packet — the absolute")
	t.AddNote("measure of §1.4's \"all leaves downstream see the same loss\"; the tree is an order of magnitude worse")
	t.AddNote("co-loss ratio: joint losses / independence prediction; >1 for both (shared upstream hops), but the")
	t.AddNote("overlay's ratio sits on a far smaller base rate — its residual losses are rare simultaneous-copy events")
	t.AddNote("blast radius: sinks losing ALL service if one reflector dies — §1.4's reconfiguration-outage critique")
	return t
}

// T14IngestCaps measures the §6.2 extension: with constraint (8)
// (Σ_k y^k_i ≤ u_i) in the LP, the rounding can only promise an O(log n)
// violation — §6.2 proves a constant-factor guarantee would yield a
// constant-factor set-cover approximation. The table reports the violation
// the rounding actually incurs at the paper's constants and in the
// randomization regime.
func T14IngestCaps(cfg Config) *stats.Table {
	t := stats.NewTable("T14 — §6.2 ingest caps (constraint (8)): realized violation vs the O(log n) ceiling",
		"rounding c", "λ=c·ln n", "trials", "max ingest excess", "mean cost/LP", "≤ λ·u?")
	trials := cfg.trials(20)
	size := [3]int{4, 8, 20}
	if cfg.Quick {
		size = [3]int{3, 6, 10}
	}
	mkInstance := func(seed uint64) *netmodel.Instance {
		in := gen.Uniform(gen.DefaultUniform(size[0], size[1], size[2]), seed)
		in.IngestCap = make([]float64, in.NumReflectors)
		for i := range in.IngestCap {
			in.IngestCap[i] = 2 // tight: half the streams at most
		}
		return in
	}
	for _, c := range []float64{1, 4, 64} {
		type obs struct {
			excess, ratio float64
			ok            bool
		}
		outs := par.Map(trials, cfg.Workers, func(ti int) obs {
			in := mkInstance(cfg.seed(ti))
			fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
			if err != nil {
				return obs{}
			}
			r := round.Apply(in, fs, round.Options{C: c, Seed: cfg.seed(ti) + 7, MinMultiplier: 1})
			inst := r.Instrument(in, fs.Cost)
			return obs{excess: inst.MaxIngestExcess, ratio: r.Cost / fs.Cost, ok: true}
		})
		maxEx, n := 0.0, 0
		var ratios []float64
		for _, o := range outs {
			if !o.ok {
				continue
			}
			n++
			if o.excess > maxEx {
				maxEx = o.excess
			}
			ratios = append(ratios, o.ratio)
		}
		lambda := math.Max(c*math.Log(float64(size[2])), 1)
		t.AddRowf(c, lambda, n, maxEx, stats.Mean(ratios), yes(maxEx <= lambda*2))
	}
	t.AddNote("u_i = 2 streams per reflector with %d streams total — the cap binds", size[0])
	t.AddNote("§6.2: constant-factor violation of (7),(8) would give a constant-factor SET COVER algorithm;")
	t.AddNote("the c·log n violation of the scaled rounding is the best achievable guarantee")
	return t
}

// T15CorrelatedOutages compares the §1.3 independent-loss prediction with
// the exact correlated-failure computation when ISPs fail as units (the
// abstract's "extensions in which some losses may be correlated"), for a
// color-diverse and a concentrated design.
func T15CorrelatedOutages(cfg Config) *stats.Table {
	t := stats.NewTable("T15 — correlated ISP outages: independent prediction vs exact correlated failure",
		"design", "ISP outage q", "mean failure (independent pred.)", "mean failure (exact correlated)", "availability")
	ccfg := gen.DefaultClustered(2, 2, 3, 5)
	if cfg.Quick {
		ccfg = gen.DefaultClustered(2, 2, 3, 3)
	}
	in := gen.Clustered(ccfg, cfg.seed(0))

	opts := core.DefaultOptions(cfg.seed(1))
	opts.RepairCoverage = true
	diverse, err := core.Solve(in, opts)
	if err != nil {
		t.AddNote("solve failed: %v", err)
		return t
	}
	// Concentrated design: same instance without color constraints and
	// with ISP 0 discounted, so copies pile onto one ISP.
	concIn := in.Clone()
	concIn.Color = nil
	concIn.NumColors = 0
	for i := 0; i < concIn.NumReflectors; i++ {
		if in.Color[i] == 0 {
			concIn.ReflectorCost[i] *= 0.2
			for k := 0; k < concIn.NumSources; k++ {
				concIn.SrcRefCost[k][i] *= 0.2
			}
			for j := 0; j < concIn.NumSinks; j++ {
				concIn.RefSinkCost[i][j] *= 0.2
			}
		}
	}
	conc, err := core.Solve(concIn, opts)
	if err != nil {
		t.AddNote("concentrated solve failed: %v", err)
		return t
	}

	for _, q := range []float64{0.01, 0.05, 0.2} {
		m := reliability.UniformOutage(in.NumColors, q)
		for _, row := range []struct {
			name string
			d    *netmodel.Design
		}{{"ISP-diverse (§6.4)", diverse.Design}, {"concentrated", conc.Design}} {
			var pred, exact float64
			n := 0
			for j := 0; j < in.NumSinks; j++ {
				if in.Threshold[j] <= 0 {
					continue
				}
				n++
				pred += reliability.IndependentPrediction(in, row.d, j, m)
				exact += reliability.SinkFailureCorrelated(in, row.d, j, m)
			}
			av := reliability.ExpectedAvailability(in, row.d, m)
			t.AddRowf(row.name, q, pred/float64(n), exact/float64(n), av)
		}
	}
	t.AddNote("for diverse designs (one copy per ISP) the independent prediction is EXACT; for concentrated")
	t.AddNote("designs it underestimates failure because same-ISP copies die together — the §6.4 modeling point")
	return t
}
