package obs

import "runtime/metrics"

// ReadAllocs returns the process's cumulative heap allocation (bytes,
// objects) via runtime/metrics — unlike runtime.ReadMemStats it does not
// stop the world, so stage-level allocation deltas are cheap enough to
// leave on.
//
// The counters are process-global: a delta across a code region is exact
// when that region is the only thing allocating (the monolithic solve
// pipeline) and an attribution over everything co-running otherwise (the
// shard-solve stage's concurrent per-shard solves all land in the stage's
// delta — which is still the true cost of the stage, just not of any one
// shard). Per-goroutine accounting does not exist in the runtime; callers
// that need exact per-task numbers must run the task unshared.
func ReadAllocs() (bytes, objects uint64) {
	s := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		bytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		objects = s[1].Value.Uint64()
	}
	return bytes, objects
}
