package obs

// The canonical metric naming scheme. Every telemetry number the engine
// produces — stage walls, solver factorization events, shard coordination,
// churn, SLOs — is registered here under one prefix (overlay_) with
// Prometheus-conventional suffixes (_total for counters, _seconds for
// durations). The README's metric reference table is generated from these
// help strings; CI's obs-smoke job greps /metrics for the names.
const (
	// Epoch loop (internal/live).
	MEpochsTotal     = "overlay_epochs_total"
	MEpoch           = "overlay_epoch"
	MEpochWall       = "overlay_epoch_wall_seconds"
	MEpochCost       = "overlay_epoch_cost"
	MActiveSinks     = "overlay_active_sinks"
	MActiveViewers   = "overlay_active_viewers"
	MBuiltReflectors = "overlay_built_reflectors"
	MAuditFailures   = "overlay_audit_failures_total"

	// Churn against the previous epoch's deployment.
	MChurnArcs       = "overlay_churn_arcs_total"
	MChurnReflectors = "overlay_churn_reflectors_total"
	MChurnStreams    = "overlay_churn_streams_total"
	MChurnViewers    = "overlay_churn_viewers_total"

	// Availability SLO (windowed; see live.Config.SLOWindow/SLOTarget).
	MSLOWindowAvailability = "overlay_slo_window_availability"
	MSLOBreaches           = "overlay_slo_breaches_total"
	MRegionAvailability    = "overlay_region_slo_availability"
	MStreamAvailability    = "overlay_stream_slo_availability"

	// Solve pipeline (internal/core). Stage walls carry a stage label with
	// the pipeline stage name (lp-build, lp-patch, lp-solve, round,
	// integralize, repair, audit, shard-partition, shard-solve,
	// shard-coordinate).
	MSolvesTotal = "overlay_solves_total"
	MStageWall   = "overlay_stage_wall_seconds"
	MStageRuns   = "overlay_stage_runs_total"
	MLPPivots    = "overlay_lp_pivots_total"

	// Simplex factorization events (internal/lp, the PR-6 counters).
	MLPRefactorizations = "overlay_lp_refactorizations_total"
	MLPFTUpdates        = "overlay_lp_ft_updates_total"
	MLPDevexResets      = "overlay_lp_devex_resets_total"

	// Incremental LP rebuild (lpmodel.Patcher).
	MLPPatchedCells = "overlay_lp_patched_cells_total"
	MLPRebuilds     = "overlay_lp_rebuilds_total"

	// Sharded solves (internal/shard).
	MShardExtractionsSkipped = "overlay_shard_extractions_skipped_total"
	MShardRebidRounds        = "overlay_shard_rebid_rounds_total"
	MShardResolves           = "overlay_shard_resolves_total"
	MShardFallbacks          = "overlay_shard_fallbacks_total"
	MShardExchangeRounds     = "overlay_shard_exchange_rounds_total"
	MShardContestedRefs      = "overlay_shard_contested_reflectors_total"
	MShardExchangeGap        = "overlay_shard_exchange_gap"

	// Session re-optimization (core.Session).
	MBiasFlips = "overlay_session_bias_flips_total"

	// Hierarchical viewer aggregation (internal/agg).
	MAggGroups        = "overlay_agg_groups"
	MAggUnits         = "overlay_agg_units"
	MAggLPFreeEpochs  = "overlay_agg_lp_free_epochs_total"
	MAggWeightChanges = "overlay_agg_weight_changes_total"
)

// canonicalFamilies drives both Canonical and the README reference table.
var canonicalFamilies = []struct {
	Name string
	Kind Kind
	Help string
}{
	{MEpochsTotal, KindCounter, "Epochs the live engine has solved."},
	{MEpoch, KindGauge, "Current epoch index of the running timeline."},
	{MEpochWall, KindHistogram, "Wall time of one epoch's re-provisioning solve."},
	{MEpochCost, KindGauge, "Deployed design cost on the true (unbiased) instance."},
	{MActiveSinks, KindGauge, "Demand units (subscriptions) with positive thresholds."},
	{MActiveViewers, KindGauge, "Real sinks (viewers) with at least one active subscription."},
	{MBuiltReflectors, KindGauge, "Reflectors in service this epoch."},
	{MAuditFailures, KindCounter, "Epochs whose design missed the paper's guarantee."},
	{MChurnArcs, KindCounter, "Service arcs changed vs the previous deployment."},
	{MChurnReflectors, KindCounter, "Reflector build flips vs the previous deployment."},
	{MChurnStreams, KindCounter, "Subscriptions whose serving reflector set changed."},
	{MChurnViewers, KindCounter, "Fractional viewer churn (each viewer counts the fraction of its streams that moved)."},
	{MSLOWindowAvailability, KindGauge, "Fraction of the trailing SLO window's epochs that met the availability target."},
	{MSLOBreaches, KindCounter, "Epochs that missed the availability target."},
	{MRegionAvailability, KindGauge, "Per-region fraction of active sinks meeting their reliability threshold."},
	{MStreamAvailability, KindGauge, "Per-stream fraction of active sinks meeting their reliability threshold."},
	{MSolvesTotal, KindCounter, "Full pipeline solves (one per epoch, plus one-shot CLI solves)."},
	{MStageWall, KindHistogram, "Wall time per pipeline stage run, labeled by stage."},
	{MStageRuns, KindCounter, "Pipeline stage executions, labeled by stage."},
	{MLPPivots, KindCounter, "Simplex pivots (all shards, all coordination rounds)."},
	{MLPRefactorizations, KindCounter, "From-scratch basis factorizations."},
	{MLPFTUpdates, KindCounter, "Warm starts that adopted a persisted factorization (Forrest-Tomlin resume)."},
	{MLPDevexResets, KindCounter, "Devex reference-framework resets."},
	{MLPPatchedCells, KindCounter, "LP matrix/rhs/objective cells rewritten in place by the incremental rebuild."},
	{MLPRebuilds, KindCounter, "Full LP builds the incremental rebuild fell back to."},
	{MShardExtractionsSkipped, KindCounter, "Shards that reused their cached sub-instance (empty routed dirty set)."},
	{MShardRebidRounds, KindCounter, "Capacity re-bidding coordination rounds."},
	{MShardResolves, KindCounter, "Shard re-solves triggered by coordination."},
	{MShardFallbacks, KindCounter, "Sharded solves that fell back to the monolithic pipeline."},
	{MShardExchangeRounds, KindCounter, "Hierarchical dual-price exchange clearing rounds."},
	{MShardContestedRefs, KindCounter, "Distinct reflectors whose capacity the exchange re-cleared."},
	{MShardExchangeGap, KindGauge, "Final relative bid/ask gap of the last hierarchical exchange."},
	{MBiasFlips, KindCounter, "Stickiness-bias cost cells flipped by deployment changes between epochs."},
	{MAggGroups, KindGauge, "Aggregates (weighted super-sinks) the LP solves over."},
	{MAggUnits, KindGauge, "Aggregate demand units — the LP's sink axis under aggregation."},
	{MAggLPFreeEpochs, KindCounter, "Epochs whose churn was weight-neutral inside every aggregate: no LP build, patch, or pivot."},
	{MAggWeightChanges, KindCounter, "Aggregate units whose member-subscription weight changed."},
}

// Canonical pre-registers every canonical metric family with its help text,
// so a freshly started process exposes the full scheme at value 0 instead
// of families popping into existence as code paths first run. Histogram
// families get DefaultDurationBuckets. Idempotent.
func Canonical(r *Registry) {
	if r == nil {
		return
	}
	for _, f := range canonicalFamilies {
		r.Describe(f.Name, f.Kind, f.Help, nil)
		// Instantiate unlabeled families at zero; labeled families
		// (stage, region) materialize with their first labeled series.
		switch f.Name {
		case MStageWall, MStageRuns, MRegionAvailability, MStreamAvailability:
		default:
			switch f.Kind {
			case KindCounter:
				r.Counter(f.Name)
			case KindGauge:
				r.Gauge(f.Name)
			case KindHistogram:
				r.Histogram(f.Name, nil)
			}
		}
	}
}
