package obs

import (
	"strings"
	"testing"
)

// TestPromTextGolden locks the exposition format exactly: family ordering,
// HELP/TYPE headers, label rendering, cumulative histogram buckets, and
// float formatting. Scrapers (and CI's obs-smoke greps) depend on this
// shape.
func TestPromTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Describe("overlay_demo_wall_seconds", KindHistogram, "Demo wall time.", []float64{0.001, 0.01, 0.1})
	r.Describe("overlay_demo_total", KindCounter, "Demo counter.", nil)
	r.Counter("overlay_demo_total").Add(3)
	r.Counter("overlay_demo_total", L("stage", "lp-solve")).Add(1.5)
	r.Gauge("overlay_demo_cost").Set(42.25)
	h := r.Histogram("overlay_demo_wall_seconds", nil)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE overlay_demo_cost gauge
overlay_demo_cost 42.25
# HELP overlay_demo_total Demo counter.
# TYPE overlay_demo_total counter
overlay_demo_total 3
overlay_demo_total{stage="lp-solve"} 1.5
# HELP overlay_demo_wall_seconds Demo wall time.
# TYPE overlay_demo_wall_seconds histogram
overlay_demo_wall_seconds_bucket{le="0.001"} 1
overlay_demo_wall_seconds_bucket{le="0.01"} 1
overlay_demo_wall_seconds_bucket{le="0.1"} 2
overlay_demo_wall_seconds_bucket{le="+Inf"} 3
overlay_demo_wall_seconds_sum 2.0505
overlay_demo_wall_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("prometheus text drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", L("k", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestExpvarFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h", []float64{1, 10}).Observe(5)
	m, ok := r.ExpvarFunc()().(map[string]any)
	if !ok {
		t.Fatal("expvar func did not return a map")
	}
	if m["c"] != 2.0 {
		t.Fatalf("expvar counter = %v", m["c"])
	}
	hv, ok := m["h"].(map[string]any)
	if !ok || hv["count"] != uint64(1) {
		t.Fatalf("expvar histogram = %v", m["h"])
	}
}
