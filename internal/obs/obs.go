// Package obs is the unified observability layer of the repo: a
// zero-dependency metrics registry (counters, gauges, fixed-bucket
// histograms with atomic hot paths), hierarchical solve tracing (spans
// emitted as JSONL, renderable as a per-epoch flame summary), and runtime
// surfaces (a Prometheus text-format /metrics handler, /healthz, /slo, and
// pprof on an opt-in debug server).
//
// The paper's §1.3 monitoring loop — "costs, losses and demands are
// re-measured and the network is re-provisioned" — implies an operational
// layer next to the algorithm: Akamai's production deployment of this
// design ran continuous telemetry on reflector load and delivery quality.
// This package is that layer's substrate. Every bespoke counter the engine
// grew across PRs 1–6 (stage walls, LP factorization events, shard
// re-bidding rounds, churn and SLO numbers) flows through one Registry
// under one naming scheme (see naming.go), while the pre-existing
// Result/EpochReport JSON stays exactly as it was.
//
// Everything is nil-safe: a nil *Observer, *Registry, *Tracer, *Span, or
// metric handle no-ops, so instrumentation sites need no conditionals and
// a run without observability pays only a nil check.
package obs

// Observer bundles the two observability sinks an instrumented call tree
// threads along: the metrics registry and the current trace position. A nil
// Observer (or one with both sinks nil) disables observability; partial
// configurations work — metrics without tracing, tracing without metrics.
type Observer struct {
	// Reg receives metrics (nil = metrics off).
	Reg *Registry
	// Tr emits trace spans (nil = tracing off).
	Tr *Tracer
	// Span is the parent for spans started through this observer (nil =
	// new spans are roots).
	Span *Span
}

// Enabled reports whether any sink is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Reg != nil || o.Tr != nil)
}

// Registry returns the attached registry (nil when metrics are off).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// StartSpan opens a child span of the observer's current span and returns a
// derived observer whose Span is the new one (for passing further down the
// call tree) together with the span itself (for the caller to End). With
// tracing off it returns the receiver unchanged and a nil span, so the
// usual pattern is unconditional:
//
//	co, sp := o.StartSpan("lp-solve")
//	defer sp.End()
func (o *Observer) StartSpan(name string, attrs ...Attr) (*Observer, *Span) {
	if o == nil || o.Tr == nil {
		return o, nil
	}
	sp := o.Tr.Start(o.Span, name, attrs...)
	return &Observer{Reg: o.Reg, Tr: o.Tr, Span: sp}, sp
}

// TraceOnly returns an observer that traces under the same current span but
// records no metrics — used for nested solves (per-shard pipelines) whose
// counters the outer pipeline already aggregates, so nothing double-counts.
func (o *Observer) TraceOnly() *Observer {
	if o == nil || o.Tr == nil {
		return nil
	}
	return &Observer{Tr: o.Tr, Span: o.Span}
}

// Counter resolves a counter in the attached registry (nil without one).
func (o *Observer) Counter(name string, labels ...Label) *Counter {
	if o == nil || o.Reg == nil {
		return nil
	}
	return o.Reg.Counter(name, labels...)
}

// Gauge resolves a gauge in the attached registry (nil without one).
func (o *Observer) Gauge(name string, labels ...Label) *Gauge {
	if o == nil || o.Reg == nil {
		return nil
	}
	return o.Reg.Gauge(name, labels...)
}

// Histogram resolves a histogram in the attached registry (nil without
// one). Bucket bounds come from the family's registration (naming.go
// registers every canonical family); an unregistered name gets
// DefaultDurationBuckets.
func (o *Observer) Histogram(name string, labels ...Label) *Histogram {
	if o == nil || o.Reg == nil {
		return nil
	}
	return o.Reg.Histogram(name, nil, labels...)
}
