package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FlameNode aggregates spans sharing the same name-path (root→…→name)
// across the whole trace: a 50-epoch run folds into one tree whose "epoch"
// node has Count 50. Self time is total minus the children's totals —
// the per-epoch flame summary the scale sweeps use to find hot paths.
type FlameNode struct {
	Name     string
	Count    int
	TotalNS  int64
	Events   int
	Children []*FlameNode

	children map[string]*FlameNode
}

// SelfNS is the node's total minus its children's totals (time spent in
// the node itself).
func (n *FlameNode) SelfNS() int64 {
	self := n.TotalNS
	for _, c := range n.Children {
		self -= c.TotalNS
	}
	return self
}

// Flame folds trace records into an aggregated call tree. Spans whose
// parent is missing from the trace (or zero) become roots. The returned
// pseudo-root has no name; its children are the real roots.
func Flame(recs []SpanRecord) *FlameNode {
	byID := make(map[uint64]*SpanRecord, len(recs))
	for i := range recs {
		byID[recs[i].ID] = &recs[i]
	}
	// path resolves the name chain of a span by walking parents.
	var path func(r *SpanRecord) []string
	path = func(r *SpanRecord) []string {
		if r.Parent == 0 {
			return []string{r.Name}
		}
		p, ok := byID[r.Parent]
		if !ok {
			return []string{r.Name}
		}
		return append(path(p), r.Name)
	}
	root := &FlameNode{children: map[string]*FlameNode{}}
	for i := range recs {
		r := &recs[i]
		node := root
		for _, name := range path(r) {
			child, ok := node.children[name]
			if !ok {
				child = &FlameNode{Name: name, children: map[string]*FlameNode{}}
				node.children[name] = child
				node.Children = append(node.Children, child)
			}
			node = child
		}
		node.Count++
		node.TotalNS += r.DurNS
		node.Events += len(r.Events)
	}
	var sortTree func(n *FlameNode)
	sortTree = func(n *FlameNode) {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].TotalNS > n.Children[j].TotalNS })
		for _, c := range n.Children {
			sortTree(c)
		}
	}
	sortTree(root)
	for _, c := range root.Children {
		root.TotalNS += c.TotalNS
	}
	return root
}

// Render prints the flame tree as an indented table: one row per path with
// call count, total and self wall, and the share of the trace total.
func (n *FlameNode) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %8s %12s %12s %6s %7s\n", "span", "calls", "total", "self", "%", "events")
	total := n.TotalNS
	if total == 0 {
		total = 1
	}
	var walk func(node *FlameNode, depth int)
	walk = func(node *FlameNode, depth int) {
		name := strings.Repeat("  ", depth) + node.Name
		if len(name) > 42 {
			name = name[:39] + "..."
		}
		fmt.Fprintf(&b, "%-42s %8d %12v %12v %5.1f%% %7d\n",
			name, node.Count,
			time.Duration(node.TotalNS).Round(time.Microsecond),
			time.Duration(node.SelfNS()).Round(time.Microsecond),
			100*float64(node.TotalNS)/float64(total), node.Events)
		for _, c := range node.Children {
			walk(c, depth+1)
		}
	}
	for _, c := range n.Children {
		walk(c, 0)
	}
	return b.String()
}
