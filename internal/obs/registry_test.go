package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MLPPivots)
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // counters never go down
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	if r.Counter(MLPPivots) != c {
		t.Fatal("same (name, labels) resolved to a different instance")
	}
	if r.Counter(MLPPivots, L("stage", "x")) == c {
		t.Fatal("labeled series must be a distinct instance")
	}

	g := r.Gauge(MEpochCost)
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}

	// Label order must not matter.
	a := r.Counter("m", L("a", "1"), L("b", "2"))
	b := r.Counter("m", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed instance identity")
	}
}

func TestNilRegistryAndHandlesNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	r.Describe("x", KindCounter, "h", nil)
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer enabled")
	}
	co, sp := o.StartSpan("x")
	if co != nil || sp != nil {
		t.Fatal("nil observer started a span")
	}
	sp.End()
	sp.Event("e")
	o.Counter("x").Inc()
	o.Histogram("x").Observe(1)
	o.Gauge("x").Set(1)
	if o.TraceOnly() != nil {
		t.Fatal("nil observer TraceOnly not nil")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 5, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1.5+1.5+3+5+9+100; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// The median sample is 3, so the estimate lands in the (2,4] bucket.
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("p50 = %g, want within (2,4]", q)
	}
	// Tail quantile in the +Inf bucket reports the last finite bound.
	if q := h.Quantile(0.99); q != 8 {
		t.Fatalf("p99 = %g, want 8 (lower bound of the +Inf bucket)", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g", q)
	}
}

func TestHistogramBucketsFromDescribe(t *testing.T) {
	r := NewRegistry()
	r.Describe("w", KindHistogram, "help", []float64{10, 20})
	h := r.Histogram("w", nil) // registration's buckets win
	h.Observe(15)
	if q := h.Quantile(1); q > 20 {
		t.Fatalf("observation escaped described buckets: %g", q)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge resolution of a counter family did not panic")
		}
	}()
	r.Gauge("m")
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// concurrent resolution, updates, and scrapes — and checks totals. Run
// under -race this is the registry's data-race lock (CI's race matrix).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	Canonical(r)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter(MLPPivots).Inc()
				r.Gauge(MEpochCost).Set(float64(i))
				r.Histogram(MStageWall, nil, L("stage", "lp-solve")).Observe(float64(i%10) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WriteProm(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter(MLPPivots).Value(); got != workers*perWorker {
		t.Fatalf("counter = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram(MStageWall, nil, L("stage", "lp-solve")).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestCanonicalIdempotentAndComplete(t *testing.T) {
	r := NewRegistry()
	Canonical(r)
	Canonical(r)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, f := range canonicalFamilies {
		if !strings.Contains(out, "# TYPE "+f.Name+" ") {
			t.Errorf("canonical family %s missing from exposition", f.Name)
		}
		if strings.Count(out, "# TYPE "+f.Name+" ") != 1 {
			t.Errorf("family %s registered more than once", f.Name)
		}
	}
}

func TestReadAllocsMonotone(t *testing.T) {
	b1, o1 := ReadAllocs()
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	_ = sink
	b2, o2 := ReadAllocs()
	if b2 < b1 || o2 < o1 {
		t.Fatalf("allocation counters went backwards: %d->%d bytes, %d->%d objects", b1, b2, o1, o2)
	}
	if b2-b1 < 64*4096/2 {
		t.Fatalf("allocation delta %d bytes did not cover the %d we allocated", b2-b1, 64*4096)
	}
}
