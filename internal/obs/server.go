package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// HealthStatus is the /healthz payload: the liveness view of a running
// timeline (or a finished one, Running=false). OK false serves 503 so load
// balancers and alerting probes need no JSON parsing.
type HealthStatus struct {
	OK bool `json:"ok"`
	// Running reports whether a timeline is currently advancing.
	Running bool `json:"running"`
	// Scenario/Policy identify the run; Epoch/Epochs its progress.
	Scenario string `json:"scenario,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Epoch    int    `json:"epoch"`
	Epochs   int    `json:"epochs"`
	// AuditOK is the last epoch's audit verdict; SLOOk whether it met the
	// availability target.
	AuditOK bool `json:"audit_ok"`
	SLOOk   bool `json:"slo_ok"`
	// UptimeSeconds is filled at serve time.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// RegionSLO is one region's row of the /slo breakdown.
type RegionSLO struct {
	Region int `json:"region"`
	// Active/Met count this epoch's active demand units in the region and
	// how many met their reliability threshold; Frac is Met/Active.
	Active int     `json:"active_sinks"`
	Met    int     `json:"met"`
	Frac   float64 `json:"frac"`
	// WindowFrac is the trailing-window availability of the region alone.
	WindowFrac float64 `json:"window_frac"`
}

// StreamSLO is one stream's row of the /slo breakdown: the region rule
// applied stream-locally, answering "which channel is degraded" where
// RegionSLO answers "where did the outage land".
type StreamSLO struct {
	Stream int `json:"stream"`
	// Active/Met count this epoch's active demand units on the stream and
	// how many met their reliability threshold; Frac is Met/Active.
	Active int     `json:"active_sinks"`
	Met    int     `json:"met"`
	Frac   float64 `json:"frac"`
	// WindowFrac is the trailing-window availability of the stream alone.
	WindowFrac float64 `json:"window_frac"`
}

// SLOStatus is the /slo payload: the windowed availability SLO plus
// per-region and per-stream breakdowns (the alerting view of the §1.3
// monitoring loop).
type SLOStatus struct {
	Window int     `json:"window"`
	Target float64 `json:"target"`
	// Ok / WindowFrac mirror the current epoch's SLO fields; Breaches and
	// MinWindowFrac summarize the run so far.
	Ok            bool        `json:"ok"`
	WindowFrac    float64     `json:"window_frac"`
	Breaches      int         `json:"breaches"`
	MinWindowFrac float64     `json:"min_window_frac"`
	Regions       []RegionSLO `json:"regions,omitempty"`
	Streams       []StreamSLO `json:"streams,omitempty"`
}

// Server is the opt-in debug/telemetry endpoint: /metrics (Prometheus
// text), /healthz, /slo, /debug/vars (expvar), and /debug/pprof. It is the
// seed of the overlayd daemon — overlaylive -listen serves one during a
// live run. State setters are safe for concurrent use with serving.
type Server struct {
	reg    *Registry
	mux    *http.ServeMux
	start  time.Time
	health atomic.Pointer[HealthStatus]
	slo    atomic.Pointer[SLOStatus]
}

// NewServer builds a server exposing the registry. The registry is also
// published to expvar under "overlay" (first server wins; /debug/vars
// serves the process-global expvar set).
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	PublishExpvar("overlay", reg)
	s.mux.HandleFunc("/metrics", s.serveMetrics)
	s.mux.HandleFunc("/healthz", s.serveHealth)
	s.mux.HandleFunc("/slo", s.serveSLO)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's routing handler, for mounting on any
// net/http server (or an httptest one).
func (s *Server) Handler() http.Handler { return s.mux }

// SetHealth atomically replaces the /healthz state.
func (s *Server) SetHealth(h HealthStatus) { s.health.Store(&h) }

// SetSLO atomically replaces the /slo state.
func (s *Server) SetSLO(sl SLOStatus) { s.slo.Store(&sl) }

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteProm(w)
}

func (s *Server) serveHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.health.Load()
	var out HealthStatus
	if h != nil {
		out = *h
	}
	out.UptimeSeconds = time.Since(s.start).Seconds()
	code := http.StatusOK
	if h == nil || !out.OK {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

func (s *Server) serveSLO(w http.ResponseWriter, _ *http.Request) {
	sl := s.slo.Load()
	if sl == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no SLO state yet"})
		return
	}
	writeJSON(w, http.StatusOK, sl)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
