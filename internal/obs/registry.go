package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one key="value" dimension of a metric instance. Metrics with
// the same family name but different label sets are distinct time series
// (overlay_stage_wall_seconds{stage="lp-solve"} vs {stage="round"}).
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind is the metric family type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing float64 (float so fractional
// quantities like viewer churn fit). The hot path is a lock-free CAS add.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter. Negative deltas are ignored (counters only go
// up); nil receivers no-op.
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 that can move both ways.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (nil receivers no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: Observe is a binary search plus
// two atomic adds, cheap enough for the epoch loop's hot path. Buckets are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// tail.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // len(upper)+1, cumulative only at export
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample (nil receivers no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bucket with upper >= v.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding it — the usual Prometheus-style estimate, exact
// only up to bucket resolution. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			var lo, hi float64
			if i == 0 {
				lo = 0
			} else {
				lo = h.upper[i-1]
			}
			if i < len(h.upper) {
				hi = h.upper[i]
			} else {
				// +Inf bucket: report its lower bound.
				return lo
			}
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.upper[len(h.upper)-1]
}

// DefaultDurationBuckets spans 10µs to ~100s in ×2.5 steps — wide enough
// for both a sub-millisecond lp-patch and a multi-second 2000-sink sharded
// epoch. Values are seconds (the canonical unit of every *_seconds metric).
func DefaultDurationBuckets() []float64 {
	return ExpBuckets(10e-6, 2.5, 18)
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// family is one named metric family: a kind, help text, and the instances
// keyed by their serialized label sets.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64
	insts   map[string]*instance
	order   []string // label keys in first-seen order, for stable export
}

type instance struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families. Resolving a handle takes a short critical
// section; the returned handles are lock-free, so hot paths resolve once
// and hold on to them. A nil Registry no-ops on every method.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Describe registers (or re-describes) a family's kind and help text
// without creating an instance. Histogram families take their bucket
// bounds here; nil buckets default to DefaultDurationBuckets. Describing
// an existing family updates only its help text.
func (r *Registry) Describe(name string, kind Kind, help string, buckets []float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		f.help = help
		return
	}
	r.addFamilyLocked(name, kind, help, buckets)
}

func (r *Registry) addFamilyLocked(name string, kind Kind, help string, buckets []float64) *family {
	if kind == KindHistogram && buckets == nil {
		buckets = DefaultDurationBuckets()
	}
	f := &family{name: name, help: help, kind: kind, buckets: buckets,
		insts: make(map[string]*instance)}
	r.fams[name] = f
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return f
}

func (r *Registry) resolve(name string, kind Kind, buckets []float64, labels []Label) *instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = r.addFamilyLocked(name, kind, "", buckets)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	inst, ok := f.insts[key]
	if !ok {
		inst = &instance{labels: append([]Label(nil), labels...)}
		switch kind {
		case KindCounter:
			inst.c = &Counter{}
		case KindGauge:
			inst.g = &Gauge{}
		case KindHistogram:
			h := &Histogram{upper: f.buckets}
			h.counts = make([]atomic.Uint64, len(f.buckets)+1)
			inst.h = h
		}
		f.insts[key] = inst
		f.order = append(f.order, key)
	}
	return inst
}

// Counter returns the counter instance for (name, labels), creating family
// and instance on first use. Nil registries return a nil (no-op) handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.resolve(name, KindCounter, nil, labels).c
}

// Gauge returns the gauge instance for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.resolve(name, KindGauge, nil, labels).g
}

// Histogram returns the histogram instance for (name, labels). buckets are
// used only if the family does not exist yet (Describe or a previous call
// wins); nil falls back to DefaultDurationBuckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.resolve(name, KindHistogram, buckets, labels).h
}

// labelKey serializes a label set into a canonical map key (sorted by
// label key so {a=1,b=2} and {b=2,a=1} are the same instance).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	// One label (the stage tracker's per-run hot path) needs no sort and
	// one concatenation.
	if len(labels) == 1 {
		return labels[0].Key + "=" + labels[0].Value
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// snapshotFamily is the export view of one family, taken under the
// registry lock but reading instance values atomically.
type snapshotFamily struct {
	name    string
	help    string
	kind    Kind
	buckets []float64
	insts   []*instance
}

// snapshot returns families sorted by name, each with instances in
// first-registration order.
func (r *Registry) snapshot() []snapshotFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]snapshotFamily, 0, len(r.names))
	for _, name := range r.names {
		f := r.fams[name]
		sf := snapshotFamily{name: f.name, help: f.help, kind: f.kind, buckets: f.buckets}
		for _, key := range f.order {
			sf.insts = append(sf.insts, f.insts[key])
		}
		out = append(out, sf)
	}
	return out
}
