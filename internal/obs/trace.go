package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value any
}

// A attaches a value to a key.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer emits hierarchical spans as JSONL: one object per completed span,
// events inlined, IDs linking children to parents. The per-span cost at End
// is one reflection-free append-based encode into a buffer reused under the
// tracer mutex, plus one Write — cheap enough that tracing a full epoch
// costs microseconds (the overhead acceptance test in bench_test.go bounds
// the end-to-end tax).
//
// The record schema (stable, documented in the README):
//
//	{"span":7,"parent":3,"name":"lp-solve","start_ns":123,"dur_ns":456,
//	 "attrs":{"shard":2},
//	 "events":[{"name":"refactorization","at_ns":200,"attrs":{"iteration":31}}]}
//
// start_ns/at_ns are monotonic nanoseconds since the tracer was created.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	start time.Time
	ids   atomic.Uint64
	err   error
}

// NewTracer writes JSONL trace records to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now()}
}

// Err returns the first write/encode error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one timed region of the solve hierarchy. A span belongs to the
// goroutine that started it: concurrent work gets concurrent child spans,
// never shared ones. Nil spans no-op everywhere.
type Span struct {
	t       *Tracer
	id      uint64
	parent  uint64
	name    string
	attrs   []Attr
	started time.Time
	events  []spanEvent
}

// spanEvent buffers one Event until the span ends, attrs unconverted.
type spanEvent struct {
	name  string
	atNS  int64
	attrs []Attr
}

// Start opens a span under parent (nil parent = root). Nil tracers return
// nil spans.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, id: t.ids.Add(1), name: name, attrs: attrs, started: time.Now()}
	if parent != nil {
		sp.parent = parent.id
	}
	return sp
}

// Event records a point-in-time occurrence inside the span (a simplex
// refactorization, an FT adoption). Buffered and emitted with the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.events = append(s.events, spanEvent{
		name:  name,
		atNS:  time.Since(s.t.start).Nanoseconds(),
		attrs: attrs,
	})
}

// End closes the span and emits its record.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	startNS := s.started.Sub(t.start).Nanoseconds()
	durNS := time.Since(s.started).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b := append(t.buf[:0], `{"span":`...)
	b = strconv.AppendUint(b, s.id, 10)
	if s.parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, s.parent, 10)
	}
	b = append(b, `,"name":`...)
	b = appendJSONString(b, s.name)
	b = append(b, `,"start_ns":`...)
	b = strconv.AppendInt(b, startNS, 10)
	b = append(b, `,"dur_ns":`...)
	b = strconv.AppendInt(b, durNS, 10)
	b = appendAttrs(b, s.attrs)
	if len(s.events) > 0 {
		b = append(b, `,"events":[`...)
		for i, e := range s.events {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"name":`...)
			b = appendJSONString(b, e.name)
			b = append(b, `,"at_ns":`...)
			b = strconv.AppendInt(b, e.atNS, 10)
			b = appendAttrs(b, e.attrs)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// appendAttrs appends `,"attrs":{...}` (nothing for an empty set).
func appendAttrs(b []byte, attrs []Attr) []byte {
	if len(attrs) == 0 {
		return b
	}
	b = append(b, `,"attrs":{`...)
	for i, a := range attrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		b = appendJSONValue(b, a.Value)
	}
	return append(b, '}')
}

// appendJSONValue encodes the attribute value types the solve stack uses
// without reflection, deferring to encoding/json for anything else.
func appendJSONValue(b []byte, v any) []byte {
	switch v := v.(type) {
	case string:
		return appendJSONString(b, v)
	case int:
		return strconv.AppendInt(b, int64(v), 10)
	case int64:
		return strconv.AppendInt(b, v, 10)
	case uint64:
		return strconv.AppendUint(b, v, 10)
	case bool:
		return strconv.AppendBool(b, v)
	case float64:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	default:
		data, err := json.Marshal(v)
		if err != nil {
			return appendJSONString(b, fmt.Sprint(v))
		}
		return append(b, data...)
	}
}

// appendJSONString quotes s, falling back to encoding/json for anything
// beyond plain printable ASCII (span/stage names never are).
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			data, _ := json.Marshal(s)
			return append(b, data...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// SpanRecord is the JSONL wire form of a completed span.
type SpanRecord struct {
	ID      uint64         `json:"span"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Events  []EventRecord  `json:"events,omitempty"`
}

// EventRecord is one point event inside a span.
type EventRecord struct {
	Name  string         `json:"name"`
	AtNS  int64          `json:"at_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// ReadTrace parses a JSONL trace written by a Tracer. Unparseable lines
// fail loudly — a trace is evidence, not best-effort logging.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}
