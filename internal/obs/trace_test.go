package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestTraceRoundTripAndHierarchy(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	root := tr.Start(nil, "epoch", A("epoch", 3))
	child := tr.Start(root, "lp-solve")
	child.Event("refactorization", A("iteration", 12))
	child.End()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Spans emit at End: child first, then root.
	if recs[0].Name != "lp-solve" || recs[1].Name != "epoch" {
		t.Fatalf("unexpected order: %s, %s", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child parent %d != root id %d", recs[0].Parent, recs[1].ID)
	}
	if len(recs[0].Events) != 1 || recs[0].Events[0].Name != "refactorization" {
		t.Fatalf("events lost: %+v", recs[0].Events)
	}
	if recs[0].Events[0].Attrs["iteration"] != 12.0 {
		t.Fatalf("event attrs lost: %+v", recs[0].Events[0].Attrs)
	}
	if recs[1].Attrs["epoch"] != 3.0 {
		t.Fatalf("span attrs lost: %+v", recs[1].Attrs)
	}
	if recs[0].DurNS < 0 || recs[0].StartNS < recs[1].StartNS {
		t.Fatalf("child timing outside parent: %+v vs %+v", recs[0], recs[1])
	}
}

// TestTracerConcurrentSpans emits sibling spans from concurrent goroutines
// (the shard-solve shape); run under -race this locks the tracer's
// goroutine safety.
func TestTracerConcurrentSpans(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, b: &buf}
	tr := NewTracer(w)
	root := tr.Start(nil, "shard-solve")
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sp := tr.Start(root, "shard", A("shard", s))
			sp.Event("solved")
			sp.End()
		}(s)
	}
	wg.Wait()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("got %d records, want 9", len(recs))
	}
}

// lockedWriter guards the strings.Builder: the tracer serializes encodes
// under its own mutex, but the test reads buf afterwards, and -race wants
// an explicit happens-before with helper goroutines' writes.
type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func TestFlameAggregation(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	for epoch := 0; epoch < 3; epoch++ {
		root := tr.Start(nil, "epoch", A("epoch", epoch))
		for _, st := range []string{"lp-patch", "lp-solve", "round"} {
			sp := tr.Start(root, st)
			sp.End()
		}
		root.End()
	}
	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	root := Flame(recs)
	if len(root.Children) != 1 || root.Children[0].Name != "epoch" {
		t.Fatalf("flame roots: %+v", root.Children)
	}
	ep := root.Children[0]
	if ep.Count != 3 {
		t.Fatalf("epoch count = %d, want 3", ep.Count)
	}
	if len(ep.Children) != 3 {
		t.Fatalf("epoch children = %d, want 3", len(ep.Children))
	}
	for _, c := range ep.Children {
		if c.Count != 3 {
			t.Fatalf("stage %s count = %d, want 3", c.Name, c.Count)
		}
	}
	if ep.SelfNS() > ep.TotalNS {
		t.Fatal("self exceeded total")
	}
	out := root.Render()
	for _, want := range []string{"epoch", "lp-solve", "calls"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"span\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}
