package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	Canonical(reg)
	reg.Counter(MLPPivots).Add(17)
	s := NewServer(reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, name := range []string{MLPPivots, MLPRefactorizations, MLPFTUpdates, MLPDevexResets, MShardExtractionsSkipped} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(body, MLPPivots+" 17") {
		t.Error("/metrics did not carry the counter value")
	}
}

func TestServerHealthz(t *testing.T) {
	s := NewServer(NewRegistry())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// No health state yet: 503.
	code, _ := get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("empty /healthz status %d, want 503", code)
	}

	s.SetHealth(HealthStatus{OK: true, Running: true, Scenario: "flashcrowd", Epoch: 7, Epochs: 50, AuditOK: true, SLOOk: true})
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d, want 200", code)
	}
	var h HealthStatus
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Epoch != 7 || h.Scenario != "flashcrowd" || h.UptimeSeconds < 0 {
		t.Fatalf("bad health payload: %+v", h)
	}

	// A degraded epoch flips to 503 without dropping the payload.
	s.SetHealth(HealthStatus{OK: false, Running: true, Epoch: 8})
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Epoch != 8 {
		t.Fatalf("degraded payload lost: %v %+v", err, h)
	}
}

// TestServerSLOBreach serves an SLO state with an active breach and a
// per-region breakdown — the shape overlaylive feeds during an outage
// scenario.
func TestServerSLOBreach(t *testing.T) {
	s := NewServer(NewRegistry())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, _ := get(t, srv, "/slo")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("empty /slo status %d, want 503", code)
	}

	s.SetSLO(SLOStatus{
		Window: 8, Target: 0.5, Ok: false, WindowFrac: 0.625,
		Breaches: 3, MinWindowFrac: 0.375,
		Regions: []RegionSLO{
			{Region: 0, Active: 16, Met: 14, Frac: 0.875, WindowFrac: 1},
			{Region: 1, Active: 16, Met: 2, Frac: 0.125, WindowFrac: 0.25},
		},
		Streams: []StreamSLO{
			{Stream: 0, Active: 20, Met: 16, Frac: 0.8, WindowFrac: 1},
			{Stream: 1, Active: 12, Met: 0, Frac: 0, WindowFrac: 0.125},
		},
	})
	code, body := get(t, srv, "/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo status %d", code)
	}
	var sl SLOStatus
	if err := json.Unmarshal([]byte(body), &sl); err != nil {
		t.Fatal(err)
	}
	if sl.Ok || sl.Breaches != 3 || len(sl.Regions) != 2 || len(sl.Streams) != 2 {
		t.Fatalf("bad SLO payload: %+v", sl)
	}
	if sl.Regions[1].Frac >= sl.Target {
		t.Fatalf("breaching region not visible: %+v", sl.Regions[1])
	}
	if sl.Streams[1].Frac >= sl.Target {
		t.Fatalf("breaching stream not visible: %+v", sl.Streams[1])
	}
}

func TestServerPprofAndExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("overlay_test_pprof_total").Inc()
	s := NewServer(reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "overlay") {
		t.Fatalf("/debug/vars status %d", code)
	}
}
