package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family, one line per series,
// histograms expanded into cumulative _bucket/_sum/_count series. Families
// sort by name and instances keep registration order, so output is stable
// — the format golden test locks it.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, inst := range f.insts {
			if err := writePromInstance(w, f, inst); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromInstance(w io.Writer, f snapshotFamily, inst *instance) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(inst.labels, "", 0), promFloat(inst.c.Value()))
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(inst.labels, "", 0), promFloat(inst.g.Value()))
		return err
	case KindHistogram:
		h := inst.h
		cum := uint64(0)
		for i, ub := range h.upper {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(inst.labels, "le", ub), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(inst.labels, "le", math.Inf(1)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(inst.labels, "", 0), promFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(inst.labels, "", 0), cum)
		return err
	}
	return nil
}

// promLabels renders {k="v",...}, appending an le bucket label when leKey
// is non-empty. Empty label sets render as nothing (or {le="..."} alone).
func promLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(promFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ExpvarFunc returns an expvar.Func exposing the registry as a JSON object:
// counters and gauges as numbers, histograms as {count, sum, p50, p95, p99}
// objects, keyed by family name plus a {labels} suffix when labeled.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		out := map[string]any{}
		if r == nil {
			return out
		}
		for _, f := range r.snapshot() {
			for _, inst := range f.insts {
				key := f.name + promLabels(inst.labels, "", 0)
				switch f.kind {
				case KindCounter:
					out[key] = inst.c.Value()
				case KindGauge:
					out[key] = inst.g.Value()
				case KindHistogram:
					out[key] = map[string]any{
						"count": inst.h.Count(),
						"sum":   inst.h.Sum(),
						"p50":   inst.h.Quantile(0.50),
						"p95":   inst.h.Quantile(0.95),
						"p99":   inst.h.Quantile(0.99),
					}
				}
			}
		}
		return out
	}
}

// PublishExpvar publishes the registry under the given expvar name
// (typically "overlay"), replacing nothing if the name is already taken —
// expvar.Publish panics on duplicates, and tests re-publish freely.
func PublishExpvar(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.ExpvarFunc())
}
