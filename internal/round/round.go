// Package round implements the randomized rounding procedure of §3 of the
// paper, taking a fractional LP solution (ẑ, ŷ, x̂) to a partially-rounded
// solution (z̄, ȳ, x̄) in which z and y are 0/1 and only x remains
// fractional (values 0, x̂, or 1/(c·ln n)).
//
// The procedure, with multiplier λ = c·ln n:
//
//	[1] ż_i   = min(ẑ_i·λ, 1)
//	[2] ẏ^k_i = min(ŷ^k_i·λ / ż_i, 1)
//	[3] z̄_i = 1 with probability ż_i
//	[4] if z̄_i = 1: ȳ^k_i = 1 with probability ẏ^k_i
//	[5] if ż_i = ẏ^k_i = 1: x̄ = x̂ (deterministic);
//	    else if ȳ^k_i = 1:  x̄ = 1/λ with probability x̂/ŷ
//	[6] everything else 0
//
// Lemma 4.1 bounds the expected cost by λ·LP; Lemma 4.3 shows each weight
// constraint retains a (1−δ) fraction w.h.p.; Lemma 4.6 bounds fanout
// violation by 2 w.h.p. for c ≥ 24. The Instrumentation struct reports the
// empirically realized factors so the experiment suite can validate all
// three lemmas.
package round

import (
	"math"

	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/stats"
)

// Options configures the rounding.
type Options struct {
	// C is the paper's constant c (≥ 24 for Lemma 4.6; 64 for the
	// δ=1/4 weight guarantee). Default 64.
	C float64
	// Seed drives the coin flips.
	Seed uint64
	// MinMultiplier floors λ = c·ln n. On tiny instances (n ≤ 3) the
	// paper's λ would be < c; the floor keeps the procedure sane without
	// changing asymptotics. Default 1 (i.e. λ never shrinks values).
	MinMultiplier float64
}

// DefaultOptions returns the paper's constants (c = 64).
func DefaultOptions(seed uint64) Options {
	return Options{C: 64, Seed: seed, MinMultiplier: 1}
}

// Rounded is the outcome of the §3 procedure.
type Rounded struct {
	ZBar []bool      // z̄_i
	YBar [][]bool    // ȳ[k][i]
	XBar [][]float64 // x̄[i][j]: 0, x̂, or 1/λ
	// Lambda is the multiplier c·ln n actually used.
	Lambda float64
	// Cost of the partially rounded solution (z̄,ȳ at integral cost, x̄
	// at fractional cost).
	Cost float64
}

// Instrumentation quantifies how the rounded solution compares with the
// guarantees of Lemmas 4.1/4.3/4.6.
type Instrumentation struct {
	// CostRatioVsLP = Cost / LP objective (Lemma 4.1 predicts ≤ λ in
	// expectation).
	CostRatioVsLP float64
	// MinWeightFactor = min_j (Σ_i w_ij x̄_ij) / W_j over demanding sinks
	// (Lemma 4.3 predicts ≥ 3/4 w.h.p. at c=64).
	MinWeightFactor float64
	// MaxFanoutFactor = max_i (Σ_j B_j x̄_ij) / F_i (Lemma 4.6 predicts
	// ≤ 2 w.h.p. at c ≥ 24).
	MaxFanoutFactor float64
	// WeightViolations counts sinks below (1-δ)W with δ = 1/4.
	WeightViolations int
	// FanoutViolations counts reflectors above 2F.
	FanoutViolations int
	// MaxIngestExcess is the §6.2 constraint-(8) violation after
	// rounding: max over reflectors of (#streams with ȳ=1) − u_i.
	// The §6.2 hardness result says O(log n) violation is the best any
	// rounding can promise; Lemma-4.1-style scaling bounds it by λ·u_i
	// in expectation.
	MaxIngestExcess float64
}

// Apply runs the §3 procedure on a fractional solution.
func Apply(in *netmodel.Instance, fs *lpmodel.FracSolution, opts Options) *Rounded {
	S, R, D := in.Dims()
	if opts.C == 0 {
		opts.C = 64
	}
	if opts.MinMultiplier == 0 {
		opts.MinMultiplier = 1
	}
	lambda := opts.C * math.Log(float64(D))
	if lambda < opts.MinMultiplier {
		lambda = opts.MinMultiplier
	}
	rng := stats.NewRNG(opts.Seed)

	r := &Rounded{
		ZBar:   make([]bool, R),
		YBar:   make([][]bool, S),
		XBar:   make([][]float64, R),
		Lambda: lambda,
	}
	for k := 0; k < S; k++ {
		r.YBar[k] = make([]bool, R)
	}
	for i := 0; i < R; i++ {
		r.XBar[i] = make([]float64, D)
	}

	// Steps [1]-[4]: scaled coin flips for z and y.
	zDot := make([]float64, R)
	yDot := make([][]float64, S)
	for k := range yDot {
		yDot[k] = make([]float64, R)
	}
	for i := 0; i < R; i++ {
		zDot[i] = math.Min(fs.Z[i]*lambda, 1)
		r.ZBar[i] = zDot[i] > 0 && rng.Bernoulli(zDot[i])
		for k := 0; k < S; k++ {
			if zDot[i] <= 0 {
				continue // ŷ ≤ ẑ = 0 forces ẏ = 0
			}
			yDot[k][i] = math.Min(fs.Y[k][i]*lambda/zDot[i], 1)
			if r.ZBar[i] && yDot[k][i] > 0 && rng.Bernoulli(yDot[k][i]) {
				r.YBar[k][i] = true
			}
		}
	}
	// Step [5]: x̄.
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			xh := fs.X[i][j]
			if xh <= 0 {
				continue
			}
			k := in.Commodity[j]
			yh := fs.Y[k][i]
			if zDot[i] >= 1 && yDot[k][i] >= 1 {
				// Deterministic branch: the scaled solution is
				// already saturated here; keep x̂ fractional.
				r.XBar[i][j] = xh
				continue
			}
			if r.YBar[k][i] && yh > 0 {
				p := xh / yh
				if p > 1 {
					p = 1 // x̂ ≤ ŷ up to LP tolerance
				}
				if rng.Bernoulli(p) {
					r.XBar[i][j] = 1 / lambda
				}
			}
		}
	}
	r.Cost = r.costOf(in)
	return r
}

func (r *Rounded) costOf(in *netmodel.Instance) float64 {
	total := 0.0
	for i, b := range r.ZBar {
		if b {
			total += in.ReflectorCost[i]
		}
	}
	for k := range r.YBar {
		for i, b := range r.YBar[k] {
			if b {
				total += in.SrcRefCost[k][i]
			}
		}
	}
	for i := range r.XBar {
		for j, x := range r.XBar[i] {
			if x > 0 {
				total += in.RefSinkCost[i][j] * x
			}
		}
	}
	return total
}

// Instrument measures the realized quality of the rounding against the
// lemmas' predictions. lpCost is the LP optimum (denominator of Lemma 4.1).
func (r *Rounded) Instrument(in *netmodel.Instance, lpCost float64) Instrumentation {
	_, R, D := in.Dims()
	inst := Instrumentation{MinWeightFactor: math.Inf(1)}
	if lpCost > 0 {
		inst.CostRatioVsLP = r.Cost / lpCost
	}
	for j := 0; j < D; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		got := 0.0
		for i := 0; i < R; i++ {
			if r.XBar[i][j] > 0 {
				got += in.CappedWeight(i, j) * r.XBar[i][j]
			}
		}
		f := got / in.Demand(j)
		if f < inst.MinWeightFactor {
			inst.MinWeightFactor = f
		}
		if f < 0.75-1e-9 {
			inst.WeightViolations++
		}
	}
	if math.IsInf(inst.MinWeightFactor, 1) {
		inst.MinWeightFactor = 1
	}
	for i := 0; i < R; i++ {
		use := 0.0
		for j := 0; j < D; j++ {
			if r.XBar[i][j] > 0 {
				use += in.UnitLoad(j) * r.XBar[i][j]
			}
		}
		if use == 0 {
			continue
		}
		f := math.Inf(1)
		if in.Fanout[i] > 0 {
			f = use / in.Fanout[i]
		}
		if f > inst.MaxFanoutFactor {
			inst.MaxFanoutFactor = f
		}
		if f > 2+1e-9 {
			inst.FanoutViolations++
		}
	}
	if in.IngestCap != nil {
		for i := 0; i < R; i++ {
			streams := 0.0
			for k := range r.YBar {
				if r.YBar[k][i] {
					streams++
				}
			}
			if ex := streams - in.IngestCap[i]; ex > inst.MaxIngestExcess {
				inst.MaxIngestExcess = ex
			}
		}
	}
	return inst
}
