package round

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/lpmodel"
)

func TestRoundingStructure(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 15), 4)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	r := Apply(in, fs, DefaultOptions(7))
	S, R, D := in.Dims()
	// x̄ > 0 requires ȳ = 1 requires z̄ = 1 (constraints (1),(2) survive
	// rounding by construction).
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if r.XBar[i][j] > 0 {
				k := in.Commodity[j]
				if !r.YBar[k][i] {
					t.Fatalf("x̄>0 without ȳ at (%d,%d)", i, j)
				}
			}
		}
	}
	for k := 0; k < S; k++ {
		for i := 0; i < R; i++ {
			if r.YBar[k][i] && !r.ZBar[i] {
				t.Fatalf("ȳ without z̄ at (%d,%d)", k, i)
			}
		}
	}
	// x̄ values are 0, x̂, or 1/λ.
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			x := r.XBar[i][j]
			if x == 0 {
				continue
			}
			if math.Abs(x-1/r.Lambda) > 1e-12 && math.Abs(x-fs.X[i][j]) > 1e-12 {
				t.Fatalf("x̄=%v is neither 1/λ=%v nor x̂=%v", x, 1/r.Lambda, fs.X[i][j])
			}
		}
	}
}

func TestRoundingDeterministicInSeed(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 15), 4)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	a := Apply(in, fs, DefaultOptions(42))
	b := Apply(in, fs, DefaultOptions(42))
	if a.Cost != b.Cost {
		t.Fatal("same seed must give identical rounding")
	}
	c := Apply(in, fs, DefaultOptions(43))
	_ = c // different seed may coincide by chance; no assertion
}

// TestLemma41CostInExpectation: the empirical mean cost over many seeds must
// be ≤ λ·LP (with slack for sampling noise). This is the Lemma 4.1 check at
// unit-test scale; experiment T2 does it more thoroughly.
func TestLemma41CostInExpectation(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 15), 4)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 60
	sum := 0.0
	var lambda float64
	for s := 0; s < trials; s++ {
		r := Apply(in, fs, DefaultOptions(uint64(s)))
		sum += r.Cost
		lambda = r.Lambda
	}
	meanCost := sum / trials
	if meanCost > lambda*fs.Cost*1.10 {
		t.Fatalf("mean rounded cost %v exceeds λ·LP = %v by >10%%", meanCost, lambda*fs.Cost)
	}
}

// TestLemma43WeightRetention: with c=64 the weight constraints should hold
// at (1-δ)=3/4 for the overwhelming majority of seeds.
func TestLemma43WeightRetention(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 15), 4)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	const trials = 40
	for s := 0; s < trials; s++ {
		r := Apply(in, fs, DefaultOptions(uint64(1000+s)))
		inst := r.Instrument(in, fs.Cost)
		if inst.WeightViolations > 0 {
			bad++
		}
	}
	// Lemma 4.3 promises violation probability < 1/n per constraint; any
	// failures at all should be rare. Allow a small number for slack.
	if bad > trials/10 {
		t.Fatalf("weight retention failed in %d/%d trials", bad, trials)
	}
}

// TestLemma46Fanout: fanout use after rounding stays ≤ 2F w.h.p. for c≥24.
func TestLemma46Fanout(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 15), 4)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	const trials = 40
	for s := 0; s < trials; s++ {
		r := Apply(in, fs, DefaultOptions(uint64(2000+s)))
		inst := r.Instrument(in, fs.Cost)
		if inst.FanoutViolations > 0 {
			bad++
		}
	}
	if bad > trials/10 {
		t.Fatalf("fanout bound failed in %d/%d trials", bad, trials)
	}
}

func TestLambdaFloor(t *testing.T) {
	// n=2 sinks: ln 2 < 1, multiplier must not shrink values below the
	// fractional solution's scale.
	in := gen.Uniform(gen.DefaultUniform(1, 3, 2), 5)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	r := Apply(in, fs, Options{C: 1, Seed: 1, MinMultiplier: 1})
	if r.Lambda < 1 {
		t.Fatalf("lambda = %v < 1", r.Lambda)
	}
}

func TestInstrumentZeroLPCost(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 2), 5)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	r := Apply(in, fs, DefaultOptions(1))
	inst := r.Instrument(in, 0)
	if inst.CostRatioVsLP != 0 {
		t.Fatal("zero LP cost must not divide")
	}
}
