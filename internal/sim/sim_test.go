package sim

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/reliability"
)

func designServing(in *netmodel.Instance, copies int) *netmodel.Design {
	d := netmodel.NewDesign(in)
	for j := 0; j < in.NumSinks; j++ {
		for i := 0; i < copies && i < in.NumReflectors; i++ {
			d.Serve[i][j] = true
		}
	}
	d.Normalize(in)
	return d
}

func TestSimMatchesAnalyticIID(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 4, 5), 7)
	d := designServing(in, 2)
	cfg := DefaultConfig(3)
	cfg.Packets = 60000
	cfg.DeadlineMs = 1e9 // disable lateness; pure loss comparison
	res := Run(in, d, cfg)
	for j := 0; j < in.NumSinks; j++ {
		want := reliability.SinkFailure(in, d, j)
		got := res.Sinks[j].PostLoss
		tol := 5*math.Sqrt(math.Max(want, 1e-6)/float64(cfg.Packets)) + 1e-4
		if math.Abs(got-want) > tol {
			t.Fatalf("sink %d: sim loss %v vs analytic %v (tol %v)", j, got, want, tol)
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 4, 5), 7)
	d := designServing(in, 2)
	cfg := DefaultConfig(5)
	cfg.Packets = 5000
	a := Run(in, d, cfg)
	b := Run(in, d, cfg)
	for j := range a.Sinks {
		if a.Sinks[j].PostLoss != b.Sinks[j].PostLoss {
			t.Fatal("same seed must reproduce identical losses")
		}
	}
	// And independent of worker count.
	cfg.Workers = 1
	c := Run(in, d, cfg)
	for j := range a.Sinks {
		if a.Sinks[j].PostLoss != c.Sinks[j].PostLoss {
			t.Fatal("results must not depend on parallelism")
		}
	}
}

func TestMoreCopiesReduceLoss(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 5, 4), 9)
	cfg := DefaultConfig(11)
	cfg.Packets = 30000
	cfg.DeadlineMs = 1e9
	prevMean := 1.1
	for copies := 1; copies <= 3; copies++ {
		res := Run(in, designServing(in, copies), cfg)
		if res.MeanPostLoss > prevMean+0.002 {
			t.Fatalf("mean loss rose with more copies: %v -> %v", prevMean, res.MeanPostLoss)
		}
		prevMean = res.MeanPostLoss
	}
}

func TestUnservedSinkTotalLoss(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 2), 2)
	d := netmodel.NewDesign(in)
	res := Run(in, d, DefaultConfig(1))
	for _, s := range res.Sinks {
		if s.PostLoss != 1 {
			t.Fatalf("unserved sink loss %v", s.PostLoss)
		}
	}
	if res.MeetCount != 0 {
		t.Fatal("no sink can meet threshold unserved")
	}
}

func TestGilbertElliottMatchesAverage(t *testing.T) {
	// GE process must reproduce the configured average loss within a few
	// percent over a long run (one copy, single hop dominated by hop2:
	// make hop1 lossless).
	in := gen.Uniform(gen.DefaultUniform(1, 1, 1), 4)
	in.SrcRefLoss[0][0] = netmodel.ProbEps
	in.RefSinkLoss[0][0] = 0.05
	d := designServing(in, 1)
	cfg := DefaultConfig(6)
	cfg.Model = GilbertElliott
	cfg.Packets = 300000
	cfg.DeadlineMs = 1e9
	res := Run(in, d, cfg)
	if math.Abs(res.Sinks[0].PostLoss-0.05) > 0.01 {
		t.Fatalf("GE average loss %v, want ≈0.05", res.Sinks[0].PostLoss)
	}
}

func TestGilbertElliottBurstier(t *testing.T) {
	// With equal average loss, bursty losses on the two *distinct* links
	// of a 2-copy sink overlap less often per-packet... they are
	// independent processes, so the post-reconstruction loss stays close
	// to p² either way; what must differ is the *burst structure* of a
	// single link. Measure consecutive-loss runs on one link.
	condLoss := func(model LossModel) float64 {
		cfg := DefaultConfig(8)
		cfg.Model = model
		cfg.Packets = 200000
		cfg.DeadlineMs = 1e9
		proc := newLinkProcess(&cfg, 0.05, 12345)
		// P(loss at t+1 | loss at t): the burstiness signature.
		prevLost := false
		pairs, both := 0, 0
		for p := 0; p < cfg.Packets; p++ {
			l := proc.lost()
			if prevLost {
				pairs++
				if l {
					both++
				}
			}
			prevLost = l
		}
		if pairs == 0 {
			return 0
		}
		return float64(both) / float64(pairs)
	}
	iid := condLoss(IID)
	ge := condLoss(GilbertElliott)
	// IID: P(loss|loss) = p = 0.05. GE with lossB=0.5 and mean dwell 8:
	// ≈ (1-1/8)·0.5 ≈ 0.44. Require a clear multiple.
	if ge < 4*iid {
		t.Fatalf("GE conditional loss %v not appreciably burstier than IID %v", ge, iid)
	}
}

func TestDeadlineCausesLoss(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 2, 2), 3)
	for i := 0; i < 2; i++ {
		in.SrcRefLoss[0][i] = netmodel.ProbEps
		for j := 0; j < 2; j++ {
			in.RefSinkLoss[i][j] = netmodel.ProbEps
		}
	}
	d := designServing(in, 1)
	cfg := DefaultConfig(2)
	cfg.Packets = 20000
	cfg.BaseDelayMs = 50
	cfg.JitterMeanMs = 100
	cfg.DeadlineMs = 120 // tight: base 2×50 + jitter must fit in 20ms
	res := Run(in, d, cfg)
	if res.Sinks[0].PostLoss < 0.1 {
		t.Fatalf("tight deadline should cause loss, got %v", res.Sinks[0].PostLoss)
	}
	if res.Sinks[0].LatePackets == 0 {
		t.Fatal("late packets must be counted")
	}
	// Loosening the deadline must reduce the loss.
	cfg.DeadlineMs = 5000
	res2 := Run(in, d, cfg)
	if res2.Sinks[0].PostLoss >= res.Sinks[0].PostLoss {
		t.Fatal("longer deadline cannot increase loss")
	}
}

func TestDupRatio(t *testing.T) {
	// Two nearly lossless copies: roughly 2 received per delivered.
	in := gen.Uniform(gen.DefaultUniform(1, 2, 1), 3)
	for i := 0; i < 2; i++ {
		in.SrcRefLoss[0][i] = netmodel.ProbEps
		in.RefSinkLoss[i][0] = netmodel.ProbEps
	}
	d := designServing(in, 2)
	cfg := DefaultConfig(4)
	cfg.Packets = 5000
	cfg.DeadlineMs = 1e9
	res := Run(in, d, cfg)
	if math.Abs(res.Sinks[0].DupRatio-2) > 0.05 {
		t.Fatalf("dup ratio %v, want ≈2", res.Sinks[0].DupRatio)
	}
}

func TestSharedUpstreamCorrelation(t *testing.T) {
	// Two sinks fed by the SAME reflector share hop-1 losses: when the
	// source→reflector link drops a packet, both sinks lose it. With a
	// very lossy hop 1 and lossless hop 2, the two sinks' losses must be
	// identical packet sets — detectable via equal loss rates and, more
	// strongly, by the joint rate equaling the marginal rate.
	in := gen.Uniform(gen.DefaultUniform(1, 1, 2), 5)
	in.SrcRefLoss[0][0] = 0.3
	in.RefSinkLoss[0][0] = netmodel.ProbEps
	in.RefSinkLoss[0][1] = netmodel.ProbEps
	d := designServing(in, 1)
	cfg := DefaultConfig(9)
	cfg.Packets = 50000
	cfg.DeadlineMs = 1e9
	res := Run(in, d, cfg)
	if math.Abs(res.Sinks[0].PostLoss-res.Sinks[1].PostLoss) > 1e-12 {
		t.Fatalf("shared upstream must give identical losses: %v vs %v",
			res.Sinks[0].PostLoss, res.Sinks[1].PostLoss)
	}
	if math.Abs(res.Sinks[0].PostLoss-0.3) > 0.02 {
		t.Fatalf("loss %v, want ≈0.3", res.Sinks[0].PostLoss)
	}
}

func TestCoLossTreeVsMultiPath(t *testing.T) {
	// Two sinks of the same stream. Tree: both behind ONE reflector with
	// a lossy upstream — joint losses abound. Multi-path: each sink gets
	// two copies via different reflectors — joint losses nearly vanish.
	in := gen.Uniform(gen.DefaultUniform(1, 2, 2), 6)
	for i := 0; i < 2; i++ {
		in.SrcRefLoss[0][i] = 0.1
		for j := 0; j < 2; j++ {
			in.RefSinkLoss[i][j] = 0.01
		}
	}
	cfg := DefaultConfig(3)
	cfg.Packets = 40000
	cfg.DeadlineMs = 1e9
	cfg.TrackCoLoss = true

	treeD := netmodel.NewDesign(in)
	treeD.Serve[0][0] = true
	treeD.Serve[0][1] = true
	treeD.Normalize(in)
	treeRes := Run(in, treeD, cfg)

	multiD := netmodel.NewDesign(in)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			multiD.Serve[i][j] = true
		}
	}
	multiD.Normalize(in)
	multiRes := Run(in, multiD, cfg)

	if treeRes.JointLossRate <= multiRes.JointLossRate {
		t.Fatalf("tree joint-loss rate %v must exceed multi-path %v",
			treeRes.JointLossRate, multiRes.JointLossRate)
	}
	// The tree's co-loss ratio must be well above 1: the shared upstream
	// at 10%% loss forces identical losses.
	if treeRes.CoLossRatio < 1.5 {
		t.Fatalf("tree co-loss ratio %v not clearly correlated", treeRes.CoLossRatio)
	}
}

func TestCoLossUntrackedZero(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 2, 2), 6)
	d := designServing(in, 1)
	cfg := DefaultConfig(3)
	cfg.Packets = 1000
	res := Run(in, d, cfg)
	if res.CoLossRatio != 0 || res.JointLossRate != 0 {
		t.Fatal("co-loss stats must be zero when not tracked")
	}
}
