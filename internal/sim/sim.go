// Package sim is a packet-level simulator for overlay multicast designs: it
// plays a sequence of stream packets through the 3-level network of the
// paper, drops them on each link according to a loss model, and reconstructs
// the stream at each edgeserver the way §1.1 describes — combining the
// copies arriving from different reflectors, discarding duplicates, filling
// holes, and treating packets that arrive after the playback deadline as
// lost ("packets that arrive very late or significantly out-of-order must
// also be considered effectively useless", §1.2).
//
// Loss on a single link may be correlated in time (Gilbert–Elliott bursts):
// §1.3 explicitly allows correlated loss *within* a link while assuming
// independence *across* links, and the simulator honors exactly that: one
// loss-process instance per link, shared by everything crossing the link.
// In particular a drop on a source→reflector link affects every sink served
// by that reflector — a correlation the closed-form analysis also captures.
//
// Simulation is parallel across (stream, sink) pairs with deterministic
// per-link seeds, so results are reproducible regardless of worker count.
package sim

import (
	"math"

	"repro/internal/netmodel"
	"repro/internal/par"
	"repro/internal/stats"
)

// LossModel selects the per-link packet-loss process.
type LossModel int

// Supported loss models.
const (
	// IID drops each packet independently with the link's probability.
	IID LossModel = iota
	// GilbertElliott drops packets according to a two-state Markov chain
	// (good/bad) whose stationary loss matches the link's probability;
	// losses come in bursts.
	GilbertElliott
)

// Config parameterizes a simulation run.
type Config struct {
	// Packets per stream (default 10_000).
	Packets int
	// Model selects the loss process (default IID).
	Model LossModel
	// BurstFactor (> 1) controls Gilbert–Elliott burstiness: the bad
	// state loses packets at min(1, BurstFactor·p) and the chain dwells
	// in it for MeanBurstLen packets on average. Default 10.
	BurstFactor float64
	// MeanBurstLen is the expected bad-state dwell time in packets
	// (default 8).
	MeanBurstLen float64
	// Per-hop transit time: Base plus an exponential tail with the given
	// mean (milliseconds). A packet copy is usable only if its total
	// delay is at most Deadline.
	BaseDelayMs, JitterMeanMs, DeadlineMs float64
	// Seed drives every loss process and delay draw.
	Seed uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// TrackCoLoss additionally records per-packet joint losses across
	// sinks and reports Result.CoLossRatio — the §1.4 "all leaves
	// downstream see the same loss" signature of tree distribution.
	TrackCoLoss bool
}

// DefaultConfig returns a 10k-packet IID run with a generous deadline.
func DefaultConfig(seed uint64) Config {
	return Config{
		Packets:     10000,
		Model:       IID,
		BurstFactor: 10, MeanBurstLen: 8,
		BaseDelayMs: 20, JitterMeanMs: 15, DeadlineMs: 4000,
		Seed: seed,
	}
}

// SinkStats reports reconstruction quality at one sink.
type SinkStats struct {
	Sink int
	// PostLoss is the post-reconstruction loss fraction.
	PostLoss float64
	// Copies is the number of serving reflectors.
	Copies int
	// MeetsThreshold compares delivered quality 1−PostLoss against Φ_j.
	MeetsThreshold bool
	// DupRatio is received copies per delivered packet (bandwidth
	// overhead of redundancy).
	DupRatio float64
	// LatePackets counts copies discarded for missing the deadline.
	LatePackets int
}

// Result aggregates a simulation.
type Result struct {
	Sinks []SinkStats
	// MeetCount is the number of demanding sinks meeting their threshold.
	MeetCount, DemandingSinks int
	// MeanPostLoss averages post-reconstruction loss over demanding sinks.
	MeanPostLoss float64
	// WorstPostLoss is the maximum.
	WorstPostLoss float64
	// CoLossRatio (only when Config.TrackCoLoss) compares observed joint
	// pair losses with the independence prediction: 1 ≈ independent
	// losses across sinks; ≫ 1 means sinks lose the *same* packets
	// (shared-upstream correlation — the tree failure mode of §1.4).
	// Computed per commodity over its demanding sinks, aggregated by
	// pair count; 0 when not tracked or no sink pair shares a stream.
	CoLossRatio float64
	// JointLossRate (only when Config.TrackCoLoss) is the absolute
	// companion: the probability that a random same-stream sink pair
	// loses the same packet, averaged over pairs and packets. Unlike the
	// ratio it is not normalized by the base loss rate, so it directly
	// ranks designs by simultaneous-outage exposure.
	JointLossRate float64
}

// linkProcess generates per-packet loss decisions for one link.
type linkProcess struct {
	model  LossModel
	p      float64
	rng    *stats.RNG
	inBad  bool
	pGB    float64 // good→bad transition probability
	pBG    float64 // bad→good
	lossG  float64
	lossB  float64
	burstF float64
}

func newLinkProcess(cfg *Config, p float64, seed uint64) *linkProcess {
	lp := &linkProcess{model: cfg.Model, p: p, rng: stats.NewRNG(seed)}
	if cfg.Model == GilbertElliott {
		// Bad state loses at lossB = min(1, burstFactor·p); choose the
		// stationary bad-state probability πB so that
		// πB·lossB + (1−πB)·lossG = p with lossG = p/4 (residual
		// good-state loss). Dwell time in bad ≈ MeanBurstLen packets.
		lp.lossB = math.Min(1, cfg.BurstFactor*p)
		lp.lossG = p / 4
		den := lp.lossB - lp.lossG
		piB := 0.0
		if den > 0 {
			piB = (p - lp.lossG) / den
		}
		if piB > 0.9 {
			piB = 0.9
		}
		lp.pBG = 1 / math.Max(cfg.MeanBurstLen, 1)
		// πB = pGB / (pGB + pBG)  ⇒  pGB = πB·pBG / (1−πB).
		lp.pGB = piB * lp.pBG / math.Max(1-piB, 1e-9)
		if lp.pGB > 1 {
			lp.pGB = 1
		}
	}
	return lp
}

// lost advances the process one packet and reports whether it was dropped.
func (l *linkProcess) lost() bool {
	switch l.model {
	case GilbertElliott:
		if l.inBad {
			if l.rng.Bernoulli(l.pBG) {
				l.inBad = false
			}
		} else {
			if l.rng.Bernoulli(l.pGB) {
				l.inBad = true
			}
		}
		if l.inBad {
			return l.rng.Bernoulli(l.lossB)
		}
		return l.rng.Bernoulli(l.lossG)
	default:
		return l.rng.Bernoulli(l.p)
	}
}

// linkSeed derives a deterministic seed for a link from the run seed.
func linkSeed(seed uint64, kind, a, b int) uint64 {
	h := seed
	for _, v := range [3]int{kind, a, b} {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
	}
	return h
}

// Run simulates the design and returns per-sink reconstruction quality.
func Run(in *netmodel.Instance, d *netmodel.Design, cfg Config) *Result {
	if cfg.Packets <= 0 {
		cfg.Packets = 10000
	}
	if cfg.DeadlineMs <= 0 {
		cfg.DeadlineMs = 4000
	}
	S, R, D := in.Dims()

	// Stage 1: per (commodity, reflector) link — arrival time of each
	// packet at the reflector (NaN = lost). Built serially per link but
	// links in parallel; each link's process is self-seeded.
	type refArrival struct {
		times []float64 // arrival time at reflector, NaN if lost
	}
	arrivals := make([][]*refArrival, S)
	type linkJob struct{ k, i int }
	var jobs []linkJob
	for k := 0; k < S; k++ {
		arrivals[k] = make([]*refArrival, R)
		for i := 0; i < R; i++ {
			if d.Ingest[k][i] {
				jobs = append(jobs, linkJob{k, i})
			}
		}
	}
	par.ForEach(len(jobs), cfg.Workers, func(idx int) {
		k, i := jobs[idx].k, jobs[idx].i
		proc := newLinkProcess(&cfg, in.SrcRefLoss[k][i], linkSeed(cfg.Seed, 1, k, i))
		delayRNG := stats.NewRNG(linkSeed(cfg.Seed, 2, k, i))
		ra := &refArrival{times: make([]float64, cfg.Packets)}
		for p := 0; p < cfg.Packets; p++ {
			if proc.lost() {
				ra.times[p] = math.NaN()
				continue
			}
			ra.times[p] = cfg.BaseDelayMs + delayRNG.Exponential(1/math.Max(cfg.JitterMeanMs, 1e-9))
		}
		arrivals[k][i] = ra
	})

	// Stage 2: per sink — combine copies from serving reflectors.
	res := &Result{Sinks: make([]SinkStats, D)}
	var lostBy [][]bool // per sink, per packet (TrackCoLoss only)
	if cfg.TrackCoLoss {
		lostBy = make([][]bool, D)
	}
	par.ForEach(D, cfg.Workers, func(j int) {
		k := in.Commodity[j]
		var refls []int
		for i := 0; i < R; i++ {
			if d.Serve[i][j] {
				refls = append(refls, i)
			}
		}
		st := SinkStats{Sink: j, Copies: len(refls)}
		if len(refls) == 0 {
			st.PostLoss = 1
			st.MeetsThreshold = in.Threshold[j] <= 0
			if cfg.TrackCoLoss {
				all := make([]bool, cfg.Packets)
				for p := range all {
					all[p] = true
				}
				lostBy[j] = all
			}
			res.Sinks[j] = st
			return
		}
		// One loss process + delay stream per reflector→sink link.
		procs := make([]*linkProcess, len(refls))
		delays := make([]*stats.RNG, len(refls))
		for idx, i := range refls {
			procs[idx] = newLinkProcess(&cfg, in.RefSinkLoss[i][j], linkSeed(cfg.Seed, 3, i, j))
			delays[idx] = stats.NewRNG(linkSeed(cfg.Seed, 4, i, j))
		}
		delivered := 0
		received := 0
		late := 0
		var lossTrack []bool
		if cfg.TrackCoLoss {
			lossTrack = make([]bool, cfg.Packets)
		}
		for p := 0; p < cfg.Packets; p++ {
			got := false
			for idx, i := range refls {
				atRef := arrivals[k][i].times[p]
				// The reflector forwards only copies it received;
				// the loss process still advances per packet slot
				// (the link carries the slot whether or not this
				// reflector got the packet — keeps processes
				// aligned and deterministic).
				lostHop2 := procs[idx].lost()
				d2 := cfg.BaseDelayMs + delays[idx].Exponential(1/math.Max(cfg.JitterMeanMs, 1e-9))
				if math.IsNaN(atRef) || lostHop2 {
					continue
				}
				t := atRef + d2
				if t > cfg.DeadlineMs {
					late++
					continue
				}
				received++
				got = true
			}
			if got {
				delivered++
			} else if lossTrack != nil {
				lossTrack[p] = true
			}
		}
		if cfg.TrackCoLoss {
			lostBy[j] = lossTrack
		}
		st.PostLoss = 1 - float64(delivered)/float64(cfg.Packets)
		st.MeetsThreshold = 1-st.PostLoss >= in.Threshold[j]-1e-12
		if delivered > 0 {
			st.DupRatio = float64(received) / float64(delivered)
		}
		st.LatePackets = late
		res.Sinks[j] = st
	})

	var sum float64
	for j := 0; j < D; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		res.DemandingSinks++
		s := res.Sinks[j]
		sum += s.PostLoss
		if s.PostLoss > res.WorstPostLoss {
			res.WorstPostLoss = s.PostLoss
		}
		if s.MeetsThreshold {
			res.MeetCount++
		}
	}
	if res.DemandingSinks > 0 {
		res.MeanPostLoss = sum / float64(res.DemandingSinks)
	}
	if cfg.TrackCoLoss {
		res.CoLossRatio, res.JointLossRate = coLossStats(in, lostBy, cfg.Packets)
	}
	return res
}

// coLossStats compares observed joint pair losses with the independence
// prediction, per commodity, aggregated over all same-stream sink pairs,
// and also returns the absolute joint-loss rate per (pair, packet).
func coLossStats(in *netmodel.Instance, lostBy [][]bool, packets int) (ratio, jointRate float64) {
	byK := in.SinksOfCommodity()
	var observed, expected, pairs float64
	for _, sinks := range byK {
		var group []int
		for _, j := range sinks {
			if in.Threshold[j] > 0 && lostBy[j] != nil {
				group = append(group, j)
			}
		}
		if len(group) < 2 {
			continue
		}
		pairs += float64(len(group)*(len(group)-1)) / 2
		lossCount := make([]float64, len(group))
		for gi, j := range group {
			n := 0
			for _, l := range lostBy[j] {
				if l {
					n++
				}
			}
			lossCount[gi] = float64(n)
		}
		// Observed joint pairs: Σ_p c_p(c_p−1)/2.
		for p := 0; p < packets; p++ {
			c := 0
			for _, j := range group {
				if lostBy[j][p] {
					c++
				}
			}
			observed += float64(c*(c-1)) / 2
		}
		// Independence prediction: Σ_{i<j} lost_i·lost_j / packets.
		var sumL, sumL2 float64
		for _, l := range lossCount {
			sumL += l
			sumL2 += l * l
		}
		expected += (sumL*sumL - sumL2) / 2 / float64(packets)
	}
	if pairs > 0 {
		jointRate = observed / pairs / float64(packets)
	}
	if expected <= 0 {
		return 0, jointRate
	}
	return observed / expected, jointRate
}
