// Package shard decomposes an overlay-design instance into commodity-region
// shards that can be solved as independent, much smaller LPs, and reconciles
// the one resource the shards share — reflector fanout capacity — with an
// iterative coordination pass.
//
// The paper's step-2 LP is the scaling bottleneck: its x_{ij} variables grow
// as |R|·|D|, and simplex wall-clock grows superlinearly in the model size,
// so one monolithic solve over thousands of sinks costs orders of magnitude
// more than the sum of per-region solves (Andreev et al., arXiv:1109.4114,
// exploit the same decomposability in their clustered formulation;
// CliqueStream, arXiv:0903.4365, scales overlay streaming with cluster-local
// construction under a thin global layer). Demand decomposes naturally: a
// sink is served almost always from reflectors of its own region-cluster, so
// partitioning sinks by their cheapest reflector recovers the region
// structure without being told the regions.
//
// The pipeline is:
//
//  1. Partition: sinks are grouped by their cost-anchor reflector and cut
//     into k balanced shards (PartitionSinks). The partition depends only on
//     the cost structure, not on which sinks are currently active, so it is
//     stable across live churn and per-shard LP shapes stay warm-startable.
//  2. Capacity split: each reflector's fanout F_i is divided among shards
//     proportionally to bandwidth-weighted affinity (how many of a shard's
//     active sinks consider the reflector cheap), smoothed so no shard is
//     permanently locked out.
//  3. Parallel solve: one full solve (LP + rounding + audit) per shard via
//     internal/par, each on a sub-instance whose Fanout row is the shard's
//     allocation. Because every shard respects its own allocation up to the
//     paper's ×4 rounding bound, the merged design respects 4·F_i — the
//     monolithic guarantee survives sharding.
//  4. Coordinate: shards that saturated their allocation at a reflector (or
//     whose LP went infeasible outright) bid for contested capacity; the
//     residual is re-split proportionally to realized use plus bids, and
//     only the shards whose allocation materially changed re-solve, warm
//     started from their previous basis. Rounds repeat until no shard is
//     starved and no capacity is contested, or the round cap hits.
//  5. Merge: per-shard designs are OR-ed into one full-shape design
//     (build/ingest union, serve arcs re-indexed to global sink ids) and
//     audited against the full instance by the caller.
//
// The package deliberately does not import internal/core: the caller
// supplies the per-shard solver as a callback, and core threads the phases
// through its instrumented pipeline as the shard-partition / shard-solve /
// shard-coordinate stages.
package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/par"
)

// Options tunes the sharded solve.
type Options struct {
	// Shards is the number of shards k (callers clamp to ≥2 and ≤ |D|).
	Shards int
	// Workers bounds concurrent per-shard solves (0 = GOMAXPROCS).
	Workers int
	// Rounds caps coordination rounds after the initial solve (default 3).
	Rounds int
	// CheapFactor defines a sink's cheap reflector set: every reflector
	// whose serving cost is within this factor of the sink's cheapest
	// (default 1.25). Drives both partitioning and capacity affinity.
	CheapFactor float64
	// SaturationFrac is the fraction of its allocation a shard must use at
	// a reflector to be considered capacity-hungry there (default 0.9).
	SaturationFrac float64
	// Levels selects the coordination topology: ≤1 is the flat use-based
	// re-bidding pass (Coordinate), 2 folds the leaf shards into contiguous
	// super-shards and clears contested capacity with the two-level
	// dual-price exchange (Exchange). The partition itself is shared — only
	// the coordination differs.
	Levels int
	// SuperShards overrides the number of level-2 super-shards (0 = auto,
	// ⌈√k⌉ for k leaf shards).
	SuperShards int
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.CheapFactor <= 1 {
		o.CheapFactor = 1.25
	}
	if o.SaturationFrac <= 0 || o.SaturationFrac >= 1 {
		o.SaturationFrac = 0.9
	}
	return o
}

// State is the warm-start currency of the sharded path across live epochs:
// the partition (so per-shard LP shapes stay identical), the last capacity
// allocation (so the split adapts instead of restarting from affinity), one
// simplex basis per shard, and — under the incremental LP rebuild — one
// lpmodel.Patcher per shard, carrying each shard's built LP so a churn
// epoch patches only the shards its dirty set routes to. A State from a
// differently-shaped instance or a different shard count is detected and
// ignored.
type State struct {
	S, R, D  int
	Sinks    [][]int
	Alloc    [][]float64
	Bases    []*lp.Basis
	Patchers []*lpmodel.Patcher
	// Subs caches each shard's extracted sub-instance. Under the delta flow
	// (BindSubs given routed dirty sets) the next epoch patches the cached
	// sub in place — re-pointing the matrices shared with the parent and
	// rewriting only the sink-indexed cells the dirty set names — instead of
	// re-extracting, and a shard whose routed dirty set is empty skips
	// extraction entirely. Invalidated with the rest of the state on any
	// partition or shape change.
	Subs []*netmodel.Instance
}

// EffectiveShards returns the shard count PartitionSinks actually produces
// for k requested shards: requests are clamped to the number of atomic
// demand groups — viewers on multi-stream instances, sinks otherwise — with
// a floor of 1. Warm-state plumbing must compare against this, not the raw
// request: a request above the clamp would otherwise mismatch the (clamped)
// cached partition every epoch and silently discard all warm state.
func EffectiveShards(in *netmodel.Instance, k int) int {
	if g := in.NumViewers(); k > g {
		k = g
	}
	if k < 1 {
		k = 1
	}
	return k
}

// compatible reports whether the state can seed a solve of in with k shards.
func (st *State) compatible(in *netmodel.Instance, k int) bool {
	if st == nil || len(st.Sinks) != k || len(st.Alloc) != k {
		return false
	}
	S, R, D := in.Dims()
	if st.S != S || st.R != R || st.D != D {
		return false
	}
	total := 0
	for s := range st.Sinks {
		total += len(st.Sinks[s])
		if len(st.Alloc[s]) != R {
			return false
		}
	}
	return total == D
}

// SolveResult is what the caller's per-shard solver returns: the
// sub-instance-shaped design plus the counters the coordinator and the
// merged report need.
type SolveResult struct {
	Design      *netmodel.Design
	Audit       netmodel.Audit
	LPCost      float64
	RoundedCost float64
	Pivots      int
	Retries     int
	Vars, Rows  int
	Basis       *lp.Basis
	// LPStats counts the shard solve's factorization events
	// (refactorizations, adopted factorizations, devex resets).
	LPStats lp.SolveStats
	// Patch reports what the shard's incremental LP rebuild did (nil when
	// the shard solved without a Patcher).
	Patch *lpmodel.PatchStats
	// BuildWallNS / PatchWallNS are the shard's lp-build / lp-patch stage
	// walls (the inner pipeline's model-construction cost, invisible to
	// the outer shard-solve stage timing otherwise).
	BuildWallNS, PatchWallNS int64
	// CapPrice[i] is the shard's quoted price for one more unit of fanout
	// at reflector i: the magnitude of the capacity row's LP shadow price
	// times the fractional build level (|dual|·ẑ_i). Zero where capacity is
	// slack; nil when the solve produced no duals. The price exchange uses
	// it to rank capacity bids — a missing vector degrades the shard to a
	// lowest-priority bidder, never an error.
	CapPrice []float64
}

// SolveFunc solves one shard: s is the shard index (for seed mixing), sub
// the extracted sub-instance, warm the shard's previous basis (nil = cold).
// An LP-infeasible shard must return an error wrapping
// lpmodel.ErrInfeasible; the coordinator treats it as capacity starvation
// and re-allocates instead of failing the solve.
type SolveFunc func(s int, sub *netmodel.Instance, warm *lp.Basis) (*SolveResult, error)

// Plan is a prepared sharded solve: the partition, the current capacity
// allocation, the extracted sub-instances, and the per-shard solve state the
// coordinator updates round by round.
type Plan struct {
	In    *netmodel.Instance
	Sinks [][]int     // per-shard global sink ids, ascending
	Alloc [][]float64 // [shard][reflector] fanout share; Σ_s Alloc[s][i] = F_i
	Subs  []*netmodel.Instance
	opts  Options
	aff   [][]float64 // bandwidth-weighted cheap-set affinity [shard][reflector]

	results      []*SolveResult // latest per-shard results (nil = starved)
	starved      []bool
	starveRounds []int           // consecutive rounds a shard has stayed starved
	hungryRounds []int           // consecutive exchange rounds a shard has stayed hungry
	settled      []bool          // shard re-solved with more capacity and didn't improve
	pivots       []int           // cumulative simplex iterations per shard, all rounds
	warmBases    []*lp.Basis     // per-shard bases from a previous epoch's State
	patched      []int           // cumulative LP cells patched per shard, all rounds
	rebuilds     []int           // full LP builds per shard, all rounds
	buildNS      []int64         // lp-build wall per shard, all rounds
	patchNS      []int64         // lp-patch wall per shard, all rounds
	lpStats      []lp.SolveStats // per-shard solver factorization events, all rounds

	cachedSubs []*netmodel.Instance // previous epoch's sub-instances (nil = none)
	skips      int                  // shards whose extraction BindSubs skipped

	// Patchers holds one incremental-rebuild state per shard, reused from a
	// compatible previous-epoch State and carried forward in the Outcome's
	// State. The caller's SolveFunc wires Patchers[s] into its per-shard
	// solve; nil entries mean the shard (re)builds from scratch. Writes to
	// distinct entries from concurrent per-shard solves are safe.
	Patchers []*lpmodel.Patcher
}

// traceRounds dumps coordination rounds to stdout (debug builds only).
const traceRounds = false

// Shards returns the shard count of the plan.
func (p *Plan) Shards() int { return len(p.Sinks) }

// PartitionSinks groups the instance's sinks into k balanced shards by cost
// anchor: each sink's anchor is its cheapest serving reflector, sinks are
// ordered by (anchor, id), and the order is cut into k near-equal chunks.
// On region-clustered topologies the cheapest reflector is intra-region, so
// the cut recovers the region clusters; on unstructured instances it
// degrades to a balanced deterministic split. The result depends only on
// the cost matrix — never on thresholds — so live sink churn does not move
// sinks between shards. On multi-stream instances the partition works on
// real sinks: a viewer's demand units are assigned atomically, so one
// sink's streams never straddle shards (stream churn then routes to exactly
// one shard's Patcher, and per-viewer accounting stays shard-local).
func PartitionSinks(in *netmodel.Instance, k int) [][]int {
	if in.MultiStream() {
		return partitionViewers(in, k)
	}
	_, R, D := in.Dims()
	if k > D {
		k = D
	}
	if k < 1 {
		k = 1
	}
	anchor := make([]int, D)
	for j := 0; j < D; j++ {
		best, bestC := 0, in.RefSinkCost[0][j]
		for i := 1; i < R; i++ {
			if c := in.RefSinkCost[i][j]; c < bestC {
				best, bestC = i, c
			}
		}
		anchor[j] = best
	}
	order := make([]int, D)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		if anchor[order[a]] != anchor[order[b]] {
			return anchor[order[a]] < anchor[order[b]]
		}
		return order[a] < order[b]
	})
	out := make([][]int, k)
	for s := 0; s < k; s++ {
		lo, hi := s*D/k, (s+1)*D/k
		shard := append([]int(nil), order[lo:hi]...)
		sort.Ints(shard)
		out[s] = shard
	}
	return out
}

// partitionViewers is the multi-stream variant of PartitionSinks: viewers
// (not units) carry the cost anchor — the reflector serving the whole
// stream bundle cheapest — are ordered by (anchor, id), and the order is
// cut into k chunks balanced by UNIT count (a 3-stream viewer weighs three
// single-stream ones), never splitting a viewer.
func partitionViewers(in *netmodel.Instance, k int) [][]int {
	_, R, D := in.Dims()
	groups := in.ViewerUnits()
	G := len(groups)
	if k > G {
		k = G
	}
	if k < 1 {
		k = 1
	}
	anchor := make([]int, G)
	for g, units := range groups {
		best, bestC := 0, math.Inf(1)
		for i := 0; i < R; i++ {
			c := 0.0
			for _, j := range units {
				c += in.RefSinkCost[i][j]
			}
			if c < bestC {
				best, bestC = i, c
			}
		}
		anchor[g] = best
	}
	order := make([]int, G)
	for g := range order {
		order[g] = g
	}
	sort.SliceStable(order, func(a, b int) bool {
		if anchor[order[a]] != anchor[order[b]] {
			return anchor[order[a]] < anchor[order[b]]
		}
		return order[a] < order[b]
	})
	out := make([][]int, k)
	s, acc := 0, 0
	for idx, g := range order {
		// Advance when the current shard hit its unit target, or when the
		// viewers left are only just enough to feed the still-empty shards
		// after this one (k-1-s of them) — without the latter guard a run
		// of small viewers followed by a big one can exhaust the order
		// before every shard is fed, leaving an empty shard.
		mustAdvance := G-idx <= k-1-s
		canAdvance := acc >= (s+1)*D/k
		if s < k-1 && len(out[s]) > 0 && (mustAdvance || canAdvance) {
			s++
		}
		out[s] = append(out[s], groups[g]...)
		acc += len(groups[g])
	}
	for s := range out {
		sort.Ints(out[s])
	}
	return out
}

// Prepare builds a Plan: partition (reused from state when compatible),
// affinity, initial capacity allocation (rescaled from state when present,
// so a learned split survives repricing and adapts to fanout changes), and
// the per-shard sub-instances.
func Prepare(in *netmodel.Instance, opts Options, state *State) (*Plan, error) {
	opts = opts.withDefaults()
	if opts.Shards < 2 {
		return nil, fmt.Errorf("shard: %d shards requested, need ≥ 2", opts.Shards)
	}
	// Clamp before the warm-state check: PartitionSinks caps the count at the
	// number of atomic demand groups, so a State built from an over-asked k
	// carries the clamped partition and must still match.
	opts.Shards = EffectiveShards(in, opts.Shards)
	p := &Plan{In: in, opts: opts}
	if state.compatible(in, opts.Shards) {
		p.Sinks = state.Sinks
		if len(state.Bases) == len(state.Sinks) {
			p.warmBases = state.Bases
		}
		if len(state.Patchers) == len(state.Sinks) {
			p.Patchers = state.Patchers
		}
		if len(state.Subs) == len(state.Sinks) {
			p.cachedSubs = state.Subs
		}
	} else {
		state = nil
		p.Sinks = PartitionSinks(in, opts.Shards)
	}
	k := len(p.Sinks)
	if p.Patchers == nil {
		p.Patchers = make([]*lpmodel.Patcher, k)
	}
	p.computeAffinity()
	if state != nil {
		p.Alloc = rescaleAlloc(state.Alloc, in.Fanout, p.aff)
	} else {
		p.Alloc = allocFromAffinity(p.aff, in.Fanout)
	}
	p.Subs = make([]*netmodel.Instance, k)
	p.results = make([]*SolveResult, k)
	p.starved = make([]bool, k)
	p.starveRounds = make([]int, k)
	p.hungryRounds = make([]int, k)
	p.settled = make([]bool, k)
	p.pivots = make([]int, k)
	p.patched = make([]int, k)
	p.rebuilds = make([]int, k)
	p.buildNS = make([]int64, k)
	p.patchNS = make([]int64, k)
	p.lpStats = make([]lp.SolveStats, k)
	return p, nil
}

// BindSubs fills the plan's sub-instances, the second phase of preparation
// (Prepare must run first so the caller can route the epoch's dirty set
// through the partition before binding). dirty carries one routed set per
// shard under the delta-flow contract — every parent change affecting shard
// s is listed in dirty[s], so a cached sub-instance can be patched in place:
// matrices shared with the parent are re-pointed (the parent pointer changes
// every epoch under stickiness cloning), the capacity allocation is
// re-copied, and only the sink-indexed cells the dirty set names are
// rewritten. A shard with dirty[s] == nil reuses its cache untouched beyond
// the re-point — the zero-copy path — and counts as a skipped extraction.
// A nil dirty slice means no delta information: every shard extracts fresh
// (the cache is unusable without the contract). Callers that never call
// BindSubs get the fresh-extraction behavior lazily from SolveAll.
func (p *Plan) BindSubs(dirty []*netmodel.DirtySet) {
	for s := range p.Subs {
		if dirty != nil && p.cachedSubs != nil && p.cachedSubs[s] != nil {
			p.Subs[s] = p.cachedSubs[s]
			rebind(p.Subs[s], p.In, p.Sinks[s], p.Alloc[s], dirty[s])
			p.skips++
			continue
		}
		p.Subs[s] = extract(p.In, p.Sinks[s], p.Alloc[s], s)
	}
}

// bound reports whether BindSubs has run.
func (p *Plan) bound() bool {
	return len(p.Subs) == 0 || p.Subs[0] != nil
}

// computeAffinity fills p.aff: shard s's bandwidth-weighted count of active
// sinks for which reflector i is cheap.
func (p *Plan) computeAffinity() {
	in := p.In
	_, R, _ := in.Dims()
	cheap := p.opts.CheapFactor
	p.aff = make([][]float64, len(p.Sinks))
	for s, sinks := range p.Sinks {
		row := make([]float64, R)
		for _, j := range sinks {
			if in.Threshold[j] <= 0 {
				continue
			}
			minC := in.RefSinkCost[0][j]
			for i := 1; i < R; i++ {
				if c := in.RefSinkCost[i][j]; c < minC {
					minC = c
				}
			}
			limit := cheap*minC + 1e-12
			b := in.UnitLoad(j)
			for i := 0; i < R; i++ {
				if in.RefSinkCost[i][j] <= limit {
					row[i] += b
				}
			}
		}
		p.aff[s] = row
	}
}

// allocFromAffinity splits each reflector's fanout proportionally to shard
// affinity, with 5% smoothing so a shard with no cheap sinks at a reflector
// still holds a sliver it can grow through coordination. Reflectors nobody
// is near split evenly.
func allocFromAffinity(aff [][]float64, fanout []float64) [][]float64 {
	k := len(aff)
	R := len(fanout)
	alloc := make([][]float64, k)
	for s := range alloc {
		alloc[s] = make([]float64, R)
	}
	for i := 0; i < R; i++ {
		tot := 0.0
		for s := 0; s < k; s++ {
			tot += aff[s][i]
		}
		if tot <= 0 {
			for s := 0; s < k; s++ {
				alloc[s][i] = fanout[i] / float64(k)
			}
			continue
		}
		smooth := 0.05 * tot / float64(k)
		denom := tot + float64(k)*smooth
		for s := 0; s < k; s++ {
			alloc[s][i] = fanout[i] * (aff[s][i] + smooth) / denom
		}
	}
	return alloc
}

// rescaleAlloc adapts a previous epoch's allocation to the instance's
// current fanouts: each reflector keeps its learned split, rescaled to the
// new F_i; a reflector whose previous total was zero (it was failed) falls
// back to the affinity split. A reflector whose fanout did not move (the
// previous split already sums to it, up to accumulated rounding) keeps its
// split bit-for-bit — re-normalizing would perturb every shard's allocation
// by an ulp and make the incremental LP rebuild patch fanout coefficients
// in shards the epoch never touched.
func rescaleAlloc(prev [][]float64, fanout []float64, aff [][]float64) [][]float64 {
	k := len(prev)
	R := len(fanout)
	fresh := allocFromAffinity(aff, fanout)
	alloc := make([][]float64, k)
	for s := range alloc {
		alloc[s] = make([]float64, R)
	}
	for i := 0; i < R; i++ {
		tot := 0.0
		for s := 0; s < k; s++ {
			tot += prev[s][i]
		}
		unchanged := math.Abs(fanout[i]-tot) <= 1e-9*(1+math.Abs(fanout[i]))
		for s := 0; s < k; s++ {
			switch {
			case tot > 0 && unchanged:
				alloc[s][i] = prev[s][i]
			case tot > 0:
				alloc[s][i] = fanout[i] * prev[s][i] / tot
			default:
				alloc[s][i] = fresh[s][i]
			}
		}
	}
	return alloc
}

// extract builds shard s's sub-instance: the shard's sinks with their
// columns of the reflector→sink matrices, the full reflector and source
// sets (|R| and |S| are small in this model — the x variables dominate, so
// restricting them buys little and could cost feasibility), and the shard's
// capacity allocation as the Fanout vector. Matrices that do not depend on
// the sink set are shared with the parent instance — solvers never mutate
// their input — so extraction is cheap and re-extraction after a capacity
// re-split only replaces the Fanout slice.
func extract(in *netmodel.Instance, sinks []int, alloc []float64, s int) *netmodel.Instance {
	S, R, _ := in.Dims()
	d := len(sinks)
	sub := &netmodel.Instance{
		Name:          fmt.Sprintf("%s/shard%d", in.Name, s),
		NumSources:    S,
		NumReflectors: R,
		NumSinks:      d,
		ReflectorCost: in.ReflectorCost,
		Fanout:        append([]float64(nil), alloc...),
		SrcRefLoss:    in.SrcRefLoss,
		SrcRefCost:    in.SrcRefCost,
		RefSinkLoss:   subCols(in.RefSinkLoss, sinks),
		RefSinkCost:   subCols(in.RefSinkCost, sinks),
		Commodity:     subInts(in.Commodity, sinks),
		Threshold:     subFloats(in.Threshold, sinks),
		Bandwidth:     in.Bandwidth,
		Color:         in.Color,
		NumColors:     in.NumColors,
		IngestCap:     in.IngestCap,
	}
	if in.EdgeCap != nil {
		sub.EdgeCap = subCols(in.EdgeCap, sinks)
	}
	if in.UnitWeight != nil {
		sub.UnitWeight = subFloats(in.UnitWeight, sinks)
	}
	if in.SinkOf != nil {
		// Viewers are shard-atomic and their units contiguous in the parent,
		// so renumbering the surviving groups densely keeps the invariants.
		so := make([]int, len(sinks))
		g, last := -1, -1
		for c, j := range sinks {
			if in.SinkOf[j] != last {
				g, last = g+1, in.SinkOf[j]
			}
			so[c] = g
		}
		sub.SinkOf = so
	}
	return sub
}

// rebind refreshes a cached sub-instance against the current parent without
// re-extracting. Matrices extract shares with the parent are re-pointed at
// the current parent (under stickiness the parent is a fresh clone every
// epoch), the Fanout vector is re-copied from the shard's current
// allocation, and the sink-indexed copies are patched cell by cell from the
// routed dirty set (local sink ids; sinks maps them back to the parent's).
// Fields with no churn surface — Commodity, EdgeCap, SinkOf, the dims — are
// trusted from the cache: the partition is stable and a shape change
// invalidates the whole State before reaching here.
func rebind(sub, in *netmodel.Instance, sinks []int, alloc []float64, d *netmodel.DirtySet) {
	sub.ReflectorCost = in.ReflectorCost
	sub.SrcRefLoss = in.SrcRefLoss
	sub.SrcRefCost = in.SrcRefCost
	sub.Bandwidth = in.Bandwidth
	sub.Color = in.Color
	sub.NumColors = in.NumColors
	sub.IngestCap = in.IngestCap
	sub.Fanout = append([]float64(nil), alloc...)
	if d == nil {
		return
	}
	for _, c := range d.SinkDemand {
		sub.Threshold[c] = in.Threshold[sinks[c]]
	}
	for _, a := range d.RefSinkCost {
		sub.RefSinkCost[a.A][a.B] = in.RefSinkCost[a.A][sinks[a.B]]
	}
	for _, a := range d.RefSinkLoss {
		sub.RefSinkLoss[a.A][a.B] = in.RefSinkLoss[a.A][sinks[a.B]]
	}
	for _, c := range d.SinkWeight {
		sub.UnitWeight[c] = in.UnitWeight[sinks[c]]
	}
}

func subCols(m [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(m))
	backing := make([]float64, len(m)*len(cols))
	for r := range m {
		row := backing[:len(cols):len(cols)]
		backing = backing[len(cols):]
		for c, j := range cols {
			row[c] = m[r][j]
		}
		out[r] = row
	}
	return out
}

func subInts(v []int, idx []int) []int {
	out := make([]int, len(idx))
	for c, j := range idx {
		out[c] = v[j]
	}
	return out
}

func subFloats(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for c, j := range idx {
		out[c] = v[j]
	}
	return out
}

// SolveAll runs the initial parallel solve round: every shard solved
// concurrently under the plan's worker bound. LP-infeasible shards are
// recorded as starved for the coordinator; any other error aborts.
func (p *Plan) SolveAll(solve SolveFunc) error {
	if !p.bound() {
		p.BindSubs(nil)
	}
	return p.solveShards(allShards(p.Shards()), solve)
}

func allShards(k int) []int {
	idx := make([]int, k)
	for s := range idx {
		idx[s] = s
	}
	return idx
}

// solveShards solves the given shard indices in parallel, updating
// p.results / p.starved / per-shard bases.
func (p *Plan) solveShards(idx []int, solve SolveFunc) error {
	errs := make([]error, len(idx))
	par.ForEach(len(idx), p.opts.Workers, func(n int) {
		s := idx[n]
		warm := (*lp.Basis)(nil)
		switch {
		case p.results[s] != nil:
			warm = p.results[s].Basis
		case p.warmBases != nil:
			warm = p.warmBases[s]
		}
		res, err := solve(s, p.Subs[s], warm)
		switch {
		case err == nil:
			p.results[s] = res
			p.starved[s] = false
			p.pivots[s] += res.Pivots
			p.lpStats[s].Add(res.LPStats)
			if res.Patch != nil {
				p.patched[s] += res.Patch.Patches()
				if res.Patch.Rebuilt {
					p.rebuilds[s]++
				}
			}
			p.buildNS[s] += res.BuildWallNS
			p.patchNS[s] += res.PatchWallNS
		case errors.Is(err, lpmodel.ErrInfeasible):
			// Starvation — unless the shard already holds a design from a
			// previous round. rebid reserves a feasible shard's realized
			// use, so that design still fits inside the trimmed
			// allocation even when the full-demand LP no longer does;
			// keeping it is strictly better than discarding a deployable
			// design and begging for capacity back.
			if p.results[s] == nil {
				p.starved[s] = true
			}
		default:
			errs[n] = err
		}
	})
	for n, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", idx[n], err)
		}
	}
	return nil
}

// Outcome is the result of the coordination pass: the merged full-shape
// design, shard-summed counters, and the warm state for the next epoch.
type Outcome struct {
	Design *netmodel.Design
	// LPCost is the sum of per-shard LP optima. It bounds the merged
	// design's cost from below only per shard — merging deduplicates
	// reflector build costs — so treat it as diagnostic, not as the
	// monolithic LP bound.
	LPCost float64
	// RoundedCost sums the per-shard §3 rounding-stage costs; Vars and
	// Rows sum the per-shard LP sizes (what the shards solved in place of
	// one |R|·|D|-variable monolith).
	RoundedCost float64
	Vars, Rows  int
	// Pivots counts simplex iterations across all shards and rounds;
	// Retries sums per-shard audit re-randomizations.
	Pivots  int
	Retries int
	// Rounds is how many coordination rounds ran (0 = initial allocation
	// was never contested); Resolves counts shard re-solves they caused.
	Rounds   int
	Resolves int
	// Levels is the coordination topology that produced this outcome (1 =
	// flat re-bidding, 2 = hierarchical price exchange); the exchange
	// additionally reports ExchangeRounds price-clearing rounds (its Rounds
	// analogue), the number of distinct ContestedReflectors it cleared, and
	// the final relative bid/ask ExchangeGap — the price-weighted fraction
	// of capacity demand the last clearing round could not satisfy (0 =
	// every bid cleared).
	Levels              int
	ExchangeRounds      int
	ContestedReflectors int
	ExchangeGap         float64
	// ConsolidatedBuilds counts duplicate reflector builds the post-merge
	// Consolidate pass evacuated and removed.
	ConsolidatedBuilds int
	// PerShardPivots breaks Pivots down by shard.
	PerShardPivots []int
	// PerShardPatches counts the LP cells each shard's Patcher rewrote
	// (all rounds of this solve); PerShardRebuilds the full builds. Zeros
	// for shards the epoch's dirty sets never reached.
	PerShardPatches  []int
	PerShardRebuilds []int
	// LPBuildNS / LPPatchNS sum the per-shard lp-build / lp-patch stage
	// walls (CPU-style totals across concurrent shards, not elapsed wall).
	LPBuildNS, LPPatchNS int64
	// ExtractionsSkipped counts shards whose sub-instance came from the
	// cache (patched or reused in place) instead of a fresh extraction.
	ExtractionsSkipped int
	// LPStats totals solver factorization events across shards and rounds;
	// PerShardStats breaks them down by shard.
	LPStats       lp.SolveStats
	PerShardStats []lp.SolveStats
	// State seeds the next same-shaped solve.
	State *State
}

// Coordinate reconciles shared reflector capacity after SolveAll: while some
// shard is starved (infeasible) or saturates its allocation at a reflector
// that another shard leaves slack at, capacity is re-split — each shard's
// new share is proportional to its realized use plus a bid (saturated
// shards bid to roughly double, starved shards bid their affinity share
// plus a flat claim) — and the shards whose allocation materially changed
// re-solve warm-started. Terminates when nothing is contested or after the
// round cap; a shard still starved then fails the solve with
// lpmodel.ErrInfeasible (the caller may fall back to a monolithic solve,
// which will prove whether the instance itself is infeasible).
func (p *Plan) Coordinate(solve SolveFunc) (*Outcome, error) {
	k := p.Shards()
	out := &Outcome{Levels: 1}

	for round := 1; round <= p.opts.Rounds; round++ {
		use := p.usage()
		contested, anyStarved := p.contested(use)
		if traceRounds {
			fmt.Printf("round %d: starved=%v contested=%v alloc0=%.2f\n", round, p.starved, contested, p.Alloc[0])
		}
		if !anyStarved && len(contested) == 0 {
			break
		}
		out.Rounds = round
		changed := p.rebid(use, contested)
		if len(changed) == 0 {
			break
		}
		for _, s := range changed {
			p.Subs[s].Fanout = append([]float64(nil), p.Alloc[s]...)
		}
		prev := make([]*SolveResult, k)
		copy(prev, p.results)
		if err := p.solveShards(changed, solve); err != nil {
			return nil, err
		}
		out.Resolves += len(changed)
		for s := range p.starved {
			if p.starved[s] {
				p.starveRounds[s]++
			} else {
				p.starveRounds[s] = 0
			}
		}
		for _, s := range changed {
			r := p.results[s]
			if r == nil || prev[s] == nil {
				continue
			}
			improved := r.LPCost < prev[s].LPCost*(1-1e-3) ||
				r.Audit.WeightFactor > prev[s].Audit.WeightFactor+1e-9
			if !improved {
				p.settled[s] = true
			}
		}
	}
	for s, starved := range p.starved {
		if starved {
			return nil, fmt.Errorf("shard: shard %d still %w after %d coordination rounds",
				s, lpmodel.ErrInfeasible, p.opts.Rounds)
		}
	}
	p.finishOutcome(out)
	return out, nil
}

// finishOutcome merges the per-shard designs and fills the outcome's
// counters and next-epoch State — the common tail of Coordinate and
// Exchange, which differ only in how they reconcile contested capacity.
func (p *Plan) finishOutcome(out *Outcome) {
	in := p.In
	k := p.Shards()
	design := p.Merge()
	out.ConsolidatedBuilds = Consolidate(in, design)
	out.Design = design
	st := &State{Sinks: p.Sinks, Alloc: p.Alloc, Bases: make([]*lp.Basis, k), Patchers: p.Patchers, Subs: p.Subs}
	st.S, st.R, st.D = in.Dims()
	for s, r := range p.results {
		out.LPCost += r.LPCost
		out.RoundedCost += r.RoundedCost
		out.Vars += r.Vars
		out.Rows += r.Rows
		out.Retries += r.Retries
		st.Bases[s] = r.Basis
	}
	out.PerShardPivots = append([]int(nil), p.pivots...)
	for _, piv := range out.PerShardPivots {
		out.Pivots += piv
	}
	out.PerShardPatches = append([]int(nil), p.patched...)
	out.PerShardRebuilds = append([]int(nil), p.rebuilds...)
	for s := range p.buildNS {
		out.LPBuildNS += p.buildNS[s]
		out.LPPatchNS += p.patchNS[s]
	}
	out.ExtractionsSkipped = p.skips
	out.PerShardStats = append([]lp.SolveStats(nil), p.lpStats...)
	for _, sst := range out.PerShardStats {
		out.LPStats.Add(sst)
	}
	out.State = st
}

// usage returns each shard's realized fanout consumption per reflector
// (zero rows for starved shards).
func (p *Plan) usage() [][]float64 {
	_, R, _ := p.In.Dims()
	use := make([][]float64, p.Shards())
	for s, r := range p.results {
		use[s] = make([]float64, R)
		if r == nil {
			continue
		}
		for i := 0; i < R; i++ {
			use[s][i] = r.Design.FanoutUse(p.Subs[s], i)
		}
	}
	return use
}

// contested returns the set of reflectors where a saturated shard faces
// another shard's slack, plus whether any shard is starved outright.
func (p *Plan) contested(use [][]float64) (map[int]bool, bool) {
	_, R, _ := p.In.Dims()
	contested := make(map[int]bool)
	anyStarved := false
	for _, st := range p.starved {
		if st {
			anyStarved = true
		}
	}
	for i := 0; i < R; i++ {
		sat, slack := false, false
		for s := range p.results {
			if p.starved[s] {
				continue
			}
			a := p.Alloc[s][i]
			if p.hungry(s) && a > 1e-9 && use[s][i] >= p.opts.SaturationFrac*a {
				sat = true
			} else if a-use[s][i] > 0.02*p.In.Fanout[i] {
				slack = true
			}
		}
		if sat && slack {
			contested[i] = true
		}
	}
	return contested, anyStarved
}

// hungry reports whether shard s would benefit from more capacity: its
// design leaves some sink short of its full weight demand and it has not
// already settled (a settled shard re-solved with a bigger allocation and
// got nothing out of it — its shortfall is a rounding artifact, not a
// capacity one). A fully-served shard never bids — extra capacity can only
// shave cost, and re-splitting for that would churn every other shard.
func (p *Plan) hungry(s int) bool {
	r := p.results[s]
	return r == nil || (!p.settled[s] && r.Audit.WeightFactor < 1)
}

// rebid re-splits capacity at contested reflectors (and at every reflector
// when some shard is starved, since a starved shard's missing capacity may
// be anywhere in its cheap set) and returns the shards whose allocation
// materially changed.
//
// The invariant that makes the pass converge: a feasible shard's realized
// use is RESERVED — its new allocation never drops below what its current
// design consumes, so its design stays feasible under the new split and a
// re-solve can only improve it. Only the free residual (F_i minus all
// reserved use) is re-divided, proportionally to claims: a starved shard
// claims its affinity share plus a stake that doubles every round it stays
// starved, a saturated-and-still-short shard claims roughly double its
// use, and everyone else claims their current slack. Re-allocating from
// slack alone can therefore never starve a previously-feasible shard — the
// oscillation where an aggressive bid knocks out a neighbour is
// structurally impossible.
func (p *Plan) rebid(use [][]float64, contested map[int]bool) []int {
	in := p.In
	_, R, _ := in.Dims()
	k := p.Shards()
	anyStarved := false
	for _, st := range p.starved {
		if st {
			anyStarved = true
		}
	}
	changedShard := make([]bool, k)
	for i := 0; i < R; i++ {
		if !contested[i] && !anyStarved {
			continue
		}
		F := in.Fanout[i]
		if F <= 0 {
			continue
		}
		reserved := 0.0
		for s := 0; s < k; s++ {
			if !p.starved[s] {
				reserved += use[s][i]
			}
		}
		free := F - reserved
		if free <= 1e-12 {
			continue // nothing to re-split without displacing live service
		}
		claims := make([]float64, k)
		tot := 0.0
		for s := 0; s < k; s++ {
			switch {
			case p.starved[s]:
				claims[s] = p.aff[s][i] + (0.2*F+1)*float64(int(1)<<p.starveRounds[s])
			case p.hungry(s) && use[s][i] >= p.opts.SaturationFrac*p.Alloc[s][i] && p.Alloc[s][i] > 1e-9:
				claims[s] = max(p.Alloc[s][i]-use[s][i], 0) + max(use[s][i], 1)
			default:
				claims[s] = max(p.Alloc[s][i]-use[s][i], 0)
			}
			tot += claims[s]
		}
		if tot <= 0 {
			continue
		}
		for s := 0; s < k; s++ {
			base := 0.0
			if !p.starved[s] {
				base = use[s][i]
			}
			next := base + free*claims[s]/tot
			if diff := next - p.Alloc[s][i]; diff > 1e-6*(1+F) || diff < -1e-6*(1+F) {
				changedShard[s] = true
			}
			p.Alloc[s][i] = next
		}
	}
	var changed []int
	for s, ch := range changedShard {
		if ch {
			changed = append(changed, s)
		}
	}
	return changed
}

// Merge unions the per-shard designs into a full-shape design: build and
// ingest decisions are OR-ed (a reflector built by two shards is of course
// built — and paid for — once), and each shard's serve arcs are re-indexed
// to global sink ids. Normalize restores the implication closure on the
// merged instance.
func (p *Plan) Merge() *netmodel.Design {
	d := netmodel.NewDesign(p.In)
	for s, r := range p.results {
		if r == nil {
			continue
		}
		for i, col := range r.Design.Serve {
			for c, v := range col {
				if v {
					d.Serve[i][p.Sinks[s][c]] = true
				}
			}
		}
		for k := range r.Design.Ingest {
			for i, v := range r.Design.Ingest[k] {
				if v {
					d.Ingest[k][i] = true
				}
			}
		}
		for i, v := range r.Design.Build {
			if v {
				d.Build[i] = true
			}
		}
	}
	d.Normalize(p.In)
	return d
}
