package shard

import (
	"sort"

	"repro/internal/netmodel"
)

// Consolidate is the merge-dedup counterpart of the capacity split: shards
// solve blind to each other, so two shards routinely build neighbouring
// reflectors where the monolithic solve would share one. The pass greedily
// visits built reflectors in increasing fanout use and tries to evacuate
// each one — every serve arc relocated onto another already-built reflector
// with true capacity slack (never above F_i, so the audited fanout factor
// only improves), without reducing any sink below min(its current weight,
// its full demand), and without violating §6.4 color limits or §6.3 edge
// capacities. A reflector is evacuated only when the whole relocation saves
// net cost (build cost + freed ingests − arc deltas − new ingests > 0), so
// the pass monotonically decreases design cost. Returns the number of
// builds removed.
//
// The pass runs on the merged full-shape design; it is deterministic, cost
// O(R²·D) with the small reflector sets of this model, and leaves every
// audit quantity no worse except IngestExcess (a §6.2 soft constraint the
// audit reports rather than enforces).
func Consolidate(in *netmodel.Instance, d *netmodel.Design) int {
	S, R, D := in.Dims()

	use := make([]float64, R)
	for i := 0; i < R; i++ {
		use[i] = d.FanoutUse(in, i)
	}
	weight := make([]float64, D)
	for j := 0; j < D; j++ {
		weight[j] = d.SinkWeight(in, j)
	}
	// copies[j][c] counts serving reflectors of color c for sink j.
	var copies [][]int
	if in.Color != nil {
		copies = make([][]int, D)
		for j := 0; j < D; j++ {
			copies[j] = make([]int, in.NumColors)
		}
		for i := 0; i < R; i++ {
			for j := 0; j < D; j++ {
				if d.Serve[i][j] {
					copies[j][in.Color[i]]++
				}
			}
		}
	}
	// served[i] lists the sinks reflector i currently serves.
	served := make([][]int, R)
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if d.Serve[i][j] {
				served[i] = append(served[i], j)
			}
		}
	}

	order := make([]int, 0, R)
	for i := 0; i < R; i++ {
		if d.Build[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if use[order[a]] != use[order[b]] {
			return use[order[a]] < use[order[b]]
		}
		return order[a] < order[b]
	})

	type move struct {
		j, to int
	}
	removed := 0
	for _, i := range order {
		if !d.Build[i] {
			continue
		}
		// Tentative state for this reflector's all-or-nothing transaction.
		addUse := make(map[int]float64)
		newIngest := make(map[[2]int]bool) // (k, i') ingests to add
		var moves []move
		feasible := true
		arcDelta := 0.0
		for _, j := range served[i] {
			b := in.UnitLoad(j)
			w := in.CappedWeight(i, j)
			floor := weight[j]
			if dem := in.Demand(j); floor > dem {
				floor = dem
			}
			best, bestCost := -1, 0.0
			for t := 0; t < R; t++ {
				if t == i || !d.Build[t] || d.Serve[t][j] || !in.ArcAllowed(t, j) {
					continue
				}
				if in.Fanout[t]-use[t]-addUse[t] < b {
					continue
				}
				if copies != nil {
					c := copies[j][in.Color[t]]
					if in.Color[t] == in.Color[i] {
						c-- // the arc being removed frees a copy of this color
					}
					if c >= 1 {
						continue
					}
				}
				if weight[j]-w+in.CappedWeight(t, j) < floor-1e-9 {
					continue
				}
				cost := in.RefSinkCost[t][j]
				k := in.Commodity[j]
				if !d.Ingest[k][t] && !newIngest[[2]int{k, t}] {
					cost += in.SrcRefCost[k][t]
				}
				if best < 0 || cost < bestCost {
					best, bestCost = t, cost
				}
			}
			if best < 0 {
				feasible = false
				break
			}
			moves = append(moves, move{j: j, to: best})
			addUse[best] += b
			arcDelta += in.RefSinkCost[best][j] - in.RefSinkCost[i][j]
			k := in.Commodity[j]
			if !d.Ingest[k][best] && !newIngest[[2]int{k, best}] {
				newIngest[[2]int{k, best}] = true
				arcDelta += in.SrcRefCost[k][best]
			}
		}
		if !feasible {
			continue
		}
		freed := in.ReflectorCost[i]
		for k := 0; k < S; k++ {
			if d.Ingest[k][i] {
				freed += in.SrcRefCost[k][i]
			}
		}
		if freed-arcDelta <= 1e-9 {
			continue
		}
		// Apply the transaction.
		for _, mv := range moves {
			d.Serve[i][mv.j] = false
			d.Serve[mv.to][mv.j] = true
			w := in.CappedWeight(i, mv.j)
			weight[mv.j] += in.CappedWeight(mv.to, mv.j) - w
			b := in.UnitLoad(mv.j)
			use[mv.to] += b
			if copies != nil {
				copies[mv.j][in.Color[i]]--
				copies[mv.j][in.Color[mv.to]]++
			}
			served[mv.to] = append(served[mv.to], mv.j)
		}
		for ki := range newIngest {
			d.Ingest[ki[0]][ki[1]] = true
		}
		for k := 0; k < S; k++ {
			d.Ingest[k][i] = false
		}
		d.Build[i] = false
		use[i] = 0
		served[i] = nil
		removed++
	}
	return removed
}
