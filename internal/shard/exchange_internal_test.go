package shard

import "testing"

// TestSuperGroups pins the super-shard folding invariants: every leaf lands
// in exactly one contiguous super-shard, group sizes stay balanced to within
// one leaf, want ≤ 0 selects ⌈√k⌉ groups, and want clamps to [1, k].
func TestSuperGroups(t *testing.T) {
	cases := []struct {
		k, want, groups int
	}{
		{1, 0, 1},
		{4, 0, 2},
		{9, 0, 3},
		{10, 0, 4}, // ⌈√10⌉
		{6, 2, 2},
		{6, 3, 3},
		{5, 8, 5},  // want > k clamps to k
		{7, -3, 3}, // negative want = auto ⌈√7⌉
	}
	for _, c := range cases {
		gs := superGroups(c.k, c.want)
		if len(gs) != c.groups {
			t.Errorf("superGroups(%d,%d): got %d groups, want %d", c.k, c.want, len(gs), c.groups)
			continue
		}
		next := 0
		minSz, maxSz := c.k, 0
		for _, g := range gs {
			if len(g) < minSz {
				minSz = len(g)
			}
			if len(g) > maxSz {
				maxSz = len(g)
			}
			for _, s := range g {
				if s != next {
					t.Fatalf("superGroups(%d,%d): leaf %d out of order (want %d) — groups must be contiguous", c.k, c.want, s, next)
				}
				next++
			}
		}
		if next != c.k {
			t.Errorf("superGroups(%d,%d): covered %d leaves, want %d", c.k, c.want, next, c.k)
		}
		if maxSz-minSz > 1 {
			t.Errorf("superGroups(%d,%d): unbalanced groups: min %d max %d", c.k, c.want, minSz, maxSz)
		}
	}
}
