package shard

// The hierarchical dual-price exchange: Dantzig–Wolfe-style coordination for
// the one resource the shards share, reflector fanout capacity.
//
// The flat pass (Coordinate) re-splits contested capacity proportionally to
// realized use plus heuristic bids, which needs several rounds to route
// capacity to the shard that values it most — and stops converging as the
// shard count grows, because a proportional split dilutes every bid by every
// other bid. The exchange replaces the heuristic with the LP's own economic
// signal: each leaf solve exposes the shadow price of its reflector-capacity
// rows (lpmodel.FracSolution.CapDuals → SolveResult.CapPrice), i.e. exactly
// how much its objective would improve per extra unit of fanout. A master
// clearing pass per level then moves capacity from low-price slack holders
// to high-price bidders — full claims in price order, not proportional
// slivers — so contested reflectors typically clear in ONE round where the
// flat pass burns its whole round budget.
//
// The hierarchy is the Dantzig–Wolfe tree flattened to two levels: leaves
// are the ordinary cost-anchor shards, and contiguous runs of leaves fold
// into super-shards (the leaf order IS the cost-anchor order, so contiguous
// runs are exactly the anchor groups the recursive partition would produce).
// The level-1 master clears capacity between the leaves of each super-shard
// — anchor-local contention, the common case — and the level-2 master clears
// the residual between super-shards. Clearing intra-super first keeps
// capacity near the region cluster that already holds it, which is what
// keeps leaf allocations (and their warm bases) stable as reflector counts
// reach the hundreds.
//
// PR-3's convergence guarantees survive verbatim: a feasible leaf's realized
// use is RESERVED (only slack ever moves, so clearing can never starve a
// previously-feasible leaf), starved leaves outrank every price bid with a
// claim that doubles each round they stay starved, and a leaf still starved
// at the round cap fails the solve with lpmodel.ErrInfeasible so the caller
// can fall back to the monolithic path at knife-edge scarcity.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lpmodel"
)

// exchangeGapTol is the relative bid/ask gap below which the exchange
// considers capacity cleared: the price-weighted unmet demand of a clearing
// round must be under 1% of the round's total bid value.
const exchangeGapTol = 0.01

// superGroups folds k leaf shards into contiguous super-shards. want ≤ 0
// selects ⌈√k⌉, which balances the two masters: ~√k leaves per super and ~√k
// supers per exchange.
func superGroups(k, want int) [][]int {
	if want <= 0 {
		want = int(math.Ceil(math.Sqrt(float64(k))))
	}
	if want > k {
		want = k
	}
	if want < 1 {
		want = 1
	}
	out := make([][]int, want)
	for g := 0; g < want; g++ {
		lo, hi := g*k/want, (g+1)*k/want
		for s := lo; s < hi; s++ {
			out[g] = append(out[g], s)
		}
	}
	return out
}

// Exchange reconciles shared reflector capacity after SolveAll with the
// hierarchical dual-price exchange; it is the Levels ≥ 2 counterpart of
// Coordinate and returns the same Outcome shape (plus the exchange
// telemetry: clearing rounds, distinct contested reflectors, final bid/ask
// gap). Rounds repeat until no leaf is starved and nothing is contested, or
// the round cap hits; a leaf still starved then fails with
// lpmodel.ErrInfeasible exactly like the flat pass.
func (p *Plan) Exchange(solve SolveFunc) (*Outcome, error) {
	k := p.Shards()
	supers := superGroups(k, p.opts.SuperShards)
	levels := 2
	if p.opts.Levels < 2 {
		// Degenerate single-level exchange: one super holding every leaf.
		supers, levels = [][]int{allShards(k)}, 1
	}
	out := &Outcome{Levels: levels}
	contestedSeen := make(map[int]bool)

	for round := 1; round <= p.opts.Rounds; round++ {
		use := p.usage()
		contested, anyStarved := p.contested(use)
		if !anyStarved && len(contested) == 0 {
			// Cleared: the last round's re-solves satisfied every bid, so the
			// final bid/ask gap is zero regardless of what the last clearing
			// pass quoted before those re-solves landed.
			out.ExchangeGap = 0
			break
		}
		out.ExchangeRounds = round
		for i := range contested {
			contestedSeen[i] = true
		}
		changed, gap := p.clearCapacity(use, contested, supers)
		out.ExchangeGap = gap
		if len(changed) == 0 {
			break // nothing movable: only the starved-check below can object
		}
		for _, s := range changed {
			p.Subs[s].Fanout = append([]float64(nil), p.Alloc[s]...)
		}
		prev := make([]*SolveResult, k)
		copy(prev, p.results)
		if err := p.solveShards(changed, solve); err != nil {
			return nil, err
		}
		out.Resolves += len(changed)
		for s := range p.starved {
			if p.starved[s] {
				p.starveRounds[s]++
			} else {
				p.starveRounds[s] = 0
			}
			if !p.starved[s] && p.hungry(s) {
				p.hungryRounds[s]++
			} else {
				p.hungryRounds[s] = 0
			}
		}
		for _, s := range changed {
			r := p.results[s]
			if r == nil || prev[s] == nil {
				continue
			}
			improved := r.LPCost < prev[s].LPCost*(1-1e-3) ||
				r.Audit.WeightFactor > prev[s].Audit.WeightFactor+1e-9
			if !improved {
				p.settled[s] = true
			}
		}
		// The exchange's stopping rule: once every economic bid cleared to
		// within tolerance (and no leaf is starved — recovery always gets
		// another round), the prices have spoken. Residual hunger past this
		// point means the capacity does not exist, not that it sits in the
		// wrong shard, so further rounds would only churn re-solves — this
		// early exit is where the exchange beats the flat pass's
		// settle-by-exhaustion cascade.
		stillStarved := false
		for _, st := range p.starved {
			if st {
				stillStarved = true
			}
		}
		if !stillStarved && gap < exchangeGapTol {
			break
		}
	}
	for s, starved := range p.starved {
		if starved {
			return nil, fmt.Errorf("shard: shard %d still %w after %d exchange rounds",
				s, lpmodel.ErrInfeasible, p.opts.Rounds)
		}
	}
	out.ContestedReflectors = len(contestedSeen)
	p.finishOutcome(out)
	return out, nil
}

// exBid is one leaf's capacity claim at a reflector during a clearing round.
type exBid struct {
	shard   int
	claim   float64 // additional fanout wanted beyond the reserved use
	price   float64 // quoted shadow price (priority and gap weighting)
	starved bool
	rounds  int // starveRounds, for ordering starved claims
	bought  float64
}

// clearCapacity runs one master-clearing round over every contested
// reflector (and every reflector when some leaf is starved — its missing
// capacity may be anywhere in its cheap set). Per reflector: every feasible
// leaf's realized use is reserved; the free residual starts distributed as
// the leaves' current slack (scaled so the reflector's total allocation
// stays exactly F_i even when rounded designs overshoot an allocation);
// bidders then buy slack in priority order — starved leaves first, then by
// quoted shadow price — intra-super before inter-super. Returns the leaves
// whose allocation materially changed and the round's relative bid/ask gap.
func (p *Plan) clearCapacity(use [][]float64, contested map[int]bool, supers [][]int) ([]int, float64) {
	in := p.In
	_, R, _ := in.Dims()
	k := p.Shards()
	superOf := make([]int, k)
	for g, leaves := range supers {
		for _, s := range leaves {
			superOf[s] = g
		}
	}
	anyStarved := false
	for _, st := range p.starved {
		if st {
			anyStarved = true
		}
	}
	changedShard := make([]bool, k)
	bidValue, unmetValue := 0.0, 0.0

	price := make([]float64, k)
	slack := make([]float64, k)
	alloc := make([]float64, k)
	for i := 0; i < R; i++ {
		F := in.Fanout[i]
		if F <= 0 {
			continue
		}
		maxPrice := 0.0
		priceDemand := false
		for s := 0; s < k; s++ {
			price[s] = 0
			if r := p.results[s]; r != nil && i < len(r.CapPrice) {
				price[s] = r.CapPrice[i]
			}
			if price[s] > maxPrice {
				maxPrice = price[s]
			}
			if price[s] > 0 && !p.starved[s] && p.hungry(s) {
				priceDemand = true
			}
		}
		// A positive shadow price from a hungry leaf opens the reflector for
		// clearing even when the use-based contested test misses it — in
		// particular at reflectors where the bidder holds NO allocation yet,
		// which the saturation heuristic is structurally blind to. Without
		// this, hunger migrates reflector-by-reflector (saturate → contest →
		// re-bid) and the exchange burns a round per hop exactly like the
		// flat pass.
		if !contested[i] && !anyStarved && !priceDemand {
			continue
		}
		if maxPrice <= 0 {
			maxPrice = 1 // no leaf quoted a price: gap weighting falls back to 1
		}
		// Reserve realized use; everything else is sellable slack. The scale
		// α ≤ 1 keeps Σ alloc = F when a rounded design overshoots its
		// allocation (use > alloc zeroes that leaf's slack but still counts
		// fully as reserved).
		free, slackTot := F, 0.0
		for s := 0; s < k; s++ {
			if p.starved[s] {
				slack[s] = p.Alloc[s][i]
			} else {
				free -= use[s][i]
				slack[s] = math.Max(p.Alloc[s][i]-use[s][i], 0)
			}
			slackTot += slack[s]
		}
		if free <= 1e-12 || slackTot <= 0 {
			continue // nothing movable without displacing live service
		}
		scale := free / slackTot
		for s := 0; s < k; s++ {
			base := 0.0
			if !p.starved[s] {
				base = use[s][i]
			}
			alloc[s] = base + slack[s]*scale
		}
		// Collect bids. A bidder keeps its own (scaled) slack and claims
		// capacity on top; sellers are everyone else, their slack on offer.
		var bids []exBid
		bidder := make([]bool, k)
		for s := 0; s < k; s++ {
			switch {
			case p.starved[s]:
				bids = append(bids, exBid{
					shard:   s,
					claim:   p.aff[s][i] + (0.2*F+1)*float64(int(1)<<p.starveRounds[s]),
					price:   maxPrice, // a starved leaf outbids every price
					starved: true,
					rounds:  p.starveRounds[s],
				})
				bidder[s] = true
			case p.hungry(s) && (price[s] > 0 ||
				(p.Alloc[s][i] > 1e-9 && use[s][i] >= p.opts.SaturationFrac*p.Alloc[s][i])):
				// A leaf that stayed hungry through a cleared round wasn't
				// asking for enough: double its claim each such round so
				// acquisition converges in O(log) rounds instead of creeping
				// up a doubling at a time.
				esc := float64(int(1) << min(p.hungryRounds[s], 6))
				bids = append(bids, exBid{shard: s, claim: math.Max(use[s][i], 1) * esc, price: price[s]})
				bidder[s] = true
			}
		}
		if len(bids) == 0 {
			continue
		}
		sort.SliceStable(bids, func(a, b int) bool {
			ba, bb := &bids[a], &bids[b]
			if ba.starved != bb.starved {
				return ba.starved
			}
			if ba.starved && ba.rounds != bb.rounds {
				return ba.rounds > bb.rounds
			}
			if ba.price != bb.price {
				return ba.price > bb.price
			}
			return ba.shard < bb.shard
		})
		// Sellers sell cheapest-valued slack first.
		sellers := make([]int, 0, k)
		for s := 0; s < k; s++ {
			if !bidder[s] && slack[s] > 0 {
				sellers = append(sellers, s)
			}
		}
		sort.SliceStable(sellers, func(a, b int) bool {
			if price[sellers[a]] != price[sellers[b]] {
				return price[sellers[a]] < price[sellers[b]]
			}
			return sellers[a] < sellers[b]
		})
		// Starved leaves are fed FIRST and proportionally to claim — the
		// flat pass's recovery rule, kept verbatim so several simultaneously
		// starved leaves all eat this round instead of the highest-priority
		// one exhausting the sellers (its escalated claim is an emergency
		// over-ask, not a measured demand).
		starvedClaim, sellable := 0.0, 0.0
		for b := range bids {
			if bids[b].starved {
				starvedClaim += bids[b].claim
			}
		}
		for _, s := range sellers {
			avail := alloc[s]
			if !p.starved[s] {
				avail -= use[s][i]
			}
			sellable += math.Max(avail, 0)
		}
		if starvedClaim > 0 && sellable > 0 {
			share := math.Min(sellable/starvedClaim, 1)
			for b := range bids {
				bid := &bids[b]
				if !bid.starved {
					continue
				}
				want := bid.claim * share
				for _, s := range sellers {
					if bid.bought >= want {
						break
					}
					avail := alloc[s]
					if !p.starved[s] {
						avail -= use[s][i]
					}
					if avail <= 0 {
						continue
					}
					take := math.Min(avail, want-bid.bought)
					alloc[s] -= take
					alloc[bid.shard] += take
					bid.bought += take
				}
			}
		}
		// The ask side left for economic bids once starved recovery has eaten.
		econAsk := 0.0
		for _, s := range sellers {
			avail := alloc[s]
			if !p.starved[s] {
				avail -= use[s][i]
			}
			econAsk += math.Max(avail, 0)
		}
		// Level 1: each price bidder buys from sellers of its own
		// super-shard; level 2: unmet bids cross super boundaries.
		for pass := 0; pass < 2; pass++ {
			for b := range bids {
				bid := &bids[b]
				if bid.starved {
					continue
				}
				for _, s := range sellers {
					if bid.bought >= bid.claim {
						break
					}
					if pass == 0 && superOf[s] != superOf[bid.shard] {
						continue
					}
					avail := alloc[s]
					if !p.starved[s] {
						avail -= use[s][i]
					}
					if avail <= 0 {
						continue
					}
					take := math.Min(avail, bid.claim-bid.bought)
					alloc[s] -= take
					alloc[bid.shard] += take
					bid.bought += take
				}
			}
		}
		// The bid/ask gap weighs the ECONOMIC bids only, and only up to the
		// ask side that actually existed: a starved leaf's escalated claim is
		// an over-ask by design, and demand beyond the market's sellable
		// slack is not a spread the exchange could ever close — every holder
		// is either using its capacity or equally hungry, so the shortfall is
		// genuine scarcity, not misallocation. Counting either tail would
		// report divergence exactly when the exchange has finished moving
		// everything movable.
		for b := range bids {
			if bids[b].starved {
				continue
			}
			counted := math.Min(bids[b].claim, econAsk)
			bidValue += bids[b].price * counted
			unmetValue += bids[b].price * math.Max(counted-bids[b].bought, 0)
		}
		for s := 0; s < k; s++ {
			if diff := alloc[s] - p.Alloc[s][i]; diff > 1e-6*(1+F) || diff < -1e-6*(1+F) {
				changedShard[s] = true
			}
			p.Alloc[s][i] = alloc[s]
		}
	}
	var changed []int
	for s, ch := range changedShard {
		if ch {
			changed = append(changed, s)
		}
	}
	gap := 0.0
	if bidValue > 0 {
		gap = unmetValue / bidValue
	}
	return changed, gap
}
