package shard_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/shard"
)

// TestPartitionKeepsViewersAtomic locks the multi-stream sharding
// invariant: one sink's streams never straddle shards. The partition must
// also stay a balanced cover of all demand units.
func TestPartitionKeepsViewersAtomic(t *testing.T) {
	cc := gen.DefaultClustered(3, 4, 2, 6)
	cc.StreamsPerSink = 3
	cc.Fanout *= 3
	in := gen.Clustered(cc, 9)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 7} {
		parts := shard.PartitionSinks(in, k)
		if len(parts) != k {
			t.Fatalf("k=%d: got %d shards", k, len(parts))
		}
		owner := make(map[int]int) // viewer -> shard
		seen := make(map[int]bool) // unit cover
		for s, units := range parts {
			if len(units) == 0 {
				t.Fatalf("k=%d: shard %d empty", k, s)
			}
			for _, j := range units {
				if seen[j] {
					t.Fatalf("k=%d: unit %d in two shards", k, j)
				}
				seen[j] = true
				v := in.Viewer(j)
				if prev, ok := owner[v]; ok && prev != s {
					t.Fatalf("k=%d: viewer %d straddles shards %d and %d", k, v, prev, s)
				}
				owner[v] = s
			}
		}
		if len(seen) != in.NumSinks {
			t.Fatalf("k=%d: partition covers %d of %d units", k, len(seen), in.NumSinks)
		}
		// Balance: no shard more than twice the ideal unit share.
		for s, units := range parts {
			if len(units) > 2*in.NumSinks/k+3 {
				t.Fatalf("k=%d: shard %d holds %d of %d units", k, s, len(units), in.NumSinks)
			}
		}
	}
}

// TestPartitionRaggedViewers is the regression lock for the balanced-cut
// guard: small viewers sorting ahead of a big one used to exhaust the
// order before every shard was fed, returning an empty shard.
func TestPartitionRaggedViewers(t *testing.T) {
	in := netmodel.NewZeroInstance(3, 2, 5)
	in.SinkOf = []int{0, 1, 2, 2, 2}
	in.Commodity = []int{0, 0, 0, 1, 2}
	for j := range in.Threshold {
		in.Threshold[j] = 0.9
	}
	for i := range in.Fanout {
		in.Fanout[i] = 10
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 3; k++ {
		parts := shard.PartitionSinks(in, k)
		if len(parts) != k {
			t.Fatalf("k=%d: got %d shards", k, len(parts))
		}
		total := 0
		for s, units := range parts {
			if len(units) == 0 {
				t.Fatalf("k=%d: shard %d empty (parts=%v)", k, s, parts)
			}
			total += len(units)
		}
		if total != in.NumSinks {
			t.Fatalf("k=%d: partition covers %d of %d units", k, total, in.NumSinks)
		}
	}
}

// TestShardedSolveMultiStream runs the full sharded pipeline on a native
// multi-stream instance and checks the merged design passes the audit with
// viewer-level counts populated.
func TestShardedSolveMultiStream(t *testing.T) {
	cc := gen.DefaultClustered(3, 3, 2, 6)
	cc.StreamsPerSink = 2
	cc.Fanout *= 2
	in := gen.Clustered(cc, 5)
	in.Color = nil
	in.NumColors = 0
	opts := core.DefaultOptions(1)
	opts.Shards = 3
	res, err := core.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardInfo == nil || res.ShardInfo.Fallback {
		t.Fatalf("expected a genuine sharded solve, got %+v", res.ShardInfo)
	}
	if !res.AuditOK() {
		t.Fatalf("sharded multi-stream design failed the audit: %+v", res.Audit)
	}
	if res.Audit.Viewers != in.ActiveViewers() {
		t.Fatalf("audit saw %d viewers, want %d", res.Audit.Viewers, in.ActiveViewers())
	}
	if res.Audit.MetViewers > res.Audit.Viewers || res.Audit.MetViewers > res.Audit.MetDemand {
		t.Fatalf("inconsistent viewer counts: %+v", res.Audit)
	}
}
