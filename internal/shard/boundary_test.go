package shard_test

// Boundary hardening for the sharded path: shard counts over-asked past the
// viewer population, and zero-weight shards after a churn storm. Both used
// to be quiet degradations — an over-asked k mismatched the cached (clamped)
// partition every epoch and silently discarded all warm state; all-inactive
// shards must stay trivial no-ops instead of degenerate LPs.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/shard"
)

func TestEffectiveShardsClamps(t *testing.T) {
	in := gen.Clustered(func() gen.ClusteredConfig {
		cc := gen.DefaultClustered(2, 2, 2, 4)
		cc.StreamsPerSink = 2
		cc.Fanout *= 2
		return cc
	}(), 5)
	G := in.NumViewers()
	if G >= in.NumSinks {
		t.Fatalf("want a multi-stream instance, got %d viewers over %d units", G, in.NumSinks)
	}
	for _, tc := range []struct{ k, want int }{
		{0, 1}, {-3, 1}, {1, 1}, {2, 2}, {G, G}, {G + 1, G}, {10 * G, G},
	} {
		if got := shard.EffectiveShards(in, tc.k); got != tc.want {
			t.Fatalf("EffectiveShards(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
	// The clamp is what PartitionSinks actually produces.
	for _, k := range []int{2, G, G + 7} {
		if got := len(shard.PartitionSinks(in, k)); got != shard.EffectiveShards(in, k) {
			t.Fatalf("k=%d: partition has %d shards, EffectiveShards says %d",
				k, got, shard.EffectiveShards(in, k))
		}
	}
}

// TestPrepareOverAskReusesState drives shard.Prepare directly with a k past
// the viewer population: the cached State — which always carries the CLAMPED
// partition, because PartitionSinks clamps — must still be recognized as
// compatible and reused, not silently discarded against the raw request.
func TestPrepareOverAskReusesState(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 2, 4), 3)
	G := in.NumViewers()
	ask := G + 5
	parts := shard.PartitionSinks(in, ask)
	if len(parts) != G {
		t.Fatalf("partition has %d shards, want clamp to %d", len(parts), G)
	}
	S, R, D := in.Dims()
	state := &shard.State{S: S, R: R, D: D, Sinks: parts, Alloc: make([][]float64, len(parts))}
	for s := range state.Alloc {
		state.Alloc[s] = make([]float64, R)
		for i := 0; i < R; i++ {
			state.Alloc[s][i] = float64(in.Fanout[i]) / float64(len(parts))
		}
	}
	p, err := shard.Prepare(in, shard.Options{Shards: ask}, state)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != G {
		t.Fatalf("plan has %d shards, want %d", p.Shards(), G)
	}
	for s := range parts {
		if len(p.Sinks[s]) == 0 || &p.Sinks[s][0] != &parts[s][0] {
			t.Fatalf("shard %d: over-asked Prepare recomputed the partition instead of reusing the state", s)
		}
	}
}

// TestOverAskedShardsKeepWarmState locks the clamp into the warm-state
// plumbing: a session asking for more shards than there are viewers must
// still reuse the previous epoch's partition, patchers, and cached subs —
// the second epoch patches in place instead of rebuilding every shard LP.
func TestOverAskedShardsKeepWarmState(t *testing.T) {
	cc := gen.DefaultClustered(2, 2, 2, 4)
	cc.StreamsPerSink = 2
	cc.Fanout *= 2
	in := gen.Clustered(cc, 11)
	G := in.NumViewers()

	opts := core.DefaultOptions(7)
	opts.Shards = G + 25 // far past the viewer population
	opts.IncrementalLP = true
	sess := core.NewSession(opts, 0, true)

	res0, err := sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if res0.ShardInfo == nil {
		t.Fatal("epoch 0 did not shard")
	}
	if res0.ShardInfo.Shards != G {
		t.Fatalf("effective shards %d, want clamp to %d viewers", res0.ShardInfo.Shards, G)
	}

	// A one-cell repricing epoch: with warm state surviving the over-ask,
	// at most the touched shard patches and nobody rebuilds.
	d := netmodel.Delta{Note: "one-arc repricing",
		ScaleRefSinkCost: []netmodel.ArcValue{{A: 0, B: 0, Value: 1.1}}}
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	sess.Observe(ds)
	res1, err := sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	si := res1.ShardInfo
	if si == nil {
		t.Fatal("epoch 1 did not shard")
	}
	for s, n := range si.PerShardRebuilds {
		if n != 0 {
			t.Fatalf("shard %d rebuilt its LP %d times — warm state was discarded", s, n)
		}
	}
	if si.ExtractionsSkipped == 0 {
		t.Fatal("no shard reused its cached sub-instance — warm state was discarded")
	}
}

// TestShardedZeroWeightShardsAfterChurnStorm empties whole regions (and then
// the whole instance) and checks the sharded solve stays a trivial no-op on
// the empty shards instead of a degenerate LP: the solve succeeds, serves
// nothing it shouldn't, and still meets the guarantee on what remains.
func TestShardedZeroWeightShardsAfterChurnStorm(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 6), 17)
	opts := core.DefaultOptions(13)
	opts.Shards = 3

	// Storm: every sink of shard 0's partition leaves.
	parts := shard.PartitionSinks(in, 3)
	for _, j := range parts[0] {
		in.Threshold[j] = 0
	}
	res, err := core.Solve(in, opts)
	if err != nil {
		t.Fatalf("solve with an all-inactive shard: %v", err)
	}
	if !res.AuditOK() {
		t.Fatalf("audit failed with an all-inactive shard: %+v", res.Audit)
	}
	for _, j := range parts[0] {
		for i := 0; i < in.NumReflectors; i++ {
			if res.Design.Serve[i][j] {
				t.Fatalf("inactive sink %d is served", j)
			}
		}
	}

	// Full blackout: zero demand everywhere still solves and audits clean.
	for j := range in.Threshold {
		in.Threshold[j] = 0
	}
	res, err = core.Solve(in, opts)
	if err != nil {
		t.Fatalf("solve with zero active sinks: %v", err)
	}
	if !res.AuditOK() {
		t.Fatalf("audit failed with zero active sinks: %+v", res.Audit)
	}
	if res.Audit.Cost != 0 {
		t.Fatalf("empty instance deployed cost %g, want 0", res.Audit.Cost)
	}
}
