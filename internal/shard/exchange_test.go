package shard_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

// TestHierarchicalPropertyVsMonolithic is the two-level ≡ flat equivalence
// lock, run against the strongest baseline we have: across the same ≥50
// seeded gen.Clustered corpus as TestShardedPropertyVsMonolithic (random
// shapes, random shard counts), the hierarchical exchange (ShardLevels=2)
// must deliver a design that passes the identical audit as the monolithic
// solve — structure, the paper's W/4+4F guarantee, full demand after repair
// — at a cost within the same shardCostBound. Failures print the seed for
// exact replay.
func TestHierarchicalPropertyVsMonolithic(t *testing.T) {
	const instances = 50
	worst := 0.0
	worstSeed := uint64(0)
	for trial := 0; trial < instances; trial++ {
		seed := uint64(1000 + trial*7919)
		rng := stats.NewRNG(seed)
		cfg := gen.DefaultClustered(
			1+rng.Intn(3), // sources
			2+rng.Intn(3), // regions
			2+rng.Intn(2), // ISPs
			3+rng.Intn(6), // sinks per region
		)
		cfg.Fanout = cfg.Fanout * 2
		in := gen.Clustered(cfg, seed)
		k := 2 + int(seed%3)

		opts := core.DefaultOptions(seed)
		opts.RepairCoverage = true
		mono, err := core.Solve(in, opts)
		if err != nil {
			t.Fatalf("monolithic solve (seed=%d): %v", seed, err)
		}
		opts.Shards = k
		opts.ShardLevels = 2
		hier, err := core.Solve(in, opts)
		if err != nil {
			t.Fatalf("hierarchical solve (seed=%d, k=%d): %v", seed, k, err)
		}
		replay := fmt.Sprintf("seed=%d shards=%d levels=2 instance=%s", seed, k, in.Name)

		si := hier.ShardInfo
		if si == nil || si.Fallback {
			t.Errorf("%s: hierarchical solve fell back to monolithic", replay)
			continue
		}
		if si.Levels != 2 {
			t.Errorf("%s: ShardInfo.Levels = %d, want 2", replay, si.Levels)
		}
		a := hier.Audit
		if !a.StructureOK {
			t.Errorf("%s: merged design violates structure constraints", replay)
		}
		if !core.MeetsGuarantee(a, hier.PathRounding) {
			t.Errorf("%s: merged design misses the paper guarantee: %v", replay, a)
		}
		if a.MetDemand != a.Sinks {
			t.Errorf("%s: hierarchical+repair left %d/%d sinks short of full demand",
				replay, a.Sinks-a.MetDemand, a.Sinks)
		}
		ratio := a.Cost / mono.Audit.Cost
		if ratio > worst {
			worst, worstSeed = ratio, seed
		}
		if ratio > shardCostBound {
			t.Errorf("%s: hierarchical cost %.4f vs monolithic %.4f = %.3fx > %.2fx bound",
				replay, a.Cost, mono.Audit.Cost, ratio, shardCostBound)
		}
	}
	t.Logf("worst hierarchical/monolithic cost ratio over %d instances: %.3fx (seed %d, bound %.2fx)",
		instances, worst, worstSeed, shardCostBound)
}

// TestExchangeContestedConvergence keeps a genuinely contested exchange in
// the always-on suite: a small clustered instance held at ~2.5x capacity
// scarcity (slots ≈ 2.5·D) forces the coordination layer to move capacity
// on most seeds, and the exchange must clear it in no more rounds than the
// flat proportional re-bidding, end within the 1% bid/ask gap, and match
// the flat design's audited cost. The shape solves in tens of milliseconds,
// so this runs everywhere; the |R| ≥ 200 version of the same claim is the
// env-gated TestExchangeAcceptance200 below.
func TestExchangeContestedConvergence(t *testing.T) {
	engaged := false
	for _, seed := range []uint64{5, 21} {
		cfg := gen.DefaultClustered(2, 5, 2, 16)
		cfg.ReflectorsPerColo = 1
		cfg.Fanout = 20 // 10 reflectors · 20 slots = 2.5 × 80 demand units
		in := gen.Clustered(cfg, seed)

		opts := core.DefaultOptions(seed)
		opts.Shards = 4
		flat, err := core.Solve(in, opts)
		if err != nil {
			t.Fatalf("seed %d: flat solve: %v", seed, err)
		}
		opts.ShardLevels = 2
		hier, err := core.Solve(in, opts)
		if err != nil {
			t.Fatalf("seed %d: hierarchical solve: %v", seed, err)
		}
		fi, hi := flat.ShardInfo, hier.ShardInfo
		if fi.Fallback || hi.Fallback {
			t.Fatalf("seed %d: fallback (flat=%v hier=%v) at 2.5x scarcity", seed, fi.Fallback, hi.Fallback)
		}
		if hi.ExchangeRounds > 0 {
			engaged = true
		}
		if hi.ExchangeRounds > fi.Rounds {
			t.Errorf("seed %d: exchange took %d rounds where flat re-bidding took %d",
				seed, hi.ExchangeRounds, fi.Rounds)
		}
		if hi.ExchangeGap >= 0.01 {
			t.Errorf("seed %d: exchange ended with bid/ask gap %.4f ≥ 1%%", seed, hi.ExchangeGap)
		}
		if !hier.AuditOK() || !flat.AuditOK() {
			t.Errorf("seed %d: audit failed (flat=%v hier=%v)", seed, flat.AuditOK(), hier.AuditOK())
		}
		if ratio := hier.Audit.Cost / flat.Audit.Cost; ratio > 1.05 {
			t.Errorf("seed %d: hierarchical cost %.1f vs flat %.1f = %.3fx > 1.05x",
				seed, hier.Audit.Cost, flat.Audit.Cost, ratio)
		}
		t.Logf("seed %d: flat rounds=%d resolves=%d cost=%.1f | exchange rounds=%d gap=%.4f contested=%d resolves=%d cost=%.1f",
			seed, fi.Rounds, fi.Resolves, flat.Audit.Cost,
			hi.ExchangeRounds, hi.ExchangeGap, hi.ContestedReflectors, hi.Resolves, hier.Audit.Cost)
	}
	if !engaged {
		t.Fatal("no seed engaged the exchange: the scarcity shape no longer produces contention")
	}
}

// TestExchangeAcceptance200 is the PR's reflector-axis acceptance claim at
// production scale: at |R| = 200 under scarce capacity, the hierarchical
// exchange must converge (final bid/ask gap < 1%) in at most HALF the
// coordination rounds the flat proportional re-bidding burns, at a cost no
// worse than flat, with both designs passing the audit. The two solves take
// minutes, so the test is opt-in:
//
//	OVERLAY_EXCHANGE_ACCEPTANCE=1 go test ./internal/shard/ -run TestExchangeAcceptance200 -timeout 30m
func TestExchangeAcceptance200(t *testing.T) {
	if os.Getenv("OVERLAY_EXCHANGE_ACCEPTANCE") == "" {
		t.Skip("set OVERLAY_EXCHANGE_ACCEPTANCE=1 to run the |R|=200 exchange acceptance (several minutes)")
	}
	cfg := gen.DefaultClustered(2, 10, 5, 24)
	cfg.ReflectorsPerColo = 4
	cfg.Fanout = 3 // 200 reflectors · 3 slots = 2.5 × 240 demand units
	in := gen.Clustered(cfg, 21)

	opts := core.DefaultOptions(21)
	opts.Shards = 8
	opts.ShardRounds = 8
	flat, err := core.Solve(in, opts)
	if err != nil {
		t.Fatalf("flat solve: %v", err)
	}
	opts.ShardLevels = 2
	hier, err := core.Solve(in, opts)
	if err != nil {
		t.Fatalf("hierarchical solve: %v", err)
	}
	fi, hi := flat.ShardInfo, hier.ShardInfo
	t.Logf("flat: rounds=%d resolves=%d cost=%.1f auditOK=%v", fi.Rounds, fi.Resolves, flat.Audit.Cost, flat.AuditOK())
	t.Logf("hier: rounds=%d gap=%.4f contested=%d resolves=%d cost=%.1f auditOK=%v",
		hi.ExchangeRounds, hi.ExchangeGap, hi.ContestedReflectors, hi.Resolves, hier.Audit.Cost, hier.AuditOK())
	if fi.Fallback || hi.Fallback {
		t.Fatalf("fallback at acceptance scarcity (flat=%v hier=%v)", fi.Fallback, hi.Fallback)
	}
	if fi.Rounds < 2 {
		t.Fatalf("flat burned only %d rounds — the shape is not contested enough to measure convergence", fi.Rounds)
	}
	if 2*hi.ExchangeRounds > fi.Rounds {
		t.Errorf("exchange rounds %d > half of flat's %d rounds", hi.ExchangeRounds, fi.Rounds)
	}
	if hi.ExchangeGap >= 0.01 {
		t.Errorf("exchange ended with bid/ask gap %.4f ≥ 1%%", hi.ExchangeGap)
	}
	if !hier.AuditOK() || !flat.AuditOK() {
		t.Errorf("audit parity broken (flat=%v hier=%v)", flat.AuditOK(), hier.AuditOK())
	}
	if hier.Audit.Cost > flat.Audit.Cost*(1+1e-9) {
		t.Errorf("hierarchical cost %.2f exceeds flat %.2f", hier.Audit.Cost, flat.Audit.Cost)
	}
	// The two coordination schemes settle on different (both audit-passing)
	// designs; hold served weight to parity within a point rather than
	// strict dominance.
	if hier.Audit.WeightFactor < flat.Audit.WeightFactor-0.01 {
		t.Errorf("hierarchical weight factor %.4f below flat %.4f", hier.Audit.WeightFactor, flat.Audit.WeightFactor)
	}
}
