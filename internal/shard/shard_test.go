package shard_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/shard"
	"repro/internal/stats"
)

// shardCostBound is the property-tested optimality gap: on randomized
// clustered instances the sharded design's audited cost stays within this
// factor of the monolithic design's. The corpus deliberately stresses
// adversarially tiny shards (3–6 sinks each), where duplicated builds the
// consolidation pass cannot evacuate weigh heaviest; the measured worst
// over the 50 seeds is 1.235x, and at production shard sizes the ratio
// drops to ~1x or below (see the S1 experiment). The margin also absorbs
// randomized-rounding variance, which cuts both ways — sharded solves beat
// the monolith outright on many seeds.
const shardCostBound = 1.30

func solveBoth(t *testing.T, in *netmodel.Instance, shards int, seed uint64) (mono, sharded *core.Result) {
	t.Helper()
	opts := core.DefaultOptions(seed)
	opts.RepairCoverage = true
	mono, err := core.Solve(in, opts)
	if err != nil {
		t.Fatalf("monolithic solve: %v", err)
	}
	opts.Shards = shards
	sharded, err = core.Solve(in, opts)
	if err != nil {
		t.Fatalf("sharded solve (k=%d): %v", shards, err)
	}
	return mono, sharded
}

// TestShardedPropertyVsMonolithic is the randomized property harness of the
// sharded path: across ≥50 seeded gen.Clustered instances (random shapes,
// random shard counts), the sharded solve must produce a design that passes
// the same audit as the monolithic solve — structure constraints hold, the
// paper's W/4+4F guarantee holds, and with the repair pass every demanding
// sink is fully served — at a cost within shardCostBound of the monolithic
// design. Failures print the seed so a run can be replayed exactly.
func TestShardedPropertyVsMonolithic(t *testing.T) {
	const instances = 50
	worst := 0.0
	worstSeed := uint64(0)
	for trial := 0; trial < instances; trial++ {
		seed := uint64(1000 + trial*7919)
		rng := stats.NewRNG(seed)
		cfg := gen.DefaultClustered(
			1+rng.Intn(3), // sources
			2+rng.Intn(3), // regions
			2+rng.Intn(2), // ISPs
			3+rng.Intn(6), // sinks per region
		)
		// Headroom so the repair pass can top every sink up to full demand
		// even after the capacity split.
		cfg.Fanout = cfg.Fanout * 2
		in := gen.Clustered(cfg, seed)
		k := 2 + int(seed%3)

		mono, sharded := solveBoth(t, in, k, seed)
		replay := fmt.Sprintf("seed=%d shards=%d instance=%s", seed, k, in.Name)

		if sharded.ShardInfo == nil || sharded.ShardInfo.Fallback {
			t.Errorf("%s: sharded solve fell back to monolithic", replay)
			continue
		}
		a := sharded.Audit
		if !a.StructureOK {
			t.Errorf("%s: merged design violates structure constraints", replay)
		}
		if !core.MeetsGuarantee(a, sharded.PathRounding) {
			t.Errorf("%s: merged design misses the paper guarantee: %v", replay, a)
		}
		if a.MetDemand != a.Sinks {
			t.Errorf("%s: sharded+repair left %d/%d sinks short of full demand",
				replay, a.Sinks-a.MetDemand, a.Sinks)
		}
		ratio := a.Cost / mono.Audit.Cost
		if ratio > worst {
			worst, worstSeed = ratio, seed
		}
		if ratio > shardCostBound {
			t.Errorf("%s: sharded cost %.4f vs monolithic %.4f = %.3fx > %.2fx bound",
				replay, a.Cost, mono.Audit.Cost, ratio, shardCostBound)
		}
	}
	t.Logf("worst sharded/monolithic cost ratio over %d instances: %.3fx (seed %d, bound %.2fx)",
		instances, worst, worstSeed, shardCostBound)
}

// TestShardedDeterminism pins the reproducibility contract: the same seed
// and shard count must yield the identical total cost (and pivot count) on
// every run, regardless of goroutine scheduling in the parallel solve.
func TestShardedDeterminism(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 6), 42)
	opts := core.DefaultOptions(7)
	opts.Shards = 3
	var costs []float64
	var pivots []int
	for run := 0; run < 5; run++ {
		res, err := core.Solve(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, res.Audit.Cost)
		pivots = append(pivots, res.Timings.LPPivots)
	}
	for run := 1; run < 5; run++ {
		if costs[run] != costs[0] {
			t.Fatalf("run %d cost %v differs from run 0 cost %v", run, costs[run], costs[0])
		}
		if pivots[run] != pivots[0] {
			t.Fatalf("run %d pivots %d differ from run 0 pivots %d", run, pivots[run], pivots[0])
		}
	}
	t.Logf("5 runs, identical cost %.4f and pivots %d", costs[0], pivots[0])
}

// TestShardedConcurrentStress runs several complete sharded solves of the
// same instance concurrently — shared read-only instance, each solve itself
// fanning out per-shard goroutines — and checks every solve lands on the
// identical cost. Under `go test -race` (the CI race job) this doubles as
// the data-race check for the parallel shard machinery.
func TestShardedConcurrentStress(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 5), 11)
	const solvers = 4
	costs := make([]float64, solvers)
	errs := make([]error, solvers)
	var wg sync.WaitGroup
	wg.Add(solvers)
	for g := 0; g < solvers; g++ {
		go func(g int) {
			defer wg.Done()
			opts := core.DefaultOptions(5)
			opts.Shards = 3
			res, err := core.Solve(in, opts)
			if err != nil {
				errs[g] = err
				return
			}
			costs[g] = res.Audit.Cost
		}(g)
	}
	wg.Wait()
	for g := 0; g < solvers; g++ {
		if errs[g] != nil {
			t.Fatalf("solver %d: %v", g, errs[g])
		}
		if costs[g] != costs[0] {
			t.Fatalf("solver %d cost %v differs from solver 0 cost %v", g, costs[g], costs[0])
		}
	}
}

// TestPartitionSinks checks the partition invariants on assorted shapes:
// every sink lands in exactly one shard, shard sizes are balanced to within
// one sink, the shard count clamps to the sink population, and the cut is
// independent of which sinks are active.
func TestPartitionSinks(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 4, 2, 7), 3)
	for _, k := range []int{1, 2, 3, 5, 8, in.NumSinks, in.NumSinks + 10} {
		parts := shard.PartitionSinks(in, k)
		wantK := k
		if wantK > in.NumSinks {
			wantK = in.NumSinks
		}
		if len(parts) != wantK {
			t.Fatalf("k=%d: got %d shards, want %d", k, len(parts), wantK)
		}
		seen := make([]bool, in.NumSinks)
		minSz, maxSz := in.NumSinks, 0
		for _, p := range parts {
			if len(p) < minSz {
				minSz = len(p)
			}
			if len(p) > maxSz {
				maxSz = len(p)
			}
			for _, j := range p {
				if seen[j] {
					t.Fatalf("k=%d: sink %d in two shards", k, j)
				}
				seen[j] = true
			}
		}
		for j, ok := range seen {
			if !ok {
				t.Fatalf("k=%d: sink %d in no shard", k, j)
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("k=%d: shard sizes unbalanced: min %d max %d", k, minSz, maxSz)
		}
	}

	// Threshold churn must not move sinks between shards (live sessions
	// rely on this for per-shard warm starts).
	before := shard.PartitionSinks(in, 3)
	churned := in.Clone()
	for j := 0; j < churned.NumSinks; j += 2 {
		churned.Threshold[j] = 0
	}
	after := shard.PartitionSinks(churned, 3)
	for s := range before {
		if len(before[s]) != len(after[s]) {
			t.Fatalf("threshold churn resized shard %d", s)
		}
		for c := range before[s] {
			if before[s][c] != after[s][c] {
				t.Fatalf("threshold churn moved sink %d of shard %d", before[s][c], s)
			}
		}
	}
}

// TestCoordinationRecoversStarvedShard feeds the solve a sabotaged warm
// state — shard 0's capacity allocation squeezed to near zero at every
// reflector, which makes its first-round LP infeasible — and checks the
// coordination pass re-allocates capacity and completes without falling
// back to the monolithic path.
func TestCoordinationRecoversStarvedShard(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 6), 9)
	const k = 3
	opts := core.DefaultOptions(3)
	opts.Shards = k

	// A healthy solve first, to harvest a compatible state to sabotage.
	res, err := core.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.ShardState
	if st == nil {
		t.Fatal("sharded solve returned no state")
	}
	for i := range st.Alloc[0] {
		moved := st.Alloc[0][i] * 0.999
		st.Alloc[0][i] -= moved
		st.Alloc[1][i] += moved
	}

	opts.ShardState = st
	res2, err := core.Solve(in, opts)
	if err != nil {
		t.Fatalf("solve with starved shard 0: %v", err)
	}
	if res2.ShardInfo.Fallback {
		t.Fatal("coordination failed to feed starved shard; fell back to monolithic")
	}
	if res2.ShardInfo.Rounds == 0 {
		t.Fatal("expected at least one coordination round for the starved shard")
	}
	if !res2.Audit.StructureOK || !core.MeetsGuarantee(res2.Audit, res2.PathRounding) {
		t.Fatalf("recovered design fails audit: %v", res2.Audit)
	}
	t.Logf("starved shard recovered in %d rounds, %d re-solves, cost %.2f (healthy %.2f)",
		res2.ShardInfo.Rounds, res2.ShardInfo.Resolves, res2.Audit.Cost, res.Audit.Cost)
}
