package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, 4, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(i int) { called = true })
	ForEach(-3, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForEachSingleWorkerIsSerial(t *testing.T) {
	order := make([]int, 0, 10)
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(100, 0, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(50, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestChunksPartition(t *testing.T) {
	const n = 103
	var hits [n]int32
	Chunks(n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
}

func TestChunksSmallN(t *testing.T) {
	var hits [2]int32
	Chunks(2, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	if hits[0] != 1 || hits[1] != 1 {
		t.Fatalf("hits = %v", hits)
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for n := 0; n < b.N; n++ {
		ForEach(64, 8, func(i int) {})
	}
}
