package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, 4, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(i int) { called = true })
	ForEach(-3, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn must not run for n <= 0")
	}
}

func TestForEachSingleWorkerIsSerial(t *testing.T) {
	order := make([]int, 0, 10)
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(100, 0, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(50, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestChunksPartition(t *testing.T) {
	const n = 103
	var hits [n]int32
	Chunks(n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
}

func TestChunksSmallN(t *testing.T) {
	var hits [2]int32
	Chunks(2, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	if hits[0] != 1 || hits[1] != 1 {
		t.Fatalf("hits = %v", hits)
	}
}

// TestForEachStress hammers the pool from many concurrent callers with
// oversubscribed workers and uneven task sizes — the shape that exposes
// lost-wakeup, double-dispatch, and off-by-one races under -race.
func TestForEachStress(t *testing.T) {
	const (
		callers = 16
		n       = 2048
	)
	var wg sync.WaitGroup
	var inFlight, peak int64
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits := make([]int32, n)
			workers := 1 + c%7 // mix serial and parallel paths
			ForEach(n, workers, func(i int) {
				cur := atomic.AddInt64(&inFlight, 1)
				for {
					p := atomic.LoadInt64(&peak)
					if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
						break
					}
				}
				if i%97 == 0 { // uneven task sizes
					runtime.Gosched()
				}
				atomic.AddInt32(&hits[i], 1)
				atomic.AddInt64(&inFlight, -1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Errorf("caller %d: index %d hit %d times", c, i, h)
					return
				}
			}
		}()
	}
	wg.Wait()
	if peak == 0 {
		t.Fatal("no task ever ran")
	}
}

// TestMapStressConcurrentCallers checks Map under concurrent use: results
// must stay ordered and complete even when many Maps share the scheduler.
func TestMapStressConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := Map(513, 0, func(i int) int { return i * 3 })
			for i, v := range out {
				if v != i*3 {
					t.Errorf("Map[%d] = %d", i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestChunksStress verifies the chunked partition under concurrent callers
// and adversarial (worker > n, prime n) shapes.
func TestChunksStress(t *testing.T) {
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 101 + c*13
			hits := make([]int32, n)
			Chunks(n, 3+c*5, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Errorf("n=%d: index %d covered %d times", n, i, h)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkForEachOverhead(b *testing.B) {
	for n := 0; n < b.N; n++ {
		ForEach(64, 8, func(i int) {})
	}
}
