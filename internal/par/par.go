// Package par provides small bounded-parallelism helpers used across the
// solver, simulator, and experiment harness. Work is distributed over a
// fixed pool of goroutines fed by a channel, following the
// share-memory-by-communicating style.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0,n) using up to workers goroutines
// (or GOMAXPROCS when workers <= 0). It returns when all calls complete.
// fn must be safe to call concurrently for distinct i.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Map runs fn(i) for every i in [0,n) in parallel and collects the results
// in order. It is a convenience wrapper over ForEach.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Chunks splits [0,n) into roughly equal contiguous chunks, one per worker,
// and runs fn(lo, hi) for each chunk in parallel. Useful when per-item work
// is tiny and channel traffic would dominate.
func Chunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
