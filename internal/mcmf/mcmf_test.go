package mcmf

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 2, 3, 1)
	res := g.MinCostMaxFlow(0, 2)
	if res.Flow != 3 {
		t.Fatalf("flow = %d, want 3", res.Flow)
	}
	if math.Abs(res.Cost-6) > 1e-9 {
		t.Fatalf("cost = %v, want 6", res.Cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 2-hop paths with different costs; capacity forces both.
	g := New(4)
	e1 := g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 0)
	e2 := g.AddEdge(0, 2, 1, 1)
	g.AddEdge(2, 3, 1, 0)
	res := g.MinCostMaxFlow(0, 3)
	if res.Flow != 2 {
		t.Fatalf("flow = %d, want 2", res.Flow)
	}
	if math.Abs(res.Cost-11) > 1e-9 {
		t.Fatalf("cost = %v, want 11", res.Cost)
	}
	if g.Flow(e1) != 1 || g.Flow(e2) != 1 {
		t.Fatalf("edge flows = %d,%d; want 1,1", g.Flow(e1), g.Flow(e2))
	}
}

func TestMinCostPrefersCheapEvenLonger(t *testing.T) {
	// Direct expensive edge vs cheap 3-hop detour.
	g := New(4)
	direct := g.AddEdge(0, 3, 1, 100)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(2, 3, 1, 1)
	res := g.MinCostFlowValue(0, 3, 1)
	if res.Flow != 1 || math.Abs(res.Cost-3) > 1e-9 {
		t.Fatalf("flow=%d cost=%v, want 1, 3", res.Flow, res.Cost)
	}
	if g.Flow(direct) != 0 {
		t.Fatal("expensive direct edge should be unused")
	}
}

func TestFlowValueLimit(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 10, 2)
	res := g.MinCostFlowValue(0, 1, 4)
	if res.Flow != 4 || math.Abs(res.Cost-8) > 1e-9 {
		t.Fatalf("flow=%d cost=%v, want 4, 8", res.Flow, res.Cost)
	}
}

func TestRerouting(t *testing.T) {
	// Classic case where a later augmentation must push flow back through
	// a residual arc.
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(1, 3, 1, 3)
	g.AddEdge(2, 3, 1, 1)
	res := g.MinCostMaxFlow(0, 3)
	if res.Flow != 2 {
		t.Fatalf("flow = %d, want 2", res.Flow)
	}
	// Optimal: 0-1-2-3 (cost 2) + 0-2? cap(0,2)=1 cost 2 then 2-3 full...
	// Enumerate: paths 0-1-3 (4) & 0-2-3 (3) total 7, or 0-1-2-3 (2) &
	// 0-2-?3 blocked... flow on (2,3) cap 1 only. So max flow 2 must use
	// (1,3): 0-1-3 and 0-2-3: cost 4+3 = 7.
	if math.Abs(res.Cost-7) > 1e-9 {
		t.Fatalf("cost = %v, want 7", res.Cost)
	}
}

func TestMaxFlowDinic(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 16, 0)
	g.AddEdge(0, 2, 13, 0)
	g.AddEdge(1, 2, 10, 0)
	g.AddEdge(2, 1, 4, 0)
	g.AddEdge(1, 3, 12, 0)
	g.AddEdge(3, 2, 9, 0)
	g.AddEdge(2, 4, 14, 0)
	g.AddEdge(4, 3, 7, 0)
	g.AddEdge(3, 5, 20, 0)
	g.AddEdge(4, 5, 4, 0)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Fatalf("max flow = %d, want 23 (CLRS example)", f)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5, 1)
	res := g.MinCostMaxFlow(0, 3)
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("flow=%d cost=%v, want zero", res.Flow, res.Cost)
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	a := g.AddNode()
	b := g.AddNode()
	if a != 1 || b != 2 || g.NumNodes() != 3 {
		t.Fatalf("AddNode gave %d,%d n=%d", a, b, g.NumNodes())
	}
	g.AddEdge(0, b, 2, 1)
	if g.MaxFlow(0, b) != 2 {
		t.Fatal("flow through added node failed")
	}
}

// TestFlowConservationRandom checks conservation and capacity invariants on
// random graphs, and that MinCostMaxFlow achieves the same value as Dinic.
func TestFlowConservationRandom(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		seed := uint64(1000 + trial)
		g1, _, _ := buildWith(stats.NewRNG(seed))
		maxf := g1.MaxFlow(0, g1.NumNodes()-1)

		g2, ids, ends := buildWith(stats.NewRNG(seed))
		res := g2.MinCostMaxFlow(0, g2.NumNodes()-1)
		if res.Flow != maxf {
			t.Fatalf("trial %d: min-cost max-flow %d != Dinic %d", trial, res.Flow, maxf)
		}
		// Conservation at internal nodes.
		net := make([]int64, g2.NumNodes())
		for idx, id := range ids {
			f := g2.Flow(id)
			if f < 0 || f > g2.Capacity(id) {
				t.Fatalf("trial %d: edge %d flow %d outside [0,%d]", trial, id, f, g2.Capacity(id))
			}
			net[ends[idx][0]] -= f
			net[ends[idx][1]] += f
		}
		for v := 1; v < g2.NumNodes()-1; v++ {
			if net[v] != 0 {
				t.Fatalf("trial %d: conservation violated at node %d: %d", trial, v, net[v])
			}
		}
		if net[g2.NumNodes()-1] != res.Flow {
			t.Fatalf("trial %d: sink imbalance %d != flow %d", trial, net[g2.NumNodes()-1], res.Flow)
		}
	}
}

// buildWith constructs the same random graph shape used by
// TestFlowConservationRandom from the given RNG position.
func buildWith(rng *stats.RNG) (*Graph, []int, [][2]int) {
	n := 6 + rng.Intn(8)
	g := New(n)
	var ids []int
	var ends [][2]int
	nEdges := n + rng.Intn(2*n)
	for e := 0; e < nEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		id := g.AddEdge(u, v, int64(1+rng.Intn(10)), rng.Range(0, 5))
		ids = append(ids, id)
		ends = append(ends, [2]int{u, v})
	}
	return g, ids, ends
}

func TestPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	g := New(2)
	g.AddEdge(0, 5, 1, 0)
}
