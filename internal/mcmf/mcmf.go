// Package mcmf implements min-cost max-flow on directed graphs with integer
// capacities and float64 costs, via successive shortest augmenting paths
// (SPFA/Bellman–Ford path search, which tolerates the floating-point costs
// produced by the overlay LP without potential-maintenance headaches).
//
// The §5 GAP conversion network uses capacities in half-units; callers scale
// capacities by 2 so all flows are integral.
package mcmf

import (
	"fmt"
	"math"
)

// edge is one directed arc plus its residual twin (stored adjacently:
// edge 2e and 2e+1).
type edge struct {
	to   int
	cap  int64 // residual capacity
	cost float64
}

// Graph is a flow network under construction. Nodes are 0..n-1.
type Graph struct {
	n     int
	edges []edge
	adj   [][]int32 // adjacency lists of edge indices
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int32, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// AddNode appends a node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge adds a directed edge from -> to with the given capacity and
// per-unit cost, returning an edge handle usable with Flow.
func (g *Graph) AddEdge(from, to int, capacity int64, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcmf: edge %d->%d outside graph of %d nodes", from, to, g.n))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: to, cap: capacity, cost: cost})
	g.edges = append(g.edges, edge{to: from, cap: 0, cost: -cost})
	g.adj[from] = append(g.adj[from], int32(id))
	g.adj[to] = append(g.adj[to], int32(id+1))
	return id
}

// Flow returns the flow currently routed on edge id (forward direction).
func (g *Graph) Flow(id int) int64 {
	return g.edges[id^1].cap
}

// Capacity returns the original capacity of edge id.
func (g *Graph) Capacity(id int) int64 {
	return g.edges[id].cap + g.edges[id^1].cap
}

// Result summarizes a flow computation.
type Result struct {
	Flow int64
	Cost float64
	// Augmentations counts shortest-path rounds (diagnostic).
	Augmentations int
}

// MinCostMaxFlow sends as much flow as possible from s to t, among maximum
// flows choosing one of minimum cost. It runs successive shortest-path
// augmentation; with nonnegative edge costs the intermediate flows are
// min-cost for their value (so it can also be used for min-cost flow of a
// target value via capacity gadgets).
func (g *Graph) MinCostMaxFlow(s, t int) Result {
	return g.minCost(s, t, math.MaxInt64)
}

// MinCostFlowValue sends exactly up to target units (less if the max flow is
// smaller), minimizing cost of the routed flow.
func (g *Graph) MinCostFlowValue(s, t int, target int64) Result {
	return g.minCost(s, t, target)
}

func (g *Graph) minCost(s, t int, limit int64) Result {
	var res Result
	dist := make([]float64, g.n)
	inQueue := make([]bool, g.n)
	prevEdge := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	for res.Flow < limit {
		// SPFA shortest path by cost in the residual graph.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		inQueue[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			du := dist[u]
			for _, eid := range g.adj[u] {
				e := &g.edges[eid]
				if e.cap <= 0 {
					continue
				}
				nd := du + e.cost
				if nd < dist[e.to]-1e-12 {
					dist[e.to] = nd
					prevEdge[e.to] = eid
					if !inQueue[e.to] {
						queue = append(queue, int32(e.to))
						inQueue[e.to] = true
					}
				}
			}
		}
		if prevEdge[t] < 0 {
			break // no augmenting path
		}
		// Bottleneck along the path.
		bottleneck := limit - res.Flow
		for v := t; v != s; {
			e := &g.edges[prevEdge[v]]
			if e.cap < bottleneck {
				bottleneck = e.cap
			}
			v = g.edges[prevEdge[v]^1].to
		}
		// Apply.
		for v := t; v != s; {
			eid := prevEdge[v]
			g.edges[eid].cap -= bottleneck
			g.edges[eid^1].cap += bottleneck
			v = g.edges[eid^1].to
		}
		res.Flow += bottleneck
		res.Cost += dist[t] * float64(bottleneck)
		res.Augmentations++
	}
	return res
}

// MaxFlow computes a maximum s-t flow ignoring costs (Dinic's algorithm).
// It shares the residual state with the cost-based methods, so use a fresh
// graph per computation.
func (g *Graph) MaxFlow(s, t int) int64 {
	level := make([]int32, g.n)
	iter := make([]int, g.n)
	queue := make([]int32, 0, g.n)
	var total int64
	for {
		// BFS levels.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, eid := range g.adj[u] {
				e := &g.edges[eid]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, int32(e.to))
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, math.MaxInt64, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
}

func (g *Graph) dfs(u, t int, limit int64, level []int32, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(g.adj[u]); iter[u]++ {
		eid := g.adj[u][iter[u]]
		e := &g.edges[eid]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		d := limit
		if e.cap < d {
			d = e.cap
		}
		f := g.dfs(e.to, t, d, level, iter)
		if f > 0 {
			g.edges[eid].cap -= f
			g.edges[eid^1].cap += f
			return f
		}
	}
	return 0
}
