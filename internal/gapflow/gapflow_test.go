package gapflow

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/round"
)

func TestBoxesForSinkBasic(t *testing.T) {
	// Four pairs each carrying 1/4: total mass 1 ⇒ 2 boxes, last dropped
	// ⇒ 1 kept.
	ws := []float64{4, 3, 2, 1}
	xs := []float64{0.25, 0.25, 0.25, 0.25}
	boxes := BoxesForSink(ws, xs, 0)
	if len(boxes) != 1 {
		t.Fatalf("boxes = %d, want 1", len(boxes))
	}
	// First box absorbs the top half of the mass: weights 4 and 3.
	if boxes[0].Hi != 4 || boxes[0].Lo != 3 {
		t.Fatalf("box interval [%v,%v], want [3,4]", boxes[0].Lo, boxes[0].Hi)
	}
}

func TestBoxesForSinkPartialLast(t *testing.T) {
	// Mass 1.3 ⇒ s_j = ⌈2.6⌉ = 3 boxes (2 complete + 1 partial); the
	// partial one is dropped ⇒ 2 kept.
	ws := []float64{5, 4, 3}
	xs := []float64{0.5, 0.5, 0.3}
	boxes := BoxesForSink(ws, xs, 0)
	if len(boxes) != 2 {
		t.Fatalf("boxes = %d, want 2", len(boxes))
	}
	if boxes[0].Hi != 5 || boxes[0].Lo != 5 {
		t.Fatalf("box0 = %+v", boxes[0])
	}
	if boxes[1].Hi != 5 || boxes[1].Lo != 4 {
		t.Fatalf("box1 = %+v (intervals share endpoints)", boxes[1])
	}
}

func TestBoxesForSinkDecreasingIntervals(t *testing.T) {
	ws := []float64{9, 7, 6, 5, 2, 1}
	xs := []float64{0.3, 0.3, 0.3, 0.3, 0.3, 0.3}
	boxes := BoxesForSink(ws, xs, 3)
	for b := 1; b < len(boxes); b++ {
		if boxes[b].Hi > boxes[b-1].Lo+1e-12 {
			t.Fatalf("box %d interval overlaps above predecessor: %+v vs %+v", b, boxes[b], boxes[b-1])
		}
		if boxes[b].Sink != 3 {
			t.Fatal("sink label lost")
		}
	}
}

func TestBoxesEmptyAndTiny(t *testing.T) {
	if boxes := BoxesForSink(nil, nil, 0); len(boxes) != 0 {
		t.Fatal("no pairs ⇒ no boxes")
	}
	// Mass 0.4 < 1/2 ⇒ no complete box.
	if boxes := BoxesForSink([]float64{1}, []float64{0.4}, 0); len(boxes) != 0 {
		t.Fatalf("boxes = %d, want 0", len(boxes))
	}
}

// TestEndToEndGAPGuarantees runs LP → §3 rounding → §5 GAP on several
// instances and checks the paper's §5 bounds: every sink retains ≥ 1/4 of
// its weight demand and fanout stays ≤ 4F (the combined factors).
func TestEndToEndGAPGuarantees(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		in := gen.Uniform(gen.DefaultUniform(2, 6, 14), seed)
		fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
		if err != nil {
			t.Fatal(err)
		}
		r := round.Apply(in, fs, round.DefaultOptions(seed*31))
		res := Round(in, r.XBar)

		d := netmodel.NewDesign(in)
		for i := range res.Serve {
			copy(d.Serve[i], res.Serve[i])
		}
		d.Normalize(in)
		a := netmodel.AuditDesign(in, d)
		if a.WeightFactor < 0.25-1e-9 {
			t.Errorf("seed %d: weight factor %.4f < 1/4 (saturated %d/%d boxes)",
				seed, a.WeightFactor, res.SaturatedBoxes, res.TotalBoxes)
		}
		if a.FanoutFactor > 4+1e-9 {
			t.Errorf("seed %d: fanout factor %.4f > 4", seed, a.FanoutFactor)
		}
	}
}

// TestGAPSaturatesBoxes: the §5 argument needs the max flow to saturate the
// box demands; verify it does on typical rounded solutions.
func TestGAPSaturatesBoxes(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 14), 9)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	r := round.Apply(in, fs, round.DefaultOptions(77))
	res := Round(in, r.XBar)
	if res.TotalBoxes == 0 {
		t.Fatal("expected boxes")
	}
	if res.SaturatedBoxes < res.TotalBoxes {
		t.Fatalf("saturated only %d/%d boxes", res.SaturatedBoxes, res.TotalBoxes)
	}
}

// TestGAPCostBounded: the half-integral flow is a min-cost flow, so its cost
// is at most the x-portion cost of the fractional x̄ it replaced (after
// capacity reduction); doubling at most doubles it. Sanity-check the final
// x-cost against 2× the x̄ cost.
func TestGAPCostBounded(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 14), 11)
	fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	r := round.Apply(in, fs, round.DefaultOptions(13))
	res := Round(in, r.XBar)
	xbarCost := 0.0
	for i := range r.XBar {
		for j, x := range r.XBar[i] {
			xbarCost += in.RefSinkCost[i][j] * x
		}
	}
	finalCost := 0.0
	for i := range res.Serve {
		for j, s := range res.Serve[i] {
			if s {
				finalCost += in.RefSinkCost[i][j]
			}
		}
	}
	// The doubled min-cost flow costs ≤ 2·(flow cost) ≤ 2·(x̄ cost) —
	// modulo the pair-capacity relaxation allowing up to a full unit per
	// pair, give a generous 4× cushion before failing.
	if finalCost > 4*xbarCost+1e-9 && finalCost > 1e-9 {
		t.Fatalf("final x cost %v far above x̄ cost %v", finalCost, xbarCost)
	}
	if res.FlowCost > xbarCost*2.000001+1e-9 {
		t.Fatalf("flow cost %v above the doubled fractional cost %v", res.FlowCost, 2*xbarCost)
	}
}

func TestGAPEmptyXBar(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 4), 2)
	xbar := make([][]float64, in.NumReflectors)
	for i := range xbar {
		xbar[i] = make([]float64, in.NumSinks)
	}
	res := Round(in, xbar)
	if res.TotalBoxes != 0 || res.SaturatedBoxes != 0 {
		t.Fatal("empty x̄ must produce no boxes")
	}
	for i := range res.Serve {
		for _, s := range res.Serve[i] {
			if s {
				t.Fatal("empty x̄ must serve nothing")
			}
		}
	}
}

func TestBoxMassConservation(t *testing.T) {
	// Total kept boxes ≈ ⌈2M⌉-1 for each sink.
	ws := make([]float64, 20)
	xs := make([]float64, 20)
	for i := range ws {
		ws[i] = float64(20 - i)
		xs[i] = 0.2
	}
	// M = 4.0 ⇒ s_j = 8 ⇒ 7 kept.
	boxes := BoxesForSink(ws, xs, 0)
	want := int(math.Ceil(2*4.0)) - 1
	if len(boxes) != want {
		t.Fatalf("boxes = %d, want %d", len(boxes), want)
	}
}

// TestBoxInvariantsQuick property-checks the §5 box construction on random
// inputs: (a) the number of kept boxes is exactly ⌈2·mass⌉−1, (b) intervals
// are ordered decreasingly and within the weight range, (c) every interval
// has Lo ≤ Hi.
func TestBoxInvariantsQuick(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		ws := make([]float64, len(raw))
		xs := make([]float64, len(raw))
		mass := 0.0
		for i, v := range raw {
			ws[i] = 0.1 + float64(v%97)/10 // weights in [0.1, 9.7]
			xs[i] = float64(v%31+1) / 62.0 // x in (0, 0.5]
			mass += xs[i]
		}
		boxes := BoxesForSink(ws, xs, 0)
		want := int(math.Ceil(2*mass-1e-9)) - 1
		if want < 0 {
			want = 0
		}
		if len(boxes) != want {
			t.Logf("boxes=%d want=%d mass=%v", len(boxes), want, mass)
			return false
		}
		maxW, minW := 0.0, math.Inf(1)
		for _, w := range ws {
			if w > maxW {
				maxW = w
			}
			if w < minW {
				minW = w
			}
		}
		for b, bx := range boxes {
			if bx.Lo > bx.Hi+1e-12 {
				return false
			}
			if bx.Hi > maxW+1e-12 || bx.Lo < minW-1e-12 {
				return false
			}
			if b > 0 && bx.Hi > boxes[b-1].Lo+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBoxWeightLowerBoundQuick checks the §5 weight-accounting chain on
// random inputs: the kept boxes' half-unit lower endpoints cover at least
// Σ w·x − w_max (the ½·Σmin(w_ℓ) ≥ Σ w x̄ − ½ w_1 inequality, doubled).
func TestBoxWeightLowerBoundQuick(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		ws := make([]float64, len(raw))
		xs := make([]float64, len(raw))
		var wx, wmax float64
		for i, v := range raw {
			ws[i] = 0.5 + float64(v%71)/20
			xs[i] = float64(v%17+1) / 34.0
			wx += ws[i] * xs[i]
			if ws[i] > wmax {
				wmax = ws[i]
			}
		}
		boxes := BoxesForSink(ws, xs, 0)
		got := 0.0
		for _, bx := range boxes {
			got += 0.5 * bx.Lo
		}
		return got >= wx-wmax-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
