// Package gapflow implements the final rounding stage of the paper (§5): a
// modified Generalized Assignment Problem conversion that turns the
// fractional x̄ left by the §3 randomized rounding into a 0-1 assignment
// while losing at most a factor 2 on weight and fanout (for a combined
// end-to-end factor of 4).
//
// It builds the 5-level network of Figure 2:
//
//	level 1: source s
//	level 2: reflectors, edge s→i of capacity F_i
//	level 3: (reflector, sink) pairs with x̄_ij > 0, edge i→(i,j) of
//	         capacity 1 and cost c_ij
//	level 4: per-sink "boxes", one per half-unit of fractional coverage
//	         (sorted by weight, the possibly-partial last box dropped);
//	         each box carries the weight interval it absorbed, and a pair
//	         connects to a box (capacity 1/2) iff its weight lies in the
//	         box's interval
//	level 5: sink t, one capacity-1/2 edge per box
//
// All capacities are multiples of 1/2, so scaling by 2 gives an integral
// min-cost max-flow problem; the resulting half-integral assignment is
// doubled into a 0-1 assignment.
package gapflow

import (
	"math"
	"sort"

	"repro/internal/mcmf"
	"repro/internal/netmodel"
)

// Box is one level-4 node: a half-unit of fractional coverage of a sink,
// annotated with the weight interval [Lo, Hi] it absorbed.
type Box struct {
	Sink   int
	Lo, Hi float64
}

// Result reports the integralization outcome.
type Result struct {
	// Serve is the final 0-1 assignment x.
	Serve [][]bool
	// Boxes built per sink (after dropping the last), and how many the
	// max-flow saturated; unsaturated boxes lower the weight guarantee
	// and are surfaced here rather than hidden.
	TotalBoxes, SaturatedBoxes int
	// FlowCost is the cost of the chosen assignment's x-part before
	// doubling (i.e. of the half-integral flow).
	FlowCost float64
}

// epsilon below which a fractional x̄ is treated as zero.
const xEps = 1e-12

// Round converts the fractional assignment xbar into a 0-1 assignment.
// Weights used for box construction are the capped weights min(w_ij, W_j),
// matching the WLOG of §4.
func Round(in *netmodel.Instance, xbar [][]float64) *Result {
	_, R, D := in.Dims()

	// --- Level 4: box construction per sink (§5). ---
	type pairRef struct {
		refl int
		w    float64
		x    float64
	}
	pairsBySink := make([][]pairRef, D)
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if xbar[i][j] > xEps {
				pairsBySink[j] = append(pairsBySink[j], pairRef{refl: i, w: in.CappedWeight(i, j), x: xbar[i][j]})
			}
		}
	}
	var boxes []Box
	boxStart := make([]int, D+1)
	for j := 0; j < D; j++ {
		ps := pairsBySink[j]
		sort.Slice(ps, func(a, b int) bool { return ps[a].w > ps[b].w })
		pairsBySink[j] = ps
		boxStart[j] = len(boxes)
		if len(ps) == 0 {
			continue
		}
		// Walk the sorted mass in half-unit chunks.
		var complete []Box
		mass := 0.0
		hi := ps[0].w
		for _, p := range ps {
			mass += p.x
			for mass >= 0.5-1e-12 {
				complete = append(complete, Box{Sink: j, Lo: p.w, Hi: hi})
				mass -= 0.5
				hi = p.w
			}
		}
		// Drop the last box: the partial remainder if any mass is left,
		// otherwise the last complete box (§5: "we then eliminate the
		// last box for each sink", with s_j = ⌈2Σx̄⌉ boxes total).
		if mass < 1e-9 && len(complete) > 0 {
			complete = complete[:len(complete)-1]
		}
		boxes = append(boxes, complete...)
	}
	boxStart[D] = len(boxes)

	// --- Flow network (capacities ×2 so half-units are integral). ---
	// Nodes: 0 = source, 1..R = reflectors, then pairs, then boxes, then t.
	nPairs := 0
	for j := 0; j < D; j++ {
		nPairs += len(pairsBySink[j])
	}
	g := mcmf.New(1 + R + nPairs + len(boxes) + 1)
	src := 0
	reflNode := func(i int) int { return 1 + i }
	pairBase := 1 + R
	boxBase := pairBase + nPairs
	t := boxBase + len(boxes)

	reflUsed := make([]bool, R)
	type pairEdge struct {
		refl, sink int
		edgeID     int
	}
	var pairEdges []pairEdge
	pn := pairBase
	for j := 0; j < D; j++ {
		for _, p := range pairsBySink[j] {
			if !reflUsed[p.refl] {
				reflUsed[p.refl] = true
				// s → reflector, capacity F_i (scaled ×2).
				capF := int64(2 * math.Floor(in.Fanout[p.refl]+1e-9))
				g.AddEdge(src, reflNode(p.refl), capF, 0)
			}
			// reflector → pair, capacity 1 (scaled 2), cost per
			// original unit c_ij ⇒ c_ij/2 per scaled unit.
			id := g.AddEdge(reflNode(p.refl), pn, 2, in.RefSinkCost[p.refl][j]/2)
			pairEdges = append(pairEdges, pairEdge{refl: p.refl, sink: j, edgeID: id})
			// pair → boxes whose interval contains w (cap 1/2 ⇒ 1).
			for b := boxStart[j]; b < boxStart[j+1]; b++ {
				bx := boxes[b]
				if p.w >= bx.Lo-1e-12 && p.w <= bx.Hi+1e-12 {
					g.AddEdge(pn, boxBase+b, 1, 0)
				}
			}
			pn++
		}
	}
	for b := range boxes {
		// box → t, capacity 1/2 (scaled 1).
		g.AddEdge(boxBase+b, t, 1, 0)
	}

	flow := g.MinCostMaxFlow(src, t)

	res := &Result{
		Serve:          make([][]bool, R),
		TotalBoxes:     len(boxes),
		SaturatedBoxes: int(flow.Flow),
		FlowCost:       flow.Cost,
	}
	for i := 0; i < R; i++ {
		res.Serve[i] = make([]bool, D)
	}
	// Doubling: any pair carrying ≥ 1/2 unit (scaled ≥ 1) serves the sink.
	for _, pe := range pairEdges {
		if g.Flow(pe.edgeID) >= 1 {
			res.Serve[pe.refl][pe.sink] = true
		}
	}
	return res
}

// BoxesForSink exposes the §5 box construction for a single sink — used by
// the unit tests that reconstruct Figure 2 and by the experiment harness.
// It returns the kept boxes (after dropping the last).
func BoxesForSink(weights, xs []float64, sink int) []Box {
	type pw struct{ w, x float64 }
	ps := make([]pw, len(weights))
	for i := range weights {
		ps[i] = pw{weights[i], xs[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].w > ps[b].w })
	var complete []Box
	mass := 0.0
	if len(ps) == 0 {
		return nil
	}
	hi := ps[0].w
	for _, p := range ps {
		if p.x <= xEps {
			continue
		}
		mass += p.x
		for mass >= 0.5-1e-12 {
			complete = append(complete, Box{Sink: sink, Lo: p.w, Hi: hi})
			mass -= 0.5
			hi = p.w
		}
	}
	if mass < 1e-9 && len(complete) > 0 {
		complete = complete[:len(complete)-1]
	}
	return complete
}
