package greedy

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netmodel"
)

func TestGreedyFeasibleAndHard(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		in := gen.Uniform(gen.DefaultUniform(2, 8, 16), seed)
		res := Greedy(in)
		a := netmodel.AuditDesign(in, res.Design)
		if !a.StructureOK {
			t.Fatalf("seed %d: structure violated", seed)
		}
		// Greedy never violates fanout — that's its selling point.
		if a.FanoutFactor > 1+1e-9 {
			t.Fatalf("seed %d: greedy violated fanout: %v", seed, a.FanoutFactor)
		}
		if res.Covered < res.Demanding {
			t.Logf("seed %d: greedy covered %d/%d (fanout exhausted)", seed, res.Covered, res.Demanding)
		} else if a.WeightFactor < 1-1e-9 {
			t.Fatalf("seed %d: claims full coverage but weight factor %v", seed, a.WeightFactor)
		}
	}
}

func TestGreedyRespectsColors(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 2, 5), 3)
	res := Greedy(in)
	a := netmodel.AuditDesign(in, res.Design)
	if a.ColorExcess != 0 {
		t.Fatalf("greedy must respect colors, excess %d", a.ColorExcess)
	}
}

func TestGreedyRespectsEdgeCaps(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 4, 6), 2)
	in.EdgeCap = make([][]float64, in.NumReflectors)
	for i := range in.EdgeCap {
		in.EdgeCap[i] = make([]float64, in.NumSinks)
		for j := range in.EdgeCap[i] {
			in.EdgeCap[i][j] = 1
		}
	}
	in.EdgeCap[0][0] = 0
	res := Greedy(in)
	if res.Design.Serve[0][0] {
		t.Fatal("greedy used a zero-capacity arc")
	}
}

func TestRandomBaselineFeasibleStructure(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 16), 4)
	res := Random(in, 9)
	a := netmodel.AuditDesign(in, res.Design)
	if !a.StructureOK {
		t.Fatal("structure violated")
	}
	if a.FanoutFactor > 1+1e-9 {
		t.Fatalf("random baseline violated fanout: %v", a.FanoutFactor)
	}
}

func TestGreedyCheaperThanRandom(t *testing.T) {
	// Averaged over seeds, greedy should beat random on cost whenever
	// both fully cover.
	var gTotal, rTotal float64
	n := 0
	for seed := uint64(1); seed <= 8; seed++ {
		in := gen.Uniform(gen.DefaultUniform(2, 10, 12), seed)
		g := Greedy(in)
		r := Random(in, seed*17)
		if g.Covered < g.Demanding || r.Covered < r.Demanding {
			continue
		}
		gTotal += g.Design.Cost(in)
		rTotal += r.Design.Cost(in)
		n++
	}
	if n == 0 {
		t.Skip("no commonly-covered seeds")
	}
	if gTotal >= rTotal {
		t.Fatalf("greedy total %v not cheaper than random %v over %d seeds", gTotal, rTotal, n)
	}
}

func TestImproveRemovesRedundancy(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 6, 8), 6)
	// Grossly over-provisioned design: everyone serves everyone.
	d := netmodel.NewDesign(in)
	for i := 0; i < in.NumReflectors; i++ {
		for j := 0; j < in.NumSinks; j++ {
			d.Serve[i][j] = true
		}
	}
	d.Normalize(in)
	costBefore := d.Cost(in)
	removed := Improve(in, d, 1.0)
	if removed == 0 {
		t.Fatal("expected removals from an over-provisioned design")
	}
	a := netmodel.AuditDesign(in, d)
	if a.WeightFactor < 1-1e-9 {
		t.Fatalf("Improve broke coverage: factor %v", a.WeightFactor)
	}
	if d.Cost(in) >= costBefore {
		t.Fatal("Improve must reduce cost")
	}
	if !a.StructureOK {
		t.Fatal("Improve broke structure")
	}
}

func TestImproveKeepFactor(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 6, 8), 6)
	d := netmodel.NewDesign(in)
	for i := 0; i < in.NumReflectors; i++ {
		for j := 0; j < in.NumSinks; j++ {
			d.Serve[i][j] = true
		}
	}
	d.Normalize(in)
	Improve(in, d, 0.25)
	a := netmodel.AuditDesign(in, d)
	if a.WeightFactor < 0.25-1e-9 {
		t.Fatalf("keepFactor 0.25 violated: %v", a.WeightFactor)
	}
}
