// Package greedy implements baseline heuristics for overlay design:
//
//   - Greedy: the natural capacitated multi-cover greedy (§1.5 notes the
//     greedy matches the set-cover lower bound in the uncapacitated case;
//     §7 proposes "heuristics based on the algorithm" — this is the
//     comparison point T8 uses).
//   - Random: a random feasible-first baseline.
//   - Improve: a local cleanup pass that removes redundant assignments and
//     unused reflectors from any design without breaking its guarantees.
//
// Unlike the LP-rounding algorithm, Greedy never violates fanout or color
// constraints — it trades cost for hard feasibility, which is exactly the
// trade-off the T8 experiment quantifies.
package greedy

import (
	"math"

	"repro/internal/netmodel"
	"repro/internal/stats"
)

// Result is a heuristic design plus diagnostics.
type Result struct {
	Design *netmodel.Design
	// Covered counts sinks whose weight demand is fully met; a greedy
	// run can fall short when fanout runs out.
	Covered, Demanding int
}

// Greedy builds a design by repeatedly choosing the assignment arc with the
// best marginal (capped) weight gain per marginal dollar, respecting fanout
// and color constraints as hard limits.
func Greedy(in *netmodel.Instance) *Result {
	S, R, D := in.Dims()
	_ = S
	d := netmodel.NewDesign(in)
	deficit := make([]float64, D)
	demanding := 0
	for j := 0; j < D; j++ {
		if in.Threshold[j] > 0 {
			deficit[j] = in.Demand(j)
			demanding++
		}
	}
	fanoutLeft := append([]float64(nil), in.Fanout...)
	colorUsed := make(map[[2]int]bool) // (sink, color) already serving

	for {
		bestGain := 0.0
		bestI, bestJ := -1, -1
		bestRatio := math.Inf(-1)
		for j := 0; j < D; j++ {
			if deficit[j] <= 1e-12 {
				continue
			}
			k := in.Commodity[j]
			bw := in.UnitLoad(j)
			for i := 0; i < R; i++ {
				if d.Serve[i][j] || fanoutLeft[i] < bw {
					continue
				}
				if !in.ArcAllowed(i, j) {
					continue
				}
				if in.Color != nil && colorUsed[[2]int{j, in.Color[i]}] {
					continue
				}
				w := in.CappedWeight(i, j)
				gain := math.Min(w, deficit[j])
				if gain <= 1e-12 {
					continue
				}
				cost := in.RefSinkCost[i][j]
				if !d.Ingest[k][i] {
					cost += in.SrcRefCost[k][i]
				}
				if !d.Build[i] {
					cost += in.ReflectorCost[i]
				}
				ratio := gain / math.Max(cost, 1e-12)
				if ratio > bestRatio {
					bestRatio, bestGain, bestI, bestJ = ratio, gain, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		k := in.Commodity[bestJ]
		d.Serve[bestI][bestJ] = true
		d.Ingest[k][bestI] = true
		d.Build[bestI] = true
		fanoutLeft[bestI] -= in.UnitLoad(bestJ)
		deficit[bestJ] -= bestGain
		if in.Color != nil {
			colorUsed[[2]int{bestJ, in.Color[bestI]}] = true
		}
	}
	covered := 0
	for j := 0; j < D; j++ {
		if in.Threshold[j] > 0 && deficit[j] <= 1e-9 {
			covered++
		}
	}
	return &Result{Design: d, Covered: covered, Demanding: demanding}
}

// Random serves each sink from uniformly random admissible reflectors until
// its demand is met (or no reflector remains), respecting fanout and colors.
// It is the "how bad can it get" baseline for T8.
func Random(in *netmodel.Instance, seed uint64) *Result {
	_, R, D := in.Dims()
	rng := stats.NewRNG(seed)
	d := netmodel.NewDesign(in)
	fanoutLeft := append([]float64(nil), in.Fanout...)
	demanding, covered := 0, 0
	for _, j := range rng.Perm(D) {
		if in.Threshold[j] <= 0 {
			continue
		}
		demanding++
		k := in.Commodity[j]
		bw := in.UnitLoad(j)
		deficit := in.Demand(j)
		colorUsed := make(map[int]bool)
		for _, i := range rng.Perm(R) {
			if deficit <= 1e-12 {
				break
			}
			if fanoutLeft[i] < bw || !in.ArcAllowed(i, j) {
				continue
			}
			if in.Color != nil && colorUsed[in.Color[i]] {
				continue
			}
			w := in.CappedWeight(i, j)
			if w <= 1e-12 {
				continue
			}
			d.Serve[i][j] = true
			d.Ingest[k][i] = true
			d.Build[i] = true
			fanoutLeft[i] -= bw
			deficit -= w
			if in.Color != nil {
				colorUsed[in.Color[i]] = true
			}
		}
		if deficit <= 1e-9 {
			covered++
		}
	}
	return &Result{Design: d, Covered: covered, Demanding: demanding}
}

// Improve removes redundant service arcs (most expensive first) while every
// sink's weight stays at or above keepFactor × its demand, then tears down
// ingests and reflectors that no longer serve anyone. It never lowers a
// sink below keepFactor. Returns the number of arcs removed.
func Improve(in *netmodel.Instance, d *netmodel.Design, keepFactor float64) int {
	_, R, D := in.Dims()
	type arc struct {
		i, j int
		cost float64
	}
	var arcs []arc
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if d.Serve[i][j] {
				arcs = append(arcs, arc{i, j, in.RefSinkCost[i][j]})
			}
		}
	}
	// Most expensive first.
	for a := 0; a < len(arcs); a++ {
		for b := a + 1; b < len(arcs); b++ {
			if arcs[b].cost > arcs[a].cost {
				arcs[a], arcs[b] = arcs[b], arcs[a]
			}
		}
	}
	removed := 0
	for _, a := range arcs {
		if in.Threshold[a.j] <= 0 {
			d.Serve[a.i][a.j] = false
			removed++
			continue
		}
		cur := d.SinkWeight(in, a.j)
		need := keepFactor * in.Demand(a.j)
		if cur-in.CappedWeight(a.i, a.j) >= need-1e-12 {
			d.Serve[a.i][a.j] = false
			removed++
		}
	}
	// Tear down unused ingests/reflectors.
	for k := range d.Ingest {
		for i := 0; i < R; i++ {
			if !d.Ingest[k][i] {
				continue
			}
			used := false
			for j := 0; j < D; j++ {
				if d.Serve[i][j] && in.Commodity[j] == k {
					used = true
					break
				}
			}
			if !used {
				d.Ingest[k][i] = false
			}
		}
	}
	for i := 0; i < R; i++ {
		if !d.Build[i] {
			continue
		}
		used := false
		for k := range d.Ingest {
			if d.Ingest[k][i] {
				used = true
				break
			}
		}
		if !used {
			d.Build[i] = false
		}
	}
	return removed
}
