package core_test

// Session-level locks for the incremental LP rebuild: an incremental
// session must be indistinguishable — design by design, pivot by pivot —
// from one that rebuilds the LP every epoch, and a sharded incremental
// session must route an epoch's dirty set to exactly the shards it touches.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/live"
	"repro/internal/netmodel"
)

// TestSessionIncrementalMatchesRebuild steps two warm+sticky sessions —
// one patching, one rebuilding — through the same flash-crowd delta stream
// and requires identical results every epoch: same deployed design, same
// audited cost, same LP optimum, same simplex pivot count, same churn.
func TestSessionIncrementalMatchesRebuild(t *testing.T) {
	sc := live.FlashCrowd(7, 14)
	byEpoch := make(map[int][]live.Event)
	for _, ev := range sc.Events {
		byEpoch[ev.Epoch] = append(byEpoch[ev.Epoch], ev)
	}

	mkOpts := func(incremental bool) core.Options {
		opts := core.DefaultOptions(sc.Seed)
		opts.IncrementalLP = incremental
		// Pin the pre-persistence install behavior: the incremental arm
		// keeps one lp.Problem alive so its warm starts can resume the
		// persisted factorization, while the rebuild arm constructs a new
		// Problem every epoch and cannot — letting persistence differ
		// between the arms would diverge the solver trajectories by ulps
		// and mask what this test locks, the Patcher's model equivalence.
		// Persistence itself is locked by TestPersistedFactorization* in
		// internal/lp and the live-level equivalence tests.
		opts.RefactorOnInstall = true
		return opts
	}
	inP := sc.Base.Clone()
	inR := sc.Base.Clone()
	sessP := core.NewSession(mkOpts(true), 0.4, true)
	sessR := core.NewSession(mkOpts(false), 0.4, true)

	for e := 0; e < sc.Epochs; e++ {
		for _, ev := range byEpoch[e] {
			ds, err := ev.Delta.Apply(inP)
			if err != nil {
				t.Fatal(err)
			}
			sessP.Observe(ds)
			if _, err := ev.Delta.Apply(inR); err != nil {
				t.Fatal(err)
			}
		}
		resP, err := sessP.Step(inP)
		if err != nil {
			t.Fatalf("epoch %d incremental: %v", e, err)
		}
		resR, err := sessR.Step(inR)
		if err != nil {
			t.Fatalf("epoch %d rebuild: %v", e, err)
		}
		if resP.Audit.Cost != resR.Audit.Cost || resP.LPCost != resR.LPCost {
			t.Fatalf("epoch %d: cost %.17g/%.17g != %.17g/%.17g",
				e, resP.Audit.Cost, resP.LPCost, resR.Audit.Cost, resR.LPCost)
		}
		if resP.Frac.Iterations != resR.Frac.Iterations {
			t.Fatalf("epoch %d: pivots %d != %d", e, resP.Frac.Iterations, resR.Frac.Iterations)
		}
		if resP.ArcChurn != resR.ArcChurn || resP.ReflectorChurn != resR.ReflectorChurn {
			t.Fatalf("epoch %d: churn (%d,%d) != (%d,%d)",
				e, resP.ArcChurn, resP.ReflectorChurn, resR.ArcChurn, resR.ReflectorChurn)
		}
		if !reflect.DeepEqual(resP.Design, resR.Design) {
			t.Fatalf("epoch %d: deployed designs differ", e)
		}
		if resP.Patch == nil {
			t.Fatalf("epoch %d: incremental session reported no patch stats", e)
		}
		if e == 0 && !resP.Patch.Rebuilt {
			t.Fatal("first epoch must be a full build")
		}
		if e > 0 && resP.Patch.Rebuilt {
			t.Fatalf("epoch %d rebuilt instead of patching", e)
		}
		if resR.Patch != nil {
			t.Fatalf("epoch %d: rebuild session unexpectedly reported patch stats", e)
		}
	}
}

// TestShardedIncrementalPatchesOnlyDirtyShards drives a 3-shard incremental
// session and checks the routing claim: after warm-up, a threshold change
// on a single sink patches only that sink's shard — the other shards' LPs
// are untouched (no patches, no rebuilds).
func TestShardedIncrementalPatchesOnlyDirtyShards(t *testing.T) {
	cc := gen.DefaultClustered(2, 3, 3, 8)
	cc.Fanout = int(1.5*float64(cc.Fanout) + 0.5) // headroom: no coordination rounds
	in := gen.Clustered(cc, 7)

	opts := core.DefaultOptions(7)
	opts.Shards = 3
	opts.IncrementalLP = true
	sess := core.NewSession(opts, 0, true)

	res, err := sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	si := res.ShardInfo
	if si == nil || si.Shards != 3 {
		t.Fatalf("expected a 3-shard solve, got %+v", si)
	}
	for s, reb := range si.PerShardRebuilds {
		if reb == 0 {
			t.Fatalf("shard %d: first epoch must build its LP", s)
		}
	}
	state := res.ShardState
	if state == nil || len(state.Sinks) != 3 {
		t.Fatal("no shard state carried")
	}

	// A quiet epoch: no deltas → no shard rebuilds, no patches anywhere —
	// and with the cached sub-instances in place, no extraction either:
	// every shard rebinds its cached sub-instance (3 skips of 3 shards),
	// adopts its persisted factorization, and never refactorizes.
	res, err = sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	for s := range res.ShardInfo.PerShardPatches {
		if res.ShardInfo.PerShardPatches[s] != 0 || res.ShardInfo.PerShardRebuilds[s] != 0 {
			t.Fatalf("quiet epoch: shard %d reported patches=%d rebuilds=%d",
				s, res.ShardInfo.PerShardPatches[s], res.ShardInfo.PerShardRebuilds[s])
		}
	}
	if res.ShardInfo.ExtractionsSkipped != 3 {
		t.Fatalf("quiet epoch extracted sub-instances: %d of 3 skips", res.ShardInfo.ExtractionsSkipped)
	}
	for s, st := range res.ShardInfo.PerShardStats {
		if st.Refactorizations != 0 {
			t.Fatalf("quiet epoch: shard %d refactorized %d times", s, st.Refactorizations)
		}
		if st.FTUpdates == 0 {
			t.Fatalf("quiet epoch: shard %d did not adopt its persisted factorization", s)
		}
	}

	// Touch one sink of shard 1 only.
	target := state.Sinks[1][0]
	d := netmodel.Delta{Note: "single-sink retarget",
		SetThreshold: []netmodel.SinkValue{{Sink: target, Value: 0.9}}}
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	sess.Observe(ds)
	res, err = sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	si = res.ShardInfo
	t.Logf("patches per shard after single-sink delta: %v (rounds=%d)", si.PerShardPatches, si.Rounds)
	if si.PerShardPatches[1] == 0 {
		t.Fatal("dirty shard reported zero patches")
	}
	for s := range si.PerShardPatches {
		if s == 1 {
			continue
		}
		if si.PerShardPatches[s] != 0 || si.PerShardRebuilds[s] != 0 {
			t.Fatalf("untouched shard %d was patched (%d cells, %d rebuilds)",
				s, si.PerShardPatches[s], si.PerShardRebuilds[s])
		}
		// A shard with an empty routed dirty set must not pay any basis
		// work either: its warm start adopts the persisted factorization.
		if si.PerShardStats[s].Refactorizations != 0 {
			t.Fatalf("untouched shard %d refactorized %d times", s, si.PerShardStats[s].Refactorizations)
		}
	}
	// The dirty-sink epoch still extracts nothing: every shard — dirty one
	// included — patches its cached sub-instance in place.
	if si.ExtractionsSkipped != 3 {
		t.Fatalf("delta epoch extracted sub-instances: %d of 3 skips", si.ExtractionsSkipped)
	}
}
