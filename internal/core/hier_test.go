package core

import (
	"os"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/gen"
	"repro/internal/netmodel"
)

// TestHierarchicalStageStructure pins the hierarchical pipeline's stage
// names — the coordination stage reports as shard-exchange, and the flat
// list (locked by TestShardedStageStructure) stays untouched.
func TestHierarchicalStageStructure(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 6), 17)
	opts := DefaultOptions(4)
	opts.Shards = 3
	opts.ShardLevels = 2
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"shard-partition", "shard-solve", "shard-exchange", "audit"}
	if len(res.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d", len(res.Stages), len(want))
	}
	for i, name := range want {
		if res.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, res.Stages[i].Name, name)
		}
	}
	si := res.ShardInfo
	if si == nil || si.Shards != 3 {
		t.Fatalf("ShardInfo = %+v, want 3 shards", si)
	}
	if si.Levels != 2 {
		t.Fatalf("ShardInfo.Levels = %d, want 2", si.Levels)
	}
	if res.ShardState == nil || len(res.ShardState.Bases) != 3 {
		t.Fatal("hierarchical solve must return per-shard warm state")
	}
}

// TestHierarchicalLevelsInertWithoutShards locks ShardLevels down as a pure
// modifier: without Shards ≥ 2 it must be ignored entirely — the monolithic
// pipeline runs and no shard metadata appears.
func TestHierarchicalLevelsInertWithoutShards(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 6), 17)
	base, err := Solve(in, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(4)
	opts.ShardLevels = 2
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardInfo != nil || res.ShardState != nil {
		t.Fatal("ShardLevels without Shards must not report shard metadata")
	}
	if res.Audit.Cost != base.Audit.Cost || res.LPCost != base.LPCost {
		t.Fatalf("ShardLevels without Shards changed the solve: cost %v vs %v",
			res.Audit.Cost, base.Audit.Cost)
	}
}

// TestHierarchicalChurnDirtiesOneLeaf is the hierarchy's churn-stability
// contract: leaves ARE the flat cost-anchor partition, so a single-sink
// delta routed through an incremental session must patch exactly the one
// leaf shard owning that sink — the super-shard layer adds no churn
// amplification.
func TestHierarchicalChurnDirtiesOneLeaf(t *testing.T) {
	cc := gen.DefaultClustered(2, 3, 3, 8)
	cc.Fanout = int(1.5*float64(cc.Fanout) + 0.5) // headroom: no exchange rounds
	in := gen.Clustered(cc, 7)

	opts := DefaultOptions(7)
	opts.Shards = 3
	opts.ShardLevels = 2
	opts.IncrementalLP = true
	sess := NewSession(opts, 0, true)

	res, err := sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	si := res.ShardInfo
	if si == nil || si.Shards != 3 || si.Levels != 2 {
		t.Fatalf("expected a 3-shard 2-level solve, got %+v", si)
	}
	state := res.ShardState
	if state == nil || len(state.Sinks) != 3 {
		t.Fatal("no shard state carried")
	}

	// Touch one sink of leaf shard 1 only.
	target := state.Sinks[1][0]
	d := netmodel.Delta{Note: "single-sink retarget",
		SetThreshold: []netmodel.SinkValue{{Sink: target, Value: 0.9}}}
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	sess.Observe(ds)
	res, err = sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	si = res.ShardInfo
	t.Logf("patches per leaf after single-sink delta: %v (exchange rounds=%d)",
		si.PerShardPatches, si.ExchangeRounds)
	if si.PerShardPatches[1] == 0 {
		t.Fatal("dirty leaf reported zero patches")
	}
	for s := range si.PerShardPatches {
		if s == 1 {
			continue
		}
		if si.PerShardPatches[s] != 0 || si.PerShardRebuilds[s] != 0 {
			t.Fatalf("untouched leaf %d was patched (%d cells, %d rebuilds)",
				s, si.PerShardPatches[s], si.PerShardRebuilds[s])
		}
	}
	// All three leaves reuse their cached sub-instance: the clean two have
	// nothing routed to them, and the dirty one's delta is value-patched in
	// place rather than re-extracted.
	if si.ExtractionsSkipped < 2 {
		t.Fatalf("clean leaves should skip extraction: got %d skips", si.ExtractionsSkipped)
	}
}

// TestHierarchicalAggregationSandwich composes all three scaling layers:
// viewer aggregation folds the sink axis, the fold is partitioned into
// leaves, and the hierarchical exchange coordinates capacity — with the full
// stage sandwich visible in Result.Stages and the disaggregated design
// passing the audit on the true instance.
func TestHierarchicalAggregationSandwich(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 3, 8), 5)
	opts := DefaultOptions(11)
	opts.Shards = 3
	opts.ShardLevels = 2
	opts.Aggregate = &agg.Config{}
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aggregate", "shard-partition", "shard-solve", "shard-exchange", "audit", "disaggregate"}
	if len(res.Stages) != len(want) {
		t.Fatalf("got %d stages %v, want %v", len(res.Stages), res.Stages, want)
	}
	for i, name := range want {
		if res.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, res.Stages[i].Name, name)
		}
	}
	if res.ShardInfo == nil || res.ShardInfo.Levels != 2 {
		t.Fatalf("ShardInfo = %+v, want Levels 2", res.ShardInfo)
	}
	if !res.Audit.StructureOK {
		t.Fatal("composed design violates structure constraints on the true instance")
	}
	if !MeetsGuarantee(res.Audit, res.PathRounding) {
		t.Fatalf("composed design misses the paper guarantee: %v", res.Audit)
	}
}

// TestHierAggAcceptance100k is the composed-scale acceptance: a 10^5-viewer,
// 200-reflector epoch through aggregation + hierarchical sharding must land
// under 30 s of wall with the full stage sandwich visible. Env-gated with
// the other heavy acceptance runs:
//
//	OVERLAY_EXCHANGE_ACCEPTANCE=1 go test ./internal/core/ -run TestHierAggAcceptance100k -timeout 10m
func TestHierAggAcceptance100k(t *testing.T) {
	if os.Getenv("OVERLAY_EXCHANGE_ACCEPTANCE") == "" {
		t.Skip("set OVERLAY_EXCHANGE_ACCEPTANCE=1 to run the 10^5-viewer composed acceptance")
	}
	cfg := gen.DefaultClustered(2, 10, 5, 10_000) // 10 regions × 10^4 viewers
	cfg.ReflectorsPerColo = 4                     // 10·5·4 = 200 reflectors
	in := gen.Clustered(cfg, 7)
	in.Color = nil
	in.NumColors = 0
	if in.NumViewers() != 100_000 || in.NumReflectors != 200 {
		t.Fatalf("workload shape drifted: %d viewers, %d reflectors", in.NumViewers(), in.NumReflectors)
	}

	opts := DefaultOptions(7)
	// Colo-granular grouping: per-reflector anchors would inflate the fold
	// to ~350 groups at R=200 and put minutes back into the leaf LPs — the
	// whole reason agg.ColoGroups exists (and overlaysolve's -agg-colo).
	opts.Aggregate = &agg.Config{GroupOf: agg.ColoGroups(in, 4)}
	opts.Shards = 8
	opts.ShardLevels = 2
	start := time.Now()
	res, err := Solve(in, opts)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aggregate", "shard-partition", "shard-solve", "shard-exchange", "audit", "disaggregate"}
	if len(res.Stages) != len(want) {
		t.Fatalf("got stages %v, want %v", res.Stages, want)
	}
	for i, name := range want {
		if res.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, res.Stages[i].Name, name)
		}
	}
	t.Logf("10^5-viewer 200-reflector composed epoch: %v wall, cost %.1f, auditOK=%v, exchange rounds=%d",
		wall, res.Audit.Cost, res.AuditOK(), res.ShardInfo.ExchangeRounds)
	if !res.AuditOK() {
		t.Fatal("composed design failed the audit on the true instance")
	}
	if wall > 30*time.Second {
		t.Fatalf("composed epoch took %v, budget 30s", wall)
	}
}
