package core_test

// Locks for session checkpointing: a session snapshotted mid-timeline
// (state → JSON, instance → JSON) and restored in a "new process" must
// continue the epoch sequence bit-identically to the uninterrupted session —
// same designs, costs, pivots, churn — and its first post-restore warm start
// must adopt the persisted factorization rather than refactorize cold.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/netmodel"
)

// snapshotSession simulates the daemon's persistence path entirely in
// memory: session state and instance both cross a JSON boundary.
func snapshotSession(t *testing.T, sess *core.Session, in *netmodel.Instance) (*core.SessionState, *netmodel.Instance) {
	t.Helper()
	buf, err := json.Marshal(sess.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st core.SessionState
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatal(err)
	}
	var ib bytes.Buffer
	if err := in.WriteJSON(&ib); err != nil {
		t.Fatal(err)
	}
	rin, err := netmodel.ReadJSON(&ib)
	if err != nil {
		t.Fatal(err)
	}
	return &st, rin
}

// runRoundTrip drives the uninterrupted and the snapshot/restore arm through
// the same scenario and compares every epoch exactly. Returns the restored
// arm's post-restore first-epoch stats for adoption assertions.
func runRoundTrip(t *testing.T, opts core.Options, restartAt int) (firstAfter core.ReoptimizeResult) {
	t.Helper()
	sc := live.FlashCrowd(11, 14)
	byEpoch := make(map[int][]live.Event)
	for _, ev := range sc.Events {
		byEpoch[ev.Epoch] = append(byEpoch[ev.Epoch], ev)
	}

	inA := sc.Base.Clone()
	inB := sc.Base.Clone()
	sessA := core.NewSession(opts, 0.4, true)
	sessB := core.NewSession(opts, 0.4, true)

	for e := 0; e < sc.Epochs; e++ {
		if e == restartAt {
			st, rin := snapshotSession(t, sessB, inB)
			inB = rin
			var err error
			sessB, err = core.RestoreSession(inB, opts, 0.4, true, st)
			if err != nil {
				t.Fatalf("epoch %d: restore: %v", e, err)
			}
			if sessB.Steps() != e {
				t.Fatalf("restored session at %d steps, want %d", sessB.Steps(), e)
			}
		}
		for _, ev := range byEpoch[e] {
			dsA, err := ev.Delta.Apply(inA)
			if err != nil {
				t.Fatal(err)
			}
			sessA.Observe(dsA)
			dsB, err := ev.Delta.Apply(inB)
			if err != nil {
				t.Fatal(err)
			}
			sessB.Observe(dsB)
		}
		resA, err := sessA.Step(inA)
		if err != nil {
			t.Fatalf("epoch %d uninterrupted: %v", e, err)
		}
		resB, err := sessB.Step(inB)
		if err != nil {
			t.Fatalf("epoch %d restored: %v", e, err)
		}
		if resA.Audit.Cost != resB.Audit.Cost || resA.LPCost != resB.LPCost {
			t.Fatalf("epoch %d: cost %.17g/%.17g uninterrupted vs %.17g/%.17g restored",
				e, resA.Audit.Cost, resA.LPCost, resB.Audit.Cost, resB.LPCost)
		}
		itA, itB := 0, 0
		if resA.Frac != nil {
			itA, itB = resA.Frac.Iterations, resB.Frac.Iterations
		}
		if itA != itB {
			t.Fatalf("epoch %d: pivots %d uninterrupted vs %d restored", e, itA, itB)
		}
		if !reflect.DeepEqual(resA.Design, resB.Design) {
			t.Fatalf("epoch %d: designs diverged after restore", e)
		}
		if resA.ArcChurn != resB.ArcChurn || resA.ViewerChurn != resB.ViewerChurn {
			t.Fatalf("epoch %d: churn (%d,%g) vs (%d,%g)",
				e, resA.ArcChurn, resA.ViewerChurn, resB.ArcChurn, resB.ViewerChurn)
		}
		if e == restartAt {
			firstAfter = *resB
		}
	}
	return firstAfter
}

// TestSessionSnapshotRoundTrip: incremental warm sticky session, the daemon
// default. The first post-restore epoch must resume the persisted basis —
// FT adoption fires, and the install does not refactorize.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	opts := core.DefaultOptions(11)
	opts.IncrementalLP = true
	first := runRoundTrip(t, opts, 7)
	if first.LPStats.FTUpdates == 0 {
		t.Fatal("first post-restore epoch did not adopt the persisted factorization")
	}
	if first.Patch == nil || first.Patch.Rebuilt {
		t.Fatal("first post-restore epoch rebuilt its LP instead of patching the restored one")
	}
}

// TestSessionSnapshotRoundTripNonIncremental: without the Patcher the
// restored basis rides a donor Problem and adoption goes through the
// CSC-fingerprint path; the epoch stream must still be bit-identical.
func TestSessionSnapshotRoundTripNonIncremental(t *testing.T) {
	opts := core.DefaultOptions(11)
	first := runRoundTrip(t, opts, 7)
	if first.LPStats.FTUpdates == 0 {
		t.Fatal("first post-restore epoch did not adopt the persisted factorization (fingerprint path)")
	}
}

// TestSessionSnapshotRoundTripAggregated: the aggregation plane restores
// from its membership partition and the timeline still replays exactly.
func TestSessionSnapshotRoundTripAggregated(t *testing.T) {
	opts := core.DefaultOptions(11)
	opts.IncrementalLP = true
	opts.Aggregate = &agg.Config{}
	runRoundTrip(t, opts, 7)
}

// TestRestoreSessionRejects: checkpoints inconsistent with the restored
// instance or the configuration must fail loudly.
func TestRestoreSessionRejects(t *testing.T) {
	sc := live.FlashCrowd(3, 4)
	in := sc.Base.Clone()
	opts := core.DefaultOptions(3)
	opts.IncrementalLP = true
	sess := core.NewSession(opts, 0, true)
	if _, err := sess.Step(in); err != nil {
		t.Fatal(err)
	}
	st := sess.ExportState()

	if _, err := core.RestoreSession(in, opts, 0, true, nil); err == nil {
		t.Fatal("restore accepted a nil checkpoint")
	}
	bad := *st
	bad.Steps = -1
	if _, err := core.RestoreSession(in, opts, 0, true, &bad); err == nil {
		t.Fatal("restore accepted a negative step counter")
	}
	aggOpts := opts
	aggOpts.Aggregate = &agg.Config{}
	if _, err := core.RestoreSession(in, aggOpts, 0, true, st); err == nil {
		t.Fatal("restore accepted a non-aggregated checkpoint into an aggregated session")
	}
	small := live.FlashCrowd(5, 4).Base.Clone()
	if small.NumSinks != in.NumSinks {
		if _, err := core.RestoreSession(small, opts, 0, true, st); err == nil {
			t.Fatal("restore accepted a design shaped for a different instance")
		}
	}

	// A cold (non-warm) restore drops the basis but keeps the deployment.
	cold, err := core.RestoreSession(in, opts, 0, false, st)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Deployed() == nil {
		t.Fatal("cold restore lost the deployed design")
	}
}
