package core

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// TestSolveFeedsObserver locks the monolithic pipeline's observability
// wiring: one Solve feeds the solver counters exactly once, every stage run
// lands in the per-stage histogram/counter pair, and the trace contains one
// span per stage run with the simplex events attached under lp-solve.
func TestSolveFeedsObserver(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	reg := obs.NewRegistry()
	obs.Canonical(reg)
	var buf bytes.Buffer
	opts := DefaultOptions(1)
	opts.Obs = &obs.Observer{Reg: reg, Tr: obs.NewTracer(&buf)}
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(obs.MSolvesTotal).Value(); got != 1 {
		t.Fatalf("solves_total = %v, want 1", got)
	}
	if got := reg.Counter(obs.MLPPivots).Value(); got != float64(res.Timings.LPPivots) {
		t.Fatalf("lp pivots counter %v != result %d", got, res.Timings.LPPivots)
	}
	if got := reg.Counter(obs.MLPRefactorizations).Value(); got != float64(res.LPStats.Refactorizations) {
		t.Fatalf("refactorizations counter %v != result %d", got, res.LPStats.Refactorizations)
	}
	if got := reg.Counter(obs.MLPDevexResets).Value(); got != float64(res.LPStats.DevexResets) {
		t.Fatalf("devex resets counter %v != result %d", got, res.LPStats.DevexResets)
	}
	for _, st := range res.Stages {
		if got := reg.Counter(obs.MStageRuns, obs.L("stage", st.Name)).Value(); int(got) != st.Runs {
			t.Fatalf("stage %s: runs counter %v != result %d", st.Name, got, st.Runs)
		}
		if got := reg.Histogram(obs.MStageWall, nil, obs.L("stage", st.Name)).Count(); int(got) != st.Runs {
			t.Fatalf("stage %s: wall histogram count %v != result %d", st.Name, got, st.Runs)
		}
	}

	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]int{}
	events := 0
	for _, r := range recs {
		spans[r.Name]++
		if r.Name == "lp-solve" {
			events += len(r.Events)
		}
	}
	for _, st := range res.Stages {
		if st.Runs > 0 && spans[st.Name] != st.Runs {
			t.Fatalf("stage %s: %d spans, want %d", st.Name, spans[st.Name], st.Runs)
		}
	}
	if want := res.LPStats.Refactorizations + res.LPStats.FTUpdates + res.LPStats.DevexResets; events != want {
		t.Fatalf("lp-solve spans carry %d simplex events, want %d", events, want)
	}
}

// TestShardedSolveObserverNoDoubleCount locks the sharded path's feeding
// rule: the per-shard sub-solves trace their stages but must NOT feed the
// metrics registry (they run under TraceOnly observers), so a sharded Solve
// still counts as one solve, one shard-solve stage run, and zero top-level
// lp-solve stage runs — while the trace shows every shard's pipeline nested
// under its shard span.
func TestShardedSolveObserverNoDoubleCount(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 6, 2, 10), 7)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	opts := DefaultOptions(1)
	opts.Shards = 3
	opts.Obs = &obs.Observer{Reg: reg, Tr: obs.NewTracer(&buf)}
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardInfo == nil || res.ShardInfo.Fallback {
		t.Fatalf("expected a non-fallback sharded solve (info=%+v)", res.ShardInfo)
	}

	if got := reg.Counter(obs.MSolvesTotal).Value(); got != 1 {
		t.Fatalf("solves_total = %v, want 1 (per-shard solves must not count)", got)
	}
	if got := reg.Counter(obs.MStageRuns, obs.L("stage", "lp-solve")).Value(); got != 0 {
		t.Fatalf("per-shard lp-solve stages fed the registry %v times, want 0", got)
	}
	if got := reg.Counter(obs.MStageRuns, obs.L("stage", "shard-solve")).Value(); got != 1 {
		t.Fatalf("shard-solve stage runs = %v, want 1", got)
	}
	if got := reg.Counter(obs.MLPPivots).Value(); got != float64(res.Timings.LPPivots) {
		t.Fatalf("lp pivots counter %v != aggregated result %d", got, res.Timings.LPPivots)
	}

	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]obs.SpanRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	shardSpans, lpUnderShard := 0, 0
	for _, r := range recs {
		switch r.Name {
		case "shard":
			shardSpans++
		case "lp-solve":
			// Walk up: every lp-solve span must sit under a shard span.
			for p := r.Parent; p != 0; {
				pr, ok := byID[p]
				if !ok {
					break
				}
				if pr.Name == "shard" {
					lpUnderShard++
					break
				}
				p = pr.Parent
			}
		}
	}
	if shardSpans != 3 {
		t.Fatalf("%d shard spans, want 3", shardSpans)
	}
	if lpUnderShard < 3 {
		t.Fatalf("only %d lp-solve spans nested under shard spans, want >= 3", lpUnderShard)
	}
}
