package core

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// aggStageNames asserts the aggregate/disaggregate stages bracket the result.
func aggStageNames(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Stages) < 2 {
		t.Fatalf("want >= 2 stages, got %v", res.Stages)
	}
	if res.Stages[0].Name != "aggregate" {
		t.Fatalf("first stage %q, want aggregate", res.Stages[0].Name)
	}
	if last := res.Stages[len(res.Stages)-1].Name; last != "disaggregate" {
		t.Fatalf("last stage %q, want disaggregate", last)
	}
}

// TestSolveAggregatedAuditAndCost solves the same clustered instance flat and
// aggregated (auto cost-anchor grouping): the aggregated design must meet the
// paper's guarantee on the TRUE instance and cost at most 5% more than the
// flat solve — the acceptance bound the live-library harness extends to whole
// timelines.
func TestSolveAggregatedAuditAndCost(t *testing.T) {
	for _, tc := range []struct {
		name string
		cc   gen.ClusteredConfig
		seed uint64
	}{
		{"single-stream", gen.DefaultClustered(2, 3, 3, 8), 5},
		{"multi-stream", func() gen.ClusteredConfig {
			cc := gen.DefaultClustered(3, 3, 3, 6)
			cc.StreamsPerSink = 2
			cc.Fanout *= 2
			return cc
		}(), 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := gen.Clustered(tc.cc, tc.seed)
			opts := DefaultOptions(11)
			flat, err := Solve(in, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Aggregate = &agg.Config{}
			aggRes, err := Solve(in, opts)
			if err != nil {
				t.Fatal(err)
			}
			aggStageNames(t, aggRes)
			if !aggRes.Audit.StructureOK {
				t.Fatal("aggregated design violates structure constraints on the true instance")
			}
			if !aggRes.AuditOK() {
				t.Fatalf("aggregated design misses the paper guarantee: %+v", aggRes.Audit)
			}
			ratio := aggRes.Audit.Cost / flat.Audit.Cost
			t.Logf("cost: flat %.4f aggregated %.4f ratio %.4f (met %d vs %d)",
				flat.Audit.Cost, aggRes.Audit.Cost, ratio, flat.Audit.MetDemand, aggRes.Audit.MetDemand)
			if ratio > 1.05 {
				t.Fatalf("aggregated cost ratio %.4f exceeds 1.05", ratio)
			}
		})
	}
}

// TestSolveAggregatedSharded runs the aggregated pipeline with sharding
// enabled on the aggregate plane: still audited on the true instance.
func TestSolveAggregatedSharded(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 3, 8), 9)
	opts := DefaultOptions(3)
	opts.Aggregate = &agg.Config{}
	opts.Shards = 3
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	aggStageNames(t, res)
	if !res.AuditOK() {
		t.Fatalf("sharded aggregated solve misses the guarantee: %+v", res.Audit)
	}
	if res.ShardInfo == nil {
		t.Fatal("sharded aggregated solve reported no ShardInfo")
	}
}

// TestSessionAggregatedLPFreeEpoch is the acceptance lock on the aggregation
// tentpole: an epoch whose churn is weight-neutral inside its aggregate — a
// leave matched by a join on the same (aggregate, stream) — must solve with
// ZERO LP work: no build, no patched cell, no pivot. The joining viewer must
// still come out served (the disaggregation pass alone rewires it).
func TestSessionAggregatedLPFreeEpoch(t *testing.T) {
	cc := gen.DefaultClustered(2, 2, 2, 6)
	in := gen.Clustered(cc, 13)
	// One aggregate per stream: every viewer in group 0, so any leave+join
	// pair on the same stream is intra-aggregate.
	group := make([]int, in.NumViewers())

	// Pick two viewers on the same stream; start with one of them offline.
	var on, off int = -1, -1
	for j := 0; j < in.NumSinks && off < 0; j++ {
		for k := j + 1; k < in.NumSinks; k++ {
			if in.Commodity[j] == in.Commodity[k] {
				on, off = j, k
				break
			}
		}
	}
	if off < 0 {
		t.Fatal("no two sinks share a stream")
	}
	thr := in.Threshold[off]
	in.Threshold[off] = 0

	opts := DefaultOptions(17)
	opts.IncrementalLP = true
	opts.Aggregate = &agg.Config{GroupOf: group}
	reg := obs.NewRegistry()
	opts.Obs = &obs.Observer{Reg: reg}
	sess := NewSession(opts, 0, true)

	res0, err := sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res0.AuditOK() {
		t.Fatalf("epoch 0 misses the guarantee: %+v", res0.Audit)
	}
	if res0.Patch == nil || !res0.Patch.Rebuilt {
		t.Fatalf("epoch 0 must be a full LP build, got %+v", res0.Patch)
	}

	// Weight-neutral swap: the online viewer leaves, the offline one joins
	// at the same threshold. Aggregate weight, threshold, and costs are all
	// unchanged, so the epoch must not touch the LP.
	delta := netmodel.Delta{
		Note: "intra-aggregate swap",
		SetThreshold: []netmodel.SinkValue{
			{Sink: on, Value: 0},
			{Sink: off, Value: thr},
		},
	}
	ds, err := delta.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	sess.Observe(ds)
	res1, err := sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Patch == nil {
		t.Fatal("epoch 1 reported no patch stats")
	}
	if res1.Patch.Rebuilt {
		t.Fatal("weight-neutral epoch fell back to a full LP build")
	}
	if n := res1.Patch.Patches(); n != 0 {
		t.Fatalf("weight-neutral epoch patched %d LP cells, want 0", n)
	}
	if res1.Timings.LPPivots != 0 {
		t.Fatalf("weight-neutral epoch spent %d pivots, want 0", res1.Timings.LPPivots)
	}
	if got := reg.Counter(obs.MAggLPFreeEpochs).Value(); got != 1 {
		t.Fatalf("%s = %v, want 1", obs.MAggLPFreeEpochs, got)
	}
	if !res1.AuditOK() {
		t.Fatalf("epoch 1 misses the guarantee: %+v", res1.Audit)
	}
	// The joiner changed hands without the LP noticing: it must be served.
	served := false
	for i := 0; i < in.NumReflectors; i++ {
		if res1.Design.Serve[i][off] {
			served = true
			break
		}
	}
	if !served {
		t.Fatal("joining viewer left unserved after LP-free epoch")
	}
	if res1.ViewerChurn <= 0 {
		t.Fatal("swap epoch must report true viewer churn")
	}
}

// TestSessionAggregatedMatchesOneShot locks the persistent Session fold to
// the one-shot path on a churn-free first epoch: same instance, same seed,
// same deployed design.
func TestSessionAggregatedMatchesOneShot(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 2, 6), 23)
	opts := DefaultOptions(29)
	opts.Aggregate = &agg.Config{}

	one, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(opts, 0, false)
	step, err := sess.Step(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if one.Audit.Cost != step.Audit.Cost {
		t.Fatalf("session epoch 0 cost %.17g != one-shot %.17g", step.Audit.Cost, one.Audit.Cost)
	}
	if one.Audit.MetDemand != step.Audit.MetDemand {
		t.Fatalf("session epoch 0 met %d != one-shot %d", step.Audit.MetDemand, one.Audit.MetDemand)
	}
}
