package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netmodel"
)

func TestSolveSmallUniform(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 12), 3)
	res, err := Solve(in, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Audit
	t.Logf("audit: %v  lp=%.4f ratio=%.3f retries=%d", a, res.LPCost, res.ApproxRatio(), res.Retries)
	if !a.StructureOK {
		t.Fatal("structure constraints (1),(2) violated")
	}
	if a.WeightFactor < 0.25-1e-9 {
		t.Fatalf("weight factor %.4f below paper guarantee 1/4", a.WeightFactor)
	}
	if a.FanoutFactor > 4+1e-9 {
		t.Fatalf("fanout factor %.4f above paper guarantee 4", a.FanoutFactor)
	}
	if res.Audit.Cost < res.LPCost-1e-6 {
		t.Fatalf("integral cost %.4f below LP bound %.4f: impossible", res.Audit.Cost, res.LPCost)
	}
}

func TestSolveClusteredWithColors(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 2, 4), 5)
	res, err := Solve(in, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PathRounding {
		t.Fatal("colored instance must take the §6.5 path-rounding branch")
	}
	t.Logf("audit: %v  boxes=%d/%d", res.Audit, res.STResult.ServedBoxes, res.STResult.TotalBoxes)
	if res.Audit.ColorExcess > 7 {
		t.Fatalf("color excess %d above §6.5 additive bound 7", res.Audit.ColorExcess)
	}
}

func TestLPOnly(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 4, 6), 9)
	res, err := Solve(in, Options{Seed: 1, LPOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != nil {
		t.Fatal("LPOnly must not produce a design")
	}
	if res.LPCost <= 0 {
		t.Fatalf("LP cost %v, want positive", res.LPCost)
	}
}

func TestInfeasibleInstanceReported(t *testing.T) {
	// A sink demanding more reliability than all reflectors together can
	// deliver: every path loses 50%, threshold 1-1e-9 needs enormous
	// weight.
	in := netmodel.NewZeroInstance(1, 2, 1)
	for i := 0; i < 2; i++ {
		in.ReflectorCost[i] = 1
		in.Fanout[i] = 1
		in.SrcRefLoss[0][i] = 0.5
		in.RefSinkLoss[i][0] = 0.5
	}
	in.Threshold[0] = 1 - 1e-9
	if _, err := Solve(in, DefaultOptions(1)); err == nil {
		t.Fatal("expected infeasibility error")
	}
}
