package core

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestShardsOneGoldenEquivalence locks the pipeline refactor down: setting
// Shards to 0 or 1 must route through the identical monolithic pipeline —
// byte-identical designs, the same stage structure, the same LP cost — so
// enabling the field is provably inert until a caller asks for ≥2 shards.
func TestShardsOneGoldenEquivalence(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 6), 17)
	base, err := Solve(in, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1} {
		opts := DefaultOptions(4)
		opts.Shards = k
		res, err := Solve(in, opts)
		if err != nil {
			t.Fatalf("Shards=%d: %v", k, err)
		}
		wantD, _ := json.Marshal(base.Design)
		gotD, _ := json.Marshal(res.Design)
		if !bytes.Equal(wantD, gotD) {
			t.Fatalf("Shards=%d produced a different design than the monolithic pipeline", k)
		}
		if res.LPCost != base.LPCost {
			t.Fatalf("Shards=%d LP cost %v != monolithic %v", k, res.LPCost, base.LPCost)
		}
		if res.Audit.Cost != base.Audit.Cost {
			t.Fatalf("Shards=%d cost %v != monolithic %v", k, res.Audit.Cost, base.Audit.Cost)
		}
		if len(res.Stages) != len(base.Stages) {
			t.Fatalf("Shards=%d stage count %d != monolithic %d", k, len(res.Stages), len(base.Stages))
		}
		for i := range res.Stages {
			if res.Stages[i].Name != base.Stages[i].Name || res.Stages[i].Runs != base.Stages[i].Runs {
				t.Fatalf("Shards=%d stage %d = %s(x%d), monolithic has %s(x%d)",
					k, i, res.Stages[i].Name, res.Stages[i].Runs, base.Stages[i].Name, base.Stages[i].Runs)
			}
		}
		if res.ShardInfo != nil || res.ShardState != nil {
			t.Fatalf("Shards=%d must not report shard metadata", k)
		}
	}
}

// TestShardedStageStructure pins the sharded pipeline's stage names — the
// overlaysolve -json schema and the CI smoke check key off them.
func TestShardedStageStructure(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 3, 2, 6), 17)
	opts := DefaultOptions(4)
	opts.Shards = 3
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"shard-partition", "shard-solve", "shard-coordinate", "audit"}
	if len(res.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d", len(res.Stages), len(want))
	}
	for i, name := range want {
		if res.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, res.Stages[i].Name, name)
		}
	}
	if res.ShardInfo == nil || res.ShardInfo.Shards != 3 {
		t.Fatalf("ShardInfo = %+v, want 3 shards", res.ShardInfo)
	}
	if res.ShardState == nil || len(res.ShardState.Bases) != 3 {
		t.Fatal("sharded solve must return per-shard warm state")
	}
}

// TestShardedBeatsMonolithicWall is the always-on wall-clock acceptance: on
// a 200-sink clustered instance, an 8-shard solve must beat the monolithic
// solve by at least 2x while passing the paper's audit at a cost within the
// property-tested bound. (The measured margin is ~30x — the LP solve is
// superlinear in model size, so eight 25-sink LPs cost far less than one
// 200-sink LP even on a single core; the assertion keeps a wide cushion
// for slow CI machines.)
func TestShardedBeatsMonolithicWall(t *testing.T) {
	if testing.Short() {
		t.Skip("monolithic 200-sink solve takes seconds; skipped with -short")
	}
	in := gen.Clustered(gen.DefaultClustered(2, 8, 2, 25), 7)

	opts := DefaultOptions(1)
	monoStart := time.Now()
	mono, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	monoWall := time.Since(monoStart)

	opts.Shards = 8
	shardStart := time.Now()
	sharded, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	shardWall := time.Since(shardStart)

	t.Logf("monolithic %v cost %.1f | sharded(8) %v cost %.1f | speedup %.1fx",
		monoWall.Round(time.Millisecond), mono.Audit.Cost,
		shardWall.Round(time.Millisecond), sharded.Audit.Cost,
		float64(monoWall)/float64(shardWall))
	if sharded.ShardInfo.Fallback {
		t.Fatal("sharded solve fell back to monolithic")
	}
	if !sharded.Audit.StructureOK || !MeetsGuarantee(sharded.Audit, sharded.PathRounding) {
		t.Fatalf("sharded audit fails: %v", sharded.Audit)
	}
	if ratio := sharded.Audit.Cost / mono.Audit.Cost; ratio > 1.30 {
		t.Fatalf("sharded cost %.3fx monolithic, above the 1.30x property bound", ratio)
	}
	if shardWall*2 > monoWall {
		t.Fatalf("sharded %v not ≥2x faster than monolithic %v", shardWall, monoWall)
	}
}

// TestShardAcceptance2000 is the full-scale acceptance run of ISSUE 3: a
// gen.Clustered instance with 2000 sinks, solved with -shards 8, must pass
// the audit and beat the monolithic solve by ≥2x wall-clock. At this size
// the monolithic simplex does not finish at all on CI hardware (it burns
// through its recovery ladder into an iteration-limit failure after tens of
// minutes), so the monolithic attempt runs concurrently under a deadline of
// 2x the sharded wall: finishing the comparison either way without holding
// tier-1 hostage. Gated behind OVERLAY_SHARD_ACCEPTANCE=1 because even the
// sharded solve costs ~10 s and the abandoned monolithic attempt keeps a
// core busy until the test binary exits; BENCH_shard.json records a run.
func TestShardAcceptance2000(t *testing.T) {
	if os.Getenv("OVERLAY_SHARD_ACCEPTANCE") == "" {
		t.Skip("set OVERLAY_SHARD_ACCEPTANCE=1 to run the 2000-sink acceptance comparison")
	}
	cc := gen.DefaultClustered(2, 4, 3, 500)
	in := gen.Clustered(cc, 7)
	in.Color = nil // keep the LP to its core rows at this scale
	in.NumColors = 0
	if in.NumSinks < 2000 {
		t.Fatalf("instance has %d sinks, want ≥ 2000", in.NumSinks)
	}

	opts := DefaultOptions(1)
	opts.Shards = 8
	shardStart := time.Now()
	sharded, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	shardWall := time.Since(shardStart)
	if sharded.ShardInfo.Fallback {
		t.Fatal("sharded solve fell back to monolithic")
	}
	if !sharded.Audit.StructureOK || !MeetsGuarantee(sharded.Audit, sharded.PathRounding) {
		t.Fatalf("sharded audit fails: %v", sharded.Audit)
	}
	t.Logf("sharded(8) D=%d: wall=%v cost=%.1f pivots=%d rounds=%d",
		in.NumSinks, shardWall.Round(time.Millisecond), sharded.Audit.Cost,
		sharded.Timings.LPPivots, sharded.ShardInfo.Rounds)

	type monoOut struct {
		res  *Result
		err  error
		wall time.Duration
	}
	done := make(chan monoOut, 1)
	go func() {
		start := time.Now()
		res, err := Solve(in, DefaultOptions(1))
		done <- monoOut{res, err, time.Since(start)}
	}()
	select {
	case m := <-done:
		if m.err != nil {
			t.Logf("monolithic solve failed outright after %v: %v (sharded wins by forfeit)",
				m.wall.Round(time.Second), m.err)
			return
		}
		t.Logf("monolithic finished in %v cost %.1f", m.wall.Round(time.Second), m.res.Audit.Cost)
		if shardWall*2 > m.wall {
			t.Fatalf("sharded %v not ≥2x faster than monolithic %v", shardWall, m.wall)
		}
		if ratio := sharded.Audit.Cost / m.res.Audit.Cost; ratio > 1.30 {
			t.Fatalf("sharded cost %.3fx monolithic, above the 1.30x property bound", ratio)
		}
	case <-time.After(2 * shardWall):
		t.Logf("monolithic still running after 2x the sharded wall (%v) — ≥2x speedup proven", 2*shardWall)
	}
}
