package core

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
)

// SessionState is the serializable checkpoint of a Session: everything a
// restarted process needs to resume the re-solve loop warm. The instance
// itself is NOT part of the state — the caller persists it separately
// (netmodel's JSON codec) and hands the restored copy to RestoreSession,
// which rebuilds every live structure against it:
//
//   - the deployed design(s) restore verbatim;
//   - the aggregation plane restores from its membership partition alone
//     (all summaries are recomputed against the restored instance);
//   - the LP basis rebinds to a Problem rebuilt deterministically from the
//     restored instance — the Patcher's golden-locked contract is that its
//     patched Problem stays semantically identical to a fresh Build, so a
//     fresh Build IS the matrix the factorization was taken from, and the
//     first post-restore warm start adopts it Forrest–Tomlin-style exactly
//     like an uninterrupted epoch would (lp.SolveStats.FTUpdates fires);
//   - the stickiness bias is deliberately absent: a restored session starts
//     with no bias history, and the first Step's DiffDesigns(nil, prior)
//     re-patches exactly the deployed design's discounted cells, restoring
//     the biased objective value-for-value.
//
// The sharded solve state (partition, capacity split, per-shard bases) is
// intentionally not checkpointed: it is a performance cache that the next
// sharded epoch rebuilds from scratch, so a restored sharded session is
// design-faithful but pays one cold re-partition.
type SessionState struct {
	Steps    int              `json:"steps"`
	Prior    *netmodel.Design `json:"prior,omitempty"`
	Basis    *lp.BasisData    `json:"basis,omitempty"`
	Agg      *agg.StateData   `json:"agg,omitempty"`
	AggPrior *netmodel.Design `json:"agg_prior,omitempty"`
}

// ExportState captures the session's resumable state. The export is a deep
// copy: the session may keep stepping while the caller serializes it.
// Pending dirty sets reported via Observe but not yet consumed by a Step are
// NOT part of the export — the caller owns the un-stepped mutations and
// replays them against the restored instance (the daemon re-queues its
// unapplied deltas for exactly this reason).
func (s *Session) ExportState() *SessionState {
	st := &SessionState{
		Steps: s.steps,
		Basis: s.basis.Export(),
		Agg:   s.aggState.Export(),
	}
	if s.prior != nil {
		st.Prior = s.prior.Clone()
	}
	if s.aggPrior != nil {
		st.AggPrior = s.aggPrior.Clone()
	}
	return st
}

// checkDesignShape validates that d is shaped for in.
func checkDesignShape(what string, in *netmodel.Instance, d *netmodel.Design) error {
	S, R, D := in.Dims()
	if len(d.Build) != R || len(d.Ingest) != S || len(d.Serve) != R {
		return fmt.Errorf("core: restore: %s design shaped (%d,%d,%d), instance wants (%d,%d,%d)",
			what, len(d.Ingest), len(d.Build), len(d.Serve), S, R, R)
	}
	for k := range d.Ingest {
		if len(d.Ingest[k]) != R {
			return fmt.Errorf("core: restore: %s design ingest[%d] has %d reflectors, want %d", what, k, len(d.Ingest[k]), R)
		}
	}
	for i := range d.Serve {
		if len(d.Serve[i]) != D {
			return fmt.Errorf("core: restore: %s design serve[%d] has %d units, want %d", what, i, len(d.Serve[i]), D)
		}
	}
	return nil
}

// RestoreSession rebuilds a Session from a checkpoint against the restored
// instance. opts/stickiness/warmStart are the caller's configuration, exactly
// as they would be passed to NewSession — they are not part of the
// checkpoint, so a restarted daemon may change tuning knobs across the
// restart (a basis is only rebound when the configuration can use it:
// warm-started, unsharded).
//
// The restored session's next Step continues the timeline: the per-epoch
// rounding seed derives from the restored step counter, the warm start
// adopts the restored factorization, and the stickiness bias re-derives from
// the restored deployment — so an unchanged configuration replays the
// uninterrupted session's epochs bit-for-bit (locked by the live-package
// round-trip tests).
func RestoreSession(in *netmodel.Instance, opts Options, stickiness float64, warmStart bool, st *SessionState) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("core: restore: nil session state")
	}
	if st.Steps < 0 {
		return nil, fmt.Errorf("core: restore: negative step counter %d", st.Steps)
	}
	s := NewSession(opts, stickiness, warmStart)
	s.steps = st.Steps

	plane := in
	if s.opts.Aggregate != nil {
		if st.Agg == nil {
			if st.Steps > 0 {
				return nil, fmt.Errorf("core: restore: aggregated session with %d steps has no aggregation state", st.Steps)
			}
			// Never stepped: the first Step builds the fold lazily, as a
			// fresh session would.
		} else {
			ast, err := agg.Restore(in, st.Agg)
			if err != nil {
				return nil, fmt.Errorf("core: restore: %w", err)
			}
			s.aggState = ast
			plane = ast.Agg
			if st.AggPrior != nil {
				if err := checkDesignShape("aggregate", ast.Agg, st.AggPrior); err != nil {
					return nil, err
				}
				s.aggPrior = st.AggPrior.Clone()
			}
		}
	} else if st.Agg != nil || st.AggPrior != nil {
		return nil, fmt.Errorf("core: restore: checkpoint carries aggregation state but Options.Aggregate is nil")
	}

	if st.Prior != nil {
		if err := checkDesignShape("deployed", in, st.Prior); err != nil {
			return nil, err
		}
		s.prior = st.Prior.Clone()
	}

	if st.Basis != nil && warmStart && s.opts.Shards < 2 {
		var p *lp.Problem
		if s.patcher != nil {
			// Rebuild the persistent Problem the session will keep patching.
			// The basis binds to this exact Problem, so the next Step's
			// install goes through the same-Problem adoption path.
			p, _, _ = s.patcher.Sync(plane, lpOptions(plane, s.opts), nil)
		} else {
			// Non-incremental sessions build a fresh Problem every epoch; a
			// throwaway donor with the identical matrix carries the
			// factorization until then, and the install adopts it through the
			// CSC-fingerprint path (PR-9 semantics).
			p, _ = lpmodel.Build(plane, lpOptions(plane, s.opts))
			p.Precompute()
		}
		b, err := lp.RestoreBasis(p, st.Basis)
		if err != nil {
			return nil, err
		}
		s.basis = b
	}
	// s.lastBias stays nil: see the SessionState contract above.
	return s, nil
}
