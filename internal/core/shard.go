package core

import (
	"errors"
	"fmt"

	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/shard"
)

// shardSeedMix decorrelates per-shard randomized rounding. The constant
// differs from Solve's per-retry increment and Session's per-epoch
// increment so (shard, epoch, attempt) seed streams never collide.
const shardSeedMix = 0x94d049bb133111eb

// solveSharded is the decomposed pipeline: partition the instance into
// commodity-region shards, solve one full (LP + rounding + audit) pipeline
// per shard in parallel, reconcile shared reflector capacity, and audit the
// merged design against the full instance. Each per-shard solve is a plain
// monolithic Solve of the shard's sub-instance, so every paper guarantee
// holds per shard; because a shard only ever sees its own capacity
// allocation, the merged design keeps the ×4 fanout bound reflector by
// reflector.
//
// If coordination cannot feed some shard (its LP stays infeasible at the
// round cap), the solve falls back to the monolithic pipeline — which
// either proves the instance itself infeasible or produces a design — and
// marks Result.ShardInfo.Fallback.
func solveSharded(in *netmodel.Instance, opts Options) (*Result, error) {
	k := opts.Shards
	// Clamp to real sinks: a viewer's streams are shard-atomic, so there
	// can never be more shards than viewers.
	if v := in.NumViewers(); k > v {
		k = v
	}
	sopts := shard.Options{
		Shards:  k,
		Workers: opts.ShardWorkers,
		Rounds:  opts.ShardRounds,
		Levels:  opts.ShardLevels,
	}
	hierarchical := opts.ShardLevels >= 2

	// localDirty is filled by the shard-partition stage: the epoch's global
	// dirty set routed through the stable sink partition, so a churn event
	// confined to one region reaches — and patches — only that region's
	// shard. It is read by the concurrent per-shard solves after the
	// partition stage completes (a happens-before established by the
	// sequential stage pipeline).
	var localDirty []*netmodel.DirtySet
	var ps *pipelineState

	solveFn := func(s int, sub *netmodel.Instance, warm *lp.Basis) (*shard.SolveResult, error) {
		shOpts := opts
		shOpts.Shards = 0
		shOpts.ShardState = nil
		shOpts.WarmStart = warm
		shOpts.Seed = opts.Seed + (uint64(s)+1)*shardSeedMix
		// The allocation counters are process-global, so per-shard numbers
		// gathered while shards co-run would be noise; the outer tracker
		// already accounts the parallel region as one stage.
		shOpts.StageMemStats = false
		// Nested solves trace under a per-shard child span but record no
		// metrics — the outer Result aggregates their stats, and Solve feeds
		// the registry exactly once from that aggregate.
		co, sp := ps.stageObs.TraceOnly().StartSpan("shard", obs.A("shard", s))
		defer sp.End()
		shOpts.Obs = co
		shOpts.patcher, shOpts.patchDirty = nil, nil
		if opts.IncrementalLP {
			if ps.plan.Patchers[s] == nil {
				ps.plan.Patchers[s] = lpmodel.NewPatcher()
			}
			shOpts.patcher = ps.plan.Patchers[s]
			if localDirty != nil {
				shOpts.patchDirty = localDirty[s]
			}
		}
		res, err := solveMono(sub, shOpts)
		if err != nil {
			return nil, err
		}
		var buildNS, patchNS int64
		for _, st := range res.Stages {
			switch st.Name {
			case "lp-build":
				buildNS += st.Wall.Nanoseconds()
			case "lp-patch":
				patchNS += st.Wall.Nanoseconds()
			}
		}
		sr := &shard.SolveResult{
			BuildWallNS: buildNS,
			PatchWallNS: patchNS,
			Design:      res.Design,
			Audit:       res.Audit,
			LPCost:      res.LPCost,
			RoundedCost: res.RoundedCost,
			Pivots:      res.Timings.LPPivots,
			Retries:     res.Retries,
			Vars:        res.Timings.TotalVars,
			Rows:        res.Timings.TotalRows,
			Basis:       res.WarmStartBasis(),
			LPStats:     res.LPStats,
			Patch:       res.Patch,
		}
		if frac := res.Frac; frac != nil && frac.CapDuals != nil {
			// The shard's capacity bid: the marginal objective value of one
			// more unit of fanout at each reflector, |dual|·ẑ_i (the dual
			// prices the row's rhs; an extra fanout unit scales with the
			// fractional build level). Zero where the row is slack.
			sr.CapPrice = make([]float64, len(frac.CapDuals))
			for i, y := range frac.CapDuals {
				if v := -y * frac.Z[i]; v > 0 {
					sr.CapPrice[i] = v
				}
			}
		}
		return sr, nil
	}

	ps = &pipelineState{in: in, opts: opts}
	tracker := newStageTracker(opts.StageMemStats, opts.Obs)
	stages := []Stage{
		{Name: "shard-partition", Run: func(ps *pipelineState) error {
			plan, err := shard.Prepare(in, sopts, opts.ShardState)
			ps.plan = plan
			if err != nil {
				return err
			}
			if opts.IncrementalLP {
				// The delta flow guarantees every instance mutation is in
				// the dirty set, so shards it doesn't route to can reuse
				// their cached sub-instance without re-extraction.
				localDirty = routeDirty(opts.patchDirty, plan.Sinks, in.NumSinks)
				plan.BindSubs(localDirty)
			} else {
				plan.BindSubs(nil)
			}
			return nil
		}},
		{Name: "shard-solve", Run: func(ps *pipelineState) error {
			return ps.plan.SolveAll(solveFn)
		}},
		{Name: "shard-coordinate", Run: func(ps *pipelineState) error {
			coordinate := ps.plan.Coordinate
			if hierarchical {
				coordinate = ps.plan.Exchange
			}
			out, err := coordinate(solveFn)
			if err != nil {
				return err
			}
			ps.shardOut = out
			ps.design = out.Design
			return nil
		}},
		{Name: "audit", Run: func(ps *pipelineState) error {
			ps.audit = netmodel.AuditDesign(in, ps.design)
			return nil
		}},
	}
	if hierarchical {
		// The exchange is a different coordination algorithm, so it runs —
		// and reports — under its own stage name; the flat stage list stays
		// byte-identical for existing consumers.
		stages[2].Name = "shard-exchange"
	}
	if err := tracker.runAll(stages, ps); err != nil {
		if errors.Is(err, lpmodel.ErrInfeasible) {
			res, ferr := solveMono(in, opts)
			if ferr != nil {
				return nil, ferr
			}
			res.ShardInfo = &ShardInfo{Shards: k, Fallback: true}
			if hierarchical {
				res.ShardInfo.Levels = 2
			}
			return res, nil
		}
		return nil, fmt.Errorf("core: %w", err)
	}

	out := ps.shardOut
	res := &Result{
		Design:       ps.design,
		Audit:        ps.audit,
		LPCost:       out.LPCost,
		RoundedCost:  out.RoundedCost,
		PathRounding: usePathRounding(in, opts),
		Retries:      out.Retries,
		Timings: Timings{
			LP:        tracker.wallOf("shard-solve") + tracker.wallOf(stages[2].Name),
			LPPivots:  out.Pivots,
			TotalVars: out.Vars,
			TotalRows: out.Rows,
		},
		Stages:  tracker.stats,
		LPStats: out.LPStats,
		ShardInfo: &ShardInfo{
			Shards:              ps.plan.Shards(),
			Rounds:              out.Rounds,
			Resolves:            out.Resolves,
			ConsolidatedBuilds:  out.ConsolidatedBuilds,
			PerShardPivots:      out.PerShardPivots,
			PerShardPatches:     out.PerShardPatches,
			PerShardRebuilds:    out.PerShardRebuilds,
			LPBuildNS:           out.LPBuildNS,
			LPPatchNS:           out.LPPatchNS,
			ExtractionsSkipped:  out.ExtractionsSkipped,
			PerShardStats:       out.PerShardStats,
			Levels:              out.Levels,
			ExchangeRounds:      out.ExchangeRounds,
			ContestedReflectors: out.ContestedReflectors,
			ExchangeGap:         out.ExchangeGap,
		},
		ShardState: out.State,
	}
	return res, nil
}

// routeDirty splits an epoch's global dirty set into per-shard sets keyed
// by the stable sink partition. Sink-dimension entries (thresholds,
// reflector→sink costs and losses) go to the owning shard with the sink
// re-indexed to its local id; reflector- and source-dimension cost/loss
// entries are shared state and broadcast to every shard. Fanout entries are
// dropped entirely: a shard's LP sees its capacity ALLOCATION, not the raw
// fanout, and the per-shard Patcher value-diffs the allocation itself
// (which also covers coordination re-splits the delta flow never sees).
// Shards with nothing routed to them get nil — their sync patches nothing.
func routeDirty(ds *netmodel.DirtySet, sinks [][]int, numSinks int) []*netmodel.DirtySet {
	k := len(sinks)
	out := make([]*netmodel.DirtySet, k)
	if ds.Empty() {
		return out
	}
	owner := make([]int, numSinks)
	local := make([]int, numSinks)
	for s, list := range sinks {
		for c, j := range list {
			owner[j], local[j] = s, c
		}
	}
	at := func(s int) *netmodel.DirtySet {
		if out[s] == nil {
			out[s] = &netmodel.DirtySet{}
		}
		return out[s]
	}
	for _, j := range ds.SinkDemand {
		at(owner[j]).SinkDemand = append(at(owner[j]).SinkDemand, local[j])
	}
	for _, j := range ds.SinkWeight {
		at(owner[j]).SinkWeight = append(at(owner[j]).SinkWeight, local[j])
	}
	for _, a := range ds.RefSinkCost {
		at(owner[a.B]).RefSinkCost = append(at(owner[a.B]).RefSinkCost, netmodel.Arc{A: a.A, B: local[a.B]})
	}
	for _, a := range ds.RefSinkLoss {
		at(owner[a.B]).RefSinkLoss = append(at(owner[a.B]).RefSinkLoss, netmodel.Arc{A: a.A, B: local[a.B]})
	}
	if len(ds.ReflectorCost) > 0 || len(ds.SrcRefCost) > 0 || len(ds.SrcRefLoss) > 0 {
		for s := 0; s < k; s++ {
			t := at(s)
			t.ReflectorCost = append(t.ReflectorCost, ds.ReflectorCost...)
			t.SrcRefCost = append(t.SrcRefCost, ds.SrcRefCost...)
			t.SrcRefLoss = append(t.SrcRefLoss, ds.SrcRefLoss...)
		}
	}
	return out
}
