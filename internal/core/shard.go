package core

import (
	"errors"
	"fmt"

	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/shard"
)

// shardSeedMix decorrelates per-shard randomized rounding. The constant
// differs from Solve's per-retry increment and Session's per-epoch
// increment so (shard, epoch, attempt) seed streams never collide.
const shardSeedMix = 0x94d049bb133111eb

// solveSharded is the decomposed pipeline: partition the instance into
// commodity-region shards, solve one full (LP + rounding + audit) pipeline
// per shard in parallel, reconcile shared reflector capacity, and audit the
// merged design against the full instance. Each per-shard solve is a plain
// monolithic Solve of the shard's sub-instance, so every paper guarantee
// holds per shard; because a shard only ever sees its own capacity
// allocation, the merged design keeps the ×4 fanout bound reflector by
// reflector.
//
// If coordination cannot feed some shard (its LP stays infeasible at the
// round cap), the solve falls back to the monolithic pipeline — which
// either proves the instance itself infeasible or produces a design — and
// marks Result.ShardInfo.Fallback.
func solveSharded(in *netmodel.Instance, opts Options) (*Result, error) {
	k := opts.Shards
	if k > in.NumSinks {
		k = in.NumSinks
	}
	sopts := shard.Options{
		Shards:  k,
		Workers: opts.ShardWorkers,
		Rounds:  opts.ShardRounds,
	}

	solveFn := func(s int, sub *netmodel.Instance, warm *lp.Basis) (*shard.SolveResult, error) {
		shOpts := opts
		shOpts.Shards = 0
		shOpts.ShardState = nil
		shOpts.WarmStart = warm
		shOpts.Seed = opts.Seed + (uint64(s)+1)*shardSeedMix
		// Per-stage allocation accounting stops the world; the outer
		// tracker already times the parallel region as one stage.
		shOpts.StageMemStats = false
		res, err := solveMono(sub, shOpts)
		if err != nil {
			return nil, err
		}
		return &shard.SolveResult{
			Design:      res.Design,
			Audit:       res.Audit,
			LPCost:      res.LPCost,
			RoundedCost: res.RoundedCost,
			Pivots:      res.Timings.LPPivots,
			Retries:     res.Retries,
			Vars:        res.Timings.TotalVars,
			Rows:        res.Timings.TotalRows,
			Basis:       res.WarmStartBasis(),
		}, nil
	}

	ps := &pipelineState{in: in, opts: opts}
	tracker := newStageTracker(opts.StageMemStats)
	stages := []Stage{
		{Name: "shard-partition", Run: func(ps *pipelineState) error {
			plan, err := shard.Prepare(in, sopts, opts.ShardState)
			ps.plan = plan
			return err
		}},
		{Name: "shard-solve", Run: func(ps *pipelineState) error {
			return ps.plan.SolveAll(solveFn)
		}},
		{Name: "shard-coordinate", Run: func(ps *pipelineState) error {
			out, err := ps.plan.Coordinate(solveFn)
			if err != nil {
				return err
			}
			ps.shardOut = out
			ps.design = out.Design
			return nil
		}},
		{Name: "audit", Run: func(ps *pipelineState) error {
			ps.audit = netmodel.AuditDesign(in, ps.design)
			return nil
		}},
	}
	if err := tracker.runAll(stages, ps); err != nil {
		if errors.Is(err, lpmodel.ErrInfeasible) {
			res, ferr := solveMono(in, opts)
			if ferr != nil {
				return nil, ferr
			}
			res.ShardInfo = &ShardInfo{Shards: k, Fallback: true}
			return res, nil
		}
		return nil, fmt.Errorf("core: %w", err)
	}

	out := ps.shardOut
	res := &Result{
		Design:       ps.design,
		Audit:        ps.audit,
		LPCost:       out.LPCost,
		RoundedCost:  out.RoundedCost,
		PathRounding: usePathRounding(in, opts),
		Retries:      out.Retries,
		Timings: Timings{
			LP:        tracker.wallOf("shard-solve") + tracker.wallOf("shard-coordinate"),
			LPPivots:  out.Pivots,
			TotalVars: out.Vars,
			TotalRows: out.Rows,
		},
		Stages: tracker.stats,
		ShardInfo: &ShardInfo{
			Shards:             ps.plan.Shards(),
			Rounds:             out.Rounds,
			Resolves:           out.Resolves,
			ConsolidatedBuilds: out.ConsolidatedBuilds,
			PerShardPivots:     out.PerShardPivots,
		},
		ShardState: out.State,
	}
	return res, nil
}
