package core

import (
	"math"

	"repro/internal/netmodel"
)

// RepairCoverage greedily adds service arcs to a design until every sink
// meets its FULL weight demand (not just the W/4 the approximation
// guarantees), or no admissible arc remains. This is the natural member of
// the family of "heuristics based on the algorithm" that §7 of the paper
// proposes deploying: the LP-rounded design provides the provably-cheap
// skeleton, and the repair pass tops up the tail of under-covered sinks.
//
// Hard rules: never exceeds one copy per (ISP color, sink), never uses a
// forbidden (§6.3) arc. Soft rule: prefers reflectors with fanout headroom
// under F_i; once none has headroom it allows up to maxFanoutFactor·F_i
// (pass 4 for the paper's end-to-end envelope).
//
// It returns the number of arcs added. The design is normalized in place.
func RepairCoverage(in *netmodel.Instance, d *netmodel.Design, maxFanoutFactor float64) int {
	_, R, D := in.Dims()
	if maxFanoutFactor <= 0 {
		maxFanoutFactor = 4
	}
	fanUse := make([]float64, R)
	for i := 0; i < R; i++ {
		fanUse[i] = d.FanoutUse(in, i)
	}
	colorUsed := map[[2]int]bool{}
	if in.Color != nil {
		for j := 0; j < D; j++ {
			for i := 0; i < R; i++ {
				if d.Serve[i][j] {
					colorUsed[[2]int{j, in.Color[i]}] = true
				}
			}
		}
	}
	deficit := make([]float64, D)
	for j := 0; j < D; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		deficit[j] = in.Demand(j) - d.SinkWeight(in, j)
	}
	added := 0
	for {
		bestI, bestJ := -1, -1
		bestScore := math.Inf(-1)
		bestSoft := false
		for j := 0; j < D; j++ {
			if deficit[j] <= 1e-9 {
				continue
			}
			k := in.Commodity[j]
			bw := in.UnitLoad(j)
			for i := 0; i < R; i++ {
				if d.Serve[i][j] || !in.ArcAllowed(i, j) {
					continue
				}
				if in.Color != nil && colorUsed[[2]int{j, in.Color[i]}] {
					continue
				}
				soft := fanUse[i]+bw > in.Fanout[i]
				if fanUse[i]+bw > maxFanoutFactor*in.Fanout[i] {
					continue
				}
				w := in.CappedWeight(i, j)
				if w <= 1e-12 {
					continue
				}
				gain := math.Min(w, deficit[j])
				cost := in.RefSinkCost[i][j]
				if !d.Ingest[k][i] {
					cost += in.SrcRefCost[k][i]
				}
				if !d.Build[i] {
					cost += in.ReflectorCost[i]
				}
				score := gain / math.Max(cost, 1e-12)
				if soft {
					score *= 0.01 // strongly prefer headroom
				}
				if score > bestScore {
					bestScore, bestI, bestJ, bestSoft = score, i, j, soft
				}
			}
		}
		if bestI < 0 {
			break
		}
		_ = bestSoft
		k := in.Commodity[bestJ]
		d.Serve[bestI][bestJ] = true
		d.Ingest[k][bestI] = true
		d.Build[bestI] = true
		fanUse[bestI] += in.UnitLoad(bestJ)
		deficit[bestJ] -= math.Min(in.CappedWeight(bestI, bestJ), deficit[bestJ])
		if in.Color != nil {
			colorUsed[[2]int{bestJ, in.Color[bestI]}] = true
		}
		added++
	}
	return added
}
