package core

import (
	"time"

	"repro/internal/gapflow"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/round"
	"repro/internal/shard"
	"repro/internal/stround"
)

// A Stage is one named step of the solve pipeline. Stages are the unit of
// instrumentation: every stage execution is timed and its allocations
// counted, and repeated executions of the same stage (the randomized tail
// of the pipeline re-runs on audit retries) aggregate under one name.
// Future pipeline steps — new rounders, repair passes — plug in here
// instead of adding ad-hoc timing code.
type Stage struct {
	Name string
	Run  func(*pipelineState) error
}

// StageStats is the aggregated instrumentation of one named stage.
type StageStats struct {
	Name string
	// Wall is the total wall-clock time across all runs of the stage.
	Wall time.Duration
	// AllocBytes and Allocs count heap allocation across all runs,
	// gathered from runtime/metrics allocation-total deltas (obs.ReadAllocs)
	// when Options.StageMemStats is set; zero otherwise. The totals are
	// process-global, so they are exact in the common one-solve-at-a-time
	// case and attribute co-running goroutines' allocations to the current
	// stage otherwise — see Options.StageMemStats.
	AllocBytes uint64
	Allocs     uint64
	// Runs counts how many times the stage executed (tail stages run once
	// per audit retry).
	Runs int
}

// pipelineState is the blackboard the stages read and write. It carries
// the instance and options in, and accumulates every intermediate product
// of the §2–§6.5 algorithm until the Result can be assembled.
type pipelineState struct {
	in   *netmodel.Instance
	opts Options

	prob *lp.Problem
	vm   *lpmodel.VarMap
	frac *lpmodel.FracSolution
	// patch reports what the lp-patch/lp-build stage did when a Patcher is
	// driving model construction (nil on the plain build path).
	patch *lpmodel.PatchStats

	// per-attempt products
	seed    uint64
	rounded *round.Rounded
	design  *netmodel.Design
	gapRes  *gapflow.Result
	stRes   *stround.Result
	usePath bool
	audit   netmodel.Audit

	// sharded-pipeline products
	plan     *shard.Plan
	shardOut *shard.Outcome

	// stageObs / stageSpan are set by the tracker just before each stage
	// runs: the observer derived for the stage's span (the parent for
	// per-shard child spans) and the span itself (the anchor for lp solver
	// events). Both nil with tracing off.
	stageObs  *obs.Observer
	stageSpan *obs.Span
}

// stageTracker aggregates StageStats by name, preserving first-run order.
// Allocation accounting is opt-in (Options.StageMemStats) and reads the
// runtime/metrics allocation totals — cheap (no stop-the-world), but
// process-global, so it stays off inside concurrent per-shard solves. With
// an observer attached, every stage run additionally opens a trace span and
// lands in the stage-wall histogram and run counter.
type stageTracker struct {
	stats []StageStats
	index map[string]int
	mem   bool
	obs   *obs.Observer
}

func newStageTracker(mem bool, o *obs.Observer) *stageTracker {
	return &stageTracker{index: make(map[string]int), mem: mem, obs: o}
}

// run executes one stage, accounting wall time and (optionally)
// allocations.
func (t *stageTracker) run(st Stage, ps *pipelineState) error {
	var beforeBytes, beforeObjs uint64
	if t.mem {
		beforeBytes, beforeObjs = obs.ReadAllocs()
	}
	ps.stageObs, ps.stageSpan = t.obs.StartSpan(st.Name)
	start := time.Now()
	err := st.Run(ps)
	wall := time.Since(start)
	ps.stageSpan.End()
	ps.stageObs, ps.stageSpan = nil, nil

	i, ok := t.index[st.Name]
	if !ok {
		i = len(t.stats)
		t.index[st.Name] = i
		t.stats = append(t.stats, StageStats{Name: st.Name})
	}
	s := &t.stats[i]
	s.Wall += wall
	if t.mem {
		afterBytes, afterObjs := obs.ReadAllocs()
		s.AllocBytes += afterBytes - beforeBytes
		s.Allocs += afterObjs - beforeObjs
	}
	s.Runs++
	if t.obs.Enabled() {
		t.obs.Histogram(obs.MStageWall, obs.L("stage", st.Name)).Observe(wall.Seconds())
		t.obs.Counter(obs.MStageRuns, obs.L("stage", st.Name)).Inc()
	}
	return err
}

// runAll executes a stage sequence in order, stopping at the first error.
func (t *stageTracker) runAll(stages []Stage, ps *pipelineState) error {
	for _, st := range stages {
		if err := t.run(st, ps); err != nil {
			return err
		}
	}
	return nil
}

// wallOf returns the accumulated wall time of a named stage (0 if it never
// ran).
func (t *stageTracker) wallOf(name string) time.Duration {
	if i, ok := t.index[name]; ok {
		return t.stats[i].Wall
	}
	return 0
}
