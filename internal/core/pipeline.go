package core

import (
	"runtime"
	"time"

	"repro/internal/gapflow"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/round"
	"repro/internal/shard"
	"repro/internal/stround"
)

// A Stage is one named step of the solve pipeline. Stages are the unit of
// instrumentation: every stage execution is timed and its allocations
// counted, and repeated executions of the same stage (the randomized tail
// of the pipeline re-runs on audit retries) aggregate under one name.
// Future pipeline steps — new rounders, repair passes — plug in here
// instead of adding ad-hoc timing code.
type Stage struct {
	Name string
	Run  func(*pipelineState) error
}

// StageStats is the aggregated instrumentation of one named stage.
type StageStats struct {
	Name string
	// Wall is the total wall-clock time across all runs of the stage.
	Wall time.Duration
	// AllocBytes and Allocs count heap allocation across all runs,
	// gathered from runtime.MemStats deltas when Options.StageMemStats
	// is set (approximate under concurrent allocation, exact in the
	// common single-solve case); zero otherwise.
	AllocBytes uint64
	Allocs     uint64
	// Runs counts how many times the stage executed (tail stages run once
	// per audit retry).
	Runs int
}

// pipelineState is the blackboard the stages read and write. It carries
// the instance and options in, and accumulates every intermediate product
// of the §2–§6.5 algorithm until the Result can be assembled.
type pipelineState struct {
	in   *netmodel.Instance
	opts Options

	prob *lp.Problem
	vm   *lpmodel.VarMap
	frac *lpmodel.FracSolution
	// patch reports what the lp-patch/lp-build stage did when a Patcher is
	// driving model construction (nil on the plain build path).
	patch *lpmodel.PatchStats

	// per-attempt products
	seed    uint64
	rounded *round.Rounded
	design  *netmodel.Design
	gapRes  *gapflow.Result
	stRes   *stround.Result
	usePath bool
	audit   netmodel.Audit

	// sharded-pipeline products
	plan     *shard.Plan
	shardOut *shard.Outcome
}

// stageTracker aggregates StageStats by name, preserving first-run order.
// Allocation accounting is opt-in (Options.StageMemStats): wall timing is
// nearly free, but runtime.ReadMemStats briefly stops the world, which a
// high-frequency re-solve loop should not pay for counters nobody reads.
type stageTracker struct {
	stats []StageStats
	index map[string]int
	mem   bool
}

func newStageTracker(mem bool) *stageTracker {
	return &stageTracker{index: make(map[string]int), mem: mem}
}

// run executes one stage, accounting wall time and (optionally)
// allocations.
func (t *stageTracker) run(st Stage, ps *pipelineState) error {
	var before, after runtime.MemStats
	if t.mem {
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	err := st.Run(ps)
	wall := time.Since(start)
	if t.mem {
		runtime.ReadMemStats(&after)
	}

	i, ok := t.index[st.Name]
	if !ok {
		i = len(t.stats)
		t.index[st.Name] = i
		t.stats = append(t.stats, StageStats{Name: st.Name})
	}
	s := &t.stats[i]
	s.Wall += wall
	if t.mem {
		s.AllocBytes += after.TotalAlloc - before.TotalAlloc
		s.Allocs += after.Mallocs - before.Mallocs
	}
	s.Runs++
	return err
}

// runAll executes a stage sequence in order, stopping at the first error.
func (t *stageTracker) runAll(stages []Stage, ps *pipelineState) error {
	for _, st := range stages {
		if err := t.run(st, ps); err != nil {
			return err
		}
	}
	return nil
}

// wallOf returns the accumulated wall time of a named stage (0 if it never
// ran).
func (t *stageTracker) wallOf(name string) time.Duration {
	if i, ok := t.index[name]; ok {
		return t.stats[i].Wall
	}
	return 0
}
