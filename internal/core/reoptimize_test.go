package core

import (
	"testing"

	"repro/internal/gen"
)

func TestReoptimizeReducesChurn(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 16), 21)
	opts := DefaultOptions(5)
	opts.RepairCoverage = true
	base, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the network slightly: jitter some costs.
	perturbed := in.Clone()
	rngSeed := 0
	for i := 0; i < perturbed.NumReflectors; i++ {
		for j := 0; j < perturbed.NumSinks; j++ {
			rngSeed++
			if rngSeed%3 == 0 {
				perturbed.RefSinkCost[i][j] *= 1.15
			}
		}
	}
	cold, err := Reoptimize(perturbed, base.Design, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := Reoptimize(perturbed, base.Design, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sticky.ArcChurn > cold.ArcChurn {
		t.Fatalf("stickiness increased churn: %d vs %d", sticky.ArcChurn, cold.ArcChurn)
	}
	// Both must still meet the paper's guarantee on the true instance.
	if sticky.Audit.WeightFactor < 0.25-1e-9 {
		t.Fatalf("sticky re-solve broke weight guarantee: %v", sticky.Audit.WeightFactor)
	}
}

func TestReoptimizeNoPriorIsColdSolve(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 5, 8), 9)
	re, err := Reoptimize(in, nil, 0.5, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(in, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if re.Audit.Cost != plain.Audit.Cost {
		t.Fatalf("no-prior reoptimize differs from cold solve: %v vs %v", re.Audit.Cost, plain.Audit.Cost)
	}
	if re.ArcChurn != 0 {
		t.Fatal("churn must be 0 without a prior")
	}
}

func TestReoptimizeAuditUsesTrueCosts(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 5, 8), 10)
	base, err := Solve(in, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	re, err := Reoptimize(in, base.Design, 0.9, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	// Evaluated on the true instance, the audit cost must match a fresh
	// audit of the design.
	want := re.Design.Cost(in)
	if re.Audit.Cost != want {
		t.Fatalf("audit cost %v != true cost %v (bias leaked)", re.Audit.Cost, want)
	}
}

func TestReoptimizeInvalidStickinessRejected(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 4, 6), 4)
	base, err := Solve(in, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{-0.1, 1, 1.5} {
		if _, err := Reoptimize(in, base.Design, s, DefaultOptions(1)); err == nil {
			t.Fatalf("stickiness %g must be rejected", s)
		}
	}
	// The boundary values of the valid range still work.
	if _, err := Reoptimize(in, base.Design, 0, DefaultOptions(1)); err != nil {
		t.Fatalf("stickiness 0 rejected: %v", err)
	}
	if _, err := Reoptimize(in, base.Design, 0.999, DefaultOptions(1)); err != nil {
		t.Fatalf("stickiness 0.999 rejected: %v", err)
	}
}

func TestReoptimizeWarmStartFewerIterations(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 16), 21)
	opts := DefaultOptions(5)
	base, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.WarmStartBasis() == nil {
		t.Fatal("solve returned no warm-start basis")
	}
	// Churn: jitter a third of the arc costs.
	perturbed := in.Clone()
	n := 0
	for i := 0; i < perturbed.NumReflectors; i++ {
		for j := 0; j < perturbed.NumSinks; j++ {
			n++
			if n%3 == 0 {
				perturbed.RefSinkCost[i][j] *= 1.15
			}
		}
	}
	cold, err := Reoptimize(perturbed, base.Design, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	wopts := opts
	wopts.WarmStart = base.WarmStartBasis()
	warm, err := Reoptimize(perturbed, base.Design, 0.5, wopts)
	if err != nil {
		t.Fatal(err)
	}
	// Same biased LP, so the optima must agree; the warm re-solve must
	// spend strictly fewer simplex iterations than the cold one.
	if diff := warm.LPCost - cold.LPCost; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("warm LP cost %.9f != cold %.9f", warm.LPCost, cold.LPCost)
	}
	if warm.Frac.Iterations >= cold.Frac.Iterations {
		t.Fatalf("warm start did not reduce iterations: warm=%d cold=%d",
			warm.Frac.Iterations, cold.Frac.Iterations)
	}
	t.Logf("churn re-solve pivots: warm=%d cold=%d", warm.Frac.Iterations, cold.Frac.Iterations)
}
