// Package core assembles the paper's end-to-end approximation algorithm:
//
//  1. solve the LP relaxation of the §2 integer program exactly
//     (internal/lpmodel + internal/lp),
//  2. randomized rounding of z and y (§3, internal/round),
//  3. integralize the remaining fractional x either with the modified GAP
//     flow network (§5, internal/gapflow) or — when §6.3 edge capacities or
//     §6.4 color constraints are present — with the §6.5 path-LP dependent
//     rounding (internal/stround),
//  4. audit every constraint of the final design and re-randomize when a
//     low-probability tail event pushed a violation past the paper's
//     guarantees (the lemmas hold w.h.p., not always; operationally §1.3
//     says the algorithm "can be rerun as often as needed").
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/agg"
	"repro/internal/gapflow"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/round"
	"repro/internal/shard"
	"repro/internal/stround"
)

// Options configures Solve.
type Options struct {
	// C is the rounding multiplier constant of §3 (default 64, the value
	// that gives the δ=1/4 weight guarantee of Lemma 4.3).
	C float64
	// Seed drives all randomness.
	Seed uint64
	// MaxRetries re-runs the randomized stages when the audited design
	// misses the paper's end-to-end guarantee (weight ≥ W/4,
	// fanout ≤ 4F). Default 8.
	MaxRetries int
	// ForcePathRounding uses the §6.5 path rounding even without
	// colors/edge capacities (for ablation experiments).
	ForcePathRounding bool
	// DisableCuttingPlane drops constraint (4) from the LP (ablation;
	// Claim 2.1 shows the IP doesn't need it, §4 shows the rounding does).
	DisableCuttingPlane bool
	// LPOnly stops after the LP relaxation (used by experiments that
	// only need the fractional optimum).
	LPOnly bool
	// RepairCoverage runs the §7-style greedy repair pass after
	// rounding, topping every sink up to its FULL weight demand where
	// capacity admits (colors stay hard, fanout ≤ 4F). The paper's
	// guarantee is W/4; operators want W — this is the bridge.
	RepairCoverage bool
	// WarmStart seeds the LP solve from a basis captured by a previous
	// solve of a same-shaped instance (Result.WarmStartBasis), cutting
	// simplex iterations when re-solving after churn. Invalid bases
	// degrade to a cold solve.
	WarmStart *lp.Basis
	// LPFixedShape builds the LP with one covering row per sink even for
	// zero-demand sinks, pinning the LP shape to the instance dimensions
	// so warm bases survive sink join/leave churn (see lpmodel.Options.
	// FixedShape). The live engine sets this; static solves don't need it.
	LPFixedShape bool
	// Pricing selects the simplex entering rule (default lp.DevexPricing)
	// and RefactorEvery overrides the basis refactorization cadence (0 =
	// solver default) — both forwarded to every LP solve, per-shard ones
	// included.
	Pricing       lp.Pricing
	RefactorEvery int
	// RefactorOnInstall forces every warm-started LP solve to refactorize
	// its basis at install instead of resuming a persisted factorization
	// (the pre-persistence behavior; see lp.Options.RefactorOnInstall).
	RefactorOnInstall bool
	// Shards ≥ 2 partitions the instance into that many commodity-region
	// shards solved in parallel with a capacity-coordination pass
	// (internal/shard); the pipeline then runs the shard-partition /
	// shard-solve / shard-coordinate stages instead of lp-build/lp-solve/
	// round/integralize/repair. 0 or 1 solves monolithically, as does
	// LPOnly (the fractional optimum of the monolithic LP is what LPOnly
	// callers want — shard-sum LP costs are not comparable).
	Shards int
	// ShardRounds caps the coordination rounds of a sharded solve
	// (default 3).
	ShardRounds int
	// ShardLevels selects the shard-coordination topology: ≤ 1 keeps the
	// flat use-based re-bidding (shard-coordinate stage), 2 folds the
	// leaves into super-shards and clears contested reflector capacity with
	// the hierarchical dual-price exchange (shard-exchange stage) — leaf
	// solves quote the shadow prices of their capacity rows and a master
	// pass per level moves slack to the highest-value bids, which is what
	// keeps coordination converging as reflector counts reach the
	// hundreds. Ignored unless Shards ≥ 2.
	ShardLevels int
	// ShardWorkers bounds concurrent per-shard solves (0 = GOMAXPROCS).
	ShardWorkers int
	// ShardState warm-starts a sharded solve from a previous same-shaped
	// solve: the partition is reused (so per-shard LP shapes match), the
	// capacity split is rescaled instead of recomputed, and each shard's
	// simplex starts from its prior basis. Incompatible state is ignored.
	ShardState *shard.State
	// StageMemStats additionally records per-stage allocation counters in
	// Result.Stages, read from the runtime/metrics allocation totals
	// (obs.ReadAllocs — cheap, no stop-the-world). The counters are
	// process-global: exact for the common one-solve-at-a-time case,
	// attribution-approximate when a stage co-runs with other allocating
	// goroutines (which is why the per-shard solves inside shard-solve keep
	// it off). Off by default.
	StageMemStats bool
	// Obs, when non-nil, receives observability signals from the solve:
	// per-stage spans and wall/run metrics from the pipeline tracker, LP
	// factorization events attached to the lp-solve span, per-shard child
	// spans, and the Result-derived solver counters (pivots,
	// refactorizations, FT adoptions, devex resets, patch cells, shard
	// coordination) fed once per top-level Solve. A nil Obs costs one nil
	// check per site and leaves the solve byte-identical.
	Obs *obs.Observer
	// Aggregate, when non-nil, folds the instance's viewers into weighted
	// super-sinks keyed by (group, stream-slot set) before the pipeline
	// runs (internal/agg), solves the LP over the aggregates — whose count
	// depends on the network's region/ISP structure, not the viewer
	// population — and disaggregates the result back to real viewers with a
	// deterministic sticky pass. The pipeline gains an aggregate stage up
	// front and a disaggregate stage (which re-audits against the true
	// instance) at the end. Inside a Session the aggregation state persists
	// across epochs and the delta flow is folded through it, so
	// weight-neutral churn solves LP-free.
	Aggregate *agg.Config
	// IncrementalLP enables the delta-driven incremental LP rebuild inside
	// a Session: a persistent lpmodel.Patcher (one per shard when Shards ≥
	// 2) carries the built lp.Problem across epochs and patches only the
	// coefficients a churn delta touched, replacing the per-epoch lp-build
	// stage with a delta-sized lp-patch stage. Requires the Session's
	// delta flow: callers must report instance mutations through
	// Session.Observe (the live engine does). Implies LPFixedShape. A
	// plain one-shot Solve ignores it — there is no previous epoch to
	// patch from.
	IncrementalLP bool

	// patcher and patchDirty are the per-Step plumbing of IncrementalLP,
	// set by Session (monolithic path) or by solveSharded (per-shard): the
	// persistent patch state and the dirty set accumulated since the
	// previous epoch.
	patcher    *lpmodel.Patcher
	patchDirty *netmodel.DirtySet
}

// DefaultOptions returns the paper's constants.
func DefaultOptions(seed uint64) Options {
	return Options{C: 64, Seed: seed, MaxRetries: 8}
}

// Timings records per-stage wall-clock durations (T7 evidence that the LP
// solve dominates, §5.1).
type Timings struct {
	LP        time.Duration
	Rounding  time.Duration
	Integral  time.Duration
	LPPivots  int
	TotalVars int
	TotalRows int
}

// Result is the outcome of Solve.
type Result struct {
	Design *netmodel.Design
	Audit  netmodel.Audit
	// Frac is the LP optimum; LPCost its objective (the lower bound on
	// OPT used in every approximation-ratio experiment). A sharded solve
	// has no monolithic LP: Frac is nil and LPCost is the sum of the
	// per-shard LP optima (diagnostic — merging deduplicates reflector
	// build costs, so the sum is not a bound on the merged cost).
	Frac   *lpmodel.FracSolution
	LPCost float64
	// RoundedCost is the §3 stage cost; RoundInst its lemma-by-lemma
	// instrumentation.
	RoundedCost float64
	RoundInst   round.Instrumentation
	// PathRounding reports whether §6.5 replaced the §5 GAP stage.
	PathRounding bool
	// STResult is set when path rounding ran.
	STResult *stround.Result
	// GAPResult is set when the §5 flow rounding ran.
	GAPResult *gapflow.Result
	Retries   int
	Timings   Timings
	// Stages is the per-stage instrumentation of the solve pipeline
	// (wall time, allocation counters, run counts), aggregated by stage
	// name across audit retries.
	Stages []StageStats
	// Patch reports what the incremental LP rebuild did this solve (nil
	// unless a Session-carried Patcher ran; see Options.IncrementalLP):
	// whether the epoch fell back to a full lp-build and how many matrix /
	// rhs / objective cells the lp-patch stage rewrote.
	Patch *lpmodel.PatchStats
	// LPStats totals the solver's factorization events across the solve —
	// refactorizations, adopted (persisted) factorizations, devex resets.
	// For sharded solves it sums over shards.
	LPStats lp.SolveStats
	// ShardInfo summarizes the sharded path (nil for monolithic solves);
	// ShardState carries the partition, capacity split, and per-shard
	// bases forward for the next same-shaped solve (core.Session threads
	// it across live epochs).
	ShardInfo  *ShardInfo
	ShardState *shard.State
}

// ShardInfo reports how a sharded solve went.
type ShardInfo struct {
	// Shards is the effective shard count (the requested count clamped to
	// the sink population).
	Shards int
	// Rounds counts coordination rounds (0 = the initial capacity split
	// was never contested); Resolves the shard re-solves they triggered;
	// ConsolidatedBuilds the duplicate builds the merge-dedup removed.
	Rounds             int
	Resolves           int
	ConsolidatedBuilds int
	// PerShardPivots breaks Timings.LPPivots down by shard.
	PerShardPivots []int
	// PerShardPatches counts the LP cells each shard's Patcher rewrote
	// this epoch and PerShardRebuilds the full builds it fell back to
	// (both nil unless Options.IncrementalLP). A shard no delta touched
	// shows 0 in both — the dirty routing by the stable sink partition is
	// what keeps a one-region churn event from touching the other shards'
	// LPs.
	PerShardPatches  []int
	PerShardRebuilds []int
	// LPBuildNS / LPPatchNS sum the per-shard model-construction stage
	// walls, which the outer shard-solve stage timing subsumes (totals
	// across concurrent shards, not elapsed wall).
	LPBuildNS, LPPatchNS int64
	// ExtractionsSkipped counts shards that reused their cached
	// sub-instance this epoch because their routed dirty set was empty —
	// the zero-copy path that never touches extract.
	ExtractionsSkipped int
	// PerShardStats breaks Result.LPStats down by shard (nil when the
	// shard path didn't run).
	PerShardStats []lp.SolveStats
	// Levels is the coordination topology that ran (1 = flat re-bidding,
	// 2 = hierarchical price exchange). Under the exchange, ExchangeRounds
	// counts price-clearing rounds (the Rounds analogue),
	// ContestedReflectors the distinct reflectors whose capacity it
	// cleared, and ExchangeGap the final relative bid/ask gap (0 = every
	// bid cleared; convergence declares below 1%).
	Levels              int
	ExchangeRounds      int
	ContestedReflectors int
	ExchangeGap         float64
	// Fallback reports that coordination could not feed every shard (a
	// shard's LP stayed infeasible at the round cap) and the result came
	// from a monolithic fallback solve instead.
	Fallback bool
}

// WarmStartBasis returns the LP basis of this solve for seeding a future
// re-solve (nil when unavailable).
func (r *Result) WarmStartBasis() *lp.Basis {
	if r == nil || r.Frac == nil {
		return nil
	}
	return r.Frac.Basis
}

// lpOptions derives the model options of a solve from the instance and the
// pipeline options (one definition shared by the build and patch paths, so
// the two can never drift apart).
func lpOptions(in *netmodel.Instance, opts Options) lpmodel.Options {
	lpOpts := lpmodel.DefaultOptions(in)
	lpOpts.CuttingPlane = !opts.DisableCuttingPlane
	lpOpts.FixedShape = opts.LPFixedShape
	lpOpts.Pricing = opts.Pricing
	lpOpts.RefactorEvery = opts.RefactorEvery
	lpOpts.RefactorOnInstall = opts.RefactorOnInstall
	return lpOpts
}

// solverOptions derives the lp.Options of a solve (the solver-tuning knobs
// plus the warm-start basis).
func solverOptions(opts Options) lp.Options {
	return lp.Options{
		WarmStart:         opts.WarmStart,
		Pricing:           opts.Pricing,
		RefactorEvery:     opts.RefactorEvery,
		RefactorOnInstall: opts.RefactorOnInstall,
	}
}

// lpStages is the head of the pipeline: model construction and the exact
// simplex solve. It runs once per Solve. With a Session-carried Patcher the
// construction step becomes lp-patch — delta-sized in-place updates of the
// persistent problem — except on epochs where the patcher must fall back to
// a full build (the first, or a shape/options change), which still report
// as lp-build.
func lpStages(ps *pipelineState) []Stage {
	solve := Stage{Name: "lp-solve", Run: func(ps *pipelineState) error {
		sopts := solverOptions(ps.opts)
		if sp := ps.stageSpan; sp != nil {
			// Surface the simplex internals on the lp-solve span:
			// refactorizations, FT adoptions, and devex resets land as span
			// events with their pivot iteration.
			sopts.Events = func(e lp.Event) {
				sp.Event(e.Kind.String(), obs.A("iteration", e.Iteration))
			}
		}
		frac, err := lpmodel.SolveBuiltOpts(ps.in, ps.prob, ps.vm, sopts)
		if err != nil {
			return err
		}
		ps.frac = frac
		return nil
	}}
	if pt := ps.opts.patcher; pt != nil {
		name := "lp-patch"
		if pt.NeedsRebuild(ps.in, lpOptions(ps.in, ps.opts)) {
			name = "lp-build"
		}
		return []Stage{
			{Name: name, Run: func(ps *pipelineState) error {
				st := lpmodel.PatchStats{}
				ps.prob, ps.vm, st = pt.Sync(ps.in, lpOptions(ps.in, ps.opts), ps.opts.patchDirty)
				ps.patch = &st
				return nil
			}},
			solve,
		}
	}
	return []Stage{
		{Name: "lp-build", Run: func(ps *pipelineState) error {
			ps.prob, ps.vm = lpmodel.Build(ps.in, lpOptions(ps.in, ps.opts))
			return nil
		}},
		solve,
	}
}

// attemptStages is the randomized tail of the pipeline: §3 rounding, §5/
// §6.5 integralization, the optional repair pass, and the guarantee audit.
// Solve re-runs the whole tail on audit retries.
func attemptStages() []Stage {
	return []Stage{
		{Name: "round", Run: func(ps *pipelineState) error {
			rOpts := round.DefaultOptions(ps.seed)
			rOpts.C = ps.opts.C
			ps.rounded = round.Apply(ps.in, ps.frac, rOpts)
			return nil
		}},
		{Name: "integralize", Run: func(ps *pipelineState) error {
			design := netmodel.NewDesign(ps.in)
			copyBools(design.Build, ps.rounded.ZBar)
			for k := range ps.rounded.YBar {
				copyBools(design.Ingest[k], ps.rounded.YBar[k])
			}
			ps.gapRes, ps.stRes = nil, nil
			if ps.usePath {
				stRes, err := stround.Round(ps.in, ps.rounded.XBar, stround.DefaultOptions(ps.seed^0xabcdef))
				if err != nil {
					return fmt.Errorf("path rounding: %w", err)
				}
				ps.stRes = stRes
				for i := range stRes.Serve {
					copyBools(design.Serve[i], stRes.Serve[i])
				}
			} else {
				ps.gapRes = gapflow.Round(ps.in, ps.rounded.XBar)
				for i := range ps.gapRes.Serve {
					copyBools(design.Serve[i], ps.gapRes.Serve[i])
				}
			}
			design.Normalize(ps.in)
			ps.design = design
			return nil
		}},
		{Name: "repair", Run: func(ps *pipelineState) error {
			if ps.opts.RepairCoverage {
				RepairCoverage(ps.in, ps.design, 4)
			}
			return nil
		}},
		{Name: "audit", Run: func(ps *pipelineState) error {
			ps.audit = netmodel.AuditDesign(ps.in, ps.design)
			return nil
		}},
	}
}

// Solve runs the full algorithm as a staged pipeline. A monolithic solve
// (Options.Shards ≤ 1) runs lp-build → lp-solve once, then round →
// integralize → repair → audit per attempt until the audited design meets
// the paper's guarantee (or MaxRetries is exhausted, returning the best
// attempt). With Options.Shards ≥ 2 the pipeline instead runs
// shard-partition → shard-solve → shard-coordinate → audit, solving one
// small LP per commodity-region shard in parallel (see internal/shard).
// Per-stage wall time and allocation counters land in Result.Stages either
// way.
func Solve(in *netmodel.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.C == 0 {
		opts.C = 64
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 8
	}
	// The sharded path needs at least two nonempty shards to be a
	// decomposition at all (two real sinks — a viewer's streams are
	// shard-atomic); LPOnly wants the monolithic fractional optimum.
	var res *Result
	var err error
	switch {
	case opts.Aggregate != nil:
		res, err = solveAggregated(in, opts)
	case opts.Shards >= 2 && in.NumViewers() >= 2 && !opts.LPOnly:
		res, err = solveSharded(in, opts)
	default:
		res, err = solveMono(in, opts)
	}
	if err == nil {
		recordSolve(opts.Obs, res)
	}
	return res, err
}

// recordSolve feeds the Result-derived solver counters into the metrics
// registry. It runs exactly once per top-level Solve — nested per-shard
// solves carry a TraceOnly observer, so nothing here double-counts; the
// outer Result already aggregates their stats.
func recordSolve(o *obs.Observer, res *Result) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Counter(obs.MSolvesTotal).Inc()
	o.Counter(obs.MLPPivots).Add(float64(res.Timings.LPPivots))
	o.Counter(obs.MLPRefactorizations).Add(float64(res.LPStats.Refactorizations))
	o.Counter(obs.MLPFTUpdates).Add(float64(res.LPStats.FTUpdates))
	o.Counter(obs.MLPDevexResets).Add(float64(res.LPStats.DevexResets))
	if p := res.Patch; p != nil {
		o.Counter(obs.MLPPatchedCells).Add(float64(p.Patches()))
		if p.Rebuilt {
			o.Counter(obs.MLPRebuilds).Inc()
		}
	}
	if si := res.ShardInfo; si != nil {
		o.Counter(obs.MShardRebidRounds).Add(float64(si.Rounds))
		o.Counter(obs.MShardResolves).Add(float64(si.Resolves))
		o.Counter(obs.MShardExtractionsSkipped).Add(float64(si.ExtractionsSkipped))
		if si.Levels >= 2 {
			o.Counter(obs.MShardExchangeRounds).Add(float64(si.ExchangeRounds))
			o.Counter(obs.MShardContestedRefs).Add(float64(si.ContestedReflectors))
			o.Gauge(obs.MShardExchangeGap).Set(si.ExchangeGap)
		}
		if si.Fallback {
			o.Counter(obs.MShardFallbacks).Inc()
		}
		for _, p := range si.PerShardPatches {
			o.Counter(obs.MLPPatchedCells).Add(float64(p))
		}
		for _, r := range si.PerShardRebuilds {
			o.Counter(obs.MLPRebuilds).Add(float64(r))
		}
	}
}

// solveMono is the monolithic pipeline (the paper's algorithm as one LP).
func solveMono(in *netmodel.Instance, opts Options) (*Result, error) {
	ps := &pipelineState{in: in, opts: opts}
	tracker := newStageTracker(opts.StageMemStats, opts.Obs)
	if err := tracker.runAll(lpStages(ps), ps); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	frac := ps.frac

	res := &Result{
		Frac:    frac,
		LPCost:  frac.Cost,
		Patch:   ps.patch,
		LPStats: frac.Stats,
		Timings: Timings{
			LP:        tracker.wallOf("lp-build") + tracker.wallOf("lp-patch") + tracker.wallOf("lp-solve"),
			LPPivots:  frac.Iterations,
			TotalVars: ps.prob.NumVars(),
			TotalRows: ps.prob.NumRows(),
		},
		Stages: tracker.stats,
	}
	if opts.LPOnly {
		return res, nil
	}

	ps.usePath = usePathRounding(in, opts)
	tail := attemptStages()

	var best *Result
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		ps.seed = opts.Seed + uint64(attempt)*0x9e3779b97f4a7c15

		roundW := tracker.wallOf("round")
		integralW := tracker.wallOf("integralize") + tracker.wallOf("repair")
		if err := tracker.runAll(tail, ps); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}

		cand := &Result{
			Design:       ps.design,
			Audit:        ps.audit,
			Frac:         frac,
			LPCost:       frac.Cost,
			Patch:        ps.patch,
			LPStats:      frac.Stats,
			RoundedCost:  ps.rounded.Cost,
			RoundInst:    ps.rounded.Instrument(in, frac.Cost),
			PathRounding: ps.usePath,
			STResult:     ps.stRes,
			GAPResult:    ps.gapRes,
			Retries:      attempt,
			Timings:      res.Timings,
			Stages:       tracker.stats,
		}
		// Timings keeps its historical per-attempt semantics; Stages
		// aggregates across attempts.
		cand.Timings.Rounding = tracker.wallOf("round") - roundW
		cand.Timings.Integral = tracker.wallOf("integralize") + tracker.wallOf("repair") - integralW

		if best == nil || betterResult(cand, best) {
			best = cand
		}
		if MeetsGuarantee(ps.audit, ps.usePath) {
			return cand, nil
		}
	}
	best.Stages = tracker.stats
	return best, nil
}

// AuditOK reports whether the result's design passed the full audit: the
// structure constraints hold and the paper's end-to-end guarantee is met
// under the rounding variant that produced it. CLIs, experiments, and the
// live engine all certify results through this one predicate.
func (r *Result) AuditOK() bool {
	return r.Audit.StructureOK && MeetsGuarantee(r.Audit, r.PathRounding)
}

// usePathRounding reports whether the §6.5 path rounding replaces the §5
// GAP stage: forced by options, or required by color / edge-capacity
// extensions, or by per-unit weights (the GAP flow network counts every
// served sink as one integral capacity unit, so a weighted aggregate would
// overpack reflector fanout; the path LP carries real unit loads). Both the
// monolithic and the sharded pipeline key the audit guarantee variant off
// this single predicate.
func usePathRounding(in *netmodel.Instance, opts Options) bool {
	return opts.ForcePathRounding || in.Color != nil || in.EdgeCap != nil || in.Weighted()
}

// MeetsGuarantee checks the paper's end-to-end bounds: every sink keeps at
// least a quarter of its weight demand and no reflector exceeds 4× fanout
// (§5 summary). Path rounding promises additive-7 violations instead of the
// multiplicative-4 fanout bound, so accept either form there. The live
// engine uses it to certify every epoch's design.
func MeetsGuarantee(a netmodel.Audit, pathRounding bool) bool {
	if a.WeightFactor < 0.25-1e-9 {
		return false
	}
	if !pathRounding {
		return a.FanoutFactor <= 4+1e-9
	}
	return true
}

func betterResult(a, b *Result) bool {
	if a.Audit.WeightFactor != b.Audit.WeightFactor {
		return a.Audit.WeightFactor > b.Audit.WeightFactor
	}
	if a.Audit.FanoutFactor != b.Audit.FanoutFactor {
		return a.Audit.FanoutFactor < b.Audit.FanoutFactor
	}
	return a.Audit.Cost < b.Audit.Cost
}

func copyBools(dst, src []bool) {
	copy(dst, src)
}

// ApproxRatio returns the cost ratio of the design versus the LP lower
// bound (an upper bound on the true approximation ratio).
func (r *Result) ApproxRatio() float64 {
	if r.LPCost <= 0 {
		return math.Inf(1)
	}
	return r.Audit.Cost / r.LPCost
}
