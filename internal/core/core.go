// Package core assembles the paper's end-to-end approximation algorithm:
//
//  1. solve the LP relaxation of the §2 integer program exactly
//     (internal/lpmodel + internal/lp),
//  2. randomized rounding of z and y (§3, internal/round),
//  3. integralize the remaining fractional x either with the modified GAP
//     flow network (§5, internal/gapflow) or — when §6.3 edge capacities or
//     §6.4 color constraints are present — with the §6.5 path-LP dependent
//     rounding (internal/stround),
//  4. audit every constraint of the final design and re-randomize when a
//     low-probability tail event pushed a violation past the paper's
//     guarantees (the lemmas hold w.h.p., not always; operationally §1.3
//     says the algorithm "can be rerun as often as needed").
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/gapflow"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/round"
	"repro/internal/stround"
)

// Options configures Solve.
type Options struct {
	// C is the rounding multiplier constant of §3 (default 64, the value
	// that gives the δ=1/4 weight guarantee of Lemma 4.3).
	C float64
	// Seed drives all randomness.
	Seed uint64
	// MaxRetries re-runs the randomized stages when the audited design
	// misses the paper's end-to-end guarantee (weight ≥ W/4,
	// fanout ≤ 4F). Default 8.
	MaxRetries int
	// ForcePathRounding uses the §6.5 path rounding even without
	// colors/edge capacities (for ablation experiments).
	ForcePathRounding bool
	// DisableCuttingPlane drops constraint (4) from the LP (ablation;
	// Claim 2.1 shows the IP doesn't need it, §4 shows the rounding does).
	DisableCuttingPlane bool
	// LPOnly stops after the LP relaxation (used by experiments that
	// only need the fractional optimum).
	LPOnly bool
	// RepairCoverage runs the §7-style greedy repair pass after
	// rounding, topping every sink up to its FULL weight demand where
	// capacity admits (colors stay hard, fanout ≤ 4F). The paper's
	// guarantee is W/4; operators want W — this is the bridge.
	RepairCoverage bool
}

// DefaultOptions returns the paper's constants.
func DefaultOptions(seed uint64) Options {
	return Options{C: 64, Seed: seed, MaxRetries: 8}
}

// Timings records per-stage wall-clock durations (T7 evidence that the LP
// solve dominates, §5.1).
type Timings struct {
	LP        time.Duration
	Rounding  time.Duration
	Integral  time.Duration
	LPPivots  int
	TotalVars int
	TotalRows int
}

// Result is the outcome of Solve.
type Result struct {
	Design *netmodel.Design
	Audit  netmodel.Audit
	// Frac is the LP optimum; LPCost its objective (the lower bound on
	// OPT used in every approximation-ratio experiment).
	Frac   *lpmodel.FracSolution
	LPCost float64
	// RoundedCost is the §3 stage cost; RoundInst its lemma-by-lemma
	// instrumentation.
	RoundedCost float64
	RoundInst   round.Instrumentation
	// PathRounding reports whether §6.5 replaced the §5 GAP stage.
	PathRounding bool
	// STResult is set when path rounding ran.
	STResult *stround.Result
	// GAPResult is set when the §5 flow rounding ran.
	GAPResult *gapflow.Result
	Retries   int
	Timings   Timings
}

// Solve runs the full algorithm.
func Solve(in *netmodel.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.C == 0 {
		opts.C = 64
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 8
	}

	lpOpts := lpmodel.DefaultOptions(in)
	lpOpts.CuttingPlane = !opts.DisableCuttingPlane

	t0 := time.Now()
	prob, _ := lpmodel.Build(in, lpOpts)
	frac, err := lpmodel.SolveLP(in, lpOpts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	lpTime := time.Since(t0)

	res := &Result{
		Frac:   frac,
		LPCost: frac.Cost,
		Timings: Timings{
			LP:        lpTime,
			LPPivots:  frac.Iterations,
			TotalVars: prob.NumVars(),
			TotalRows: prob.NumRows(),
		},
	}
	if opts.LPOnly {
		return res, nil
	}

	usePath := opts.ForcePathRounding || in.Color != nil || in.EdgeCap != nil

	var best *Result
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		seed := opts.Seed + uint64(attempt)*0x9e3779b97f4a7c15

		tR := time.Now()
		rOpts := round.DefaultOptions(seed)
		rOpts.C = opts.C
		rounded := round.Apply(in, frac, rOpts)
		roundTime := time.Since(tR)

		tI := time.Now()
		design := netmodel.NewDesign(in)
		copyBools(design.Build, rounded.ZBar)
		for k := range rounded.YBar {
			copyBools(design.Ingest[k], rounded.YBar[k])
		}
		var gapRes *gapflow.Result
		var stRes *stround.Result
		if usePath {
			stRes, err = stround.Round(in, rounded.XBar, stround.DefaultOptions(seed^0xabcdef))
			if err != nil {
				return nil, fmt.Errorf("core: path rounding: %w", err)
			}
			for i := range stRes.Serve {
				copyBools(design.Serve[i], stRes.Serve[i])
			}
		} else {
			gapRes = gapflow.Round(in, rounded.XBar)
			for i := range gapRes.Serve {
				copyBools(design.Serve[i], gapRes.Serve[i])
			}
		}
		design.Normalize(in)
		if opts.RepairCoverage {
			RepairCoverage(in, design, 4)
		}
		integralTime := time.Since(tI)

		audit := netmodel.AuditDesign(in, design)
		cand := &Result{
			Design:       design,
			Audit:        audit,
			Frac:         frac,
			LPCost:       frac.Cost,
			RoundedCost:  rounded.Cost,
			RoundInst:    rounded.Instrument(in, frac.Cost),
			PathRounding: usePath,
			STResult:     stRes,
			GAPResult:    gapRes,
			Retries:      attempt,
			Timings:      res.Timings,
		}
		cand.Timings.Rounding = roundTime
		cand.Timings.Integral = integralTime

		if best == nil || betterResult(cand, best) {
			best = cand
		}
		if meetsGuarantee(audit, usePath) {
			return cand, nil
		}
	}
	return best, nil
}

// meetsGuarantee checks the paper's end-to-end bounds: every sink keeps at
// least a quarter of its weight demand and no reflector exceeds 4× fanout
// (§5 summary). Path rounding promises additive-7 violations instead of the
// multiplicative-4 fanout bound, so accept either form there.
func meetsGuarantee(a netmodel.Audit, pathRounding bool) bool {
	if a.WeightFactor < 0.25-1e-9 {
		return false
	}
	if !pathRounding {
		return a.FanoutFactor <= 4+1e-9
	}
	return true
}

func betterResult(a, b *Result) bool {
	if a.Audit.WeightFactor != b.Audit.WeightFactor {
		return a.Audit.WeightFactor > b.Audit.WeightFactor
	}
	if a.Audit.FanoutFactor != b.Audit.FanoutFactor {
		return a.Audit.FanoutFactor < b.Audit.FanoutFactor
	}
	return a.Audit.Cost < b.Audit.Cost
}

func copyBools(dst, src []bool) {
	copy(dst, src)
}

// ApproxRatio returns the cost ratio of the design versus the LP lower
// bound (an upper bound on the true approximation ratio).
func (r *Result) ApproxRatio() float64 {
	if r.LPCost <= 0 {
		return math.Inf(1)
	}
	return r.Audit.Cost / r.LPCost
}
