package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/netmodel"
)

func TestRepairReachesFullDemand(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		in := gen.Uniform(gen.DefaultUniform(2, 8, 16), seed)
		opts := DefaultOptions(seed * 3)
		opts.RepairCoverage = true
		res, err := Solve(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		a := res.Audit
		if a.WeightFactor < 1-1e-9 {
			// Repair can only fall short when capacity is exhausted;
			// verify that is actually the case (no admissible arc
			// remains for the worst sink).
			j := a.WorstSink
			for i := 0; i < in.NumReflectors; i++ {
				if res.Design.Serve[i][j] || !in.ArcAllowed(i, j) {
					continue
				}
				// Mirror repair.go's admissibility: the arc adds the unit's
				// full LOAD (weight × stream bandwidth), not the bare stream
				// bandwidth — the two differ on weighted (aggregated) units.
				if res.Design.FanoutUse(in, i)+in.UnitLoad(j) > 4*in.Fanout[i] {
					continue
				}
				if in.CappedWeight(i, j) <= 1e-12 {
					continue
				}
				t.Fatalf("seed %d: repair stopped short with admissible arc (%d,%d) available", seed, i, j)
			}
		}
		if a.FanoutFactor > 4+1e-9 {
			t.Fatalf("seed %d: repair exceeded 4F: %v", seed, a.FanoutFactor)
		}
		if !a.StructureOK {
			t.Fatalf("seed %d: repair broke structure", seed)
		}
	}
}

func TestRepairRespectsColors(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 3, 5), 8)
	opts := DefaultOptions(4)
	opts.RepairCoverage = true
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Repair itself never adds a second same-color copy; the §6.5 stage
	// may leave at most its additive excess, which repair cannot worsen.
	if res.Audit.ColorExcess > res.STResult.MaxColorExcess {
		t.Fatalf("repair worsened color excess: %d > %d",
			res.Audit.ColorExcess, res.STResult.MaxColorExcess)
	}
}

func TestRepairOnEmptyDesign(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 5, 8), 3)
	d := netmodel.NewDesign(in)
	added := RepairCoverage(in, d, 4)
	if added == 0 {
		t.Fatal("repair of an empty design must add arcs")
	}
	a := netmodel.AuditDesign(in, d)
	if a.WeightFactor < 1-1e-9 {
		t.Fatalf("repair from scratch should fully cover here: %v", a.WeightFactor)
	}
	if !a.StructureOK {
		t.Fatal("structure broken")
	}
}

func TestRepairIdempotent(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 5, 8), 3)
	d := netmodel.NewDesign(in)
	RepairCoverage(in, d, 4)
	cost := d.Cost(in)
	if added := RepairCoverage(in, d, 4); added != 0 {
		t.Fatalf("second repair added %d arcs", added)
	}
	if d.Cost(in) != cost {
		t.Fatal("second repair changed cost")
	}
}

func TestSolveDeterministicInSeed(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 7, 12), 11)
	a, err := Solve(in, DefaultOptions(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(in, DefaultOptions(99))
	if err != nil {
		t.Fatal(err)
	}
	if a.Audit.Cost != b.Audit.Cost {
		t.Fatalf("same seed, different cost: %v vs %v", a.Audit.Cost, b.Audit.Cost)
	}
	for i := range a.Design.Serve {
		for j := range a.Design.Serve[i] {
			if a.Design.Serve[i][j] != b.Design.Serve[i][j] {
				t.Fatal("same seed, different design")
			}
		}
	}
}

func TestForcePathRoundingWithoutColors(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 5, 8), 4)
	opts := DefaultOptions(2)
	opts.ForcePathRounding = true
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PathRounding || res.STResult == nil {
		t.Fatal("ForcePathRounding ignored")
	}
	if res.Audit.WeightFactor < 0.25-1e-9 {
		t.Fatalf("path rounding broke weight guarantee: %v", res.Audit.WeightFactor)
	}
}

func TestTimingsPopulated(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 5, 8), 4)
	res, err := Solve(in, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.LP <= 0 || res.Timings.TotalVars == 0 || res.Timings.TotalRows == 0 {
		t.Fatalf("timings missing: %+v", res.Timings)
	}
}

func TestStagesPopulated(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 12), 3)
	opts := DefaultOptions(1)
	opts.RepairCoverage = true
	opts.StageMemStats = true
	res, err := Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"lp-build", "lp-solve", "round", "integralize", "repair", "audit"}
	got := map[string]StageStats{}
	for _, s := range res.Stages {
		got[s.Name] = s
	}
	for _, name := range want {
		s, ok := got[name]
		if !ok {
			t.Fatalf("stage %q missing from Result.Stages (have %v)", name, res.Stages)
		}
		if s.Runs < 1 {
			t.Fatalf("stage %q never ran", name)
		}
	}
	if got["lp-solve"].Wall <= 0 {
		t.Fatal("lp-solve stage has zero wall time")
	}
	// The tail stages run once per attempt.
	if got["round"].Runs != res.Retries+1 {
		t.Fatalf("round ran %d times, want %d", got["round"].Runs, res.Retries+1)
	}
	// Timings stays consistent with the stage view.
	if res.Timings.LP != got["lp-build"].Wall+got["lp-solve"].Wall {
		t.Fatal("Timings.LP disagrees with stage walls")
	}
}
