package core

import (
	"fmt"

	"repro/internal/netmodel"
)

// ReoptimizeResult reports a churn-aware re-solve.
type ReoptimizeResult struct {
	*Result
	// ArcChurn counts service arcs that differ from the prior design;
	// ReflectorChurn counts reflectors whose build state flipped. Every
	// changed arc is a viewer-visible stream re-pull, so operators
	// minimize churn alongside cost.
	ArcChurn, ReflectorChurn int
	// StreamChurn counts demand units (subscriptions) whose serving
	// reflector set changed; ViewerChurn weights those switches by the
	// real sink behind them — a 3-stream sink re-pulling one stream adds
	// 1/3, not 1 (netmodel.ViewerChurn). On single-stream instances
	// ViewerChurn is the number of sinks whose service moved.
	StreamChurn int
	ViewerChurn float64
}

// Reoptimize runs the solver on an updated instance (new measured losses or
// prices, §1.3's monitoring loop) while biasing toward the previously
// deployed design: arcs and reflectors already in service get their costs
// discounted by stickiness ∈ [0,1), so the LP prefers keeping streams where
// they are unless the network has genuinely shifted. stickiness = 0
// reproduces a cold solve; values around 0.3–0.5 are typical.
//
// Because only costs change between the deployed solve and the re-solve,
// the prior solve's simplex basis stays primal feasible for the new LP:
// set opts.WarmStart to the prior Result's WarmStartBasis() and the solver
// skips phase 1 entirely, restarting phase 2 from the near-optimal basis
// instead of from scratch. Churn re-solves then cost a handful of pivots.
//
// The returned audit and cost are evaluated against the TRUE (undiscounted)
// instance — the bias only steers the optimization.
//
// stickiness outside [0,1) is an error: 1 would zero the costs of the prior
// design (freezing it regardless of how the network moved) and negative
// values would penalize it, neither of which is a meaningful bias.
func Reoptimize(in *netmodel.Instance, prior *netmodel.Design, stickiness float64, opts Options) (*ReoptimizeResult, error) {
	if stickiness < 0 || stickiness >= 1 {
		return nil, fmt.Errorf("core: stickiness %g outside [0,1)", stickiness)
	}
	work := in
	if prior != nil && stickiness > 0 {
		work = in.Clone()
		keep := 1 - stickiness
		for i := range prior.Serve {
			if prior.Build[i] {
				work.ReflectorCost[i] *= keep
			}
			for j, s := range prior.Serve[i] {
				if s {
					work.RefSinkCost[i][j] *= keep
				}
			}
		}
		for k := range prior.Ingest {
			for i, y := range prior.Ingest[k] {
				if y {
					work.SrcRefCost[k][i] *= keep
				}
			}
		}
	}
	res, err := Solve(work, opts)
	if err != nil {
		return nil, err
	}
	out := &ReoptimizeResult{Result: res}
	// Re-audit against the true instance (costs were biased).
	out.Audit = netmodel.AuditDesign(in, res.Design)
	out.LPCost = res.LPCost // LP bound of the biased problem; informational
	if prior != nil {
		for i := range prior.Serve {
			if prior.Build[i] != res.Design.Build[i] {
				out.ReflectorChurn++
			}
			for j := range prior.Serve[i] {
				if prior.Serve[i][j] != res.Design.Serve[i][j] {
					out.ArcChurn++
				}
			}
		}
		out.ViewerChurn, out.StreamChurn = netmodel.ViewerChurn(in, prior, res.Design)
	}
	return out, nil
}
