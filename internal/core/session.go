package core

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Session is the re-solve loop of the §1.3 monitoring cycle: it carries the
// deployed design and the last simplex basis from epoch to epoch, so each
// Step is an incremental re-optimization instead of a cold solve. The live
// engine drives one Session per policy across a scenario timeline.
//
// A Session always solves with a fixed-shape LP (Options.LPFixedShape), so
// the carried basis stays warm-start compatible while sinks join and leave.
//
// With Options.IncrementalLP the Session additionally carries the BUILT LP
// across epochs: a persistent lpmodel.Patcher (or one per shard, inside the
// shard.State) rewrites only the coefficients churn touched instead of
// rebuilding the constraint matrix, turning the per-epoch model cost from
// O(instance) into O(delta). The contract is the delta flow: callers that
// mutate the instance between Steps must report the dirty sets through
// Observe — netmodel.Delta.Apply returns them — or the patched LP goes
// stale. The stickiness bias is handled internally: Step diffs the deployed
// design against the previous epoch's and feeds the flipped cost cells into
// the same dirty stream (netmodel.DiffDesigns).
type Session struct {
	// Stickiness is the cost discount applied to the deployed design on
	// every Step (see Reoptimize); must be in [0,1).
	Stickiness float64
	// WarmStart re-seeds each Step's simplex from the previous Step's
	// final basis. Off means every epoch solves the LP from scratch.
	WarmStart bool

	opts  Options
	prior *netmodel.Design
	basis *lp.Basis
	// shardState is the sharded-path analogue of basis: the partition,
	// capacity split, per-shard bases, and per-shard patchers of the
	// previous epoch (nil when the session solves monolithically, see
	// Options.Shards).
	shardState *shard.State
	steps      int

	// patcher is the monolithic incremental-rebuild state; pending
	// accumulates dirty sets reported via Observe since the last Step;
	// lastBias remembers which design's arcs were discounted in the
	// previous Step's LP, so the next Step can patch exactly the flips.
	patcher  *lpmodel.Patcher
	pending  *netmodel.DirtySet
	lastBias *netmodel.Design

	// aggState / aggPrior are the aggregation plane (Options.Aggregate):
	// the persistent viewer→super-sink fold, built lazily on the first
	// Step, and the previously deployed AGGREGATE design — the plane the
	// stickiness bias, the warm basis, the shard state and the Patcher all
	// live on. s.prior stays the TRUE design: churn and the deployed view
	// are always reported against real viewers.
	aggState *agg.State
	aggPrior *netmodel.Design
}

// NewSession returns a fresh session; the first Step is a cold solve.
func NewSession(opts Options, stickiness float64, warmStart bool) *Session {
	opts.LPFixedShape = true
	s := &Session{Stickiness: stickiness, WarmStart: warmStart, opts: opts}
	if opts.IncrementalLP && opts.Shards < 2 {
		s.patcher = lpmodel.NewPatcher()
	}
	return s
}

// Steps returns how many epochs the session has solved.
func (s *Session) Steps() int { return s.steps }

// Deployed returns the currently deployed design (nil before the first Step).
func (s *Session) Deployed() *netmodel.Design { return s.prior }

// Incremental reports whether the session patches its LP in place.
func (s *Session) Incremental() bool { return s.opts.IncrementalLP }

// SetObserver replaces the observability sink of subsequent Steps. The live
// engine calls it once per epoch with an observer derived from that epoch's
// trace span, so the core stage spans nest under the right epoch.
func (s *Session) SetObserver(o *obs.Observer) { s.opts.Obs = o }

// Observe records a mutation of the instance the session is tracking, as a
// dirty set (typically the return of netmodel.Delta.Apply). The accumulated
// set drives the next Step's lp-patch stage; without IncrementalLP it is a
// no-op. Observing a superset of the real changes is always safe.
// Under Options.Aggregate the dirty sets additionally keep the persistent
// aggregation in sync, so reporting them is required there regardless of
// IncrementalLP — an unreported mutation would leave the aggregate instance
// summarizing stale member state.
func (s *Session) Observe(ds *netmodel.DirtySet) {
	if (!s.opts.IncrementalLP && s.opts.Aggregate == nil) || ds.Empty() {
		return
	}
	if s.pending == nil {
		s.pending = &netmodel.DirtySet{}
	}
	s.pending.Merge(ds)
}

// Step re-optimizes against the instance's current state — the caller
// applies the epoch's deltas to in beforehand (reporting them via Observe
// under IncrementalLP) — and deploys the result. The returned churn counts
// compare against the previous epoch's design.
func (s *Session) Step(in *netmodel.Instance) (*ReoptimizeResult, error) {
	if s.opts.Aggregate != nil {
		return s.stepAggregated(in)
	}
	opts := s.opts
	if s.WarmStart {
		opts.WarmStart = s.basis
		opts.ShardState = s.shardState
	} else {
		// A cold session must not inherit a caller-supplied basis either:
		// cold means every epoch's simplex starts from scratch — including
		// the sharded path's partition and capacity split.
		opts.WarmStart = nil
		opts.ShardState = nil
	}
	if opts.IncrementalLP {
		dirty := s.pending
		s.pending = nil
		// The stickiness discount moves with the deployed design: cost
		// cells enter or leave the discounted set exactly where the new
		// bias design differs from the previous epoch's. Those flips are
		// instance changes the delta flow never sees, so they join the
		// dirty stream here.
		var bias *netmodel.Design
		if s.Stickiness > 0 {
			bias = s.prior
		}
		if flips := netmodel.DiffDesigns(s.lastBias, bias); flips != nil {
			opts.Obs.Counter(obs.MBiasFlips).Add(float64(flips.Size()))
			if dirty == nil {
				dirty = &netmodel.DirtySet{}
			}
			dirty.Merge(flips)
		}
		s.lastBias = bias
		opts.patcher = s.patcher
		opts.patchDirty = dirty
	}
	// Per-epoch seed decorrelates the randomized rounding across epochs
	// while keeping the whole timeline a pure function of the base seed.
	// The mixing constant deliberately differs from Solve's per-retry
	// increment so (epoch, attempt) pairs never replay each other's seeds.
	opts.Seed = s.opts.Seed + uint64(s.steps)*0xbf58476d1ce4e5b9
	// With no prior deployment Reoptimize applies no bias; the stickiness
	// still gets range-checked there, so an invalid policy fails on the
	// first step instead of being silently coerced.
	res, err := Reoptimize(in, s.prior, s.Stickiness, opts)
	if err != nil {
		return nil, err
	}
	s.prior = res.Design
	s.basis = res.WarmStartBasis()
	s.shardState = res.ShardState
	s.steps++
	return res, nil
}

// stepAggregated is Step on the aggregation plane (Options.Aggregate): the
// epoch's accumulated dirty sets are folded through the persistent
// viewer→super-sink state, the ordinary re-optimization — stickiness bias,
// warm basis, shard state, incremental Patcher — runs entirely over the
// aggregate instance, and the solved aggregate design is disaggregated back
// to real viewers, sticky to the previous TRUE deployment. Churn and the
// audit are reported against the true instance; the aggregate / disaggregate
// stage walls bracket the inner pipeline's in Result.Stages.
func (s *Session) stepAggregated(in *netmodel.Instance) (*ReoptimizeResult, error) {
	tracker := newStageTracker(s.opts.StageMemStats, s.opts.Obs)
	ps := &pipelineState{in: in, opts: s.opts}

	var aggDirty *netmodel.DirtySet
	if err := tracker.run(Stage{Name: "aggregate", Run: func(*pipelineState) error {
		pending := s.pending
		s.pending = nil
		if s.aggState == nil {
			// First epoch: Build summarizes the instance's current state
			// directly, so dirt accumulated before it is already folded in.
			st, err := agg.Build(in, *s.opts.Aggregate)
			if err != nil {
				return err
			}
			s.aggState = st
			aggDirty = &netmodel.DirtySet{}
			return nil
		}
		aggDirty = s.aggState.Sync(in, pending)
		return nil
	}}, ps); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	recordAggShape(s.opts.Obs, s.aggState)

	opts := s.opts
	opts.Aggregate = nil
	if s.WarmStart {
		opts.WarmStart = s.basis
		opts.ShardState = s.shardState
	} else {
		opts.WarmStart = nil
		opts.ShardState = nil
	}
	lpFree := false
	if opts.IncrementalLP {
		dirty := aggDirty
		var bias *netmodel.Design
		if s.Stickiness > 0 {
			bias = s.aggPrior
		}
		if flips := netmodel.DiffDesigns(s.lastBias, bias); flips != nil {
			opts.Obs.Counter(obs.MBiasFlips).Add(float64(flips.Size()))
			dirty.Merge(flips)
		}
		s.lastBias = bias
		opts.patcher = s.patcher
		opts.patchDirty = dirty
		lpFree = s.steps > 0 && dirty.Empty()
	}
	if o := s.opts.Obs; o != nil && o.Reg != nil {
		o.Counter(obs.MAggWeightChanges).Add(float64(len(aggDirty.SinkWeight)))
		if lpFree {
			o.Counter(obs.MAggLPFreeEpochs).Inc()
		}
	}
	opts.Seed = s.opts.Seed + uint64(s.steps)*0xbf58476d1ce4e5b9

	res, err := Reoptimize(s.aggState.Agg, s.aggPrior, s.Stickiness, opts)
	if err != nil {
		return nil, err
	}
	aggDesign := res.Design

	if err := tracker.run(Stage{Name: "disaggregate", Run: func(*pipelineState) error {
		res.Design = s.aggState.Disaggregate(in, aggDesign, s.prior)
		res.Audit = netmodel.AuditDesign(in, res.Design)
		return nil
	}}, ps); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Churn against the previous TRUE deployment (the aggregate plane's
	// churn numbers from Reoptimize describe super-sinks, not viewers).
	res.ArcChurn, res.ReflectorChurn = 0, 0
	if s.prior != nil {
		for i := range s.prior.Serve {
			if s.prior.Build[i] != res.Design.Build[i] {
				res.ReflectorChurn++
			}
			for j := range s.prior.Serve[i] {
				if s.prior.Serve[i][j] != res.Design.Serve[i][j] {
					res.ArcChurn++
				}
			}
		}
		res.ViewerChurn, res.StreamChurn = netmodel.ViewerChurn(in, s.prior, res.Design)
	} else {
		res.ViewerChurn, res.StreamChurn = 0, 0
	}

	stages := make([]StageStats, 0, len(res.Stages)+2)
	stages = append(stages, tracker.stats[0])
	stages = append(stages, res.Stages...)
	stages = append(stages, tracker.stats[1])
	res.Stages = stages

	s.prior = res.Design
	s.aggPrior = aggDesign
	s.basis = res.WarmStartBasis()
	s.shardState = res.ShardState
	s.steps++
	return res, nil
}
