package core

import (
	"repro/internal/lp"
	"repro/internal/netmodel"
	"repro/internal/shard"
)

// Session is the re-solve loop of the §1.3 monitoring cycle: it carries the
// deployed design and the last simplex basis from epoch to epoch, so each
// Step is an incremental re-optimization instead of a cold solve. The live
// engine drives one Session per policy across a scenario timeline.
//
// A Session always solves with a fixed-shape LP (Options.LPFixedShape), so
// the carried basis stays warm-start compatible while sinks join and leave.
type Session struct {
	// Stickiness is the cost discount applied to the deployed design on
	// every Step (see Reoptimize); must be in [0,1).
	Stickiness float64
	// WarmStart re-seeds each Step's simplex from the previous Step's
	// final basis. Off means every epoch solves the LP from scratch.
	WarmStart bool

	opts  Options
	prior *netmodel.Design
	basis *lp.Basis
	// shardState is the sharded-path analogue of basis: the partition,
	// capacity split, and per-shard bases of the previous epoch (nil when
	// the session solves monolithically, see Options.Shards).
	shardState *shard.State
	steps      int
}

// NewSession returns a fresh session; the first Step is a cold solve.
func NewSession(opts Options, stickiness float64, warmStart bool) *Session {
	opts.LPFixedShape = true
	return &Session{Stickiness: stickiness, WarmStart: warmStart, opts: opts}
}

// Steps returns how many epochs the session has solved.
func (s *Session) Steps() int { return s.steps }

// Deployed returns the currently deployed design (nil before the first Step).
func (s *Session) Deployed() *netmodel.Design { return s.prior }

// Step re-optimizes against the instance's current state — the caller
// applies the epoch's deltas to in beforehand — and deploys the result. The
// returned churn counts compare against the previous epoch's design.
func (s *Session) Step(in *netmodel.Instance) (*ReoptimizeResult, error) {
	opts := s.opts
	if s.WarmStart {
		opts.WarmStart = s.basis
		opts.ShardState = s.shardState
	} else {
		// A cold session must not inherit a caller-supplied basis either:
		// cold means every epoch's simplex starts from scratch — including
		// the sharded path's partition and capacity split.
		opts.WarmStart = nil
		opts.ShardState = nil
	}
	// Per-epoch seed decorrelates the randomized rounding across epochs
	// while keeping the whole timeline a pure function of the base seed.
	// The mixing constant deliberately differs from Solve's per-retry
	// increment so (epoch, attempt) pairs never replay each other's seeds.
	opts.Seed = s.opts.Seed + uint64(s.steps)*0xbf58476d1ce4e5b9
	// With no prior deployment Reoptimize applies no bias; the stickiness
	// still gets range-checked there, so an invalid policy fails on the
	// first step instead of being silently coerced.
	res, err := Reoptimize(in, s.prior, s.Stickiness, opts)
	if err != nil {
		return nil, err
	}
	s.prior = res.Design
	s.basis = res.WarmStartBasis()
	s.shardState = res.ShardState
	s.steps++
	return res, nil
}
