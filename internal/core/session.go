package core

import (
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Session is the re-solve loop of the §1.3 monitoring cycle: it carries the
// deployed design and the last simplex basis from epoch to epoch, so each
// Step is an incremental re-optimization instead of a cold solve. The live
// engine drives one Session per policy across a scenario timeline.
//
// A Session always solves with a fixed-shape LP (Options.LPFixedShape), so
// the carried basis stays warm-start compatible while sinks join and leave.
//
// With Options.IncrementalLP the Session additionally carries the BUILT LP
// across epochs: a persistent lpmodel.Patcher (or one per shard, inside the
// shard.State) rewrites only the coefficients churn touched instead of
// rebuilding the constraint matrix, turning the per-epoch model cost from
// O(instance) into O(delta). The contract is the delta flow: callers that
// mutate the instance between Steps must report the dirty sets through
// Observe — netmodel.Delta.Apply returns them — or the patched LP goes
// stale. The stickiness bias is handled internally: Step diffs the deployed
// design against the previous epoch's and feeds the flipped cost cells into
// the same dirty stream (netmodel.DiffDesigns).
type Session struct {
	// Stickiness is the cost discount applied to the deployed design on
	// every Step (see Reoptimize); must be in [0,1).
	Stickiness float64
	// WarmStart re-seeds each Step's simplex from the previous Step's
	// final basis. Off means every epoch solves the LP from scratch.
	WarmStart bool

	opts  Options
	prior *netmodel.Design
	basis *lp.Basis
	// shardState is the sharded-path analogue of basis: the partition,
	// capacity split, per-shard bases, and per-shard patchers of the
	// previous epoch (nil when the session solves monolithically, see
	// Options.Shards).
	shardState *shard.State
	steps      int

	// patcher is the monolithic incremental-rebuild state; pending
	// accumulates dirty sets reported via Observe since the last Step;
	// lastBias remembers which design's arcs were discounted in the
	// previous Step's LP, so the next Step can patch exactly the flips.
	patcher  *lpmodel.Patcher
	pending  *netmodel.DirtySet
	lastBias *netmodel.Design
}

// NewSession returns a fresh session; the first Step is a cold solve.
func NewSession(opts Options, stickiness float64, warmStart bool) *Session {
	opts.LPFixedShape = true
	s := &Session{Stickiness: stickiness, WarmStart: warmStart, opts: opts}
	if opts.IncrementalLP && opts.Shards < 2 {
		s.patcher = lpmodel.NewPatcher()
	}
	return s
}

// Steps returns how many epochs the session has solved.
func (s *Session) Steps() int { return s.steps }

// Deployed returns the currently deployed design (nil before the first Step).
func (s *Session) Deployed() *netmodel.Design { return s.prior }

// Incremental reports whether the session patches its LP in place.
func (s *Session) Incremental() bool { return s.opts.IncrementalLP }

// SetObserver replaces the observability sink of subsequent Steps. The live
// engine calls it once per epoch with an observer derived from that epoch's
// trace span, so the core stage spans nest under the right epoch.
func (s *Session) SetObserver(o *obs.Observer) { s.opts.Obs = o }

// Observe records a mutation of the instance the session is tracking, as a
// dirty set (typically the return of netmodel.Delta.Apply). The accumulated
// set drives the next Step's lp-patch stage; without IncrementalLP it is a
// no-op. Observing a superset of the real changes is always safe.
func (s *Session) Observe(ds *netmodel.DirtySet) {
	if !s.opts.IncrementalLP || ds.Empty() {
		return
	}
	if s.pending == nil {
		s.pending = &netmodel.DirtySet{}
	}
	s.pending.Merge(ds)
}

// Step re-optimizes against the instance's current state — the caller
// applies the epoch's deltas to in beforehand (reporting them via Observe
// under IncrementalLP) — and deploys the result. The returned churn counts
// compare against the previous epoch's design.
func (s *Session) Step(in *netmodel.Instance) (*ReoptimizeResult, error) {
	opts := s.opts
	if s.WarmStart {
		opts.WarmStart = s.basis
		opts.ShardState = s.shardState
	} else {
		// A cold session must not inherit a caller-supplied basis either:
		// cold means every epoch's simplex starts from scratch — including
		// the sharded path's partition and capacity split.
		opts.WarmStart = nil
		opts.ShardState = nil
	}
	if opts.IncrementalLP {
		dirty := s.pending
		s.pending = nil
		// The stickiness discount moves with the deployed design: cost
		// cells enter or leave the discounted set exactly where the new
		// bias design differs from the previous epoch's. Those flips are
		// instance changes the delta flow never sees, so they join the
		// dirty stream here.
		var bias *netmodel.Design
		if s.Stickiness > 0 {
			bias = s.prior
		}
		if flips := netmodel.DiffDesigns(s.lastBias, bias); flips != nil {
			opts.Obs.Counter(obs.MBiasFlips).Add(float64(flips.Size()))
			if dirty == nil {
				dirty = &netmodel.DirtySet{}
			}
			dirty.Merge(flips)
		}
		s.lastBias = bias
		opts.patcher = s.patcher
		opts.patchDirty = dirty
	}
	// Per-epoch seed decorrelates the randomized rounding across epochs
	// while keeping the whole timeline a pure function of the base seed.
	// The mixing constant deliberately differs from Solve's per-retry
	// increment so (epoch, attempt) pairs never replay each other's seeds.
	opts.Seed = s.opts.Seed + uint64(s.steps)*0xbf58476d1ce4e5b9
	// With no prior deployment Reoptimize applies no bias; the stickiness
	// still gets range-checked there, so an invalid policy fails on the
	// first step instead of being silently coerced.
	res, err := Reoptimize(in, s.prior, s.Stickiness, opts)
	if err != nil {
		return nil, err
	}
	s.prior = res.Design
	s.basis = res.WarmStartBasis()
	s.shardState = res.ShardState
	s.steps++
	return res, nil
}
