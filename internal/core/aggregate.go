package core

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// solveAggregated is the one-shot aggregated pipeline: fold viewers into
// weighted super-sinks (internal/agg), run the ordinary pipeline — sharded
// or monolithic — over the aggregate instance, then disaggregate the design
// back to real viewers and re-audit against the true instance. The
// aggregate and disaggregate stage walls join Result.Stages around the
// inner pipeline's. Session epochs use the persistent-state variant in
// session.go instead; this path rebuilds the aggregation from scratch.
func solveAggregated(in *netmodel.Instance, opts Options) (*Result, error) {
	tracker := newStageTracker(opts.StageMemStats, opts.Obs)
	ps := &pipelineState{in: in, opts: opts}

	var st *agg.State
	if err := tracker.run(Stage{Name: "aggregate", Run: func(*pipelineState) error {
		var err error
		st, err = agg.Build(in, *opts.Aggregate)
		return err
	}}, ps); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	recordAggShape(opts.Obs, st)

	inner := opts
	inner.Aggregate = nil
	var res *Result
	var err error
	if inner.Shards >= 2 && st.Agg.NumViewers() >= 2 && !inner.LPOnly {
		res, err = solveSharded(st.Agg, inner)
	} else {
		res, err = solveMono(st.Agg, inner)
	}
	if err != nil {
		return nil, err
	}
	if opts.LPOnly {
		res.Stages = append(tracker.stats, res.Stages...)
		return res, nil
	}

	if err := tracker.run(Stage{Name: "disaggregate", Run: func(*pipelineState) error {
		res.Design = st.Disaggregate(in, res.Design, nil)
		res.Audit = netmodel.AuditDesign(in, res.Design)
		return nil
	}}, ps); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	stages := make([]StageStats, 0, len(res.Stages)+2)
	stages = append(stages, tracker.stats[0])
	stages = append(stages, res.Stages...)
	stages = append(stages, tracker.stats[1])
	res.Stages = stages
	return res, nil
}

// recordAggShape publishes the aggregation's fold factor to the registry.
func recordAggShape(o *obs.Observer, st *agg.State) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Gauge(obs.MAggGroups).Set(float64(st.Groups()))
	o.Gauge(obs.MAggUnits).Set(float64(st.Units()))
}
