package lp

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func solveOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Fatalf("returned point infeasible: %v", err)
	}
	return sol
}

func TestSimpleLP(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6, x,y>=0  -> min -(x+y)
	// Optimum at intersection: x=8/5, y=6/5, value 14/5.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.SetObjectiveCoef(1, -1)
	p.AddConstraint(LE, 4, Coef{0, 1}, Coef{1, 2})
	p.AddConstraint(LE, 6, Coef{0, 3}, Coef{1, 1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.Objective, -14.0/5, 1e-8) {
		t.Fatalf("objective = %v, want -2.8", sol.Objective)
	}
	if !almostEq(sol.X[0], 1.6, 1e-8) || !almostEq(sol.X[1], 1.2, 1e-8) {
		t.Fatalf("x = %v, want [1.6 1.2]", sol.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y=10, x>=3, y>=2 (as GE rows), x,y>=0.
	// Optimum: maximize x (cheaper): x=8, y=2, cost 22.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 2)
	p.SetObjectiveCoef(1, 3)
	p.AddConstraint(EQ, 10, Coef{0, 1}, Coef{1, 1})
	p.AddConstraint(GE, 3, Coef{0, 1})
	p.AddConstraint(GE, 2, Coef{1, 1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.Objective, 22, 1e-8) {
		t.Fatalf("objective = %v, want 22", sol.Objective)
	}
}

func TestBoundedVariables(t *testing.T) {
	// min -x-2y with 0<=x<=1, 0<=y<=1, x+y<=1.5.
	// Optimum y=1, x=0.5, value -2.5.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.SetObjectiveCoef(1, -2)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddConstraint(LE, 1.5, Coef{0, 1}, Coef{1, 1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.Objective, -2.5, 1e-8) {
		t.Fatalf("objective = %v, want -2.5", sol.Objective)
	}
}

func TestShiftedLowerBounds(t *testing.T) {
	// min x+y with x>=2, y in [3,5], x+y>=7 -> x=2,y=5 or x=4,y=3: both 7.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.SetBounds(0, 2, math.Inf(1))
	p.SetBounds(1, 3, 5)
	p.AddConstraint(GE, 7, Coef{0, 1}, Coef{1, 1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.Objective, 7, 1e-8) {
		t.Fatalf("objective = %v, want 7", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 0, 1)
	p.AddConstraint(GE, 2, Coef{0, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEqualitySystem(t *testing.T) {
	// x+y=1 and x+y=2 simultaneously.
	p := NewProblem(2)
	p.AddConstraint(EQ, 1, Coef{0, 1}, Coef{1, 1})
	p.AddConstraint(EQ, 2, Coef{0, 1}, Coef{1, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x, x>=0 free above.
	p := NewProblem(1)
	p.SetObjectiveCoef(0, -1)
	p.AddConstraint(GE, 0, Coef{0, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classically degenerate LP (multiple constraints through the same
	// vertex). Beale-like cycling example; Bland fallback must save us.
	p := NewProblem(4)
	obj := []float64{-0.75, 150, -0.02, 6}
	for j, v := range obj {
		p.SetObjectiveCoef(j, v)
	}
	p.AddConstraint(LE, 0, Coef{0, 0.25}, Coef{1, -60}, Coef{2, -0.04}, Coef{3, 9})
	p.AddConstraint(LE, 0, Coef{0, 0.5}, Coef{1, -90}, Coef{2, -0.02}, Coef{3, 3})
	p.AddConstraint(LE, 1, Coef{2, 1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.Objective, -0.05, 1e-8) {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// Rows with negative rhs exercise the artificial-variable paths.
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := NewProblem(1)
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint(LE, -3, Coef{0, -1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.X[0], 3, 1e-8) {
		t.Fatalf("x = %v, want 3", sol.X[0])
	}
}

func TestEqualityNegativeRHS(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint(EQ, -2, Coef{0, -1}, Coef{1, -1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.Objective, 2, 1e-8) {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestDuplicateCoefficientsSummed(t *testing.T) {
	// Same variable appearing twice in a row must sum: (1+1)x <= 4.
	p := NewProblem(1)
	p.SetObjectiveCoef(0, -1)
	p.SetBounds(0, 0, 10)
	p.AddConstraint(LE, 4, Coef{0, 1}, Coef{0, 1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.X[0], 2, 1e-8) {
		t.Fatalf("x = %v, want 2", sol.X[0])
	}
}

func TestFixedVariable(t *testing.T) {
	// lo == hi pins the variable.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.SetBounds(0, 2.5, 2.5)
	p.AddConstraint(GE, 4, Coef{0, 1}, Coef{1, 1})
	sol := solveOptimal(t, p)
	if !almostEq(sol.X[0], 2.5, 1e-9) || !almostEq(sol.Objective, 4, 1e-8) {
		t.Fatalf("x=%v obj=%v, want x0=2.5 obj=4", sol.X, sol.Objective)
	}
}

func TestEmptyBoundRangeRejected(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 1, 0)
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for empty bound range")
	}
}

// TestRandomLPsAgainstVertexEnumeration cross-checks the simplex against a
// brute-force enumeration of basic feasible points for small random box-
// constrained LPs. Every variable is bounded, so the optimum is attained at
// a point where n linearly independent constraints (rows or bounds) are
// tight; we enumerate all candidate tight sets.
func TestRandomLPsAgainstVertexEnumeration(t *testing.T) {
	rng := stats.NewRNG(7)
	const nVars = 3
	for trial := 0; trial < 120; trial++ {
		p := NewProblem(nVars)
		for j := 0; j < nVars; j++ {
			p.SetObjectiveCoef(j, rng.Range(-2, 2))
			p.SetBounds(j, 0, rng.Range(0.5, 2))
		}
		nRows := 2 + rng.Intn(3)
		var rows []rowRec
		for r := 0; r < nRows; r++ {
			a := make([]float64, nVars)
			coefs := make([]Coef, nVars)
			for j := 0; j < nVars; j++ {
				a[j] = rng.Range(-1, 1)
				coefs[j] = Coef{j, a[j]}
			}
			rel := LE
			if rng.Bernoulli(0.3) {
				rel = GE
			}
			rhs := rng.Range(-0.5, 1.5)
			rows = append(rows, rowRec{a, rel, rhs})
			p.AddConstraint(rel, rhs, coefs...)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best, found := bruteForceOptimum(p, rows, nVars)
		if sol.Status == Infeasible {
			if found {
				t.Fatalf("trial %d: simplex says infeasible but brute force found %v", trial, best)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !found {
			t.Fatalf("trial %d: simplex found optimum %v but brute force found nothing", trial, sol.Objective)
		}
		if sol.Objective > best+1e-6 {
			t.Fatalf("trial %d: simplex %.9f worse than brute force %.9f", trial, sol.Objective, best)
		}
		if sol.Objective < best-1e-6 {
			t.Fatalf("trial %d: simplex %.9f better than brute force %.9f (enumeration bug?)", trial, sol.Objective, best)
		}
	}
}

type rowRec struct {
	a   []float64
	rel Rel
	rhs float64
}

type plane struct {
	a   []float64
	rhs float64
}

// bruteForceOptimum enumerates candidate vertices: all choices of nVars
// tight hyperplanes among rows (as equalities) and variable bounds, solves
// the tiny linear system, keeps feasible points, returns the best objective.
func bruteForceOptimum(p *Problem, rows []rowRec, nVars int) (float64, bool) {
	// Build the pool of hyperplanes: each row, and each bound.
	var planes []plane
	for _, r := range rows {
		planes = append(planes, plane{r.a, r.rhs})
	}
	for j := 0; j < nVars; j++ {
		lo := make([]float64, nVars)
		lo[j] = 1
		planes = append(planes, plane{lo, p.lo[j]})
		hi := make([]float64, nVars)
		hi[j] = 1
		planes = append(planes, plane{hi, p.hi[j]})
	}
	best := math.Inf(1)
	found := false
	n := len(planes)
	idx := make([]int, nVars)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == nVars {
			x, ok := solve3(planes, idx, nVars)
			if !ok {
				return
			}
			if p.CheckFeasible(x, 1e-7) != nil {
				return
			}
			obj := 0.0
			for j := 0; j < nVars; j++ {
				obj += p.obj[j] * x[j]
			}
			if obj < best {
				best = obj
				found = true
			}
			return
		}
		for i := start; i < n; i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// solve3 solves the nVars×nVars system given by the selected planes via
// Gaussian elimination with partial pivoting.
func solve3(planes []plane, idx []int, n int) ([]float64, bool) {
	A := make([][]float64, n)
	b := make([]float64, n)
	for r := 0; r < n; r++ {
		A[r] = append([]float64(nil), planes[idx[r]].a...)
		b[r] = planes[idx[r]].rhs
	}
	for col := 0; col < n; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < n; r++ {
			if a := math.Abs(A[r][col]); a > pv {
				piv, pv = r, a
			}
		}
		if piv < 0 {
			return nil, false
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / A[col][col]
		for j := col; j < n; j++ {
			A[col][j] *= inv
		}
		b[col] *= inv
		for r := 0; r < n; r++ {
			if r == col || A[r][col] == 0 {
				continue
			}
			f := A[r][col]
			for j := col; j < n; j++ {
				A[r][j] -= f * A[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	return b, true
}

// TestRandomFeasibleNeverBeatsSimplex: generate random LPs with a known
// feasible region, sample many random feasible points, and check none beats
// the simplex optimum. Catches premature-optimality bugs at larger sizes
// than the vertex enumeration can handle.
func TestRandomFeasibleNeverBeatsSimplex(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 40; trial++ {
		nVars := 4 + rng.Intn(5)
		p := NewProblem(nVars)
		for j := 0; j < nVars; j++ {
			p.SetObjectiveCoef(j, rng.Range(-3, 3))
			p.SetBounds(j, 0, 1)
		}
		// Constraints of the form Σ a_j x_j <= b with b generous enough
		// that x=0 is feasible, plus a covering row keeping it bounded
		// away from triviality: Σ x_j >= 1.
		nRows := 3 + rng.Intn(4)
		for r := 0; r < nRows; r++ {
			coefs := make([]Coef, nVars)
			for j := 0; j < nVars; j++ {
				coefs[j] = Coef{j, rng.Range(0, 1)}
			}
			p.AddConstraint(LE, rng.Range(1, float64(nVars)), coefs...)
		}
		cover := make([]Coef, nVars)
		for j := 0; j < nVars; j++ {
			cover[j] = Coef{j, 1}
		}
		p.AddConstraint(GE, 1, cover...)
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status == Infeasible {
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		for probe := 0; probe < 300; probe++ {
			x := make([]float64, nVars)
			for j := range x {
				x[j] = rng.Float64()
			}
			if p.CheckFeasible(x, 0) != nil {
				continue
			}
			obj := 0.0
			for j := range x {
				obj += p.obj[j] * x[j]
			}
			if obj < sol.Objective-1e-7 {
				t.Fatalf("trial %d: random feasible point %.9f beats simplex %.9f", trial, obj, sol.Objective)
			}
		}
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddConstraint(LE, 1.5, Coef{0, 1}, Coef{1, 1})
	sol, err := p.SolveOpts(Options{MaxIters: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// With a 1-iteration budget we may or may not reach optimality, but
	// the call must not hang or panic, and status must be sane.
	if sol.Status != Optimal && sol.Status != IterLimit {
		t.Fatalf("status = %v", sol.Status)
	}
}

// TestIterationLimitNoRetry locks the recovery-ladder guard: IterLimit from
// a genuinely exhausted pivot budget must be returned as-is, without the
// alternate-pricing re-solve (that rung is for numerical breakdowns that
// stop LONG before the budget — re-burning the whole budget on a second
// pricing rule would double every deliberately budget-capped solve).
func TestIterationLimitNoRetry(t *testing.T) {
	const n = 12
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjectiveCoef(j, -1-0.01*float64(j))
		p.SetBounds(j, 0, 1)
		p.AddConstraint(LE, 0.75, Coef{j, 1})
	}
	full, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal || full.Iterations <= 4 {
		t.Fatalf("want a multi-pivot optimal baseline, got %v after %d iters", full.Status, full.Iterations)
	}
	const budget = 2
	sol, err := p.SolveOpts(Options{MaxIters: budget})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
	if sol.Iterations > budget {
		t.Fatalf("spent %d pivots on a %d-pivot budget — the exhausted solve must not retry", sol.Iterations, budget)
	}
}

// TestRowEquilibratedCloneSameLP locks the exactness of the last recovery
// rung: dividing each row by its largest coefficient is the SAME linear
// program, so the clone's optimum must satisfy the original rows and reach
// the original objective. The badly scaled rows here mirror the aggregate
// LPs that need the rung (O(10^3) unit loads against O(10) fanouts).
func TestRowEquilibratedCloneSameLP(t *testing.T) {
	rng := stats.NewRNG(17)
	p := NewProblem(8)
	for j := 0; j < 8; j++ {
		p.SetObjectiveCoef(j, rng.Range(1, 3))
		p.SetBounds(j, 0, 50)
	}
	for r := 0; r < 6; r++ {
		coefs := make([]Coef, 0, 4)
		for j := r % 3; j < 8; j += 3 {
			scale := 1.0
			if j%2 == 0 {
				scale = 1745 // an aggregate-sized unit load
			}
			coefs = append(coefs, Coef{j, scale * rng.Range(0.5, 2)})
		}
		p.AddConstraint(GE, 1745*rng.Range(1, 4), coefs...)
	}
	want, err := p.Solve()
	if err != nil || want.Status != Optimal {
		t.Fatalf("original solve: %v / %v", err, want)
	}
	q, _ := p.rowEquilibratedClone()
	got, err := q.Solve()
	if err != nil || got.Status != Optimal {
		t.Fatalf("clone solve: %v / %v", err, got)
	}
	if math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
		t.Fatalf("clone optimum %g != original %g", got.Objective, want.Objective)
	}
	// The clone's solution vector is a solution of the ORIGINAL problem —
	// row scaling never touches the variables.
	if err := p.CheckFeasible(got.X, 1e-6); err != nil {
		t.Fatalf("clone optimum infeasible for the original rows: %v", err)
	}
}

func TestSolutionStatusString(t *testing.T) {
	for s, want := range map[Status]string{Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded", IterLimit: "iteration-limit"} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Rel.String mismatch")
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := stats.NewRNG(5)
	nVars, nRows := 120, 80
	build := func() *Problem {
		p := NewProblem(nVars)
		for j := 0; j < nVars; j++ {
			p.SetObjectiveCoef(j, rng.Range(0.1, 2))
			p.SetBounds(j, 0, 1)
		}
		for r := 0; r < nRows; r++ {
			coefs := make([]Coef, 0, 10)
			for c := 0; c < 10; c++ {
				coefs = append(coefs, Coef{rng.Intn(nVars), rng.Range(0.1, 1)})
			}
			p.AddConstraint(GE, 0.5, coefs...)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := build()
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
