package lp

// Locks for basis/factorization serialization: a basis exported to JSON and
// restored onto an identically built Problem must warm-start exactly like
// the in-memory handle it came from (adoption fires, bit-identical solve),
// and corrupted payloads must be refused at restore time rather than fed to
// the solver.

import (
	"encoding/json"
	"testing"
)

// roundTrip pushes a BasisData through JSON, the way a snapshot file does.
func roundTrip(t *testing.T, d *BasisData) *BasisData {
	t.Helper()
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var out BasisData
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestBasisSerializeRoundTripAdopts is the headline lock: solve, export the
// optimal basis, round-trip it through JSON, rebuild the same Problem from
// scratch (a second randomCovering with the same seed — the restart case),
// restore, and warm-start. The restored chain must adopt the factorization
// (FTUpdates fires, zero refactorizations) and land bit-identically on the
// in-memory warm start: same objective, same iteration count, same point.
func TestBasisSerializeRoundTripAdopts(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		seed := uint64(5150 + trial)
		pMem := randomCovering(seed)
		first, err := pMem.Solve()
		if err != nil || first.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, first.Status, err)
		}
		if first.Basis == nil || first.Basis.Fact == nil {
			t.Fatalf("trial %d: optimal solve carried no factorization", trial)
		}

		data := roundTrip(t, first.Basis.Export())

		// The restart arm: an independently built, structurally identical
		// Problem, as the daemon rebuilds from its persisted instance.
		pNew := randomCovering(seed)
		restored, err := RestoreBasis(pNew, data)
		if err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		if restored.Fact == nil {
			t.Fatalf("trial %d: restore dropped the factorization", trial)
		}

		warmMem, err := pMem.SolveOpts(Options{WarmStart: first.Basis})
		if err != nil {
			t.Fatal(err)
		}
		warmNew, err := pNew.SolveOpts(Options{WarmStart: restored})
		if err != nil {
			t.Fatal(err)
		}
		if warmNew.Status != Optimal {
			t.Fatalf("trial %d: restored warm start: %v", trial, warmNew.Status)
		}
		if warmNew.Stats.FTUpdates != 1 {
			t.Fatalf("trial %d: restored warm start FTUpdates = %d, want 1 (adoption)",
				trial, warmNew.Stats.FTUpdates)
		}
		if warmNew.Stats.Refactorizations != 0 {
			t.Fatalf("trial %d: restored warm start refactorized %d times",
				trial, warmNew.Stats.Refactorizations)
		}
		if warmNew.Objective != warmMem.Objective {
			t.Fatalf("trial %d: restored objective %.17g != in-memory %.17g",
				trial, warmNew.Objective, warmMem.Objective)
		}
		if warmNew.Iterations != warmMem.Iterations {
			t.Fatalf("trial %d: restored pivots %d != in-memory %d",
				trial, warmNew.Iterations, warmMem.Iterations)
		}
		for j := range warmMem.X {
			if warmNew.X[j] != warmMem.X[j] {
				t.Fatalf("trial %d: x[%d] = %.17g restored vs %.17g in-memory",
					trial, j, warmNew.X[j], warmMem.X[j])
			}
		}
	}
}

// TestBasisSerializePatchedChainMatches runs the production shape: a
// snapshot taken mid-chain must let the restored arm continue the patched
// re-solve sequence bit-identically to the uninterrupted one.
func TestBasisSerializePatchedChainMatches(t *testing.T) {
	seed := uint64(6060)
	pA := randomCovering(seed) // uninterrupted
	pB := randomCovering(seed) // snapshot/restore at epoch 6
	solA, err := pA.Solve()
	if err != nil || solA.Status != Optimal {
		t.Fatalf("%v %v", solA.Status, err)
	}
	solB, err := pB.Solve()
	if err != nil {
		t.Fatal(err)
	}
	basisB := solB.Basis
	for e := 0; e < 12; e++ {
		if e == 6 {
			// "Restart": serialize the carried basis, rebuild the Problem by
			// replaying the same build+patch history, restore onto it.
			data := roundTrip(t, basisB.Export())
			pB = randomCovering(seed)
			for pe := 0; pe < e; pe++ {
				patchEpoch(pB, seed^uint64(pe)*0x9e3779b97f4a7c15)
			}
			basisB, err = RestoreBasis(pB, data)
			if err != nil {
				t.Fatalf("epoch %d restore: %v", e, err)
			}
		}
		eseed := seed ^ uint64(e)*0x9e3779b97f4a7c15
		patchEpoch(pA, eseed)
		patchEpoch(pB, eseed)
		solA, err = pA.SolveOpts(Options{WarmStart: solA.Basis})
		if err != nil {
			t.Fatal(err)
		}
		solB, err = pB.SolveOpts(Options{WarmStart: basisB})
		if err != nil {
			t.Fatal(err)
		}
		basisB = solB.Basis
		if solA.Status != solB.Status || solA.Objective != solB.Objective ||
			solA.Iterations != solB.Iterations {
			t.Fatalf("epoch %d: restored chain diverged: %v/%.17g/%d vs %v/%.17g/%d",
				e, solB.Status, solB.Objective, solB.Iterations,
				solA.Status, solA.Objective, solA.Iterations)
		}
	}
}

// TestRestoreBasisRejectsCorruptData: every locally checkable invariant
// violation must fail restore with an error, not reach the solver.
func TestRestoreBasisRejectsCorruptData(t *testing.T) {
	p := randomCovering(808)
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", sol.Status, err)
	}
	good := sol.Basis.Export()

	cases := []struct {
		name    string
		corrupt func(d *BasisData)
	}{
		{"wrong num_vars", func(d *BasisData) { d.NumVars++ }},
		{"wrong num_rows", func(d *BasisData) { d.NumRows++ }},
		{"short col_stat", func(d *BasisData) { d.ColStat = d.ColStat[:len(d.ColStat)-1] }},
		{"bad status value", func(d *BasisData) { d.ColStat[0] = 7 }},
		{"fact row mismatch", func(d *BasisData) { d.Fact.M++; d.NumRows++ }},
		{"short fact basis", func(d *BasisData) { d.Fact.Basis = d.Fact.Basis[:len(d.Fact.Basis)-1] }},
		{"basic column out of range", func(d *BasisData) { d.Fact.Basis[0] = -1 }},
		{"short art_sign", func(d *BasisData) { d.Fact.ArtSign = d.Fact.ArtSign[:len(d.Fact.ArtSign)-1] }},
		{"art_sign not ±1", func(d *BasisData) { d.Fact.ArtSign[0] = 2 }},
		{"eta pivot/value mismatch", func(d *BasisData) {
			d.Fact.Lower.PVal = append(d.Fact.Lower.PVal, 1)
		}},
		{"eta offsets wrong length", func(d *BasisData) {
			d.Fact.Lower.Start = append(d.Fact.Lower.Start, 0)
		}},
		{"eta pivot row out of range", func(d *BasisData) {
			if len(d.Fact.Lower.PRow) == 0 {
				t.Skip("empty lower eta file")
			}
			d.Fact.Lower.PRow[0] = int32(d.Fact.M)
		}},
		{"eta zero pivot", func(d *BasisData) {
			if len(d.Fact.Lower.PVal) == 0 {
				t.Skip("empty lower eta file")
			}
			d.Fact.Lower.PVal[0] = 0
		}},
		{"eta arena row out of range", func(d *BasisData) {
			if len(d.Fact.Lower.Idx) == 0 {
				t.Skip("empty lower eta arena")
			}
			d.Fact.Lower.Idx[0] = -1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := roundTrip(t, good) // deep copy via JSON
			tc.corrupt(d)
			if _, err := RestoreBasis(p, d); err == nil {
				t.Fatalf("restore accepted corrupt data (%s)", tc.name)
			}
		})
	}

	if _, err := RestoreBasis(nil, good); err == nil {
		t.Fatal("restore accepted nil problem")
	}
	if _, err := RestoreBasis(p, nil); err == nil {
		t.Fatal("restore accepted nil data")
	}
	if (*Basis)(nil).Export() != nil {
		t.Fatal("nil basis exported non-nil")
	}
	if (*Factorization)(nil).Export() != nil {
		t.Fatal("nil factorization exported non-nil")
	}

	// A factorization-free payload restores to a status-only warm start.
	statusOnly := roundTrip(t, good)
	statusOnly.Fact = nil
	b, err := RestoreBasis(p, statusOnly)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fact != nil {
		t.Fatal("status-only restore grew a factorization")
	}
	warm, err := p.SolveOpts(Options{WarmStart: b})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("status-only warm start: %v %v", warm.Status, err)
	}
}
