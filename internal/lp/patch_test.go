package lp

import (
	"math"
	"testing"
)

// buildPatchFixture returns a small LP with a precomputed CSC cache:
//
//	min  x0 + 2 x1 + 3 x2
//	s.t. x0 +   x1          >= 1
//	     2 x1 +  x2         <= 4
//	     x0 +   x2          ==  1
//	     0 <= x <= 2
func buildPatchFixture() *Problem {
	p := NewProblem(3)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 2)
	p.SetObjectiveCoef(2, 3)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 2)
	}
	p.AddConstraint(GE, 1, Coef{Var: 0, Val: 1}, Coef{Var: 1, Val: 1})
	p.AddConstraint(LE, 4, Coef{Var: 1, Val: 2}, Coef{Var: 2, Val: 1})
	p.AddConstraint(EQ, 1, Coef{Var: 0, Val: 1}, Coef{Var: 2, Val: 1})
	p.Precompute()
	return p
}

// TestSetRowCoefPatchesRowsAndCSC checks that in-place patches hit both the
// row storage and the cached CSC, and that a patched problem solves exactly
// like a freshly built problem with the same data.
func TestSetRowCoefPatchesRowsAndCSC(t *testing.T) {
	p := buildPatchFixture()
	if !p.SetRowCoef(0, 1, 3) { // x1 coefficient of row 0: 1 → 3
		t.Fatal("value change not reported")
	}
	if p.SetRowCoef(0, 1, 3) {
		t.Fatal("no-op patch reported as a change")
	}
	p.SetRHS(1, 2.5)
	p.SetObjectiveCoef(1, 0.5)
	if err := p.CheckCSCSync(); err != nil {
		t.Fatalf("CSC out of sync after patches: %v", err)
	}
	if c := p.RowCoef(0, 1); c.Var != 1 || c.Val != 3 {
		t.Fatalf("RowCoef(0,1) = %+v", c)
	}
	if rel, rhs := p.RHS(1); rel != LE || rhs != 2.5 {
		t.Fatalf("RHS(1) = %v %g", rel, rhs)
	}
	if p.ObjectiveCoef(1) != 0.5 {
		t.Fatalf("ObjectiveCoef(1) = %g", p.ObjectiveCoef(1))
	}

	// Fresh build with the same final data.
	q := NewProblem(3)
	q.SetObjectiveCoef(0, 1)
	q.SetObjectiveCoef(1, 0.5)
	q.SetObjectiveCoef(2, 3)
	for j := 0; j < 3; j++ {
		q.SetBounds(j, 0, 2)
	}
	q.AddConstraint(GE, 1, Coef{Var: 0, Val: 1}, Coef{Var: 1, Val: 3})
	q.AddConstraint(LE, 2.5, Coef{Var: 1, Val: 2}, Coef{Var: 2, Val: 1})
	q.AddConstraint(EQ, 1, Coef{Var: 0, Val: 1}, Coef{Var: 2, Val: 1})

	sp, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sq, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Status != Optimal || sq.Status != Optimal {
		t.Fatalf("status patched=%v fresh=%v", sp.Status, sq.Status)
	}
	if sp.Objective != sq.Objective {
		t.Fatalf("patched optimum %.17g != fresh %.17g", sp.Objective, sq.Objective)
	}
	for j := range sp.X {
		if math.Float64bits(sp.X[j]) != math.Float64bits(sq.X[j]) {
			t.Fatalf("x[%d]: patched %.17g != fresh %.17g", j, sp.X[j], sq.X[j])
		}
	}
	if sp.Iterations != sq.Iterations {
		t.Fatalf("patched pivots %d != fresh %d", sp.Iterations, sq.Iterations)
	}
}

// TestSetRowCoefZeroValueKeepsPattern: patching a coefficient to exactly 0
// keeps the entry in the pattern (a structural zero), so a later patch can
// restore it without rebuilding.
func TestSetRowCoefZeroValueKeepsPattern(t *testing.T) {
	p := buildPatchFixture()
	p.SetRowCoef(0, 0, 0)
	if err := p.CheckCSCSync(); err != nil {
		t.Fatal(err)
	}
	if p.RowLen(0) != 2 {
		t.Fatalf("row 0 has %d coefs, want 2", p.RowLen(0))
	}
	p.SetRowCoef(0, 0, 1)
	if err := p.CheckCSCSync(); err != nil {
		t.Fatal(err)
	}
	s, err := p.Solve()
	if err != nil || s.Status != Optimal {
		t.Fatalf("solve after zero/restore: %v %v", s.Status, err)
	}
}

// TestSetRowCoefDuplicateEntriesInvalidates: a row listing the same
// variable twice makes the CSC entry ambiguous; the patch must fall back to
// invalidating the cache instead of guessing, and the next solve rebuilds.
func TestSetRowCoefDuplicateEntriesInvalidates(t *testing.T) {
	p := NewProblem(1)
	p.SetObjectiveCoef(0, 1)
	p.SetBounds(0, 0, 10)
	p.AddConstraint(GE, 3, Coef{Var: 0, Val: 1}, Coef{Var: 0, Val: 1}) // 2*x0 >= 3
	p.Precompute()
	if !p.SetRowCoef(0, 0, 2) { // now 3*x0 >= 3
		t.Fatal("patch not applied")
	}
	if p.csc != nil {
		t.Fatal("ambiguous patch must invalidate the CSC cache")
	}
	s, err := p.MustSolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.X[0]-1) > 1e-9 {
		t.Fatalf("x0 = %g, want 1", s.X[0])
	}
}

// TestSetRHSRepricesWithoutCSCChange: rhs patches leave the cache untouched
// and change only the solved point.
func TestSetRHSRepricesWithoutCSCChange(t *testing.T) {
	p := buildPatchFixture()
	before, err := p.MustSolve()
	if err != nil {
		t.Fatal(err)
	}
	p.SetRHS(0, 1.5)
	if err := p.CheckCSCSync(); err != nil {
		t.Fatal(err)
	}
	after, err := p.MustSolve()
	if err != nil {
		t.Fatal(err)
	}
	if after.Objective <= before.Objective {
		t.Fatalf("tightened covering row did not raise the optimum: %g vs %g", after.Objective, before.Objective)
	}
}
