package lp

// The persistent basis factorization. A solve's final eta file used to die
// with the solver's working state: every warm start paid a full
// refactorization at install even when the basis — and the matrix — had not
// changed since the factorization was built. Factorization splits that state
// out into a handle that Solution.Basis carries across solves, so the
// re-optimization loop (lpmodel.Patcher keeping one Problem alive across
// epochs) can resume pivoting from the exact elimination form it left off
// with.
//
// The invalidation contract with the in-place patch API: the Problem stamps
// every structural column a SetRowCoef actually changed with a monotone
// patch version. A carried factorization is adoptable only when it was
// snapshotted from the SAME Problem and no column that is basic in it has
// been patched since the snapshot — a patched nonbasic column leaves B
// untouched, while a patched basic column changes B itself, so the eta file
// would invert a stale matrix. Adoption then installs the carried lower/
// upper/update files verbatim (a Forrest–Tomlin-style product form: later
// pivots keep appending update etas to the carried file instead of starting
// from a fresh refactorization), and the install refactorizes only when a
// patched column is currently basic, the handle belongs to a different
// Problem, or the carried update file has already outgrown the
// refactorization cadence.

// Factorization is the reusable eta-file basis state of a finished solve:
// the elimination-form factors (lower/upper from the last refactorization,
// the product-form updates appended since), the basis-to-row assignment they
// were built for (refactorization permutes it, so column statuses alone
// cannot reconstruct it), and the identity of the Problem and patch version
// they factorize. Snapshots reference the finished solver's arenas — a
// warm-starting solver copies them on adoption, so one handle can seed any
// number of re-solves.
type Factorization struct {
	m       int
	basis   []int     // basis[r] = column basic in row r at snapshot time
	artSign []float64 // artificial column signs the eta file was built under
	lower   *etaFile
	upper   *etaFile
	updates *etaFile

	prob *Problem // identity: adoption requires the very same Problem
	ver  uint64   // prob.patchVer at snapshot time
}

// UpdateEtas returns the number of product-form update etas the handle
// carries beyond its last refactorization (diagnostic: the drift-bound tests
// assert the refactorization cadence keeps this below Options.RefactorEvery).
func (f *Factorization) UpdateEtas() int {
	if f == nil {
		return 0
	}
	return f.updates.count()
}

// snapshotFactorization captures the solver's live factorization state. The
// eta files are referenced, not copied: the solver is finished and its state
// is dead, while adopters copy before mutating.
func (s *sparse) snapshotFactorization() *Factorization {
	return &Factorization{
		m:       s.m,
		basis:   append([]int(nil), s.basis...),
		artSign: append([]float64(nil), s.artSign...),
		lower:   s.lower,
		upper:   s.upper,
		updates: s.updates,
		prob:    s.p,
		ver:     s.p.patchVer,
	}
}

// adoptFactorization installs a carried factorization instead of
// refactorizing, when it is valid for the current problem state: same
// Problem and shape, a basic set agreeing with the statuses installWarm just
// loaded, and no structural column that is basic in the handle patched since
// the snapshot. Returns false when the caller must refactorize. On success
// the basic values are recomputed against the current rhs and bounds, and
// the carried update file — if it already outgrew the cadence — is collapsed
// by an immediate refactorization (the Forrest–Tomlin file cannot be allowed
// to grow without bound across epochs: the etaDrop truncation per eta would
// otherwise accumulate past the feasibility audit's tolerance).
func (s *sparse) adoptFactorization(f *Factorization) bool {
	if f == nil || f.prob != s.p || f.m != s.m || len(f.basis) != s.m || len(f.artSign) != s.m {
		return false
	}
	for _, c := range f.basis {
		if s.stat[c] != basic {
			return false
		}
		if c < s.n && s.p.colVer != nil && s.p.colVer[c] > f.ver {
			return false // patched basic column: B changed under the file
		}
	}
	copy(s.basis, f.basis)
	copy(s.artSign, f.artSign)
	s.lower.copyFrom(f.lower)
	s.upper.copyFrom(f.upper)
	s.updates.copyFrom(f.updates)
	s.stats.FTUpdates++
	s.emit(EventFTAdoption)
	if s.updates.count() >= s.refactorEvery {
		return s.refactor()
	}
	s.computeBeta()
	return true
}
