package lp

import "math"

// The persistent basis factorization. A solve's final eta file used to die
// with the solver's working state: every warm start paid a full
// refactorization at install even when the basis — and the matrix — had not
// changed since the factorization was built. Factorization splits that state
// out into a handle that Solution.Basis carries across solves, so the
// re-optimization loop (lpmodel.Patcher keeping one Problem alive across
// epochs) can resume pivoting from the exact elimination form it left off
// with.
//
// The invalidation contract with the in-place patch API: the Problem stamps
// every structural column a SetRowCoef actually changed with a monotone
// patch version. A carried factorization is adoptable only when it was
// snapshotted from the SAME Problem and no column that is basic in it has
// been patched since the snapshot — a patched nonbasic column leaves B
// untouched, while a patched basic column changes B itself, so the eta file
// would invert a stale matrix. Adoption then installs the carried lower/
// upper/update files verbatim (a Forrest–Tomlin-style product form: later
// pivots keep appending update etas to the carried file instead of starting
// from a fresh refactorization), and the install refactorizes only when a
// patched column is currently basic, the handle belongs to a different
// Problem, or the carried update file has already outgrown the
// refactorization cadence.

// Factorization is the reusable eta-file basis state of a finished solve:
// the elimination-form factors (lower/upper from the last refactorization,
// the product-form updates appended since), the basis-to-row assignment they
// were built for (refactorization permutes it, so column statuses alone
// cannot reconstruct it), and the identity of the Problem and patch version
// they factorize. Snapshots reference the finished solver's arenas — a
// warm-starting solver copies them on adoption, so one handle can seed any
// number of re-solves.
type Factorization struct {
	m       int
	basis   []int     // basis[r] = column basic in row r at snapshot time
	artSign []float64 // artificial column signs the eta file was built under
	lower   *etaFile
	upper   *etaFile
	updates *etaFile

	prob *Problem // identity: adoption requires the very same Problem
	ver  uint64   // prob.patchVer at snapshot time
}

// UpdateEtas returns the number of product-form update etas the handle
// carries beyond its last refactorization (diagnostic: the drift-bound tests
// assert the refactorization cadence keeps this below Options.RefactorEvery).
func (f *Factorization) UpdateEtas() int {
	if f == nil {
		return 0
	}
	return f.updates.count()
}

// snapshotFactorization captures the solver's live factorization state. The
// eta files are referenced, not copied: the solver is finished and its state
// is dead, while adopters copy before mutating.
func (s *sparse) snapshotFactorization() *Factorization {
	return &Factorization{
		m:       s.m,
		basis:   append([]int(nil), s.basis...),
		artSign: append([]float64(nil), s.artSign...),
		lower:   s.lower,
		upper:   s.upper,
		updates: s.updates,
		prob:    s.p,
		ver:     s.p.patchVer,
	}
}

// fingerprint hashes the constraint matrix of p — dimensions, sparsity
// pattern, relations, and coefficient values (FNV-1a over the row storage;
// rhs, bounds, and objective are deliberately excluded: they do not enter
// the basis matrix B). Two Problems with equal fingerprints factorize the
// same B for the same basic set, which is what lets a rebuilt-but-identical
// Problem adopt a factorization snapshotted from another (see
// adoptFactorization). Computed on demand and never cached: solves of a
// precomputed Problem may run concurrently, and a cache write here would
// race them.
func (p *Problem) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(p.n))
	mix(uint64(len(p.rows)))
	for _, rw := range p.rows {
		mix(uint64(rw.rel))
		mix(uint64(len(rw.coefs)))
		for _, c := range rw.coefs {
			mix(uint64(c.Var))
			mix(math.Float64bits(c.Val))
		}
	}
	return h
}

// adoptFactorization installs a carried factorization instead of
// refactorizing, when it is valid for the current problem state: a basic set
// agreeing with the statuses installWarm just loaded, and a basis matrix
// that provably has not changed under the eta file. Two routes establish
// that: the SAME Problem with no structural column that is basic in the
// handle patched since the snapshot (the Patcher path), or a DIFFERENT
// Problem whose constraint matrix fingerprints identically to the donor's —
// the rebuilt-but-identical-shape case, where the donor must itself be
// unpatched since the snapshot so its current fingerprint still describes
// the matrix the file was built from. Returns false when the caller must
// refactorize. On success the basic values are recomputed against the
// current rhs and bounds, and the carried update file — if it already
// outgrew the cadence — is collapsed by an immediate refactorization (the
// Forrest–Tomlin file cannot be allowed to grow without bound across epochs:
// the etaDrop truncation per eta would otherwise accumulate past the
// feasibility audit's tolerance).
func (s *sparse) adoptFactorization(f *Factorization) bool {
	if f == nil || f.m != s.m || len(f.basis) != s.m || len(f.artSign) != s.m {
		return false
	}
	sameProb := f.prob == s.p
	if !sameProb {
		if f.prob == nil || f.prob.patchVer != f.ver || f.prob.n != s.p.n ||
			f.prob.fingerprint() != s.p.fingerprint() {
			return false
		}
	}
	for _, c := range f.basis {
		if s.stat[c] != basic {
			return false
		}
		if sameProb && c < s.n && s.p.colVer != nil && s.p.colVer[c] > f.ver {
			return false // patched basic column: B changed under the file
		}
	}
	copy(s.basis, f.basis)
	copy(s.artSign, f.artSign)
	s.lower.copyFrom(f.lower)
	s.upper.copyFrom(f.upper)
	s.updates.copyFrom(f.updates)
	s.stats.FTUpdates++
	s.emit(EventFTAdoption)
	if s.updates.count() >= s.refactorEvery {
		return s.refactor()
	}
	// The matrix VALUES may have moved since the snapshot even though no
	// basic column did — nonbasic coefficient patches (the price-exchange
	// master rescaling contested capacity rows) and cross-Problem adoptions
	// both land here. The devex reference weights describe the pre-patch
	// pricing geometry; without a reset the re-solve can chase stale
	// steepest-edge estimates into a degenerate stall.
	if !sameProb || f.ver != s.p.patchVer {
		s.resetDevex()
	}
	s.computeBeta()
	return true
}
