package lp

import (
	"fmt"
	"math"
)

// Serialization of the warm-start state. A Basis (column statuses) plus its
// persistent Factorization (the eta-file elimination form of B⁻¹) is
// everything a re-solve needs to resume pivoting where a previous solve left
// off — but a Factorization is an in-memory handle tied to the identity of
// the Problem it was snapshotted from, so it cannot cross a process
// boundary by itself. These data types carry the state through JSON (or any
// other codec): Export captures the numeric payload, and RestoreBasis binds
// it to a Problem the caller has rebuilt, re-establishing the identity the
// adoption contract needs.
//
// The soundness obligation moves to the caller: RestoreBasis(p, d) declares
// that p's constraint matrix is the one the factorization was built from.
// The overlayd snapshot path discharges it by rebuilding the Problem
// deterministically from the persisted instance (lpmodel.Build is a pure
// function of the instance, and the Patcher keeps the live Problem
// semantically identical to that fresh build — golden-locked), so the
// restored eta file inverts exactly the matrix it describes. Restore
// validates everything checkable locally — shapes, index ranges, eta-file
// structure, finite values — and the end-to-end feasibility audit of the
// next solve backstops the rest: a stale factorization fails the audit and
// degrades to a refactorized cold start rather than returning garbage.

// EtaFileData is the serializable form of one eta file (see etaFile): a
// sequence of Gauss–Jordan elimination columns stored as a pivot list plus
// an off-pivot arena.
type EtaFileData struct {
	PRow  []int32   `json:"prow,omitempty"`
	PVal  []float64 `json:"pval,omitempty"`
	Start []int32   `json:"start"`
	Idx   []int32   `json:"idx,omitempty"`
	Val   []float64 `json:"val,omitempty"`
}

// FactorizationData is the serializable payload of a Factorization: the
// basis-to-row assignment, the artificial-column signs, and the three eta
// files (lower/upper factors from the last refactorization, product-form
// updates since).
type FactorizationData struct {
	M       int         `json:"m"`
	Basis   []int       `json:"basis"`
	ArtSign []float64   `json:"art_sign"`
	Lower   EtaFileData `json:"lower"`
	Upper   EtaFileData `json:"upper"`
	Updates EtaFileData `json:"updates"`
}

// BasisData is the serializable form of a Basis, factorization included.
type BasisData struct {
	NumVars int                `json:"num_vars"`
	NumRows int                `json:"num_rows"`
	ColStat []int8             `json:"col_stat"`
	Fact    *FactorizationData `json:"fact,omitempty"`
}

func exportEta(e *etaFile) EtaFileData {
	return EtaFileData{
		PRow:  append([]int32(nil), e.prow...),
		PVal:  append([]float64(nil), e.pval...),
		Start: append([]int32(nil), e.start...),
		Idx:   append([]int32(nil), e.idx...),
		Val:   append([]float64(nil), e.val...),
	}
}

// Export captures the factorization's numeric payload for serialization.
// Returns nil for a nil handle.
func (f *Factorization) Export() *FactorizationData {
	if f == nil {
		return nil
	}
	return &FactorizationData{
		M:       f.m,
		Basis:   append([]int(nil), f.basis...),
		ArtSign: append([]float64(nil), f.artSign...),
		Lower:   exportEta(f.lower),
		Upper:   exportEta(f.upper),
		Updates: exportEta(f.updates),
	}
}

// Export captures the basis (statuses plus factorization payload) for
// serialization. Returns nil for a nil basis.
func (b *Basis) Export() *BasisData {
	if b == nil {
		return nil
	}
	return &BasisData{
		NumVars: b.NumVars,
		NumRows: b.NumRows,
		ColStat: append([]int8(nil), b.ColStat...),
		Fact:    b.Fact.Export(),
	}
}

// checkEta validates the structural invariants of a serialized eta file
// against row count m.
func checkEta(name string, d EtaFileData, m int) error {
	k := len(d.PRow)
	if len(d.PVal) != k {
		return fmt.Errorf("lp: %s eta file: %d pivots but %d pivot values", name, k, len(d.PVal))
	}
	if len(d.Start) != k+1 {
		return fmt.Errorf("lp: %s eta file: %d pivots need %d offsets, have %d", name, k, k+1, len(d.Start))
	}
	if d.Start[0] != 0 {
		return fmt.Errorf("lp: %s eta file: first arena offset %d, want 0", name, d.Start[0])
	}
	if len(d.Idx) != len(d.Val) {
		return fmt.Errorf("lp: %s eta file: %d arena indices vs %d values", name, len(d.Idx), len(d.Val))
	}
	for i := 0; i < k; i++ {
		if d.Start[i] > d.Start[i+1] {
			return fmt.Errorf("lp: %s eta file: arena offsets decrease at pivot %d", name, i)
		}
		if p := d.PRow[i]; p < 0 || int(p) >= m {
			return fmt.Errorf("lp: %s eta file: pivot row %d outside [0,%d)", name, p, m)
		}
		if v := d.PVal[i]; v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: %s eta file: bad pivot value %g at %d", name, v, i)
		}
	}
	if int(d.Start[k]) != len(d.Idx) {
		return fmt.Errorf("lp: %s eta file: last arena offset %d, want %d", name, d.Start[k], len(d.Idx))
	}
	for q, r := range d.Idx {
		if r < 0 || int(r) >= m {
			return fmt.Errorf("lp: %s eta file: arena row %d outside [0,%d)", name, r, m)
		}
		if v := d.Val[q]; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: %s eta file: non-finite arena value at %d", name, q)
		}
	}
	return nil
}

func restoreEta(d EtaFileData) *etaFile {
	e := newEtaFile()
	e.prow = append([]int32(nil), d.PRow...)
	e.pval = append([]float64(nil), d.PVal...)
	if len(d.Start) > 0 {
		e.start = append(e.start[:0], d.Start...)
	}
	e.idx = append([]int32(nil), d.Idx...)
	e.val = append([]float64(nil), d.Val...)
	return e
}

// RestoreFactorization rebinds a serialized factorization to p, declaring
// that p's constraint matrix — as it stands now — is the matrix the eta
// files were built from (see the package comment on the caller's soundness
// obligation). All locally checkable invariants are validated; the returned
// handle adopts on the next warm start of p exactly like the in-memory one
// it was exported from, and later coefficient patches of p invalidate it
// through the usual patch-version stamps.
func RestoreFactorization(p *Problem, d *FactorizationData) (*Factorization, error) {
	if p == nil {
		return nil, fmt.Errorf("lp: restore factorization: nil problem")
	}
	if d == nil {
		return nil, fmt.Errorf("lp: restore factorization: nil data")
	}
	m := len(p.rows)
	if d.M != m {
		return nil, fmt.Errorf("lp: restore factorization: %d rows in data, problem has %d", d.M, m)
	}
	if len(d.Basis) != m {
		return nil, fmt.Errorf("lp: restore factorization: basis has %d entries, want %d", len(d.Basis), m)
	}
	ncols := p.n + 2*m
	for r, c := range d.Basis {
		if c < 0 || c >= ncols {
			return nil, fmt.Errorf("lp: restore factorization: basic column %d of row %d outside [0,%d)", c, r, ncols)
		}
	}
	if len(d.ArtSign) != m {
		return nil, fmt.Errorf("lp: restore factorization: art_sign has %d entries, want %d", len(d.ArtSign), m)
	}
	for r, s := range d.ArtSign {
		if s != 1 && s != -1 {
			return nil, fmt.Errorf("lp: restore factorization: art_sign[%d] = %g, want ±1", r, s)
		}
	}
	for _, chk := range []struct {
		name string
		d    EtaFileData
	}{{"lower", d.Lower}, {"upper", d.Upper}, {"updates", d.Updates}} {
		if err := checkEta(chk.name, chk.d, m); err != nil {
			return nil, err
		}
	}
	return &Factorization{
		m:       m,
		basis:   append([]int(nil), d.Basis...),
		artSign: append([]float64(nil), d.ArtSign...),
		lower:   restoreEta(d.Lower),
		upper:   restoreEta(d.Upper),
		updates: restoreEta(d.Updates),
		prob:    p,
		ver:     p.patchVer,
	}, nil
}

// RestoreBasis rebinds a serialized basis to p. The statuses must match p's
// shape; the factorization payload, when present, is rebound via
// RestoreFactorization (same soundness obligation). A data payload without
// a factorization restores to a status-only basis that refactorizes at
// install — still a warm start, just not a resumed one.
func RestoreBasis(p *Problem, d *BasisData) (*Basis, error) {
	if p == nil {
		return nil, fmt.Errorf("lp: restore basis: nil problem")
	}
	if d == nil {
		return nil, fmt.Errorf("lp: restore basis: nil data")
	}
	m := len(p.rows)
	if d.NumVars != p.n || d.NumRows != m {
		return nil, fmt.Errorf("lp: restore basis: shape (%d vars, %d rows) vs problem (%d, %d)",
			d.NumVars, d.NumRows, p.n, m)
	}
	if want := p.n + 2*m; len(d.ColStat) != want {
		return nil, fmt.Errorf("lp: restore basis: %d column statuses, want %d", len(d.ColStat), want)
	}
	for j, st := range d.ColStat {
		if st != BasisAtLower && st != BasisAtUpper && st != BasisBasic {
			return nil, fmt.Errorf("lp: restore basis: bad status %d at column %d", st, j)
		}
	}
	b := &Basis{
		NumVars: d.NumVars,
		NumRows: d.NumRows,
		ColStat: append([]int8(nil), d.ColStat...),
	}
	if d.Fact != nil {
		f, err := RestoreFactorization(p, d.Fact)
		if err != nil {
			return nil, err
		}
		b.Fact = f
	}
	return b, nil
}
