package lp

// Golden cross-checks of the sparse revised simplex against the dense
// tableau reference solver, warm-start equivalence tests, and the
// sparse-vs-dense benchmark pair.

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// fixtureProblems rebuilds the hand-written LP fixtures of lp_test.go with
// their known optima, so both solvers can be checked against the same
// golden values.
func fixtureProblems() []struct {
	name string
	mk   func() *Problem
	want float64
} {
	inf := math.Inf(1)
	return []struct {
		name string
		mk   func() *Problem
		want float64
	}{
		{"simple", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoef(0, -1)
			p.SetObjectiveCoef(1, -1)
			p.AddConstraint(LE, 4, Coef{0, 1}, Coef{1, 2})
			p.AddConstraint(LE, 6, Coef{0, 3}, Coef{1, 1})
			return p
		}, -14.0 / 5},
		{"equality-ge", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoef(0, 2)
			p.SetObjectiveCoef(1, 3)
			p.AddConstraint(EQ, 10, Coef{0, 1}, Coef{1, 1})
			p.AddConstraint(GE, 3, Coef{0, 1})
			p.AddConstraint(GE, 2, Coef{1, 1})
			return p
		}, 22},
		{"bounded", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoef(0, -1)
			p.SetObjectiveCoef(1, -2)
			p.SetBounds(0, 0, 1)
			p.SetBounds(1, 0, 1)
			p.AddConstraint(LE, 1.5, Coef{0, 1}, Coef{1, 1})
			return p
		}, -2.5},
		{"shifted-lower", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoef(0, 1)
			p.SetObjectiveCoef(1, 1)
			p.SetBounds(0, 2, inf)
			p.SetBounds(1, 3, 5)
			p.AddConstraint(GE, 7, Coef{0, 1}, Coef{1, 1})
			return p
		}, 7},
		{"degenerate", func() *Problem {
			p := NewProblem(4)
			for j, v := range []float64{-0.75, 150, -0.02, 6} {
				p.SetObjectiveCoef(j, v)
			}
			p.AddConstraint(LE, 0, Coef{0, 0.25}, Coef{1, -60}, Coef{2, -0.04}, Coef{3, 9})
			p.AddConstraint(LE, 0, Coef{0, 0.5}, Coef{1, -90}, Coef{2, -0.02}, Coef{3, 3})
			p.AddConstraint(LE, 1, Coef{2, 1})
			return p
		}, -0.05},
		{"negative-rhs", func() *Problem {
			p := NewProblem(1)
			p.SetObjectiveCoef(0, 1)
			p.AddConstraint(LE, -3, Coef{0, -1})
			return p
		}, 3},
		{"eq-negative-rhs", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoef(0, 1)
			p.SetObjectiveCoef(1, 1)
			p.AddConstraint(EQ, -2, Coef{0, -1}, Coef{1, -1})
			return p
		}, 2},
		{"wide-bounds-mix", func() *Problem {
			p := NewProblem(3)
			p.SetObjectiveCoef(0, 1)
			p.SetObjectiveCoef(1, 2)
			p.SetObjectiveCoef(2, -1)
			p.SetBounds(0, 0, 10)
			p.SetBounds(1, 2, 6)
			p.SetBounds(2, 1, 3)
			p.AddConstraint(EQ, 8, Coef{0, 1}, Coef{1, 1}, Coef{2, 1})
			p.AddConstraint(GE, 3, Coef{0, 1}, Coef{2, 1})
			return p
		}, 4},
	}
}

// TestSparseMatchesDenseOnFixtures solves every hand-written fixture with
// both solvers and checks both against the recorded optimum within 1e-6.
func TestSparseMatchesDenseOnFixtures(t *testing.T) {
	for _, f := range fixtureProblems() {
		sparse, err := f.mk().SolveOpts(Options{})
		if err != nil {
			t.Fatalf("%s: sparse: %v", f.name, err)
		}
		dense, err := f.mk().SolveOpts(Options{Dense: true})
		if err != nil {
			t.Fatalf("%s: dense: %v", f.name, err)
		}
		if sparse.Status != Optimal || dense.Status != Optimal {
			t.Fatalf("%s: status sparse=%v dense=%v", f.name, sparse.Status, dense.Status)
		}
		if math.Abs(sparse.Objective-f.want) > 1e-6 {
			t.Fatalf("%s: sparse objective %.9f, want %.9f", f.name, sparse.Objective, f.want)
		}
		if math.Abs(sparse.Objective-dense.Objective) > 1e-6 {
			t.Fatalf("%s: sparse %.9f != dense %.9f", f.name, sparse.Objective, dense.Objective)
		}
	}
}

// randomCovering draws a covering LP shaped like the stress fixtures of
// lp_stress_test.go.
func randomCovering(seed uint64) *Problem {
	rng := stats.NewRNG(seed)
	nVars := 40 + rng.Intn(120)
	nCover := 20 + rng.Intn(60)
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetObjectiveCoef(j, rng.Range(0.5, 2))
		p.SetBounds(j, 0, 1)
	}
	for r := 0; r < nCover; r++ {
		coefs := make([]Coef, 0, 8)
		for c := 0; c < 8; c++ {
			coefs = append(coefs, Coef{rng.Intn(nVars), rng.Range(0.5, 2)})
		}
		p.AddConstraint(GE, rng.Range(0.5, 2.5), coefs...)
	}
	return p
}

// randomMixed draws an LP with a mix of relations, negative coefficients,
// and shifted/finite bounds to exercise every construction path.
func randomMixed(seed uint64) *Problem {
	rng := stats.NewRNG(seed)
	nVars := 5 + rng.Intn(12)
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetObjectiveCoef(j, rng.Range(-2, 2))
		lo := rng.Range(0, 1)
		p.SetBounds(j, lo, lo+rng.Range(0.5, 2))
	}
	nRows := 3 + rng.Intn(8)
	for r := 0; r < nRows; r++ {
		coefs := make([]Coef, 0, nVars)
		for j := 0; j < nVars; j++ {
			if rng.Bernoulli(0.6) {
				coefs = append(coefs, Coef{j, rng.Range(-1, 1)})
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, Coef{0, 1})
		}
		rel := LE
		switch {
		case rng.Bernoulli(0.3):
			rel = GE
		case rng.Bernoulli(0.2):
			rel = EQ
		}
		p.AddConstraint(rel, rng.Range(-1, 3), coefs...)
	}
	return p
}

// TestSparseMatchesDenseRandom cross-checks both solvers on a few hundred
// random LPs: identical statuses, objectives within 1e-6, and feasible
// points from both.
func TestSparseMatchesDenseRandom(t *testing.T) {
	for trial := 0; trial < 150; trial++ {
		var mk func(uint64) *Problem
		if trial%2 == 0 {
			mk = randomMixed
		} else {
			mk = randomCovering
		}
		seed := uint64(1000 + trial)
		sparse, err := mk(seed).SolveOpts(Options{})
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		pd := mk(seed)
		dense, err := pd.SolveOpts(Options{Dense: true})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if sparse.Status != dense.Status {
			t.Fatalf("trial %d: status sparse=%v dense=%v", trial, sparse.Status, dense.Status)
		}
		if sparse.Status != Optimal {
			continue
		}
		if math.Abs(sparse.Objective-dense.Objective) > 1e-6 {
			t.Fatalf("trial %d: sparse %.9f != dense %.9f", trial, sparse.Objective, dense.Objective)
		}
		if err := pd.CheckFeasible(sparse.X, 1e-6); err != nil {
			t.Fatalf("trial %d: sparse point infeasible: %v", trial, err)
		}
	}
}

// TestPartialPricingMatchesDantzig: the pricing rule changes the pivot
// path, never the optimum.
func TestPartialPricingMatchesDantzig(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seed := uint64(7000 + trial)
		full, err := randomCovering(seed).SolveOpts(Options{})
		if err != nil {
			t.Fatal(err)
		}
		part, err := randomCovering(seed).SolveOpts(Options{Pricing: PartialPricing})
		if err != nil {
			t.Fatal(err)
		}
		if full.Status != part.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, full.Status, part.Status)
		}
		if full.Status == Optimal && math.Abs(full.Objective-part.Objective) > 1e-6 {
			t.Fatalf("trial %d: %.9f vs %.9f", trial, full.Objective, part.Objective)
		}
	}
}

// TestDevexPricingMatchesDantzig: devex (the default) changes the pivot
// path, never the optimum — and on the covering family it must not spend
// more pivots in aggregate than Dantzig's steepest-coefficient rule.
func TestDevexPricingMatchesDantzig(t *testing.T) {
	agg := struct{ devex, dantzig int }{}
	for trial := 0; trial < 30; trial++ {
		seed := uint64(7000 + trial)
		dv, err := randomCovering(seed).SolveOpts(Options{Pricing: DevexPricing})
		if err != nil {
			t.Fatal(err)
		}
		dz, err := randomCovering(seed).SolveOpts(Options{Pricing: DantzigPricing})
		if err != nil {
			t.Fatal(err)
		}
		if dv.Status != dz.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, dv.Status, dz.Status)
		}
		if dv.Status == Optimal && math.Abs(dv.Objective-dz.Objective) > 1e-6 {
			t.Fatalf("trial %d: %.9f vs %.9f", trial, dv.Objective, dz.Objective)
		}
		agg.devex += dv.Iterations
		agg.dantzig += dz.Iterations
	}
	t.Logf("total pivots: devex=%d dantzig=%d", agg.devex, agg.dantzig)
	if agg.devex > agg.dantzig {
		t.Fatalf("devex spent more pivots than Dantzig: %d vs %d", agg.devex, agg.dantzig)
	}
}

// TestWarmStartAfterCostChange: re-solving with perturbed costs from the
// previous basis must reach the same optimum as a cold solve, in fewer
// iterations (the basis stays primal feasible, so phase 1 is skipped).
func TestWarmStartAfterCostChange(t *testing.T) {
	agg := struct{ warm, cold int }{}
	for trial := 0; trial < 25; trial++ {
		seed := uint64(3000 + trial)
		p := randomCovering(seed)
		first, err := p.Solve()
		if err != nil || first.Status != Optimal {
			t.Fatalf("trial %d: first solve %v %v", trial, first.Status, err)
		}
		if first.Basis == nil {
			t.Fatalf("trial %d: optimal solve returned nil basis", trial)
		}
		// Perturb a third of the costs.
		rng := stats.NewRNG(seed ^ 0xfeed)
		for j := 0; j < p.NumVars(); j++ {
			if rng.Bernoulli(0.33) {
				p.AddObjectiveCoef(j, rng.Range(-0.2, 0.2))
			}
		}
		warm, err := p.SolveOpts(Options{WarmStart: first.Basis})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.SolveOpts(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != Optimal || cold.Status != Optimal {
			t.Fatalf("trial %d: status warm=%v cold=%v", trial, warm.Status, cold.Status)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("trial %d: warm %.9f != cold %.9f", trial, warm.Objective, cold.Objective)
		}
		agg.warm += warm.Iterations
		agg.cold += cold.Iterations
	}
	if agg.warm >= agg.cold {
		t.Fatalf("warm starts did not reduce total iterations: warm=%d cold=%d", agg.warm, agg.cold)
	}
	t.Logf("total iterations: warm=%d cold=%d", agg.warm, agg.cold)
}

// TestWarmStartAfterBoundChange mimics a branch-and-bound dive: fix a
// fractional basic variable to an integer bound and re-solve warm. The
// parent basis is primal infeasible but dual feasible, so the dual simplex
// path must reach the cold optimum.
func TestWarmStartAfterBoundChange(t *testing.T) {
	checked := 0
	for trial := 0; trial < 40 && checked < 15; trial++ {
		seed := uint64(5000 + trial)
		p := randomCovering(seed)
		first, err := p.Solve()
		if err != nil || first.Status != Optimal {
			continue
		}
		// Find a fractional variable to "branch" on.
		branch := -1
		for j := 0; j < p.NumVars(); j++ {
			if first.X[j] > 0.2 && first.X[j] < 0.8 {
				branch = j
				break
			}
		}
		if branch < 0 {
			continue
		}
		for _, side := range []float64{0, 1} {
			p.SetBounds(branch, side, side)
			warm, err := p.SolveOpts(Options{WarmStart: first.Basis})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := p.SolveOpts(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d side %v: status warm=%v cold=%v", trial, side, warm.Status, cold.Status)
			}
			if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
				t.Fatalf("trial %d side %v: warm %.9f != cold %.9f", trial, side, warm.Objective, cold.Objective)
			}
			p.SetBounds(branch, 0, 1)
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no branchable fixtures found")
	}
}

// TestWarmStartGarbageBasisDegrades: an incompatible or nonsense basis
// must silently fall back to a cold solve.
func TestWarmStartGarbageBasisDegrades(t *testing.T) {
	p := randomCovering(42)
	want, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cases := []*Basis{
		nil,
		{NumVars: 1, NumRows: 1, ColStat: []int8{BasisBasic}},
		{NumVars: p.NumVars(), NumRows: p.NumRows(),
			ColStat: make([]int8, p.NumVars()+2*p.NumRows())}, // zero basic columns
	}
	for i, b := range cases {
		got, err := p.SolveOpts(Options{WarmStart: b})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Status != Optimal || math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("case %d: %v %.9f, want optimal %.9f", i, got.Status, got.Objective, want.Objective)
		}
	}
}

// TestWarmStartSameProblemFewIterations: warm-starting the identical
// problem from its own optimal basis must terminate almost immediately.
func TestWarmStartSameProblemFewIterations(t *testing.T) {
	p := randomCovering(99)
	first, err := p.Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("%v %v", first.Status, err)
	}
	again, err := p.SolveOpts(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != Optimal || math.Abs(again.Objective-first.Objective) > 1e-9 {
		t.Fatalf("re-solve: %v %.12f, want %.12f", again.Status, again.Objective, first.Objective)
	}
	if again.Iterations > 2 {
		t.Fatalf("re-solve from optimal basis took %d iterations", again.Iterations)
	}
}

// BenchmarkLPSparseVsDense pits the two solvers against each other on the
// covering-LP family (see BenchmarkStageLPSolve in the repository root for
// the overlay-relaxation comparison).
func BenchmarkLPSparseVsDense(b *testing.B) {
	bench := func(b *testing.B, opts Options) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := randomCovering(uint64(i % 8))
			if _, err := p.SolveOpts(opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sparse", func(b *testing.B) { bench(b, Options{}) })
	b.Run("dense", func(b *testing.B) { bench(b, Options{Dense: true}) })
}
