package lp

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/stats"
)

// TestParallelMatchesSerial: the goroutine-parallel tableau elimination must
// produce bit-identical pivots to the serial path (it partitions rows, no
// reductions), hence identical optima.
func TestParallelMatchesSerial(t *testing.T) {
	rng := stats.NewRNG(31)
	nVars, nRows := 160, 140 // big enough to cross the parallel threshold
	build := func() *Problem {
		r := stats.NewRNG(77)
		p := NewProblem(nVars)
		for j := 0; j < nVars; j++ {
			p.SetObjectiveCoef(j, r.Range(0.1, 3))
			p.SetBounds(j, 0, 1)
		}
		for i := 0; i < nRows; i++ {
			coefs := make([]Coef, 0, 12)
			for c := 0; c < 12; c++ {
				coefs = append(coefs, Coef{r.Intn(nVars), r.Range(0.1, 1)})
			}
			p.AddConstraint(GE, r.Range(0.3, 2), coefs...)
		}
		return p
	}
	_ = rng
	pSerial := build()
	solSerial, err := pSerial.SolveOpts(Options{SerialOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	pPar := build()
	solPar, err := pPar.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if solSerial.Status != solPar.Status {
		t.Fatalf("status mismatch: %v vs %v", solSerial.Status, solPar.Status)
	}
	if solSerial.Status == Optimal && math.Abs(solSerial.Objective-solPar.Objective) > 1e-7 {
		t.Fatalf("objective mismatch: %.12f vs %.12f", solSerial.Objective, solPar.Objective)
	}
}

// TestCoveringLPStress solves a family of covering LPs sized like the
// overlay relaxation and validates feasibility plus a weak duality check:
// scaling any feasible point down must violate some covering row.
func TestCoveringLPStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for trial := 0; trial < 6; trial++ {
		rng := stats.NewRNG(uint64(500 + trial))
		nVars := 150 + rng.Intn(100)
		nCover := 60 + rng.Intn(40)
		p := NewProblem(nVars)
		for j := 0; j < nVars; j++ {
			p.SetObjectiveCoef(j, rng.Range(0.5, 2))
			p.SetBounds(j, 0, 1)
		}
		for r := 0; r < nCover; r++ {
			coefs := make([]Coef, 0, 8)
			for c := 0; c < 8; c++ {
				coefs = append(coefs, Coef{rng.Intn(nVars), rng.Range(0.5, 2)})
			}
			p.AddConstraint(GE, rng.Range(0.5, 2.5), coefs...)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The optimum of a pure covering LP with positive costs must
		// have at least one tight covering row (otherwise scale down).
		// Check: objective strictly positive and some row within 1e-5
		// of its rhs.
		if sol.Objective <= 0 {
			t.Fatalf("trial %d: nonpositive objective %v", trial, sol.Objective)
		}
	}
}

// TestManyDegeneratePivots builds an LP with massive degeneracy (all rhs
// zero except one) to exercise the Bland fallback.
func TestManyDegeneratePivots(t *testing.T) {
	const n = 30
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjectiveCoef(j, -1) // maximize sum
		p.SetBounds(j, 0, 1)
	}
	// Chains x_{j+1} <= x_j (rhs 0, degenerate at the start).
	for j := 0; j+1 < n; j++ {
		p.AddConstraint(LE, 0, Coef{j + 1, 1}, Coef{j, -1})
	}
	p.AddConstraint(LE, 0.5, Coef{0, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// All variables chain down from x_0 = 0.5 ⇒ objective -15.
	if math.Abs(sol.Objective-(-float64(n)*0.5)) > 1e-7 {
		t.Fatalf("objective %v, want %v", sol.Objective, -float64(n)*0.5)
	}
}

// TestWideBoundsMix exercises shifted lower bounds together with upper
// bounds and equality rows in one problem.
func TestWideBoundsMix(t *testing.T) {
	p := NewProblem(3)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 2)
	p.SetObjectiveCoef(2, -1)
	p.SetBounds(0, -0, 10) // [0,10]
	p.SetBounds(1, 2, 6)
	p.SetBounds(2, 1, 3)
	p.AddConstraint(EQ, 8, Coef{0, 1}, Coef{1, 1}, Coef{2, 1})
	p.AddConstraint(GE, 3, Coef{0, 1}, Coef{2, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if err := p.CheckFeasible(sol.X, 1e-8); err != nil {
		t.Fatal(err)
	}
	// Optimal: maximize x2 (=3), minimize x1 (=2), x0 = 8-3-2 = 3.
	// obj = 3 + 4 - 3 = 4.
	if math.Abs(sol.Objective-4) > 1e-8 {
		t.Fatalf("objective %v, want 4", sol.Objective)
	}
}

// TestConcurrentSolvesShareCachedCSC: a Problem whose CSC cache has been
// built with Precompute must support concurrent SolveOpts calls — the
// sharded pipeline and branch-and-bound both re-solve shared problems from
// multiple goroutines. Every solver must land on the identical objective
// and iteration count, warm-started or cold. Run under -race in CI, this
// is the data-race check for the shared cache; without Precompute the lazy
// cache build inside the first solve would be the race.
func TestConcurrentSolvesShareCachedCSC(t *testing.T) {
	rng := stats.NewRNG(59)
	const nVars, nRows = 120, 100
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetObjectiveCoef(j, rng.Range(0.1, 3))
		p.SetBounds(j, 0, 1)
	}
	for i := 0; i < nRows; i++ {
		coefs := make([]Coef, 0, 10)
		for c := 0; c < 10; c++ {
			coefs = append(coefs, Coef{rng.Intn(nVars), rng.Range(0.1, 1)})
		}
		p.AddConstraint(GE, rng.Range(0.3, 2), coefs...)
	}
	p.Precompute()

	ref, err := p.MustSolve()
	if err != nil {
		t.Fatal(err)
	}

	const solvers = 8
	type out struct {
		obj   float64
		iters int
		err   error
	}
	results := make([]out, solvers)
	var wg sync.WaitGroup
	wg.Add(solvers)
	for g := 0; g < solvers; g++ {
		go func(g int) {
			defer wg.Done()
			var warm *Basis
			if g%2 == 1 {
				warm = ref.Basis // odd solvers warm-start from the shared basis
			}
			sol, err := p.SolveOpts(Options{WarmStart: warm})
			if err != nil {
				results[g] = out{err: err}
				return
			}
			if sol.Status != Optimal {
				results[g] = out{err: fmt.Errorf("status %v", sol.Status)}
				return
			}
			results[g] = out{obj: sol.Objective, iters: sol.Iterations}
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if r.err != nil {
			t.Fatalf("solver %d: %v", g, r.err)
		}
		if math.Abs(r.obj-ref.Objective) > 1e-9 {
			t.Fatalf("solver %d objective %.12f != reference %.12f", g, r.obj, ref.Objective)
		}
		if r.iters != results[g%2].iters {
			t.Fatalf("solver %d iterations %d differ from its cohort's %d", g, r.iters, results[g%2].iters)
		}
	}
	if results[1].iters >= results[0].iters {
		t.Fatalf("warm-started solve took %d iterations, cold took %d — warm start bought nothing",
			results[1].iters, results[0].iters)
	}
}
