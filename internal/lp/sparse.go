package lp

// The sparse bounded-variable revised simplex. Columns are stored once in
// CSC form (structural) or implicitly (slack/artificial singletons); the
// basis inverse is a product-form eta file rebuilt every refactorEvery
// pivots. See the package comment for the design overview.

import (
	"math"
)

// cscMatrix holds the structural columns in compressed-sparse-column form.
type cscMatrix struct {
	colPtr []int32
	rowIdx []int32
	val    []float64
}

// buildCSC converts the row-wise Problem into column-wise storage.
// Duplicate (row, var) entries are kept as-is: every linear operation the
// solver performs (scatter, dot product) sums them naturally.
func buildCSC(p *Problem) *cscMatrix {
	n := p.n
	counts := make([]int32, n+1)
	nnz := 0
	for _, rw := range p.rows {
		for _, c := range rw.coefs {
			counts[c.Var+1]++
			nnz++
		}
	}
	csc := &cscMatrix{
		colPtr: counts,
		rowIdx: make([]int32, nnz),
		val:    make([]float64, nnz),
	}
	for j := 0; j < n; j++ {
		csc.colPtr[j+1] += csc.colPtr[j]
	}
	next := make([]int32, n)
	for j := 0; j < n; j++ {
		next[j] = csc.colPtr[j]
	}
	for r, rw := range p.rows {
		for _, c := range rw.coefs {
			q := next[c.Var]
			csc.rowIdx[q] = int32(r)
			csc.val[q] = c.Val
			next[c.Var] = q + 1
		}
	}
	return csc
}

// colNNZ returns the entry count of structural column j.
func (c *cscMatrix) colNNZ(j int) int { return int(c.colPtr[j+1] - c.colPtr[j]) }

// find returns the arena index of the (row r, column j) entry, or -1 when
// the entry does not exist or is ambiguous (duplicate (row, var) pairs in
// one constraint). Within a column buildCSC emits entries in ascending row
// order — rows are scanned 0..m — so a binary search suffices.
func (c *cscMatrix) find(j int, r int32) int {
	lo, hi := int(c.colPtr[j]), int(c.colPtr[j+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if c.rowIdx[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= int(c.colPtr[j+1]) || c.rowIdx[lo] != r {
		return -1
	}
	if lo+1 < int(c.colPtr[j+1]) && c.rowIdx[lo+1] == r {
		return -1 // duplicate entries: caller must fall back to a rebuild
	}
	return lo
}

// etaFile is a sequence of elementary (eta) matrices — identity with one
// replaced column — stored in one shared arena so refactorization allocates
// nothing after warm-up. The basis inverse is kept in elimination form:
//
//	B⁻¹ = F_k⁻¹ ··· F_1⁻¹ · U⁻¹ · E_m ··· E_1
//
// where the E_t (file `lower`) are the Gaussian elimination steps of the
// last refactorization (each eliminates the pivot column in the rows not
// yet pivoted — triangular, so the file stays near nnz(B)), U⁻¹ (file
// `upper`) is the column-oriented back-substitution of the resulting upper
// factor, and the F⁻¹ (file `updates`) are the product-form pivot updates
// accumulated since. Each traversal direction below applies one factor
// group of that operator.
type etaFile struct {
	prow  []int32   // pivot row of each eta
	pval  []float64 // 1/pivot of each eta
	start []int32   // arena offsets, len(prow)+1
	idx   []int32   // off-pivot row indices
	val   []float64 // off-pivot values
}

func newEtaFile() *etaFile {
	return &etaFile{start: make([]int32, 1, 64)}
}

func (e *etaFile) reset() {
	e.prow = e.prow[:0]
	e.pval = e.pval[:0]
	e.start = e.start[:1]
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

func (e *etaFile) count() int { return len(e.prow) }

// copyFrom makes e an independent copy of src (reusing e's arenas when they
// are large enough). Adopting a carried Factorization copies its files so
// the handle can seed any number of later warm starts untouched.
func (e *etaFile) copyFrom(src *etaFile) {
	e.prow = append(e.prow[:0], src.prow...)
	e.pval = append(e.pval[:0], src.pval...)
	e.start = append(e.start[:0], src.start...)
	e.idx = append(e.idx[:0], src.idx...)
	e.val = append(e.val[:0], src.val...)
}

// etaDrop is the absolute magnitude below which off-pivot eta entries are
// discarded. Kept far below the solver tolerances; the periodic
// refactorization and the final feasibility audit bound its effect.
const etaDrop = 1e-13

// push records the Gauss–Jordan eta of pivoting column d on row p.
// Identity etas (unit pivot, no off-pivot fill) are skipped.
func (e *etaFile) push(d []float64, p int) {
	piv := d[p]
	identity := piv == 1
	if identity {
		for r, v := range d {
			if r != p && (v > etaDrop || v < -etaDrop) {
				identity = false
				break
			}
		}
		if identity {
			return
		}
	}
	inv := 1 / piv
	e.prow = append(e.prow, int32(p))
	e.pval = append(e.pval, inv)
	for r, v := range d {
		if r == p || (v <= etaDrop && v >= -etaDrop) {
			continue
		}
		e.idx = append(e.idx, int32(r))
		e.val = append(e.val, -v*inv)
	}
	e.start = append(e.start, int32(len(e.idx)))
}

// pushParts records an eta with explicit pivot value and entry list.
func (e *etaFile) pushParts(p int, piv float64, rows []int32, vals []float64) {
	inv := 1 / piv
	e.prow = append(e.prow, int32(p))
	e.pval = append(e.pval, inv)
	for i, r := range rows {
		e.idx = append(e.idx, r)
		e.val = append(e.val, -vals[i]*inv)
	}
	e.start = append(e.start, int32(len(e.idx)))
}

// ftranFwd applies the etas oldest-first as column operations.
func (e *etaFile) ftranFwd(x []float64) {
	for k := 0; k < len(e.prow); k++ {
		p := e.prow[k]
		t := x[p]
		if t == 0 {
			continue
		}
		x[p] = e.pval[k] * t
		for q := e.start[k]; q < e.start[k+1]; q++ {
			x[e.idx[q]] += e.val[q] * t
		}
	}
}

// ftranRev applies the etas newest-first as column operations (the
// back-substitution order of the upper factor).
func (e *etaFile) ftranRev(x []float64) {
	for k := len(e.prow) - 1; k >= 0; k-- {
		p := e.prow[k]
		t := x[p]
		if t == 0 {
			continue
		}
		x[p] = e.pval[k] * t
		for q := e.start[k]; q < e.start[k+1]; q++ {
			x[e.idx[q]] += e.val[q] * t
		}
	}
}

// btranRev applies the etas newest-first as row operations (y ← y·E): only
// the pivot component of y changes per eta.
func (e *etaFile) btranRev(y []float64) {
	for k := len(e.prow) - 1; k >= 0; k-- {
		p := e.prow[k]
		v := y[p] * e.pval[k]
		for q := e.start[k]; q < e.start[k+1]; q++ {
			v += y[e.idx[q]] * e.val[q]
		}
		y[p] = v
	}
}

// btranFwd applies the etas oldest-first as row operations.
func (e *etaFile) btranFwd(y []float64) {
	for k := 0; k < len(e.prow); k++ {
		p := e.prow[k]
		v := y[p] * e.pval[k]
		for q := e.start[k]; q < e.start[k+1]; q++ {
			v += y[e.idx[q]] * e.val[q]
		}
		y[p] = v
	}
}

// sparse is the revised-simplex working state.
type sparse struct {
	p    *Problem
	opts Options

	m, n  int // rows, structural columns
	ncols int // n + 2m: structural, slack, artificial
	csc   *cscMatrix

	slackSign []float64 // per row: +1 (LE, EQ) or -1 (GE)
	artSign   []float64 // per row: chosen by the cold crash
	phase1    bool      // artificials free in [0, +Inf)

	// clo/chi/ccost flatten bounds() and cost() into arrays for the hot
	// loops; setPhase rebuilds the phase-dependent slices (artificial
	// bounds, objective row).
	clo, chi []float64
	ccost    []float64

	stat  []vstat
	basis []int // basis[r] = column basic in row r
	beta  []float64

	// Basis inverse in elimination form (see etaFile): lower/upper from
	// the last refactorization, updates appended per pivot since.
	lower, upper, updates *etaFile
	refactorEvery         int

	iters      int
	maxIters   int
	bland      bool
	priceStart int       // rotating offset for partial pricing
	devexW     []float64 // devex reference weights, nil unless DevexPricing
	stats      SolveStats

	// scratch, sized m
	colBuf []float64
	yBuf   []float64
	rhsBuf []float64
	pivBuf []bool
	rowBuf []int

	// refactorization scratch, reused across refactorizations
	refCnt     []int32
	refRowPtr  []int32
	refRowAdj  []int32
	refBuckets [][]int32
	refDone    []bool
	refLoRows  []int32
	refLoVals  []float64
	refUpRows  []int32
	refUpVals  []float64
}

func newSparse(p *Problem, opts Options) *sparse {
	m := len(p.rows)
	if p.csc == nil {
		p.csc = buildCSC(p)
	}
	s := &sparse{
		p: p, opts: opts,
		m: m, n: p.n, ncols: p.n + 2*m,
		csc:       p.csc,
		slackSign: make([]float64, m),
		artSign:   make([]float64, m),
		stat:      make([]vstat, p.n+2*m),
		basis:     make([]int, m),
		beta:      make([]float64, m),
		lower:     newEtaFile(),
		upper:     newEtaFile(),
		updates:   newEtaFile(),
		colBuf:    make([]float64, m),
		yBuf:      make([]float64, m),
		rhsBuf:    make([]float64, m),
		pivBuf:    make([]bool, m),
		rowBuf:    make([]int, m),

		refCnt:     make([]int32, m),
		refRowPtr:  make([]int32, m+2),
		refBuckets: make([][]int32, m+2),
		refDone:    make([]bool, m),
	}
	for r, rw := range p.rows {
		if rw.rel == GE {
			s.slackSign[r] = -1
		} else {
			s.slackSign[r] = 1
		}
		s.artSign[r] = 1
	}
	s.clo = make([]float64, s.ncols)
	s.chi = make([]float64, s.ncols)
	s.ccost = make([]float64, s.ncols)
	s.setPhase(false)
	s.maxIters = opts.MaxIters
	if s.maxIters <= 0 {
		s.maxIters = 200*(m+s.ncols) + 2000
	}
	s.refactorEvery = opts.RefactorEvery
	if s.refactorEvery <= 0 {
		// Balance the per-iteration cost of traversing the (dense-ish)
		// product-form update etas, ~RefactorEvery·m, against the
		// amortized ~m²/RefactorEvery refactorization cost: the optimum
		// grows with √m.
		s.refactorEvery = 16 + 2*int(math.Sqrt(float64(m)))
	}
	if opts.Pricing == DevexPricing {
		s.devexW = make([]float64, s.ncols)
		for j := range s.devexW {
			s.devexW[j] = 1
		}
	}
	return s
}

// resetDevex restores the unit reference framework: every column's weight
// becomes 1, declaring the CURRENT nonbasic set the reference frame the
// weights approximate steepest-edge norms against. Called after every
// refactorization — the weights are only meaningful relative to a basis
// trajectory, and a rebuilt factorization starts a new one.
func (s *sparse) resetDevex() {
	if s.devexW == nil {
		return
	}
	for j := range s.devexW {
		s.devexW[j] = 1
	}
	s.stats.DevexResets++
	s.emit(EventDevexReset)
}

// emit forwards a solver-internal event to the Options.Events subscriber,
// stamped with the current pivot iteration. Kept out of line so the stats
// sites stay one-line increments.
func (s *sparse) emit(k EventKind) {
	if s.opts.Events != nil {
		s.opts.Events(Event{Kind: k, Iteration: s.iters})
	}
}

// setPhase installs the phase-dependent per-column bounds and costs:
// phase 1 frees the artificials in [0, +Inf) and prices only them; phase 2
// pins artificials to [0,0] and installs the true objective.
func (s *sparse) setPhase(phase1 bool) {
	s.phase1 = phase1
	inf := math.Inf(1)
	for j := 0; j < s.n; j++ {
		s.clo[j], s.chi[j] = s.p.lo[j], s.p.hi[j]
		if phase1 {
			s.ccost[j] = 0
		} else {
			s.ccost[j] = s.p.obj[j]
		}
	}
	for r, rw := range s.p.rows {
		slack, art := s.n+r, s.n+s.m+r
		s.clo[slack], s.ccost[slack] = 0, 0
		if rw.rel == EQ {
			s.chi[slack] = 0
		} else {
			s.chi[slack] = inf
		}
		s.clo[art] = 0
		if phase1 {
			s.chi[art], s.ccost[art] = inf, 1
		} else {
			s.chi[art], s.ccost[art] = 0, 0
		}
	}
}

// bounds returns the box of column j under the current phase.
func (s *sparse) bounds(j int) (lo, hi float64) {
	return s.clo[j], s.chi[j]
}

// cost returns the objective coefficient of column j under the current
// phase.
func (s *sparse) cost(j int) float64 { return s.ccost[j] }

// xval returns the current value of nonbasic column j.
func (s *sparse) xval(j int) float64 {
	if s.stat[j] == atUpper {
		return s.chi[j]
	}
	return s.clo[j]
}

// scatterColumn adds column j of the constraint matrix into dense x.
func (s *sparse) scatterColumn(j int, x []float64) {
	switch {
	case j < s.n:
		for q := s.csc.colPtr[j]; q < s.csc.colPtr[j+1]; q++ {
			x[s.csc.rowIdx[q]] += s.csc.val[q]
		}
	case j < s.n+s.m:
		r := j - s.n
		x[r] += s.slackSign[r]
	default:
		r := j - s.n - s.m
		x[r] += s.artSign[r]
	}
}

// ftran applies the full basis inverse to the column vector x.
func (s *sparse) ftran(x []float64) {
	s.lower.ftranFwd(x)
	s.upper.ftranRev(x)
	s.updates.ftranFwd(x)
}

// btran applies the full basis inverse to the row vector y.
func (s *sparse) btran(y []float64) {
	s.updates.btranRev(y)
	s.upper.btranFwd(y)
	s.lower.btranRev(y)
}

// ftranColumn returns B⁻¹·(column j) in the shared scratch buffer.
func (s *sparse) ftranColumn(j int) []float64 {
	d := s.colBuf
	for i := range d {
		d[i] = 0
	}
	s.scatterColumn(j, d)
	s.ftran(d)
	return d
}

// reducedCost computes c_j − y·a_j for the BTRAN vector y.
func (s *sparse) reducedCost(j int, y []float64) float64 {
	c := s.cost(j)
	switch {
	case j < s.n:
		for q := s.csc.colPtr[j]; q < s.csc.colPtr[j+1]; q++ {
			c -= y[s.csc.rowIdx[q]] * s.csc.val[q]
		}
	case j < s.n+s.m:
		r := j - s.n
		c -= y[r] * s.slackSign[r]
	default:
		r := j - s.n - s.m
		c -= y[r] * s.artSign[r]
	}
	return c
}

// btranCost returns y = c_B·B⁻¹ in the shared scratch buffer.
func (s *sparse) btranCost() []float64 {
	y := s.yBuf
	for r := 0; r < s.m; r++ {
		y[r] = s.cost(s.basis[r])
	}
	s.btran(y)
	return y
}

// colRow returns the row of singleton (slack/artificial) column c.
func (s *sparse) colRow(c int) int {
	if c < s.n+s.m {
		return c - s.n
	}
	return c - s.n - s.m
}

// refactor rebuilds the basis factorization from scratch by sparse
// Gaussian elimination over the current basis columns: each column yields
// one lower eta (the elimination over not-yet-pivoted rows) and one upper
// eta (its back-substitution entries in already-pivoted rows), leaving the
// update file empty. Columns are eliminated in order of their
// dynamically-updated count of entries in unpivoted rows (a greedy
// triangularization, tracked with a bucket queue): columns that become
// singletons as rows pivot out are eliminated first, which keeps fill —
// and therefore both factor files — near nnz(B). Partial pivoting on
// magnitude within each column's unpivoted rows guards numerics.
// Reassigns basis rows and recomputes beta; returns false if the basis is
// numerically singular.
func (s *sparse) refactor() bool {
	s.lower.reset()
	s.upper.reset()
	s.updates.reset()
	m := s.m
	cols := s.rowBuf[:m]
	copy(cols, s.basis)

	// cnt[k]: entries of basis column k in unpivoted rows. rowAdj lists,
	// per row, the basis columns touching it (to decrement counts as rows
	// pivot out). Zero-count columns are parked in the overflow bucket m+1
	// and tried last: elimination fill can still make them pivotable.
	cnt := s.refCnt
	rowPtr := s.refRowPtr
	for i := range rowPtr {
		rowPtr[i] = 0
	}
	for k, c := range cols {
		if c < s.n {
			cnt[k] = int32(s.csc.colNNZ(c))
			for q := s.csc.colPtr[c]; q < s.csc.colPtr[c+1]; q++ {
				rowPtr[s.csc.rowIdx[q]+2]++
			}
		} else {
			cnt[k] = 1
			rowPtr[s.colRow(c)+2]++
		}
	}
	for r := 1; r < m+2; r++ {
		rowPtr[r] += rowPtr[r-1]
	}
	if cap(s.refRowAdj) < int(rowPtr[m+1]) {
		s.refRowAdj = make([]int32, rowPtr[m+1])
	}
	rowAdj := s.refRowAdj[:rowPtr[m+1]]
	for k, c := range cols {
		if c < s.n {
			for q := s.csc.colPtr[c]; q < s.csc.colPtr[c+1]; q++ {
				r := s.csc.rowIdx[q] + 1
				rowAdj[rowPtr[r]] = int32(k)
				rowPtr[r]++
			}
		} else {
			r := s.colRow(c) + 1
			rowAdj[rowPtr[r]] = int32(k)
			rowPtr[r]++
		}
	}
	// Bucket queue with lazy deletion: a column is appended to a bucket
	// each time its count drops, so stale entries (recorded bucket no
	// longer matching the live count) are skipped at pop time.
	buckets := s.refBuckets
	for b := range buckets {
		buckets[b] = buckets[b][:0]
	}
	bucketOf := func(k int32) int32 {
		if cnt[k] == 0 {
			return int32(m + 1)
		}
		return cnt[k]
	}
	push := func(k int32) {
		b := bucketOf(k)
		buckets[b] = append(buckets[b], k)
	}
	for k := range cols {
		push(int32(k))
	}
	done := s.refDone
	pivoted := s.pivBuf
	for r := range pivoted {
		done[r] = false
		pivoted[r] = false
	}
	loRows, upRows := s.refLoRows, s.refUpRows
	loVals, upVals := s.refLoVals, s.refUpVals

	minB := int32(1)
	for picked := 0; picked < m; picked++ {
		// Pop the lowest-bucket live column.
		k := int32(-1)
		for ; minB <= int32(m+1); minB++ {
			b := buckets[minB]
			for len(b) > 0 {
				cand := b[len(b)-1]
				b = b[:len(b)-1]
				if !done[cand] && bucketOf(cand) == minB {
					k = cand
					break
				}
			}
			buckets[minB] = b
			if k >= 0 {
				break
			}
		}
		if k < 0 {
			return false
		}
		done[k] = true
		c := cols[k]
		d := s.colBuf
		for i := range d {
			d[i] = 0
		}
		s.scatterColumn(c, d)
		s.lower.ftranFwd(d)
		// Split the transformed column: unpivoted rows feed the lower
		// (elimination) eta, pivoted rows the upper (back-substitution)
		// eta. The pivot is the largest unpivoted entry.
		best, bv := -1, 0.0
		loRows, loVals = loRows[:0], loVals[:0]
		upRows, upVals = upRows[:0], upVals[:0]
		for r := 0; r < m; r++ {
			v := d[r]
			if v <= etaDrop && v >= -etaDrop {
				continue
			}
			if pivoted[r] {
				upRows = append(upRows, int32(r))
				upVals = append(upVals, v)
				continue
			}
			loRows = append(loRows, int32(r))
			loVals = append(loVals, v)
			if a := math.Abs(v); a > bv {
				best, bv = r, a
			}
		}
		if bv < 1e-10 {
			return false
		}
		// Drop the pivot itself from the lower entry list.
		piv := d[best]
		for i, r := range loRows {
			if int(r) == best {
				last := len(loRows) - 1
				loRows[i], loVals[i] = loRows[last], loVals[last]
				loRows, loVals = loRows[:last], loVals[:last]
				break
			}
		}
		if piv != 1 || len(loRows) > 0 {
			s.lower.pushParts(best, piv, loRows, loVals)
		}
		if len(upRows) > 0 {
			// The lower eta scaled the diagonal to 1, so the upper eta's
			// pivot value is 1.
			s.upper.pushParts(best, 1, upRows, upVals)
		}
		pivoted[best] = true
		s.basis[best] = c
		// Row `best` left the unpivoted set: decrement its columns.
		for q := rowPtr[best]; q < rowPtr[best+1]; q++ {
			kk := rowAdj[q]
			if !done[kk] {
				cnt[kk]--
				push(kk)
				if b := bucketOf(kk); b < minB {
					minB = b
				}
			}
		}
	}
	s.refLoRows, s.refUpRows = loRows, upRows
	s.refLoVals, s.refUpVals = loVals, upVals
	s.computeBeta()
	s.stats.Refactorizations++
	s.emit(EventRefactorization)
	s.resetDevex()
	return true
}

// computeBeta solves B·β = b − N·x_N for the basic values. Only structural
// nonbasic columns can sit at a nonzero bound (slacks and artificials have
// lower bound 0 and can never be nonbasic at +Inf), so the adjustment loop
// touches structural columns alone.
func (s *sparse) computeBeta() {
	r := s.rhsBuf
	for i, rw := range s.p.rows {
		r[i] = rw.rhs
	}
	for j := 0; j < s.n; j++ {
		if s.stat[j] == basic {
			continue
		}
		if xv := s.xval(j); xv != 0 {
			for q := s.csc.colPtr[j]; q < s.csc.colPtr[j+1]; q++ {
				r[s.csc.rowIdx[q]] -= s.csc.val[q] * xv
			}
		}
	}
	s.ftran(r)
	copy(s.beta, r)
}

// maybeRefactor refactorizes once the update file outgrows the cadence.
func (s *sparse) maybeRefactor() bool {
	if s.updates.count() < s.refactorEvery {
		return true
	}
	return s.refactor()
}

// enterable reports whether nonbasic column j may enter the basis: fixed
// columns (empty box) and retired artificials never re-enter.
func (s *sparse) enterable(j int) bool {
	if j >= s.n+s.m {
		return false // artificials never re-enter once nonbasic
	}
	lo, hi := s.bounds(j)
	return hi > lo
}

// chooseEntering prices the nonbasic columns and returns the entering
// column with its direction (+1 rising from lower, −1 falling from upper),
// or (−1, 0) at optimality.
func (s *sparse) chooseEntering(y []float64) (int, float64) {
	if s.bland {
		for j := 0; j < s.ncols; j++ {
			if s.stat[j] == basic || !s.enterable(j) {
				continue
			}
			d := s.reducedCost(j, y)
			if s.stat[j] == atLower && -d > tolCost {
				return j, 1
			}
			if s.stat[j] == atUpper && d > tolCost {
				return j, -1
			}
		}
		return -1, 0
	}
	if s.devexW != nil {
		return s.chooseDevex(y)
	}
	if s.opts.Pricing == PartialPricing {
		return s.choosePartial(y)
	}
	// Dantzig pricing, inlined per column class for the hot path:
	// structural columns price against their CSC slice, slacks against a
	// single row of y; artificials never re-enter.
	bestJ, bestDir, bestScore := -1, 0.0, tolCost
	for j := 0; j < s.n; j++ {
		st := s.stat[j]
		if st == basic || s.chi[j] <= s.clo[j] {
			continue
		}
		c := s.ccost[j]
		for q := s.csc.colPtr[j]; q < s.csc.colPtr[j+1]; q++ {
			c -= y[s.csc.rowIdx[q]] * s.csc.val[q]
		}
		if st == atLower {
			if v := -c; v > bestScore {
				bestJ, bestDir, bestScore = j, 1, v
			}
		} else if c > bestScore {
			bestJ, bestDir, bestScore = j, -1, c
		}
	}
	for r := 0; r < s.m; r++ {
		j := s.n + r
		st := s.stat[j]
		if st == basic || s.chi[j] <= 0 {
			continue
		}
		c := -y[r] * s.slackSign[r] // slack cost is 0 in both phases
		if st == atLower {
			if v := -c; v > bestScore {
				bestJ, bestDir, bestScore = j, 1, v
			}
		} else if c > bestScore {
			bestJ, bestDir, bestScore = j, -1, c
		}
	}
	return bestJ, bestDir
}

// chooseDevex prices with devex reference weights: among columns whose
// reduced cost violates optimality by more than tolCost, enter the one
// maximizing d_j²/w_j, where w_j approximates the steepest-edge norm of the
// column relative to the reference framework of the last reset. Dantzig's
// most-negative-d rule ignores how far a unit step along the column actually
// moves the solution, which costs it several-fold more pivots on larger
// LPs; dividing by the reference weight restores that scale at one extra
// BTRAN per pivot (devexUpdate).
func (s *sparse) chooseDevex(y []float64) (int, float64) {
	w := s.devexW
	bestJ, bestDir, bestScore := -1, 0.0, 0.0
	for j := 0; j < s.n; j++ {
		st := s.stat[j]
		if st == basic || s.chi[j] <= s.clo[j] {
			continue
		}
		c := s.ccost[j]
		for q := s.csc.colPtr[j]; q < s.csc.colPtr[j+1]; q++ {
			c -= y[s.csc.rowIdx[q]] * s.csc.val[q]
		}
		if st == atLower {
			if -c > tolCost {
				if sc := c * c / w[j]; sc > bestScore {
					bestJ, bestDir, bestScore = j, 1, sc
				}
			}
		} else if c > tolCost {
			if sc := c * c / w[j]; sc > bestScore {
				bestJ, bestDir, bestScore = j, -1, sc
			}
		}
	}
	for r := 0; r < s.m; r++ {
		j := s.n + r
		st := s.stat[j]
		if st == basic || s.chi[j] <= 0 {
			continue
		}
		c := -y[r] * s.slackSign[r] // slack cost is 0 in both phases
		if st == atLower {
			if -c > tolCost {
				if sc := c * c / w[j]; sc > bestScore {
					bestJ, bestDir, bestScore = j, 1, sc
				}
			}
		} else if c > tolCost {
			if sc := c * c / w[j]; sc > bestScore {
				bestJ, bestDir, bestScore = j, -1, sc
			}
		}
	}
	return bestJ, bestDir
}

// devexUpdate refreshes the reference weights after choosing the pivot
// (entering column `enter`, leaving row r, pivot element alphaQ = d[r]),
// before the basis change: w_j ← max(w_j, (α_j/α_q)²·w_q) for every
// nonbasic column, and the leaving variable re-enters the nonbasic set with
// w ← max(w_q/α_q², 1). α_j is the pivot-row entry of column j, computed
// from one BTRAN of e_r against the pre-pivot factorization. Artificials
// are skipped: they never re-enter, so their weights are never read.
func (s *sparse) devexUpdate(enter, r int, alphaQ float64) {
	w := s.devexW
	wq := w[enter]
	if wq < 1 {
		wq = 1
	}
	ratio := wq / (alphaQ * alphaQ)
	rho := s.yBuf // y is dead after chooseEntering; safe to overwrite
	for i := range rho {
		rho[i] = 0
	}
	rho[r] = 1
	s.btran(rho)
	for j := 0; j < s.n+s.m; j++ {
		if s.stat[j] == basic || j == enter {
			continue
		}
		alpha := s.rowDot(j, rho)
		if alpha == 0 {
			continue
		}
		if nw := alpha * alpha * ratio; nw > w[j] {
			w[j] = nw
		}
	}
	lw := ratio
	if lw < 1 {
		lw = 1
	}
	w[s.basis[r]] = lw
}

// choosePartial scans rotating blocks of columns and returns the best
// candidate of the first block containing one (cheaper pricing per
// iteration at the cost of possibly more iterations).
func (s *sparse) choosePartial(y []float64) (int, float64) {
	block := s.ncols / 16
	if block < 32 {
		block = 32
	}
	scanned := 0
	j := s.priceStart % s.ncols
	for scanned < s.ncols {
		bestJ, bestDir, bestScore := -1, 0.0, tolCost
		for b := 0; b < block && scanned < s.ncols; b++ {
			if s.stat[j] != basic && s.enterable(j) {
				d := s.reducedCost(j, y)
				if s.stat[j] == atLower {
					if v := -d; v > bestScore {
						bestJ, bestDir, bestScore = j, 1, v
					}
				} else if s.stat[j] == atUpper && d > bestScore {
					bestJ, bestDir, bestScore = j, -1, d
				}
			}
			scanned++
			j++
			if j == s.ncols {
				j = 0
			}
		}
		if bestJ >= 0 {
			s.priceStart = j
			return bestJ, bestDir
		}
	}
	return -1, 0
}

// iterate runs primal simplex pivots until optimal/unbounded/limit.
func (s *sparse) iterate() Status {
	blandAfter := 20*(s.m+s.ncols) + 1000
	start := s.iters
	for {
		if s.iters-start > blandAfter {
			s.bland = true
		}
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if !s.maybeRefactor() {
			return IterLimit // singular basis: caller escalates
		}
		y := s.btranCost()
		j, dir := s.chooseEntering(y)
		if j < 0 {
			return Optimal
		}
		d := s.ftranColumn(j)
		st := s.ratioTestAndPivot(j, dir, d)
		if st != 0 {
			return st
		}
		s.iters++
	}
}

// ratioTestAndPivot moves entering column j in direction dir along its
// FTRAN'd column d, performing a bound flip or a basis change. Returns a
// terminal status or 0 to continue.
func (s *sparse) ratioTestAndPivot(j int, dir float64, d []float64) Status {
	loJ, hiJ := s.bounds(j)
	t := hiJ - loJ // may be +Inf
	leaveRow := -1
	leaveToUpper := false
	bestPivot := 0.0
	for r := 0; r < s.m; r++ {
		a := d[r] * dir
		if a > tolPivot {
			// Basic variable decreases toward its lower bound.
			lob, _ := s.bounds(s.basis[r])
			lim := (s.beta[r] - lob) / a
			if lim < t-1e-12 || (lim < t+1e-12 && math.Abs(d[r]) > math.Abs(bestPivot)) {
				if lim < 0 {
					lim = 0
				}
				t = lim
				leaveRow = r
				leaveToUpper = false
				bestPivot = d[r]
			}
		} else if a < -tolPivot {
			// Basic variable increases toward its upper bound.
			_, ub := s.bounds(s.basis[r])
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - s.beta[r]) / (-a)
			if lim < t-1e-12 || (lim < t+1e-12 && math.Abs(d[r]) > math.Abs(bestPivot)) {
				if lim < 0 {
					lim = 0
				}
				t = lim
				leaveRow = r
				leaveToUpper = true
				bestPivot = d[r]
			}
		}
	}
	if math.IsInf(t, 1) {
		return Unbounded
	}
	if t != 0 {
		step := t * dir
		for r := 0; r < s.m; r++ {
			if d[r] != 0 {
				s.beta[r] -= d[r] * step
			}
		}
	}
	if leaveRow < 0 {
		// Bound flip: j traverses to its opposite bound.
		if dir > 0 {
			s.stat[j] = atUpper
		} else {
			s.stat[j] = atLower
		}
		return 0
	}
	if s.devexW != nil {
		s.devexUpdate(j, leaveRow, d[leaveRow])
	}
	leaving := s.basis[leaveRow]
	if leaveToUpper {
		s.stat[leaving] = atUpper
	} else {
		s.stat[leaving] = atLower
	}
	var enterVal float64
	if dir > 0 {
		enterVal = loJ + t
	} else {
		enterVal = hiJ - t
	}
	s.basis[leaveRow] = j
	s.stat[j] = basic
	s.beta[leaveRow] = enterVal
	s.updates.push(d, leaveRow)
	return 0
}

// crashBasis installs the cold-start basis: structural columns at their
// lower bounds, each row served by its slack when the adjusted rhs allows,
// an artificial (with sign matching the residual) otherwise. Returns
// whether any artificial entered the basis (phase 1 needed).
func (s *sparse) crashBasis() bool {
	for j := 0; j < s.ncols; j++ {
		s.stat[j] = atLower
	}
	r0 := s.rhsBuf
	for i, rw := range s.p.rows {
		r0[i] = rw.rhs
	}
	for j := 0; j < s.n; j++ {
		if lo := s.p.lo[j]; lo != 0 {
			for q := s.csc.colPtr[j]; q < s.csc.colPtr[j+1]; q++ {
				r0[s.csc.rowIdx[q]] -= s.csc.val[q] * lo
			}
		}
	}
	hasArt := false
	for r, rw := range s.p.rows {
		slack, art := s.n+r, s.n+s.m+r
		useArt := false
		switch rw.rel {
		case LE:
			if r0[r] >= 0 {
				s.setBasic(r, slack, r0[r])
			} else {
				s.artSign[r] = -1
				useArt = true
			}
		case GE:
			if r0[r] <= 0 {
				s.setBasic(r, slack, -r0[r])
			} else {
				s.artSign[r] = 1
				useArt = true
			}
		case EQ:
			if r0[r] >= 0 {
				s.artSign[r] = 1
			} else {
				s.artSign[r] = -1
			}
			useArt = true
		}
		if useArt {
			s.setBasic(r, art, math.Abs(r0[r]))
			hasArt = true
		}
	}
	return hasArt
}

func (s *sparse) setBasic(r, col int, val float64) {
	s.basis[r] = col
	s.stat[col] = basic
	s.beta[r] = val
}

// runCold executes the classic two phases from the crash basis.
func (s *sparse) runCold() Status {
	needPhase1 := s.crashBasis()
	if !s.refactor() {
		return IterLimit
	}
	if needPhase1 {
		s.setPhase(true)
		st := s.iterate()
		if st != Optimal {
			if st == Unbounded {
				// The phase-1 objective is bounded below by 0; an
				// unbounded report means numerical trouble.
				return Infeasible
			}
			return st
		}
		obj1 := 0.0
		for r := 0; r < s.m; r++ {
			if s.basis[r] >= s.n+s.m {
				obj1 += s.beta[r]
			}
		}
		if obj1 > tolArt {
			return Infeasible
		}
		// Retire the artificials: phase 2 pins them to [0,0]; any still
		// basic sit degenerate at zero and the ratio test keeps them
		// there.
		s.setPhase(false)
		for j := s.n + s.m; j < s.ncols; j++ {
			if s.stat[j] == atUpper {
				s.stat[j] = atLower
			}
		}
	}
	s.bland = false
	return s.iterate()
}

// primalInfeasibility returns the largest bound violation among the basic
// values (0 when primal feasible).
func (s *sparse) primalInfeasibility() float64 {
	worst := 0.0
	for r := 0; r < s.m; r++ {
		lo, hi := s.bounds(s.basis[r])
		if v := lo - s.beta[r]; v > worst {
			worst = v
		}
		if v := s.beta[r] - hi; v > worst {
			worst = v
		}
	}
	return worst
}

// dualFeasible reports whether the current basis satisfies the phase-2
// optimality sign conditions on every enterable nonbasic column.
func (s *sparse) dualFeasible() bool {
	y := s.btranCost()
	for j := 0; j < s.ncols; j++ {
		if s.stat[j] == basic || !s.enterable(j) {
			continue
		}
		d := s.reducedCost(j, y)
		if s.stat[j] == atLower && d < -tolFeas {
			return false
		}
		if s.stat[j] == atUpper && d > tolFeas {
			return false
		}
	}
	return true
}

// installWarm loads a warm-start basis. Statuses are reinterpreted against
// the problem's current bounds (an atUpper column whose upper bound became
// +Inf degrades to atLower). Returns false if the basis cannot be
// factorized.
func (s *sparse) installWarm(b *Basis) bool {
	k := 0
	for j, st := range b.ColStat {
		switch st {
		case BasisBasic:
			if k == s.m {
				return false
			}
			s.stat[j] = basic
			s.basis[k] = j
			k++
		case BasisAtUpper:
			if _, hi := s.bounds(j); math.IsInf(hi, 1) {
				s.stat[j] = atLower
			} else {
				s.stat[j] = atUpper
			}
		default:
			s.stat[j] = atLower
		}
	}
	if k != s.m {
		return false
	}
	if !s.opts.RefactorOnInstall && s.adoptFactorization(b.Fact) {
		return true
	}
	return s.refactor()
}

// dualIterate runs dual simplex pivots from a dual-feasible basis until
// primal feasibility (→ Optimal), dual unboundedness (→ Infeasible), or a
// limit. The ratio test is the bounded-variable rule: candidates are the
// nonbasic columns whose admissible movement drives the leaving basic value
// toward its violated bound; the minimum |reduced cost / alpha| preserves
// dual feasibility.
func (s *sparse) dualIterate() Status {
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if !s.maybeRefactor() {
			return IterLimit
		}
		// Leaving row: the most violated basic value.
		leave, worst, toUpper := -1, tolFeas, false
		for r := 0; r < s.m; r++ {
			lo, hi := s.bounds(s.basis[r])
			if v := lo - s.beta[r]; v > worst {
				leave, worst, toUpper = r, v, false
			}
			if v := s.beta[r] - hi; v > worst {
				leave, worst, toUpper = r, v, true
			}
		}
		if leave < 0 {
			return Optimal
		}
		// rho = row `leave` of B⁻¹; alpha_j = rho·a_j.
		rho := s.yBuf
		for i := range rho {
			rho[i] = 0
		}
		rho[leave] = 1
		s.btran(rho)
		y := s.btranCostInto(s.rhsBuf)
		// Entering: minimize |d_j/alpha_j| over admissible columns.
		// needPos: when the basic value sits above its upper bound it must
		// decrease, so an at-lower candidate (which can only increase)
		// needs alpha > 0, an at-upper candidate alpha < 0 — and vice
		// versa below the lower bound.
		enter, bestRatio, bestAlpha := -1, math.Inf(1), 0.0
		for j := 0; j < s.ncols; j++ {
			if s.stat[j] == basic || !s.enterable(j) {
				continue
			}
			alpha := s.rowDot(j, rho)
			if math.Abs(alpha) <= tolPivot {
				continue
			}
			atLo := s.stat[j] != atUpper
			var ok bool
			if toUpper {
				ok = (atLo && alpha > 0) || (!atLo && alpha < 0)
			} else {
				ok = (atLo && alpha < 0) || (!atLo && alpha > 0)
			}
			if !ok {
				continue
			}
			d := s.reducedCost(j, y)
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && math.Abs(alpha) > math.Abs(bestAlpha)) {
				enter, bestRatio, bestAlpha = j, ratio, alpha
			}
		}
		if enter < 0 {
			return Infeasible // dual unbounded ⇒ primal infeasible
		}
		d := s.ftranColumn(enter)
		if math.Abs(d[leave]) <= tolPivot {
			// Drifted pivot. If the factorization is already fresh the
			// disagreement is not drift — bail. Otherwise refactorize
			// and restart the iteration: refactorization permutes the
			// basis-to-row assignment, so both `leave` and its
			// violated-bound direction must be re-derived from the
			// rebuilt basis rather than reused.
			if s.updates.count() == 0 || !s.refactor() {
				return IterLimit
			}
			continue
		}
		lo, hi := s.bounds(s.basis[leave])
		bound := lo
		if toUpper {
			bound = hi
		}
		step := (s.beta[leave] - bound) / d[leave]
		for r := 0; r < s.m; r++ {
			if d[r] != 0 {
				s.beta[r] -= d[r] * step
			}
		}
		leaving := s.basis[leave]
		if toUpper {
			s.stat[leaving] = atUpper
		} else {
			s.stat[leaving] = atLower
		}
		enterVal := s.xval(enter) + step
		s.basis[leave] = enter
		s.stat[enter] = basic
		s.beta[leave] = enterVal
		s.updates.push(d, leave)
		s.iters++
	}
}

// btranCostInto is btranCost writing into the caller's buffer (so the
// shared yBuf can hold rho concurrently).
func (s *sparse) btranCostInto(y []float64) []float64 {
	for r := 0; r < s.m; r++ {
		y[r] = s.cost(s.basis[r])
	}
	s.btran(y)
	return y
}

// rowDot computes rho·a_j for column j.
func (s *sparse) rowDot(j int, rho []float64) float64 {
	v := 0.0
	switch {
	case j < s.n:
		for q := s.csc.colPtr[j]; q < s.csc.colPtr[j+1]; q++ {
			v += rho[s.csc.rowIdx[q]] * s.csc.val[q]
		}
	case j < s.n+s.m:
		r := j - s.n
		v = rho[r] * s.slackSign[r]
	default:
		r := j - s.n - s.m
		v = rho[r] * s.artSign[r]
	}
	return v
}

// runWarm attempts a warm-started solve: primal phase 2 from a primal
// feasible basis, dual simplex from a dual feasible one. The bool reports
// whether the warm path produced a trustworthy terminal status; on false
// the caller must fall back to a cold solve.
func (s *sparse) runWarm(b *Basis) (Status, bool) {
	if !s.installWarm(b) {
		return 0, false
	}
	if s.primalInfeasibility() <= tolFeas {
		return s.iterate(), true
	}
	if !s.dualFeasible() {
		return 0, false
	}
	st := s.dualIterate()
	if st == Infeasible {
		// Dual unboundedness proves primal infeasibility, but the caller
		// re-verifies with a cold phase 1 before trusting it (a wrong
		// Infeasible would silently mis-prune branch-and-bound).
		return Infeasible, true
	}
	if st != Optimal {
		return 0, false
	}
	// Dual feasibility was maintained throughout, so this primal cleanup
	// normally confirms optimality in zero pivots.
	return s.iterate(), true
}

// extract returns the structural variable values, clamping sub-tolerance
// bound violations introduced by floating-point drift.
func (s *sparse) extract() []float64 {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.stat[j] == atUpper {
			x[j] = s.p.hi[j]
		} else {
			x[j] = s.p.lo[j]
		}
	}
	for r := 0; r < s.m; r++ {
		if b := s.basis[r]; b < s.n {
			v := s.beta[r]
			if lo := s.p.lo[b]; v < lo && v > lo-tolFeas {
				v = lo
			}
			if hi := s.p.hi[b]; v > hi && v < hi+tolFeas {
				v = hi
			}
			x[b] = v
		}
	}
	return x
}

// snapshotBasis captures the current basis for warm starts.
func (s *sparse) snapshotBasis() *Basis {
	b := &Basis{
		NumVars: s.n,
		NumRows: s.m,
		ColStat: make([]int8, s.ncols),
	}
	for j := 0; j < s.ncols; j++ {
		switch s.stat[j] {
		case basic:
			b.ColStat[j] = BasisBasic
		case atUpper:
			b.ColStat[j] = BasisAtUpper
		default:
			b.ColStat[j] = BasisAtLower
		}
	}
	b.Fact = s.snapshotFactorization()
	return b
}

// rowEquilibratedClone returns a copy of p with every constraint row divided
// by its largest absolute coefficient. That is the SAME linear program — the
// variables, bounds, objective, feasible set, and optimal vertices are all
// untouched, only the rows' numerical representation changes — so a solution
// of the clone is a solution of p verbatim. What it buys is conditioning:
// rows that mix O(10^3) aggregate unit loads with O(10) fanout coefficients
// feed the eta file pivots of wildly different magnitude, and the
// accumulated error eventually presents as a singular basis or a failed
// ratio test under EVERY pricing rule. The returned scale vector holds the
// per-row divisors, which is what maps the clone's duals back: clone row r
// is row_r/scale_r with rhs_r/scale_r, so the original shadow price is
// y_clone[r]/scale[r].
func (p *Problem) rowEquilibratedClone() (*Problem, []float64) {
	q := &Problem{
		n:    p.n,
		obj:  append([]float64(nil), p.obj...),
		lo:   append([]float64(nil), p.lo...),
		hi:   append([]float64(nil), p.hi...),
		rows: make([]row, len(p.rows)),
	}
	scale := make([]float64, len(p.rows))
	for r, rw := range p.rows {
		s := 0.0
		for _, c := range rw.coefs {
			if a := math.Abs(c.Val); a > s {
				s = a
			}
		}
		if s == 0 {
			s = 1
		}
		scale[r] = s
		coefs := make([]Coef, len(rw.coefs))
		for i, c := range rw.coefs {
			coefs[i] = Coef{Var: c.Var, Val: c.Val / s}
		}
		q.rows[r] = row{coefs: coefs, rel: rw.rel, rhs: rw.rhs / s}
	}
	return q, scale
}

// solveSparse orchestrates the sparse solver with a recovery ladder: warm
// start (when offered and usable) → cold solve → cold solve with a tight
// refactorization cadence → dense reference solver. Every claimed optimum
// is audited against the original rows before being returned. A cold solve
// that breaks down numerically long before its pivot budget (singular basis,
// failed ratio test) additionally retries under the alternate pricing rule,
// which walks a different path through the degenerate vertices, and then on
// a row-equilibrated clone of the problem, which removes the conditioning
// that caused the breakdown in the first place.
func (p *Problem) solveSparse(opts Options) (*Solution, error) {
	totalIters := 0
	var totalStats SolveStats
	finish := func(s *sparse, st Status) *Solution {
		sol := &Solution{Status: st, Iterations: totalIters, Stats: totalStats}
		if st == Optimal || st == IterLimit {
			sol.X = s.extract()
			sol.Objective = p.objectiveOf(sol.X)
		}
		if st == Optimal {
			sol.Basis = s.snapshotBasis()
			// At an optimum the solver sits in phase 2, so c_B·B⁻¹ prices
			// the true objective: these are the row shadow prices the
			// decomposition layers read back (Solution.DualsFor).
			sol.Duals = append([]float64(nil), s.btranCost()[:s.m]...)
		}
		return sol
	}

	if opts.WarmStart.compatible(p) {
		s := newSparse(p, opts)
		st, ok := s.runWarm(opts.WarmStart)
		totalIters += s.iters
		totalStats.Add(s.stats)
		if ok && st == Optimal {
			if x := s.extract(); p.CheckFeasible(x, 1e-6) == nil {
				return finish(s, st), nil
			}
		}
		// Anything else — unusable basis, non-optimal terminal status, or
		// an optimum that fails the audit — re-solves cold. In particular
		// a warm Infeasible is only trusted once phase 1 confirms it.
	}

	s := newSparse(p, opts)
	st := s.runCold()
	totalIters += s.iters
	totalStats.Add(s.stats)
	if st == Optimal {
		if x := s.extract(); p.CheckFeasible(x, 1e-6) != nil {
			// Numerical drift: once more with an eagerly refactorized
			// basis before surrendering to the dense reference solver.
			tight := opts
			tight.RefactorEvery = 16
			s2 := newSparse(p, tight)
			st2 := s2.runCold()
			totalIters += s2.iters
			totalStats.Add(s2.stats)
			if st2 == Optimal {
				if x2 := s2.extract(); p.CheckFeasible(x2, 1e-6) == nil {
					return finish(s2, st2), nil
				}
			}
			sol, err := p.solveDense(opts)
			if err == nil {
				sol.Iterations += totalIters
			}
			return sol, err
		}
	}
	if st == IterLimit && s.iters < s.maxIters {
		// IterLimit with pivots to spare is a numerical breakdown — a basis
		// that went singular or a ratio test that found no finite step — not
		// a genuine budget exhaustion. The pricing rule steered the solve
		// into that corner (devex reference weights concentrate on degenerate
		// columns; heavily weighted aggregate LPs trip this), so retry cold
		// under the alternate rule. Eager refactorization alone does NOT
		// recover these solves — the alternate pivot path is what escapes.
		alt := opts
		if opts.Pricing == DantzigPricing {
			alt.Pricing = DevexPricing
		} else {
			alt.Pricing = DantzigPricing
		}
		s2 := newSparse(p, alt)
		st2 := s2.runCold()
		totalIters += s2.iters
		totalStats.Add(s2.stats)
		if st2 == Optimal {
			if x := s2.extract(); p.CheckFeasible(x, 1e-6) == nil {
				return finish(s2, st2), nil
			}
		}
		// Both pricing rules broke down: the conditioning of the rows
		// themselves is the problem (heavily weighted aggregate rows mixing
		// O(10^3) and O(10) coefficients do this to the eta file). Re-solve a
		// row-equilibrated clone — the identical LP, renormalized — under
		// each rule. The clone's x IS a solution of p (row scaling never
		// touches the variables), audited against p's own rows below. The
		// basis is NOT carried out: its factorization is of the scaled rows
		// and must not warm-start the original problem.
		for _, o := range []Options{opts, alt} {
			q, scale := p.rowEquilibratedClone()
			s3 := newSparse(q, o)
			st3 := s3.runCold()
			totalIters += s3.iters
			totalStats.Add(s3.stats)
			if st3 == Optimal {
				if x := s3.extract(); p.CheckFeasible(x, 1e-6) == nil {
					// The clone's duals price the SCALED rows; undo the
					// per-row divisor so the caller sees p's shadow prices.
					duals := append([]float64(nil), s3.btranCost()[:s3.m]...)
					for r := range duals {
						duals[r] /= scale[r]
					}
					return &Solution{
						Status:     Optimal,
						X:          x,
						Objective:  p.objectiveOf(x),
						Iterations: totalIters,
						Stats:      totalStats,
						Duals:      duals,
					}, nil
				}
			}
		}
	}
	return finish(s, st), nil
}
