package lp

// Locks for the persistent basis factorization: a warm start that adopts a
// carried Factorization must reach the same optimum as one that refactorizes
// at install, adoption must be refused whenever a patched column is basic in
// the carried file, and the Forrest–Tomlin update file must stay bounded by
// the refactorization cadence across arbitrarily long patched-re-solve
// chains (the etaDrop truncation per eta would otherwise accumulate past the
// feasibility audit's tolerance).

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// patchEpoch applies one epoch of deterministic churn to a covering LP:
// objective drift on a third of the columns plus an RHS change — the exact
// churn surface the overlay Patcher drives (costs, thresholds), none of
// which touches the basis matrix B.
func patchEpoch(p *Problem, seed uint64) {
	rng := stats.NewRNG(seed)
	for j := 0; j < p.NumVars(); j++ {
		if rng.Bernoulli(0.33) {
			p.AddObjectiveCoef(j, rng.Range(-0.15, 0.15))
		}
	}
	r := rng.Intn(p.NumRows())
	_, rhs := p.RHS(r)
	p.SetRHS(r, rhs*rng.Range(0.95, 1.05))
}

// TestPersistedFactorizationAcrossPatchedEpochs is the property test for the
// persistent factorization: two chains solve the same 12-epoch patched
// re-solve sequence, one adopting the carried eta file (the default), one
// refactorizing at every install. Both must stay Optimal with matching
// objectives and feasible points every epoch, and the adopting chain must
// actually have adopted (FT-updates fired) — otherwise the test is vacuous.
func TestPersistedFactorizationAcrossPatchedEpochs(t *testing.T) {
	const epochs = 12
	var totalPersist, totalRefactor SolveStats
	for trial := 0; trial < 10; trial++ {
		seed := uint64(9000 + trial)
		pA := randomCovering(seed) // adopts persisted factorizations
		pB := randomCovering(seed) // refactorizes at every install
		solA, err := pA.SolveOpts(Options{})
		if err != nil {
			t.Fatal(err)
		}
		solB, err := pB.SolveOpts(Options{RefactorOnInstall: true})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < epochs; e++ {
			eseed := seed ^ uint64(e)*0x9e3779b97f4a7c15
			patchEpoch(pA, eseed)
			patchEpoch(pB, eseed)
			solA, err = pA.SolveOpts(Options{WarmStart: solA.Basis})
			if err != nil {
				t.Fatal(err)
			}
			solB, err = pB.SolveOpts(Options{WarmStart: solB.Basis, RefactorOnInstall: true})
			if err != nil {
				t.Fatal(err)
			}
			if solA.Status != solB.Status {
				t.Fatalf("trial %d epoch %d: status %v (persisted) vs %v (refactorized)",
					trial, e, solA.Status, solB.Status)
			}
			if solA.Status != Optimal {
				t.Fatalf("trial %d epoch %d: patched re-solve not optimal: %v", trial, e, solA.Status)
			}
			// Same optimum: trajectories may differ when near-tie pivots
			// resolve differently under the two elimination forms, but the
			// optimal value must agree to solver tolerance.
			if math.Abs(solA.Objective-solB.Objective) > 1e-9*(1+math.Abs(solB.Objective)) {
				t.Fatalf("trial %d epoch %d: persisted %.17g != refactorized %.17g",
					trial, e, solA.Objective, solB.Objective)
			}
			if err := pA.CheckFeasible(solA.X, 1e-6); err != nil {
				t.Fatalf("trial %d epoch %d: persisted point infeasible: %v", trial, e, err)
			}
			totalPersist.Add(solA.Stats)
			totalRefactor.Add(solB.Stats)
		}
	}
	t.Logf("persisted: %+v | refactorized: %+v", totalPersist, totalRefactor)
	if totalPersist.FTUpdates == 0 {
		t.Fatal("persisting chain never adopted a carried factorization")
	}
	if totalRefactor.FTUpdates != 0 {
		t.Fatal("RefactorOnInstall chain adopted a factorization")
	}
	if totalPersist.Refactorizations >= totalRefactor.Refactorizations {
		t.Fatalf("persistence bought no refactorizations: %d vs %d",
			totalPersist.Refactorizations, totalRefactor.Refactorizations)
	}
}

// TestPersistedFactorizationSameProblemAdopts: re-solving the identical
// problem from its own optimal basis must adopt the carried file — zero
// refactorizations, one FT install, the same optimum (to a few ulps: the
// adopting solve recomputes the basic values through the carried file,
// while the original solve reported values that accumulated pivot drift).
func TestPersistedFactorizationSameProblemAdopts(t *testing.T) {
	p := randomCovering(4242)
	first, err := p.Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("%v %v", first.Status, err)
	}
	if first.Basis == nil || first.Basis.Fact == nil {
		t.Fatal("optimal solve carried no factorization handle")
	}
	again, err := p.SolveOpts(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != Optimal || math.Abs(again.Objective-first.Objective) > 1e-12*(1+math.Abs(first.Objective)) {
		t.Fatalf("re-solve: %v %.17g, want optimal %.17g", again.Status, again.Objective, first.Objective)
	}
	if again.Stats.FTUpdates != 1 {
		t.Fatalf("FTUpdates = %d, want 1 (adoption)", again.Stats.FTUpdates)
	}
	if again.Stats.Refactorizations != 0 {
		t.Fatalf("re-solve of an unchanged problem refactorized %d times", again.Stats.Refactorizations)
	}
	if again.Iterations > 2 {
		t.Fatalf("re-solve from adopted factorization took %d iterations", again.Iterations)
	}
}

// TestPersistedFactorizationRejectsPatchedBasicColumn: patching a column
// that is basic in the carried file changes B itself, so adoption must be
// refused and the install must refactorize — and still reach the optimum of
// a freshly built problem with the same data.
func TestPersistedFactorizationRejectsPatchedBasicColumn(t *testing.T) {
	p := randomCovering(777)
	p.Precompute()
	first, err := p.Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("%v %v", first.Status, err)
	}
	// Find a structural column that is basic and a row it appears in.
	target, row, pos := -1, -1, -1
	for j := 0; j < p.NumVars() && target < 0; j++ {
		if first.Basis.ColStat[j] != BasisBasic {
			continue
		}
		for r := 0; r < p.NumRows() && target < 0; r++ {
			for k := 0; k < p.RowLen(r); k++ {
				if p.RowCoef(r, k).Var == j {
					target, row, pos = j, r, k
					break
				}
			}
		}
	}
	if target < 0 {
		t.Fatal("no basic structural column found")
	}
	p.SetRowCoef(row, pos, p.RowCoef(row, pos).Val*1.25)
	warm, err := p.SolveOpts(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm re-solve after basic-column patch: %v", warm.Status)
	}
	if warm.Stats.FTUpdates != 0 {
		t.Fatal("adoption was not refused for a patched basic column")
	}
	if warm.Stats.Refactorizations == 0 {
		t.Fatal("install did not refactorize after refusing adoption")
	}
	fresh, err := p.SolveOpts(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-fresh.Objective) > 1e-9 {
		t.Fatalf("post-patch warm %.17g != fresh %.17g", warm.Objective, fresh.Objective)
	}
}

// TestPersistedFactorizationUpdateEtasBounded is the etaDrop drift bound: a
// long chain of patched warm re-solves keeps appending Forrest–Tomlin
// update etas to the carried file, and the install-time cadence check must
// collapse the file by refactorizing before it outgrows RefactorEvery — so
// the accumulated per-eta truncation error never degrades the feasibility
// audit. Every epoch's carried handle is checked against the bound and
// every epoch's point against the feasibility tolerance.
func TestPersistedFactorizationUpdateEtasBounded(t *testing.T) {
	p := randomCovering(31337)
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", sol.Status, err)
	}
	bound := 16 + 2*int(math.Sqrt(float64(p.NumRows())))
	var total SolveStats
	for e := 0; e < 60; e++ {
		patchEpoch(p, uint64(100+e))
		sol, err = p.SolveOpts(Options{WarmStart: sol.Basis})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("epoch %d: %v", e, sol.Status)
		}
		if sol.Basis == nil || sol.Basis.Fact == nil {
			t.Fatalf("epoch %d: no factorization carried", e)
		}
		if n := sol.Basis.Fact.UpdateEtas(); n >= bound {
			t.Fatalf("epoch %d: carried update file holds %d etas, cadence bound is %d", e, n, bound)
		}
		if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("epoch %d: feasibility degraded: %v", e, err)
		}
		total.Add(sol.Stats)
	}
	t.Logf("60 patched epochs: %+v (update-eta bound %d)", total, bound)
	if total.FTUpdates == 0 {
		t.Fatal("chain never adopted a carried factorization")
	}
	if total.Refactorizations == 0 {
		t.Fatal("cadence never collapsed the update file across 60 epochs")
	}
}
