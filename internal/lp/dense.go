package lp

// The dense two-phase bounded-variable tableau simplex. This was the
// original solver of the repository and is retained behind Options.Dense as
// a golden reference implementation: it shares no code with the sparse
// revised simplex, so agreement between the two on an instance is strong
// evidence both are correct. Tests cross-check every sparse optimum against
// it; production call sites always take the sparse path.

import (
	"math"

	"repro/internal/par"
)

// denseSimplex is the working state: a dense tableau over columns
// [structural | slack | artificial], all shifted so lower bounds are 0.
type denseSimplex struct {
	p    *Problem
	opts Options

	m, n     int // rows, total columns
	nStruct  int
	nSlack   int
	tab      [][]float64 // m × n tableau, kept equal to B^{-1}A
	beta     []float64   // current basic values (shifted space)
	basis    []int       // basis[r] = column basic in row r
	stat     []vstat
	lo, hi   []float64 // shifted bounds: lo=0 for all, hi possibly +Inf
	shift    []float64 // original lower bounds of structural vars
	zrow     []float64 // reduced costs for current phase
	cost     []float64 // phase-2 costs per column
	artFirst int       // first artificial column
	iters    int
	maxIters int
	bland    bool
	parallel bool
}

func newDenseSimplex(p *Problem, opts Options) *denseSimplex {
	m := len(p.rows)
	s := &denseSimplex{p: p, opts: opts, m: m, nStruct: p.n}
	s.nSlack = 0
	for _, r := range p.rows {
		if r.rel != EQ {
			s.nSlack++
		}
	}
	// Worst case one artificial per row.
	maxCols := p.n + s.nSlack + m
	s.tab = make([][]float64, m)
	backing := make([]float64, m*maxCols)
	for r := range s.tab {
		s.tab[r], backing = backing[:maxCols:maxCols], backing[maxCols:]
	}
	s.beta = make([]float64, m)
	s.basis = make([]int, m)
	s.lo = make([]float64, maxCols)
	s.hi = make([]float64, maxCols)
	s.stat = make([]vstat, maxCols)
	s.cost = make([]float64, maxCols)
	s.zrow = make([]float64, maxCols)
	s.shift = make([]float64, p.n)

	// Structural columns, shifted to lower bound 0.
	for j := 0; j < p.n; j++ {
		s.shift[j] = p.lo[j]
		s.lo[j] = 0
		if math.IsInf(p.hi[j], 1) {
			s.hi[j] = math.Inf(1)
		} else {
			s.hi[j] = p.hi[j] - p.lo[j]
		}
		s.cost[j] = p.obj[j]
		s.stat[j] = atLower
	}

	// Fill rows: structural coefficients and shifted rhs.
	rhs := make([]float64, m)
	for r, rw := range p.rows {
		b := rw.rhs
		for _, c := range rw.coefs {
			s.tab[r][c.Var] += c.Val
			b -= c.Val * s.shift[c.Var]
		}
		rhs[r] = b
	}

	// Slack columns and initial basis; artificials where needed.
	col := p.n
	s.artFirst = p.n + s.nSlack
	artCol := s.artFirst
	for r, rw := range p.rows {
		switch rw.rel {
		case LE:
			s.tab[r][col] = 1
			s.hi[col] = math.Inf(1)
			if rhs[r] >= 0 {
				s.setBasic(r, col, rhs[r])
			} else {
				s.stat[col] = atLower
				s.tab[r][artCol] = -1
				s.hi[artCol] = math.Inf(1)
				s.setBasic(r, artCol, -rhs[r])
				artCol++
			}
			col++
		case GE:
			s.tab[r][col] = -1
			s.hi[col] = math.Inf(1)
			if rhs[r] <= 0 {
				s.setBasic(r, col, -rhs[r])
			} else {
				s.stat[col] = atLower
				s.tab[r][artCol] = 1
				s.hi[artCol] = math.Inf(1)
				s.setBasic(r, artCol, rhs[r])
				artCol++
			}
			col++
		case EQ:
			if rhs[r] >= 0 {
				s.tab[r][artCol] = 1
				s.setBasic(r, artCol, rhs[r])
			} else {
				s.tab[r][artCol] = -1
				s.setBasic(r, artCol, -rhs[r])
			}
			s.hi[artCol] = math.Inf(1)
			artCol++
		}
	}
	s.n = artCol
	// Truncate tableau rows to the actual column count.
	for r := range s.tab {
		s.tab[r] = s.tab[r][:s.n]
	}
	// The initial basis must appear as an identity in the tableau. GE
	// slacks and negative-rhs artificials enter with coefficient -1, so
	// negate those rows (the basic variable's *value* beta is unaffected:
	// it is a value, not a transformed rhs).
	for r := 0; r < s.m; r++ {
		if s.tab[r][s.basis[r]] == -1 {
			trow := s.tab[r]
			for j := range trow {
				trow[j] = -trow[j]
			}
		}
	}
	s.lo = s.lo[:s.n]
	s.hi = s.hi[:s.n]
	s.stat = s.stat[:s.n]
	s.cost = s.cost[:s.n]
	s.zrow = s.zrow[:s.n]

	s.maxIters = opts.MaxIters
	if s.maxIters <= 0 {
		s.maxIters = 200*(m+s.n) + 2000
	}
	s.parallel = !opts.SerialOnly && m*s.n >= 1<<18
	return s
}

func (s *denseSimplex) setBasic(r, col int, val float64) {
	s.basis[r] = col
	s.stat[col] = basic
	s.beta[r] = val
}

// run executes phase 1 (if artificials exist) and phase 2.
func (s *denseSimplex) run() Status {
	hasArt := s.n > s.artFirst
	if hasArt {
		// Phase-1 objective: minimize sum of artificials.
		phase1 := make([]float64, s.n)
		for j := s.artFirst; j < s.n; j++ {
			phase1[j] = 1
		}
		s.installObjective(phase1)
		st := s.iterate()
		if st != Optimal {
			if st == Unbounded {
				// Phase-1 objective is bounded below by 0; an
				// unbounded report means numerical trouble.
				return Infeasible
			}
			return st
		}
		if s.phaseObjective(phase1) > tolArt {
			return Infeasible
		}
		// Freeze artificials at zero.
		for j := s.artFirst; j < s.n; j++ {
			s.hi[j] = 0
			if s.stat[j] == atUpper {
				s.stat[j] = atLower
			}
		}
	}
	s.installObjective(s.cost)
	return s.iterate()
}

// phaseObjective computes c·x for the given per-column costs at the current
// point (in shifted space).
func (s *denseSimplex) phaseObjective(c []float64) float64 {
	v := 0.0
	for j := 0; j < s.n; j++ {
		switch s.stat[j] {
		case atLower:
			v += c[j] * s.lo[j]
		case atUpper:
			v += c[j] * s.hi[j]
		}
	}
	for r := 0; r < s.m; r++ {
		v += c[s.basis[r]] * s.beta[r]
	}
	return v
}

// installObjective recomputes the reduced-cost row for costs c:
// zrow_j = c_j − c_B · tab_j.
func (s *denseSimplex) installObjective(c []float64) {
	copy(s.zrow, c)
	for r := 0; r < s.m; r++ {
		cb := c[s.basis[r]]
		if cb == 0 {
			continue
		}
		trow := s.tab[r]
		for j := 0; j < s.n; j++ {
			s.zrow[j] -= cb * trow[j]
		}
	}
	// Basic columns have zero reduced cost by construction; clamp
	// accumulated error.
	for r := 0; r < s.m; r++ {
		s.zrow[s.basis[r]] = 0
	}
}

// iterate runs simplex pivots until optimal/unbounded/limit.
func (s *denseSimplex) iterate() Status {
	blandAfter := 20*(s.m+s.n) + 1000
	start := s.iters
	for {
		if s.iters-start > blandAfter {
			s.bland = true
		}
		if s.iters >= s.maxIters {
			return IterLimit
		}
		j, dir := s.chooseEntering()
		if j < 0 {
			return Optimal
		}
		st := s.ratioTestAndPivot(j, dir)
		if st != 0 {
			return st
		}
		s.iters++
	}
}

// chooseEntering returns the entering column and direction (+1 when the
// variable increases from its lower bound, -1 when it decreases from its
// upper bound), or (-1, 0) at optimality.
func (s *denseSimplex) chooseEntering() (int, float64) {
	bestJ, bestDir, bestScore := -1, 0.0, tolCost
	for j := 0; j < s.n; j++ {
		switch s.stat[j] {
		case basic:
			continue
		case atLower:
			if d := -s.zrow[j]; d > bestScore {
				if s.bland {
					return j, 1
				}
				bestJ, bestDir, bestScore = j, 1, d
			}
		case atUpper:
			if d := s.zrow[j]; d > bestScore {
				if s.bland {
					return j, -1
				}
				bestJ, bestDir, bestScore = j, -1, d
			}
		}
	}
	return bestJ, bestDir
}

// ratioTestAndPivot moves entering column j in direction dir, performing a
// bound flip or a basis change. Returns a terminal status or 0 to continue.
func (s *denseSimplex) ratioTestAndPivot(j int, dir float64) Status {
	// Maximum step before j hits its own opposite bound.
	tMax := s.hi[j] - s.lo[j] // may be +Inf
	leaveRow := -1
	leaveToUpper := false
	bestPivot := 0.0
	t := tMax
	for r := 0; r < s.m; r++ {
		a := s.tab[r][j] * dir
		if a > tolPivot {
			// Basic variable decreases toward its lower bound.
			lim := (s.beta[r] - s.lo[s.basis[r]]) / a
			if lim < t-1e-12 || (lim < t+1e-12 && math.Abs(s.tab[r][j]) > math.Abs(bestPivot)) {
				if lim < 0 {
					lim = 0
				}
				t = lim
				leaveRow = r
				leaveToUpper = false
				bestPivot = s.tab[r][j]
			}
		} else if a < -tolPivot {
			// Basic variable increases toward its upper bound.
			ub := s.hi[s.basis[r]]
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - s.beta[r]) / (-a)
			if lim < t-1e-12 || (lim < t+1e-12 && math.Abs(s.tab[r][j]) > math.Abs(bestPivot)) {
				if lim < 0 {
					lim = 0
				}
				t = lim
				leaveRow = r
				leaveToUpper = true
				bestPivot = s.tab[r][j]
			}
		}
	}
	if math.IsInf(t, 1) {
		return Unbounded
	}
	// Apply the step to basic values.
	if t != 0 {
		step := t * dir
		for r := 0; r < s.m; r++ {
			s.beta[r] -= s.tab[r][j] * step
		}
	}
	if leaveRow < 0 {
		// Bound flip: j traverses to its opposite bound.
		if dir > 0 {
			s.stat[j] = atUpper
		} else {
			s.stat[j] = atLower
		}
		return 0
	}
	// Basis change: j enters at value (bound + t·dir), basis[leaveRow]
	// leaves to one of its bounds.
	leaving := s.basis[leaveRow]
	if leaveToUpper {
		s.stat[leaving] = atUpper
	} else {
		s.stat[leaving] = atLower
	}
	var enterVal float64
	if dir > 0 {
		enterVal = s.lo[j] + t
	} else {
		enterVal = s.hi[j] - t
	}
	s.basis[leaveRow] = j
	s.stat[j] = basic
	s.beta[leaveRow] = enterVal
	s.eliminate(leaveRow, j)
	return 0
}

// eliminate performs the Gauss–Jordan pivot on (prow, pcol), updating the
// tableau and the reduced-cost row. Basic values are NOT touched: a basis
// swap does not move the current point (the step was already applied by the
// ratio test). Row elimination is parallelized for large tableaus.
func (s *denseSimplex) eliminate(prow, pcol int) {
	piv := s.tab[prow][pcol]
	prowData := s.tab[prow]
	if piv != 1 {
		inv := 1 / piv
		for j := range prowData {
			prowData[j] *= inv
		}
		prowData[pcol] = 1 // exact
	}
	elimRange := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			if r == prow {
				continue
			}
			f := s.tab[r][pcol]
			if f == 0 {
				continue
			}
			trow := s.tab[r]
			for j := range trow {
				trow[j] -= f * prowData[j]
			}
			trow[pcol] = 0 // exact
		}
	}
	if s.parallel {
		par.Chunks(s.m, 0, elimRange)
	} else {
		elimRange(0, s.m)
	}
	if f := s.zrow[pcol]; f != 0 {
		for j := range s.zrow {
			s.zrow[j] -= f * prowData[j]
		}
		s.zrow[pcol] = 0
	}
}

// extract returns structural variable values in original (unshifted) space.
func (s *denseSimplex) extract() []float64 {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		switch s.stat[j] {
		case atLower:
			x[j] = s.shift[j]
		case atUpper:
			x[j] = s.shift[j] + s.hi[j]
		}
	}
	for r := 0; r < s.m; r++ {
		if b := s.basis[r]; b < s.nStruct {
			v := s.beta[r]
			// Clamp tiny negative noise into bounds.
			if v < 0 && v > -tolFeas {
				v = 0
			}
			x[b] = s.shift[b] + v
		}
	}
	return x
}
