package lp

// Locks for the dual-value plumbing the decomposition layers build on:
// Solution.Duals must be the true shadow prices of the rows (validated on a
// hand-solved LP, by complementary slackness on random instances, and by
// finite-difference perturbation), and the fingerprint-based factorization
// adoption must let a rebuilt-but-identical Problem resume a persisted basis
// while refusing any matrix that actually differs.

import (
	"math"
	"testing"
)

// TestSolutionDualsKnown checks the duals of a hand-solved LP:
//
//	min  −x1 − 2·x2   s.t.  x1 + x2 ≤ 4,  x2 ≤ 2,  x ≥ 0
//
// Optimum x = (2, 2), objective −6; both rows bind with y = (−1, −1)
// (pricing out the basic columns: −1 − y1 = 0 and −2 − y1 − y2 = 0).
func TestSolutionDualsKnown(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.SetObjectiveCoef(1, -2)
	r0 := p.AddConstraint(LE, 4, Coef{0, 1}, Coef{1, 1})
	r1 := p.AddConstraint(LE, 2, Coef{1, 1})
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", sol, err)
	}
	if math.Abs(sol.Objective+6) > 1e-9 {
		t.Fatalf("objective %g, want -6", sol.Objective)
	}
	y := sol.DualsFor([]int{r0, r1})
	if y == nil {
		t.Fatal("optimal sparse solve returned no duals")
	}
	if math.Abs(y[0]+1) > 1e-9 || math.Abs(y[1]+1) > 1e-9 {
		t.Fatalf("duals %v, want (-1, -1)", y)
	}
	// Out-of-range rows read as 0; nil-solution and dense solves return nil.
	if got := sol.DualsFor([]int{99, -1}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("out-of-range duals %v, want zeros", got)
	}
	dense, err := p.SolveOpts(Options{Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	if dense.DualsFor([]int{r0}) != nil {
		t.Fatal("dense reference solver unexpectedly produced duals")
	}
	var nilSol *Solution
	if nilSol.DualsFor([]int{0}) != nil {
		t.Fatal("nil solution produced duals")
	}
}

// TestSolutionDualsComplementarySlackness checks, across random covering
// LPs, the optimality certificate the duals must satisfy: sign-correct row
// prices (≥ rows of a minimization price ≥ 0), complementary slackness
// (nonbinding rows price at 0), and dual-feasible structural reduced costs
// against the bound each variable sits at.
func TestSolutionDualsComplementarySlackness(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		p := randomCovering(uint64(5000 + trial))
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, sol.Status, err)
		}
		if len(sol.Duals) != p.NumRows() {
			t.Fatalf("trial %d: %d duals for %d rows", trial, len(sol.Duals), p.NumRows())
		}
		const tol = 1e-7
		for r := 0; r < p.NumRows(); r++ {
			yr := sol.Duals[r]
			if yr < -tol {
				t.Fatalf("trial %d row %d: GE row priced %g < 0", trial, r, yr)
			}
			act := 0.0
			for k := 0; k < p.RowLen(r); k++ {
				c := p.RowCoef(r, k)
				act += c.Val * sol.X[c.Var]
			}
			_, rhs := p.RHS(r)
			if slack := act - rhs; math.Abs(yr*slack) > 1e-5 {
				t.Fatalf("trial %d row %d: y=%g with slack %g violates complementary slackness", trial, r, yr, slack)
			}
		}
		// Reduced costs d_j = c_j − y·a_j: ≥ 0 at the lower bound, ≤ 0 at
		// the upper, ≈ 0 for basic columns.
		red := make([]float64, p.NumVars())
		for j := range red {
			red[j] = p.ObjectiveCoef(j)
		}
		for r := 0; r < p.NumRows(); r++ {
			for k := 0; k < p.RowLen(r); k++ {
				c := p.RowCoef(r, k)
				red[c.Var] -= sol.Duals[r] * c.Val
			}
		}
		for j := 0; j < p.NumVars(); j++ {
			lo, hi := p.Bounds(j)
			switch {
			case sol.Basis.ColStat[j] == BasisBasic:
				if math.Abs(red[j]) > 1e-6 {
					t.Fatalf("trial %d var %d: basic column has reduced cost %g", trial, j, red[j])
				}
			case math.Abs(sol.X[j]-lo) < 1e-9:
				if red[j] < -1e-6 {
					t.Fatalf("trial %d var %d: at lower bound with reduced cost %g", trial, j, red[j])
				}
			case math.Abs(sol.X[j]-hi) < 1e-9:
				if red[j] > 1e-6 {
					t.Fatalf("trial %d var %d: at upper bound with reduced cost %g", trial, j, red[j])
				}
			}
		}
	}
}

// TestSolutionDualsShadowPrice checks the marginal interpretation by finite
// difference: relaxing a binding row's rhs by ε must move the optimum by
// ≈ y_r·ε (the perturbation is small enough to keep the optimal basis).
func TestSolutionDualsShadowPrice(t *testing.T) {
	p := randomCovering(6101)
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("%v %v", sol.Status, err)
	}
	const eps = 1e-5
	checked := 0
	for r := 0; r < p.NumRows() && checked < 5; r++ {
		if math.Abs(sol.Duals[r]) < 1e-6 {
			continue
		}
		_, rhs := p.RHS(r)
		p.SetRHS(r, rhs+eps)
		bumped, err := p.Solve()
		p.SetRHS(r, rhs)
		if err != nil || bumped.Status != Optimal {
			t.Fatalf("row %d bump: %v %v", r, bumped.Status, err)
		}
		got := (bumped.Objective - sol.Objective) / eps
		if math.Abs(got-sol.Duals[r]) > 1e-3*(1+math.Abs(sol.Duals[r])) {
			t.Fatalf("row %d: finite-difference price %g != dual %g", r, got, sol.Duals[r])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no binding row with a nonzero dual to check")
	}
}

// TestFingerprintAdoptionAcrossRebuiltProblems: a Problem rebuilt from the
// same data is a different pointer but the identical matrix, so a warm start
// carrying the original's factorization must adopt it (fingerprint route) —
// zero refactorizations — and reach the same optimum.
func TestFingerprintAdoptionAcrossRebuiltProblems(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		seed := uint64(7100 + trial)
		p := randomCovering(seed)
		first, err := p.Solve()
		if err != nil || first.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, first.Status, err)
		}
		rebuilt := randomCovering(seed)
		again, err := rebuilt.SolveOpts(Options{WarmStart: first.Basis})
		if err != nil {
			t.Fatal(err)
		}
		if again.Status != Optimal || math.Abs(again.Objective-first.Objective) > 1e-9*(1+math.Abs(first.Objective)) {
			t.Fatalf("trial %d: rebuilt solve %v %.17g, want optimal %.17g",
				trial, again.Status, again.Objective, first.Objective)
		}
		if again.Stats.FTUpdates == 0 {
			t.Fatalf("trial %d: rebuilt problem did not adopt via fingerprint", trial)
		}
		if again.Stats.Refactorizations != 0 {
			t.Fatalf("trial %d: rebuilt problem refactorized %d times", trial, again.Stats.Refactorizations)
		}
	}
}

// TestFingerprintAdoptionRefusesChangedMatrix: the fingerprint route must
// refuse when either side's matrix moved — a patched adopter no longer
// matches the donor snapshot, and a donor patched after the snapshot can no
// longer vouch for the file it handed out. Both cases must silently
// refactorize and still solve correctly.
func TestFingerprintAdoptionRefusesChangedMatrix(t *testing.T) {
	seed := uint64(7300)
	p := randomCovering(seed)
	first, err := p.Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("%v %v", first.Status, err)
	}

	// Adopter's matrix differs from the donor's.
	patched := randomCovering(seed)
	patched.SetRowCoef(0, 0, patched.RowCoef(0, 0).Val*1.5)
	warm, err := patched.SolveOpts(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("patched-adopter warm solve: %v", warm.Status)
	}
	if warm.Stats.FTUpdates != 0 {
		t.Fatal("fingerprint adoption accepted a patched adopter")
	}
	if warm.Stats.Refactorizations == 0 {
		t.Fatal("refused adoption did not refactorize")
	}

	// Donor patched after the snapshot: its current fingerprint no longer
	// describes the matrix the file was built from.
	p.SetRowCoef(0, 0, p.RowCoef(0, 0).Val*1.5)
	rebuilt := randomCovering(seed)
	warm2, err := rebuilt.SolveOpts(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Status != Optimal {
		t.Fatalf("stale-donor warm solve: %v", warm2.Status)
	}
	if warm2.Stats.FTUpdates != 0 {
		t.Fatal("fingerprint adoption trusted a donor patched after the snapshot")
	}
}

// TestDevexResetOnPatchedAdoption: adopting a factorization over a matrix
// whose values moved since the snapshot (a nonbasic column patch — the
// price-exchange master rescaling a capacity row) must declare a fresh devex
// reference framework. The adoption itself still goes through without a
// refactorization.
func TestDevexResetOnPatchedAdoption(t *testing.T) {
	p := randomCovering(7500)
	first, err := p.Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("%v %v", first.Status, err)
	}
	// Patch a structural column that is NOT basic (a basic patch would
	// force a refactorization, which resets devex anyway).
	target, row, pos := -1, -1, -1
	for r := 0; r < p.NumRows() && target < 0; r++ {
		for k := 0; k < p.RowLen(r); k++ {
			if j := p.RowCoef(r, k).Var; first.Basis.ColStat[j] != BasisBasic {
				target, row, pos = j, r, k
				break
			}
		}
	}
	if target < 0 {
		t.Fatal("no nonbasic structural column found")
	}
	p.SetRowCoef(row, pos, p.RowCoef(row, pos).Val*1.1)
	warm, err := p.SolveOpts(Options{WarmStart: first.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm solve after nonbasic patch: %v", warm.Status)
	}
	if warm.Stats.FTUpdates == 0 {
		t.Fatal("nonbasic patch blocked adoption")
	}
	if warm.Stats.Refactorizations != 0 {
		t.Fatalf("nonbasic patch refactorized %d times", warm.Stats.Refactorizations)
	}
	if warm.Stats.DevexResets == 0 {
		t.Fatal("adoption over a patched matrix did not reset the devex reference framework")
	}

	// Control: an unpatched same-problem re-solve adopts with NO reset.
	q := randomCovering(7501)
	base, err := q.Solve()
	if err != nil || base.Status != Optimal {
		t.Fatalf("%v %v", base.Status, err)
	}
	clean, err := q.SolveOpts(Options{WarmStart: base.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.FTUpdates == 0 || clean.Stats.Refactorizations != 0 {
		t.Fatalf("clean re-solve did not adopt: %+v", clean.Stats)
	}
	if clean.Stats.DevexResets != 0 {
		t.Fatalf("clean adoption reset devex %d times", clean.Stats.DevexResets)
	}
}
