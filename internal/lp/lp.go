// Package lp implements a dense, two-phase, bounded-variable primal simplex
// solver for linear programs
//
//	minimize    c·x
//	subject to  row_i · x  {≤,=,≥}  b_i
//	            lo_j ≤ x_j ≤ hi_j
//
// It is exact (up to floating-point tolerances), handles variable upper
// bounds natively (no explicit bound rows, which keeps the paper's LP at
// O(|R|·|D|) rows instead of doubling), uses Dantzig pricing with a Bland
// anti-cycling fallback, and parallelizes tableau elimination across
// goroutines for large instances.
//
// The solver is deliberately dense: the overlay-design LPs this repository
// solves exactly are small enough (thousands of rows) that a dense tableau
// with parallel pivots is simpler and more robust than sparse LU machinery.
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/par"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // row·x ≤ rhs
	GE            // row·x ≥ rhs
	EQ            // row·x = rhs
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Coef is one nonzero coefficient of a constraint row.
type Coef struct {
	Var int
	Val float64
}

type row struct {
	coefs []Coef
	rel   Rel
	rhs   float64
}

// Problem accumulates an LP. The zero Problem is not usable; create one
// with NewProblem.
type Problem struct {
	n    int // number of structural variables
	obj  []float64
	lo   []float64
	hi   []float64
	rows []row
}

// NewProblem returns a problem with numVars structural variables, objective
// zero, and default bounds [0, +Inf).
func NewProblem(numVars int) *Problem {
	p := &Problem{
		n:   numVars,
		obj: make([]float64, numVars),
		lo:  make([]float64, numVars),
		hi:  make([]float64, numVars),
	}
	for j := range p.hi {
		p.hi[j] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjectiveCoef sets the objective coefficient of variable j.
func (p *Problem) SetObjectiveCoef(j int, v float64) {
	p.obj[j] = v
}

// AddObjectiveCoef adds v to the objective coefficient of variable j.
func (p *Problem) AddObjectiveCoef(j int, v float64) {
	p.obj[j] += v
}

// SetBounds sets lo ≤ x_j ≤ hi. Lower bounds must be finite (the overlay
// LPs never need -Inf lower bounds; supporting them would complicate the
// variable shift for no benefit).
func (p *Problem) SetBounds(j int, lo, hi float64) {
	p.lo[j] = lo
	p.hi[j] = hi
}

// Bounds returns the current bounds of variable j. Branch-and-bound uses it
// to save and restore bounds around branching decisions.
func (p *Problem) Bounds(j int) (lo, hi float64) {
	return p.lo[j], p.hi[j]
}

// AddConstraint appends the constraint (Σ coefs) rel rhs and returns its row
// index. Coefficients referring to the same variable are summed.
func (p *Problem) AddConstraint(rel Rel, rhs float64, coefs ...Coef) int {
	cp := make([]Coef, len(coefs))
	copy(cp, coefs)
	p.rows = append(p.rows, row{coefs: cp, rel: rel, rhs: rhs})
	return len(p.rows) - 1
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution is the result of Solve.
type Solution struct {
	Status     Status
	X          []float64 // structural variable values
	Objective  float64
	Iterations int
}

// Options tunes the solver. The zero value selects sensible defaults.
type Options struct {
	// MaxIters bounds total pivots across both phases (default
	// 200*(rows+vars)+2000).
	MaxIters int
	// Parallel enables goroutine-parallel tableau elimination for large
	// tableaus (default on; set to false in tests that measure serial
	// behaviour).
	SerialOnly bool
}

// numerical tolerances
const (
	tolPivot = 1e-9 // minimum |pivot| accepted
	tolCost  = 1e-9 // reduced-cost optimality tolerance
	tolFeas  = 1e-7 // feasibility tolerance on variable bounds
	tolArt   = 1e-7 // phase-1 objective threshold for feasibility
)

// variable status in the simplex
type vstat int8

const (
	atLower vstat = iota
	atUpper
	basic
)

// Solve runs the two-phase bounded-variable simplex and returns the optimal
// solution, or a Solution with a non-Optimal status.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveOpts(Options{})
}

// SolveOpts is Solve with explicit options.
func (p *Problem) SolveOpts(opts Options) (*Solution, error) {
	for j := 0; j < p.n; j++ {
		if math.IsInf(p.lo[j], -1) || math.IsNaN(p.lo[j]) {
			return nil, fmt.Errorf("lp: variable %d has non-finite lower bound %g", j, p.lo[j])
		}
		if p.hi[j] < p.lo[j] {
			return nil, fmt.Errorf("lp: variable %d has empty bound range [%g,%g]", j, p.lo[j], p.hi[j])
		}
	}
	s := newSimplex(p, opts)
	st := s.run()
	sol := &Solution{Status: st, Iterations: s.iters}
	if st == Optimal || st == IterLimit {
		sol.X = s.extract()
		obj := 0.0
		for j := 0; j < p.n; j++ {
			obj += p.obj[j] * sol.X[j]
		}
		sol.Objective = obj
	}
	return sol, nil
}

// simplex is the working state: a dense tableau over columns
// [structural | slack | artificial], all shifted so lower bounds are 0.
type simplex struct {
	p    *Problem
	opts Options

	m, n     int // rows, total columns
	nStruct  int
	nSlack   int
	tab      [][]float64 // m × n tableau, kept equal to B^{-1}A
	beta     []float64   // current basic values (shifted space)
	basis    []int       // basis[r] = column basic in row r
	stat     []vstat
	lo, hi   []float64 // shifted bounds: lo=0 for all, hi possibly +Inf
	shift    []float64 // original lower bounds of structural vars
	zrow     []float64 // reduced costs for current phase
	cost     []float64 // phase-2 costs per column
	artFirst int       // first artificial column
	iters    int
	maxIters int
	bland    bool
	parallel bool
}

func newSimplex(p *Problem, opts Options) *simplex {
	m := len(p.rows)
	s := &simplex{p: p, opts: opts, m: m, nStruct: p.n}
	s.nSlack = 0
	for _, r := range p.rows {
		if r.rel != EQ {
			s.nSlack++
		}
	}
	// Worst case one artificial per row.
	maxCols := p.n + s.nSlack + m
	s.tab = make([][]float64, m)
	backing := make([]float64, m*maxCols)
	for r := range s.tab {
		s.tab[r], backing = backing[:maxCols:maxCols], backing[maxCols:]
	}
	s.beta = make([]float64, m)
	s.basis = make([]int, m)
	s.lo = make([]float64, maxCols)
	s.hi = make([]float64, maxCols)
	s.stat = make([]vstat, maxCols)
	s.cost = make([]float64, maxCols)
	s.zrow = make([]float64, maxCols)
	s.shift = make([]float64, p.n)

	// Structural columns, shifted to lower bound 0.
	for j := 0; j < p.n; j++ {
		s.shift[j] = p.lo[j]
		s.lo[j] = 0
		if math.IsInf(p.hi[j], 1) {
			s.hi[j] = math.Inf(1)
		} else {
			s.hi[j] = p.hi[j] - p.lo[j]
		}
		s.cost[j] = p.obj[j]
		s.stat[j] = atLower
	}

	// Fill rows: structural coefficients and shifted rhs.
	rhs := make([]float64, m)
	for r, rw := range p.rows {
		b := rw.rhs
		for _, c := range rw.coefs {
			s.tab[r][c.Var] += c.Val
			b -= c.Val * s.shift[c.Var]
		}
		rhs[r] = b
	}

	// Slack columns and initial basis; artificials where needed.
	col := p.n
	s.artFirst = p.n + s.nSlack
	artCol := s.artFirst
	for r, rw := range p.rows {
		switch rw.rel {
		case LE:
			s.tab[r][col] = 1
			s.hi[col] = math.Inf(1)
			if rhs[r] >= 0 {
				s.setBasic(r, col, rhs[r])
			} else {
				s.stat[col] = atLower
				s.tab[r][artCol] = -1
				s.hi[artCol] = math.Inf(1)
				s.setBasic(r, artCol, -rhs[r])
				artCol++
			}
			col++
		case GE:
			s.tab[r][col] = -1
			s.hi[col] = math.Inf(1)
			if rhs[r] <= 0 {
				s.setBasic(r, col, -rhs[r])
			} else {
				s.stat[col] = atLower
				s.tab[r][artCol] = 1
				s.hi[artCol] = math.Inf(1)
				s.setBasic(r, artCol, rhs[r])
				artCol++
			}
			col++
		case EQ:
			if rhs[r] >= 0 {
				s.tab[r][artCol] = 1
				s.setBasic(r, artCol, rhs[r])
			} else {
				s.tab[r][artCol] = -1
				s.setBasic(r, artCol, -rhs[r])
			}
			s.hi[artCol] = math.Inf(1)
			artCol++
		}
	}
	s.n = artCol
	// Truncate tableau rows to the actual column count.
	for r := range s.tab {
		s.tab[r] = s.tab[r][:s.n]
	}
	// The initial basis must appear as an identity in the tableau. GE
	// slacks and negative-rhs artificials enter with coefficient -1, so
	// negate those rows (the basic variable's *value* beta is unaffected:
	// it is a value, not a transformed rhs).
	for r := 0; r < s.m; r++ {
		if s.tab[r][s.basis[r]] == -1 {
			trow := s.tab[r]
			for j := range trow {
				trow[j] = -trow[j]
			}
		}
	}
	s.lo = s.lo[:s.n]
	s.hi = s.hi[:s.n]
	s.stat = s.stat[:s.n]
	s.cost = s.cost[:s.n]
	s.zrow = s.zrow[:s.n]

	s.maxIters = opts.MaxIters
	if s.maxIters <= 0 {
		s.maxIters = 200*(m+s.n) + 2000
	}
	s.parallel = !opts.SerialOnly && m*s.n >= 1<<18
	return s
}

func (s *simplex) setBasic(r, col int, val float64) {
	s.basis[r] = col
	s.stat[col] = basic
	s.beta[r] = val
}

// run executes phase 1 (if artificials exist) and phase 2.
func (s *simplex) run() Status {
	hasArt := s.n > s.artFirst
	if hasArt {
		// Phase-1 objective: minimize sum of artificials.
		phase1 := make([]float64, s.n)
		for j := s.artFirst; j < s.n; j++ {
			phase1[j] = 1
		}
		s.installObjective(phase1)
		st := s.iterate()
		if st != Optimal {
			if st == Unbounded {
				// Phase-1 objective is bounded below by 0; an
				// unbounded report means numerical trouble.
				return Infeasible
			}
			return st
		}
		if s.phaseObjective(phase1) > tolArt {
			return Infeasible
		}
		// Freeze artificials at zero.
		for j := s.artFirst; j < s.n; j++ {
			s.hi[j] = 0
			if s.stat[j] == atUpper {
				s.stat[j] = atLower
			}
		}
	}
	s.installObjective(s.cost)
	return s.iterate()
}

// phaseObjective computes c·x for the given per-column costs at the current
// point (in shifted space).
func (s *simplex) phaseObjective(c []float64) float64 {
	v := 0.0
	for j := 0; j < s.n; j++ {
		switch s.stat[j] {
		case atLower:
			v += c[j] * s.lo[j]
		case atUpper:
			v += c[j] * s.hi[j]
		}
	}
	for r := 0; r < s.m; r++ {
		v += c[s.basis[r]] * s.beta[r]
	}
	return v
}

// installObjective recomputes the reduced-cost row for costs c:
// zrow_j = c_j − c_B · tab_j.
func (s *simplex) installObjective(c []float64) {
	copy(s.zrow, c)
	for r := 0; r < s.m; r++ {
		cb := c[s.basis[r]]
		if cb == 0 {
			continue
		}
		trow := s.tab[r]
		for j := 0; j < s.n; j++ {
			s.zrow[j] -= cb * trow[j]
		}
	}
	// Basic columns have zero reduced cost by construction; clamp
	// accumulated error.
	for r := 0; r < s.m; r++ {
		s.zrow[s.basis[r]] = 0
	}
}

// iterate runs simplex pivots until optimal/unbounded/limit.
func (s *simplex) iterate() Status {
	blandAfter := 20*(s.m+s.n) + 1000
	start := s.iters
	for {
		if s.iters-start > blandAfter {
			s.bland = true
		}
		if s.iters >= s.maxIters {
			return IterLimit
		}
		j, dir := s.chooseEntering()
		if j < 0 {
			return Optimal
		}
		st := s.ratioTestAndPivot(j, dir)
		if st != 0 {
			return st
		}
		s.iters++
	}
}

// chooseEntering returns the entering column and direction (+1 when the
// variable increases from its lower bound, -1 when it decreases from its
// upper bound), or (-1, 0) at optimality.
func (s *simplex) chooseEntering() (int, float64) {
	bestJ, bestDir, bestScore := -1, 0.0, tolCost
	for j := 0; j < s.n; j++ {
		switch s.stat[j] {
		case basic:
			continue
		case atLower:
			if d := -s.zrow[j]; d > bestScore {
				if s.bland {
					return j, 1
				}
				bestJ, bestDir, bestScore = j, 1, d
			}
		case atUpper:
			if d := s.zrow[j]; d > bestScore {
				if s.bland {
					return j, -1
				}
				bestJ, bestDir, bestScore = j, -1, d
			}
		}
	}
	return bestJ, bestDir
}

// ratioTestAndPivot moves entering column j in direction dir, performing a
// bound flip or a basis change. Returns a terminal status or 0 to continue.
func (s *simplex) ratioTestAndPivot(j int, dir float64) Status {
	// Maximum step before j hits its own opposite bound.
	tMax := s.hi[j] - s.lo[j] // may be +Inf
	leaveRow := -1
	leaveToUpper := false
	bestPivot := 0.0
	t := tMax
	for r := 0; r < s.m; r++ {
		a := s.tab[r][j] * dir
		if a > tolPivot {
			// Basic variable decreases toward its lower bound.
			lim := (s.beta[r] - s.lo[s.basis[r]]) / a
			if lim < t-1e-12 || (lim < t+1e-12 && math.Abs(s.tab[r][j]) > math.Abs(bestPivot)) {
				if lim < 0 {
					lim = 0
				}
				t = lim
				leaveRow = r
				leaveToUpper = false
				bestPivot = s.tab[r][j]
			}
		} else if a < -tolPivot {
			// Basic variable increases toward its upper bound.
			ub := s.hi[s.basis[r]]
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - s.beta[r]) / (-a)
			if lim < t-1e-12 || (lim < t+1e-12 && math.Abs(s.tab[r][j]) > math.Abs(bestPivot)) {
				if lim < 0 {
					lim = 0
				}
				t = lim
				leaveRow = r
				leaveToUpper = true
				bestPivot = s.tab[r][j]
			}
		}
	}
	if math.IsInf(t, 1) {
		return Unbounded
	}
	// Apply the step to basic values.
	if t != 0 {
		step := t * dir
		for r := 0; r < s.m; r++ {
			s.beta[r] -= s.tab[r][j] * step
		}
	}
	if leaveRow < 0 {
		// Bound flip: j traverses to its opposite bound.
		if dir > 0 {
			s.stat[j] = atUpper
		} else {
			s.stat[j] = atLower
		}
		return 0
	}
	// Basis change: j enters at value (bound + t·dir), basis[leaveRow]
	// leaves to one of its bounds.
	leaving := s.basis[leaveRow]
	if leaveToUpper {
		s.stat[leaving] = atUpper
	} else {
		s.stat[leaving] = atLower
	}
	var enterVal float64
	if dir > 0 {
		enterVal = s.lo[j] + t
	} else {
		enterVal = s.hi[j] - t
	}
	s.basis[leaveRow] = j
	s.stat[j] = basic
	s.beta[leaveRow] = enterVal
	s.eliminate(leaveRow, j)
	return 0
}

// eliminate performs the Gauss–Jordan pivot on (prow, pcol), updating the
// tableau and the reduced-cost row. Basic values are NOT touched: a basis
// swap does not move the current point (the step was already applied by the
// ratio test). Row elimination is parallelized for large tableaus.
func (s *simplex) eliminate(prow, pcol int) {
	piv := s.tab[prow][pcol]
	prowData := s.tab[prow]
	if piv != 1 {
		inv := 1 / piv
		for j := range prowData {
			prowData[j] *= inv
		}
		prowData[pcol] = 1 // exact
	}
	elimRange := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			if r == prow {
				continue
			}
			f := s.tab[r][pcol]
			if f == 0 {
				continue
			}
			trow := s.tab[r]
			for j := range trow {
				trow[j] -= f * prowData[j]
			}
			trow[pcol] = 0 // exact
		}
	}
	if s.parallel {
		par.Chunks(s.m, 0, elimRange)
	} else {
		elimRange(0, s.m)
	}
	if f := s.zrow[pcol]; f != 0 {
		for j := range s.zrow {
			s.zrow[j] -= f * prowData[j]
		}
		s.zrow[pcol] = 0
	}
}

// extract returns structural variable values in original (unshifted) space.
func (s *simplex) extract() []float64 {
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		switch s.stat[j] {
		case atLower:
			x[j] = s.shift[j]
		case atUpper:
			x[j] = s.shift[j] + s.hi[j]
		}
	}
	for r := 0; r < s.m; r++ {
		if b := s.basis[r]; b < s.nStruct {
			v := s.beta[r]
			// Clamp tiny negative noise into bounds.
			if v < 0 && v > -tolFeas {
				v = 0
			}
			x[b] = s.shift[b] + v
		}
	}
	return x
}

// CheckFeasible verifies that x satisfies all constraints and bounds of p
// within tol, returning a descriptive error for the first violation. It is
// used by tests and by the solver audits.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != p.n {
		return fmt.Errorf("lp: solution has %d vars, want %d", len(x), p.n)
	}
	for j := 0; j < p.n; j++ {
		if x[j] < p.lo[j]-tol || x[j] > p.hi[j]+tol {
			return fmt.Errorf("lp: x[%d]=%g outside [%g,%g]", j, x[j], p.lo[j], p.hi[j])
		}
	}
	for r, rw := range p.rows {
		v := 0.0
		for _, c := range rw.coefs {
			v += c.Val * x[c.Var]
		}
		// Scale tolerance with row magnitude for robustness.
		scale := 1.0
		for _, c := range rw.coefs {
			if a := math.Abs(c.Val); a > scale {
				scale = a
			}
		}
		rtol := tol * scale * float64(1+len(rw.coefs))
		switch rw.rel {
		case LE:
			if v > rw.rhs+rtol {
				return fmt.Errorf("lp: row %d: %g > rhs %g", r, v, rw.rhs)
			}
		case GE:
			if v < rw.rhs-rtol {
				return fmt.Errorf("lp: row %d: %g < rhs %g", r, v, rw.rhs)
			}
		case EQ:
			if math.Abs(v-rw.rhs) > rtol {
				return fmt.Errorf("lp: row %d: %g != rhs %g", r, v, rw.rhs)
			}
		}
	}
	return nil
}

// ErrNotOptimal is returned by helpers that require an optimal solution.
var ErrNotOptimal = errors.New("lp: not optimal")

// MustSolve solves p and returns the solution if optimal; otherwise it
// returns an error wrapping the status.
func (p *Problem) MustSolve() (*Solution, error) {
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal {
		return sol, fmt.Errorf("%w: status %v", ErrNotOptimal, sol.Status)
	}
	return sol, nil
}
