// Package lp solves linear programs
//
//	minimize    c·x
//	subject to  row_i · x  {≤,=,≥}  b_i
//	            lo_j ≤ x_j ≤ hi_j
//
// with a sparse, column-oriented, bounded-variable revised simplex. The
// overlay-design LPs this repository builds are overwhelmingly sparse —
// each x_{ij} variable touches a handful of rows — so the solver stores the
// constraint matrix once in compressed-sparse-column (CSC) form and never
// materializes a dense tableau.
//
// # Design
//
//   - Storage: structural columns live in a CSC matrix cached on the
//     Problem (rebuilt only when constraints are added, so branch-and-bound
//     re-solves after bound changes reuse it). Every row additionally gets
//     one logical slack column and one artificial column, both singletons
//     (±e_r), which are represented implicitly.
//   - Basis: the basis inverse is kept as a product-form eta file. FTRAN
//     applies the etas oldest-first to a column, BTRAN newest-first to a
//     row vector. The file is rebuilt from scratch (Gauss–Jordan with
//     partial pivoting over the current basis columns) every RefactorEvery
//     pivots — the refactorization cadence bounds both eta-file growth and
//     accumulated floating-point drift.
//   - Pricing: devex (approximate steepest-edge reference weights, reset at
//     each refactorization) by default, with Dantzig and rotating partial
//     pricing selectable via Options and a Bland fallback for anti-cycling.
//   - Phases: a cold solve runs the classic two phases — artificials are
//     priced out first, then the true objective — while a warm solve skips
//     phase 1 entirely when the supplied basis is already primal feasible
//     (costs changed, e.g. churn re-optimization) and runs the dual simplex
//     when it is primal infeasible but dual feasible (bounds changed, e.g.
//     branch-and-bound children).
//
// # Warm starts
//
// Solution.Basis snapshots the final basis as per-column statuses plus a
// persistent Factorization handle; passing it back through Options.WarmStart
// re-solves a same-shaped problem (identical variable and row counts — costs
// and bounds may differ) from that basis instead of from scratch. When the
// re-solve targets the very same Problem and no patched column is basic, the
// install resumes from the carried eta file rather than refactorizing.
// Invalid or unusable warm bases are detected and silently degrade to a cold
// solve, so warm starting is always safe to attempt.
//
// The previous dense two-phase tableau solver is retained behind
// Options.Dense as a golden reference: tests cross-check every sparse
// optimum against it.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // row·x ≤ rhs
	GE            // row·x ≥ rhs
	EQ            // row·x = rhs
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Coef is one nonzero coefficient of a constraint row.
type Coef struct {
	Var int
	Val float64
}

type row struct {
	coefs []Coef
	rel   Rel
	rhs   float64
}

// Problem accumulates an LP. The zero Problem is not usable; create one
// with NewProblem.
type Problem struct {
	n    int // number of structural variables
	obj  []float64
	lo   []float64
	hi   []float64
	rows []row

	// csc caches the structural columns in compressed-sparse-column form.
	// It depends only on the rows (not bounds or costs), so bound-mutating
	// re-solves — branch-and-bound dives — rebuild nothing. AddConstraint
	// invalidates it.
	csc *cscMatrix

	// patchVer counts the matrix-coefficient patches applied so far, and
	// colVer (allocated lazily on the first patch) stamps each structural
	// column with the patchVer of its latest change. A Factorization carried
	// across solves records the patchVer it was built under; comparing
	// against colVer at warm-start install tells exactly which columns
	// changed underneath it. Objective, rhs, and bound edits do not bump the
	// version: they leave the basis matrix B untouched.
	patchVer uint64
	colVer   []uint64
}

// NewProblem returns a problem with numVars structural variables, objective
// zero, and default bounds [0, +Inf).
func NewProblem(numVars int) *Problem {
	p := &Problem{
		n:   numVars,
		obj: make([]float64, numVars),
		lo:  make([]float64, numVars),
		hi:  make([]float64, numVars),
	}
	for j := range p.hi {
		p.hi[j] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjectiveCoef sets the objective coefficient of variable j.
func (p *Problem) SetObjectiveCoef(j int, v float64) {
	p.obj[j] = v
}

// AddObjectiveCoef adds v to the objective coefficient of variable j.
func (p *Problem) AddObjectiveCoef(j int, v float64) {
	p.obj[j] += v
}

// SetBounds sets lo ≤ x_j ≤ hi. Lower bounds must be finite (the overlay
// LPs never need -Inf lower bounds; supporting them would complicate the
// nonbasic-at-bound bookkeeping for no benefit).
func (p *Problem) SetBounds(j int, lo, hi float64) {
	p.lo[j] = lo
	p.hi[j] = hi
}

// Bounds returns the current bounds of variable j. Branch-and-bound uses it
// to save and restore bounds around branching decisions.
func (p *Problem) Bounds(j int) (lo, hi float64) {
	return p.lo[j], p.hi[j]
}

// AddConstraint appends the constraint (Σ coefs) rel rhs and returns its row
// index. Coefficients referring to the same variable are summed.
func (p *Problem) AddConstraint(rel Rel, rhs float64, coefs ...Coef) int {
	cp := make([]Coef, len(coefs))
	copy(cp, coefs)
	p.rows = append(p.rows, row{coefs: cp, rel: rel, rhs: rhs})
	p.csc = nil
	return len(p.rows) - 1
}

// Precompute builds the cached CSC form of the constraint matrix now rather
// than lazily inside the first solve. A Problem whose cache is built is safe
// to solve from multiple goroutines concurrently — SolveOpts only reads the
// rows, bounds, costs, and cache — which is how per-shard re-solves and
// stress tests share one Problem. Adding a constraint invalidates the cache,
// so call Precompute again after the last AddConstraint. In-place value
// patches (SetRowCoef, SetRHS) keep the cache fresh instead of invalidating
// it — that is what makes delta-sized model updates cheap.
func (p *Problem) Precompute() {
	if p.csc == nil {
		p.csc = buildCSC(p)
	}
}

// --- In-place patch API -------------------------------------------------
//
// The incremental LP rebuild (lpmodel.Patcher) re-uses one Problem across
// re-optimization epochs, rewriting only the coefficients, right-hand
// sides, bounds, and objective entries that a churn delta touched. Patches
// change VALUES only — the sparsity pattern (which (row, var) pairs exist)
// is fixed at AddConstraint time — so the cached CSC matrix is refreshed in
// place rather than rebuilt, and a warm-start Basis captured before the
// patch remains shape-compatible afterwards. The basis factorization IS
// persisted across solves (Basis.Fact): SetRowCoef stamps the patched
// column with a monotone version so a warm-start install can tell whether
// any column that is basic in the carried factorization changed since it
// was built — only then does the install refactorize; otherwise it resumes
// from the carried eta file (see Factorization).
//
// Patches must not race with concurrent solves of the same Problem (the
// shared-CSC concurrency guarantee of Precompute covers readers only).

// SetRHS replaces the right-hand side of row r. The constraint matrix and
// its CSC cache are untouched.
func (p *Problem) SetRHS(r int, rhs float64) {
	p.rows[r].rhs = rhs
}

// RHS returns the relation and right-hand side of row r.
func (p *Problem) RHS(r int) (Rel, float64) {
	return p.rows[r].rel, p.rows[r].rhs
}

// SetRowCoef replaces the value of the pos-th coefficient of row r (the
// position within the Coef list passed to AddConstraint), updating the
// cached CSC entry in place when the cache is built. It reports whether the
// stored value actually changed, so callers can count real patches.
//
// If the CSC entry cannot be located unambiguously (the row listed the same
// variable twice — no overlay model does), the cache is invalidated and
// rebuilt lazily on the next solve; correctness is preserved either way.
func (p *Problem) SetRowCoef(r, pos int, v float64) bool {
	c := &p.rows[r].coefs[pos]
	if c.Val == v {
		return false
	}
	c.Val = v
	p.patchVer++
	if p.colVer == nil {
		p.colVer = make([]uint64, p.n)
	}
	p.colVer[c.Var] = p.patchVer
	if p.csc != nil {
		if q := p.csc.find(c.Var, int32(r)); q >= 0 {
			p.csc.val[q] = v
		} else {
			p.csc = nil
		}
	}
	return true
}

// RowCoef returns the pos-th coefficient of row r.
func (p *Problem) RowCoef(r, pos int) Coef {
	return p.rows[r].coefs[pos]
}

// RowLen returns the number of coefficients of row r.
func (p *Problem) RowLen(r int) int {
	return len(p.rows[r].coefs)
}

// RowCoefs returns a copy of row r's coefficient list (test/diagnostic use).
func (p *Problem) RowCoefs(r int) []Coef {
	return append([]Coef(nil), p.rows[r].coefs...)
}

// ObjectiveCoef returns the objective coefficient of variable j.
func (p *Problem) ObjectiveCoef(j int) float64 {
	return p.obj[j]
}

// CheckCSCSync verifies that the cached CSC matrix (if built) agrees with
// the row storage entry by entry — the invariant the in-place patch API
// maintains. Tests call it after patch sequences; a nil cache trivially
// passes (it will be rebuilt from the rows).
func (p *Problem) CheckCSCSync() error {
	if p.csc == nil {
		return nil
	}
	want := buildCSC(p)
	if len(want.val) != len(p.csc.val) {
		return fmt.Errorf("lp: csc has %d entries, rows imply %d", len(p.csc.val), len(want.val))
	}
	for j := 0; j < p.n; j++ {
		if want.colPtr[j+1] != p.csc.colPtr[j+1] {
			return fmt.Errorf("lp: csc column %d pointer mismatch", j)
		}
	}
	for q := range want.val {
		if want.rowIdx[q] != p.csc.rowIdx[q] {
			return fmt.Errorf("lp: csc entry %d row mismatch: %d vs %d", q, p.csc.rowIdx[q], want.rowIdx[q])
		}
		if want.val[q] != p.csc.val[q] {
			return fmt.Errorf("lp: csc entry %d value mismatch: %g vs %g", q, p.csc.val[q], want.val[q])
		}
	}
	return nil
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Basis is a compact snapshot of a simplex basis: the status (at lower
// bound, at upper bound, or basic) of every column — structural, slack, and
// artificial. It is the warm-start currency: Solution carries the final
// basis out of a solve, and Options.WarmStart feeds it back into a later
// solve of a same-shaped problem (same variable and row counts; costs and
// bounds are free to change). Statuses are interpreted against the bounds
// current at re-solve time, so a basis stays valid across branch-and-bound
// bound fixings and re-optimization cost scalings alike.
type Basis struct {
	// NumVars and NumRows identify the problem shape the basis belongs to.
	NumVars, NumRows int
	// ColStat holds one vstat per column: structural columns first, then
	// one slack per row, then one artificial per row.
	ColStat []int8
	// Fact, when non-nil, carries the persistent factorization the basis was
	// snapshotted with. It is an in-memory handle tied to the identity of the
	// Problem it was built from (never serialized): a warm-start install
	// adopts it instead of refactorizing when it is still valid — see
	// Factorization for the invalidation contract. A nil Fact simply
	// refactorizes at install, so hand-built bases keep working.
	Fact *Factorization
}

// Column status values in Basis.ColStat.
const (
	BasisAtLower int8 = iota
	BasisAtUpper
	BasisBasic
)

// compatible reports whether b can warm-start problem p.
func (b *Basis) compatible(p *Problem) bool {
	if b == nil || b.NumVars != p.n || b.NumRows != len(p.rows) {
		return false
	}
	if len(b.ColStat) != p.n+2*len(p.rows) {
		return false
	}
	basic := 0
	for _, st := range b.ColStat {
		if st == BasisBasic {
			basic++
		}
	}
	return basic == len(p.rows)
}

// SolveStats counts the factorization-level events of a solve, surfaced so
// the re-optimization loop can see where warm starts spend their time. All
// counters are totals across the recovery ladder (warm attempt + any cold
// fallback).
type SolveStats struct {
	// Refactorizations counts from-scratch basis factorizations.
	Refactorizations int
	// FTUpdates counts warm-start installs that adopted a carried
	// factorization (product-form resume) instead of refactorizing.
	FTUpdates int
	// DevexResets counts devex reference-framework resets (one per
	// refactorization under devex pricing).
	DevexResets int
}

// Add accumulates o into s.
func (s *SolveStats) Add(o SolveStats) {
	s.Refactorizations += o.Refactorizations
	s.FTUpdates += o.FTUpdates
	s.DevexResets += o.DevexResets
}

// EventKind identifies a solver-internal occurrence surfaced through
// Options.Events. The kinds mirror the SolveStats counters one-to-one, so an
// Events subscriber sees each counted event as it happens (with its pivot
// iteration) instead of only the totals.
type EventKind int

// Solver-internal event kinds.
const (
	// EventRefactorization fires when the basis inverse is rebuilt from
	// scratch.
	EventRefactorization EventKind = iota
	// EventFTAdoption fires when a warm-start install adopts a carried
	// factorization instead of refactorizing.
	EventFTAdoption
	// EventDevexReset fires when the devex reference framework resets.
	EventDevexReset
)

func (k EventKind) String() string {
	switch k {
	case EventRefactorization:
		return "refactorization"
	case EventFTAdoption:
		return "ft-adoption"
	case EventDevexReset:
		return "devex-reset"
	}
	return "unknown"
}

// Event is one solver-internal occurrence: its kind and the pivot iteration
// it happened at (0 when it precedes the first pivot, e.g. the install-time
// refactorization).
type Event struct {
	Kind      EventKind
	Iteration int
}

// Solution is the result of Solve.
type Solution struct {
	Status     Status
	X          []float64 // structural variable values
	Objective  float64
	Iterations int
	// Basis is the final simplex basis (sparse solver only; nil from the
	// dense reference solver). Feed it to Options.WarmStart to accelerate
	// a re-solve of a same-shaped problem.
	Basis *Basis
	// Stats counts factorization events (sparse solver only).
	Stats SolveStats
	// Duals holds the row dual values y = c_B·B⁻¹ at the optimum (sparse
	// solver only; nil from the dense reference solver and at non-Optimal
	// statuses). Duals[r] is the shadow price of row r's right-hand side:
	// the rate of change of the optimal objective per unit of rhs_r. Under
	// this minimization convention a binding ≤ row has Duals[r] ≤ 0 and a
	// binding ≥ row has Duals[r] ≥ 0; nonbinding rows price at 0.
	Duals []float64
}

// DualsFor gathers the dual values of the given rows (see Solution.Duals).
// It returns nil when the solve produced no duals — non-Optimal status, or
// the dense reference solver — so callers can fall back gracefully.
// Out-of-range row indices read as 0.
func (sol *Solution) DualsFor(rows []int) []float64 {
	if sol == nil || sol.Duals == nil {
		return nil
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		if r >= 0 && r < len(sol.Duals) {
			out[i] = sol.Duals[r]
		}
	}
	return out
}

// Pricing selects the entering-variable rule of the sparse solver.
type Pricing int

const (
	// DevexPricing (the default) prices with approximate steepest-edge
	// reference weights (Harris's devex): each nonbasic column scores
	// d_j²/w_j, weights update after every pivot from the pivot row, and the
	// reference framework resets at each refactorization. Typically several-
	// fold fewer pivots than Dantzig on larger LPs for one extra BTRAN per
	// pivot.
	DevexPricing Pricing = iota
	// DantzigPricing scans every nonbasic column and enters the one with
	// the most negative reduced cost (deterministic textbook rule).
	DantzigPricing
	// PartialPricing scans rotating blocks of columns and enters the best
	// candidate of the first block containing one, trading iteration count
	// for much cheaper pricing on very wide problems.
	PartialPricing
)

// Options tunes the solver. The zero value selects sensible defaults.
type Options struct {
	// MaxIters bounds total pivots across all phases (default
	// 200*(rows+vars)+2000).
	MaxIters int
	// SerialOnly disables goroutine-parallel tableau elimination in the
	// dense reference solver (no effect on the sparse solver).
	SerialOnly bool
	// Dense selects the dense two-phase tableau reference solver instead
	// of the sparse revised simplex.
	Dense bool
	// WarmStart, when non-nil and shape-compatible with the problem,
	// starts the sparse solver from this basis: primal phase 2 directly if
	// the basis is primal feasible, dual simplex if it is only dual
	// feasible, cold start otherwise.
	WarmStart *Basis
	// RefactorEvery rebuilds the product-form basis inverse after this
	// many pivots (default 16 + 2*sqrt(rows)). Lower values trade time for
	// numerical robustness.
	RefactorEvery int
	// Pricing selects the entering rule (default DevexPricing).
	Pricing Pricing
	// RefactorOnInstall forces every warm-start install to refactorize from
	// scratch instead of adopting a carried Basis.Fact — the pre-persistence
	// behavior, kept as an escape hatch and as the reference arm of the
	// persistence equivalence tests.
	RefactorOnInstall bool
	// Events, when non-nil, receives solver-internal events (sparse solver
	// only) as they happen — one call per SolveStats increment. The callback
	// runs on the solving goroutine inside the pivot loop; it must be cheap
	// and must not call back into the solver. Used by the observability layer
	// to attach refactorization/FT-adoption/devex-reset events to trace spans.
	Events func(Event)
}

// numerical tolerances
const (
	tolPivot = 1e-9 // minimum |pivot| accepted
	tolCost  = 1e-9 // reduced-cost optimality tolerance
	tolFeas  = 1e-7 // feasibility tolerance on variable bounds
	tolArt   = 1e-7 // phase-1 objective threshold for feasibility
)

// variable status in the simplex
type vstat int8

const (
	atLower vstat = iota
	atUpper
	basic
)

// Solve runs the simplex and returns the optimal solution, or a Solution
// with a non-Optimal status.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveOpts(Options{})
}

// SolveOpts is Solve with explicit options.
func (p *Problem) SolveOpts(opts Options) (*Solution, error) {
	for j := 0; j < p.n; j++ {
		if math.IsInf(p.lo[j], -1) || math.IsNaN(p.lo[j]) {
			return nil, fmt.Errorf("lp: variable %d has non-finite lower bound %g", j, p.lo[j])
		}
		if p.hi[j] < p.lo[j] {
			return nil, fmt.Errorf("lp: variable %d has empty bound range [%g,%g]", j, p.lo[j], p.hi[j])
		}
	}
	if opts.Dense {
		return p.solveDense(opts)
	}
	return p.solveSparse(opts)
}

func (p *Problem) solveDense(opts Options) (*Solution, error) {
	s := newDenseSimplex(p, opts)
	st := s.run()
	sol := &Solution{Status: st, Iterations: s.iters}
	if st == Optimal || st == IterLimit {
		sol.X = s.extract()
		sol.Objective = p.objectiveOf(sol.X)
	}
	return sol, nil
}

// objectiveOf evaluates c·x.
func (p *Problem) objectiveOf(x []float64) float64 {
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.obj[j] * x[j]
	}
	return obj
}

// CheckFeasible verifies that x satisfies all constraints and bounds of p
// within tol, returning a descriptive error for the first violation. It is
// used by tests and by the solver audits.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != p.n {
		return fmt.Errorf("lp: solution has %d vars, want %d", len(x), p.n)
	}
	for j := 0; j < p.n; j++ {
		if x[j] < p.lo[j]-tol || x[j] > p.hi[j]+tol {
			return fmt.Errorf("lp: x[%d]=%g outside [%g,%g]", j, x[j], p.lo[j], p.hi[j])
		}
	}
	for r, rw := range p.rows {
		v := 0.0
		for _, c := range rw.coefs {
			v += c.Val * x[c.Var]
		}
		// Scale tolerance with row magnitude for robustness.
		scale := 1.0
		for _, c := range rw.coefs {
			if a := math.Abs(c.Val); a > scale {
				scale = a
			}
		}
		rtol := tol * scale * float64(1+len(rw.coefs))
		switch rw.rel {
		case LE:
			if v > rw.rhs+rtol {
				return fmt.Errorf("lp: row %d: %g > rhs %g", r, v, rw.rhs)
			}
		case GE:
			if v < rw.rhs-rtol {
				return fmt.Errorf("lp: row %d: %g < rhs %g", r, v, rw.rhs)
			}
		case EQ:
			if math.Abs(v-rw.rhs) > rtol {
				return fmt.Errorf("lp: row %d: %g != rhs %g", r, v, rw.rhs)
			}
		}
	}
	return nil
}

// ErrNotOptimal is returned by helpers that require an optimal solution.
var ErrNotOptimal = errors.New("lp: not optimal")

// MustSolve solves p and returns the solution if optimal; otherwise it
// returns an error wrapping the status.
func (p *Problem) MustSolve() (*Solution, error) {
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal {
		return sol, fmt.Errorf("%w: status %v", ErrNotOptimal, sol.Status)
	}
	return sol, nil
}
