package agg

import (
	"fmt"
	"sort"

	"repro/internal/netmodel"
)

// Serialization of an aggregation State. Only the membership partition is
// persisted: every derived structure — the aggregate instance, unit maps,
// demand/loss/cost summaries, the weight scale — is a pure function of
// (membership, current true instance) and is rebuilt by Restore via the
// same buildFromMembers path Build uses. Persisting the partition rather
// than the caches keeps the snapshot small AND self-healing: a restored
// daemon re-summarizes against the instance it actually restored, so the
// aggregate plane can never drift out of sync with the sink plane it
// summarizes. Aggregate ORDER is the membership order, so a restored State
// reproduces the exact unit indexing (and hence LP column order) of the
// State it was exported from.
type StateData struct {
	Members [][]int `json:"members"`
}

// Export captures the membership partition for serialization. Returns nil
// for a nil state.
func (st *State) Export() *StateData {
	if st == nil {
		return nil
	}
	d := &StateData{Members: make([][]int, len(st.members))}
	for a, mem := range st.members {
		d.Members[a] = append([]int(nil), mem...)
	}
	return d
}

// Restore rebuilds a State from a serialized membership against in, which
// must be the (restored) true instance the partition was built over: same
// viewer count, and every aggregate's viewers subscribing to the same
// stream-slot set — the invariants Build's keying guaranteed, revalidated
// here because the payload crossed a process boundary.
func Restore(in *netmodel.Instance, d *StateData) (*State, error) {
	if d == nil {
		return nil, fmt.Errorf("agg: restore: nil data")
	}
	if in.Weighted() {
		return nil, fmt.Errorf("agg: restore: instance is already aggregated")
	}
	G := in.NumViewers()
	units := in.ViewerUnits()
	slotsOf := func(g int) []int {
		slots := make([]int, len(units[g]))
		for t, j := range units[g] {
			slots[t] = in.Commodity[j]
		}
		sort.Ints(slots)
		return slots
	}
	seen := make([]bool, G)
	covered := 0
	members := make([][]int, len(d.Members))
	for a, mem := range d.Members {
		if len(mem) == 0 {
			return nil, fmt.Errorf("agg: restore: aggregate %d is empty", a)
		}
		for _, g := range mem {
			if g < 0 || g >= G {
				return nil, fmt.Errorf("agg: restore: aggregate %d member %d outside [0,%d)", a, g, G)
			}
			if seen[g] {
				return nil, fmt.Errorf("agg: restore: viewer %d appears in two aggregates", g)
			}
			seen[g] = true
			covered++
		}
		repSlots := slotsOf(mem[0])
		for _, g := range mem {
			gs := slotsOf(g)
			if len(gs) != len(repSlots) {
				return nil, fmt.Errorf("agg: restore: aggregate %d mixes slot sets (viewer %d has %d slots, viewer %d has %d)",
					a, g, len(gs), mem[0], len(repSlots))
			}
			for t := range gs {
				if gs[t] != repSlots[t] {
					return nil, fmt.Errorf("agg: restore: aggregate %d mixes slot sets (viewer %d vs viewer %d)",
						a, g, mem[0])
				}
			}
		}
		members[a] = append([]int(nil), mem...)
	}
	if covered != G {
		return nil, fmt.Errorf("agg: restore: membership covers %d of %d viewers", covered, G)
	}
	return buildFromMembers(in, members)
}
