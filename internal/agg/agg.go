// Package agg implements hierarchical viewer aggregation: the 10^5–10^6
// sinks of a production CDN footprint are folded into a few hundred weighted
// super-sinks before the LP ever sees them, and unfolded afterwards by a
// cheap deterministic pass. The paper's model (§2) prices one x variable per
// (reflector, sink) arc, so the LP grows as |R|·|D| and a million-viewer
// epoch is out of reach for simplex no matter how warm the basis; but
// viewers are not adversarial — they cluster by region and ISP, and within
// a cluster the reflector economics are near-identical. Aggregation makes
// that observation structural:
//
//   - Viewers are keyed by (group, stream-slot set): the group label is a
//     caller-supplied (region, ISP) key — or, by default, the viewer's cost
//     anchor, the reflector that serves its whole bundle cheapest (the same
//     signal internal/shard partitions by) — and the slot set is the set of
//     streams the viewer was BUILT with. Members of an aggregate therefore
//     agree on both economics and LP shape.
//   - Each aggregate contributes one weighted demand unit per stream slot.
//     The unit's UnitWeight is the number of member subscriptions currently
//     active, so reflector fanout is consumed for every real viewer behind
//     the unit (netmodel.Instance.UnitLoad); its Threshold is the max over
//     member thresholds and its per-reflector loss the max over member
//     losses, so any reflector set meeting the representative's covering
//     constraint meets every member's (the capped-weight argument: member
//     path weights dominate the representative's while member demands are
//     dominated by it).
//   - Membership is fixed at Build. Deltas never resize instances
//     (netmodel.Delta's contract), so churn moves weight BETWEEN the fixed
//     units of an aggregate — a join bumps a unit's weight, a leave drops
//     it — and the aggregate LP keeps its shape: warm bases, shard
//     partitions, and the incremental Patcher all survive.
//
// Sync is the dirty-set translator: it folds an epoch's true-instance dirty
// set into the aggregate instance and emits aggregate-level dirty ONLY for
// cells that actually changed. Churn that is weight-neutral inside its
// aggregate — a leave matched by a join on the same (aggregate, stream) —
// therefore emits nothing, and the epoch solves LP-free: no build, no
// patch, no pivot. Disaggregate maps the solved aggregate design back to
// real viewers, sticky to the previous deployment so epoch-to-epoch churn
// stays fractional (netmodel.ViewerChurn semantics).
package agg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/netmodel"
)

// Config controls how viewers are keyed into aggregates.
type Config struct {
	// GroupOf[g] is the aggregation group label of viewer g — typically a
	// (region, ISP) product key. Viewers sharing a label and a stream-slot
	// set merge into one aggregate. Nil auto-groups by cost anchor.
	GroupOf []int
}

// State carries an aggregation across epochs: the fixed membership, the
// aggregate instance the solver runs on, and the cached per-unit demand
// summaries Sync diffs against.
type State struct {
	// Agg is the weighted aggregate instance. Its reflector- and
	// source-plane slices (costs, fanouts, losses, bandwidths, caps) are
	// SHARED with the true instance, so reflector-plane churn applied to the
	// true instance is visible here without copying; only the sink plane is
	// aggregated. Sync re-points the shared slices each epoch in case the
	// caller hands a clone.
	Agg *netmodel.Instance

	members     [][]int // members[a] = member viewer ids of aggregate a
	unitOf      []int   // unitOf[j] = aggregate unit of true demand unit j
	memberUnits [][]int // memberUnits[au] = true demand units behind au
	scale       []float64
}

// Groups returns the number of aggregates (super-sinks).
func (st *State) Groups() int { return len(st.members) }

// Units returns the number of aggregate demand units the LP solves over.
func (st *State) Units() int { return st.Agg.NumSinks }

// UnitOf returns the aggregate unit that true demand unit j folds into.
func (st *State) UnitOf(j int) int { return st.unitOf[j] }

// MemberUnits returns the true demand units behind aggregate unit au.
func (st *State) MemberUnits(au int) []int { return st.memberUnits[au] }

// Build folds the instance's viewers into aggregates. The membership is
// fixed for the State's lifetime; the caller keeps mutating the TRUE
// instance through deltas and reports the dirty sets to Sync.
func Build(in *netmodel.Instance, cfg Config) (*State, error) {
	if in.Weighted() {
		return nil, errors.New("agg: instance is already aggregated")
	}
	G := in.NumViewers()
	if cfg.GroupOf != nil && len(cfg.GroupOf) != G {
		return nil, fmt.Errorf("agg: GroupOf has %d entries, want %d viewers", len(cfg.GroupOf), G)
	}
	groups := cfg.GroupOf
	if groups == nil {
		groups = anchorGroups(in)
	}
	units := in.ViewerUnits()

	// Key viewers by (group, slot set); aggregate order is the sorted key
	// order, so the fold is deterministic across runs and processes.
	keyOf := make([]string, G)
	for g := 0; g < G; g++ {
		slots := make([]int, len(units[g]))
		for t, j := range units[g] {
			slots[t] = in.Commodity[j]
		}
		sort.Ints(slots)
		keyOf[g] = fmt.Sprintf("%d|%v", groups[g], slots)
	}
	byKey := make(map[string][]int, G)
	for g := 0; g < G; g++ {
		byKey[keyOf[g]] = append(byKey[keyOf[g]], g)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	members := make([][]int, len(keys))
	for a, k := range keys {
		members[a] = byKey[k]
	}
	return buildFromMembers(in, members)
}

// buildFromMembers constructs the full State — aggregate instance, unit
// maps, demand/loss/cost summaries — from a membership partition alone.
// Everything below the membership is a pure function of (members, current
// instance), which is what lets Restore rebuild a serialized State against
// the restored instance without persisting any derived cache.
func buildFromMembers(in *netmodel.Instance, members [][]int) (*State, error) {
	units := in.ViewerUnits()
	st := &State{
		members: members,
		unitOf:  make([]int, in.NumSinks),
	}
	// One aggregate unit per (aggregate, slot); slots in sorted-commodity
	// order within an aggregate.
	var aggCommodity []int
	for _, mem := range members {
		rep := mem[0]
		slots := make([]int, len(units[rep]))
		for t, j := range units[rep] {
			slots[t] = in.Commodity[j]
		}
		sort.Ints(slots)
		for _, stream := range slots {
			au := len(aggCommodity)
			aggCommodity = append(aggCommodity, stream)
			mus := make([]int, 0, len(mem))
			for _, g := range mem {
				mus = append(mus, in.FindUnit(g, stream))
			}
			st.memberUnits = append(st.memberUnits, mus)
			for _, j := range mus {
				st.unitOf[j] = au
			}
		}
	}

	S, R, _ := in.Dims()
	dA := len(aggCommodity)
	a := &netmodel.Instance{
		Name:          in.Name + "/agg",
		NumSources:    S,
		NumReflectors: R,
		NumSinks:      dA,
		ReflectorCost: in.ReflectorCost,
		Fanout:        in.Fanout,
		SrcRefLoss:    in.SrcRefLoss,
		SrcRefCost:    in.SrcRefCost,
		RefSinkLoss:   zeroMatrix(R, dA),
		RefSinkCost:   zeroMatrix(R, dA),
		Commodity:     aggCommodity,
		Threshold:     make([]float64, dA),
		UnitWeight:    make([]float64, dA),
		Bandwidth:     in.Bandwidth,
		Color:         in.Color,
		NumColors:     in.NumColors,
		IngestCap:     in.IngestCap,
	}
	if in.EdgeCap != nil {
		a.EdgeCap = zeroMatrix(R, dA)
	}
	st.Agg = a
	st.scale = make([]float64, dA)
	for au := 0; au < dA; au++ {
		st.refreshDemand(in, au)
		st.scale[au] = math.Max(a.UnitWeight[au], 1)
		for i := 0; i < R; i++ {
			st.refreshLoss(in, i, au)
			st.refreshCost(in, i, au)
			if a.EdgeCap != nil {
				u := math.Inf(1)
				for _, j := range st.memberUnits[au] {
					if in.EdgeCap[i][j] < u {
						u = in.EdgeCap[i][j]
					}
				}
				a.EdgeCap[i][au] = u
			}
		}
	}
	return st, nil
}

// ColoGroups labels each viewer with the colo of its cost anchor, treating
// reflectors as banks of reflectorsPerColo consecutive indices (the layout
// gen.Clustered produces). The default per-reflector anchor fold grows a
// group per reflector, so at reflector counts in the hundreds the aggregate
// LP inflates back with R; folding anchors to colo granularity caps the fold
// at R/reflectorsPerColo labels independent of how many reflectors share a
// site, which is what keeps the composed aggregated+sharded epoch inside its
// wall budget at |R| ≥ 200. Pass the result as Config.GroupOf.
func ColoGroups(in *netmodel.Instance, reflectorsPerColo int) []int {
	out := anchorGroups(in)
	if reflectorsPerColo > 1 {
		for g := range out {
			out[g] /= reflectorsPerColo
		}
	}
	return out
}

// anchorGroups labels each viewer with its cost anchor: the reflector
// serving its whole stream bundle cheapest (ties to the lowest index).
func anchorGroups(in *netmodel.Instance) []int {
	_, R, _ := in.Dims()
	units := in.ViewerUnits()
	out := make([]int, len(units))
	for g, us := range units {
		best, bestC := 0, math.Inf(1)
		for i := 0; i < R; i++ {
			c := 0.0
			for _, j := range us {
				c += in.RefSinkCost[i][j]
			}
			if c < bestC {
				best, bestC = i, c
			}
		}
		out[g] = best
	}
	return out
}

// refreshDemand recomputes aggregate unit au's threshold (max over member
// thresholds) and weight (count of active member subscriptions) from the
// true instance, reporting which of the two actually moved.
func (st *State) refreshDemand(in *netmodel.Instance, au int) (thrChanged, wChanged bool) {
	thr, w := 0.0, 0.0
	for _, j := range st.memberUnits[au] {
		if t := in.Threshold[j]; t > 0 {
			w++
			if t > thr {
				thr = t
			}
		}
	}
	thrChanged = st.Agg.Threshold[au] != thr
	wChanged = st.Agg.UnitWeight[au] != w
	st.Agg.Threshold[au] = thr
	st.Agg.UnitWeight[au] = w
	return thrChanged, wChanged
}

// refreshLoss recomputes the representative loss at (i, au): the max over
// ALL members (active or not), so that joins and leaves never move it — a
// member's path failure through any chosen reflector is at most the
// representative's, which is what makes the aggregate covering constraint
// dominate every member's.
func (st *State) refreshLoss(in *netmodel.Instance, i, au int) bool {
	loss := 0.0
	for _, j := range st.memberUnits[au] {
		if l := in.RefSinkLoss[i][j]; l > loss {
			loss = l
		}
	}
	changed := st.Agg.RefSinkLoss[i][au] != loss
	st.Agg.RefSinkLoss[i][au] = loss
	return changed
}

// refreshCost recomputes the representative serving cost at (i, au):
// scale(au) times the mean member arc cost, where scale = max(weight, 1).
// Scaling by the active count makes the LP objective price serving the
// aggregate like serving all its members; the max(·,1) floor keeps an
// all-inactive unit's columns positively priced (no free degenerate arcs)
// and — deliberately — makes the common 0↔1 weight flip cost-neutral.
func (st *State) refreshCost(in *netmodel.Instance, i, au int) bool {
	mus := st.memberUnits[au]
	sum := 0.0
	for _, j := range mus {
		sum += in.RefSinkCost[i][j]
	}
	c := st.scale[au] * sum / float64(len(mus))
	changed := st.Agg.RefSinkCost[i][au] != c
	st.Agg.RefSinkCost[i][au] = c
	return changed
}

// Sync folds an epoch's true-instance dirty set into the aggregate instance
// and returns the aggregate-level dirty set — the currency the solver's
// incremental LP rebuild consumes. Reflector- and source-plane entries pass
// through verbatim (those planes are shared); sink-plane entries are
// re-summarized per touched aggregate unit and emitted ONLY when the
// aggregate cell actually changed, which is what makes weight-neutral
// intra-aggregate churn an LP-free epoch. in must be the same instance the
// State was built from (mutated in place by the delta flow).
func (st *State) Sync(in *netmodel.Instance, dirty *netmodel.DirtySet) *netmodel.DirtySet {
	a := st.Agg
	// Re-point the shared planes: under stickiness cloning callers may hand
	// a fresh clone of the true instance each epoch.
	a.ReflectorCost = in.ReflectorCost
	a.Fanout = in.Fanout
	a.SrcRefLoss = in.SrcRefLoss
	a.SrcRefCost = in.SrcRefCost
	a.Bandwidth = in.Bandwidth
	a.IngestCap = in.IngestCap

	out := &netmodel.DirtySet{}
	if dirty.Empty() {
		return out
	}
	_, R, _ := in.Dims()

	// Shared planes: same indices on both instances.
	out.Fanout = append(out.Fanout, dirty.Fanout...)
	out.ReflectorCost = append(out.ReflectorCost, dirty.ReflectorCost...)
	out.SrcRefCost = append(out.SrcRefCost, dirty.SrcRefCost...)
	out.SrcRefLoss = append(out.SrcRefLoss, dirty.SrcRefLoss...)

	// Demand churn: re-summarize each touched unit once.
	touched := map[int]bool{}
	for _, j := range dirty.SinkDemand {
		touched[st.unitOf[j]] = true
	}
	aus := make([]int, 0, len(touched))
	for au := range touched {
		aus = append(aus, au)
	}
	sort.Ints(aus)
	for _, au := range aus {
		thrChanged, wChanged := st.refreshDemand(in, au)
		if thrChanged {
			out.SinkDemand = append(out.SinkDemand, au)
		}
		if wChanged {
			out.SinkWeight = append(out.SinkWeight, au)
			if s := math.Max(a.UnitWeight[au], 1); s != st.scale[au] {
				st.scale[au] = s
				for i := 0; i < R; i++ {
					if st.refreshCost(in, i, au) {
						out.RefSinkCost = append(out.RefSinkCost, netmodel.Arc{A: i, B: au})
					}
				}
			}
		}
	}

	// Arc-level churn on the aggregated sink plane.
	for _, arc := range dirty.RefSinkCost {
		au := st.unitOf[arc.B]
		if st.refreshCost(in, arc.A, au) {
			out.RefSinkCost = append(out.RefSinkCost, netmodel.Arc{A: arc.A, B: au})
		}
	}
	for _, arc := range dirty.RefSinkLoss {
		au := st.unitOf[arc.B]
		if st.refreshLoss(in, arc.A, au) {
			out.RefSinkLoss = append(out.RefSinkLoss, netmodel.Arc{A: arc.A, B: au})
		}
	}
	return out
}

// Disaggregate maps a solved aggregate design back to the true instance:
// every active member subscription is served from its aggregate unit's
// serving reflectors — previous-epoch arcs first (stickiness), then by
// descending capped weight — accumulating until the member's FULL weight
// demand is met or the candidates run out. Because the representative's
// demand dominates each member's while each member's path weights dominate
// the representative's, a reflector set that covered the aggregate covers
// every member; and because at most weight-many members share each serving
// arc, the true fanout use never exceeds what the aggregate LP reserved.
// prev may be nil (first epoch).
func (st *State) Disaggregate(in *netmodel.Instance, aggDesign *netmodel.Design, prev *netmodel.Design) *netmodel.Design {
	_, R, _ := in.Dims()
	d := netmodel.NewDesign(in)
	copy(d.Build, aggDesign.Build)
	for k := range d.Ingest {
		copy(d.Ingest[k], aggDesign.Ingest[k])
	}
	var cand, ord []int
	for au, mus := range st.memberUnits {
		cand = cand[:0]
		for i := 0; i < R; i++ {
			if aggDesign.Serve[i][au] {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			continue
		}
		for _, j := range mus {
			if in.Threshold[j] <= 0 {
				continue
			}
			ord = append(ord[:0], cand...)
			sort.SliceStable(ord, func(x, y int) bool {
				a, b := ord[x], ord[y]
				pa := prev != nil && prev.Serve[a][j]
				pb := prev != nil && prev.Serve[b][j]
				if pa != pb {
					return pa
				}
				wa, wb := in.CappedWeight(a, j), in.CappedWeight(b, j)
				if wa != wb {
					return wa > wb
				}
				return a < b
			})
			need := in.Demand(j)
			got := 0.0
			for _, i := range ord {
				if got >= need-1e-12 {
					break
				}
				if !in.ArcAllowed(i, j) {
					continue
				}
				d.Serve[i][j] = true
				got += in.CappedWeight(i, j)
			}
		}
	}
	d.Normalize(in)
	return d
}

func zeroMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	backing := make([]float64, rows*cols)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}
