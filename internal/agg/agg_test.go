package agg

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/stats"
)

func clustered(t *testing.T, streams int, seed uint64) *netmodel.Instance {
	t.Helper()
	cc := gen.DefaultClustered(2, 3, 2, 6)
	if streams > 1 {
		cc.StreamsPerSink = streams
		cc.Fanout *= streams
	}
	return gen.Clustered(cc, seed)
}

func TestBuildShapeAndWeights(t *testing.T) {
	in := clustered(t, 2, 3)
	st, err := Build(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := st.Agg
	if !a.Weighted() {
		t.Fatal("aggregate instance must be weighted")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("aggregate instance invalid: %v", err)
	}
	if a.NumSinks >= in.NumSinks {
		t.Fatalf("aggregation did not shrink the sink axis: %d vs %d", a.NumSinks, in.NumSinks)
	}
	// Membership partitions the true demand units exactly once.
	seen := make([]bool, in.NumSinks)
	totalW := 0.0
	for au := 0; au < st.Units(); au++ {
		totalW += a.UnitWeight[au]
		maxThr := 0.0
		for _, j := range st.MemberUnits(au) {
			if seen[j] {
				t.Fatalf("unit %d appears in two aggregates", j)
			}
			seen[j] = true
			if st.UnitOf(j) != au {
				t.Fatalf("UnitOf(%d) = %d, want %d", j, st.UnitOf(j), au)
			}
			if in.Commodity[j] != a.Commodity[au] {
				t.Fatalf("unit %d stream %d folded into aggregate stream %d",
					j, in.Commodity[j], a.Commodity[au])
			}
			if in.Threshold[j] > maxThr {
				maxThr = in.Threshold[j]
			}
		}
		if a.Threshold[au] != maxThr {
			t.Fatalf("aggregate %d threshold %g, want member max %g", au, a.Threshold[au], maxThr)
		}
	}
	for j, ok := range seen {
		if !ok {
			t.Fatalf("unit %d not in any aggregate", j)
		}
	}
	active := 0
	for _, thr := range in.Threshold {
		if thr > 0 {
			active++
		}
	}
	if int(totalW) != active {
		t.Fatalf("total aggregate weight %g, want %d active units", totalW, active)
	}
}

func TestBuildDeterministic(t *testing.T) {
	in := clustered(t, 2, 9)
	a, err := Build(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(in.Clone(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Units() != b.Units() || a.Groups() != b.Groups() {
		t.Fatalf("shape differs across builds: (%d,%d) vs (%d,%d)",
			a.Groups(), a.Units(), b.Groups(), b.Units())
	}
	for j := 0; j < in.NumSinks; j++ {
		if a.UnitOf(j) != b.UnitOf(j) {
			t.Fatalf("unit %d folds differently across builds: %d vs %d", j, a.UnitOf(j), b.UnitOf(j))
		}
	}
	sameAggInstance(t, "rebuild", a.Agg, b.Agg)
}

func TestBuildRejects(t *testing.T) {
	in := clustered(t, 1, 4)
	st, err := Build(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(st.Agg, Config{}); err == nil {
		t.Fatal("building over an already-weighted instance must fail")
	}
	if _, err := Build(in, Config{GroupOf: make([]int, in.NumViewers()+1)}); err == nil {
		t.Fatal("mis-sized GroupOf must fail")
	}
}

// sameAggInstance compares the aggregated sink plane cell-exactly.
func sameAggInstance(t *testing.T, what string, a, b *netmodel.Instance) {
	t.Helper()
	if a.NumSinks != b.NumSinks {
		t.Fatalf("%s: unit counts differ: %d vs %d", what, a.NumSinks, b.NumSinks)
	}
	for au := 0; au < a.NumSinks; au++ {
		if a.Threshold[au] != b.Threshold[au] {
			t.Fatalf("%s: threshold[%d] %g != %g", what, au, a.Threshold[au], b.Threshold[au])
		}
		if a.UnitWeight[au] != b.UnitWeight[au] {
			t.Fatalf("%s: weight[%d] %g != %g", what, au, a.UnitWeight[au], b.UnitWeight[au])
		}
		for i := range a.RefSinkLoss {
			if a.RefSinkLoss[i][au] != b.RefSinkLoss[i][au] {
				t.Fatalf("%s: loss[%d][%d] %g != %g", what, i, au, a.RefSinkLoss[i][au], b.RefSinkLoss[i][au])
			}
			if a.RefSinkCost[i][au] != b.RefSinkCost[i][au] {
				t.Fatalf("%s: cost[%d][%d] %g != %g", what, i, au, a.RefSinkCost[i][au], b.RefSinkCost[i][au])
			}
		}
	}
}

// TestSyncMatchesRebuild is the incremental-fold property lock: after any
// sequence of deltas, the Sync-maintained aggregate instance must equal a
// fresh Build over the mutated true instance cell-exactly, and the emitted
// dirty set must cover every aggregate cell that changed.
func TestSyncMatchesRebuild(t *testing.T) {
	in := clustered(t, 2, 17)
	// Pin the grouping: auto anchor groups are a function of costs, so a
	// fresh Build over the drifted instance would partition differently —
	// membership is fixed at Build by design.
	cfg := Config{GroupOf: anchorGroups(in)}
	st, err := Build(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(41)
	thr := 0.0
	for _, v := range in.Threshold {
		if v > thr {
			thr = v
		}
	}
	for round := 0; round < 12; round++ {
		d := netmodel.Delta{Note: fmt.Sprintf("round %d", round)}
		for j := 0; j < in.NumSinks; j++ {
			if rng.Bernoulli(0.15) {
				v := 0.0
				if rng.Bernoulli(0.6) {
					v = thr * rng.Range(0.95, 1.0)
				}
				d.SetThreshold = append(d.SetThreshold, netmodel.SinkValue{Sink: j, Value: v})
			}
		}
		for i := 0; i < in.NumReflectors; i++ {
			if rng.Bernoulli(0.1) {
				d.ScaleReflectorCost = append(d.ScaleReflectorCost,
					netmodel.RefValue{Ref: i, Value: rng.Range(0.9, 1.1)})
			}
			for j := 0; j < in.NumSinks; j++ {
				if rng.Bernoulli(0.05) {
					d.ScaleRefSinkCost = append(d.ScaleRefSinkCost,
						netmodel.ArcValue{A: i, B: j, Value: rng.Range(0.8, 1.2)})
				}
				if rng.Bernoulli(0.05) {
					d.SetRefSinkLoss = append(d.SetRefSinkLoss,
						netmodel.ArcValue{A: i, B: j, Value: rng.Range(0.005, 0.4)})
				}
			}
		}
		ds, err := d.Apply(in)
		if err != nil {
			t.Fatal(err)
		}

		// Snapshot the aggregated sink plane to verify dirty completeness.
		before := st.Agg.Clone()
		out := st.Sync(in, ds)

		fresh, err := Build(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameAggInstance(t, fmt.Sprintf("round %d", round), st.Agg, fresh.Agg)

		// Every aggregate cell that moved must be listed in the dirty set.
		dirtyDemand := map[int]bool{}
		for _, au := range out.SinkDemand {
			dirtyDemand[au] = true
		}
		dirtyWeight := map[int]bool{}
		for _, au := range out.SinkWeight {
			dirtyWeight[au] = true
		}
		dirtyCost := map[[2]int]bool{}
		for _, arc := range out.RefSinkCost {
			dirtyCost[[2]int{arc.A, arc.B}] = true
		}
		dirtyLoss := map[[2]int]bool{}
		for _, arc := range out.RefSinkLoss {
			dirtyLoss[[2]int{arc.A, arc.B}] = true
		}
		for au := 0; au < st.Units(); au++ {
			if st.Agg.Threshold[au] != before.Threshold[au] && !dirtyDemand[au] {
				t.Fatalf("round %d: threshold[%d] changed but not dirty", round, au)
			}
			if st.Agg.UnitWeight[au] != before.UnitWeight[au] && !dirtyWeight[au] {
				t.Fatalf("round %d: weight[%d] changed but not dirty", round, au)
			}
			for i := range st.Agg.RefSinkCost {
				if st.Agg.RefSinkCost[i][au] != before.RefSinkCost[i][au] && !dirtyCost[[2]int{i, au}] {
					t.Fatalf("round %d: cost[%d][%d] changed but not dirty", round, i, au)
				}
				if st.Agg.RefSinkLoss[i][au] != before.RefSinkLoss[i][au] && !dirtyLoss[[2]int{i, au}] {
					t.Fatalf("round %d: loss[%d][%d] changed but not dirty", round, i, au)
				}
			}
		}
	}
}

// TestSyncWeightNeutralSwapIsClean locks the LP-free mechanism at the fold
// level: a leave matched by a join inside the same aggregate emits an EMPTY
// aggregate dirty set.
func TestSyncWeightNeutralSwapIsClean(t *testing.T) {
	in := clustered(t, 1, 21)
	group := make([]int, in.NumViewers())
	var on, off int = -1, -1
	for j := 0; j < in.NumSinks && off < 0; j++ {
		for k := j + 1; k < in.NumSinks; k++ {
			if in.Commodity[j] == in.Commodity[k] {
				on, off = j, k
				break
			}
		}
	}
	if off < 0 {
		t.Fatal("no two sinks share a stream")
	}
	thr := in.Threshold[off]
	in.Threshold[off] = 0
	st, err := Build(in, Config{GroupOf: group})
	if err != nil {
		t.Fatal(err)
	}
	d := netmodel.Delta{SetThreshold: []netmodel.SinkValue{
		{Sink: on, Value: 0}, {Sink: off, Value: thr},
	}}
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if out := st.Sync(in, ds); !out.Empty() {
		t.Fatalf("weight-neutral swap emitted dirty %+v", out)
	}
}

// TestDisaggregateServesActiveMembers checks the unfold: every active member
// is served only from reflectors serving its aggregate, up to its full
// demand where the candidates admit it, sticky to the previous deployment.
func TestDisaggregateServesActiveMembers(t *testing.T) {
	in := clustered(t, 2, 29)
	st, err := Build(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := st.Agg
	// Hand-build an aggregate design: each unit served by its three
	// cheapest allowed reflectors, all of them built and ingesting.
	ad := netmodel.NewDesign(a)
	for i := range ad.Build {
		ad.Build[i] = true
		for k := range ad.Ingest {
			ad.Ingest[k][i] = true
		}
	}
	for au := 0; au < a.NumSinks; au++ {
		picked := 0
		for i := 0; i < a.NumReflectors && picked < 3; i++ {
			if a.ArcAllowed(i, au) {
				ad.Serve[i][au] = true
				picked++
			}
		}
	}
	d := st.Disaggregate(in, ad, nil)
	for j := 0; j < in.NumSinks; j++ {
		au := st.UnitOf(j)
		got := 0.0
		for i := 0; i < in.NumReflectors; i++ {
			if !d.Serve[i][j] {
				continue
			}
			if in.Threshold[j] <= 0 {
				t.Fatalf("inactive unit %d is served", j)
			}
			if !ad.Serve[i][au] {
				t.Fatalf("unit %d served from reflector %d outside its aggregate's set", j, i)
			}
			got += in.CappedWeight(i, j)
		}
		if in.Threshold[j] <= 0 {
			continue
		}
		// Full demand where the aggregate's candidate set admits it.
		avail := 0.0
		for i := 0; i < in.NumReflectors; i++ {
			if ad.Serve[i][au] && in.ArcAllowed(i, j) {
				avail += in.CappedWeight(i, j)
			}
		}
		want := in.Demand(j)
		if avail < want {
			want = avail
		}
		if got < want-1e-9 {
			t.Fatalf("unit %d got weight %g, want %g (avail %g)", j, got, want, avail)
		}
	}

	// Stickiness: serving arcs of a previous design that remain candidates
	// are preferred over equally-good strangers.
	prev := d
	d2 := st.Disaggregate(in, ad, prev)
	for j := 0; j < in.NumSinks; j++ {
		for i := 0; i < in.NumReflectors; i++ {
			if prev.Serve[i][j] && !d2.Serve[i][j] {
				t.Fatalf("sticky re-disaggregation dropped arc (%d,%d) with unchanged candidates", i, j)
			}
		}
	}
}

// TestColoGroupsFoldsAnchors pins ColoGroups to its contract: the label is
// exactly the per-reflector cost anchor folded into banks of
// reflectorsPerColo consecutive indices, so the fold can never exceed
// ⌈R/reflectorsPerColo⌉ labels, and reflectorsPerColo ≤ 1 degenerates to the
// default per-reflector anchors.
func TestColoGroupsFoldsAnchors(t *testing.T) {
	cfg := gen.DefaultClustered(2, 3, 2, 5)
	cfg.ReflectorsPerColo = 3
	in := gen.Clustered(cfg, 11)
	anchors := anchorGroups(in)
	colos := ColoGroups(in, 3)
	if len(colos) != len(anchors) {
		t.Fatalf("ColoGroups returned %d labels for %d viewers", len(colos), len(anchors))
	}
	_, R, _ := in.Dims()
	for g := range colos {
		if colos[g] != anchors[g]/3 {
			t.Fatalf("viewer %d: colo label %d, want anchor %d / 3 = %d",
				g, colos[g], anchors[g], anchors[g]/3)
		}
		if colos[g] < 0 || colos[g] >= (R+2)/3 {
			t.Fatalf("viewer %d: colo label %d out of range for R=%d, rpc=3", g, colos[g], R)
		}
	}
	ident := ColoGroups(in, 1)
	for g := range ident {
		if ident[g] != anchors[g] {
			t.Fatalf("rpc=1 must degenerate to per-reflector anchors (viewer %d: %d vs %d)",
				g, ident[g], anchors[g])
		}
	}
}
