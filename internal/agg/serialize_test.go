package agg

// Locks for State serialization: a membership exported to JSON and restored
// against the same (or churned-and-restored) true instance must rebuild the
// exact State — same unit order, same aggregate plane cell-for-cell — and
// invalid partitions must be refused.

import (
	"encoding/json"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/stats"
)

func jsonTrip(t *testing.T, d *StateData) *StateData {
	t.Helper()
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var out StateData
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestStateSerializeRoundTrip: export → JSON → restore reproduces the
// original State exactly, including after churn has moved weight around —
// the restore path must re-summarize against the instance as it stands NOW,
// not as it stood at Build time.
func TestStateSerializeRoundTrip(t *testing.T) {
	in := clustered(t, 2, 21)
	st, err := Build(in, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Churn a few epochs so the summaries have drifted from their Build
	// values before the snapshot is taken.
	rng := stats.NewRNG(99)
	for round := 0; round < 3; round++ {
		d := netmodel.Delta{}
		for j := 0; j < in.NumSinks; j++ {
			if rng.Bernoulli(0.3) {
				v := 0.0
				if rng.Bernoulli(0.7) {
					v = rng.Range(0.5, 0.95)
				}
				d.SetThreshold = append(d.SetThreshold, netmodel.SinkValue{Sink: j, Value: v})
			}
		}
		if err := d.Validate(in); err != nil {
			t.Fatal(err)
		}
		dirty, err := d.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		st.Sync(in, dirty)
	}

	restored, err := Restore(in, jsonTrip(t, st.Export()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Units() != st.Units() || restored.Groups() != st.Groups() {
		t.Fatalf("restored shape (%d,%d) != original (%d,%d)",
			restored.Groups(), restored.Units(), st.Groups(), st.Units())
	}
	for j := 0; j < in.NumSinks; j++ {
		if restored.UnitOf(j) != st.UnitOf(j) {
			t.Fatalf("unit %d folds to %d restored vs %d original", j, restored.UnitOf(j), st.UnitOf(j))
		}
	}
	sameAggInstance(t, "restore", restored.Agg, st.Agg)
	for au := range restored.scale {
		if restored.scale[au] != st.scale[au] {
			t.Fatalf("scale[%d] %g restored vs %g original", au, restored.scale[au], st.scale[au])
		}
	}
	if restored.Agg.Commodity == nil {
		t.Fatal("restored aggregate lost its commodity map")
	}
	for au := range restored.Agg.Commodity {
		if restored.Agg.Commodity[au] != st.Agg.Commodity[au] {
			t.Fatalf("aggregate %d stream %d restored vs %d original",
				au, restored.Agg.Commodity[au], st.Agg.Commodity[au])
		}
	}
}

// TestStateRestoreRejects: partitions that don't cover the viewers exactly
// once, or that merge viewers with different slot sets, must be refused.
func TestStateRestoreRejects(t *testing.T) {
	in := clustered(t, 2, 5)
	st, err := Build(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	good := st.Export()

	cases := []struct {
		name    string
		corrupt func(d *StateData)
	}{
		{"empty aggregate", func(d *StateData) { d.Members = append(d.Members, []int{}) }},
		{"viewer out of range", func(d *StateData) { d.Members[0][0] = in.NumViewers() }},
		{"negative viewer", func(d *StateData) { d.Members[0][0] = -1 }},
		{"duplicated viewer", func(d *StateData) { d.Members[0] = append(d.Members[0], d.Members[0][0]) }},
		{"missing viewer", func(d *StateData) {
			d.Members[0] = d.Members[0][:0]
			d.Members[0] = append(d.Members[0], d.Members[1][0])
			d.Members[1] = d.Members[1][1:]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := jsonTrip(t, good)
			tc.corrupt(d)
			if _, err := Restore(in, d); err == nil {
				t.Fatalf("restore accepted invalid partition (%s)", tc.name)
			}
		})
	}

	// Mixed slot sets: single-stream and two-stream builds partition
	// different viewer sets, so a two-stream membership restored against a
	// one-stream instance must fail one way or another.
	in1 := clustered(t, 1, 5)
	if _, err := Restore(in1, good); err == nil {
		t.Fatal("restore accepted a membership from a different instance shape")
	}
	if _, err := Restore(st.Agg, good); err == nil {
		t.Fatal("restore accepted an already-weighted instance")
	}
	if _, err := Restore(in, nil); err == nil {
		t.Fatal("restore accepted nil data")
	}
	if (*State)(nil).Export() != nil {
		t.Fatal("nil state exported non-nil")
	}
}
