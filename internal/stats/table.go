package stats

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table used by the experiment harness to
// print results in the same shape the paper's evaluation would report them.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells beyond len(Headers) are kept; short rows are
// padded when rendering.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from formatted values: each argument is
// rendered with %v for strings and ints, and with compact %.4g for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote printed below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders a float compactly: fixed precision for moderate
// magnitudes, scientific for extremes.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-4:
		return fmt.Sprintf("%.3e", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	get := func(row []string, i int) string {
		if i < len(row) {
			return row[i]
		}
		return ""
	}
	for i := 0; i < ncol; i++ {
		w := len(get(t.Headers, i))
		for _, r := range t.Rows {
			if l := len(get(r, i)); l > w {
				w = l
			}
		}
		widths[i] = w
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < ncol; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			cell := get(row, i)
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
