package stats

import (
	"math"
	"sort"
)

// Summary holds order statistics and moments of a sample.
type Summary struct {
	N                       int
	Mean, Std               float64
	Min, Max, Median        float64
	P05, P25, P75, P95, P99 float64
}

// Summarize computes a Summary of xs. It copies xs before sorting, so the
// input is not modified. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P25 = Quantile(sorted, 0.25)
	s.P75 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	s.Mean = Mean(xs)
	s.Std = Std(xs)
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator; 0 if n < 2).
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted slice,
// using linear interpolation between order statistics.
//
// Edge cases are explicit: a NaN q returns NaN for every sample size (it
// used to fall through the range guards and index with int(floor(NaN)) — a
// panic on samples of two or more); q outside [0,1] clamps to the extremes.
// ±Inf VALUES propagate: a quantile landing exactly on an infinite order
// statistic returns it, and one interpolating strictly between a finite
// value and ±Inf returns ±Inf; only interpolating between -Inf and +Inf is
// NaN (undefined). The slice is assumed NaN-free — sort.Float64s places NaN
// values arbitrarily, so a sample containing NaN has no meaningful order
// statistics.
func Quantile(sorted []float64, q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	if frac == 0 {
		// Exact order statistic: no interpolation, so an infinite value
		// comes back as itself instead of the NaN that 0·Inf would yield.
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the q-quantiles of xs, sorting one private copy once
// and interpolating every requested quantile from it (so xs need not be
// pre-sorted and is not modified). An empty sample yields all zeros.
func Quantiles(xs []float64, qs ...float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = Quantile(sorted, q)
	}
	return out
}

// MeanCI returns the mean of xs together with the half-width of an
// approximate 95% confidence interval (normal approximation).
func MeanCI(xs []float64) (mean, halfWidth float64) {
	n := len(xs)
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	halfWidth = 1.96 * Std(xs) / math.Sqrt(float64(n))
	return mean, halfWidth
}

// MaxFloat returns the maximum of xs, or 0 for an empty slice.
func MaxFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinFloat returns the minimum of xs, or 0 for an empty slice.
func MinFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
