package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(2)
	const buckets = 10
	counts := make([]int, buckets)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	for b, c := range counts {
		got := float64(c) / n
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v, want ~0.1", b, got)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Split()
	// Child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams overlap in %d/64 draws", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(4)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestBernoulliMean(t *testing.T) {
	r := NewRNG(6)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.3) > 0.005 {
		t.Fatalf("Bernoulli(0.3) frequency %v", got)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if got := sum / n; math.Abs(got-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean %v, want 0.5", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(8)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal mean=%v var=%v", mean, variance)
	}
}

func TestMul64AgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Cross-check with math/bits-style split computation.
		wantLo := a * b
		// hi via 128-bit decomposition: (a*b) >> 64 computed through
		// four 32-bit partial products.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		t1 := aLo * bLo
		t2 := aHi*bLo + t1>>32
		t3 := aLo*bHi + t2&0xffffffff
		wantHi := aHi*bHi + t2>>32 + t3>>32
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.25); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("Quantile(0.25) = %v", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Fatalf("Quantile(1) = %v", q)
	}
}

func TestQuantileNaNAndInf(t *testing.T) {
	nan := math.NaN()
	// NaN q is NaN at every sample size — including the n=0 and n=1 fast
	// paths that used to short-circuit before the guards, and the n≥2 path
	// that used to index with int(floor(NaN)) and panic.
	for _, sorted := range [][]float64{nil, {7}, {1, 2}, {1, 2, 3, 4}} {
		if q := Quantile(sorted, nan); !math.IsNaN(q) {
			t.Fatalf("Quantile(n=%d, NaN) = %v, want NaN", len(sorted), q)
		}
	}
	// q outside [0,1] clamps; infinite q clamps like any out-of-range q.
	if q := Quantile([]float64{1, 2}, -0.5); q != 1 {
		t.Fatalf("Quantile(-0.5) = %v, want 1", q)
	}
	if q := Quantile([]float64{1, 2}, math.Inf(1)); q != 2 {
		t.Fatalf("Quantile(+Inf q) = %v, want 2", q)
	}
	// ±Inf VALUES propagate: an exact order-statistic hit returns the
	// infinity itself (no 0·Inf = NaN), interpolation toward it is ±Inf.
	inf := math.Inf(1)
	sorted := []float64{0, 1, inf}
	if q := Quantile(sorted, 0.5); q != 1 {
		t.Fatalf("Quantile(0.5) on exact finite statistic = %v, want 1", q)
	}
	if q := Quantile(sorted, 1); !math.IsInf(q, 1) {
		t.Fatalf("Quantile(1) = %v, want +Inf", q)
	}
	if q := Quantile(sorted, 0.75); !math.IsInf(q, 1) {
		t.Fatalf("Quantile(0.75) interpolating toward +Inf = %v, want +Inf", q)
	}
	if q := Quantile([]float64{inf, inf}, 0.5); !math.IsInf(q, 1) {
		t.Fatalf("Quantile between equal infinities = %v, want +Inf", q)
	}
	// Exactly on an infinite order statistic in the middle of the sample.
	if q := Quantile([]float64{0, inf, inf}, 0.5); !math.IsInf(q, 1) {
		t.Fatalf("Quantile landing on +Inf statistic = %v, want +Inf", q)
	}
}

func TestMeanCIShrinks(t *testing.T) {
	r := NewRNG(11)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = r.Float64()
	}
	for i := range large {
		large[i] = r.Float64()
	}
	_, hwSmall := MeanCI(small)
	_, hwLarge := MeanCI(large)
	if hwLarge >= hwSmall {
		t.Fatalf("CI half-width must shrink with n: %v vs %v", hwSmall, hwLarge)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize must not sort its input")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 3.14159, 42)
	tb.AddNote("footnote %d", 1)
	out := tb.String()
	for _, want := range []string{"My Title", "name", "alpha", "beta", "3.1416", "42", "note: footnote 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and rows share prefix widths.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 6 {
		t.Fatalf("unexpected table shape:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1.235e+06",
		0.5:     "0.5000",
		150.25:  "150.2",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestMinMaxFloat(t *testing.T) {
	xs := []float64{3, -1, 7}
	if MaxFloat(xs) != 7 || MinFloat(xs) != -1 {
		t.Fatal("min/max wrong")
	}
	if MaxFloat(nil) != 0 || MinFloat(nil) != 0 {
		t.Fatal("empty min/max must be 0")
	}
}
