// Package stats provides deterministic random number generation, summary
// statistics, and fixed-width table formatting shared by the solver,
// simulator, and experiment harness.
//
// All randomized components in this repository draw from RNG, a splitmix64
// generator with an explicit seed, so that every experiment table is exactly
// reproducible from its seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; derive independent streams
// with Split for parallel work.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a statistically independent generator from r. The derived
// stream is a deterministic function of r's current state, and advancing r
// afterwards does not affect it.
func (r *RNG) Split() *RNG {
	// Mix the child seed through one extra round so parent and child
	// sequences diverge immediately.
	s := r.Uint64()
	s ^= 0x9e3779b97f4a7c15
	return &RNG{state: s * 0xbf58476d1ce4e5b9}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Rejection-free modulo is fine here: n is always far below 2^63 in
	// this codebase, so modulo bias is negligible (< 2^-40), but use
	// Lemire's multiply-shift reduction anyway for uniformity.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo32 := t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask32
	hi1 := t >> 32
	t = aLo*bHi + mid1
	mid2 := t & mask32
	hi2 := t >> 32
	hi = aHi*bHi + hi1 + hi2
	lo = mid2<<32 | lo32
	return hi, lo
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the pair's second half is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Exponential returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exponential(rate float64) float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u) / rate
	}
}
