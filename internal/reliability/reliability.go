// Package reliability provides the probabilistic machinery of the paper:
// exact per-sink failure probabilities for 3-level overlay designs (§1.3),
// Monte-Carlo estimation of the same quantities (used to cross-check the
// model and the packet simulator), and the Hoeffding–Chernoff tail bounds of
// Theorem 4.2 / Appendix A that drive the w.h.p. analysis in §4.
package reliability

import (
	"math"

	"repro/internal/netmodel"
	"repro/internal/par"
	"repro/internal/stats"
)

// SinkFailure returns the exact probability that a packet of sink j's
// stream is lost despite all serving reflectors: the product over chosen
// reflectors i of (p_ki + p_ij − p_ki·p_ij). The product rule is exact in a
// 3-level network because distinct two-hop paths to a sink share no links
// (they recombine only at the sink, §1.5).
func SinkFailure(in *netmodel.Instance, d *netmodel.Design, j int) float64 {
	return d.SinkFailureProb(in, j)
}

// AllSinkFailures returns the exact failure probability of every sink.
func AllSinkFailures(in *netmodel.Instance, d *netmodel.Design) []float64 {
	out := make([]float64, in.NumSinks)
	for j := range out {
		out[j] = d.SinkFailureProb(in, j)
	}
	return out
}

// MonteCarloSinkFailure estimates sink j's failure probability by sampling:
// each trial draws independent Bernoulli losses for the source→reflector
// link of each serving reflector and the reflector→sink links, and the
// packet is lost iff every copy dies. Trials are split across workers.
func MonteCarloSinkFailure(in *netmodel.Instance, d *netmodel.Design, j, trials int, seed uint64) float64 {
	k := in.Commodity[j]
	var refls []int
	for i := range d.Serve {
		if d.Serve[i][j] {
			refls = append(refls, i)
		}
	}
	if len(refls) == 0 {
		return 1
	}
	workers := 8
	losses := par.Map(workers, workers, func(w int) int64 {
		rng := stats.NewRNG(seed + uint64(w)*0x9e3779b97f4a7c15)
		lo := w * trials / workers
		hi := (w + 1) * trials / workers
		var lost int64
		for t := lo; t < hi; t++ {
			allDead := true
			for _, i := range refls {
				// Copy survives iff both hops survive.
				if !rng.Bernoulli(in.SrcRefLoss[k][i]) && !rng.Bernoulli(in.RefSinkLoss[i][j]) {
					allDead = false
					// Still consume RNG draws? Not needed for
					// correctness; break for speed.
					break
				}
			}
			if allDead {
				lost++
			}
		}
		return lost
	})
	var total int64
	for _, l := range losses {
		total += l
	}
	return float64(total) / float64(trials)
}

// HoeffdingChernoffLower bounds Pr(S ≤ (1−δ)µ) for a sum S of independent
// [0,1] variables with mean µ (Theorem 4.2): exp(−δ²µ/2).
func HoeffdingChernoffLower(mu, delta float64) float64 {
	return math.Exp(-delta * delta * mu / 2)
}

// HoeffdingChernoffUpper bounds Pr(S ≥ (1+δ)µ) (Theorem 4.2): exp(−δ²µ/3).
func HoeffdingChernoffUpper(mu, delta float64) float64 {
	return math.Exp(-delta * delta * mu / 3)
}

// RequiredC returns the smallest rounding constant c for which the §4
// union bound makes all n weight constraints hold with probability ≥ 1−1/n
// at violation parameter δ: the paper sets δ²·c = 4 (e.g. δ=1/4 ⇒ c=64).
func RequiredC(delta float64) float64 {
	return 4 / (delta * delta)
}

// EmpiricalTail measures Pr(S ≤ (1−δ)µ) and Pr(S ≥ (1+δ)µ) empirically for
// sums of n i.i.d. uniform [0,1] variables, over the given number of trials.
// The experiment suite compares these against the theorem's bounds (T12).
func EmpiricalTail(n int, delta float64, trials int, seed uint64) (lowerTail, upperTail float64) {
	mu := float64(n) / 2
	var below, above int
	rng := stats.NewRNG(seed)
	for t := 0; t < trials; t++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += rng.Float64()
		}
		if s <= (1-delta)*mu {
			below++
		}
		if s >= (1+delta)*mu {
			above++
		}
	}
	return float64(below) / float64(trials), float64(above) / float64(trials)
}

// MinReflectorsFor returns how many disjoint copies with per-copy failure
// probability p a sink needs to reach success threshold phi: the smallest m
// with p^m ≤ 1−phi. Used by the redundancy-curve experiment (T5).
func MinReflectorsFor(p, phi float64) int {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return math.MaxInt32
	}
	need := math.Log(1-phi) / math.Log(p)
	m := int(math.Ceil(need - 1e-12))
	if m < 1 {
		m = 1
	}
	return m
}
