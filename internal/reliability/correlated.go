package reliability

import (
	"math"

	"repro/internal/netmodel"
	"repro/internal/stats"
)

// The paper's abstract promises "extensions in which some losses may be
// correlated", realized through the §6.4 ISP model: all reflectors of one
// ISP can fail together (the WorldCom outage of §1.2). This file computes
// sink reliability under that correlated-failure model exactly, so the
// experiment suite can compare the independent-loss prediction with the
// correlated reality for color-constrained and unconstrained designs.

// ISPOutageModel describes correlated catastrophes: each ISP (color class)
// independently suffers a total outage with the given probability; during
// an outage every reflector of that ISP delivers nothing. Packet losses on
// surviving links stay independent per §1.3.
type ISPOutageModel struct {
	// OutageProb[c] is the probability ISP c is dark during the window.
	OutageProb []float64
}

// UniformOutage returns a model where every ISP fails with probability q.
func UniformOutage(numISPs int, q float64) ISPOutageModel {
	m := ISPOutageModel{OutageProb: make([]float64, numISPs)}
	for c := range m.OutageProb {
		m.OutageProb[c] = q
	}
	return m
}

// SinkFailureCorrelated returns the exact probability that sink j receives
// no copy of a packet under the ISP-outage model: the expectation over
// outage patterns of the conditional product-of-path-failures. Only the
// ISPs actually serving sink j matter, so the enumeration is over at most
// 2^(#serving colors) patterns.
func SinkFailureCorrelated(in *netmodel.Instance, d *netmodel.Design, j int, m ISPOutageModel) float64 {
	if in.Color == nil {
		return d.SinkFailureProb(in, j)
	}
	// Group serving reflectors by color and precompute each color's
	// conditional survival product.
	colorFail := map[int]float64{} // product of path failures per color
	for i := range d.Serve {
		if !d.Serve[i][j] {
			continue
		}
		c := in.Color[i]
		f, ok := colorFail[c]
		if !ok {
			f = 1
		}
		colorFail[c] = f * in.PathFailure(i, j)
	}
	if len(colorFail) == 0 {
		return 1
	}
	colors := make([]int, 0, len(colorFail))
	for c := range colorFail {
		colors = append(colors, c)
	}
	// Enumerate outage subsets of the serving colors.
	total := 0.0
	n := len(colors)
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		fail := 1.0
		for idx, c := range colors {
			q := 0.0
			if c < len(m.OutageProb) {
				q = m.OutageProb[c]
			}
			if mask&(1<<idx) != 0 {
				p *= q
				// Dark ISP: its copies all fail (factor 1).
			} else {
				p *= 1 - q
				fail *= colorFail[c]
			}
		}
		total += p * fail
	}
	return total
}

// MonteCarloCorrelated estimates the same quantity by sampling outage
// patterns and link losses; used to cross-check the exact enumeration.
func MonteCarloCorrelated(in *netmodel.Instance, d *netmodel.Design, j, trials int, m ISPOutageModel, seed uint64) float64 {
	k := in.Commodity[j]
	var refls []int
	for i := range d.Serve {
		if d.Serve[i][j] {
			refls = append(refls, i)
		}
	}
	if len(refls) == 0 {
		return 1
	}
	rng := stats.NewRNG(seed)
	lost := 0
	dark := make([]bool, in.NumColors)
	for t := 0; t < trials; t++ {
		for c := range dark {
			q := 0.0
			if c < len(m.OutageProb) {
				q = m.OutageProb[c]
			}
			dark[c] = rng.Bernoulli(q)
		}
		allDead := true
		for _, i := range refls {
			if in.Color != nil && dark[in.Color[i]] {
				continue
			}
			if !rng.Bernoulli(in.SrcRefLoss[k][i]) && !rng.Bernoulli(in.RefSinkLoss[i][j]) {
				allDead = false
				break
			}
		}
		if allDead {
			lost++
		}
	}
	return float64(lost) / float64(trials)
}

// ExpectedAvailability returns the expected fraction of demanding sinks
// that still meet their threshold under the outage model (using the exact
// correlated failure probability per sink).
func ExpectedAvailability(in *netmodel.Instance, d *netmodel.Design, m ISPOutageModel) float64 {
	demanding, meet := 0, 0.0
	for j := 0; j < in.NumSinks; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		demanding++
		// A sink "meets" under a given outage pattern iff its
		// conditional failure ≤ 1−Φ; aggregate over patterns.
		meet += probMeets(in, d, j, m)
	}
	if demanding == 0 {
		return 1
	}
	return meet / float64(demanding)
}

// probMeets returns the probability (over outage patterns) that sink j's
// conditional failure probability still meets its threshold.
func probMeets(in *netmodel.Instance, d *netmodel.Design, j int, m ISPOutageModel) float64 {
	target := 1 - in.Threshold[j]
	if in.Color == nil {
		if d.SinkFailureProb(in, j) <= target+1e-15 {
			return 1
		}
		return 0
	}
	colorFail := map[int]float64{}
	for i := range d.Serve {
		if !d.Serve[i][j] {
			continue
		}
		c := in.Color[i]
		f, ok := colorFail[c]
		if !ok {
			f = 1
		}
		colorFail[c] = f * in.PathFailure(i, j)
	}
	if len(colorFail) == 0 {
		return 0
	}
	colors := make([]int, 0, len(colorFail))
	for c := range colorFail {
		colors = append(colors, c)
	}
	n := len(colors)
	prob := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		fail := 1.0
		for idx, c := range colors {
			q := 0.0
			if c < len(m.OutageProb) {
				q = m.OutageProb[c]
			}
			if mask&(1<<idx) != 0 {
				p *= q
			} else {
				p *= 1 - q
				fail *= colorFail[c]
			}
		}
		if fail <= target+1e-15 {
			prob += p
		}
	}
	return prob
}

// IndependentPrediction is what the §1.3 independent model would predict
// for the same designs: it folds each ISP's outage probability into every
// path through that ISP as if outages hit links independently
// (p' = q + (1−q)·p per path). The gap between this and the exact
// correlated computation is precisely the modeling error the paper's
// color extension addresses.
func IndependentPrediction(in *netmodel.Instance, d *netmodel.Design, j int, m ISPOutageModel) float64 {
	p := 1.0
	served := false
	for i := range d.Serve {
		if !d.Serve[i][j] {
			continue
		}
		served = true
		pf := in.PathFailure(i, j)
		if in.Color != nil {
			c := in.Color[i]
			q := 0.0
			if c < len(m.OutageProb) {
				q = m.OutageProb[c]
			}
			pf = q + (1-q)*pf
		}
		p *= pf
	}
	if !served {
		return 1
	}
	return math.Min(p, 1)
}
