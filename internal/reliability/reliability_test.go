package reliability

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/netmodel"
)

func designServingAll(in *netmodel.Instance, copies int) *netmodel.Design {
	d := netmodel.NewDesign(in)
	for j := 0; j < in.NumSinks; j++ {
		for i := 0; i < copies && i < in.NumReflectors; i++ {
			d.Serve[i][j] = true
		}
	}
	d.Normalize(in)
	return d
}

func TestExactMatchesMonteCarlo(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 5, 6), 3)
	d := designServingAll(in, 3)
	for j := 0; j < in.NumSinks; j++ {
		exact := SinkFailure(in, d, j)
		mc := MonteCarloSinkFailure(in, d, j, 400000, 7)
		// Standard error ~ sqrt(p/n); allow 5 sigma plus float fuzz.
		tol := 5*math.Sqrt(math.Max(exact, 1e-6)/400000) + 1e-6
		if math.Abs(exact-mc) > tol {
			t.Fatalf("sink %d: exact %v vs MC %v (tol %v)", j, exact, mc, tol)
		}
	}
}

func TestUnservedSinkFailsSurely(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 2), 1)
	d := netmodel.NewDesign(in)
	if MonteCarloSinkFailure(in, d, 0, 100, 1) != 1 {
		t.Fatal("unserved sink must fail with probability 1")
	}
	if SinkFailure(in, d, 0) != 1 {
		t.Fatal("exact failure of unserved sink must be 1")
	}
}

func TestAllSinkFailures(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 4, 5), 2)
	d := designServingAll(in, 2)
	fs := AllSinkFailures(in, d)
	if len(fs) != in.NumSinks {
		t.Fatalf("len = %d", len(fs))
	}
	for j, f := range fs {
		if math.Abs(f-d.SinkFailureProb(in, j)) > 1e-15 {
			t.Fatalf("sink %d mismatch", j)
		}
	}
}

// More copies can only reduce failure probability.
func TestMonotoneInCopies(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 6, 3), 5)
	prev := 1.1
	for copies := 1; copies <= 4; copies++ {
		d := designServingAll(in, copies)
		f := SinkFailure(in, d, 0)
		if f > prev+1e-15 {
			t.Fatalf("failure rose with more copies: %v -> %v", prev, f)
		}
		prev = f
	}
}

func TestChernoffBoundsFormulas(t *testing.T) {
	if got := HoeffdingChernoffLower(32, 0.25); math.Abs(got-math.Exp(-0.25*0.25*32/2)) > 1e-15 {
		t.Fatalf("lower bound = %v", got)
	}
	if got := HoeffdingChernoffUpper(32, 0.25); math.Abs(got-math.Exp(-0.25*0.25*32/3)) > 1e-15 {
		t.Fatalf("upper bound = %v", got)
	}
}

func TestRequiredC(t *testing.T) {
	// δ=1/4 ⇒ c=64 (the paper's headline constant).
	if c := RequiredC(0.25); math.Abs(c-64) > 1e-12 {
		t.Fatalf("RequiredC(1/4) = %v, want 64", c)
	}
	if c := RequiredC(0.5); math.Abs(c-16) > 1e-12 {
		t.Fatalf("RequiredC(1/2) = %v, want 16", c)
	}
}

// TestEmpiricalTailsRespectBounds: the theorem's bound must dominate the
// empirical tail for sums of uniforms (µ = n/2).
func TestEmpiricalTailsRespectBounds(t *testing.T) {
	n := 40
	delta := 0.3
	lower, upper := EmpiricalTail(n, delta, 20000, 3)
	mu := float64(n) / 2
	if lower > HoeffdingChernoffLower(mu, delta)+0.01 {
		t.Fatalf("empirical lower tail %v exceeds bound %v", lower, HoeffdingChernoffLower(mu, delta))
	}
	if upper > HoeffdingChernoffUpper(mu, delta)+0.01 {
		t.Fatalf("empirical upper tail %v exceeds bound %v", upper, HoeffdingChernoffUpper(mu, delta))
	}
}

func TestMinReflectorsFor(t *testing.T) {
	// p=0.1, phi=0.99 ⇒ need 0.1^m ≤ 0.01 ⇒ m=2.
	if m := MinReflectorsFor(0.1, 0.99); m != 2 {
		t.Fatalf("m = %d, want 2", m)
	}
	// p=0.1, phi=0.999 ⇒ m=3.
	if m := MinReflectorsFor(0.1, 0.999); m != 3 {
		t.Fatalf("m = %d, want 3", m)
	}
	if m := MinReflectorsFor(0, 0.9999); m != 1 {
		t.Fatalf("perfect path needs 1 copy, got %d", m)
	}
}

// Property: m copies at failure p reach threshold iff p^m ≤ 1-phi.
func TestMinReflectorsQuick(t *testing.T) {
	f := func(a, b uint8) bool {
		p := 0.01 + 0.98*float64(a)/255
		phi := 0.5 + 0.4999*float64(b)/255
		m := MinReflectorsFor(p, phi)
		if m < 1 || m > 1e6 {
			return true // extreme; skip
		}
		ok := math.Pow(p, float64(m)) <= (1-phi)+1e-12
		tooFew := m == 1 || math.Pow(p, float64(m-1)) > (1-phi)-1e-12
		return ok && tooFew
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
