package reliability

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/netmodel"
)

func coloredDesign(in *netmodel.Instance, copies int) *netmodel.Design {
	d := netmodel.NewDesign(in)
	for j := 0; j < in.NumSinks; j++ {
		used := map[int]bool{}
		added := 0
		for i := 0; i < in.NumReflectors && added < copies; i++ {
			if used[in.Color[i]] {
				continue
			}
			d.Serve[i][j] = true
			used[in.Color[i]] = true
			added++
		}
	}
	d.Normalize(in)
	return d
}

func TestCorrelatedMatchesIndependentAtZeroOutage(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 3, 4), 5)
	d := coloredDesign(in, 2)
	m := UniformOutage(in.NumColors, 0)
	for j := 0; j < in.NumSinks; j++ {
		exact := SinkFailureCorrelated(in, d, j, m)
		plain := d.SinkFailureProb(in, j)
		if math.Abs(exact-plain) > 1e-12 {
			t.Fatalf("sink %d: %v vs %v at q=0", j, exact, plain)
		}
	}
}

func TestCorrelatedMatchesMonteCarlo(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 3, 4), 7)
	d := coloredDesign(in, 3)
	m := UniformOutage(in.NumColors, 0.1)
	for j := 0; j < 4; j++ {
		exact := SinkFailureCorrelated(in, d, j, m)
		mc := MonteCarloCorrelated(in, d, j, 300000, m, 11)
		tol := 5*math.Sqrt(math.Max(exact, 1e-5)/300000) + 1e-3
		if math.Abs(exact-mc) > tol {
			t.Fatalf("sink %d: exact %v vs MC %v", j, exact, mc)
		}
	}
}

func TestCorrelatedWorseThanIndependentPrediction(t *testing.T) {
	// When all copies share one ISP, the independent prediction
	// underestimates failure: it treats per-copy outages as independent
	// while in reality they coincide.
	in := gen.Clustered(gen.DefaultClustered(1, 2, 2, 3), 3)
	d := netmodel.NewDesign(in)
	// Serve sink 0 with two same-color reflectors.
	var same []int
	for i := 0; i < in.NumReflectors; i++ {
		if in.Color[i] == 0 {
			same = append(same, i)
		}
	}
	if len(same) < 2 {
		t.Skip("need two same-color reflectors")
	}
	d.Serve[same[0]][0] = true
	d.Serve[same[1]][0] = true
	d.Normalize(in)
	m := UniformOutage(in.NumColors, 0.2)
	exact := SinkFailureCorrelated(in, d, 0, m)
	pred := IndependentPrediction(in, d, 0, m)
	if exact <= pred {
		t.Fatalf("correlated failure %v should exceed independent prediction %v for same-ISP copies", exact, pred)
	}
}

func TestCorrelatedEqualForDiverseCopies(t *testing.T) {
	// With one copy per ISP, outages hit copies independently, so the
	// independent prediction is exact.
	in := gen.Clustered(gen.DefaultClustered(1, 2, 3, 3), 4)
	d := coloredDesign(in, 3)
	m := UniformOutage(in.NumColors, 0.15)
	for j := 0; j < in.NumSinks; j++ {
		exact := SinkFailureCorrelated(in, d, j, m)
		pred := IndependentPrediction(in, d, j, m)
		if math.Abs(exact-pred) > 1e-12 {
			t.Fatalf("sink %d: diverse copies should make prediction exact: %v vs %v", j, exact, pred)
		}
	}
}

func TestExpectedAvailabilityOrdering(t *testing.T) {
	// Availability must decrease with outage probability.
	in := gen.Clustered(gen.DefaultClustered(2, 2, 3, 4), 9)
	d := coloredDesign(in, 3)
	prev := 1.1
	for _, q := range []float64{0, 0.05, 0.2, 0.5} {
		av := ExpectedAvailability(in, d, UniformOutage(in.NumColors, q))
		if av > prev+1e-12 {
			t.Fatalf("availability rose with outage prob: %v -> %v at q=%v", prev, av, q)
		}
		prev = av
	}
}

func TestUnservedSinkCorrelated(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(1, 2, 2, 2), 2)
	d := netmodel.NewDesign(in)
	m := UniformOutage(in.NumColors, 0.1)
	if SinkFailureCorrelated(in, d, 0, m) != 1 {
		t.Fatal("unserved sink must fail surely")
	}
	if IndependentPrediction(in, d, 0, m) != 1 {
		t.Fatal("prediction for unserved sink must be 1")
	}
}

func TestCorrelatedNoColors(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 2), 3)
	d := netmodel.NewDesign(in)
	d.Serve[0][0] = true
	d.Normalize(in)
	m := ISPOutageModel{}
	if got, want := SinkFailureCorrelated(in, d, 0, m), d.SinkFailureProb(in, 0); got != want {
		t.Fatalf("no colors: %v vs %v", got, want)
	}
}
