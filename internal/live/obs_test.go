package live

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestObsOnOffEquivalence locks the observability layer's read-only
// contract across the whole scenario library: running a timeline with a
// full observer (metrics registry + JSONL tracer + OnEpoch hook) must
// produce a report identical to the uninstrumented run in every field
// except wall time — the tap never perturbs the solve. It also checks the
// signals actually flowed: per-epoch hook calls, the canonical epoch
// counter, the pivot counter agreeing with the report, and one epoch span
// per epoch in the trace.
func TestObsOnOffEquivalence(t *testing.T) {
	const epochs = 8
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := Make(name, 11, epochs)
			if err != nil {
				t.Fatal(err)
			}
			off, err := Run(sc, Config{Policy: WarmStickyPolicy()})
			if err != nil {
				t.Fatal(err)
			}

			reg := obs.NewRegistry()
			obs.Canonical(reg)
			var buf bytes.Buffer
			hookCalls := 0
			cfg := Config{
				Policy:  WarmStickyPolicy(),
				Obs:     &obs.Observer{Reg: reg, Tr: obs.NewTracer(&buf)},
				OnEpoch: func(EpochReport) { hookCalls++ },
			}
			on, err := Run(sc, cfg)
			if err != nil {
				t.Fatal(err)
			}

			scrubWall(off)
			scrubWall(on)
			if !reflect.DeepEqual(off, on) {
				t.Fatal("observed run diverged from the uninstrumented run")
			}
			if hookCalls != epochs {
				t.Fatalf("OnEpoch fired %d times, want %d", hookCalls, epochs)
			}
			if got := reg.Counter(obs.MEpochsTotal).Value(); got != epochs {
				t.Fatalf("epochs_total = %v, want %d", got, epochs)
			}
			if got := reg.Counter(obs.MLPPivots).Value(); got != float64(on.TotalPivots) {
				t.Fatalf("pivot counter %v != report total %d", got, on.TotalPivots)
			}
			recs, err := obs.ReadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}
			epochSpans := 0
			for _, r := range recs {
				if r.Name == "epoch" {
					epochSpans++
				}
			}
			if epochSpans != epochs {
				t.Fatalf("%d epoch spans in the trace, want %d", epochSpans, epochs)
			}
		})
	}
}

// TestPerRegionSLOBreakdown locks the per-region availability rows: on a
// region-partitioned scenario every epoch reports one row per region, the
// rows partition the active demand units, and the registry's labeled
// region gauges mirror the last epoch's window fractions.
func TestPerRegionSLOBreakdown(t *testing.T) {
	sc := RollingISPOutage(5, 10)
	if len(sc.SinkRegion) == 0 {
		t.Fatal("scenario carries no region map")
	}
	reg := obs.NewRegistry()
	cfg := Config{Policy: WarmStickyPolicy(), Obs: &obs.Observer{Reg: reg}}
	rep, err := Run(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	numRegions := 0
	for _, r := range sc.SinkRegion {
		if r+1 > numRegions {
			numRegions = r + 1
		}
	}
	for _, er := range rep.Epochs {
		if len(er.Regions) != numRegions {
			t.Fatalf("epoch %d: %d region rows, want %d", er.Epoch, len(er.Regions), numRegions)
		}
		active, met := 0, 0
		for i, ra := range er.Regions {
			if ra.Region != i {
				t.Fatalf("epoch %d: region row %d labeled %d", er.Epoch, i, ra.Region)
			}
			active += ra.Active
			met += ra.Met
		}
		if active != er.ActiveSinks {
			t.Fatalf("epoch %d: region rows cover %d active sinks, epoch has %d", er.Epoch, active, er.ActiveSinks)
		}
		if met != er.MetDemand {
			t.Fatalf("epoch %d: region rows cover %d met units, epoch has %d", er.Epoch, met, er.MetDemand)
		}
	}
	last := rep.Epochs[len(rep.Epochs)-1]
	for _, ra := range last.Regions {
		got := reg.Gauge(obs.MRegionAvailability, obs.L("region", itoa(ra.Region))).Value()
		if got != ra.WindowFrac {
			t.Fatalf("region %d gauge %v != last epoch window frac %v", ra.Region, got, ra.WindowFrac)
		}
	}
}

// TestPerStreamSLOBreakdown locks the per-stream availability rows on a
// multi-stream scenario: every epoch reports one row per stream, the rows
// partition the active demand units (a unit belongs to exactly one
// commodity), and the registry's labeled stream gauges mirror the last
// epoch's fractions.
func TestPerStreamSLOBreakdown(t *testing.T) {
	sc, err := Make("streamwave", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	numStreams := 0
	for _, k := range sc.Base.Commodity {
		if k+1 > numStreams {
			numStreams = k + 1
		}
	}
	if numStreams < 2 {
		t.Fatalf("scenario has %d streams; the breakdown needs several", numStreams)
	}
	reg := obs.NewRegistry()
	cfg := Config{Policy: WarmStickyPolicy(), Obs: &obs.Observer{Reg: reg}}
	rep, err := Run(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, er := range rep.Epochs {
		if len(er.Streams) != numStreams {
			t.Fatalf("epoch %d: %d stream rows, want %d", er.Epoch, len(er.Streams), numStreams)
		}
		active, met := 0, 0
		for k, sa := range er.Streams {
			if sa.Stream != k {
				t.Fatalf("epoch %d: stream row %d labeled %d", er.Epoch, k, sa.Stream)
			}
			active += sa.Active
			met += sa.Met
		}
		if active != er.ActiveSinks {
			t.Fatalf("epoch %d: stream rows cover %d active sinks, epoch has %d", er.Epoch, active, er.ActiveSinks)
		}
		if met != er.MetDemand {
			t.Fatalf("epoch %d: stream rows cover %d met units, epoch has %d", er.Epoch, met, er.MetDemand)
		}
	}
	last := rep.Epochs[len(rep.Epochs)-1]
	for _, sa := range last.Streams {
		got := reg.Gauge(obs.MStreamAvailability, obs.L("stream", itoa(sa.Stream))).Value()
		if got != sa.Frac {
			t.Fatalf("stream %d gauge %v != last epoch frac %v", sa.Stream, got, sa.Frac)
		}
	}
}

// itoa avoids importing strconv for single-digit region labels in tests.
func itoa(n int) string {
	if n < 0 || n > 9 {
		panic("test helper handles single digits only")
	}
	return string(rune('0' + n))
}
