package live

// The windowed availability SLO tracker. Run kept this logic inline until
// the daemon needed the identical bookkeeping over a continuously ingested
// timeline (no fixed horizon, epochs arriving on a cadence), so it now
// lives here as an explicit state machine: feed it one epoch's audit
// verdicts, get back the global trailing-window availability plus the
// per-region and per-stream breakdowns the /slo endpoint serves.

// StreamAvail is one stream's availability row of an epoch: how many of the
// stream's active subscriptions met their exact reliability threshold, and
// the stream's own trailing-window availability (the region rule applied
// stream-locally). Where RegionAvail answers "where did the outage land",
// this answers "which channel is degraded" — the paper's commodities are
// live streams, and a reflector failure typically takes out one stream's
// serving arcs across every region at once.
type StreamAvail struct {
	Stream int     `json:"stream"`
	Active int     `json:"active_sinks"`
	Met    int     `json:"met"`
	Frac   float64 `json:"frac"`
	// WindowFrac is the fraction of the trailing SLOWindow epochs in which
	// this stream alone met the availability target.
	WindowFrac float64 `json:"window_frac"`
}

// SLOEpoch is one epoch's verdict from the tracker.
type SLOEpoch struct {
	// Ok reports whether the epoch met the availability target; WindowFrac
	// the fraction of the trailing window's epochs that did.
	Ok         bool
	WindowFrac float64
	// Regions / Streams are the per-region and per-stream breakdowns
	// (Regions nil without a region map; Streams nil without a commodity
	// map).
	Regions []RegionAvail
	Streams []StreamAvail
}

// SLOTracker maintains the sliding-window availability SLO of §1.3's
// monitoring loop: an epoch is available when at least Target of its active
// demand units meet their exact reliability threshold, and the tracker
// reports the fraction of available epochs over a trailing window —
// globally, per topology region, and per stream. One tracker serves one
// timeline; it is not safe for concurrent Observe calls.
type SLOTracker struct {
	// Window / Target are fixed at construction (defaults 8 and 0.5 — see
	// Config.SLOWindow for why the default target is deliberately low).
	Window int
	Target float64

	epoch     int
	okHist    []bool
	okCount   int
	breaches  int
	minWindow float64

	sinkRegion []int
	numRegions int
	regHist    [][]bool
	regOK      []int

	commodity  []int
	numStreams int
	strHist    [][]bool
	strOK      []int
}

// NewSLOTracker builds a tracker. sinkRegion maps each demand unit to its
// topology region (nil disables the per-region breakdown); commodity maps
// each demand unit to its stream (nil disables the per-stream breakdown —
// pass the instance's Commodity slice).
func NewSLOTracker(window int, target float64, sinkRegion, commodity []int) *SLOTracker {
	if window <= 0 {
		window = 8
	}
	if target <= 0 {
		target = 0.5
	}
	t := &SLOTracker{Window: window, Target: target, minWindow: 1,
		sinkRegion: sinkRegion, commodity: commodity}
	for _, r := range sinkRegion {
		if r+1 > t.numRegions {
			t.numRegions = r + 1
		}
	}
	t.regHist = make([][]bool, t.numRegions)
	t.regOK = make([]int, t.numRegions)
	for _, k := range commodity {
		if k+1 > t.numStreams {
			t.numStreams = k + 1
		}
	}
	t.strHist = make([][]bool, t.numStreams)
	t.strOK = make([]int, t.numStreams)
	return t
}

// Epochs returns how many epochs the tracker has observed.
func (t *SLOTracker) Epochs() int { return t.epoch }

// Breaches returns how many observed epochs missed the target.
func (t *SLOTracker) Breaches() int { return t.breaches }

// MinWindowFrac returns the worst trailing-window availability seen (1
// before any epoch).
func (t *SLOTracker) MinWindowFrac() float64 { return t.minWindow }

// slice is one breakdown dimension's per-epoch update: shared by the
// region and stream axes, which differ only in their unit→bucket map.
func (t *SLOTracker) slice(keyOf []int, n int, hist [][]bool, okCount []int,
	thresholds []float64, met []bool, window int) (active, metN []int) {
	active = make([]int, n)
	metN = make([]int, n)
	for j, key := range keyOf {
		if thresholds[j] > 0 {
			active[key]++
			if met[j] {
				metN[key]++
			}
		}
	}
	for key := 0; key < n; key++ {
		ok := active[key] == 0 ||
			float64(metN[key]) >= t.Target*float64(active[key])-1e-9
		if ok {
			okCount[key]++
		}
		hist[key] = append(hist[key], ok)
		if drop := t.epoch - t.Window; drop >= 0 && hist[key][drop] {
			okCount[key]--
		}
	}
	return active, metN
}

// Observe feeds one epoch's audit outcome: the per-unit thresholds after
// the epoch's events (a unit is active when positive) and the audit's
// per-unit met flags. Returns the epoch's SLO verdict with breakdowns.
func (t *SLOTracker) Observe(thresholds []float64, met []bool) SLOEpoch {
	activeN, metN := 0, 0
	for j, thr := range thresholds {
		if thr > 0 {
			activeN++
			if met[j] {
				metN++
			}
		}
	}
	out := SLOEpoch{}
	out.Ok = activeN == 0 || float64(metN) >= t.Target*float64(activeN)-1e-9
	if out.Ok {
		t.okCount++
	} else {
		t.breaches++
	}
	t.okHist = append(t.okHist, out.Ok)
	if drop := t.epoch - t.Window; drop >= 0 && t.okHist[drop] {
		t.okCount--
	}
	window := t.Window
	if t.epoch+1 < window {
		window = t.epoch + 1
	}
	out.WindowFrac = float64(t.okCount) / float64(window)
	if out.WindowFrac < t.minWindow {
		t.minWindow = out.WindowFrac
	}

	if t.numRegions > 0 {
		active, metR := t.slice(t.sinkRegion, t.numRegions, t.regHist, t.regOK, thresholds, met, window)
		for reg := 0; reg < t.numRegions; reg++ {
			frac := 1.0
			if active[reg] > 0 {
				frac = float64(metR[reg]) / float64(active[reg])
			}
			out.Regions = append(out.Regions, RegionAvail{
				Region:     reg,
				Active:     active[reg],
				Met:        metR[reg],
				Frac:       frac,
				WindowFrac: float64(t.regOK[reg]) / float64(window),
			})
		}
	}
	if t.numStreams > 0 {
		active, metS := t.slice(t.commodity, t.numStreams, t.strHist, t.strOK, thresholds, met, window)
		for k := 0; k < t.numStreams; k++ {
			frac := 1.0
			if active[k] > 0 {
				frac = float64(metS[k]) / float64(active[k])
			}
			out.Streams = append(out.Streams, StreamAvail{
				Stream:     k,
				Active:     active[k],
				Met:        metS[k],
				Frac:       frac,
				WindowFrac: float64(t.strOK[k]) / float64(window),
			})
		}
	}
	t.epoch++
	return out
}
