package live

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// TestIncrementalMatchesRebuildTimeline is the engine-level golden lock for
// the incremental LP rebuild: a full timeline run with lp-patch enabled
// must produce a report identical — costs, pivots, churn, audits, SLO, sim
// — to one that rebuilds the LP every epoch. Only wall clocks and the patch
// counters themselves may differ.
func TestIncrementalMatchesRebuildTimeline(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"monolithic", 0},
		{"sharded-3", 3},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(noIncr bool) *RunReport {
				t.Helper()
				cfg := Config{Policy: WarmStickyPolicy(), NoIncremental: noIncr, SimPackets: 300, SimEvery: 4}
				cfg.Solver.Shards = tc.shards
				// Pin the pre-persistence install behavior: only the
				// incremental arm keeps lp.Problems alive across epochs, so
				// only it could resume persisted factorizations — the solver
				// trajectories would diverge by ulps for reasons unrelated
				// to what this test locks (the patched LP being identical to
				// a rebuilt one). Persistence equivalence has its own locks
				// in internal/lp and equiv_test.go.
				cfg.Solver.RefactorOnInstall = true
				rep, err := Run(FlashCrowd(1, 12), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			incr, rebuild := run(false), run(true)
			if incr.TotalLPRebuilds == 0 || incr.Epochs[0].LPRebuilds == 0 {
				t.Fatal("incremental run reported no epoch-0 build")
			}
			if incr.TotalLPPatches == 0 {
				t.Fatal("incremental run patched nothing across a churning timeline")
			}
			for _, er := range incr.Epochs[1:] {
				if tc.shards == 0 && er.LPRebuilds != 0 {
					t.Fatalf("epoch %d fell back to a full rebuild", er.Epoch)
				}
			}
			if rebuild.TotalLPPatches != 0 || rebuild.TotalLPRebuilds != 0 {
				t.Fatal("rebuild run reported patch activity")
			}
			scrubWall(incr)
			scrubWall(rebuild)
			scrubPatches(incr)
			if !reflect.DeepEqual(incr, rebuild) {
				t.Fatalf("incremental and rebuild timelines diverged:\nincr:    %+v\nrebuild: %+v", incr, rebuild)
			}
		})
	}
}

// TestScenarioRecordReplayRoundTrip locks the -record/-replay contract: a
// serialized scenario must deserialize to an equivalent one, and replaying
// it must reproduce the original run report exactly (wall clocks aside).
func TestScenarioRecordReplayRoundTrip(t *testing.T) {
	sc := FlashCrowd(9, 14)
	var buf bytes.Buffer
	if err := WriteScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenario(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != sc.Name || back.Seed != sc.Seed || back.Epochs != sc.Epochs {
		t.Fatalf("scenario header changed: %s/%d/%d", back.Name, back.Seed, back.Epochs)
	}
	if !reflect.DeepEqual(back.Events, sc.Events) {
		t.Fatal("event schedule changed across the round trip")
	}
	if !reflect.DeepEqual(back.Base, sc.Base) {
		t.Fatal("base instance changed across the round trip")
	}
	orig, err := Run(sc, Config{Policy: WarmStickyPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Run(back, Config{Policy: WarmStickyPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	scrubWall(orig)
	scrubWall(replayed)
	if !reflect.DeepEqual(orig, replayed) {
		t.Fatal("replaying a recorded scenario produced a different report")
	}
}

// TestScenarioReadRejectsInvalid: a trace whose deltas do not fit its base
// instance must fail at load time.
func TestScenarioReadRejectsInvalid(t *testing.T) {
	sc := FlashCrowd(2, 8)
	sc.Events[0].Delta.SetThreshold[0].Sink = 99999
	var buf bytes.Buffer
	if err := WriteScenario(&buf, sc); err == nil {
		t.Fatal("WriteScenario accepted an invalid scenario")
	}
	// Bypass the write-side validation to exercise the read side.
	sc2 := FlashCrowd(2, 8)
	var buf2 bytes.Buffer
	if err := WriteScenario(&buf2, sc2); err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.Replace(buf2.Bytes(), []byte(`"epochs": 8`), []byte(`"epochs": 0`), 1)
	if !bytes.Equal(corrupted, buf2.Bytes()) {
		if _, err := ReadScenario(bytes.NewReader(corrupted)); err == nil {
			t.Fatal("ReadScenario accepted a corrupted horizon")
		}
	}
}

// TestSLOWindowTracking recomputes the sliding-window availability from the
// per-epoch SLOOk bits and checks the engine's incremental bookkeeping
// against it, including the summary fields.
func TestSLOWindowTracking(t *testing.T) {
	cfg := Config{Policy: WarmStickyPolicy(), SLOWindow: 4, SLOTarget: 0.95}
	rep, err := Run(RollingISPOutage(3, 16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLOWindow != 4 || rep.SLOTarget != 0.95 {
		t.Fatalf("SLO config not echoed: window=%d target=%g", rep.SLOWindow, rep.SLOTarget)
	}
	breaches := 0
	minFrac := 1.0
	for e, er := range rep.Epochs {
		wantOk := er.ActiveSinks == 0 || float64(er.MetDemand) >= 0.95*float64(er.ActiveSinks)-1e-9
		if er.SLOOk != wantOk {
			t.Fatalf("epoch %d: SLOOk=%v, want %v (met %d of %d)", e, er.SLOOk, wantOk, er.MetDemand, er.ActiveSinks)
		}
		if !er.SLOOk {
			breaches++
		}
		lo := e - 3
		if lo < 0 {
			lo = 0
		}
		ok := 0
		for _, w := range rep.Epochs[lo : e+1] {
			if w.SLOOk {
				ok++
			}
		}
		want := float64(ok) / float64(e+1-lo)
		if math.Abs(er.SLOWindowFrac-want) > 1e-12 {
			t.Fatalf("epoch %d: window frac %g, want %g", e, er.SLOWindowFrac, want)
		}
		if want < minFrac {
			minFrac = want
		}
	}
	if rep.SLOBreaches != breaches {
		t.Fatalf("SLOBreaches = %d, want %d", rep.SLOBreaches, breaches)
	}
	if math.Abs(rep.MinSLOWindow-minFrac) > 1e-12 {
		t.Fatalf("MinSLOWindow = %g, want %g", rep.MinSLOWindow, minFrac)
	}
}
