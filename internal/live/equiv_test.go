package live

// Timeline-level equivalence locks for the persistent basis factorization
// and the devex pricing default. Both features change the solver's pivot
// trajectory only — every deployed design, audited cost, and churn number
// across the whole scenario library must be unchanged. (The incr-vs-rebuild
// golden tests pin RefactorOnInstall in both arms to isolate the Patcher's
// model equivalence; these tests are the complementary lock on the
// persistence path itself.)

import (
	"testing"

	"repro/internal/lp"
)

// runLibrary runs every registered scenario for a short horizon under the
// warm+sticky policy with the given solver tweak and returns the reports.
func runLibrary(t *testing.T, tweak func(*Config)) map[string]*RunReport {
	t.Helper()
	out := make(map[string]*RunReport)
	for _, name := range Names() {
		sc, err := Make(name, 7, 12)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Policy: WarmStickyPolicy()}
		if tweak != nil {
			tweak(&cfg)
		}
		rep, err := Run(sc, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = rep
	}
	return out
}

// sameDeployments requires two timelines to agree exactly on everything the
// operator can observe — per-epoch deployed cost, churn, audit verdicts —
// leaving only solver telemetry (pivots, factorization counters, wall) free.
func sameDeployments(t *testing.T, name string, a, b *RunReport) {
	t.Helper()
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("%s: epoch counts differ: %d vs %d", name, len(a.Epochs), len(b.Epochs))
	}
	for e := range a.Epochs {
		ea, eb := a.Epochs[e], b.Epochs[e]
		if ea.TrueCost != eb.TrueCost {
			t.Fatalf("%s epoch %d: deployed cost %.17g != %.17g", name, e, ea.TrueCost, eb.TrueCost)
		}
		if ea.ArcChurn != eb.ArcChurn || ea.ReflectorChurn != eb.ReflectorChurn {
			t.Fatalf("%s epoch %d: churn (%d,%d) != (%d,%d)",
				name, e, ea.ArcChurn, ea.ReflectorChurn, eb.ArcChurn, eb.ReflectorChurn)
		}
		if ea.AuditOK != eb.AuditOK || ea.MetDemand != eb.MetDemand {
			t.Fatalf("%s epoch %d: audit (%v,%d) != (%v,%d)",
				name, e, ea.AuditOK, ea.MetDemand, eb.AuditOK, eb.MetDemand)
		}
	}
	if !a.AllAuditOK || !b.AllAuditOK {
		t.Fatalf("%s: audits failed: %v vs %v", name, a.AllAuditOK, b.AllAuditOK)
	}
}

// TestPersistedFactorizationTimelineEquivalence runs the scenario library
// with the persistent factorization (the default) and with refactorize-on-
// install pinned: the deployed timelines must be identical, and persistence
// must actually fire — warm starts adopting carried eta files (FT updates)
// and strictly fewer from-scratch refactorizations across the library.
func TestPersistedFactorizationTimelineEquivalence(t *testing.T) {
	persist := runLibrary(t, nil)
	pinned := runLibrary(t, func(cfg *Config) { cfg.Solver.RefactorOnInstall = true })
	ft, refacPersist, refacPinned := 0, 0, 0
	for name, a := range persist {
		b := pinned[name]
		sameDeployments(t, name, a, b)
		if b.TotalFTUpdates != 0 {
			t.Fatalf("%s: RefactorOnInstall run adopted %d factorizations", name, b.TotalFTUpdates)
		}
		ft += a.TotalFTUpdates
		refacPersist += a.TotalRefactorizations
		refacPinned += b.TotalRefactorizations
	}
	t.Logf("library totals: FT updates %d, refactorizations %d (persisted) vs %d (pinned)",
		ft, refacPersist, refacPinned)
	if ft == 0 {
		t.Fatal("no warm start anywhere in the library adopted a persisted factorization")
	}
	if refacPersist >= refacPinned {
		t.Fatalf("persistence saved no refactorizations: %d vs %d", refacPersist, refacPinned)
	}
}

// TestPricingAuditParityAcrossScenarios is the devex≡Dantzig golden lock on
// the scenario library: the default devex pricing must deploy exactly the
// designs Dantzig pricing deploys — same costs, same churn, same audit
// verdicts, every epoch of every scenario — while spending fewer total
// pivots across the library.
func TestPricingAuditParityAcrossScenarios(t *testing.T) {
	devex := runLibrary(t, nil)
	dantzig := runLibrary(t, func(cfg *Config) { cfg.Solver.Pricing = lp.DantzigPricing })
	pivDevex, pivDantzig := 0, 0
	for name, a := range devex {
		b := dantzig[name]
		sameDeployments(t, name, a, b)
		pivDevex += a.TotalPivots
		pivDantzig += b.TotalPivots
	}
	t.Logf("library pivots: devex %d, dantzig %d", pivDevex, pivDantzig)
	if pivDevex >= pivDantzig {
		t.Fatalf("devex spent more pivots than Dantzig across the library: %d vs %d", pivDevex, pivDantzig)
	}
}
