// Package live is the event-driven churn engine: it advances an overlay
// instance through a timed scenario — sink join/leave waves, reflector
// failures, source-uplink degradation, cost repricing, loss drift, flash
// crowds, rolling ISP outages — re-provisioning the network each epoch the
// way §1.3 of the paper describes the monitoring loop ("costs, losses and
// demands are re-measured and the network is re-provisioned").
//
// Each epoch applies its events as incremental netmodel.Deltas to one
// evolving instance, re-solves through a core.Session (which carries the
// deployed design for stickiness biasing and the simplex basis for warm
// starts), certifies the epoch's design against the paper's audit, and
// records an EpochReport. Policies differ only in stickiness and warm-start
// use, so running the same scenario under two policies quantifies exactly
// what incremental re-optimization buys over cold re-solves.
//
// Everything is deterministic in the scenario seed: event schedules, LP
// pivots, rounding, and the optional packet simulation. Only wall-clock
// fields vary between runs.
package live

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Event is one timed change of a scenario: at the start of Epoch, Delta is
// applied to the evolving instance (before that epoch's re-solve).
type Event struct {
	Epoch int            `json:"epoch"`
	Delta netmodel.Delta `json:"delta"`
}

// Scenario is a timed workload: a base instance, a horizon, and a sorted
// event schedule. Constructors in this package (FlashCrowd, DiurnalWave,
// RollingISPOutage, CorrelatedBackboneFailure, GradualRepricing) build
// scenarios on gen's clustered topology from a seed.
type Scenario struct {
	Name   string             `json:"name"`
	Seed   uint64             `json:"seed"`
	Epochs int                `json:"epochs"`
	Events []Event            `json:"events"`
	Base   *netmodel.Instance `json:"base"`
	// SinkRegion maps each demand unit to its topology region (gen.Layout.
	// SinkRegion); the library constructors fill it. It drives the per-region
	// availability breakdown of EpochReport.Regions and the /slo endpoint.
	// Nil (e.g. hand-built or pre-existing recorded scenarios) disables the
	// breakdown — everything else is unaffected.
	SinkRegion []int `json:"sink_region,omitempty"`
}

// Validate checks the scenario's shape and every event's delta against the
// base instance (deltas never resize, so base-shape validation is exact).
func (sc *Scenario) Validate() error {
	if sc.Base == nil {
		return fmt.Errorf("live: scenario %q has no base instance", sc.Name)
	}
	if err := sc.Base.Validate(); err != nil {
		return fmt.Errorf("live: scenario %q base: %w", sc.Name, err)
	}
	if sc.Epochs <= 0 {
		return fmt.Errorf("live: scenario %q has non-positive horizon %d", sc.Name, sc.Epochs)
	}
	if sc.SinkRegion != nil && len(sc.SinkRegion) != sc.Base.NumSinks {
		return fmt.Errorf("live: scenario %q maps %d sink regions over %d sinks",
			sc.Name, len(sc.SinkRegion), sc.Base.NumSinks)
	}
	for _, ev := range sc.Events {
		if ev.Epoch < 0 || ev.Epoch >= sc.Epochs {
			return fmt.Errorf("live: scenario %q: event %q at epoch %d outside [0,%d)",
				sc.Name, ev.Delta.Note, ev.Epoch, sc.Epochs)
		}
		if err := ev.Delta.Validate(sc.Base); err != nil {
			return fmt.Errorf("live: scenario %q: %w", sc.Name, err)
		}
	}
	return nil
}

// Policy is a re-provisioning strategy: how strongly to bias toward the
// deployed design and whether to warm-start the simplex from the previous
// epoch's basis.
type Policy struct {
	Name       string  `json:"name"`
	Stickiness float64 `json:"stickiness"`
	WarmStart  bool    `json:"warm_start"`
}

func (p Policy) validate() error {
	if p.Stickiness < 0 || p.Stickiness >= 1 {
		return fmt.Errorf("live: policy %q stickiness %g outside [0,1)", p.Name, p.Stickiness)
	}
	return nil
}

// ColdPolicy re-solves every epoch from scratch with no deployment bias —
// the static-snapshot baseline.
func ColdPolicy() Policy { return Policy{Name: "cold"} }

// WarmStickyPolicy warm-starts each epoch from the prior basis and biases
// toward the deployed design — the incremental operations policy.
func WarmStickyPolicy() Policy {
	return Policy{Name: "warm+sticky", Stickiness: 0.4, WarmStart: true}
}

// Config parameterizes a Run.
type Config struct {
	// Solver configures each epoch's solve (DefaultOptions(seed) if zero).
	Solver core.Options
	// Policy selects the re-provisioning strategy.
	Policy Policy
	// SimPackets > 0 additionally plays that many packets through each
	// simulated epoch's design (internal/sim) and records delivered
	// quality next to the analytic audit.
	SimPackets int
	// SimEvery simulates only every n-th epoch (default 1 = all) — the
	// packet sim costs far more than the re-solve at scale.
	SimEvery int
	// NoIncremental disables the incremental LP rebuild. By default the
	// engine routes every epoch's deltas through a persistent
	// lpmodel.Patcher (core.Options.IncrementalLP), so only the LP cells
	// churn touched are rewritten — the lp-patch stage — instead of
	// rebuilding the model from scratch each epoch. The patched LP is
	// bit-identical to a fresh build (golden-tested), so this knob only
	// exists for baselines and benchmarks.
	NoIncremental bool
	// Obs, when non-nil, receives the run's observability signals: the
	// canonical metric families (epoch gauges and counters, churn, SLO,
	// epoch-wall histogram — plus everything the solver stack records
	// through the same observer) and one trace span per epoch with the core
	// stages nested under it. A nil Obs leaves the run byte-identical.
	Obs *obs.Observer
	// OnEpoch, when non-nil, is called after each epoch's report is final
	// (metrics already fed) — the hook the CLI uses to refresh its /healthz
	// and /slo state and to pace the timeline.
	OnEpoch func(er EpochReport)
	// SLOWindow is the sliding window (in epochs) of the availability SLO
	// tracker; default 8. SLOTarget is the fraction of active sinks that
	// must meet their exact reliability threshold for an epoch to count as
	// available; default 0.5. The default is deliberately below the ~60%
	// met-demand a repair-less solve delivers in steady state (the paper
	// guarantees W/4 weight, not full demand), so breaches flag genuine
	// incidents — outages, flash-crowd onsets — rather than firing every
	// epoch; operators running RepairCoverage-style solvers should raise
	// it toward 1.
	SLOWindow int
	SLOTarget float64
}

// EpochReport records one epoch of a run. All fields except WallNS are
// deterministic in the scenario seed and policy.
type EpochReport struct {
	Epoch int `json:"epoch"`
	// Events names the deltas applied this epoch; Edits counts their
	// atomic changes.
	Events []string `json:"events,omitempty"`
	Edits  int      `json:"edits"`
	// ActiveSinks counts demand units (subscriptions) with positive
	// thresholds after the epoch's events; ActiveViewers counts the real
	// sinks behind them — a 3-stream viewer is one viewer, three active
	// sinks. Equal on single-stream instances.
	ActiveSinks   int `json:"active_sinks"`
	ActiveViewers int `json:"active_viewers"`
	// TrueCost is the deployed design's cost on the true (unbiased)
	// instance; LPCost the epoch LP optimum (of the biased LP under a
	// sticky policy — informational).
	TrueCost float64 `json:"true_cost"`
	LPCost   float64 `json:"lp_cost"`
	// Pivots counts simplex iterations this epoch; Retries the audit
	// re-randomizations.
	Pivots  int `json:"pivots"`
	Retries int `json:"retries"`
	// ArcChurn / ReflectorChurn count changes against the previous
	// epoch's deployment (service-arc flips / build flips). StreamChurn
	// counts subscriptions whose serving set changed, and ViewerChurn is
	// the stream-level viewer accounting: each real sink contributes the
	// FRACTION of its streams that moved, so a one-stream switch on a
	// 3-stream sink reports 1/3 of a viewer, where the paper's copy-split
	// view would have charged a full one.
	ArcChurn       int     `json:"arc_churn"`
	ReflectorChurn int     `json:"reflector_churn"`
	StreamChurn    int     `json:"stream_churn"`
	ViewerChurn    float64 `json:"viewer_churn"`
	// BuiltReflectors counts reflectors in service this epoch.
	BuiltReflectors int `json:"built_reflectors"`
	// Audit summary of the epoch's design on the true instance.
	WeightFactor float64 `json:"weight_factor"`
	FanoutFactor float64 `json:"fanout_factor"`
	MetDemand    int     `json:"met_demand"`
	AuditOK      bool    `json:"audit_ok"`
	WallNS       int64   `json:"wall_ns"`
	// StageWallNS breaks WallNS down by pipeline stage (lp-build, lp-patch,
	// lp-solve, ... — or the shard-* stages of a sharded run). Wall clock,
	// so nondeterministic like WallNS.
	StageWallNS map[string]int64 `json:"stage_wall_ns,omitempty"`
	// LPPatches counts the LP cells the incremental rebuild rewrote this
	// epoch (summed over shards on the sharded path); LPRebuilds counts
	// full LP builds it fell back to (epoch 0 is always a build). Both 0
	// when Config.NoIncremental.
	LPPatches  int `json:"lp_patches"`
	LPRebuilds int `json:"lp_rebuilds"`
	// Solver factorization telemetry (summed over shards on the sharded
	// path): Refactorizations counts from-scratch basis factorizations,
	// FTUpdates warm starts that resumed a persisted factorization instead,
	// DevexResets devex reference-framework resets, and ExtractionsSkipped
	// the shards that reused their cached sub-instance without extraction
	// (always 0 on the monolithic path).
	Refactorizations   int `json:"refactorizations"`
	FTUpdates          int `json:"ft_updates"`
	DevexResets        int `json:"devex_resets"`
	ExtractionsSkipped int `json:"extractions_skipped"`
	// Hierarchical-exchange telemetry (zero unless the epoch ran with
	// Solver.ShardLevels ≥ 2): dual-price clearing rounds, distinct
	// reflectors re-cleared, and the final relative bid/ask gap.
	ExchangeRounds int     `json:"exchange_rounds,omitempty"`
	ExchangeGap    float64 `json:"exchange_gap,omitempty"`
	// SLOOk reports whether this epoch met the availability target
	// (MetDemand ≥ SLOTarget × ActiveSinks); SLOWindowFrac is the fraction
	// of the trailing SLOWindow epochs (including this one) that did.
	SLOOk         bool    `json:"slo_ok"`
	SLOWindowFrac float64 `json:"slo_window_frac"`
	// Regions breaks availability down by topology region (present only
	// when the scenario carries a SinkRegion map). Deterministic like the
	// audit it derives from.
	Regions []RegionAvail `json:"regions,omitempty"`
	// Streams breaks availability down by stream (commodity) — present on
	// every multi-commodity instance, no scenario map needed.
	Streams []StreamAvail `json:"streams,omitempty"`
	// Packet-sim quality: meaningful only when SimRan is true (the epoch
	// was simulated). The numeric fields are always serialized so a
	// measured zero is distinguishable from "not simulated".
	SimRan          bool    `json:"sim_ran"`
	SimMeanPostLoss float64 `json:"sim_mean_post_loss"`
	SimMeetCount    int     `json:"sim_meet_count"`
}

// RunReport aggregates a full timeline under one policy.
type RunReport struct {
	Scenario string        `json:"scenario"`
	Policy   Policy        `json:"policy"`
	Seed     uint64        `json:"seed"`
	Epochs   []EpochReport `json:"epochs"`
	// Totals across epochs.
	TotalPivots         int     `json:"total_pivots"`
	TotalArcChurn       int     `json:"total_arc_churn"`
	TotalReflectorChurn int     `json:"total_reflector_churn"`
	TotalStreamChurn    int     `json:"total_stream_churn"`
	TotalViewerChurn    float64 `json:"total_viewer_churn"`
	TotalTrueCost       float64 `json:"total_true_cost"`
	TotalWallNS         int64   `json:"total_wall_ns"`
	// AllAuditOK reports whether every epoch met the paper's guarantee.
	AllAuditOK bool `json:"all_audit_ok"`
	// Incremental LP rebuild totals (zero when Config.NoIncremental).
	TotalLPPatches  int `json:"total_lp_patches"`
	TotalLPRebuilds int `json:"total_lp_rebuilds"`
	// Solver factorization totals across epochs.
	TotalRefactorizations   int `json:"total_refactorizations"`
	TotalFTUpdates          int `json:"total_ft_updates"`
	TotalDevexResets        int `json:"total_devex_resets"`
	TotalExtractionsSkipped int `json:"total_extractions_skipped"`
	TotalExchangeRounds     int `json:"total_exchange_rounds"`
	// Availability SLO summary: the window/target the tracker ran with,
	// the number of epochs missing the target, and the worst trailing-
	// window availability seen over the timeline.
	SLOWindow    int     `json:"slo_window"`
	SLOTarget    float64 `json:"slo_target"`
	SLOBreaches  int     `json:"slo_breaches"`
	MinSLOWindow float64 `json:"min_slo_window"`
	// EpochWallQuantiles summarizes the per-epoch solve wall across the
	// timeline, and StageWallQuantiles breaks the same summary down by
	// pipeline stage. Wall-clock derived, so nondeterministic like WallNS
	// (determinism and replay comparisons scrub them).
	EpochWallQuantiles WallQuantiles            `json:"epoch_wall_quantiles"`
	StageWallQuantiles map[string]WallQuantiles `json:"stage_wall_quantiles,omitempty"`
}

// RegionAvail is one region's availability row of an epoch: how many of its
// active demand units met their exact reliability threshold, and the
// region's own trailing-window availability (the same SLOWindow/SLOTarget
// rule applied region-locally).
type RegionAvail struct {
	Region int     `json:"region"`
	Active int     `json:"active_sinks"`
	Met    int     `json:"met"`
	Frac   float64 `json:"frac"`
	// WindowFrac is the fraction of the trailing SLOWindow epochs in which
	// this region alone met the availability target.
	WindowFrac float64 `json:"window_frac"`
}

// WallQuantiles are order statistics of a wall-time sample (nanoseconds,
// matching the WallNS fields they summarize).
type WallQuantiles struct {
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
}

// wallQuantiles summarizes ns samples via the shared stats helper.
func wallQuantiles(ns []float64) WallQuantiles {
	qs := stats.Quantiles(ns, 0.5, 0.95, 0.99)
	return WallQuantiles{P50NS: int64(qs[0]), P95NS: int64(qs[1]), P99NS: int64(qs[2])}
}

// LPConstructionNS sums the run's model-construction wall across epochs:
// the lp-build stages (full builds) plus the lp-patch stages (in-place
// delta patches). It is the number the incremental-rebuild benchmarks and
// the ≥3x acceptance compare between policies.
func (r *RunReport) LPConstructionNS() int64 {
	var total int64
	for _, er := range r.Epochs {
		total += er.StageWallNS["lp-build"] + er.StageWallNS["lp-patch"]
	}
	return total
}

// Run advances the scenario epoch by epoch under one policy.
func Run(sc *Scenario, cfg Config) (*RunReport, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Policy.validate(); err != nil {
		return nil, err
	}
	if cfg.Solver.Seed == 0 {
		cfg.Solver.Seed = sc.Seed
	}
	if cfg.SimEvery <= 0 {
		cfg.SimEvery = 1
	}
	cfg.Solver.IncrementalLP = !cfg.NoIncremental
	if cfg.SLOWindow <= 0 {
		cfg.SLOWindow = 8
	}
	if cfg.SLOTarget <= 0 {
		cfg.SLOTarget = 0.5
	}
	obs.Canonical(cfg.Obs.Registry())
	byEpoch := make(map[int][]Event, len(sc.Events))
	for _, ev := range sc.Events {
		byEpoch[ev.Epoch] = append(byEpoch[ev.Epoch], ev)
	}

	in := sc.Base.Clone()
	sess := core.NewSession(cfg.Solver, cfg.Policy.Stickiness, cfg.Policy.WarmStart)
	rep := &RunReport{
		Scenario: sc.Name, Policy: cfg.Policy, Seed: sc.Seed, AllAuditOK: true,
		SLOWindow: cfg.SLOWindow, SLOTarget: cfg.SLOTarget, MinSLOWindow: 1,
	}
	// The SLO state machine: global trailing window plus the per-region
	// (scenario SinkRegion map) and per-stream (instance Commodity map)
	// breakdowns. The daemon reuses the same tracker over its ingested
	// timeline, so the engine and the service can never disagree on what
	// "available" means.
	slo := NewSLOTracker(cfg.SLOWindow, cfg.SLOTarget, sc.SinkRegion, in.Commodity)

	for e := 0; e < sc.Epochs; e++ {
		er := EpochReport{Epoch: e}
		for _, ev := range byEpoch[e] {
			ds, err := ev.Delta.Apply(in)
			if err != nil {
				return nil, fmt.Errorf("live: epoch %d: %w", e, err)
			}
			sess.Observe(ds)
			er.Events = append(er.Events, ev.Delta.Note)
			er.Edits += ev.Delta.Size()
		}
		for _, phi := range in.Threshold {
			if phi > 0 {
				er.ActiveSinks++
			}
		}
		er.ActiveViewers = in.ActiveViewers()
		// One trace span per epoch; the session observes through it so the
		// core stage spans nest underneath.
		eo, esp := cfg.Obs.StartSpan("epoch",
			obs.A("epoch", e), obs.A("events", len(er.Events)), obs.A("edits", er.Edits))
		sess.SetObserver(eo)
		start := time.Now()
		res, err := sess.Step(in)
		esp.End()
		if err != nil {
			return nil, fmt.Errorf("live: epoch %d solve: %w", e, err)
		}
		er.WallNS = time.Since(start).Nanoseconds()
		er.TrueCost = res.Audit.Cost
		er.LPCost = res.LPCost
		// Timings.LPPivots equals Frac.Iterations for monolithic epochs and
		// the all-shards/all-rounds pivot sum for sharded ones (Frac is nil
		// on the sharded path).
		er.Pivots = res.Timings.LPPivots
		er.Retries = res.Retries
		er.ArcChurn = res.ArcChurn
		er.ReflectorChurn = res.ReflectorChurn
		er.StreamChurn = res.StreamChurn
		er.ViewerChurn = res.ViewerChurn
		for _, b := range res.Design.Build {
			if b {
				er.BuiltReflectors++
			}
		}
		er.WeightFactor = res.Audit.WeightFactor
		er.FanoutFactor = res.Audit.FanoutFactor
		er.MetDemand = res.Audit.MetDemand
		er.AuditOK = res.AuditOK()
		er.StageWallNS = make(map[string]int64, len(res.Stages))
		for _, st := range res.Stages {
			er.StageWallNS[st.Name] = st.Wall.Nanoseconds()
		}
		if res.Patch != nil {
			er.LPPatches = res.Patch.Patches()
			if res.Patch.Rebuilt {
				er.LPRebuilds = 1
			}
		}
		er.Refactorizations = res.LPStats.Refactorizations
		er.FTUpdates = res.LPStats.FTUpdates
		er.DevexResets = res.LPStats.DevexResets
		if si := res.ShardInfo; si != nil {
			er.ExtractionsSkipped = si.ExtractionsSkipped
			er.ExchangeRounds = si.ExchangeRounds
			er.ExchangeGap = si.ExchangeGap
			for _, n := range si.PerShardPatches {
				er.LPPatches += n
			}
			for _, n := range si.PerShardRebuilds {
				er.LPRebuilds += n
			}
			// Surface the per-shard model-construction cost under the same
			// stage names the monolithic path reports, so lp-build/lp-patch
			// accounting is uniform across solve paths (summed over
			// concurrent shards).
			if si.LPBuildNS > 0 {
				er.StageWallNS["lp-build"] += si.LPBuildNS
			}
			if si.LPPatchNS > 0 {
				er.StageWallNS["lp-patch"] += si.LPPatchNS
			}
		}

		// Availability SLO: an epoch is available when at least SLOTarget
		// of its active sinks meet their exact reliability threshold; the
		// tracker reports the fraction of available epochs over a trailing
		// window (the alerting-style view of §1.3's monitoring loop), plus
		// the per-region and per-stream breakdowns behind /slo.
		verdict := slo.Observe(in.Threshold, res.Audit.Met)
		er.SLOOk = verdict.Ok
		er.SLOWindowFrac = verdict.WindowFrac
		er.Regions = verdict.Regions
		er.Streams = verdict.Streams
		rep.SLOBreaches = slo.Breaches()
		rep.MinSLOWindow = slo.MinWindowFrac()

		if cfg.SimPackets > 0 && e%cfg.SimEvery == 0 {
			scfg := sim.DefaultConfig(sc.Seed + 0x5deece66d*uint64(e+1))
			scfg.Packets = cfg.SimPackets
			sr := sim.Run(in, res.Design, scfg)
			er.SimRan = true
			er.SimMeanPostLoss = sr.MeanPostLoss
			er.SimMeetCount = sr.MeetCount
		}

		rep.Epochs = append(rep.Epochs, er)
		rep.TotalPivots += er.Pivots
		rep.TotalArcChurn += er.ArcChurn
		rep.TotalReflectorChurn += er.ReflectorChurn
		rep.TotalStreamChurn += er.StreamChurn
		rep.TotalViewerChurn += er.ViewerChurn
		rep.TotalTrueCost += er.TrueCost
		rep.TotalWallNS += er.WallNS
		rep.TotalLPPatches += er.LPPatches
		rep.TotalLPRebuilds += er.LPRebuilds
		rep.TotalRefactorizations += er.Refactorizations
		rep.TotalFTUpdates += er.FTUpdates
		rep.TotalDevexResets += er.DevexResets
		rep.TotalExtractionsSkipped += er.ExtractionsSkipped
		rep.TotalExchangeRounds += er.ExchangeRounds
		if !er.AuditOK {
			rep.AllAuditOK = false
		}
		recordEpoch(cfg.Obs.Registry(), er)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(er)
		}
	}

	// Wall-time order statistics across the timeline: the whole-epoch solve
	// wall, and each stage over the epochs it actually ran in (lp-build, for
	// example, typically runs only in epoch 0 under the incremental rebuild).
	walls := make([]float64, 0, len(rep.Epochs))
	stageWalls := make(map[string][]float64)
	for _, er := range rep.Epochs {
		walls = append(walls, float64(er.WallNS))
		for name, ns := range er.StageWallNS {
			stageWalls[name] = append(stageWalls[name], float64(ns))
		}
	}
	rep.EpochWallQuantiles = wallQuantiles(walls)
	if len(stageWalls) > 0 {
		rep.StageWallQuantiles = make(map[string]WallQuantiles, len(stageWalls))
		for name, ns := range stageWalls {
			rep.StageWallQuantiles[name] = wallQuantiles(ns)
		}
	}
	return rep, nil
}

// recordEpoch feeds one epoch's report into the metrics registry under the
// canonical naming scheme. The solver-level counters (pivots, factorization
// events, patches, shard coordination) are NOT fed here — core.Solve already
// records them through the same observer — so every metric has exactly one
// feeding point.
func recordEpoch(r *obs.Registry, er EpochReport) {
	if r == nil {
		return
	}
	r.Counter(obs.MEpochsTotal).Inc()
	r.Gauge(obs.MEpoch).Set(float64(er.Epoch))
	r.Histogram(obs.MEpochWall, nil).Observe(float64(er.WallNS) / 1e9)
	r.Gauge(obs.MEpochCost).Set(er.TrueCost)
	r.Gauge(obs.MActiveSinks).Set(float64(er.ActiveSinks))
	r.Gauge(obs.MActiveViewers).Set(float64(er.ActiveViewers))
	r.Gauge(obs.MBuiltReflectors).Set(float64(er.BuiltReflectors))
	if !er.AuditOK {
		r.Counter(obs.MAuditFailures).Inc()
	}
	r.Counter(obs.MChurnArcs).Add(float64(er.ArcChurn))
	r.Counter(obs.MChurnReflectors).Add(float64(er.ReflectorChurn))
	r.Counter(obs.MChurnStreams).Add(float64(er.StreamChurn))
	r.Counter(obs.MChurnViewers).Add(er.ViewerChurn)
	r.Gauge(obs.MSLOWindowAvailability).Set(er.SLOWindowFrac)
	if !er.SLOOk {
		r.Counter(obs.MSLOBreaches).Inc()
	}
	for _, ra := range er.Regions {
		r.Gauge(obs.MRegionAvailability, obs.L("region", strconv.Itoa(ra.Region))).Set(ra.Frac)
	}
	for _, sa := range er.Streams {
		r.Gauge(obs.MStreamAvailability, obs.L("stream", strconv.Itoa(sa.Stream))).Set(sa.Frac)
	}
}

// ComparePolicies runs the same timeline once per policy (each from a fresh
// clone of the base), returning reports in policy order. This is the
// instrument for the repo's headline claim that warm incremental re-solves
// beat cold ones by a wide pivot margin across a whole timeline.
func ComparePolicies(sc *Scenario, policies []Policy, cfg Config) ([]*RunReport, error) {
	// Reject any bad policy before spending time on the earlier ones.
	for _, p := range policies {
		if err := p.validate(); err != nil {
			return nil, err
		}
	}
	out := make([]*RunReport, 0, len(policies))
	for _, p := range policies {
		c := cfg
		c.Policy = p
		rep, err := Run(sc, c)
		if err != nil {
			return nil, fmt.Errorf("live: policy %q: %w", p.Name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
