package live

// Timeline-level acceptance lock for hierarchical viewer aggregation
// (internal/agg): running the whole scenario library with the solver folding
// viewers into weighted super-sinks must keep every epoch's design within
// the paper's guarantee on the TRUE instance, and the total deployed cost of
// each timeline within 5% of the flat (unaggregated) run.

import (
	"testing"

	"repro/internal/agg"
)

func TestAggregatedTimelineEquivalence(t *testing.T) {
	flat := runLibrary(t, nil)
	folded := runLibrary(t, func(cfg *Config) { cfg.Solver.Aggregate = &agg.Config{} })
	for name, a := range flat {
		b := folded[name]
		if !b.AllAuditOK {
			t.Fatalf("%s: aggregated run missed the paper guarantee", name)
		}
		if len(a.Epochs) != len(b.Epochs) {
			t.Fatalf("%s: epoch counts differ: %d vs %d", name, len(a.Epochs), len(b.Epochs))
		}
		ratio := b.TotalTrueCost / a.TotalTrueCost
		t.Logf("%s: cost flat %.2f folded %.2f ratio %.4f (lp-free churn absorbed: %d patches vs %d)",
			name, a.TotalTrueCost, b.TotalTrueCost, ratio, b.TotalLPPatches, a.TotalLPPatches)
		if ratio > 1.05 {
			t.Fatalf("%s: aggregated timeline cost ratio %.4f exceeds 1.05", name, ratio)
		}
		// Same churn accounting semantics: the aggregated run reports true
		// fractional viewer churn, so a timeline with viewer movement must
		// not report zero.
		if a.TotalViewerChurn > 0 && b.TotalViewerChurn == 0 {
			t.Fatalf("%s: aggregated run lost viewer-churn accounting", name)
		}
	}
}
