package live

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gen"
	"repro/internal/netmodel"
	"repro/internal/stats"
)

// TopoConfig shapes the clustered topology the scenario library builds on
// (gen.Clustered: regions × ISPs colos, Akamai-like cost/loss structure).
type TopoConfig struct {
	Sources, Regions, ISPs, SinksPerRegion int
	// Threshold overrides the per-sink success target (0 keeps gen's).
	Threshold float64
	// FanoutSlack scales gen's default fanout so designs survive losing a
	// whole ISP or a flash crowd without the LP going infeasible.
	FanoutSlack float64
	// StreamsPerSink ≥ 2 makes every sink a native multi-stream viewer
	// (gen.ClusteredConfig.StreamsPerSink); the default fanout scales with
	// it so the extra per-sink demand stays feasible.
	StreamsPerSink int
}

// DefaultTopo is the standard live-scenario topology: 3 regions × 3 ISPs,
// 24 sinks, 2 streams, 50% fanout headroom.
func DefaultTopo() TopoConfig {
	return TopoConfig{Sources: 2, Regions: 3, ISPs: 3, SinksPerRegion: 8, FanoutSlack: 1.5}
}

// MultiStreamTopo is the multi-stream scenario topology: 3 streams, 18
// viewers each subscribing to 2 of them (36 demand units), with fanout
// scaled so the doubled per-sink demand stays feasible through the waves.
func MultiStreamTopo() TopoConfig {
	return TopoConfig{Sources: 3, Regions: 3, ISPs: 3, SinksPerRegion: 6,
		FanoutSlack: 1.5, StreamsPerSink: 2}
}

// instance draws the base topology plus its deterministic layout.
func (tc TopoConfig) instance(seed uint64) (*netmodel.Instance, gen.ClusteredConfig, gen.Layout) {
	cc := gen.DefaultClustered(tc.Sources, tc.Regions, tc.ISPs, tc.SinksPerRegion)
	if tc.Threshold > 0 {
		cc.Threshold = tc.Threshold
	}
	if tc.StreamsPerSink > 1 {
		cc.StreamsPerSink = tc.StreamsPerSink
		cc.Fanout *= cc.EffectiveStreamsPerSink()
	}
	if tc.FanoutSlack > 0 {
		cc.Fanout = int(float64(cc.Fanout)*tc.FanoutSlack + 0.5)
	}
	in, l := gen.ClusteredWithLayout(cc, seed)
	return in, cc, l
}

// FlashCrowd builds the breaking-news workload: one region's audience is
// mostly offline at first, then joins in three waves over consecutive
// epochs, stays through the event, and leaves in two waves — against a
// background of mild cost repricing. The §1 MacWorld keynote is exactly
// this shape.
func FlashCrowd(seed uint64, epochs int) *Scenario {
	tc := DefaultTopo()
	in, cc, l := tc.instance(seed)
	rng := stats.NewRNG(seed ^ 0xf1a5c404d)
	flashReg := rng.Intn(cc.Regions)

	// The crowd: flash-region sinks initially offline (a 25% core stays).
	var crowd []int
	for j, reg := range l.SinkRegion {
		if reg == flashReg && !rng.Bernoulli(0.25) {
			in.Threshold[j] = 0
			crowd = append(crowd, j)
		}
	}
	sc := &Scenario{Name: "flashcrowd", Seed: seed, Epochs: epochs, Base: in, SinkRegion: l.SinkRegion}

	joinStart := max(1, epochs/5)
	const joinWaves = 3
	for w := 0; w < joinWaves; w++ {
		e := joinStart + w
		if e >= epochs {
			break
		}
		lo, hi := w*len(crowd)/joinWaves, (w+1)*len(crowd)/joinWaves
		d := netmodel.Delta{Note: fmt.Sprintf("flash join wave %d/%d (region %d)", w+1, joinWaves, flashReg)}
		for _, j := range crowd[lo:hi] {
			d.SetThreshold = append(d.SetThreshold, netmodel.SinkValue{Sink: j, Value: cc.Threshold})
		}
		sc.Events = append(sc.Events, Event{Epoch: e, Delta: d})
	}
	leaveStart := max(joinStart+joinWaves+1, 3*epochs/5)
	const leaveWaves = 2
	for w := 0; w < leaveWaves; w++ {
		e := leaveStart + 2*w
		if e >= epochs {
			break
		}
		lo, hi := w*len(crowd)/leaveWaves, (w+1)*len(crowd)/leaveWaves
		d := netmodel.Delta{Note: fmt.Sprintf("flash leave wave %d/%d", w+1, leaveWaves)}
		for _, j := range crowd[lo:hi] {
			d.SetThreshold = append(d.SetThreshold, netmodel.SinkValue{Sink: j, Value: 0})
		}
		sc.Events = append(sc.Events, Event{Epoch: e, Delta: d})
	}
	// Ambient repricing: every 5th epoch ~10% of delivery arcs move.
	for e := 2; e < epochs; e += 5 {
		d := netmodel.Delta{Note: fmt.Sprintf("ambient repricing @%d", e)}
		for i := 0; i < in.NumReflectors; i++ {
			for j := 0; j < in.NumSinks; j++ {
				if rng.Bernoulli(0.1) {
					d.ScaleRefSinkCost = append(d.ScaleRefSinkCost,
						netmodel.ArcValue{A: i, B: j, Value: rng.Range(0.9, 1.15)})
				}
			}
		}
		sc.Events = append(sc.Events, Event{Epoch: e, Delta: d})
	}
	sortEvents(sc)
	return sc
}

// DiurnalWave builds the follow-the-sun workload: each region's audience
// swells and shrinks on a shared period, phase-shifted per region the way
// timezones shift viewing hours. Nearly every epoch carries join and leave
// churn somewhere.
func DiurnalWave(seed uint64, epochs int) *Scenario {
	tc := DefaultTopo()
	in, cc, l := tc.instance(seed)
	rng := stats.NewRNG(seed ^ 0xd1acb2a7e)

	// Activation order within each region is a fixed seeded shuffle.
	byRegion := make([][]int, cc.Regions)
	for j, reg := range l.SinkRegion {
		byRegion[reg] = append(byRegion[reg], j)
	}
	for reg := range byRegion {
		perm := rng.Perm(len(byRegion[reg]))
		shuffled := make([]int, len(perm))
		for a, b := range perm {
			shuffled[a] = byRegion[reg][b]
		}
		byRegion[reg] = shuffled
	}
	const period = 12.0
	target := func(e, reg int) int {
		phase := float64(e)/period + float64(reg)/float64(cc.Regions)
		frac := 0.4 + 0.4*math.Sin(2*math.Pi*phase)
		return int(frac*float64(cc.SinksPerRegion) + 0.5)
	}

	// Epoch-0 state lives in the base instance.
	active := make([]int, cc.Regions)
	for reg := range byRegion {
		active[reg] = target(0, reg)
		for idx, j := range byRegion[reg] {
			if idx >= active[reg] {
				in.Threshold[j] = 0
			}
		}
	}
	sc := &Scenario{Name: "diurnal", Seed: seed, Epochs: epochs, Base: in, SinkRegion: l.SinkRegion}
	for e := 1; e < epochs; e++ {
		d := netmodel.Delta{Note: fmt.Sprintf("diurnal shift @%d", e)}
		for reg := range byRegion {
			want := target(e, reg)
			for idx := active[reg]; idx < want; idx++ { // joins
				d.SetThreshold = append(d.SetThreshold,
					netmodel.SinkValue{Sink: byRegion[reg][idx], Value: cc.Threshold})
			}
			for idx := want; idx < active[reg]; idx++ { // leaves
				d.SetThreshold = append(d.SetThreshold,
					netmodel.SinkValue{Sink: byRegion[reg][idx], Value: 0})
			}
			active[reg] = want
		}
		if !d.Empty() {
			sc.Events = append(sc.Events, Event{Epoch: e, Delta: d})
		}
	}
	return sc
}

// RollingISPOutage builds the §6.4 failure drill as a timeline: each ISP in
// turn loses every reflector (fanout → 0) for a maintenance window, then
// recovers, with measured link losses drifting in the background. Color
// constraints mean each sink can keep at most one copy per surviving ISP,
// so the threshold is eased to keep two-ISP service feasible.
func RollingISPOutage(seed uint64, epochs int) *Scenario {
	tc := DefaultTopo()
	tc.Threshold = 0.97
	in, cc, l := tc.instance(seed)
	rng := stats.NewRNG(seed ^ 0x901a11ed)
	sc := &Scenario{Name: "rollingisp", Seed: seed, Epochs: epochs, Base: in, SinkRegion: l.SinkRegion}

	w := max(2, epochs/8)
	gap := max(w+2, epochs/(cc.ISPs+1))
	for isp := 0; isp < cc.ISPs; isp++ {
		start := 2 + isp*gap
		if start+w >= epochs {
			break
		}
		fail := netmodel.Delta{Note: fmt.Sprintf("ISP %d outage", isp)}
		restore := netmodel.Delta{Note: fmt.Sprintf("ISP %d recovered", isp)}
		for i, ispOf := range l.RefISP {
			if ispOf != isp {
				continue
			}
			fail.SetFanout = append(fail.SetFanout, netmodel.RefValue{Ref: i, Value: 0})
			restore.SetFanout = append(restore.SetFanout, netmodel.RefValue{Ref: i, Value: in.Fanout[i]})
		}
		sc.Events = append(sc.Events,
			Event{Epoch: start, Delta: fail},
			Event{Epoch: start + w, Delta: restore})
	}
	// Loss drift: every 3rd epoch re-measures ~10% of delivery links around
	// their original loss (bounded, so drift never compounds to 1).
	for e := 1; e < epochs; e += 3 {
		d := netmodel.Delta{Note: fmt.Sprintf("loss drift @%d", e)}
		for i := 0; i < in.NumReflectors; i++ {
			for j := 0; j < in.NumSinks; j++ {
				if rng.Bernoulli(0.1) {
					v := in.RefSinkLoss[i][j] * rng.Range(0.7, 1.4)
					d.SetRefSinkLoss = append(d.SetRefSinkLoss,
						netmodel.ArcValue{A: i, B: j, Value: math.Min(v, 0.5)})
				}
			}
		}
		sc.Events = append(sc.Events, Event{Epoch: e, Delta: d})
	}
	sortEvents(sc)
	return sc
}

// CorrelatedBackboneFailure builds the §1.4-style correlated incident: all
// inter-region links degrade at once (the shared backbone, not independent
// last-mile noise), sinks watching a remote-origin stream drop to a
// degraded quality target for the duration, and recovery restores measured
// losses to their baseline.
func CorrelatedBackboneFailure(seed uint64, epochs int) *Scenario {
	tc := DefaultTopo()
	in, cc, l := tc.instance(seed)
	srcReg := l.SrcRegion
	sc := &Scenario{Name: "backbone", Seed: seed, Epochs: epochs, Base: in, SinkRegion: l.SinkRegion}

	addIncident := func(start, w int, factor float64, label string) {
		if start < 1 || start+w >= epochs {
			return
		}
		fail := netmodel.Delta{Note: "backbone failure " + label}
		restore := netmodel.Delta{Note: "backbone recovered " + label}
		for k := 0; k < in.NumSources; k++ {
			for i := 0; i < in.NumReflectors; i++ {
				if l.RefRegion[i] != srcReg[k] {
					fail.ScaleSrcRefLoss = append(fail.ScaleSrcRefLoss,
						netmodel.ArcValue{A: k, B: i, Value: factor})
					restore.SetSrcRefLoss = append(restore.SetSrcRefLoss,
						netmodel.ArcValue{A: k, B: i, Value: in.SrcRefLoss[k][i]})
				}
			}
		}
		for i := 0; i < in.NumReflectors; i++ {
			for j := 0; j < in.NumSinks; j++ {
				if l.RefRegion[i] != l.SinkRegion[j] {
					fail.ScaleRefSinkLoss = append(fail.ScaleRefSinkLoss,
						netmodel.ArcValue{A: i, B: j, Value: factor})
					restore.SetRefSinkLoss = append(restore.SetRefSinkLoss,
						netmodel.ArcValue{A: i, B: j, Value: in.RefSinkLoss[i][j]})
				}
			}
		}
		// Graceful degradation: remote-origin viewers accept lower quality
		// while the backbone is impaired (keeps the LP feasible, mirrors
		// real incident response).
		for j := 0; j < in.NumSinks; j++ {
			if srcReg[in.Commodity[j]] != l.SinkRegion[j] {
				fail.SetThreshold = append(fail.SetThreshold,
					netmodel.SinkValue{Sink: j, Value: 0.9})
				restore.SetThreshold = append(restore.SetThreshold,
					netmodel.SinkValue{Sink: j, Value: cc.Threshold})
			}
		}
		sc.Events = append(sc.Events,
			Event{Epoch: start, Delta: fail},
			Event{Epoch: start + w, Delta: restore})
	}
	w := max(2, epochs/10)
	addIncident(epochs/3, w, 3, "A")
	if epochs >= 30 {
		addIncident(2*epochs/3, w, 2, "B")
	}
	sortEvents(sc)
	return sc
}

// GradualRepricing builds the slow-churn workload of §1.3's steady state:
// no topology events at all, just transit and colocation prices moving a
// little every epoch — the regime where sticky warm re-solves should keep
// the deployed design almost unchanged at near-zero pivot cost.
func GradualRepricing(seed uint64, epochs int) *Scenario {
	tc := DefaultTopo()
	in, _, l := tc.instance(seed)
	rng := stats.NewRNG(seed ^ 0x4e91ce)
	sc := &Scenario{Name: "repricing", Seed: seed, Epochs: epochs, Base: in, SinkRegion: l.SinkRegion}
	for e := 1; e < epochs; e++ {
		d := netmodel.Delta{Note: fmt.Sprintf("repricing @%d", e)}
		for i := 0; i < in.NumReflectors; i++ {
			if rng.Bernoulli(0.2) {
				d.ScaleReflectorCost = append(d.ScaleReflectorCost,
					netmodel.RefValue{Ref: i, Value: rng.Range(0.95, 1.08)})
			}
			for j := 0; j < in.NumSinks; j++ {
				if rng.Bernoulli(0.25) {
					d.ScaleRefSinkCost = append(d.ScaleRefSinkCost,
						netmodel.ArcValue{A: i, B: j, Value: rng.Range(0.92, 1.1)})
				}
			}
		}
		for k := 0; k < in.NumSources; k++ {
			for i := 0; i < in.NumReflectors; i++ {
				if rng.Bernoulli(0.2) {
					d.ScaleSrcRefCost = append(d.ScaleSrcRefCost,
						netmodel.ArcValue{A: k, B: i, Value: rng.Range(0.95, 1.08)})
				}
			}
		}
		if !d.Empty() {
			sc.Events = append(sc.Events, Event{Epoch: e, Delta: d})
		}
	}
	return sc
}

// StreamPopularityWave builds the per-stream popularity workload on a
// native multi-stream topology: every viewer watches its home stream
// throughout and holds one standby slot for a second stream; each stream's
// popularity then surges in turn — a wave of viewers SUBSCRIBES the
// standby slot for that stream (netmodel.Delta.SetStream) and unsubscribes
// when the surge passes. All churn is stream-level on existing sinks: no
// viewer ever joins or leaves, so the copy-split view would misreport
// every switch as a full viewer coming and going, and the incremental LP
// path must absorb everything as covering-row patches (one build, zero
// rebuilds — test- and CI-locked).
func StreamPopularityWave(seed uint64, epochs int) *Scenario {
	tc := MultiStreamTopo()
	in, cc, l := tc.instance(seed)
	rng := stats.NewRNG(seed ^ 0x57ea3aa4e)

	// Standby slots start unsubscribed: every unit that is not its
	// viewer's first slot goes dark in the base, and we index who holds a
	// standby slot for which stream.
	holders := make(map[int][]int) // stream -> viewers with a standby slot for it
	byViewer := in.ViewerUnits()
	for v, units := range byViewer {
		for _, u := range units[1:] {
			in.Threshold[u] = 0
			holders[in.Commodity[u]] = append(holders[in.Commodity[u]], v)
		}
	}
	sc := &Scenario{Name: "streamwave", Seed: seed, Epochs: epochs, Base: in, SinkRegion: l.SinkRegion}

	w := max(2, epochs/6)
	gap := max(w+1, (epochs-2)/max(1, in.NumSources))
	for k := 0; k < in.NumSources; k++ {
		start := 1 + k*gap
		if start+w >= epochs {
			break
		}
		crowd := holders[k]
		surge := netmodel.Delta{Note: fmt.Sprintf("stream %d popularity surge", k)}
		fade := netmodel.Delta{Note: fmt.Sprintf("stream %d surge over", k)}
		for _, v := range crowd {
			if !rng.Bernoulli(0.75) {
				continue // a quarter of the holders sit this surge out
			}
			surge.SetStream = append(surge.SetStream,
				netmodel.StreamValue{Sink: v, Stream: k, Value: cc.Threshold})
			fade.SetStream = append(fade.SetStream,
				netmodel.StreamValue{Sink: v, Stream: k, Value: 0})
		}
		sc.Events = append(sc.Events,
			Event{Epoch: start, Delta: surge},
			Event{Epoch: start + w, Delta: fade})
	}
	sortEvents(sc)
	return sc
}

// StreamFailover builds the correlated stream-failover workload: viewers
// hold a standby slot next to their home stream; when a source's uplinks
// degrade (the §1.4-style correlated incident, hitting every reflector at
// once), every viewer watching that stream fails over in the SAME delta —
// unsubscribing the impaired stream and subscribing its standby — and
// switches back when the source recovers. A sink that flips one of its two
// streams is 1/2 a viewer of churn natively, where the copy-split view
// would count a full leave plus a full join.
func StreamFailover(seed uint64, epochs int) *Scenario {
	tc := MultiStreamTopo()
	in, cc, l := tc.instance(seed)
	sc := &Scenario{Name: "streamfailover", Seed: seed, Epochs: epochs, Base: in, SinkRegion: l.SinkRegion}

	// Standby slots (every non-first slot) start unsubscribed.
	byViewer := in.ViewerUnits()
	for _, units := range byViewer {
		for _, u := range units[1:] {
			in.Threshold[u] = 0
		}
	}

	addIncident := func(k, start, w int, factor float64) {
		if start < 1 || start+w >= epochs {
			return
		}
		fail := netmodel.Delta{Note: fmt.Sprintf("source %d uplink degraded, failover", k)}
		restore := netmodel.Delta{Note: fmt.Sprintf("source %d recovered, failback", k)}
		for i := 0; i < in.NumReflectors; i++ {
			fail.ScaleSrcRefLoss = append(fail.ScaleSrcRefLoss,
				netmodel.ArcValue{A: k, B: i, Value: factor})
			restore.SetSrcRefLoss = append(restore.SetSrcRefLoss,
				netmodel.ArcValue{A: k, B: i, Value: in.SrcRefLoss[k][i]})
		}
		for v, units := range byViewer {
			if len(units) < 2 || in.Commodity[units[0]] != k || in.Threshold[units[0]] <= 0 {
				continue
			}
			backup := in.Commodity[units[1]]
			fail.SetStream = append(fail.SetStream,
				netmodel.StreamValue{Sink: v, Stream: k, Value: 0},
				netmodel.StreamValue{Sink: v, Stream: backup, Value: cc.Threshold})
			restore.SetStream = append(restore.SetStream,
				netmodel.StreamValue{Sink: v, Stream: backup, Value: 0},
				netmodel.StreamValue{Sink: v, Stream: k, Value: cc.Threshold})
		}
		sc.Events = append(sc.Events,
			Event{Epoch: start, Delta: fail},
			Event{Epoch: start + w, Delta: restore})
	}
	w := max(2, epochs/8)
	gap := max(2*w, (epochs-2)/max(1, in.NumSources))
	for k := 0; k < in.NumSources; k++ {
		addIncident(k, 1+k*gap, w, 6)
	}
	sortEvents(sc)
	return sc
}

// makers is the scenario registry used by the CLI and the L-series
// experiments.
var makers = map[string]func(seed uint64, epochs int) *Scenario{
	"flashcrowd":     FlashCrowd,
	"diurnal":        DiurnalWave,
	"rollingisp":     RollingISPOutage,
	"backbone":       CorrelatedBackboneFailure,
	"repricing":      GradualRepricing,
	"streamwave":     StreamPopularityWave,
	"streamfailover": StreamFailover,
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(makers))
	for n := range makers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Make builds a registered scenario by name.
func Make(name string, seed uint64, epochs int) (*Scenario, error) {
	mk, ok := makers[name]
	if !ok {
		return nil, fmt.Errorf("live: unknown scenario %q (have %v)", name, Names())
	}
	return mk(seed, epochs), nil
}

// sortEvents orders a scenario's events by epoch, keeping the relative
// order of same-epoch events stable.
func sortEvents(sc *Scenario) {
	sort.SliceStable(sc.Events, func(a, b int) bool {
		return sc.Events[a].Epoch < sc.Events[b].Epoch
	})
}
