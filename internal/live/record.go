package live

// Scenario recording and replay. A Scenario is already a plain data object
// — a base instance plus a timed schedule of JSON-able netmodel.Deltas — so
// serializing it turns any workload into a replayable trace: record a
// synthetic scenario (or, operationally, a measurement feed translated into
// Deltas) once, then replay the identical timeline against candidate
// policies, solver options, or shard counts. overlaylive exposes this as
// -record / -replay.

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteScenario serializes the scenario as indented JSON.
func WriteScenario(w io.Writer, sc *Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadScenario deserializes and validates a scenario written by
// WriteScenario: the base instance must be a valid netmodel.Instance and
// every event's delta must be in range for it, so a replayed trace fails
// loudly at load time rather than mid-timeline.
func ReadScenario(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("live: decoding scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}
