package live

import "testing"

// TestStreamChurnPatchesInPlace locks the acceptance criterion that stream
// subscribe/unsubscribe events ride the incremental LP path: across the
// whole multi-stream scenario pair, the engine performs exactly one full
// LP build (epoch 0) and absorbs every stream toggle as in-place patches.
func TestStreamChurnPatchesInPlace(t *testing.T) {
	for _, name := range []string{"streamwave", "streamfailover"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := Make(name, 3, 14)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(sc, Config{Policy: WarmStickyPolicy()})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.AllAuditOK {
				t.Fatal("an epoch failed the audit")
			}
			if rep.TotalLPRebuilds != 1 {
				t.Fatalf("stream churn caused %d LP rebuilds, want exactly the epoch-0 build", rep.TotalLPRebuilds)
			}
			if rep.TotalLPPatches == 0 {
				t.Fatal("no LP cells were patched across a stream-churning timeline")
			}
			for _, er := range rep.Epochs[1:] {
				if er.LPRebuilds != 0 {
					t.Fatalf("epoch %d fell back to a full rebuild", er.Epoch)
				}
			}
		})
	}
}

// TestStreamChurnCountsRealSinks checks the stream-level accounting on a
// live timeline: stream switches are visible, and viewer churn counts real
// sinks fractionally — strictly fewer viewers than stream switches, since
// the multi-stream scenarios only ever toggle one of a sink's streams at a
// time while the sink keeps watching its other stream.
func TestStreamChurnCountsRealSinks(t *testing.T) {
	sc, err := Make("streamwave", 5, 14)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, Config{Policy: WarmStickyPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalStreamChurn == 0 {
		t.Fatal("a popularity-wave timeline produced no stream churn")
	}
	if rep.TotalViewerChurn <= 0 || rep.TotalViewerChurn >= float64(rep.TotalStreamChurn) {
		t.Fatalf("viewer churn %.2f not strictly fractional against %d stream switches",
			rep.TotalViewerChurn, rep.TotalStreamChurn)
	}
	// Multi-stream bookkeeping: subscriptions outnumber real sinks on at
	// least the surge epochs, and viewers never exceed subscriptions.
	surged := false
	for _, er := range rep.Epochs {
		if er.ActiveViewers > er.ActiveSinks {
			t.Fatalf("epoch %d: %d viewers > %d active subscriptions", er.Epoch, er.ActiveViewers, er.ActiveSinks)
		}
		if er.ActiveSinks > er.ActiveViewers {
			surged = true
		}
	}
	if !surged {
		t.Fatal("no epoch had more subscriptions than viewers — surges never fired")
	}
}
