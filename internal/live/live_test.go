package live

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestAllScenariosRunClean runs every registered scenario for a short
// horizon under the warm+sticky policy: no errors, full horizon, every
// epoch's design passing the paper's audit.
func TestAllScenariosRunClean(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := Make(name, 7, 12)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(sc, Config{Policy: WarmStickyPolicy()})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Epochs) != 12 {
				t.Fatalf("ran %d epochs, want 12", len(rep.Epochs))
			}
			if !rep.AllAuditOK {
				for _, er := range rep.Epochs {
					if !er.AuditOK {
						t.Fatalf("epoch %d failed audit: weight=%.3f fanout=%.3f", er.Epoch, er.WeightFactor, er.FanoutFactor)
					}
				}
			}
			t.Logf("%s: pivots=%d arcChurn=%d cost=%.1f", name, rep.TotalPivots, rep.TotalArcChurn, rep.TotalTrueCost)
		})
	}
}

// scrubWall zeroes the wall-clock fields (including the per-stage
// breakdown and the wall-derived quantile summaries), the only
// nondeterministic part of a report.
func scrubWall(rep *RunReport) {
	rep.TotalWallNS = 0
	rep.EpochWallQuantiles = WallQuantiles{}
	rep.StageWallQuantiles = nil
	for i := range rep.Epochs {
		rep.Epochs[i].WallNS = 0
		rep.Epochs[i].StageWallNS = nil
	}
}

// scrubPatches additionally zeroes the incremental-rebuild counters (and the
// extraction-skip counter, which like the patch counters only fires on the
// incremental path), so an incremental report can be compared
// field-for-field against a rebuild one.
func scrubPatches(rep *RunReport) {
	rep.TotalLPPatches = 0
	rep.TotalLPRebuilds = 0
	rep.TotalExtractionsSkipped = 0
	for i := range rep.Epochs {
		rep.Epochs[i].LPPatches = 0
		rep.Epochs[i].LPRebuilds = 0
		rep.Epochs[i].ExtractionsSkipped = 0
	}
}

// TestFlashCrowd50EpochAcceptance is the L-series acceptance gate: a
// 50-epoch flash crowd under a fixed seed must (1) run deterministically,
// (2) pass the audit every epoch under both policies, and (3) cost the
// warm+sticky policy at least 3x fewer total simplex pivots than cold
// re-solves of the same timeline.
func TestFlashCrowd50EpochAcceptance(t *testing.T) {
	sc := FlashCrowd(1, 50)
	reps, err := ComparePolicies(sc, []Policy{ColdPolicy(), WarmStickyPolicy()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cold, warm := reps[0], reps[1]
	for _, rep := range reps {
		if !rep.AllAuditOK {
			t.Fatalf("policy %s: not every epoch passed the audit", rep.Policy.Name)
		}
		if len(rep.Epochs) != 50 {
			t.Fatalf("policy %s: %d epochs", rep.Policy.Name, len(rep.Epochs))
		}
	}
	t.Logf("pivots: cold=%d warm=%d (%.1fx) | arc churn: cold=%d warm=%d | cost: cold=%.1f warm=%.1f",
		cold.TotalPivots, warm.TotalPivots, float64(cold.TotalPivots)/float64(warm.TotalPivots),
		cold.TotalArcChurn, warm.TotalArcChurn, cold.TotalTrueCost, warm.TotalTrueCost)
	if warm.TotalPivots*3 > cold.TotalPivots {
		t.Fatalf("warm+sticky pivots %d not >=3x cheaper than cold %d", warm.TotalPivots, cold.TotalPivots)
	}

	// Determinism: a rerun of the same timeline must agree exactly on every
	// field except wall time.
	again, err := Run(FlashCrowd(1, 50), Config{Policy: WarmStickyPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	scrubWall(warm)
	scrubWall(again)
	if !reflect.DeepEqual(warm, again) {
		t.Fatal("re-running the same scenario+policy produced a different report")
	}
}

// TestChurnMonotoneInStickiness is the multi-epoch re-optimization property
// test: on a fixed timeline, total arc churn must be monotonically
// non-increasing as stickiness grows.
func TestChurnMonotoneInStickiness(t *testing.T) {
	sc := DiurnalWave(3, 16)
	prev := -1
	for _, s := range []float64{0, 0.3, 0.6} {
		rep, err := Run(sc, Config{Policy: Policy{Name: "s", Stickiness: s, WarmStart: true}})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("stickiness %.1f: arc churn %d (pivots %d)", s, rep.TotalArcChurn, rep.TotalPivots)
		if prev >= 0 && rep.TotalArcChurn > prev {
			t.Fatalf("churn increased with stickiness %.1f: %d > %d", s, rep.TotalArcChurn, prev)
		}
		prev = rep.TotalArcChurn
	}
}

// TestScenarioValidateRejectsBadEvents covers the validation surface.
func TestScenarioValidateRejectsBadEvents(t *testing.T) {
	sc := FlashCrowd(2, 10)
	sc.Events[0].Epoch = 99
	if err := sc.Validate(); err == nil {
		t.Fatal("out-of-horizon event accepted")
	}
	sc2 := FlashCrowd(2, 10)
	sc2.Events[0].Delta.SetThreshold[0].Sink = 10000
	if err := sc2.Validate(); err == nil {
		t.Fatal("out-of-range delta accepted")
	}
	sc3 := &Scenario{Name: "nobase", Epochs: 5}
	if _, err := Run(sc3, Config{Policy: ColdPolicy()}); err == nil {
		t.Fatal("scenario without base accepted")
	}
	// Out-of-range stickiness is rejected before any epoch is solved —
	// including by ComparePolicies, before running the earlier policies.
	bad := Policy{Name: "bad", Stickiness: 1.5, WarmStart: true}
	if _, err := Run(FlashCrowd(2, 10), Config{Policy: bad}); err == nil {
		t.Fatal("invalid stickiness accepted")
	}
	if _, err := ComparePolicies(FlashCrowd(2, 10), []Policy{ColdPolicy(), bad}, Config{}); err == nil {
		t.Fatal("invalid stickiness accepted by ComparePolicies")
	}
}

// TestRunReportJSONRoundTrip pins the -json schema: a report must survive a
// marshal/unmarshal round trip unchanged.
func TestRunReportJSONRoundTrip(t *testing.T) {
	sc := GradualRepricing(5, 6)
	rep, err := Run(sc, Config{Policy: WarmStickyPolicy(), SimPackets: 400, SimEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatal("report changed across JSON round trip")
	}
	if !back.Epochs[0].SimRan || back.Epochs[1].SimRan {
		t.Fatal("SimEvery=3 must simulate epochs 0 and 3 only")
	}
}

// TestSessionCarriesDeployment checks the core re-solve loop surface the
// engine relies on: the session deploys each step's design and reports
// churn against it.
func TestSessionCarriesDeployment(t *testing.T) {
	sc := GradualRepricing(9, 4)
	sess := core.NewSession(core.DefaultOptions(9), 0.4, true)
	if sess.Deployed() != nil {
		t.Fatal("fresh session has a deployment")
	}
	in := sc.Base.Clone()
	res, err := sess.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArcChurn != 0 {
		t.Fatal("first step must report zero churn")
	}
	if sess.Deployed() == nil || sess.Steps() != 1 {
		t.Fatal("session did not deploy the first design")
	}
	for _, ev := range sc.Events {
		ds, err := ev.Delta.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		sess.Observe(ds)
	}
	if _, err := sess.Step(in); err != nil {
		t.Fatal(err)
	}
	if sess.Steps() != 2 {
		t.Fatalf("steps = %d", sess.Steps())
	}
}

// TestShardedLiveTimeline drives the live engine with a sharded solver:
// every epoch of a flash-crowd timeline re-provisions through the
// shard-partition/solve/coordinate pipeline, the per-shard warm state
// (partition + capacity split + simplex bases) carries across epochs under
// the warm policy, and every epoch's merged design still passes the
// paper's audit. The warm run must also spend fewer total pivots than an
// identical cold run — the whole point of carrying per-shard bases.
func TestShardedLiveTimeline(t *testing.T) {
	sc := FlashCrowd(3, 12)
	mk := func(p Policy) *RunReport {
		t.Helper()
		cfg := Config{Policy: p}
		cfg.Solver.Shards = 3
		rep, err := Run(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Epochs) != 12 {
			t.Fatalf("policy %s ran %d epochs, want 12", p.Name, len(rep.Epochs))
		}
		if !rep.AllAuditOK {
			t.Fatalf("policy %s: some epoch failed the audit", p.Name)
		}
		return rep
	}
	cold := mk(ColdPolicy())
	warm := mk(WarmStickyPolicy())
	t.Logf("sharded timeline pivots: cold=%d warm=%d arcChurn: cold=%d warm=%d",
		cold.TotalPivots, warm.TotalPivots, cold.TotalArcChurn, warm.TotalArcChurn)
	if warm.TotalPivots >= cold.TotalPivots {
		t.Fatalf("warm sharded run spent %d pivots, cold spent %d — per-shard warm starts bought nothing",
			warm.TotalPivots, cold.TotalPivots)
	}
}
