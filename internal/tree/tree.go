// Package tree implements the single-tree distribution baseline that §1.4
// of the paper describes and criticizes: a multicast/reflector tree in which
// every sink receives exactly one copy of its stream through exactly one
// reflector. In the paper's 3-level model a tree is a design whose Serve
// matrix has exactly one 1 per column, so a packet lost on a
// source→reflector link is lost by *every* sink downstream of that
// reflector, and a reflector failure blacks out its whole subtree — the two
// failure modes §1.4 levels against tree-based multicast, which experiment
// T13 quantifies against the paper's multi-path overlay.
package tree

import (
	"math"
	"sort"

	"repro/internal/netmodel"
)

// Result is a tree design plus diagnostics.
type Result struct {
	Design *netmodel.Design
	// Assigned counts sinks that received a parent (fanout permitting).
	Assigned, Demanding int
}

// Build constructs a min-cost single-parent assignment: each demanding sink
// is attached to the admissible reflector with the lowest marginal cost
// (arc cost, plus ingest and build costs the first time a reflector/stream
// is used), respecting fanout hard. Sinks are processed in order of how few
// choices they have (most-constrained first), the classic matching
// heuristic.
func Build(in *netmodel.Instance) *Result {
	_, R, D := in.Dims()
	d := netmodel.NewDesign(in)
	fanoutLeft := append([]float64(nil), in.Fanout...)
	res := &Result{Design: d}

	type sinkOrd struct {
		j       int
		choices int
	}
	var order []sinkOrd
	for j := 0; j < D; j++ {
		if in.Threshold[j] <= 0 {
			continue
		}
		res.Demanding++
		choices := 0
		for i := 0; i < R; i++ {
			if in.ArcAllowed(i, j) && in.CappedWeight(i, j) > 1e-12 {
				choices++
			}
		}
		order = append(order, sinkOrd{j, choices})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].choices < order[b].choices })

	for _, so := range order {
		j := so.j
		k := in.Commodity[j]
		bw := in.UnitLoad(j)
		bestI := -1
		bestCost := math.Inf(1)
		for i := 0; i < R; i++ {
			if fanoutLeft[i] < bw || !in.ArcAllowed(i, j) {
				continue
			}
			if in.CappedWeight(i, j) <= 1e-12 {
				continue
			}
			cost := in.RefSinkCost[i][j]
			if !d.Ingest[k][i] {
				cost += in.SrcRefCost[k][i]
			}
			if !d.Build[i] {
				cost += in.ReflectorCost[i]
			}
			if cost < bestCost {
				bestCost, bestI = cost, i
			}
		}
		if bestI < 0 {
			continue
		}
		d.Serve[bestI][j] = true
		d.Ingest[k][bestI] = true
		d.Build[bestI] = true
		fanoutLeft[bestI] -= bw
		res.Assigned++
	}
	return res
}

// BlastRadius returns, per reflector, the number of sinks that lose ALL
// service if that reflector dies — §1.4: "if a node or link in a multicast
// tree fails, all of the leaves downstream of the failure lose access".
// For a tree this is the subtree size; for a multi-path overlay it is the
// count of sinks served only by that reflector.
func BlastRadius(in *netmodel.Instance, d *netmodel.Design) []int {
	_, R, D := in.Dims()
	copies := make([]int, D)
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if d.Serve[i][j] {
				copies[j]++
			}
		}
	}
	out := make([]int, R)
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if d.Serve[i][j] && copies[j] == 1 && in.Threshold[j] > 0 {
				out[i]++
			}
		}
	}
	return out
}

// MaxBlastRadius returns the worst single-reflector blackout count.
func MaxBlastRadius(in *netmodel.Instance, d *netmodel.Design) int {
	worst := 0
	for _, b := range BlastRadius(in, d) {
		if b > worst {
			worst = b
		}
	}
	return worst
}
