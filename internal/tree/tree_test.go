package tree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netmodel"
)

func TestBuildSingleParent(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 12), 3)
	res := Build(in)
	if res.Assigned != res.Demanding {
		t.Fatalf("assigned %d/%d", res.Assigned, res.Demanding)
	}
	// Exactly one parent per demanding sink.
	for j := 0; j < in.NumSinks; j++ {
		parents := 0
		for i := 0; i < in.NumReflectors; i++ {
			if res.Design.Serve[i][j] {
				parents++
			}
		}
		want := 0
		if in.Threshold[j] > 0 {
			want = 1
		}
		if parents != want {
			t.Fatalf("sink %d has %d parents, want %d", j, parents, want)
		}
	}
	a := netmodel.AuditDesign(in, res.Design)
	if !a.StructureOK {
		t.Fatal("structure violated")
	}
	if a.FanoutFactor > 1+1e-9 {
		t.Fatalf("tree must respect fanout hard: %v", a.FanoutFactor)
	}
}

func TestTreeCheaperThanOverlay(t *testing.T) {
	// A single copy per sink is (almost always) cheaper than the
	// multi-copy overlay — the §1.4 bait that T13 weighs against its
	// fragility.
	in := gen.Uniform(gen.DefaultUniform(2, 8, 16), 5)
	tr := Build(in)
	ov, err := core.Solve(in, core.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Design.Cost(in) >= ov.Audit.Cost {
		t.Logf("tree %v vs overlay %v (unusual but possible)", tr.Design.Cost(in), ov.Audit.Cost)
	}
}

func TestBlastRadiusTreeVsOverlay(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 6, 12), 7)
	tr := Build(in)
	treeWorst := MaxBlastRadius(in, tr.Design)
	if treeWorst == 0 {
		t.Fatal("a tree must have a nonzero blast radius")
	}
	// Overlay with repair: most sinks have ≥2 copies, so the blast
	// radius should be no worse (typically much better).
	opts := core.DefaultOptions(3)
	opts.RepairCoverage = true
	ov, err := core.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	ovWorst := MaxBlastRadius(in, ov.Design)
	if ovWorst > treeWorst {
		t.Fatalf("overlay blast radius %d worse than tree %d", ovWorst, treeWorst)
	}
}

func TestBlastRadiusCountsOnlySoleParents(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 2), 1)
	d := netmodel.NewDesign(in)
	d.Serve[0][0] = true // sole parent of sink 0
	d.Serve[0][1] = true // shares sink 1 with reflector 1
	d.Serve[1][1] = true
	d.Normalize(in)
	br := BlastRadius(in, d)
	if br[0] != 1 {
		t.Fatalf("reflector 0 blast radius %d, want 1", br[0])
	}
	if br[1] != 0 {
		t.Fatalf("reflector 1 blast radius %d, want 0", br[1])
	}
}

func TestBuildRespectsFanoutScarcity(t *testing.T) {
	// 1 reflector with fanout 1, 2 demanding sinks: only one assigned.
	in := gen.Uniform(gen.DefaultUniform(1, 1, 2), 2)
	in.Fanout[0] = 1
	res := Build(in)
	if res.Assigned != 1 {
		t.Fatalf("assigned %d, want 1", res.Assigned)
	}
}
