package lpmodel

// The incremental LP rebuild. Every epoch of the §1.3 monitoring loop used
// to rebuild the whole CSC constraint matrix from the instance (lp-build ≈
// lp-solve wall under warm starts); a Patcher instead owns one lp.Problem
// across epochs and, because Options.FixedShape pins both the row layout
// and the sparsity pattern to the instance dimensions, translates a churn
// delta's dirty set into in-place coefficient/rhs/objective patches. Only
// the cells a delta touched are recomputed — the per-epoch model cost drops
// from O(instance) to O(delta).

import (
	"repro/internal/lp"
	"repro/internal/netmodel"
)

// PatchStats reports what one Sync did.
type PatchStats struct {
	// Rebuilt is true when Sync fell back to a full Build (first call, or
	// the instance shape / model options changed).
	Rebuilt bool
	// Coefs counts constraint-matrix values actually changed, RHS the
	// right-hand sides, Obj the objective coefficients. Idempotent
	// re-patches of an unchanged value count nothing.
	Coefs, RHS, Obj int
}

// Patches returns the total number of changed cells.
func (st PatchStats) Patches() int { return st.Coefs + st.RHS + st.Obj }

// Patcher owns a persistent, patchable Build: the lp.Problem and VarMap of
// one instance shape, kept semantically identical to a fresh
// Build(in, opts) across epochs by Sync. The zero lifecycle is:
//
//	pt := lpmodel.NewPatcher()
//	prob, vm, _ := pt.Sync(in, opts, nil)      // epoch 0: full Build
//	... solve, deploy ...
//	dirty, _ := delta.Apply(in)                 // churn
//	prob, vm, st := pt.Sync(in, opts, dirty)    // epoch 1: O(delta) patches
//
// The contract is the dirty set's: every instance cell that changed since
// the previous Sync must be listed (netmodel.Delta.Apply reports its edits;
// core.Session adds the stickiness-bias flips via netmodel.DiffDesigns).
// Fanout is the exception — the Patcher keeps a shadow copy and value-diffs
// it each Sync, because the sharded path rescales per-shard fanout
// allocations outside the delta flow. Unreported mutations of any other
// field leave the patched LP stale; the golden equivalence tests lock the
// delta flow against that.
//
// A Patcher is single-threaded: Sync must not race with solves of the
// returned Problem. One Patcher serves one LP shape; per-shard LPs each get
// their own (carried in shard.State).
type Patcher struct {
	prob *lp.Problem
	vm   *VarMap

	// Shape and options identity of the current build.
	s, r, d  int
	opts     Options
	haveOpts bool

	// Row-layout offsets (Build emits rows in a fixed order; see layout()).
	base3, base5 int
	kCount       int   // commodities with at least one sink (cutting-plane rows per reflector)
	kRank        []int // commodity → dense rank among nonempty ones, -1 if empty
	byCommodity  [][]int
	posInK       []int // sink j → its position within byCommodity[Commodity[j]]

	// fanout is the shadow copy value-diffed on every Sync.
	fanout []float64

	// Builds and Syncs count full rebuilds / total syncs (diagnostics).
	Builds, Syncs int
}

// NewPatcher returns an empty patcher; the first Sync performs a full Build.
func NewPatcher() *Patcher { return &Patcher{} }

// sameModelOpts reports whether the structural model options match (the
// warm-start basis is solve state, not model shape).
func sameModelOpts(a, b Options) bool {
	return a.CuttingPlane == b.CuttingPlane && a.Colors == b.Colors &&
		a.EdgeCaps == b.EdgeCaps && a.Integral == b.Integral && a.FixedShape == b.FixedShape
}

// NeedsRebuild reports whether the next Sync with these arguments will fall
// back to a full Build instead of patching. Callers use it to pick the
// stage name (lp-build vs lp-patch) before running the stage.
func (pt *Patcher) NeedsRebuild(in *netmodel.Instance, opts Options) bool {
	if pt.prob == nil || !pt.haveOpts || !sameModelOpts(pt.opts, opts) {
		return true
	}
	if !opts.FixedShape {
		return true // patching relies on the pinned pattern
	}
	S, R, D := in.Dims()
	return pt.s != S || pt.r != R || pt.d != D
}

// Sync makes the patcher's Problem semantically identical to a fresh
// Build(in, opts): a full Build when NeedsRebuild, otherwise in-place
// patches of the cells listed in dirty (plus a fanout value-diff). The
// returned Problem has its CSC cache fresh either way.
func (pt *Patcher) Sync(in *netmodel.Instance, opts Options, dirty *netmodel.DirtySet) (*lp.Problem, *VarMap, PatchStats) {
	pt.Syncs++
	if pt.NeedsRebuild(in, opts) {
		pt.rebuild(in, opts)
		return pt.prob, pt.vm, PatchStats{Rebuilt: true}
	}
	st := PatchStats{}
	pt.patchFanout(in, &st)
	if dirty != nil {
		pt.patchObjective(in, dirty, &st)
		pt.patchCoverings(in, dirty, &st)
		pt.patchWeights(in, dirty, &st)
	}
	return pt.prob, pt.vm, st
}

// rebuild performs the full Build and records the layout and shadows.
func (pt *Patcher) rebuild(in *netmodel.Instance, opts Options) {
	pt.prob, pt.vm = Build(in, opts)
	pt.prob.Precompute()
	pt.s, pt.r, pt.d = in.Dims()
	pt.opts = opts
	pt.haveOpts = true
	pt.Builds++

	// Row layout mirrors Build's emission order:
	//   (1) S*R rows, (2) R*D rows, (3) R rows,
	//   (4) kCount rows per reflector when CuttingPlane (only nonempty
	//       commodities get a row — commodity assignment never changes),
	//   (5) D rows under FixedShape, then (8)/(9) (never patched).
	S, R, D := pt.s, pt.r, pt.d
	pt.base3 = S*R + R*D
	pt.byCommodity = in.SinksOfCommodity()
	pt.kRank = make([]int, S)
	pt.kCount = 0
	for k := 0; k < S; k++ {
		if len(pt.byCommodity[k]) == 0 {
			pt.kRank[k] = -1
			continue
		}
		pt.kRank[k] = pt.kCount
		pt.kCount++
	}
	pt.base5 = pt.base3 + R
	if opts.CuttingPlane {
		pt.base5 += R * pt.kCount
	}
	pt.posInK = make([]int, D)
	for _, sinks := range pt.byCommodity {
		for pos, j := range sinks {
			pt.posInK[j] = pos
		}
	}
	pt.fanout = append(pt.fanout[:0], in.Fanout...)
}

// patchFanout value-diffs the fanout shadow and rewrites the -F_i
// coefficients of constraint (3) and every cutting plane (4) of a changed
// reflector.
func (pt *Patcher) patchFanout(in *netmodel.Instance, st *PatchStats) {
	for i, f := range in.Fanout {
		if f == pt.fanout[i] {
			continue
		}
		pt.fanout[i] = f
		// Row (3)_i: D sink coefficients then the z_i coefficient.
		if pt.prob.SetRowCoef(pt.base3+i, pt.d, -f) {
			st.Coefs++
		}
		if pt.opts.CuttingPlane {
			for k := 0; k < pt.s; k++ {
				rank := pt.kRank[k]
				if rank < 0 {
					continue
				}
				// Row (4)_{i,k}: the sinks of k, then the y^k_i coefficient.
				r := pt.base3 + pt.r + i*pt.kCount + rank
				if pt.prob.SetRowCoef(r, len(pt.byCommodity[k]), -f) {
					st.Coefs++
				}
			}
		}
	}
}

// patchWeights rewrites the fanout-load coefficients of demand units whose
// UnitWeight changed (the aggregation layer's dirty category): unit j's cell
// in constraint (3) of every reflector, and its cell in the commodity's
// cutting plane (4) when present.
func (pt *Patcher) patchWeights(in *netmodel.Instance, dirty *netmodel.DirtySet, st *PatchStats) {
	for _, j := range dirty.SinkWeight {
		load := in.UnitLoad(j)
		k := in.Commodity[j]
		rank := pt.kRank[k]
		for i := 0; i < pt.r; i++ {
			// Row (3)_i: D sink coefficients then the z_i coefficient.
			if pt.prob.SetRowCoef(pt.base3+i, j, load) {
				st.Coefs++
			}
			if pt.opts.CuttingPlane && rank >= 0 {
				r := pt.base3 + pt.r + i*pt.kCount + rank
				if pt.prob.SetRowCoef(r, pt.posInK[j], load) {
					st.Coefs++
				}
			}
		}
	}
}

// patchObjective rewrites the objective coefficients the dirty set lists,
// reading the (possibly stickiness-biased) values straight off the instance.
func (pt *Patcher) patchObjective(in *netmodel.Instance, dirty *netmodel.DirtySet, st *PatchStats) {
	setObj := func(j int, v float64) {
		if pt.prob.ObjectiveCoef(j) != v {
			pt.prob.SetObjectiveCoef(j, v)
			st.Obj++
		}
	}
	for _, i := range dirty.ReflectorCost {
		setObj(pt.vm.Z(i), in.ReflectorCost[i])
	}
	for _, a := range dirty.SrcRefCost {
		setObj(pt.vm.Y(a.A, a.B), in.SrcRefCost[a.A][a.B])
	}
	for _, a := range dirty.RefSinkCost {
		setObj(pt.vm.X(a.A, a.B), in.RefSinkCost[a.A][a.B])
	}
}

// patchCoverings refreshes the reliability covering rows (5): a changed
// threshold rewrites sink j's whole row (the demand caps every weight in
// it), a changed ref→sink loss rewrites one cell, and a changed src→ref
// loss rewrites that reflector's cell in every row of the commodity.
func (pt *Patcher) patchCoverings(in *netmodel.Instance, dirty *netmodel.DirtySet, st *PatchStats) {
	setCell := func(j, i int) {
		v := 0.0
		if in.Threshold[j] > 0 {
			v = in.CappedWeight(i, j)
		}
		if pt.prob.SetRowCoef(pt.base5+j, i, v) {
			st.Coefs++
		}
	}
	for _, j := range dirty.SinkDemand {
		r := pt.base5 + j
		if _, rhs := pt.prob.RHS(r); rhs != coveringRHS(in, j) {
			pt.prob.SetRHS(r, coveringRHS(in, j))
			st.RHS++
		}
		for i := 0; i < pt.r; i++ {
			setCell(j, i)
		}
	}
	for _, a := range dirty.RefSinkLoss {
		setCell(a.B, a.A)
	}
	for _, a := range dirty.SrcRefLoss {
		k, i := a.A, a.B
		for _, j := range pt.byCommodity[k] {
			setCell(j, i)
		}
	}
}
