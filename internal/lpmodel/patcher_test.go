package lpmodel_test

// Golden equivalence for the incremental LP rebuild: after EVERY event of
// EVERY library scenario, the Patcher's problem must be semantically
// identical — same matrix values in the same pattern, same relations and
// right-hand sides, same bounds, same objective — to a fresh
// Build(in, opts) of the mutated instance, and solving both must yield
// bit-identical optima. This is the lock that lets the live engine trust
// lp-patch output byte-for-byte.

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/live"
	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
)

// requireProblemsEqual compares two problems cell by cell with exact float
// equality (patches recompute values through the same expressions Build
// uses, so they must agree to the bit).
func requireProblemsEqual(t *testing.T, got, want *lp.Problem, ctx string) {
	t.Helper()
	if got.NumVars() != want.NumVars() {
		t.Fatalf("%s: vars %d != %d", ctx, got.NumVars(), want.NumVars())
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: rows %d != %d", ctx, got.NumRows(), want.NumRows())
	}
	for j := 0; j < want.NumVars(); j++ {
		if got.ObjectiveCoef(j) != want.ObjectiveCoef(j) {
			t.Fatalf("%s: objective[%d] %.17g != %.17g", ctx, j, got.ObjectiveCoef(j), want.ObjectiveCoef(j))
		}
		glo, ghi := got.Bounds(j)
		wlo, whi := want.Bounds(j)
		if glo != wlo || ghi != whi {
			t.Fatalf("%s: bounds[%d] [%g,%g] != [%g,%g]", ctx, j, glo, ghi, wlo, whi)
		}
	}
	for r := 0; r < want.NumRows(); r++ {
		grel, grhs := got.RHS(r)
		wrel, wrhs := want.RHS(r)
		if grel != wrel || grhs != wrhs {
			t.Fatalf("%s: row %d rhs %v %.17g != %v %.17g", ctx, r, grel, grhs, wrel, wrhs)
		}
		if got.RowLen(r) != want.RowLen(r) {
			t.Fatalf("%s: row %d has %d coefs, want %d", ctx, r, got.RowLen(r), want.RowLen(r))
		}
		for q := 0; q < want.RowLen(r); q++ {
			gc, wc := got.RowCoef(r, q), want.RowCoef(r, q)
			if gc.Var != wc.Var || gc.Val != wc.Val {
				t.Fatalf("%s: row %d coef %d: (%d,%.17g) != (%d,%.17g)", ctx, r, q, gc.Var, gc.Val, wc.Var, wc.Val)
			}
		}
	}
	if err := got.CheckCSCSync(); err != nil {
		t.Fatalf("%s: patched CSC out of sync: %v", ctx, err)
	}
}

// TestPatcherGoldenEquivalenceAcrossScenarios replays every library
// scenario's delta schedule through one Patcher per scenario and checks the
// patched problem against a fresh Build after every event.
func TestPatcherGoldenEquivalenceAcrossScenarios(t *testing.T) {
	for _, name := range live.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := live.Make(name, 11, 16)
			if err != nil {
				t.Fatal(err)
			}
			in := sc.Base.Clone()
			opts := lpmodel.DefaultOptions(in)
			opts.FixedShape = true
			pt := lpmodel.NewPatcher()
			prob, _, st := pt.Sync(in, opts, nil)
			if !st.Rebuilt {
				t.Fatal("first sync must be a full build")
			}
			fresh, _ := lpmodel.Build(in, opts)
			requireProblemsEqual(t, prob, fresh, "initial build")

			for evi, ev := range sc.Events {
				dirty, err := ev.Delta.Apply(in)
				if err != nil {
					t.Fatal(err)
				}
				prob, _, st = pt.Sync(in, opts, dirty)
				if st.Rebuilt {
					t.Fatalf("event %d (%s): sync rebuilt instead of patching", evi, ev.Delta.Note)
				}
				fresh, _ := lpmodel.Build(in, opts)
				requireProblemsEqual(t, prob, fresh, ev.Delta.Note)
			}
			t.Logf("%s: %d events patched across %d syncs (%d full builds)", name, len(sc.Events), pt.Syncs, pt.Builds)
		})
	}
}

// TestPatcherSolveBitIdentical solves the patched problem and the fresh
// build at a few points of a flash-crowd timeline and demands bit-identical
// solution vectors, objectives, and pivot counts.
func TestPatcherSolveBitIdentical(t *testing.T) {
	sc := live.FlashCrowd(5, 14)
	in := sc.Base.Clone()
	opts := lpmodel.DefaultOptions(in)
	opts.FixedShape = true
	pt := lpmodel.NewPatcher()
	pt.Sync(in, opts, nil)

	for evi, ev := range sc.Events {
		dirty, err := ev.Delta.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		prob, _, _ := pt.Sync(in, opts, dirty)
		if evi%3 != 0 {
			continue // solving every event would dominate the test's runtime
		}
		fresh, _ := lpmodel.Build(in, opts)
		sp, err := prob.Solve()
		if err != nil {
			t.Fatal(err)
		}
		sf, err := fresh.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sp.Status != sf.Status || sp.Iterations != sf.Iterations {
			t.Fatalf("event %d: status/pivots differ: %v/%d vs %v/%d",
				evi, sp.Status, sp.Iterations, sf.Status, sf.Iterations)
		}
		if math.Float64bits(sp.Objective) != math.Float64bits(sf.Objective) {
			t.Fatalf("event %d: objective %.17g != %.17g", evi, sp.Objective, sf.Objective)
		}
		for j := range sp.X {
			if math.Float64bits(sp.X[j]) != math.Float64bits(sf.X[j]) {
				t.Fatalf("event %d: x[%d] %.17g != %.17g", evi, j, sp.X[j], sf.X[j])
			}
		}
	}
}

// TestPatcherBiasFlipsViaDirtySet covers the stickiness path: cost
// discounts applied outside the delta flow are reported through
// DiffDesigns-style dirty entries, and the patched problem must match a
// fresh build of the biased instance.
func TestPatcherBiasFlipsViaDirtySet(t *testing.T) {
	in := gen.Clustered(gen.DefaultClustered(2, 2, 2, 5), 3)
	opts := lpmodel.DefaultOptions(in)
	opts.FixedShape = true
	pt := lpmodel.NewPatcher()
	pt.Sync(in, opts, nil)

	// "Deploy" a design and discount its arcs, as core.Reoptimize does.
	d := netmodel.NewDesign(in)
	d.Serve[0][0] = true
	d.Serve[1][3] = true
	d.Normalize(in)
	biased := in.Clone()
	keep := 0.6
	dirty := netmodel.DiffDesigns(nil, d)
	for _, i := range dirty.ReflectorCost {
		biased.ReflectorCost[i] *= keep
	}
	for _, a := range dirty.SrcRefCost {
		biased.SrcRefCost[a.A][a.B] *= keep
	}
	for _, a := range dirty.RefSinkCost {
		biased.RefSinkCost[a.A][a.B] *= keep
	}
	prob, _, st := pt.Sync(biased, opts, dirty)
	if st.Rebuilt || st.Obj == 0 {
		t.Fatalf("bias sync: rebuilt=%v obj patches=%d", st.Rebuilt, st.Obj)
	}
	fresh, _ := lpmodel.Build(biased, opts)
	requireProblemsEqual(t, prob, fresh, "biased")
}

// TestPatcherRebuildsOnShapeOrOptionChange: a different instance shape or
// different model options must fall back to a full Build, never a stale
// patch.
func TestPatcherRebuildsOnShapeOrOptionChange(t *testing.T) {
	a := gen.Uniform(gen.DefaultUniform(2, 4, 6), 1)
	b := gen.Uniform(gen.DefaultUniform(2, 4, 8), 1)
	opts := lpmodel.DefaultOptions(a)
	opts.FixedShape = true
	pt := lpmodel.NewPatcher()
	if _, _, st := pt.Sync(a, opts, nil); !st.Rebuilt {
		t.Fatal("first sync must build")
	}
	if _, _, st := pt.Sync(b, opts, nil); !st.Rebuilt {
		t.Fatal("shape change must rebuild")
	}
	opts2 := opts
	opts2.CuttingPlane = false
	if _, _, st := pt.Sync(b, opts2, nil); !st.Rebuilt {
		t.Fatal("option change must rebuild")
	}
	if !pt.NeedsRebuild(a, opts) {
		t.Fatal("NeedsRebuild must report the pending rebuild")
	}
	if pt.NeedsRebuild(b, opts2) {
		t.Fatal("NeedsRebuild must be false for the current shape+options")
	}
}
