package lpmodel

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/netmodel"
)

func TestVarMapLayout(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 3, 4), 1)
	m := NewVarMap(in)
	if m.N != 3+2*3+3*4 {
		t.Fatalf("N = %d", m.N)
	}
	seen := make(map[int]bool)
	check := func(idx int) {
		if idx < 0 || idx >= m.N || seen[idx] {
			t.Fatalf("index collision or out of range: %d", idx)
		}
		seen[idx] = true
	}
	for i := 0; i < 3; i++ {
		check(m.Z(i))
	}
	for k := 0; k < 2; k++ {
		for i := 0; i < 3; i++ {
			check(m.Y(k, i))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			check(m.X(i, j))
		}
	}
	if len(seen) != m.N {
		t.Fatalf("covered %d of %d indices", len(seen), m.N)
	}
}

func TestSolveLPBasics(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 5, 8), 3)
	fs, err := SolveLP(in, DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Cost <= 0 {
		t.Fatalf("LP cost = %v", fs.Cost)
	}
	// Structured solution must respect the constraints it was built from.
	for i := range fs.X {
		for j := range fs.X[i] {
			k := in.Commodity[j]
			if fs.X[i][j] > fs.Y[k][i]+1e-6 {
				t.Fatalf("x > y at (%d,%d)", i, j)
			}
		}
	}
	for k := range fs.Y {
		for i := range fs.Y[k] {
			if fs.Y[k][i] > fs.Z[i]+1e-6 {
				t.Fatalf("y > z at (%d,%d)", k, i)
			}
		}
	}
	// Covering: Σ w x ≥ W per sink.
	for j := 0; j < in.NumSinks; j++ {
		got := 0.0
		for i := 0; i < in.NumReflectors; i++ {
			got += in.CappedWeight(i, j) * fs.X[i][j]
		}
		if got < in.Demand(j)-1e-5 {
			t.Fatalf("sink %d covered %v < %v", j, got, in.Demand(j))
		}
	}
	// Fanout: Σ_j x ≤ F_i z_i.
	for i := 0; i < in.NumReflectors; i++ {
		use := 0.0
		for j := 0; j < in.NumSinks; j++ {
			use += fs.X[i][j]
		}
		if use > in.Fanout[i]*fs.Z[i]+1e-5 {
			t.Fatalf("reflector %d fanout %v > %v", i, use, in.Fanout[i]*fs.Z[i])
		}
	}
	// CostOf must agree with the LP objective.
	if math.Abs(fs.CostOf(in)-fs.Cost) > 1e-6 {
		t.Fatalf("CostOf=%v vs Cost=%v", fs.CostOf(in), fs.Cost)
	}
}

func TestCuttingPlaneNeverRaisesLP(t *testing.T) {
	// Constraint (4) is implied by (1),(2),(3),(6) in the IP (Claim 2.1)
	// but in the *LP* it can cut off fractional points, so LP cost with
	// the plane is ≥ without; and both are ≤ IP. Verify the ordering.
	in := gen.Uniform(gen.DefaultUniform(2, 4, 6), 5)
	with, err := SolveLP(in, Options{CuttingPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := SolveLP(in, Options{CuttingPlane: false})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cost < without.Cost-1e-6 {
		t.Fatalf("cutting plane lowered the LP: %v < %v", with.Cost, without.Cost)
	}
}

func TestColorConstraintsBind(t *testing.T) {
	// Two reflectors of the same color, a sink needing two copies: with
	// colors on, the LP must spread across colors or pay for it.
	in := netmodel.NewZeroInstance(1, 3, 1)
	for i := 0; i < 3; i++ {
		in.ReflectorCost[i] = 1
		in.Fanout[i] = 5
		in.SrcRefLoss[0][i] = 0.1
		in.SrcRefCost[0][i] = 0
		in.RefSinkLoss[i][0] = 0.1
		in.RefSinkCost[i][0] = 0
	}
	// Third reflector is expensive: un-colored LP would prefer the two
	// cheap same-color ones.
	in.ReflectorCost[2] = 50
	in.Commodity[0] = 0
	// Demand two clean copies: failure per path ~0.19; need (0.19)^2.
	in.Threshold[0] = 1 - 0.19*0.19*1.05
	in.Color = []int{0, 0, 1}
	in.NumColors = 2

	plain, err := SolveLP(in, Options{CuttingPlane: true, Colors: false})
	if err != nil {
		t.Fatal(err)
	}
	colored, err := SolveLP(in, Options{CuttingPlane: true, Colors: true})
	if err != nil {
		t.Fatal(err)
	}
	if colored.Cost <= plain.Cost+1e-9 {
		t.Fatalf("color constraint should raise cost: %v vs %v", colored.Cost, plain.Cost)
	}
	// With colors, x from color-0 reflectors must total ≤ 1.
	if colored.X[0][0]+colored.X[1][0] > 1+1e-6 {
		t.Fatalf("color cap violated in LP: %v", colored.X[0][0]+colored.X[1][0])
	}
}

func TestEdgeCapsAsBounds(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 3), 2)
	in.EdgeCap = [][]float64{{0.5, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	fs, err := SolveLP(in, DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	if fs.X[0][0] > 0.5+1e-9 {
		t.Fatalf("edge cap ignored: x=%v", fs.X[0][0])
	}
}

func TestInfeasibleLPReported(t *testing.T) {
	in := netmodel.NewZeroInstance(1, 1, 1)
	in.ReflectorCost[0] = 1
	in.Fanout[0] = 1
	in.SrcRefLoss[0][0] = 0.5
	in.RefSinkLoss[0][0] = 0.5
	in.SrcRefCost[0][0] = 1
	in.RefSinkCost[0][0] = 1
	in.Threshold[0] = 0.99999 // one 75%-loss path cannot reach five nines
	_, err := SolveLP(in, DefaultOptions(in))
	if err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestBandwidthExtensionScalesFanout(t *testing.T) {
	// §6.1: a stream with B=2 consumes twice the fanout.
	in := gen.Uniform(gen.DefaultUniform(2, 3, 6), 8)
	base, err := SolveLP(in, DefaultOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	heavy := in.Clone()
	heavy.Bandwidth = []float64{2, 2}
	bw, err := SolveLP(heavy, DefaultOptions(heavy))
	if err != nil {
		// Heavier streams can make the instance infeasible; that is a
		// legitimate outcome for this random instance.
		t.Skipf("heavy instance infeasible: %v", err)
	}
	if bw.Cost < base.Cost-1e-9 {
		t.Fatalf("doubling bandwidth cannot lower cost: %v < %v", bw.Cost, base.Cost)
	}
}

func TestUnpackClamps(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 2, 2), 1)
	m := NewVarMap(in)
	x := make([]float64, m.N)
	x[m.Z(0)] = 1.0000001
	x[m.X(0, 0)] = -1e-9
	fs := Unpack(in, m, x, 0, 0)
	if fs.Z[0] != 1 || fs.X[0][0] != 0 {
		t.Fatal("Unpack must clamp to [0,1]")
	}
}

func TestBuildRowCount(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 3, 4), 1)
	p, _ := Build(in, Options{CuttingPlane: true})
	// rows: (1) S*R + (2) R*D + (3) R + (4) R*S(nonempty commodities) +
	// (5) D
	want := 2*3 + 3*4 + 3 + 3*2 + 4
	if p.NumRows() != want {
		t.Fatalf("rows = %d, want %d", p.NumRows(), want)
	}
	var _ = lp.LE
}

func TestFixedShapePinsRowsAndOptimum(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 4, 6), 11)
	// Deactivate two sinks: the default build drops their covering rows,
	// the fixed-shape build keeps degenerate 0 >= 0 rows in their place.
	in.Threshold[1] = 0
	in.Threshold[4] = 0
	opts := DefaultOptions(in)
	pDef, _ := Build(in, opts)
	opts.FixedShape = true
	pFix, _ := Build(in, opts)
	if pFix.NumRows() != pDef.NumRows()+2 {
		t.Fatalf("fixed-shape rows = %d, default = %d, want +2", pFix.NumRows(), pDef.NumRows())
	}
	// Shape must depend only on dimensions: reactivating every sink keeps
	// the fixed-shape row count unchanged.
	all := in.Clone()
	all.Threshold[1] = 0.99
	all.Threshold[4] = 0.99
	pAll, _ := Build(all, Options{CuttingPlane: true, FixedShape: true})
	if pAll.NumRows() != pFix.NumRows() {
		t.Fatalf("row count moved with thresholds: %d vs %d", pAll.NumRows(), pFix.NumRows())
	}
	// The dead rows are inert: optima agree.
	sDef, err := pDef.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sFix, err := pFix.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if diff := sDef.Objective - sFix.Objective; diff > 1e-7 || diff < -1e-7 {
		t.Fatalf("fixed-shape optimum %.9f != default %.9f", sFix.Objective, sDef.Objective)
	}
	// And a basis from one fixed-shape solve warm-starts the reactivated
	// model (same shape) without error.
	mopts := Options{CuttingPlane: true, FixedShape: true, WarmStart: sFix.Basis}
	if _, err := SolveLP(all, mopts); err != nil {
		t.Fatal(err)
	}
}

// TestCapRowAndCapDuals locks the capacity-row arithmetic and the dual
// plumbing: VarMap.CapRow must point at the row whose coefficient pattern is
// constraint (3) — D unit loads then −F_i on z_i — and the CapDuals a solve
// returns must be sign-correct shadow prices obeying complementary
// slackness on the capacity rows.
func TestCapRowAndCapDuals(t *testing.T) {
	cfg := gen.DefaultUniform(2, 4, 12)
	cfg.FanoutLo, cfg.FanoutHi = 3, 4 // tight capacity: some rows must bind
	in := gen.Uniform(cfg, 11)
	p, m := Build(in, DefaultOptions(in))
	S, R, D := in.Dims()
	for i := 0; i < R; i++ {
		r := m.CapRow(i)
		if r != S*R+R*D+i {
			t.Fatalf("CapRow(%d) = %d, want %d", i, r, S*R+R*D+i)
		}
		if p.RowLen(r) != D+1 {
			t.Fatalf("capacity row %d has %d coefficients, want %d", i, p.RowLen(r), D+1)
		}
		zc := p.RowCoef(r, D)
		if zc.Var != m.Z(i) || zc.Val != -in.Fanout[i] {
			t.Fatalf("capacity row %d: z coefficient %+v, want var %d val %g", i, zc, m.Z(i), -in.Fanout[i])
		}
	}
	fs, err := SolveBuiltOpts(in, p, m, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.CapDuals) != R {
		t.Fatalf("CapDuals has %d entries, want %d", len(fs.CapDuals), R)
	}
	bound := 0
	for i := 0; i < R; i++ {
		y := fs.CapDuals[i]
		if y > 1e-7 {
			t.Fatalf("reflector %d: capacity dual %g > 0 on a ≤ row of a minimization", i, y)
		}
		use := 0.0
		for j := 0; j < D; j++ {
			use += in.UnitLoad(j) * fs.X[i][j]
		}
		slack := in.Fanout[i]*fs.Z[i] - use
		if math.Abs(y*slack) > 1e-5*(1+in.Fanout[i]) {
			t.Fatalf("reflector %d: dual %g with slack %g violates complementary slackness", i, y, slack)
		}
		if y < -1e-7 {
			bound++
		}
	}
	if bound == 0 {
		t.Fatal("tight-capacity instance produced no binding capacity row — the duals test is vacuous")
	}
}
