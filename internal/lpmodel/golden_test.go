package lpmodel

// Golden tests for the sparse revised simplex on the actual overlay
// relaxations: every instance family must reproduce the dense reference
// solver's optimum within 1e-6, and warm-started re-solves must agree with
// cold ones.

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/lp"
	"repro/internal/netmodel"
)

// overlayFixtures returns the instance set the golden comparisons run on:
// uniform shapes across sizes, a clustered instance with §6.4 colors, and
// a bandwidth-heterogeneous one.
func overlayFixtures() []*netmodel.Instance {
	return []*netmodel.Instance{
		gen.Uniform(gen.DefaultUniform(1, 4, 8), 11),
		gen.Uniform(gen.DefaultUniform(2, 6, 12), 12),
		gen.Uniform(gen.DefaultUniform(2, 8, 20), 3), // the T7 benchmark instance
		gen.Uniform(gen.DefaultUniform(3, 10, 28), 13),
		gen.Clustered(gen.DefaultClustered(2, 2, 2, 4), 5),
	}
}

func TestSparseMatchesDenseOnOverlayLPs(t *testing.T) {
	for fi, in := range overlayFixtures() {
		opts := DefaultOptions(in)
		p, _ := Build(in, opts)
		sparse, err := p.Solve()
		if err != nil {
			t.Fatalf("fixture %d: sparse: %v", fi, err)
		}
		pd, _ := Build(in, opts)
		dense, err := pd.SolveOpts(lp.Options{Dense: true})
		if err != nil {
			t.Fatalf("fixture %d: dense: %v", fi, err)
		}
		if sparse.Status != lp.Optimal || dense.Status != lp.Optimal {
			t.Fatalf("fixture %d: status sparse=%v dense=%v", fi, sparse.Status, dense.Status)
		}
		if math.Abs(sparse.Objective-dense.Objective) > 1e-6 {
			t.Fatalf("fixture %d: sparse %.9f != dense %.9f", fi, sparse.Objective, dense.Objective)
		}
		if err := p.CheckFeasible(sparse.X, 1e-6); err != nil {
			t.Fatalf("fixture %d: sparse point infeasible: %v", fi, err)
		}
	}
}

// TestDevexMatchesDantzigOnOverlayLPs: on the actual overlay relaxations
// the default devex pricing must reach the same optimum as Dantzig pricing
// to solver tolerance (the pivot paths differ, so the last few ulps may).
func TestDevexMatchesDantzigOnOverlayLPs(t *testing.T) {
	for fi, in := range overlayFixtures() {
		opts := DefaultOptions(in)
		pv, _ := Build(in, opts)
		dv, err := pv.SolveOpts(lp.Options{Pricing: lp.DevexPricing})
		if err != nil {
			t.Fatalf("fixture %d: devex: %v", fi, err)
		}
		pz, _ := Build(in, opts)
		dz, err := pz.SolveOpts(lp.Options{Pricing: lp.DantzigPricing})
		if err != nil {
			t.Fatalf("fixture %d: dantzig: %v", fi, err)
		}
		if dv.Status != lp.Optimal || dz.Status != lp.Optimal {
			t.Fatalf("fixture %d: status devex=%v dantzig=%v", fi, dv.Status, dz.Status)
		}
		if math.Abs(dv.Objective-dz.Objective) > 1e-9*(1+math.Abs(dz.Objective)) {
			t.Fatalf("fixture %d: devex %.17g != dantzig %.17g", fi, dv.Objective, dz.Objective)
		}
		if err := pv.CheckFeasible(dv.X, 1e-6); err != nil {
			t.Fatalf("fixture %d: devex point infeasible: %v", fi, err)
		}
	}
}

// TestWarmStartAcrossRebuiltModel: a basis captured from one SolveLP call
// must warm-start a freshly built model of the same instance (the shape is
// identical even though the Problem object is new) and reach the same
// optimum with almost no work.
func TestWarmStartAcrossRebuiltModel(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 6, 12), 12)
	opts := DefaultOptions(in)
	cold, err := SolveLP(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Basis == nil {
		t.Fatal("SolveLP returned nil basis")
	}
	wopts := opts
	wopts.WarmStart = cold.Basis
	warm, err := SolveLP(in, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Cost-cold.Cost) > 1e-6 {
		t.Fatalf("warm cost %.9f != cold cost %.9f", warm.Cost, cold.Cost)
	}
	if warm.Iterations > 2 {
		t.Fatalf("warm re-solve of the identical model took %d pivots", warm.Iterations)
	}
}

// TestWarmStartAfterCostScaling mirrors the Reoptimize workload at the
// lpmodel layer: discount some arc costs (stickiness) and re-solve warm.
func TestWarmStartAfterCostScaling(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	opts := DefaultOptions(in)
	base, err := SolveLP(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	biased := in.Clone()
	for i := 0; i < biased.NumReflectors; i++ {
		for j := 0; j < biased.NumSinks; j++ {
			if (i+j)%2 == 0 {
				biased.RefSinkCost[i][j] *= 0.6
			}
		}
	}
	coldB, err := SolveLP(biased, opts)
	if err != nil {
		t.Fatal(err)
	}
	wopts := opts
	wopts.WarmStart = base.Basis
	warmB, err := SolveLP(biased, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warmB.Cost-coldB.Cost) > 1e-6 {
		t.Fatalf("warm cost %.9f != cold cost %.9f", warmB.Cost, coldB.Cost)
	}
	if warmB.Iterations >= coldB.Iterations {
		t.Fatalf("warm start did not reduce pivots: warm=%d cold=%d", warmB.Iterations, coldB.Iterations)
	}
	t.Logf("cost-scaled re-solve: warm=%d cold=%d pivots", warmB.Iterations, coldB.Iterations)
}

// BenchmarkOverlayLPSparseVsDense compares the solvers on the §2
// relaxation of the T7 benchmark instance (the acceptance workload).
func BenchmarkOverlayLPSparseVsDense(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	bench := func(b *testing.B, o lp.Options) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, _ := Build(in, DefaultOptions(in))
			if _, err := p.SolveOpts(o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sparse", func(b *testing.B) { bench(b, lp.Options{}) })
	b.Run("dense", func(b *testing.B) { bench(b, lp.Options{Dense: true}) })
}

// BenchmarkOverlayLPWarmVsCold measures the warm-start payoff on a
// cost-scaled re-solve (the churn workload).
func BenchmarkOverlayLPWarmVsCold(b *testing.B) {
	in := gen.Uniform(gen.DefaultUniform(2, 8, 20), 3)
	base, err := SolveLP(in, DefaultOptions(in))
	if err != nil {
		b.Fatal(err)
	}
	biased := in.Clone()
	for i := 0; i < biased.NumReflectors; i++ {
		for j := 0; j < biased.NumSinks; j++ {
			if (i+j)%2 == 0 {
				biased.RefSinkCost[i][j] *= 0.6
			}
		}
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := DefaultOptions(biased)
			opts.WarmStart = base.Basis
			if _, err := SolveLP(biased, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveLP(biased, DefaultOptions(biased)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
