// Package lpmodel builds the linear-programming relaxation of the paper's
// integer program (§2) from a netmodel.Instance, and maps solver vectors
// back into structured fractional solutions.
//
// Variable layout (exploiting the §2 WLOG that each sink demands exactly one
// commodity, so x^k_{ij} exists only for k = Commodity[j]):
//
//	z_i           i ∈ [0,R)              — build reflector i
//	y^k_i         k ∈ [0,S), i ∈ [0,R)   — stream k delivered to reflector i
//	x_{ij}        i ∈ [0,R), j ∈ [0,D)   — sink j served via reflector i
//
// Constraints (numbers follow the paper):
//
//	(1) y^k_i ≤ z_i
//	(2) x_{ij} ≤ y^{c(j)}_i
//	(3) Σ_j B^{c(j)} x_{ij} ≤ F_i z_i            (§6.1 form; B ≡ 1 by default)
//	(4) Σ_{j: c(j)=k} B^k x_{ij} ≤ F_i y^k_i     (the cutting plane)
//	(5) Σ_i x_{ij} w_{ij} ≥ W_j                  (reliability covering)
//	(7') x_{ij} ≤ u_{ij}                          (§6.3, as variable bounds)
//	(9) Σ_{i ∈ R_ℓ} x_{ij} ≤ 1   ∀j, ∀ color ℓ  (§6.4)
//	(10) Σ_{j ∈ g} x_{ij} ≤ u_{ig}  ∀i, ∀ multi-stream sink g — the native
//	     shared-arc capacity coupling the copy-split WLOG cannot express
package lpmodel

import (
	"errors"
	"fmt"

	"repro/internal/lp"
	"repro/internal/netmodel"
)

// ErrInfeasible is wrapped by SolveBuilt/SolveLP when the LP relaxation has
// no feasible point. Callers that react to infeasibility structurally — the
// shard coordination pass grants a starved shard more reflector capacity and
// re-solves — match it with errors.Is instead of parsing messages.
var ErrInfeasible = errors.New("infeasible")

// Options selects model features.
type Options struct {
	// CuttingPlane includes constraint (4). The IP does not need it
	// (Claim 2.1) but the rounding analysis does; experiments can switch
	// it off to measure its effect.
	CuttingPlane bool
	// Colors includes constraints (9) when the instance has colors.
	Colors bool
	// EdgeCaps applies §6.3 capacities as upper bounds on x when the
	// instance has them.
	EdgeCaps bool
	// Integral restricts variables to {0,1}; used only by the
	// branch-and-bound solver, which adds the integrality by branching
	// (the LP itself stays continuous).
	Integral bool
	// WarmStart seeds the simplex from a basis captured by a previous
	// solve of a same-shaped model (same instance dimensions — costs may
	// differ, as in churn re-optimization). Invalid bases degrade to a
	// cold solve inside the solver.
	WarmStart *lp.Basis
	// FixedShape emits the reliability covering row (5) for every sink,
	// including zero-demand (inactive) ones, whose rows degenerate to the
	// trivially satisfied 0 ≥ 0 (their coefficients are structural zeros,
	// arithmetic no-ops for the simplex). This pins both the LP shape AND
	// the constraint-matrix sparsity pattern to the instance dimensions
	// alone, so a simplex basis stays warm-start compatible across sink
	// join/leave churn and a Patcher can refresh coefficients in place
	// (the live engine's workload). Off by default: static solves skip the
	// dead rows.
	FixedShape bool
	// Pricing selects the simplex entering rule (default lp.DevexPricing);
	// RefactorEvery overrides the refactorization cadence (0 = solver
	// default); RefactorOnInstall forces warm starts to refactorize instead
	// of adopting a persisted factorization. All three pass straight through
	// to lp.Options — they tune the solver, not the model, so sameModelOpts
	// ignores them.
	Pricing           lp.Pricing
	RefactorEvery     int
	RefactorOnInstall bool
}

// DefaultOptions enables every feature present in the instance.
func DefaultOptions(in *netmodel.Instance) Options {
	return Options{
		CuttingPlane: true,
		Colors:       in.Color != nil,
		EdgeCaps:     in.EdgeCap != nil,
	}
}

// VarMap locates structured variables inside the flat LP vector.
type VarMap struct {
	S, R, D int
	// ZOff + i
	ZOff int
	// YOff + k*R + i
	YOff int
	// XOff + i*D + j
	XOff int
	// Total variable count.
	N int
}

// Z returns the index of z_i.
func (m *VarMap) Z(i int) int { return m.ZOff + i }

// Y returns the index of y^k_i.
func (m *VarMap) Y(k, i int) int { return m.YOff + k*m.R + i }

// X returns the index of x_{ij}.
func (m *VarMap) X(i, j int) int { return m.XOff + i*m.D + j }

// CapRow returns the LP row index of reflector i's fanout-capacity
// constraint (3). Build emits rows in a fixed order — the S·R rows of (1),
// the R·D rows of (2), then the R capacity rows — so the index is pure
// arithmetic and holds for every Options combination (the optional row
// families all come after). The price-exchange coordination reads shadow
// prices off exactly these rows.
func (m *VarMap) CapRow(i int) int { return m.S*m.R + m.R*m.D + i }

// NewVarMap lays out variables for an instance.
func NewVarMap(in *netmodel.Instance) *VarMap {
	S, R, D := in.Dims()
	m := &VarMap{S: S, R: R, D: D}
	m.ZOff = 0
	m.YOff = R
	m.XOff = R + S*R
	m.N = R + S*R + R*D
	return m
}

// Build constructs the LP relaxation. The returned problem minimizes the §2
// objective over [0,1] variables.
func Build(in *netmodel.Instance, opts Options) (*lp.Problem, *VarMap) {
	S, R, D := in.Dims()
	m := NewVarMap(in)
	p := lp.NewProblem(m.N)

	// Objective and bounds.
	for i := 0; i < R; i++ {
		p.SetObjectiveCoef(m.Z(i), in.ReflectorCost[i])
		p.SetBounds(m.Z(i), 0, 1)
	}
	for k := 0; k < S; k++ {
		for i := 0; i < R; i++ {
			p.SetObjectiveCoef(m.Y(k, i), in.SrcRefCost[k][i])
			p.SetBounds(m.Y(k, i), 0, 1)
		}
	}
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			p.SetObjectiveCoef(m.X(i, j), in.RefSinkCost[i][j])
			hi := 1.0
			if opts.EdgeCaps && in.EdgeCap != nil && in.EdgeCap[i][j] < 1 {
				hi = in.EdgeCap[i][j]
			}
			p.SetBounds(m.X(i, j), 0, hi)
		}
	}

	// (1) y ≤ z.
	for k := 0; k < S; k++ {
		for i := 0; i < R; i++ {
			p.AddConstraint(lp.LE, 0, lp.Coef{Var: m.Y(k, i), Val: 1}, lp.Coef{Var: m.Z(i), Val: -1})
		}
	}
	// (2) x ≤ y.
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			p.AddConstraint(lp.LE, 0,
				lp.Coef{Var: m.X(i, j), Val: 1},
				lp.Coef{Var: m.Y(in.Commodity[j], i), Val: -1})
		}
	}
	// (3) Σ_j w_j B x ≤ F_i z_i — per-unit loads, so a weighted aggregate
	// (internal/agg) reserves fanout for every member behind the unit.
	for i := 0; i < R; i++ {
		coefs := make([]lp.Coef, 0, D+1)
		for j := 0; j < D; j++ {
			coefs = append(coefs, lp.Coef{Var: m.X(i, j), Val: in.UnitLoad(j)})
		}
		coefs = append(coefs, lp.Coef{Var: m.Z(i), Val: -in.Fanout[i]})
		p.AddConstraint(lp.LE, 0, coefs...)
	}
	// (4) per-commodity cutting plane.
	if opts.CuttingPlane {
		byCommodity := in.SinksOfCommodity()
		for i := 0; i < R; i++ {
			for k := 0; k < S; k++ {
				sinks := byCommodity[k]
				if len(sinks) == 0 {
					continue
				}
				coefs := make([]lp.Coef, 0, len(sinks)+1)
				for _, j := range sinks {
					coefs = append(coefs, lp.Coef{Var: m.X(i, j), Val: in.UnitLoad(j)})
				}
				coefs = append(coefs, lp.Coef{Var: m.Y(k, i), Val: -in.Fanout[i]})
				p.AddConstraint(lp.LE, 0, coefs...)
			}
		}
	}
	// (5) reliability covering with capped weights. Under FixedShape the
	// SPARSITY PATTERN is pinned too, not just the row count: every sink's
	// row carries all R coefficients, with structural zeros (arithmetic
	// no-ops for the simplex) standing in for inactive sinks. Sink
	// join/leave churn then changes coefficient VALUES only, which is what
	// lets the Patcher refresh the shared CSC in place instead of
	// rebuilding it.
	for j := 0; j < D; j++ {
		if opts.FixedShape {
			p.AddConstraint(lp.GE, coveringRHS(in, j), coveringCoefs(in, m, j)...)
			continue
		}
		if in.Threshold[j] <= 0 {
			continue
		}
		coefs := make([]lp.Coef, 0, R)
		for i := 0; i < R; i++ {
			w := in.CappedWeight(i, j)
			if w > 0 {
				coefs = append(coefs, lp.Coef{Var: m.X(i, j), Val: w})
			}
		}
		p.AddConstraint(lp.GE, in.Demand(j), coefs...)
	}
	// (8) §6.2 ingest caps: Σ_k y^k_i ≤ u_i. Kept in the LP (the
	// fractional optimum respects it); the rounding can only promise an
	// O(log n) violation, which the audit reports.
	if in.IngestCap != nil {
		for i := 0; i < R; i++ {
			coefs := make([]lp.Coef, 0, S)
			for k := 0; k < S; k++ {
				coefs = append(coefs, lp.Coef{Var: m.Y(k, i), Val: 1})
			}
			p.AddConstraint(lp.LE, in.IngestCap[i], coefs...)
		}
	}
	// (9) color constraints.
	if opts.Colors && in.Color != nil {
		byColor := make([][]int, in.NumColors)
		for i := 0; i < R; i++ {
			byColor[in.Color[i]] = append(byColor[in.Color[i]], i)
		}
		for j := 0; j < D; j++ {
			for _, group := range byColor {
				if len(group) < 2 {
					continue // a singleton group can never violate (9)
				}
				coefs := make([]lp.Coef, 0, len(group))
				for _, i := range group {
					coefs = append(coefs, lp.Coef{Var: m.X(i, j), Val: 1})
				}
				p.AddConstraint(lp.LE, 1, coefs...)
			}
		}
	}
	// (10) shared physical-arc capacity for multi-stream sinks: a §6.3 cap
	// u_{ij} is a property of the reflector→sink ARC, so a viewer's streams
	// share it — Σ_{j ∈ viewer g} x_{ij} ≤ u_{ig}. This is the one
	// constraint the paper's copy-split WLOG cannot express (each copy gets
	// a private cap); SplitStreams documents the weakening and the golden
	// tests pin both the equivalence without edge caps and the strict gap
	// with them. Emitted last so the Patcher's row layout for (1)–(5) is
	// unaffected; the rows themselves are static (deltas never edit caps).
	if opts.EdgeCaps && in.EdgeCap != nil && in.MultiStream() {
		for _, units := range in.ViewerUnits() {
			if len(units) < 2 {
				continue
			}
			for i := 0; i < R; i++ {
				cap := in.EdgeCap[i][units[0]] // constant across the viewer (validated)
				if cap >= float64(len(units)) {
					continue // cannot bind: each x is in [0,1]
				}
				coefs := make([]lp.Coef, 0, len(units))
				for _, j := range units {
					coefs = append(coefs, lp.Coef{Var: m.X(i, j), Val: 1})
				}
				p.AddConstraint(lp.LE, cap, coefs...)
			}
		}
	}
	return p, m
}

// coveringRHS returns the right-hand side of sink j's fixed-shape covering
// row: the weight demand W_j for active sinks, 0 (trivially satisfied) for
// inactive ones.
func coveringRHS(in *netmodel.Instance, j int) float64 {
	if in.Threshold[j] <= 0 {
		return 0
	}
	return in.Demand(j)
}

// coveringCoefs fills sink j's fixed-shape covering row: position i always
// holds variable X(i,j), with value CappedWeight(i,j) when the sink is
// active and 0 otherwise. The Patcher relies on this positional layout
// (patchCoverings rewrites cell i of row j in place through SetRowCoef).
func coveringCoefs(in *netmodel.Instance, m *VarMap, j int) []lp.Coef {
	R := m.R
	coefs := make([]lp.Coef, R)
	active := in.Threshold[j] > 0
	for i := 0; i < R; i++ {
		v := 0.0
		if active {
			v = in.CappedWeight(i, j)
		}
		coefs[i] = lp.Coef{Var: m.X(i, j), Val: v}
	}
	return coefs
}

// FracSolution is a structured fractional solution of the LP relaxation.
type FracSolution struct {
	Z    []float64   // ẑ_i
	Y    [][]float64 // ŷ[k][i]
	X    [][]float64 // x̂[i][j]
	Cost float64
	// Iterations reports simplex pivots (diagnostic for T7).
	Iterations int
	// Basis is the final simplex basis; feed it to Options.WarmStart to
	// accelerate a re-solve of a same-shaped model.
	Basis *lp.Basis
	// Stats counts solver factorization events (refactorizations, adopted
	// factorizations, devex resets) for the epoch telemetry.
	Stats lp.SolveStats
	// CapDuals[i] is the shadow price of reflector i's capacity row (3) at
	// the optimum: the rate of change of the optimal cost per unit of the
	// row's rhs, ≤ 0 when the capacity binds (relaxing it helps a
	// minimization) and 0 when it is slack. Nil when the solve produced no
	// duals (recovery paths that end on the dense reference solver). The
	// hierarchical shard coordination quotes these as capacity bids.
	CapDuals []float64
}

// Unpack converts a flat LP vector into a FracSolution.
func Unpack(in *netmodel.Instance, m *VarMap, x []float64, obj float64, iters int) *FracSolution {
	S, R, D := in.Dims()
	fs := &FracSolution{Cost: obj, Iterations: iters}
	fs.Z = make([]float64, R)
	for i := 0; i < R; i++ {
		fs.Z[i] = clamp01(x[m.Z(i)])
	}
	fs.Y = make([][]float64, S)
	for k := 0; k < S; k++ {
		fs.Y[k] = make([]float64, R)
		for i := 0; i < R; i++ {
			fs.Y[k][i] = clamp01(x[m.Y(k, i)])
		}
	}
	fs.X = make([][]float64, R)
	for i := 0; i < R; i++ {
		fs.X[i] = make([]float64, D)
		for j := 0; j < D; j++ {
			fs.X[i][j] = clamp01(x[m.X(i, j)])
		}
	}
	return fs
}

// SolveBuilt exactly solves an already-built relaxation of in (from
// Build), optionally warm-started, and unpacks the optimum. Callers that
// need the Problem itself — for row/variable counts or bound mutation —
// build once and solve here; SolveLP wraps the common build-and-solve.
func SolveBuilt(in *netmodel.Instance, p *lp.Problem, m *VarMap, warm *lp.Basis) (*FracSolution, error) {
	return SolveBuiltOpts(in, p, m, lp.Options{WarmStart: warm})
}

// SolveBuiltOpts is SolveBuilt with explicit solver options (pricing rule,
// refactorization cadence, warm start).
func SolveBuiltOpts(in *netmodel.Instance, p *lp.Problem, m *VarMap, sopts lp.Options) (*FracSolution, error) {
	sol, err := p.SolveOpts(sopts)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("lpmodel: LP relaxation %w (some sink cannot meet its threshold with the available reflector capacity)", ErrInfeasible)
	default:
		return nil, fmt.Errorf("lpmodel: LP solve ended with status %v", sol.Status)
	}
	fs := Unpack(in, m, sol.X, sol.Objective, sol.Iterations)
	fs.Basis = sol.Basis
	fs.Stats = sol.Stats
	if sol.Duals != nil {
		rows := make([]int, m.R)
		for i := range rows {
			rows[i] = m.CapRow(i)
		}
		fs.CapDuals = sol.DualsFor(rows)
	}
	return fs, nil
}

// SolverOptions translates the solver-tuning subset of opts into lp.Options.
func (o Options) SolverOptions() lp.Options {
	return lp.Options{
		WarmStart:         o.WarmStart,
		Pricing:           o.Pricing,
		RefactorEvery:     o.RefactorEvery,
		RefactorOnInstall: o.RefactorOnInstall,
	}
}

// SolveLP builds and exactly solves the LP relaxation.
func SolveLP(in *netmodel.Instance, opts Options) (*FracSolution, error) {
	p, m := Build(in, opts)
	return SolveBuiltOpts(in, p, m, opts.SolverOptions())
}

// Cost evaluates the §2 objective for a structured fractional solution.
func (fs *FracSolution) CostOf(in *netmodel.Instance) float64 {
	total := 0.0
	for i, z := range fs.Z {
		total += in.ReflectorCost[i] * z
	}
	for k := range fs.Y {
		for i, y := range fs.Y[k] {
			total += in.SrcRefCost[k][i] * y
		}
	}
	for i := range fs.X {
		for j, x := range fs.X[i] {
			total += in.RefSinkCost[i][j] * x
		}
	}
	return total
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
