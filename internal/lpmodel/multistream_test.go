package lpmodel_test

// The paper's §2 WLOG — "a sink wanting several streams is split into one
// copy per stream" — as a tested theorem: the NATIVE multi-stream LP
// (grouped sinks, covering rows per (sink, stream), shared fanout coupling)
// must equal the copy-split LP cell for cell on every library scenario,
// at every point of its churn timeline. The single legitimate divergence is
// the shared physical-arc capacity row (10), which the copies cannot
// express; a dedicated test pins that the native model is STRICTLY
// stronger there.

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/live"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
)

// requireSolutionsEqual demands bit-identical structured optima.
func requireSolutionsEqual(t *testing.T, native, split *lpmodel.FracSolution, ctx string) {
	t.Helper()
	if native.Cost != split.Cost {
		t.Fatalf("%s: native optimum %.17g != copy-split optimum %.17g", ctx, native.Cost, split.Cost)
	}
	for i := range native.Z {
		if native.Z[i] != split.Z[i] {
			t.Fatalf("%s: z[%d] %.17g != %.17g", ctx, i, native.Z[i], split.Z[i])
		}
	}
	for k := range native.Y {
		for i := range native.Y[k] {
			if native.Y[k][i] != split.Y[k][i] {
				t.Fatalf("%s: y[%d][%d] %.17g != %.17g", ctx, k, i, native.Y[k][i], split.Y[k][i])
			}
		}
	}
	for i := range native.X {
		for j := range native.X[i] {
			if native.X[i][j] != split.X[i][j] {
				t.Fatalf("%s: x[%d][%d] %.17g != %.17g", ctx, i, j, native.X[i][j], split.X[i][j])
			}
		}
	}
}

// checkNativeEqualsSplit builds the native and the copy-split LP of one
// instance state and compares them cell for cell, optionally solving both.
func checkNativeEqualsSplit(t *testing.T, in *netmodel.Instance, fixedShape, solve bool, ctx string) {
	t.Helper()
	split := in.SplitStreams()
	opts := lpmodel.DefaultOptions(in)
	opts.FixedShape = fixedShape
	pn, mn := lpmodel.Build(in, opts)
	ps, ms := lpmodel.Build(split, opts)
	requireProblemsEqual(t, pn, ps, ctx)
	if !solve {
		return
	}
	fn, err := lpmodel.SolveBuilt(in, pn, mn, nil)
	if err != nil {
		t.Fatalf("%s: native solve: %v", ctx, err)
	}
	fs, err := lpmodel.SolveBuilt(split, ps, ms, nil)
	if err != nil {
		t.Fatalf("%s: split solve: %v", ctx, err)
	}
	requireSolutionsEqual(t, fn, fs, ctx)
	if fn.Iterations != fs.Iterations {
		t.Fatalf("%s: pivot counts diverged: %d vs %d", ctx, fn.Iterations, fs.Iterations)
	}
}

// TestNativeMatchesCopySplitAcrossScenarios is the golden harness of the
// acceptance criterion: on every library scenario — the multi-stream ones
// included — the native LP optimum equals the copy-split optimum cell for
// cell, both at the base instance and after every churn event of the
// timeline (solves sampled every third event to keep the run fast; the
// cheap build-level cell comparison runs at every event).
func TestNativeMatchesCopySplitAcrossScenarios(t *testing.T) {
	for _, name := range live.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := live.Make(name, 17, 16)
			if err != nil {
				t.Fatal(err)
			}
			in := sc.Base.Clone()
			checkNativeEqualsSplit(t, in, false, true, "base")
			for evi, ev := range sc.Events {
				if _, err := ev.Delta.Apply(in); err != nil {
					t.Fatal(err)
				}
				checkNativeEqualsSplit(t, in, true, evi%3 == 0, ev.Delta.Note)
			}
		})
	}
}

// TestNativeMatchesCopySplitOnGenerated covers the generator family
// directly, at more than two streams per sink.
func TestNativeMatchesCopySplitOnGenerated(t *testing.T) {
	for _, L := range []int{2, 3} {
		cc := gen.DefaultClustered(3, 2, 2, 5)
		cc.StreamsPerSink = L
		cc.Fanout *= L
		in := gen.Clustered(cc, 23)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		checkNativeEqualsSplit(t, in, false, true, in.Name)
	}
}

// TestSharedArcCapStrictlyStronger pins the one place native modeling and
// the WLOG genuinely part ways: a §6.3 capacity on a physical arc is shared
// by a sink's streams natively, but becomes a private per-copy cap under
// SplitStreams. On an instance where the shared cap binds, the native LP
// must cost strictly more than the copy-split relaxation (which happily
// routes both streams over the same capacity-1 arc).
func TestSharedArcCapStrictlyStronger(t *testing.T) {
	in := netmodel.NewZeroInstance(2, 2, 2)
	in.SinkOf = []int{0, 0}
	in.Commodity = []int{0, 1}
	in.Threshold = []float64{0.9, 0.9}
	for i := 0; i < 2; i++ {
		in.Fanout[i] = 10
		for k := 0; k < 2; k++ {
			in.SrcRefLoss[k][i] = 0.01
		}
		in.RefSinkLoss[i][0] = 0.01
	}
	in.ReflectorCost = []float64{1, 50}
	in.EdgeCap = [][]float64{{1, 1}, {1, 1}} // one unit of service per physical arc
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}

	opts := lpmodel.DefaultOptions(in)
	native, err := lpmodel.SolveLP(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	split := in.SplitStreams()
	splitSol, err := lpmodel.SolveLP(split, lpmodel.DefaultOptions(split))
	if err != nil {
		t.Fatal(err)
	}
	// Split: both copies ride reflector 0's arc (private caps), cost ≈ 1.
	// Native: the shared cap forces half the service onto the expensive
	// reflector 1.
	if splitSol.Cost >= 2 {
		t.Fatalf("copy-split optimum %.3f unexpectedly high", splitSol.Cost)
	}
	if native.Cost <= splitSol.Cost+5 {
		t.Fatalf("shared arc cap did not bind: native %.3f vs split %.3f", native.Cost, splitSol.Cost)
	}
	// And the row count shows the native coupling rows exist.
	pn, _ := lpmodel.Build(in, opts)
	ps, _ := lpmodel.Build(split, lpmodel.DefaultOptions(split))
	if pn.NumRows() != ps.NumRows()+2 {
		t.Fatalf("native has %d rows, split %d; want exactly 2 shared-cap rows more",
			pn.NumRows(), ps.NumRows())
	}
	if math.IsInf(native.Cost, 0) {
		t.Fatal("native LP should stay feasible (reflector 1 has capacity)")
	}
}
