// Package gen generates overlay-design problem instances: uniform random
// tripartite networks, Akamai-like geo/ISP-clustered topologies (the class
// of networks §1 of the paper describes), adversarial set-cover embeddings
// (which realize the Ω(log n) cost lower bound of §2), the MacWorld'02
// live-event scenario used as motivation in §1, and the exact Figure-3
// integrality-gap gadget.
//
// Every generator is deterministic in its seed.
package gen

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/stats"
)

// UniformConfig parameterizes Uniform.
type UniformConfig struct {
	Sources    int
	Reflectors int
	Sinks      int
	// Loss ranges (uniform draws).
	SrcRefLossLo, SrcRefLossHi   float64
	RefSinkLossLo, RefSinkLossHi float64
	// Cost ranges.
	ReflectorCostLo, ReflectorCostHi float64
	SrcRefCostLo, SrcRefCostHi       float64
	RefSinkCostLo, RefSinkCostHi     float64
	// Fanout per reflector (uniform integer draw in [FanoutLo,FanoutHi]).
	FanoutLo, FanoutHi int
	// Success threshold range for sinks.
	ThresholdLo, ThresholdHi float64
}

// DefaultUniform returns a reasonable medium-difficulty configuration with
// the given shape: losses 0.5%–5% per hop (the measured ranges §1.3 alludes
// to), thresholds around "two nines", fanouts that force reflector reuse.
func DefaultUniform(sources, reflectors, sinks int) UniformConfig {
	return UniformConfig{
		Sources: sources, Reflectors: reflectors, Sinks: sinks,
		SrcRefLossLo: 0.005, SrcRefLossHi: 0.05,
		RefSinkLossLo: 0.005, RefSinkLossHi: 0.05,
		ReflectorCostLo: 5, ReflectorCostHi: 20,
		SrcRefCostLo: 1, SrcRefCostHi: 4,
		RefSinkCostLo: 0.5, RefSinkCostHi: 3,
		FanoutLo: max(2, 2*sinks/reflectors), FanoutHi: max(3, 3*sinks/reflectors),
		ThresholdLo: 0.95, ThresholdHi: 0.995,
	}
}

// Uniform draws an instance with independent uniform parameters.
func Uniform(cfg UniformConfig, seed uint64) *netmodel.Instance {
	rng := stats.NewRNG(seed)
	in := netmodel.NewZeroInstance(cfg.Sources, cfg.Reflectors, cfg.Sinks)
	in.Name = fmt.Sprintf("uniform-s%dr%dd%d-%d", cfg.Sources, cfg.Reflectors, cfg.Sinks, seed)
	for i := 0; i < cfg.Reflectors; i++ {
		in.ReflectorCost[i] = rng.Range(cfg.ReflectorCostLo, cfg.ReflectorCostHi)
		in.Fanout[i] = float64(cfg.FanoutLo + rng.Intn(cfg.FanoutHi-cfg.FanoutLo+1))
	}
	for k := 0; k < cfg.Sources; k++ {
		for i := 0; i < cfg.Reflectors; i++ {
			in.SrcRefLoss[k][i] = rng.Range(cfg.SrcRefLossLo, cfg.SrcRefLossHi)
			in.SrcRefCost[k][i] = rng.Range(cfg.SrcRefCostLo, cfg.SrcRefCostHi)
		}
	}
	for i := 0; i < cfg.Reflectors; i++ {
		for j := 0; j < cfg.Sinks; j++ {
			in.RefSinkLoss[i][j] = rng.Range(cfg.RefSinkLossLo, cfg.RefSinkLossHi)
			in.RefSinkCost[i][j] = rng.Range(cfg.RefSinkCostLo, cfg.RefSinkCostHi)
		}
	}
	for j := 0; j < cfg.Sinks; j++ {
		in.Commodity[j] = rng.Intn(cfg.Sources)
		in.Threshold[j] = rng.Range(cfg.ThresholdLo, cfg.ThresholdHi)
	}
	return in
}

// ClusteredConfig parameterizes Clustered, the Akamai-like topology: the
// world is divided into regions; each region hosts colos belonging to ISPs;
// reflectors live in colos; sinks (edgeserver clusters) live in regions;
// intra-region links are cheap and clean, inter-region links expensive and
// lossy. Reflector color = ISP (for the §6.4 experiments).
type ClusteredConfig struct {
	Sources            int
	Regions            int
	ISPs               int
	ReflectorsPerColo  int // a colo = (region, ISP) pair
	SinksPerRegion     int
	Fanout             int
	Threshold          float64
	IntraLoss          float64 // mean loss within a region
	InterLoss          float64 // mean loss across regions
	IntraCost          float64
	InterCost          float64
	ReflectorBuildCost float64
	// ViewershipSkew concentrates each stream's audience: a stream's
	// "home" region hosts this fraction of its sinks' interest (the
	// paper's "large event with predominantly European viewership").
	ViewershipSkew float64
	// StreamsPerSink ≥ 2 makes every sink a native multi-stream viewer
	// (netmodel.Instance.SinkOf): each physical sink subscribes to that
	// many DISTINCT streams (clamped to Sources), sharing its
	// reflector→sink link losses and delivery costs across slots — the
	// link is physical, the streams ride it. Slot 0 keeps the skewed
	// home-stream draw; extra slots draw uniformly from the remaining
	// streams. 0 or 1 generates the classic single-stream instance,
	// bit-identical to earlier seeds.
	StreamsPerSink int
}

// DefaultClustered returns the standard clustered configuration used by the
// experiment suite. The fanout gives the network ~3 service slots per sink
// in aggregate, so 2–3-copy designs stay feasible at every seed.
func DefaultClustered(sources, regions, isps, sinksPerRegion int) ClusteredConfig {
	return ClusteredConfig{
		Sources: sources, Regions: regions, ISPs: isps,
		ReflectorsPerColo: 1, SinksPerRegion: sinksPerRegion,
		Fanout: max(4, (3*sinksPerRegion+isps-1)/isps), Threshold: 0.99,
		IntraLoss: 0.01, InterLoss: 0.06,
		IntraCost: 1, InterCost: 5,
		ReflectorBuildCost: 10, ViewershipSkew: 0.7,
	}
}

// Layout exposes the deterministic placement of a Clustered instance:
// which region each reflector and sink lives in, and each reflector's ISP.
// Scenario generators (flash crowds per region, rolling per-ISP outages,
// backbone failures between regions) key their events off it.
type Layout struct {
	RefRegion  []int // region of reflector i
	RefISP     []int // ISP (= color) of reflector i
	SinkRegion []int // region of sink j
	// SrcRegion is each source's home region. Unlike the fields above it
	// is seed-dependent, so only ClusteredWithLayout fills it;
	// ClusteredLayout leaves it nil.
	SrcRegion []int
}

// ClusteredLayout reconstructs the placement Clustered uses for cfg. It is
// a pure function of the config (the layout is deterministic; only costs,
// losses and commodities are random), so it matches any seed.
func ClusteredLayout(cfg ClusteredConfig) Layout {
	R := cfg.Regions * cfg.ISPs * cfg.ReflectorsPerColo
	L := cfg.EffectiveStreamsPerSink()
	D := cfg.Regions * cfg.SinksPerRegion * L
	l := Layout{
		RefRegion:  make([]int, R),
		RefISP:     make([]int, R),
		SinkRegion: make([]int, D),
	}
	i := 0
	for reg := 0; reg < cfg.Regions; reg++ {
		for isp := 0; isp < cfg.ISPs; isp++ {
			for c := 0; c < cfg.ReflectorsPerColo; c++ {
				l.RefRegion[i] = reg
				l.RefISP[i] = isp
				i++
			}
		}
	}
	// SinkRegion indexes DEMAND UNITS: with multi-stream sinks each viewer
	// contributes L consecutive units, all in the viewer's region.
	for j := 0; j < D; j++ {
		l.SinkRegion[j] = j / L / cfg.SinksPerRegion
	}
	return l
}

// EffectiveStreamsPerSink returns the slot count per sink the generator
// will actually use: StreamsPerSink clamped to [1, Sources] (a sink cannot
// subscribe to the same stream twice). Callers sizing fanout for the
// multiplied per-sink demand scale by this, not by the raw knob.
func (cfg ClusteredConfig) EffectiveStreamsPerSink() int {
	L := cfg.StreamsPerSink
	if L < 1 {
		L = 1
	}
	if L > cfg.Sources {
		L = cfg.Sources
	}
	return L
}

// Clustered draws an Akamai-like instance. Reflector i has color = its ISP.
func Clustered(cfg ClusteredConfig, seed uint64) *netmodel.Instance {
	in, _ := ClusteredWithLayout(cfg, seed)
	return in
}

// ClusteredWithLayout is Clustered plus the placement it drew, including
// the seed-dependent source home regions.
func ClusteredWithLayout(cfg ClusteredConfig, seed uint64) (*netmodel.Instance, Layout) {
	rng := stats.NewRNG(seed)
	R := cfg.Regions * cfg.ISPs * cfg.ReflectorsPerColo
	// D counts physical sinks; with StreamsPerSink ≥ 2 the drawn base is
	// expanded into D × L demand units afterwards, leaving the base draws
	// (and so every single-stream seed) untouched.
	D := cfg.Regions * cfg.SinksPerRegion
	in := netmodel.NewZeroInstance(cfg.Sources, R, D)
	in.Name = fmt.Sprintf("clustered-s%dreg%disp%d-%d", cfg.Sources, cfg.Regions, cfg.ISPs, seed)
	in.Color = make([]int, R)
	in.NumColors = cfg.ISPs

	// One placement source of truth: the deterministic layout.
	l := ClusteredLayout(cfg)
	refRegion := l.RefRegion
	for i := 0; i < R; i++ {
		in.Color[i] = l.RefISP[i]
		in.ReflectorCost[i] = cfg.ReflectorBuildCost * rng.Range(0.8, 1.2)
		in.Fanout[i] = float64(cfg.Fanout)
	}
	// Each source lives in a home region.
	srcRegion := make([]int, cfg.Sources)
	for k := range srcRegion {
		srcRegion[k] = rng.Intn(cfg.Regions)
	}
	jitterLoss := func(mean float64) float64 {
		v := mean * rng.Range(0.5, 1.5)
		if v <= 0 {
			v = 1e-4
		}
		if v >= 0.5 {
			v = 0.5
		}
		return v
	}
	for k := 0; k < cfg.Sources; k++ {
		for r := 0; r < R; r++ {
			if refRegion[r] == srcRegion[k] {
				in.SrcRefLoss[k][r] = jitterLoss(cfg.IntraLoss)
				in.SrcRefCost[k][r] = cfg.IntraCost * rng.Range(0.8, 1.2)
			} else {
				in.SrcRefLoss[k][r] = jitterLoss(cfg.InterLoss)
				in.SrcRefCost[k][r] = cfg.InterCost * rng.Range(0.8, 1.2)
			}
		}
	}
	sinkRegion := make([]int, D) // per physical sink (l.SinkRegion is per unit)
	for j := range sinkRegion {
		sinkRegion[j] = j / cfg.SinksPerRegion
	}
	for r := 0; r < R; r++ {
		for j := 0; j < D; j++ {
			if refRegion[r] == sinkRegion[j] {
				in.RefSinkLoss[r][j] = jitterLoss(cfg.IntraLoss)
				in.RefSinkCost[r][j] = cfg.IntraCost * rng.Range(0.8, 1.2)
			} else {
				in.RefSinkLoss[r][j] = jitterLoss(cfg.InterLoss)
				in.RefSinkCost[r][j] = cfg.InterCost * rng.Range(0.8, 1.2)
			}
		}
	}
	// Assign each sink a stream: with probability ViewershipSkew a stream
	// whose home region matches the sink's, otherwise uniform.
	homeStreams := make([][]int, cfg.Regions)
	for k, reg := range srcRegion {
		homeStreams[reg] = append(homeStreams[reg], k)
	}
	for j := 0; j < D; j++ {
		local := homeStreams[sinkRegion[j]]
		if len(local) > 0 && rng.Bernoulli(cfg.ViewershipSkew) {
			in.Commodity[j] = local[rng.Intn(len(local))]
		} else {
			in.Commodity[j] = rng.Intn(cfg.Sources)
		}
		in.Threshold[j] = cfg.Threshold
	}
	if L := cfg.EffectiveStreamsPerSink(); L > 1 {
		in = expandStreams(in, L, rng)
	}
	l.SrcRegion = srcRegion
	return in, l
}

// expandStreams turns a single-stream base into a native multi-stream
// instance: each physical sink becomes L consecutive demand units grouped
// by SinkOf, sharing the sink's reflector→sink loss and cost columns (the
// link is physical), with slot 0 keeping the base's skewed stream draw and
// extra slots drawing distinct streams uniformly from the rest.
func expandStreams(base *netmodel.Instance, L int, rng *stats.RNG) *netmodel.Instance {
	S, R, Dv := base.Dims()
	out := netmodel.NewZeroInstance(S, R, Dv*L)
	out.Name = fmt.Sprintf("%s-ms%d", base.Name, L)
	copy(out.ReflectorCost, base.ReflectorCost)
	copy(out.Fanout, base.Fanout)
	for k := 0; k < S; k++ {
		copy(out.SrcRefLoss[k], base.SrcRefLoss[k])
		copy(out.SrcRefCost[k], base.SrcRefCost[k])
	}
	if base.Color != nil {
		out.Color = append([]int(nil), base.Color...)
		out.NumColors = base.NumColors
	}
	out.SinkOf = make([]int, Dv*L)
	for v := 0; v < Dv; v++ {
		used := make([]bool, S)
		for s := 0; s < L; s++ {
			u := v*L + s
			out.SinkOf[u] = v
			for i := 0; i < R; i++ {
				out.RefSinkLoss[i][u] = base.RefSinkLoss[i][v]
				out.RefSinkCost[i][u] = base.RefSinkCost[i][v]
			}
			k := base.Commodity[v]
			if s > 0 {
				pick := rng.Intn(S - s)
				k = -1
				for kk := 0; kk < S; kk++ {
					if used[kk] {
						continue
					}
					if pick == 0 {
						k = kk
						break
					}
					pick--
				}
			}
			used[k] = true
			out.Commodity[u] = k
			out.Threshold[u] = base.Threshold[v]
		}
	}
	return out
}

// SetCoverConfig embeds a set-cover instance: reflectors are sets, sinks are
// elements, and thresholds are chosen so that a single covering reflector
// suffices. The reduction in §2 shows this is the hard core of the problem.
type SetCoverConfig struct {
	Elements int // sinks
	Sets     int // reflectors
	// Density is the probability a set covers an element.
	Density float64
}

// SetCover draws the embedding. Arcs from a set to elements it does not
// cover get loss ~1 (weight ~0), so they are useless; covering arcs are
// nearly lossless. One source, unit set costs, generous fanouts.
func SetCover(cfg SetCoverConfig, seed uint64) *netmodel.Instance {
	rng := stats.NewRNG(seed)
	in := netmodel.NewZeroInstance(1, cfg.Sets, cfg.Elements)
	in.Name = fmt.Sprintf("setcover-e%ds%d-%d", cfg.Elements, cfg.Sets, seed)
	for i := 0; i < cfg.Sets; i++ {
		in.ReflectorCost[i] = 1
		in.Fanout[i] = float64(cfg.Elements)
		in.SrcRefLoss[0][i] = 1e-9
		in.SrcRefCost[0][i] = 0
	}
	covered := make([]bool, cfg.Elements)
	for i := 0; i < cfg.Sets; i++ {
		for j := 0; j < cfg.Elements; j++ {
			if rng.Bernoulli(cfg.Density) {
				in.RefSinkLoss[i][j] = 1e-9 // covering arc
				covered[j] = true
			} else {
				in.RefSinkLoss[i][j] = 1 - 1e-12 // useless arc
			}
			in.RefSinkCost[i][j] = 0
		}
	}
	// Guarantee coverage so the instance is feasible.
	for j, ok := range covered {
		if !ok {
			in.RefSinkLoss[rng.Intn(cfg.Sets)][j] = 1e-9
		}
	}
	for j := 0; j < cfg.Elements; j++ {
		in.Commodity[j] = 0
		in.Threshold[j] = 0.99 // one clean path suffices
	}
	return in
}

// MacWorldConfig captures the §1 motivating event: Steve Jobs's keynote,
// ~50,000 simultaneous viewers, 16.5 Gbps peak egress, media servers capped
// at 50 Mbps each. We model the overlay (encoder→entrypoint→reflectors→
// edgeservers); viewers hang off edgeservers and determine per-edgeserver
// egress demand.
type MacWorldConfig struct {
	Regions        int
	ISPs           int
	EdgeServers    int     // total edgeserver clusters (sinks)
	StreamKbps     float64 // encoded stream bitrate
	ReflectorMbps  float64 // reflector egress capacity (paper: 50 Mbps)
	Threshold      float64 // post-reconstruction quality target
	ViewersPerSink int     // for capacity-planning reporting
}

// DefaultMacWorld returns the configuration matching the paper's numbers:
// 300 kbps stream (2002-era web stream), 50 Mbps reflectors, 99.9% quality.
func DefaultMacWorld() MacWorldConfig {
	return MacWorldConfig{
		Regions: 4, ISPs: 3, EdgeServers: 48,
		StreamKbps: 300, ReflectorMbps: 50,
		Threshold: 0.999, ViewersPerSink: 1050, // ≈ 50k viewers total
	}
}

// MacWorld builds the live-event instance: one stream, reflectors in every
// (region, ISP) colo, fanout = how many edgeserver feeds one reflector can
// push = ReflectorMbps / StreamKbps.
func MacWorld(cfg MacWorldConfig, seed uint64) *netmodel.Instance {
	cl := ClusteredConfig{
		Sources: 1, Regions: cfg.Regions, ISPs: cfg.ISPs,
		ReflectorsPerColo: 1,
		SinksPerRegion:    cfg.EdgeServers / cfg.Regions,
		Fanout:            int(cfg.ReflectorMbps * 1000 / cfg.StreamKbps),
		Threshold:         cfg.Threshold,
		IntraLoss:         0.005, InterLoss: 0.04,
		IntraCost: 1, InterCost: 6,
		ReflectorBuildCost: 8, ViewershipSkew: 1,
	}
	in := Clustered(cl, seed)
	in.Name = fmt.Sprintf("macworld-%d", seed)
	return in
}
