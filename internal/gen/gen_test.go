package gen

import (
	"testing"

	"repro/internal/netmodel"
)

func TestUniformValid(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		in := Uniform(DefaultUniform(3, 8, 20), seed)
		if err := in.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(DefaultUniform(2, 5, 10), 7)
	b := Uniform(DefaultUniform(2, 5, 10), 7)
	if a.SrcRefLoss[1][3] != b.SrcRefLoss[1][3] || a.RefSinkCost[4][9] != b.RefSinkCost[4][9] {
		t.Fatal("same seed must give identical instances")
	}
	c := Uniform(DefaultUniform(2, 5, 10), 8)
	if a.SrcRefLoss[1][3] == c.SrcRefLoss[1][3] && a.RefSinkCost[4][9] == c.RefSinkCost[4][9] {
		t.Fatal("different seeds should give different instances")
	}
}

func TestClusteredValid(t *testing.T) {
	in := Clustered(DefaultClustered(3, 3, 2, 6), 11)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumColors != 2 {
		t.Fatalf("NumColors = %d, want 2", in.NumColors)
	}
	if in.NumReflectors != 3*2 {
		t.Fatalf("R = %d, want 6", in.NumReflectors)
	}
	if in.NumSinks != 3*6 {
		t.Fatalf("D = %d, want 18", in.NumSinks)
	}
}

func TestClusteredIntraCheaperThanInter(t *testing.T) {
	// On average, same-region reflector-sink arcs must be cheaper and
	// cleaner than cross-region arcs; verify via the generator's own
	// structure: region of reflector i is i / ISPs when ReflectorsPerColo=1.
	cfg := DefaultClustered(2, 4, 2, 5)
	in := Clustered(cfg, 3)
	intraCost, interCost := 0.0, 0.0
	intraN, interN := 0, 0
	for i := 0; i < in.NumReflectors; i++ {
		regI := i / cfg.ISPs
		for j := 0; j < in.NumSinks; j++ {
			regJ := j / cfg.SinksPerRegion
			if regI == regJ {
				intraCost += in.RefSinkCost[i][j]
				intraN++
			} else {
				interCost += in.RefSinkCost[i][j]
				interN++
			}
		}
	}
	if intraCost/float64(intraN) >= interCost/float64(interN) {
		t.Fatal("intra-region arcs should be cheaper on average")
	}
}

func TestSetCoverFeasible(t *testing.T) {
	in := SetCover(SetCoverConfig{Elements: 12, Sets: 6, Density: 0.3}, 5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every element must have at least one covering arc (loss << 1).
	for j := 0; j < in.NumSinks; j++ {
		ok := false
		for i := 0; i < in.NumReflectors; i++ {
			if in.RefSinkLoss[i][j] < 0.5 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("element %d uncovered", j)
		}
	}
}

func TestMacWorld(t *testing.T) {
	cfg := DefaultMacWorld()
	in := MacWorld(cfg, 1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumSources != 1 {
		t.Fatalf("sources = %d, want 1 (single keynote stream)", in.NumSources)
	}
	wantFanout := float64(int(cfg.ReflectorMbps * 1000 / cfg.StreamKbps))
	if in.Fanout[0] != wantFanout {
		t.Fatalf("fanout = %v, want %v (50 Mbps / 300 kbps)", in.Fanout[0], wantFanout)
	}
}

func TestFigure3Shape(t *testing.T) {
	f := NewFigure3()
	if len(f.Edges) != 7 {
		t.Fatalf("edges = %d, want 7", len(f.Edges))
	}
	if f.EntangledCap != 3 || len(f.EntangledSet) != 2 {
		t.Fatal("entangled set must be {ab,pq} with cap 3")
	}
	// The entangled edges must be ab and pq.
	ab := f.Edges[f.EntangledSet[0]]
	pq := f.Edges[f.EntangledSet[1]]
	if ab.From != f.A || ab.To != f.B || pq.From != f.P || pq.To != f.Q {
		t.Fatal("entangled edges are not ab,pq")
	}
}

func TestWeightDemandRelation(t *testing.T) {
	// Sanity on the model's transforms for generated instances: capped
	// weight never exceeds demand, and better (lower-loss) paths have
	// higher weight.
	in := Uniform(DefaultUniform(2, 6, 10), 9)
	for j := 0; j < in.NumSinks; j++ {
		dem := in.Demand(j)
		for i := 0; i < in.NumReflectors; i++ {
			if in.CappedWeight(i, j) > dem+1e-12 {
				t.Fatalf("capped weight exceeds demand at (%d,%d)", i, j)
			}
		}
	}
	var _ = netmodel.ProbEps
}

func TestClusteredLayoutMatchesInstance(t *testing.T) {
	cfg := DefaultClustered(2, 3, 3, 6)
	cfg.ReflectorsPerColo = 2
	in := Clustered(cfg, 42)
	l := ClusteredLayout(cfg)
	if len(l.RefRegion) != in.NumReflectors || len(l.SinkRegion) != in.NumSinks {
		t.Fatalf("layout shape %dx%d, instance %dx%d",
			len(l.RefRegion), len(l.SinkRegion), in.NumReflectors, in.NumSinks)
	}
	// ISP assignment must agree with the instance's colors.
	for i, isp := range l.RefISP {
		if in.Color[i] != isp {
			t.Fatalf("reflector %d: layout ISP %d != color %d", i, isp, in.Color[i])
		}
	}
	// Region assignment must agree with the cost structure: intra-region
	// arcs draw from IntraCost·[0.8,1.2], inter-region from InterCost·
	// [0.8,1.2], and the ranges don't overlap for the default 1 vs 5.
	cut := (1.2*cfg.IntraCost + 0.8*cfg.InterCost) / 2
	for i := range l.RefRegion {
		for j := range l.SinkRegion {
			intra := l.RefRegion[i] == l.SinkRegion[j]
			if cheap := in.RefSinkCost[i][j] < cut; cheap != intra {
				t.Fatalf("arc (%d,%d): layout intra=%v but cost %g", i, j, intra, in.RefSinkCost[i][j])
			}
		}
	}
}
