package gen

// Figure3 describes the exact integrality-gap gadget of the paper's
// Figure 3: a flow network with an "entangled set" capacity constraint over
// the edge set {a→b, p→q}. The maximum integral s–t flow is 3, but the
// fractional optimum is 3.5 (send 2 on s→a and 1.5 on s→p, split at a:
// 0.5 on a→q and 1.5 on a→b), demonstrating why §6.5 cannot round the path
// LP with plain network-flow integrality and needs Srinivasan–Teo style
// dependent rounding.
type Figure3 struct {
	// Node indices.
	S, A, P, Q, B, T int
	NumNodes         int
	// Edges with individual capacities.
	Edges []Figure3Edge
	// EntangledSet is the index set (into Edges) whose total flow is
	// capped by EntangledCap (the figure: {ab, pq} ≤ 3).
	EntangledSet []int
	EntangledCap float64
}

// Figure3Edge is one capacitated arc of the gadget.
type Figure3Edge struct {
	From, To int
	Cap      float64
}

// NewFigure3 returns the gadget with the exact capacities of the figure.
func NewFigure3() *Figure3 {
	f := &Figure3{S: 0, A: 1, P: 2, Q: 3, B: 4, T: 5, NumNodes: 6}
	f.Edges = []Figure3Edge{
		{f.S, f.A, 2}, // sa
		{f.S, f.P, 2}, // sp
		{f.A, f.B, 2}, // ab  (entangled)
		{f.A, f.Q, 1}, // aq
		{f.P, f.Q, 2}, // pq  (entangled)
		{f.B, f.T, 2}, // bt
		{f.Q, f.T, 2}, // qt
	}
	f.EntangledSet = []int{2, 4}
	f.EntangledCap = 3
	return f
}
