// Package bnb is an exact branch-and-bound solver for the §2 integer
// program, using the LP relaxation (internal/lpmodel) for lower bounds. It
// is exponential in the worst case and intended for the tiny instances of
// experiment T1, where it supplies the true OPT that the approximation
// ratios are measured against.
package bnb

import (
	"math"

	"repro/internal/lp"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
)

// Options bounds the search.
type Options struct {
	// NodeLimit caps explored nodes (default 200_000).
	NodeLimit int
	// InitialUpper primes the incumbent with a known feasible cost
	// (e.g. from greedy); 0 means +Inf.
	InitialUpper float64
	// Gap: prune nodes whose LP bound is within Gap of the incumbent
	// (default 1e-6, i.e. prove optimality).
	Gap float64
	// ColdLP disables warm-starting child LPs from the parent basis
	// (ablation/diagnostics; the warm dive is strictly an optimization,
	// results are identical).
	ColdLP bool
}

// Result reports the search outcome.
type Result struct {
	Design *netmodel.Design
	Cost   float64
	// Optimal is true when the search finished within the node limit, so
	// Cost is the exact IP optimum.
	Optimal bool
	Nodes   int
	// LPIterations totals simplex pivots across all node LPs (the warm
	// dive's effectiveness shows up here).
	LPIterations int
}

const intTol = 1e-6

// Solve runs branch and bound. It returns a nil Design if no feasible
// integral solution was found (within the node limit).
func Solve(in *netmodel.Instance, opts Options) (*Result, error) {
	if opts.NodeLimit <= 0 {
		opts.NodeLimit = 200000
	}
	if opts.Gap <= 0 {
		opts.Gap = 1e-6
	}
	lpOpts := lpmodel.DefaultOptions(in)
	// The cutting plane (4) is implied for the IP (Claim 2.1) but
	// tightens LP bounds, so keep it.
	prob, vm := lpmodel.Build(in, lpOpts)

	best := math.Inf(1)
	if opts.InitialUpper > 0 {
		best = opts.InitialUpper
	}
	var bestX []float64
	res := &Result{}

	// Each node's LP warm-starts from its parent's optimal basis: costs
	// are unchanged down a dive and only one variable's bounds tighten,
	// so the parent basis stays dual feasible and the dual simplex
	// re-establishes primal feasibility in a few pivots instead of
	// re-running both phases from scratch.
	var dfs func(parentBasis *lp.Basis) bool
	dfs = func(parentBasis *lp.Basis) bool {
		if res.Nodes >= opts.NodeLimit {
			return false
		}
		res.Nodes++
		var warm *lp.Basis
		if !opts.ColdLP {
			warm = parentBasis
		}
		sol, err := prob.SolveOpts(lp.Options{WarmStart: warm})
		if sol != nil {
			res.LPIterations += sol.Iterations
		}
		if err != nil || sol.Status == lp.Infeasible {
			return true
		}
		if sol.Status != lp.Optimal {
			return true // numerically stuck subtree; sound to prune only
			// if bound unusable — treat as pruned but mark incomplete
		}
		if sol.Objective >= best-opts.Gap {
			return true
		}
		// Find most fractional variable.
		branchVar, dist := -1, intTol
		for jv := 0; jv < prob.NumVars(); jv++ {
			v := sol.X[jv]
			f := math.Abs(v - math.Round(v))
			if f > dist {
				dist = f
				branchVar = jv
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent.
			if sol.Objective < best {
				best = sol.Objective
				bestX = append(bestX[:0], sol.X...)
			}
			return true
		}
		// Branch: try the 1-side first (covering problems tend to find
		// feasible incumbents faster there). Bounds are saved and
		// restored so §6.3 edge-cap upper bounds survive branching.
		origLo, origHi := prob.Bounds(branchVar)
		complete := true
		for _, side := range [2]float64{1, 0} {
			if side < origLo || side > origHi {
				continue
			}
			prob.SetBounds(branchVar, side, side)
			if !dfs(sol.Basis) {
				complete = false
			}
			prob.SetBounds(branchVar, origLo, origHi)
			if res.Nodes >= opts.NodeLimit {
				complete = false
				break
			}
		}
		return complete
	}
	complete := dfs(nil)

	if bestX == nil {
		res.Optimal = false
		return res, nil
	}
	res.Cost = best
	res.Optimal = complete
	res.Design = designFromVector(in, vm, bestX)
	return res, nil
}

// designFromVector converts a 0/1 LP vector into a Design.
func designFromVector(in *netmodel.Instance, vm *lpmodel.VarMap, x []float64) *netmodel.Design {
	S, R, D := in.Dims()
	d := netmodel.NewDesign(in)
	for i := 0; i < R; i++ {
		d.Build[i] = x[vm.Z(i)] > 0.5
	}
	for k := 0; k < S; k++ {
		for i := 0; i < R; i++ {
			d.Ingest[k][i] = x[vm.Y(k, i)] > 0.5
		}
	}
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			d.Serve[i][j] = x[vm.X(i, j)] > 0.5
		}
	}
	d.Normalize(in)
	return d
}
