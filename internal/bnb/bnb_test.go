package bnb

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/lpmodel"
	"repro/internal/netmodel"
)

func TestTinyExact(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(1, 3, 4), 2)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Design == nil {
		t.Fatal("no feasible design found")
	}
	if !res.Optimal {
		t.Fatal("tiny instance should be solved to optimality")
	}
	a := netmodel.AuditDesign(in, res.Design)
	if !a.StructureOK {
		t.Fatal("structure violated")
	}
	if a.WeightFactor < 1-1e-6 {
		t.Fatalf("exact IP solution must meet all weight demands, factor=%v", a.WeightFactor)
	}
	if a.FanoutFactor > 1+1e-6 {
		t.Fatalf("exact IP solution must respect fanout, factor=%v", a.FanoutFactor)
	}
	// Audit cost must match the reported IP objective.
	if diff := a.Cost - res.Cost; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("audit cost %v != IP cost %v", a.Cost, res.Cost)
	}
}

func TestIPAtLeastLP(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		in := gen.Uniform(gen.DefaultUniform(1, 3, 5), seed)
		fs, err := lpmodel.SolveLP(in, lpmodel.DefaultOptions(in))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Design == nil || !res.Optimal {
			t.Fatalf("seed %d: expected exact solve", seed)
		}
		if res.Cost < fs.Cost-1e-6 {
			t.Fatalf("seed %d: IP cost %v below LP bound %v", seed, res.Cost, fs.Cost)
		}
	}
}

func TestBruteForceAgreement(t *testing.T) {
	// On a truly minuscule instance, compare with exhaustive enumeration
	// over all (z,y,x) designs.
	in := gen.Uniform(gen.DefaultUniform(1, 2, 2), 7)
	// Loosen thresholds so multiple feasible designs exist.
	for j := range in.Threshold {
		in.Threshold[j] = 0.9
	}
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bestBrute := bruteForce(in)
	if res.Design == nil {
		if bestBrute >= 0 {
			t.Fatalf("bnb found nothing, brute force found cost %v", bestBrute)
		}
		return
	}
	if !res.Optimal {
		t.Fatal("expected optimal")
	}
	if diff := res.Cost - bestBrute; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("bnb cost %v != brute force %v", res.Cost, bestBrute)
	}
}

// bruteForce enumerates all 2^(R*D) serve matrices (R=D=2 ⇒ 16), deriving
// z,y minimally, and returns the min feasible cost (or -1).
func bruteForce(in *netmodel.Instance) float64 {
	_, R, D := in.Dims()
	best := -1.0
	n := R * D
	for mask := 0; mask < 1<<n; mask++ {
		d := netmodel.NewDesign(in)
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				d.Serve[b/D][b%D] = true
			}
		}
		d.Normalize(in)
		a := netmodel.AuditDesign(in, d)
		if !a.StructureOK || a.WeightFactor < 1-1e-9 || a.FanoutFactor > 1+1e-9 {
			continue
		}
		if best < 0 || a.Cost < best {
			best = a.Cost
		}
	}
	return best
}

func TestNodeLimitRespected(t *testing.T) {
	in := gen.Uniform(gen.DefaultUniform(2, 5, 8), 3)
	res, err := Solve(in, Options{NodeLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 5 {
		t.Fatalf("explored %d nodes, limit 5", res.Nodes)
	}
	if res.Optimal && res.Nodes >= 5 {
		t.Fatal("cannot claim optimality at the node limit")
	}
}

// TestWarmDiveMatchesCold: warm-starting child LPs from the parent basis
// must prove the same optimum as a cold-LP search. The search trees may
// differ (degenerate LPs have multiple optimal vertices, so the
// most-fractional branching variable can change), but the proven IP cost
// cannot — and across instances the warm dives must spend fewer total
// simplex pivots.
func TestWarmDiveMatchesCold(t *testing.T) {
	totalWarm, totalCold := 0, 0
	for seed := uint64(1); seed <= 3; seed++ {
		in := gen.Uniform(gen.DefaultUniform(1, 4, 6), seed)
		warm, err := Solve(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(in, Options{ColdLP: true})
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Optimal || !cold.Optimal {
			t.Fatalf("seed %d: search incomplete: warm=%v cold=%v", seed, warm.Optimal, cold.Optimal)
		}
		if d := warm.Cost - cold.Cost; d > 1e-6 || d < -1e-6 {
			t.Fatalf("seed %d: warm cost %.9f != cold cost %.9f", seed, warm.Cost, cold.Cost)
		}
		totalWarm += warm.LPIterations
		totalCold += cold.LPIterations
		t.Logf("seed %d: pivots warm=%d cold=%d (nodes warm=%d cold=%d)",
			seed, warm.LPIterations, cold.LPIterations, warm.Nodes, cold.Nodes)
	}
	if totalWarm >= totalCold {
		t.Fatalf("warm dives used %d total pivots, cold %d", totalWarm, totalCold)
	}
}
