package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/live"
	"repro/internal/netmodel"
)

// jsonTripSnapshot pushes the snapshot through the real codec, so the test
// exercises exactly what the disk sees.
func jsonTripSnapshot(t *testing.T, d *Daemon) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func placementBytes(t *testing.T, d *Daemon, sink int) []byte {
	t.Helper()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	code, body := get(t, srv, fmt.Sprintf("/placement?sink=%d", sink))
	if code != 200 {
		t.Fatalf("placement sink %d: %d %s", sink, code, body)
	}
	return body
}

// TestDaemonSnapshotRoundTrip drives every scenario in the library through
// two daemons — one uninterrupted, one snapshotted to JSON and restored
// mid-timeline with deltas still queued — and requires the epoch streams to
// be bit-identical: costs, pivots, churn, designs, and the placement
// responses straddling the restart. The first post-restore solve must
// resume the persisted factorization (warm restart, not a cold one).
func TestDaemonSnapshotRoundTrip(t *testing.T) {
	const epochs, restartAt = 8, 4
	sawAdoption := false
	for _, name := range live.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := live.Make(name, 13, epochs)
			if err != nil {
				t.Fatal(err)
			}
			byEpoch := make(map[int][]netmodel.Delta)
			for _, ev := range sc.Events {
				byEpoch[ev.Epoch] = append(byEpoch[ev.Epoch], ev.Delta)
			}

			cfg := testConfig(13)
			dA, err := New(sc.Base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			dB, err := New(sc.Base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var firstAfterA, firstAfterB EpochInfo
			for e := 1; e < epochs; e++ {
				batch := byEpoch[e]
				if len(batch) > 0 {
					if _, _, err := dA.Ingest(batch); err != nil {
						t.Fatal(err)
					}
					if _, _, err := dB.Ingest(batch); err != nil {
						t.Fatal(err)
					}
				}
				if e == restartAt {
					// Snapshot B WITH the batch still queued: pending deltas
					// must survive the restart and be consumed by the next
					// solve, exactly as in the uninterrupted daemon.
					preBytes := placementBytes(t, dB, 0)
					snap := jsonTripSnapshot(t, dB)
					if len(snap.Pending) != len(batch) {
						t.Fatalf("snapshot carries %d pending deltas, want %d", len(snap.Pending), len(batch))
					}
					dB, err = Resume(snap, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if st := dB.Status(); st.PendingDeltas != len(batch) || st.Epoch != restartAt-1 {
						t.Fatalf("restored status: %+v", st)
					}
					postBytes := placementBytes(t, dB, 0)
					if !bytes.Equal(preBytes, postBytes) {
						t.Fatalf("placement across restart differs:\npre:  %s\npost: %s", preBytes, postBytes)
					}
				}
				infoA, err := dA.SolveNow()
				if err != nil {
					t.Fatalf("epoch %d uninterrupted: %v", e, err)
				}
				infoB, err := dB.SolveNow()
				if err != nil {
					t.Fatalf("epoch %d restored: %v", e, err)
				}
				if e == restartAt {
					firstAfterA, firstAfterB = infoA, infoB
				}
				a, b := scrubNondet(infoA), scrubNondet(infoB)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("epoch %d diverged after restore:\nuninterrupted: %+v\nrestored:      %+v", e, a, b)
				}
				if !reflect.DeepEqual(dA.View().Design, dB.View().Design) {
					t.Fatalf("epoch %d: designs diverged after restore", e)
				}
			}
			// Warm resume: the restored arm's factorization telemetry matches
			// the uninterrupted one's exactly — same adoptions, same (absence
			// of extra) refactorizations, no LP rebuild. Scenarios whose
			// restart epoch adopts in the uninterrupted arm must adopt after
			// the restore too.
			if firstAfterB.FTUpdates != firstAfterA.FTUpdates ||
				firstAfterB.Refactorizations != firstAfterA.Refactorizations {
				t.Fatalf("post-restore factorization telemetry %d/%d, uninterrupted %d/%d",
					firstAfterB.FTUpdates, firstAfterB.Refactorizations,
					firstAfterA.FTUpdates, firstAfterA.Refactorizations)
			}
			if firstAfterB.LPRebuilds != 0 {
				t.Fatal("first post-restore solve rebuilt its LP instead of patching the restored one")
			}
			if firstAfterB.FTUpdates > 0 {
				sawAdoption = true
			}

			// The exported scenarios agree too: same base, same event log.
			scA, err := dA.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			scB, err := dB.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scA.Events, scB.Events) {
				t.Fatal("event logs diverged across restart")
			}
		})
	}
	if !sawAdoption {
		t.Error("no scenario in the library adopted the persisted factorization after restore")
	}
}

// scrubNondet zeroes the fields legitimately different across a restore:
// wall time; LPPatches (a restored session's first step re-patches every
// stickiness-bias cell value-for-value, since the bias memory is
// deliberately not checkpointed — more cells touched, same values); and
// SLOWindowFrac (the SLO window is monitoring state and restarts).
func scrubNondet(i EpochInfo) EpochInfo {
	i.WallNS = 0
	i.LPPatches = 0
	i.SLOWindowFrac = 0
	return i
}

// TestSnapshotRejectsCorrupt locks the validation surface of the codec.
func TestSnapshotRejectsCorrupt(t *testing.T) {
	d, err := New(testInstance(t, 9), testConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Ingest([]netmodel.Delta{joinDelta(0, 0.3)}); err != nil {
		t.Fatal(err)
	}
	good := d.Snapshot()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func(*Snapshot)) {
		t.Helper()
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, d.Snapshot()); err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		mutate(&s)
		var out bytes.Buffer
		if err := json.NewEncoder(&out).Encode(&s); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(&out); err == nil {
			t.Fatalf("%s: corrupt snapshot accepted", name)
		}
	}
	corrupt("bad format", func(s *Snapshot) { s.Format = 99 })
	corrupt("no base", func(s *Snapshot) { s.Base = nil })
	corrupt("no instance", func(s *Snapshot) { s.Instance = nil })
	corrupt("no session", func(s *Snapshot) { s.Session = nil })
	corrupt("pending out of range", func(s *Snapshot) {
		s.Pending = append(s.Pending, joinDelta(1<<30, 0.5))
	})
	corrupt("event out of range", func(s *Snapshot) {
		s.Events = append(s.Events, live.Event{Epoch: -1, Delta: joinDelta(0, 0.5)})
	})
	corrupt("negative steps", func(s *Snapshot) { s.Session.Steps = -1 })

	if _, err := Resume(nil, testConfig(9)); err == nil {
		t.Fatal("Resume accepted a nil snapshot")
	}
}
