package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// testInstance returns a small clustered multi-stream instance (the
// streamwave scenario's base) — multi-stream so placement and per-stream
// SLO rows are exercised for real.
func testInstance(t *testing.T, seed uint64) *netmodel.Instance {
	t.Helper()
	sc, err := live.Make("streamwave", seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Base
}

func testConfig(seed uint64) Config {
	opts := core.DefaultOptions(seed)
	opts.IncrementalLP = true
	return Config{
		Solver:     opts,
		Stickiness: 0.4,
		WarmStart:  true,
		Pressure:   -1, // tests drive solves explicitly unless stated
	}
}

// joinDelta toggles one sink's threshold — the smallest meaningful churn.
func joinDelta(sink int, thr float64) netmodel.Delta {
	return netmodel.Delta{
		Note:         fmt.Sprintf("sink %d -> %g", sink, thr),
		SetThreshold: []netmodel.SinkValue{{Sink: sink, Value: thr}},
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, srv *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestDaemonAPI walks the whole HTTP surface of a freshly provisioned
// daemon: status, placement, design, ingest (valid, malformed, out of
// range), forced solves, scenario export, and the mounted obs endpoints.
func TestDaemonAPI(t *testing.T) {
	in := testInstance(t, 7)
	d, err := New(in, testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/status")
	if code != http.StatusOK {
		t.Fatalf("/status: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 || st.Totals.Solves != 1 || st.PendingDeltas != 0 {
		t.Fatalf("fresh daemon status: %+v", st)
	}

	// Placement: full viewer, then one stream, then error paths.
	code, body = get(t, srv, "/placement?sink=0")
	if code != http.StatusOK {
		t.Fatalf("/placement?sink=0: %d %s", code, body)
	}
	var pl PlacementResponse
	if err := json.Unmarshal(body, &pl); err != nil {
		t.Fatal(err)
	}
	if pl.Sink != 0 || pl.Epoch != 0 || len(pl.Streams) == 0 {
		t.Fatalf("placement: %+v", pl)
	}
	for _, ps := range pl.Streams {
		if ps.Active && len(ps.Reflectors) == 0 {
			t.Fatalf("active subscription with no serving reflectors: %+v", ps)
		}
	}
	k := pl.Streams[0].Stream
	code, body = get(t, srv, fmt.Sprintf("/placement?sink=0&stream=%d", k))
	if code != http.StatusOK {
		t.Fatalf("/placement single stream: %d %s", code, body)
	}
	var one PlacementResponse
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Streams) != 1 || !reflect.DeepEqual(one.Streams[0], pl.Streams[0]) {
		t.Fatalf("single-stream lookup disagrees with full lookup: %+v vs %+v", one.Streams, pl.Streams[0])
	}
	if code, _ = get(t, srv, "/placement?sink=banana"); code != http.StatusBadRequest {
		t.Fatalf("non-integer sink: %d", code)
	}
	if code, _ = get(t, srv, "/placement?sink=99999"); code != http.StatusNotFound {
		t.Fatalf("out-of-range sink: %d", code)
	}
	if code, _ = get(t, srv, "/placement?sink=0&stream=99"); code != http.StatusNotFound {
		t.Fatalf("unknown stream: %d", code)
	}

	// Ingest: single object, then an array, then the failure modes.
	code, body = post(t, srv, "/deltas", `{"note":"join","set_threshold":[{"sink":0,"value":0.3}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("ingest single: %d %s", code, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Deltas != 1 || ir.Edits != 1 || ir.Epoch != 1 {
		t.Fatalf("ingest response: %+v", ir)
	}
	code, body = post(t, srv, "/deltas",
		`[{"set_threshold":[{"sink":1,"value":0.25}]},{"set_fanout":[{"ref":0,"value":3}]}]`)
	if code != http.StatusAccepted {
		t.Fatalf("ingest array: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Deltas != 2 || ir.QueuedEdits != 3 {
		t.Fatalf("ingest array response: %+v", ir)
	}
	if code, body = post(t, srv, "/deltas", `{"set_treshold":[]}`); code != http.StatusBadRequest {
		t.Fatalf("typo'd field must 400: %d %s", code, body)
	}
	if code, _ = post(t, srv, "/deltas", `{"set_threshold":[{"sink":99999,"value":0.3}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-range delta must 422: %d", code)
	}
	// The failed batch must not have queued anything.
	code, body = get(t, srv, "/status")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.PendingDeltas != 3 || st.PendingEdits != 3 {
		t.Fatalf("queue after rejected batches: %+v", st)
	}

	// Force the solve; the queue drains into epoch 1.
	code, body = post(t, srv, "/solve", "")
	if code != http.StatusOK {
		t.Fatalf("/solve: %d %s", code, body)
	}
	var info EpochInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.Edits != 3 {
		t.Fatalf("solve info: %+v", info)
	}
	// Warm continuity: the live LP was patched in place, never rebuilt.
	// (Basis adoption vs refactorization depends on whether the edits
	// touched basic columns — the round-trip test pins that telemetry.)
	if info.LPRebuilds != 0 || info.LPPatches == 0 {
		t.Fatalf("epoch 1 did not patch the live LP incrementally: %+v", info)
	}
	if v := d.View(); v.Epoch != 1 || v.In.Threshold[0] != 0.3 {
		t.Fatalf("published view not updated: epoch %d thr %g", v.Epoch, v.In.Threshold[0])
	}

	// Design decodes as a netmodel design of the right shape.
	code, body = get(t, srv, "/design")
	if code != http.StatusOK {
		t.Fatalf("/design: %d", code)
	}
	des, err := netmodel.ReadDesignJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(des.Serve) != in.NumReflectors {
		t.Fatalf("design has %d reflectors, want %d", len(des.Serve), in.NumReflectors)
	}

	// Scenario export replays: validated, carries the ingested events.
	code, body = get(t, srv, "/scenario")
	if code != http.StatusOK {
		t.Fatalf("/scenario: %d %s", code, body)
	}
	sc, err := live.ReadScenario(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 3 || sc.Epochs != 2 {
		t.Fatalf("scenario: %d events over %d epochs", len(sc.Events), sc.Epochs)
	}

	// Mounted obs endpoints on the same listener.
	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), obs.MEpochsTotal) {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(string(body), obs.MStreamAvailability) {
		t.Fatal("/metrics missing per-stream SLO family")
	}
	if code, _ = get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	code, body = get(t, srv, "/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo: %d", code)
	}
	var sl obs.SLOStatus
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatal(err)
	}
	if len(sl.Streams) == 0 {
		t.Fatalf("/slo has no per-stream rows: %+v", sl)
	}

	// Method discipline.
	if code, _ = get(t, srv, "/deltas"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /deltas: %d", code)
	}
	if code, _ = post(t, srv, "/placement?sink=0", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /placement: %d", code)
	}
	if code, _ = post(t, srv, "/scenario", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /scenario: %d", code)
	}
}

// TestDaemonPressureSolve: crossing the pressure threshold triggers a solve
// without waiting for the cadence timer.
func TestDaemonPressureSolve(t *testing.T) {
	cfg := testConfig(3)
	cfg.Pressure = 2
	d, err := New(testInstance(t, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	if _, _, err := d.Ingest([]netmodel.Delta{joinDelta(0, 0.3), joinDelta(1, 0.25)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.Status().Epoch < 1 {
		if time.Now().After(deadline) {
			t.Fatal("pressure solve never happened")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := d.Status(); st.PendingEdits != 0 || st.Totals.Solves < 2 {
		t.Fatalf("after pressure solve: %+v", st)
	}
}

// TestDaemonScenarioReplay is the record/replay contract end to end: the
// event log a daemon exports, replayed through live.Run with the matching
// policy, reproduces the daemon's epoch stream bit-for-bit (costs, pivots,
// churn).
func TestDaemonScenarioReplay(t *testing.T) {
	cfg := testConfig(11)
	d, err := New(testInstance(t, 11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	infos := []EpochInfo{d.View().Last}
	for e := 1; e < 6; e++ {
		var batch []netmodel.Delta
		batch = append(batch, joinDelta((e*3)%d.View().In.NumSinks, 0.2+0.05*float64(e%4)))
		if e%2 == 0 {
			batch = append(batch, netmodel.Delta{
				Note:      fmt.Sprintf("reprice %d", e),
				SetFanout: []netmodel.RefValue{{Ref: e % d.View().In.NumReflectors, Value: float64(2 + e%3)}},
			})
		}
		if _, _, err := d.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		info, err := d.SolveNow()
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
	}

	var buf bytes.Buffer
	sc, err := d.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if err := live.WriteScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	sc2, err := live.ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := live.Run(sc2, live.Config{
		Solver: cfg.Solver,
		Policy: live.Policy{Name: "daemon", Stickiness: cfg.Stickiness, WarmStart: cfg.WarmStart},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != len(infos) {
		t.Fatalf("replay ran %d epochs, daemon solved %d", len(rep.Epochs), len(infos))
	}
	for e, er := range rep.Epochs {
		if er.TrueCost != infos[e].TrueCost || er.LPCost != infos[e].LPCost {
			t.Fatalf("epoch %d: replay cost %.17g/%.17g vs daemon %.17g/%.17g",
				e, er.TrueCost, er.LPCost, infos[e].TrueCost, infos[e].LPCost)
		}
		if er.Pivots != infos[e].Pivots || er.ArcChurn != infos[e].ArcChurn {
			t.Fatalf("epoch %d: replay pivots/churn %d/%d vs daemon %d/%d",
				e, er.Pivots, er.ArcChurn, infos[e].Pivots, infos[e].ArcChurn)
		}
	}
}

// TestDaemonConcurrentIngestLookupSnapshot hammers the three access paths
// at once — ingest bursts, lock-free reads, snapshot saves — while the
// solver loop runs under pressure. Run with -race in CI's race matrix; the
// assertions here are liveness and consistency of whatever view is read.
func TestDaemonConcurrentIngestLookupSnapshot(t *testing.T) {
	cfg := testConfig(5)
	cfg.Pressure = 4
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "snap.json")
	d, err := New(testInstance(t, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	numSinks := d.View().In.NumSinks
	numViewers := d.View().In.NumViewers()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := d.Ingest([]netmodel.Delta{joinDelta((w*7+i)%numSinks, 0.3)})
				if err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			code, body := get(t, srv, fmt.Sprintf("/placement?sink=%d", i%numViewers))
			if code != http.StatusOK {
				t.Errorf("placement during churn: %d %s", code, body)
				return
			}
			v := d.View()
			if v == nil || v.Design == nil {
				t.Error("nil view during churn")
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.SaveSnapshot(cfg.SnapshotPath); err != nil {
				t.Errorf("snapshot during churn: %v", err)
				return
			}
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Whatever was last snapshotted must restore.
	snap, err := LoadSnapshot(cfg.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(snap, cfg); err != nil {
		t.Fatal(err)
	}
}
