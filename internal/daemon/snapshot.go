package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/netmodel"
)

// SnapshotFormat is the on-disk schema version. Bump on any incompatible
// change; Read rejects unknown versions instead of misinterpreting them.
const SnapshotFormat = 1

// Snapshot is the daemon's full persistent state: everything Resume needs
// to continue the timeline warm. One JSON document, written atomically.
//
//   - Base is the instance the daemon originally booted from — the root of
//     the replayable event log (GET /scenario re-exports it unchanged
//     across restarts);
//   - Instance is the live instance as of the snapshot (Base plus every
//     SOLVED delta; queued-but-unsolved edits are in Pending instead);
//   - Events is the complete epoch-tagged ingest history;
//   - Pending are the ingested deltas no solve has consumed yet — Resume
//     re-queues them, honoring core.SessionState's contract that pending
//     work is the caller's to persist;
//   - Session is the core checkpoint: step counter, deployed design(s),
//     simplex basis factorization, aggregation partition.
type Snapshot struct {
	Format int `json:"format"`
	// Epoch is the last solved epoch index, recorded for humans reading
	// the file; Resume trusts Session.Steps.
	Epoch    int                `json:"epoch"`
	Base     *netmodel.Instance `json:"base"`
	Instance *netmodel.Instance `json:"instance"`
	Events   []live.Event       `json:"events,omitempty"`
	Pending  []netmodel.Delta   `json:"pending,omitempty"`
	Session  *core.SessionState `json:"session"`
}

// Validate checks the snapshot's internal consistency: both instances
// valid and same-shaped (deltas never resize), pending deltas in range,
// events in range of the base.
func (s *Snapshot) Validate() error {
	if s == nil {
		return fmt.Errorf("daemon: nil snapshot")
	}
	if s.Format != SnapshotFormat {
		return fmt.Errorf("daemon: snapshot format %d, want %d", s.Format, SnapshotFormat)
	}
	if s.Base == nil || s.Instance == nil {
		return fmt.Errorf("daemon: snapshot missing base or live instance")
	}
	if err := s.Base.Validate(); err != nil {
		return fmt.Errorf("daemon: snapshot base: %w", err)
	}
	if err := s.Instance.Validate(); err != nil {
		return fmt.Errorf("daemon: snapshot instance: %w", err)
	}
	bs, br, bd := s.Base.Dims()
	is, ir, id := s.Instance.Dims()
	if bs != is || br != ir || bd != id {
		return fmt.Errorf("daemon: snapshot base (%d,%d,%d) and instance (%d,%d,%d) differ in shape",
			bs, br, bd, is, ir, id)
	}
	for i := range s.Pending {
		if err := s.Pending[i].Validate(s.Instance); err != nil {
			return fmt.Errorf("daemon: snapshot pending delta %d: %w", i, err)
		}
	}
	for i := range s.Events {
		if s.Events[i].Epoch < 0 {
			return fmt.Errorf("daemon: snapshot event %d at negative epoch", i)
		}
		if err := s.Events[i].Delta.Validate(s.Base); err != nil {
			return fmt.Errorf("daemon: snapshot event %d: %w", i, err)
		}
	}
	if s.Session == nil {
		return fmt.Errorf("daemon: snapshot has no session state")
	}
	if s.Session.Steps < 0 {
		return fmt.Errorf("daemon: snapshot session has negative step counter %d", s.Session.Steps)
	}
	return nil
}

// Snapshot captures the daemon's state. Safe to call while the daemon
// serves; it synchronizes with ingest and the solver.
func (d *Daemon) Snapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *Daemon) snapshotLocked() *Snapshot {
	return &Snapshot{
		Format:   SnapshotFormat,
		Epoch:    d.sess.Steps() - 1,
		Base:     d.base.Clone(),
		Instance: d.in.Clone(),
		Events:   append([]live.Event(nil), d.events...),
		Pending:  append([]netmodel.Delta(nil), d.queue...),
		Session:  d.sess.ExportState(),
	}
}

// WriteSnapshot serializes the snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses and validates a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("daemon: decode snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// SaveSnapshot writes the daemon's current state to path, atomically: the
// JSON goes to a temp file in the same directory and renames over the
// target, so a crash mid-write never leaves a truncated snapshot where the
// next boot will look for one.
func (d *Daemon) SaveSnapshot(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.saveSnapshotLocked(path)
}

func (d *Daemon) saveSnapshotLocked(path string) error {
	return writeSnapshotFile(path, d.snapshotLocked())
}

func writeSnapshotFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".overlayd-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
