// Package daemon is the long-running provisioning service over the live
// re-optimization engine: overlayd. Where internal/live replays a fixed
// scenario to completion, the daemon runs an open-ended timeline — Deltas
// arrive continuously over HTTP, accumulate in a queue, and a solver loop
// consumes them on a cadence (or immediately, when queued churn crosses a
// pressure threshold), re-provisioning the overlay exactly the way §1.3's
// monitoring loop prescribes.
//
// The state split is the whole design:
//
//   - WRITE state (instance, session, delta queue, event log, SLO tracker)
//     lives behind one mutex and is touched only by ingest and the solver;
//   - READ state is an immutable View published by atomic pointer swap
//     after every solve — placement lookups, /design and /status never
//     take the lock, so reads keep serving at full speed while a solve
//     runs.
//
// Everything the daemon has ingested is kept as a replayable event log
// (GET /scenario returns it in live.Scenario form, ready for overlaylive
// -replay), and the full control state — instance, deployed design, simplex
// basis factorization, aggregation partition, unsolved deltas — snapshots
// to disk so a restarted daemon resumes warm: the first post-restart epoch
// adopts the persisted basis (Forrest–Tomlin resume) instead of
// refactorizing cold.
package daemon

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// Config parameterizes a daemon. The zero value of every knob has a usable
// default; only the instance (passed to New/Resume) is mandatory.
type Config struct {
	// Solver configures each epoch's solve (core.DefaultOptions(seed) if
	// zero-valued); Stickiness/WarmStart select the re-provisioning policy,
	// exactly as in live.Policy.
	Solver     core.Options
	Stickiness float64
	WarmStart  bool

	// SolveInterval is the re-optimization cadence; 0 disables the timer
	// (solves then happen only under pressure, via POST /solve, or not at
	// all — tests drive the loop manually).
	SolveInterval time.Duration
	// Pressure forces an immediate solve once this many atomic delta edits
	// are queued; 0 means 64. Negative disables pressure solves.
	Pressure int

	// SLOWindow / SLOTarget parameterize the availability tracker feeding
	// /slo (defaults 8 and 0.5, as in live.Config).
	SLOWindow int
	SLOTarget float64
	// SinkRegion optionally maps demand units to topology regions for the
	// per-region SLO breakdown (the per-stream breakdown needs no map).
	SinkRegion []int

	// SnapshotPath, when set, is where Save/periodic/shutdown snapshots go.
	// SnapshotEvery > 0 additionally snapshots after every n-th solve.
	SnapshotPath  string
	SnapshotEvery int

	// Obs receives the solver's observability signals; its registry backs
	// the mounted /metrics endpoint. Nil runs unobserved (the HTTP API
	// still works, minus /metrics content).
	Obs *obs.Observer
}

func (c *Config) defaults() {
	// Fill the solver knobs DefaultOptions would have set, without
	// clobbering anything the caller chose.
	if c.Solver.C == 0 {
		c.Solver.C = 64
	}
	if c.Solver.MaxRetries == 0 {
		c.Solver.MaxRetries = 8
	}
	if c.Solver.Seed == 0 {
		c.Solver.Seed = 1
	}
	if c.Pressure == 0 {
		c.Pressure = 64
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 8
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 0.5
	}
}

// EpochInfo is one solve's summary: the /status payload's last_epoch and
// POST /solve's response. All fields are deterministic in the ingest
// history except WallNS.
type EpochInfo struct {
	Epoch int `json:"epoch"`
	// Edits counts the atomic delta edits consumed by this solve.
	Edits       int     `json:"edits"`
	TrueCost    float64 `json:"true_cost"`
	LPCost      float64 `json:"lp_cost"`
	Pivots      int     `json:"pivots"`
	ArcChurn    int     `json:"arc_churn"`
	ViewerChurn float64 `json:"viewer_churn"`
	// Warm-resume telemetry: FTUpdates counts warm starts that adopted a
	// persisted factorization this epoch, Refactorizations from-scratch
	// factorizations — the pair the restart smoke test asserts on.
	FTUpdates        int     `json:"ft_updates"`
	Refactorizations int     `json:"refactorizations"`
	LPPatches        int     `json:"lp_patches"`
	LPRebuilds       int     `json:"lp_rebuilds"`
	ActiveSinks      int     `json:"active_sinks"`
	BuiltReflectors  int     `json:"built_reflectors"`
	AuditOK          bool    `json:"audit_ok"`
	SLOOk            bool    `json:"slo_ok"`
	SLOWindowFrac    float64 `json:"slo_window_frac"`
	WallNS           int64   `json:"wall_ns"`
}

// Totals accumulate across the daemon's lifetime (reset by a restore —
// they are monitoring state, not control state).
type Totals struct {
	Solves           int `json:"solves"`
	Edits            int `json:"edits"`
	Pivots           int `json:"pivots"`
	FTUpdates        int `json:"ft_updates"`
	Refactorizations int `json:"refactorizations"`
	SLOBreaches      int `json:"slo_breaches"`
}

// View is the immutable published read state: everything a placement or
// design lookup needs, swapped in atomically after each solve (and once at
// construction/restore). Readers must not mutate it.
type View struct {
	// Epoch is the index of the last solved epoch (session steps - 1).
	Epoch int
	// In is a snapshot of the instance the design was solved against;
	// Design the deployed design; Audit its certificate on In.
	In     *netmodel.Instance
	Design *netmodel.Design
	Audit  netmodel.Audit
	// Last summarizes the solve that produced this view (zero-valued for
	// the view published by a restore, which re-serves the persisted
	// design without solving).
	Last EpochInfo
}

// Daemon is the service state. Construct with New or Resume, serve
// Handler(), and drive the solver loop with Run (or SolveNow in tests).
type Daemon struct {
	cfg Config
	srv *obs.Server
	reg *obs.Registry

	mu        sync.Mutex
	in        *netmodel.Instance
	base      *netmodel.Instance
	sess      *core.Session
	queue     []netmodel.Delta
	qEdits    int
	events    []live.Event
	slo       *live.SLOTracker
	totals    Totals
	sinceSnap int
	start     time.Time

	view atomic.Pointer[View]
	kick chan struct{}
}

// New builds a daemon over a clone of in and performs the initial
// provisioning solve (epoch 0), so placement lookups work the moment the
// listener is up.
func New(in *netmodel.Instance, cfg Config) (*Daemon, error) {
	if in == nil {
		return nil, fmt.Errorf("daemon: nil instance")
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	cfg.defaults()
	d := newDaemon(in, cfg)
	d.sess = core.NewSession(d.cfg.Solver, d.cfg.Stickiness, d.cfg.WarmStart)
	if _, err := d.SolveNow(); err != nil {
		return nil, fmt.Errorf("daemon: initial provisioning: %w", err)
	}
	return d, nil
}

// Resume rebuilds a daemon from a snapshot: the session resumes at its
// persisted step counter with the persisted deployment, basis
// factorization and aggregation partition; unsolved deltas re-queue; and
// the pre-restart placement view is re-published verbatim (same design,
// same instance), so lookups across the restart are byte-identical. The
// SLO window and lifetime totals restart — they are monitoring state.
func Resume(snap *Snapshot, cfg Config) (*Daemon, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	d := newDaemon(snap.Instance, cfg)
	d.base = snap.Base.Clone()
	sess, err := core.RestoreSession(d.in, d.cfg.Solver, d.cfg.Stickiness, d.cfg.WarmStart, snap.Session)
	if err != nil {
		return nil, fmt.Errorf("daemon: resume: %w", err)
	}
	d.sess = sess
	d.events = append(d.events, snap.Events...)
	for _, del := range snap.Pending {
		d.queue = append(d.queue, del)
		d.qEdits += del.Size()
	}
	if dep := sess.Deployed(); dep != nil {
		audit := netmodel.AuditDesign(d.in, dep)
		d.publishLocked(dep, audit, EpochInfo{Epoch: sess.Steps() - 1})
		// The resumed daemon is healthy before its first solve: it serves
		// the persisted design. (The full guarantee predicate needs the
		// rounding variant, which only the next solve knows; structure is
		// what a re-audit of a deployed design can certify.)
		d.srv.SetHealth(obs.HealthStatus{
			OK: audit.StructureOK, Running: true,
			Scenario: d.base.Name, Policy: policyName(d.cfg),
			Epoch: sess.Steps() - 1, Epochs: sess.Steps(),
			AuditOK: audit.StructureOK,
		})
	} else if _, err := d.SolveNow(); err != nil {
		// A never-stepped snapshot restores to a fresh daemon: provision.
		return nil, fmt.Errorf("daemon: resume provisioning: %w", err)
	}
	return d, nil
}

func newDaemon(in *netmodel.Instance, cfg Config) *Daemon {
	d := &Daemon{
		cfg:   cfg,
		in:    in.Clone(),
		base:  in.Clone(),
		kick:  make(chan struct{}, 1),
		start: time.Now(),
	}
	d.slo = live.NewSLOTracker(cfg.SLOWindow, cfg.SLOTarget, cfg.SinkRegion, d.in.Commodity)
	// One registry backs everything: the mounted /metrics endpoint, the
	// daemon's own epoch/SLO gauges, and the solver stack (the session's
	// observer records pivots, factorization events and patch counters into
	// the same families live.Run would).
	d.reg = cfg.Obs.Registry()
	if d.reg == nil {
		d.reg = obs.NewRegistry()
		d.cfg.Obs = &obs.Observer{Reg: d.reg}
	}
	obs.Canonical(d.reg)
	d.cfg.Solver.Obs = d.cfg.Obs
	d.srv = obs.NewServer(d.reg)
	return d
}

// View returns the published read state (never nil after New/Resume).
func (d *Daemon) View() *View { return d.view.Load() }

// Ingest validates the deltas against the live instance and queues them
// for the next solve, tagging each with the epoch that will consume it (so
// the event log replays exactly). Returns the number of atomic edits
// queued in total (including previously queued ones) and the tagged epoch.
// On a validation error nothing is queued — a batch is all-or-nothing.
func (d *Daemon) Ingest(deltas []netmodel.Delta) (queuedEdits, epoch int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range deltas {
		if err := deltas[i].Validate(d.in); err != nil {
			return d.qEdits, d.sess.Steps(), err
		}
	}
	epoch = d.sess.Steps()
	for _, del := range deltas {
		d.queue = append(d.queue, del)
		d.qEdits += del.Size()
		d.events = append(d.events, live.Event{Epoch: epoch, Delta: del})
	}
	if d.cfg.Pressure > 0 && d.qEdits >= d.cfg.Pressure {
		select {
		case d.kick <- struct{}{}:
		default:
		}
	}
	return d.qEdits, epoch, nil
}

// SolveNow drains the queue and re-optimizes immediately (the POST /solve
// path; the solver loop and the pressure trigger funnel here too).
func (d *Daemon) SolveNow() (EpochInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.solveLocked()
}

func (d *Daemon) solveLocked() (EpochInfo, error) {
	edits := 0
	for i := range d.queue {
		ds, err := d.queue[i].Apply(d.in)
		if err != nil {
			// Cannot happen for a queue validated at ingest (deltas never
			// resize and validation is state-independent), but a corrupted
			// snapshot could smuggle one in — fail the solve, keep serving.
			return EpochInfo{}, fmt.Errorf("daemon: applying queued delta %q: %w", d.queue[i].Note, err)
		}
		d.sess.Observe(ds)
		edits += d.queue[i].Size()
	}
	d.queue = d.queue[:0]
	d.qEdits = 0

	epoch := d.sess.Steps()
	start := time.Now()
	res, err := d.sess.Step(d.in)
	if err != nil {
		return EpochInfo{}, fmt.Errorf("daemon: epoch %d solve: %w", epoch, err)
	}
	verdict := d.slo.Observe(d.in.Threshold, res.Audit.Met)

	info := EpochInfo{
		Epoch:            epoch,
		Edits:            edits,
		TrueCost:         res.Audit.Cost,
		LPCost:           res.LPCost,
		Pivots:           res.Timings.LPPivots,
		ArcChurn:         res.ArcChurn,
		ViewerChurn:      res.ViewerChurn,
		FTUpdates:        res.LPStats.FTUpdates,
		Refactorizations: res.LPStats.Refactorizations,
		ActiveSinks:      res.Audit.Sinks,
		AuditOK:          res.AuditOK(),
		SLOOk:            verdict.Ok,
		SLOWindowFrac:    verdict.WindowFrac,
		WallNS:           time.Since(start).Nanoseconds(),
	}
	if res.Patch != nil {
		info.LPPatches = res.Patch.Patches()
		if res.Patch.Rebuilt {
			info.LPRebuilds = 1
		}
	}
	if si := res.ShardInfo; si != nil {
		for _, n := range si.PerShardPatches {
			info.LPPatches += n
		}
		for _, n := range si.PerShardRebuilds {
			info.LPRebuilds += n
		}
	}
	for _, b := range res.Design.Build {
		if b {
			info.BuiltReflectors++
		}
	}
	d.totals.Solves++
	d.totals.Edits += edits
	d.totals.Pivots += info.Pivots
	d.totals.FTUpdates += info.FTUpdates
	d.totals.Refactorizations += info.Refactorizations
	d.totals.SLOBreaches = d.slo.Breaches()

	d.publishLocked(res.Design, res.Audit, info)
	d.serveTelemetryLocked(info, verdict)

	if d.cfg.SnapshotPath != "" && d.cfg.SnapshotEvery > 0 {
		d.sinceSnap++
		if d.sinceSnap >= d.cfg.SnapshotEvery {
			d.sinceSnap = 0
			if err := d.saveSnapshotLocked(d.cfg.SnapshotPath); err != nil {
				return info, fmt.Errorf("daemon: periodic snapshot: %w", err)
			}
		}
	}
	return info, nil
}

// publishLocked swaps in a fresh immutable view. The design is cloned (the
// session keeps mutating its copy through stickiness diffs), the instance
// snapshotted — readers own the view forever.
func (d *Daemon) publishLocked(design *netmodel.Design, audit netmodel.Audit, info EpochInfo) {
	d.view.Store(&View{
		Epoch:  info.Epoch,
		In:     d.in.Clone(),
		Design: design.Clone(),
		Audit:  audit,
		Last:   info,
	})
}

// serveTelemetryLocked refreshes the mounted obs endpoints after a solve.
func (d *Daemon) serveTelemetryLocked(info EpochInfo, verdict live.SLOEpoch) {
	d.srv.SetHealth(obs.HealthStatus{
		OK: info.AuditOK, Running: true,
		Scenario: d.base.Name, Policy: policyName(d.cfg),
		Epoch: info.Epoch, Epochs: info.Epoch + 1,
		AuditOK: info.AuditOK, SLOOk: info.SLOOk,
	})
	regions := make([]obs.RegionSLO, 0, len(verdict.Regions))
	for _, ra := range verdict.Regions {
		regions = append(regions, obs.RegionSLO{
			Region: ra.Region, Active: ra.Active, Met: ra.Met,
			Frac: ra.Frac, WindowFrac: ra.WindowFrac,
		})
	}
	streams := make([]obs.StreamSLO, 0, len(verdict.Streams))
	for _, sa := range verdict.Streams {
		streams = append(streams, obs.StreamSLO{
			Stream: sa.Stream, Active: sa.Active, Met: sa.Met,
			Frac: sa.Frac, WindowFrac: sa.WindowFrac,
		})
	}
	d.srv.SetSLO(obs.SLOStatus{
		Window: d.slo.Window, Target: d.slo.Target,
		Ok: verdict.Ok, WindowFrac: verdict.WindowFrac,
		Breaches: d.slo.Breaches(), MinWindowFrac: d.slo.MinWindowFrac(),
		Regions: regions, Streams: streams,
	})
	reg := d.reg
	reg.Counter(obs.MEpochsTotal).Inc()
	reg.Gauge(obs.MEpoch).Set(float64(info.Epoch))
	reg.Gauge(obs.MEpochCost).Set(info.TrueCost)
	reg.Gauge(obs.MActiveSinks).Set(float64(info.ActiveSinks))
	reg.Gauge(obs.MBuiltReflectors).Set(float64(info.BuiltReflectors))
	reg.Gauge(obs.MSLOWindowAvailability).Set(info.SLOWindowFrac)
	if !info.SLOOk {
		reg.Counter(obs.MSLOBreaches).Inc()
	}
	for _, sa := range verdict.Streams {
		reg.Gauge(obs.MStreamAvailability, obs.L("stream", fmt.Sprint(sa.Stream))).Set(sa.Frac)
	}
	for _, ra := range verdict.Regions {
		reg.Gauge(obs.MRegionAvailability, obs.L("region", fmt.Sprint(ra.Region))).Set(ra.Frac)
	}
}

func policyName(cfg Config) string {
	if cfg.WarmStart {
		return fmt.Sprintf("warm+sticky(%.2f)", cfg.Stickiness)
	}
	return "cold"
}

// Run drives the solver loop until ctx is cancelled: a cadence timer
// (Config.SolveInterval) and the pressure trigger both funnel into
// SolveNow. On shutdown a final snapshot is written when a path is
// configured, so a SIGTERM'd daemon always restarts warm.
func (d *Daemon) Run(ctx context.Context) error {
	var tick <-chan time.Time
	if d.cfg.SolveInterval > 0 {
		t := time.NewTicker(d.cfg.SolveInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			if d.cfg.SnapshotPath != "" {
				if err := d.SaveSnapshot(d.cfg.SnapshotPath); err != nil {
					return fmt.Errorf("daemon: shutdown snapshot: %w", err)
				}
			}
			return nil
		case <-d.kick:
			if _, err := d.SolveNow(); err != nil {
				return err
			}
		case <-tick:
			if _, err := d.SolveNow(); err != nil {
				return err
			}
		}
	}
}

// Scenario exports the full ingest history as a replayable live.Scenario:
// the instance the daemon booted from (or was restored with, verbatim from
// the snapshot's base) plus every delta ever ingested, epoch-tagged. The
// export validates, so overlaylive -replay accepts it as-is.
func (d *Daemon) Scenario() (*live.Scenario, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	epochs := d.sess.Steps()
	for _, ev := range d.events {
		if ev.Epoch+1 > epochs {
			epochs = ev.Epoch + 1
		}
	}
	if epochs == 0 {
		epochs = 1
	}
	sc := &live.Scenario{
		Name:       "overlayd",
		Seed:       d.cfg.Solver.Seed,
		Epochs:     epochs,
		Events:     append([]live.Event(nil), d.events...),
		Base:       d.base.Clone(),
		SinkRegion: append([]int(nil), d.cfg.SinkRegion...),
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("daemon: exported scenario invalid: %w", err)
	}
	return sc, nil
}

// Status is the /status payload.
type Status struct {
	Epoch int `json:"epoch"`
	// PendingDeltas/PendingEdits describe the unsolved queue.
	PendingDeltas int    `json:"pending_deltas"`
	PendingEdits  int    `json:"pending_edits"`
	EventsLogged  int    `json:"events_logged"`
	Policy        string `json:"policy"`
	Incremental   bool   `json:"incremental"`
	Totals        Totals `json:"totals"`
	// Last is the most recent solve's summary (zero Epoch with Solves==0
	// only right after a restore, which publishes without solving).
	Last          EpochInfo `json:"last"`
	SnapshotPath  string    `json:"snapshot_path,omitempty"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

// Status reports the daemon's control-plane state.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Status{
		Epoch:         d.sess.Steps() - 1,
		PendingDeltas: len(d.queue),
		PendingEdits:  d.qEdits,
		EventsLogged:  len(d.events),
		Policy:        policyName(d.cfg),
		Incremental:   d.sess.Incremental(),
		Totals:        d.totals,
		SnapshotPath:  d.cfg.SnapshotPath,
		UptimeSeconds: time.Since(d.start).Seconds(),
	}
	if v := d.View(); v != nil {
		st.Last = v.Last
	}
	return st
}
