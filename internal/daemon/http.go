package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/live"
	"repro/internal/netmodel"
)

// The HTTP/JSON API. Write endpoints (POST /deltas, /solve, /snapshot) go
// through the daemon's mutex; read endpoints (/placement, /design,
// /status's last-epoch part) serve from the atomically published View and
// never block on a running solve. The internal/obs server (/metrics,
// /healthz, /slo, /debug/vars, /debug/pprof) mounts on the same handler.
//
//	POST /deltas      ingest one Delta or a JSON array (strict decode)
//	GET  /placement   ?sink=S[&stream=K] — which reflectors feed the sink
//	GET  /design      the deployed design (netmodel JSON)
//	GET  /status      control-plane state + last solve summary
//	POST /solve       force a re-optimization now, respond with its summary
//	POST /snapshot    persist state to the configured snapshot path
//	GET  /scenario    the ingest history as a replayable live.Scenario

// Handler returns the daemon's full HTTP surface.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/deltas", d.handleDeltas)
	mux.HandleFunc("/placement", d.handlePlacement)
	mux.HandleFunc("/design", d.handleDesign)
	mux.HandleFunc("/status", d.handleStatus)
	mux.HandleFunc("/solve", d.handleSolve)
	mux.HandleFunc("/snapshot", d.handleSnapshot)
	mux.HandleFunc("/scenario", d.handleScenario)
	mux.Handle("/", d.srv.Handler())
	return mux
}

// apiError is every non-2xx JSON body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func methodNotAllowed(w http.ResponseWriter, want string) {
	w.Header().Set("Allow", want)
	writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "method not allowed, use " + want})
}

// IngestResponse is POST /deltas' 202 body.
type IngestResponse struct {
	// Deltas/Edits count what THIS request queued; QueuedEdits the queue
	// total afterwards. Epoch is the epoch index that will consume them.
	Deltas      int `json:"deltas"`
	Edits       int `json:"edits"`
	QueuedEdits int `json:"queued_edits"`
	Epoch       int `json:"epoch"`
}

func (d *Daemon) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	deltas, err := netmodel.DecodeDeltas(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	edits := 0
	for i := range deltas {
		edits += deltas[i].Size()
	}
	queued, epoch, err := d.Ingest(deltas)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{
		Deltas: len(deltas), Edits: edits, QueuedEdits: queued, Epoch: epoch,
	})
}

// PlacementStream is one stream's serving assignment for a sink.
type PlacementStream struct {
	Stream int `json:"stream"`
	// Unit is the demand-unit column behind the (sink, stream) pair.
	Unit      int     `json:"unit"`
	Threshold float64 `json:"threshold"`
	Active    bool    `json:"active"`
	// Reflectors serve this subscription (ascending); Met is the audit's
	// verdict on whether the assignment meets the reliability threshold.
	Reflectors []int `json:"reflectors"`
	Met        bool  `json:"met"`
}

// PlacementResponse answers "which reflectors feed sink S (stream m)?" from
// the published design of epoch Epoch.
type PlacementResponse struct {
	Sink    int               `json:"sink"`
	Epoch   int               `json:"epoch"`
	Streams []PlacementStream `json:"streams"`
}

func (d *Daemon) handlePlacement(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	v := d.View()
	q := r.URL.Query()
	sink, err := strconv.Atoi(q.Get("sink"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "sink must be an integer viewer id"})
		return
	}
	if sink < 0 || sink >= v.In.NumViewers() {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("sink %d outside [0,%d)", sink, v.In.NumViewers())})
		return
	}
	wantStream := -1
	if s := q.Get("stream"); s != "" {
		wantStream, err = strconv.Atoi(s)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "stream must be an integer stream id"})
			return
		}
		if v.In.FindUnit(sink, wantStream) < 0 {
			writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("sink %d has no subscription slot for stream %d", sink, wantStream)})
			return
		}
	}
	resp := PlacementResponse{Sink: sink, Epoch: v.Epoch, Streams: []PlacementStream{}}
	lo, hi := v.In.ViewerRange(sink)
	for j := lo; j < hi; j++ {
		k := v.In.Commodity[j]
		if wantStream >= 0 && k != wantStream {
			continue
		}
		ps := PlacementStream{
			Stream:     k,
			Unit:       j,
			Threshold:  v.In.Threshold[j],
			Active:     v.In.Threshold[j] > 0,
			Reflectors: []int{},
			Met:        j < len(v.Audit.Met) && v.Audit.Met[j],
		}
		for i := range v.Design.Serve {
			if v.Design.Serve[i][j] {
				ps.Reflectors = append(ps.Reflectors, i)
			}
		}
		resp.Streams = append(resp.Streams, ps)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = netmodel.WriteDesignJSON(w, d.View().Design)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, d.Status())
}

func (d *Daemon) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	info, err := d.SolveNow()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// SnapshotResponse is POST /snapshot's body.
type SnapshotResponse struct {
	Path  string `json:"path"`
	Epoch int    `json:"epoch"`
}

func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	if d.cfg.SnapshotPath == "" {
		writeJSON(w, http.StatusConflict, apiError{Error: "no snapshot path configured (start with -snapshot)"})
		return
	}
	if err := d.SaveSnapshot(d.cfg.SnapshotPath); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Path: d.cfg.SnapshotPath, Epoch: d.Status().Epoch})
}

func (d *Daemon) handleScenario(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	sc, err := d.Scenario()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = live.WriteScenario(w, sc)
}
