// Package netmodel defines the 3-level overlay network model of the paper
// (Figure 1): sources (entrypoints) S, reflectors R, and sinks (edgeservers)
// D, with per-edge loss probabilities and costs, reflector build costs and
// fanouts, and per-sink success-probability demands. It also defines the
// integral Design produced by the solvers and the audit machinery that
// checks a design against every constraint of the IP in §2.
//
// Following §2 of the paper, each demand unit (column of the sink axis)
// demands exactly one commodity, and commodity k originates at source k, so
// the number of commodities equals |S|. A sink wanting several streams is
// no longer split into anonymous copies: SinkOf groups its units into one
// first-class multi-stream sink (see multistream.go), and SplitStreams
// recovers the paper's copy-split form when the WLOG view is wanted.
package netmodel

import (
	"errors"
	"fmt"
	"math"
)

// ProbEps is the clamp applied to probabilities before log transforms so
// that weights stay finite: probabilities are confined to [ProbEps, 1-ProbEps].
const ProbEps = 1e-12

// Instance is a complete problem instance: the tripartite digraph with
// costs, loss probabilities, fanout constraints and demands, plus the
// optional extension data of §6 (bandwidths, reflector–sink capacities,
// ISP colors).
type Instance struct {
	Name string `json:"name"`

	// Core sizes. Commodity k originates at source k, so NumSources is
	// also the number of commodities (u in the paper).
	NumSources    int `json:"num_sources"`
	NumReflectors int `json:"num_reflectors"`
	NumSinks      int `json:"num_sinks"`

	// ReflectorCost[i] is r_i, the cost of building reflector i.
	ReflectorCost []float64 `json:"reflector_cost"`
	// Fanout[i] is F_i, the maximum number of outgoing streams reflector
	// i can support (in bandwidth units when Bandwidth is set).
	Fanout []float64 `json:"fanout"`

	// SrcRefLoss[k][i] is p_{ki}: probability a packet of commodity k is
	// lost on the source_k -> reflector_i link.
	SrcRefLoss [][]float64 `json:"src_ref_loss"`
	// RefSinkLoss[i][j] is p_{ij}: loss probability on reflector_i ->
	// sink_j.
	RefSinkLoss [][]float64 `json:"ref_sink_loss"`

	// SrcRefCost[k][i] is c^k_{ki}: cost of forwarding stream k from its
	// source to reflector i (the y^k_i term of the objective).
	SrcRefCost [][]float64 `json:"src_ref_cost"`
	// RefSinkCost[i][j] is c^k_{ij} for k = Commodity[j]: cost of serving
	// sink j from reflector i (the x^k_{ij} term). Because each sink
	// demands a single commodity, a 2-D matrix fully captures the
	// per-commodity edge costs of the paper.
	RefSinkCost [][]float64 `json:"ref_sink_cost"`

	// Commodity[j] is the stream demanded by sink j (index into sources).
	Commodity []int `json:"commodity"`
	// Threshold[j] is Φ^k_j: the minimum success probability with which
	// sink j must receive its stream.
	Threshold []float64 `json:"threshold"`

	// --- Extensions (§6) ---

	// Bandwidth[k] is B^k of §6.1: the bandwidth one copy of stream k
	// consumes at a reflector. Nil means every stream weighs 1 unit.
	Bandwidth []float64 `json:"bandwidth,omitempty"`
	// EdgeCap[i][j] is u_{ij} of §6.3: a capacity on the reflector_i ->
	// sink_j arc. Nil means uncapacitated. With one commodity per sink
	// the constraint Σ_k x^k_{ij} ≤ u_{ij} binds only at u_{ij} < 1, i.e.
	// it forbids the arc; values ≥ 1 are inert but carried for fidelity.
	EdgeCap [][]float64 `json:"edge_cap,omitempty"`
	// Color[i] is the ISP group of reflector i (§6.4). NumColors is the
	// number of groups m; Color nil means no color constraints.
	Color     []int `json:"color,omitempty"`
	NumColors int   `json:"num_colors,omitempty"`
	// IngestCap[i] is u_i of §6.2 constraint (8): a cap on how many
	// distinct streams reflector i may ingest (Σ_k y^k_i ≤ u_i). Nil
	// means uncapacitated. §6.2 proves no rounding can guarantee better
	// than an O(log n) violation of this constraint (else set cover
	// would be constant-approximable), so solvers treat it as soft and
	// the audit reports the realized excess.
	IngestCap []float64 `json:"ingest_cap,omitempty"`

	// SinkOf groups demand units into multi-stream sinks (see
	// multistream.go): SinkOf[j] is the physical sink ("viewer") that
	// demand unit j — one (sink, stream) subscription — belongs to. Nil
	// means every unit is its own sink (the paper's single-stream model).
	// Viewer ids must be dense, nondecreasing and contiguous, each
	// viewer's streams distinct, and §6.3 edge caps constant within a
	// viewer; Validate enforces all of it.
	SinkOf []int `json:"sink_of,omitempty"`

	// UnitWeight[j] is the number of real subscriptions demand unit j
	// stands for — the weighted super-sink view of internal/agg, where
	// one unit aggregates many co-located viewers of the same stream.
	// Serving unit j consumes UnitWeight[j]·B^k fanout units at the
	// reflector (constraint (3) and the cutting planes (4) scale by it),
	// while the covering constraint is per-unit as before: meeting the
	// representative threshold meets every member. Nil means every unit
	// weighs 1 (the flat model). Weights may be 0 (a fully unsubscribed
	// aggregate); such units should carry Threshold 0 too.
	UnitWeight []float64 `json:"unit_weight,omitempty"`
}

// Dims returns (|S|, |R|, |D|).
func (in *Instance) Dims() (s, r, d int) {
	return in.NumSources, in.NumReflectors, in.NumSinks
}

// Validate checks structural consistency: matrix shapes, probability and
// threshold ranges, nonnegative costs, fanouts, and extension data.
func (in *Instance) Validate() error {
	S, R, D := in.Dims()
	if S <= 0 || R <= 0 || D <= 0 {
		return fmt.Errorf("netmodel: non-positive dimensions S=%d R=%d D=%d", S, R, D)
	}
	if len(in.ReflectorCost) != R {
		return fmt.Errorf("netmodel: ReflectorCost has %d entries, want %d", len(in.ReflectorCost), R)
	}
	if len(in.Fanout) != R {
		return fmt.Errorf("netmodel: Fanout has %d entries, want %d", len(in.Fanout), R)
	}
	for i, f := range in.Fanout {
		if f < 0 {
			return fmt.Errorf("netmodel: negative fanout %g at reflector %d", f, i)
		}
	}
	for i, c := range in.ReflectorCost {
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("netmodel: bad reflector cost %g at %d", c, i)
		}
	}
	if err := checkMatrix("SrcRefLoss", in.SrcRefLoss, S, R, 0, 1); err != nil {
		return err
	}
	if err := checkMatrix("RefSinkLoss", in.RefSinkLoss, R, D, 0, 1); err != nil {
		return err
	}
	if err := checkMatrix("SrcRefCost", in.SrcRefCost, S, R, 0, math.Inf(1)); err != nil {
		return err
	}
	if err := checkMatrix("RefSinkCost", in.RefSinkCost, R, D, 0, math.Inf(1)); err != nil {
		return err
	}
	if len(in.Commodity) != D {
		return fmt.Errorf("netmodel: Commodity has %d entries, want %d", len(in.Commodity), D)
	}
	for j, k := range in.Commodity {
		if k < 0 || k >= S {
			return fmt.Errorf("netmodel: sink %d demands unknown commodity %d", j, k)
		}
	}
	if len(in.Threshold) != D {
		return fmt.Errorf("netmodel: Threshold has %d entries, want %d", len(in.Threshold), D)
	}
	for j, phi := range in.Threshold {
		if phi < 0 || phi >= 1 {
			return fmt.Errorf("netmodel: threshold %g at sink %d outside [0,1)", phi, j)
		}
	}
	if in.Bandwidth != nil {
		if len(in.Bandwidth) != S {
			return fmt.Errorf("netmodel: Bandwidth has %d entries, want %d", len(in.Bandwidth), S)
		}
		for k, b := range in.Bandwidth {
			if b <= 0 {
				return fmt.Errorf("netmodel: non-positive bandwidth %g for stream %d", b, k)
			}
		}
	}
	if in.EdgeCap != nil {
		if err := checkMatrix("EdgeCap", in.EdgeCap, R, D, 0, math.Inf(1)); err != nil {
			return err
		}
	}
	if in.Color != nil {
		if len(in.Color) != R {
			return fmt.Errorf("netmodel: Color has %d entries, want %d", len(in.Color), R)
		}
		if in.NumColors <= 0 {
			return errors.New("netmodel: Color set but NumColors not positive")
		}
		for i, c := range in.Color {
			if c < 0 || c >= in.NumColors {
				return fmt.Errorf("netmodel: reflector %d has color %d outside [0,%d)", i, c, in.NumColors)
			}
		}
	}
	if in.IngestCap != nil {
		if len(in.IngestCap) != R {
			return fmt.Errorf("netmodel: IngestCap has %d entries, want %d", len(in.IngestCap), R)
		}
		for i, u := range in.IngestCap {
			if u < 0 || math.IsNaN(u) {
				return fmt.Errorf("netmodel: bad ingest cap %g at reflector %d", u, i)
			}
		}
	}
	if in.UnitWeight != nil {
		if len(in.UnitWeight) != D {
			return fmt.Errorf("netmodel: UnitWeight has %d entries, want %d", len(in.UnitWeight), D)
		}
		for j, w := range in.UnitWeight {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("netmodel: bad unit weight %g at sink %d", w, j)
			}
		}
	}
	return in.validateSinkOf()
}

func checkMatrix(name string, m [][]float64, rows, cols int, lo, hi float64) error {
	if len(m) != rows {
		return fmt.Errorf("netmodel: %s has %d rows, want %d", name, len(m), rows)
	}
	for r, row := range m {
		if len(row) != cols {
			return fmt.Errorf("netmodel: %s row %d has %d cols, want %d", name, r, len(row), cols)
		}
		for c, v := range row {
			if math.IsNaN(v) || v < lo || v > hi {
				return fmt.Errorf("netmodel: %s[%d][%d]=%g outside [%g,%g]", name, r, c, v, lo, hi)
			}
		}
	}
	return nil
}

// PathFailure returns the probability that a packet of sink j's commodity is
// lost on the two-hop path through reflector i: p_{ki} + p_{ij} - p_{ki}p_{ij}
// (§1.3), where k = Commodity[j].
func (in *Instance) PathFailure(i, j int) float64 {
	k := in.Commodity[j]
	pki := in.SrcRefLoss[k][i]
	pij := in.RefSinkLoss[i][j]
	return pki + pij - pki*pij
}

// Weight returns w^k_{ij} = -log of the path failure probability for serving
// sink j via reflector i (§2). Probabilities are clamped to
// [ProbEps, 1-ProbEps] so the weight is finite.
func (in *Instance) Weight(i, j int) float64 {
	return -math.Log(clampProb(in.PathFailure(i, j)))
}

// Demand returns W^k_j = -log(1 - Φ^k_j), the weight each sink must
// accumulate across its chosen reflectors (§2).
func (in *Instance) Demand(j int) float64 {
	return -math.Log(clampProb(1 - in.Threshold[j]))
}

// CappedWeight returns min(Weight(i,j), Demand(j)). The analysis in §4
// assumes WLOG w^k_{ij} ≤ W^k_j ("it never helps to have more weight on an
// edge than the one that a sink demands"); all solvers use the capped weight.
func (in *Instance) CappedWeight(i, j int) float64 {
	w := in.Weight(i, j)
	if d := in.Demand(j); w > d {
		return d
	}
	return w
}

// StreamBandwidth returns B^k (1 when the §6.1 extension is unused).
func (in *Instance) StreamBandwidth(k int) float64 {
	if in.Bandwidth == nil {
		return 1
	}
	return in.Bandwidth[k]
}

// Weighted reports whether the instance carries per-unit weights (the
// aggregated super-sink view of internal/agg).
func (in *Instance) Weighted() bool { return in.UnitWeight != nil }

// WeightOf returns UnitWeight[j] (1 when the instance is unweighted).
func (in *Instance) WeightOf(j int) float64 {
	if in.UnitWeight == nil {
		return 1
	}
	return in.UnitWeight[j]
}

// UnitLoad returns the fanout load serving demand unit j puts on a
// reflector: UnitWeight[j]·B^k for k = Commodity[j]. Every capacity
// consumer (LP constraint (3)/(4), FanoutUse, rounding, shard bidding)
// must use this instead of the bare stream bandwidth so weighted
// aggregates reserve capacity for all their members.
func (in *Instance) UnitLoad(j int) float64 {
	return in.WeightOf(j) * in.StreamBandwidth(in.Commodity[j])
}

// ArcAllowed reports whether the reflector i -> sink j arc is usable: the
// §6.3 capacity, if present, must be at least 1 for an integral assignment.
func (in *Instance) ArcAllowed(i, j int) bool {
	if in.EdgeCap == nil {
		return true
	}
	return in.EdgeCap[i][j] >= 1
}

// SinksOfCommodity returns, for each commodity k, the sinks demanding k.
func (in *Instance) SinksOfCommodity() [][]int {
	out := make([][]int, in.NumSources)
	for j, k := range in.Commodity {
		out[k] = append(out[k], j)
	}
	return out
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	cp := *in
	cp.ReflectorCost = append([]float64(nil), in.ReflectorCost...)
	cp.Fanout = append([]float64(nil), in.Fanout...)
	cp.SrcRefLoss = cloneMatrix(in.SrcRefLoss)
	cp.RefSinkLoss = cloneMatrix(in.RefSinkLoss)
	cp.SrcRefCost = cloneMatrix(in.SrcRefCost)
	cp.RefSinkCost = cloneMatrix(in.RefSinkCost)
	cp.Commodity = append([]int(nil), in.Commodity...)
	cp.Threshold = append([]float64(nil), in.Threshold...)
	if in.Bandwidth != nil {
		cp.Bandwidth = append([]float64(nil), in.Bandwidth...)
	}
	if in.EdgeCap != nil {
		cp.EdgeCap = cloneMatrix(in.EdgeCap)
	}
	if in.Color != nil {
		cp.Color = append([]int(nil), in.Color...)
	}
	if in.IngestCap != nil {
		cp.IngestCap = append([]float64(nil), in.IngestCap...)
	}
	if in.SinkOf != nil {
		cp.SinkOf = append([]int(nil), in.SinkOf...)
	}
	if in.UnitWeight != nil {
		cp.UnitWeight = append([]float64(nil), in.UnitWeight...)
	}
	return &cp
}

func cloneMatrix(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

func clampProb(p float64) float64 {
	if p < ProbEps {
		return ProbEps
	}
	if p > 1-ProbEps {
		return 1 - ProbEps
	}
	return p
}

// NewZeroInstance allocates an instance of the given dimensions with all
// probabilities, costs and thresholds zero, commodities all 0, fanouts zero.
// Generators fill in the fields.
func NewZeroInstance(s, r, d int) *Instance {
	in := &Instance{
		NumSources:    s,
		NumReflectors: r,
		NumSinks:      d,
		ReflectorCost: make([]float64, r),
		Fanout:        make([]float64, r),
		SrcRefLoss:    zeroMatrix(s, r),
		RefSinkLoss:   zeroMatrix(r, d),
		SrcRefCost:    zeroMatrix(s, r),
		RefSinkCost:   zeroMatrix(r, d),
		Commodity:     make([]int, d),
		Threshold:     make([]float64, d),
	}
	return in
}

func zeroMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	backing := make([]float64, rows*cols)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}
