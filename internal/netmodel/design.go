package netmodel

import (
	"fmt"
	"math"
)

// Design is an integral overlay network: which reflectors are built (z_i),
// which streams each built reflector ingests (y^k_i), and which reflector
// serves which sink (x^k_{ij}; since each sink demands one commodity this is
// an R×D boolean matrix).
type Design struct {
	Build   []bool   `json:"build"`  // z_i
	Ingest  [][]bool `json:"ingest"` // y[k][i]
	Serve   [][]bool `json:"serve"`  // x[i][j]
	Comment string   `json:"comment,omitempty"`
}

// NewDesign returns an all-zero design shaped for in.
func NewDesign(in *Instance) *Design {
	S, R, D := in.Dims()
	d := &Design{
		Build:  make([]bool, R),
		Ingest: make([][]bool, S),
		Serve:  make([][]bool, R),
	}
	for k := 0; k < S; k++ {
		d.Ingest[k] = make([]bool, R)
	}
	for i := 0; i < R; i++ {
		d.Serve[i] = make([]bool, D)
	}
	return d
}

// Clone returns a deep copy of the design.
func (d *Design) Clone() *Design {
	cp := &Design{
		Build:   append([]bool(nil), d.Build...),
		Ingest:  make([][]bool, len(d.Ingest)),
		Serve:   make([][]bool, len(d.Serve)),
		Comment: d.Comment,
	}
	for k := range d.Ingest {
		cp.Ingest[k] = append([]bool(nil), d.Ingest[k]...)
	}
	for i := range d.Serve {
		cp.Serve[i] = append([]bool(nil), d.Serve[i]...)
	}
	return cp
}

// Normalize enforces the implication constraints (1) and (2) of the IP in
// the cheap direction: serving a sink forces ingesting the stream, and
// ingesting forces building. It never removes service decisions.
func (d *Design) Normalize(in *Instance) {
	_, R, D := in.Dims()
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if d.Serve[i][j] {
				d.Ingest[in.Commodity[j]][i] = true
			}
		}
	}
	for k := range d.Ingest {
		for i, v := range d.Ingest[k] {
			if v {
				d.Build[i] = true
			}
		}
	}
}

// Cost returns the total cost of the design under the §2 objective:
// Σ r_i z_i + Σ c^k_{ki} y^k_i + Σ c^k_{ij} x^k_{ij}.
func (d *Design) Cost(in *Instance) float64 {
	total := 0.0
	for i, b := range d.Build {
		if b {
			total += in.ReflectorCost[i]
		}
	}
	for k := range d.Ingest {
		for i, v := range d.Ingest[k] {
			if v {
				total += in.SrcRefCost[k][i]
			}
		}
	}
	for i := range d.Serve {
		for j, v := range d.Serve[i] {
			if v {
				total += in.RefSinkCost[i][j]
			}
		}
	}
	return total
}

// FanoutUse returns the fanout consumed at reflector i:
// Σ_j x_{ij} · UnitWeight[j] · B^k (weights and B^k are 1 without the
// internal/agg and §6.1 extensions respectively).
func (d *Design) FanoutUse(in *Instance, i int) float64 {
	use := 0.0
	for j, v := range d.Serve[i] {
		if v {
			use += in.UnitLoad(j)
		}
	}
	return use
}

// SinkWeight returns the accumulated (capped) weight at sink j:
// Σ_i x_{ij} · min(w_{ij}, W_j).
func (d *Design) SinkWeight(in *Instance, j int) float64 {
	w := 0.0
	for i := range d.Serve {
		if d.Serve[i][j] {
			w += in.CappedWeight(i, j)
		}
	}
	return w
}

// SinkFailureProb returns the exact probability that a packet fails to reach
// sink j given the design: the product over serving reflectors of the
// two-hop path failure probabilities (§1.3; exact for 3-level networks
// because distinct two-hop paths to a sink share no links).
// A sink served by no reflector fails with probability 1.
func (d *Design) SinkFailureProb(in *Instance, j int) float64 {
	p := 1.0
	for i := range d.Serve {
		if d.Serve[i][j] {
			p *= in.PathFailure(i, j)
		}
	}
	return p
}

// Audit is a full constraint-by-constraint check of a design against an
// instance, reporting the worst multiplicative violations. A design meeting
// the paper's end-to-end guarantee has WeightFactor ≥ 1/4 and
// FanoutFactor ≤ 4 (and ColorExcess = 0 when §6.4 is active only for the
// path-rounded variant's additive bound).
type Audit struct {
	Cost float64
	// WeightFactor is min_j SinkWeight(j)/Demand(j); ≥ 1 means every
	// reliability constraint is met outright (sinks with zero demand are
	// skipped).
	WeightFactor float64
	// WorstSink is the argmin of the above.
	WorstSink int
	// FanoutFactor is max_i FanoutUse(i)/F_i (built reflectors only,
	// reflectors with zero fanout must be unused or the factor is +Inf).
	FanoutFactor float64
	// WorstReflector is the argmax of the above.
	WorstReflector int
	// StructureOK reports constraints (1),(2): serve ⇒ ingest ⇒ build.
	StructureOK bool
	// ColorExcess is the §6.4 violation: max over (sink, color) of
	// (copies delivered from that color) - 1; 0 when the constraint holds.
	ColorExcess int
	// EdgeCapExcess is the §6.3 violation: max over arcs of
	// (flow on arc) - u_{ij}, counting each served sink as 1 unit.
	EdgeCapExcess float64
	// IngestExcess is the §6.2 constraint-(8) violation: max over
	// reflectors of (streams ingested) − u_i. §6.2 proves an O(log n)
	// violation is unavoidable in general.
	IngestExcess float64
	// MetDemand counts demand units whose success probability meets Φ_j
	// exactly (via the exact product, not the weight surrogate).
	MetDemand int
	// Sinks is the total number of demand units with positive demand.
	Sinks int
	// MetViewers counts physical sinks (viewers, see multistream.go) ALL
	// of whose active subscriptions meet their thresholds; Viewers counts
	// viewers with at least one active subscription. On instances without
	// a sink grouping these equal MetDemand and Sinks.
	MetViewers int
	Viewers    int
	// Met is the per-demand-unit breakdown behind MetDemand: Met[j] is true
	// when unit j has positive demand and meets its exact reliability
	// threshold. Consumers slicing availability along another dimension —
	// the live engine's per-region SLO — aggregate from here instead of
	// re-auditing.
	Met []bool
}

// AuditDesign audits d against in.
func AuditDesign(in *Instance, d *Design) Audit {
	S, R, D := in.Dims()
	a := Audit{Cost: d.Cost(in), WeightFactor: math.Inf(1), WorstSink: -1, WorstReflector: -1, StructureOK: true}
	// Structure.
	for i := 0; i < R; i++ {
		for j := 0; j < D; j++ {
			if d.Serve[i][j] && !d.Ingest[in.Commodity[j]][i] {
				a.StructureOK = false
			}
		}
	}
	for k := 0; k < S; k++ {
		for i := 0; i < R; i++ {
			if d.Ingest[k][i] && !d.Build[i] {
				a.StructureOK = false
			}
		}
	}
	// Weights and exact reliability (per demand unit, then rolled up to
	// viewers: a viewer is met only when every active subscription is).
	met := make([]bool, D)
	for j := 0; j < D; j++ {
		dem := in.Demand(j)
		if in.Threshold[j] <= 0 {
			continue
		}
		a.Sinks++
		got := d.SinkWeight(in, j)
		f := got / dem
		if f < a.WeightFactor {
			a.WeightFactor = f
			a.WorstSink = j
		}
		if 1-d.SinkFailureProb(in, j) >= in.Threshold[j]-1e-12 {
			a.MetDemand++
			met[j] = true
		}
	}
	a.Met = met
	if a.Sinks == 0 {
		a.WeightFactor = 1
	}
	for lo := 0; lo < D; {
		hi := lo + 1
		for hi < D && in.Viewer(hi) == in.Viewer(lo) {
			hi++
		}
		active, allMet := false, true
		for j := lo; j < hi; j++ {
			if in.Threshold[j] > 0 {
				active = true
				allMet = allMet && met[j]
			}
		}
		if active {
			a.Viewers++
			if allMet {
				a.MetViewers++
			}
		}
		lo = hi
	}
	// Fanout.
	for i := 0; i < R; i++ {
		use := d.FanoutUse(in, i)
		if use == 0 {
			continue
		}
		var f float64
		if in.Fanout[i] <= 0 {
			f = math.Inf(1)
		} else {
			f = use / in.Fanout[i]
		}
		if f > a.FanoutFactor {
			a.FanoutFactor = f
			a.WorstReflector = i
		}
	}
	// Colors (§6.4).
	if in.Color != nil {
		for j := 0; j < D; j++ {
			counts := make([]int, in.NumColors)
			for i := 0; i < R; i++ {
				if d.Serve[i][j] {
					counts[in.Color[i]]++
				}
			}
			for _, c := range counts {
				if c-1 > a.ColorExcess {
					a.ColorExcess = c - 1
				}
			}
		}
	}
	// Edge capacities (§6.3).
	if in.EdgeCap != nil {
		for i := 0; i < R; i++ {
			for j := 0; j < D; j++ {
				if d.Serve[i][j] {
					if ex := 1 - in.EdgeCap[i][j]; ex > a.EdgeCapExcess {
						a.EdgeCapExcess = ex
					}
				}
			}
		}
	}
	// Ingest caps (§6.2 constraint (8)).
	if in.IngestCap != nil {
		for i := 0; i < R; i++ {
			streams := 0.0
			for k := 0; k < S; k++ {
				if d.Ingest[k][i] {
					streams++
				}
			}
			if ex := streams - in.IngestCap[i]; ex > a.IngestExcess {
				a.IngestExcess = ex
			}
		}
	}
	return a
}

// String renders a one-line audit summary.
func (a Audit) String() string {
	return fmt.Sprintf("cost=%.4g weightFactor=%.3f fanoutFactor=%.3f met=%d/%d structureOK=%v colorExcess=%d",
		a.Cost, a.WeightFactor, a.FanoutFactor, a.MetDemand, a.Sinks, a.StructureOK, a.ColorExcess)
}
