package netmodel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the instance to w (indented, stable field order via
// encoding/json struct tags).
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadJSON parses an instance from r and validates it.
func ReadJSON(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("netmodel: decode instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// SaveFile writes the instance to path as JSON.
func (in *Instance) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := in.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads and validates an instance from a JSON file.
func LoadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// DecodeDeltas parses one Delta or a JSON array of Deltas from r, strictly:
// unknown fields are rejected, so a typo'd edit key ("set_treshold") fails
// loudly instead of silently ingesting an empty delta — the failure mode a
// long-running provisioning endpoint cannot afford. Validation against an
// instance is the caller's job (the deltas may be bound for an instance the
// decoder has no business knowing about).
func DecodeDeltas(r io.Reader) ([]Delta, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("netmodel: reading deltas: %w", err)
	}
	strict := func(raw []byte, v any) error {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return err
		}
		// Trailing garbage after the value is a malformed request too.
		if dec.More() {
			return fmt.Errorf("trailing data after delta payload")
		}
		return nil
	}
	// Sniff the first token so unknown-field errors surface as themselves
	// instead of as a shape mismatch from the wrong decode attempt.
	if arr := bytes.TrimLeft(data, " \t\r\n"); len(arr) > 0 && arr[0] == '[' {
		var list []Delta
		if err := strict(data, &list); err != nil {
			return nil, fmt.Errorf("netmodel: decode deltas: %w", err)
		}
		return list, nil
	}
	var one Delta
	if err := strict(data, &one); err != nil {
		return nil, fmt.Errorf("netmodel: decode deltas: %w", err)
	}
	return []Delta{one}, nil
}

// WriteDesignJSON serializes a design to w.
func WriteDesignJSON(w io.Writer, d *Design) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDesignJSON parses a design from r.
func ReadDesignJSON(r io.Reader) (*Design, error) {
	var d Design
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("netmodel: decode design: %w", err)
	}
	return &d, nil
}
