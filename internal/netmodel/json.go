package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the instance to w (indented, stable field order via
// encoding/json struct tags).
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadJSON parses an instance from r and validates it.
func ReadJSON(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("netmodel: decode instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// SaveFile writes the instance to path as JSON.
func (in *Instance) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := in.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads and validates an instance from a JSON file.
func LoadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// WriteDesignJSON serializes a design to w.
func WriteDesignJSON(w io.Writer, d *Design) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDesignJSON parses a design from r.
func ReadDesignJSON(r io.Reader) (*Design, error) {
	var d Design
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("netmodel: decode design: %w", err)
	}
	return &d, nil
}
