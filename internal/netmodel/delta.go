package netmodel

import (
	"fmt"
	"math"
)

// Delta is an incremental change to an Instance: the unit of churn in the
// §1.3 monitoring loop. Each field is a list of atomic edits (set a sink's
// threshold, scale an arc's cost, ...) that Apply validates as a whole and
// then applies in place. Deltas deliberately cannot change the instance
// dimensions — the live re-optimization engine relies on the LP keeping its
// shape across epochs so simplex bases stay warm-startable — so churn in
// the sink population is expressed by toggling thresholds between 0
// (inactive, no demand) and a positive target.
type Delta struct {
	// Note names the change for reports ("flashcrowd join wave 2/3").
	Note string `json:"note,omitempty"`

	// SetThreshold sets Threshold[Sink] = Value (sink join/leave; Value in
	// [0,1), 0 means the sink demands nothing and is skipped by audits).
	// Sink indexes the demand-unit axis directly.
	SetThreshold []SinkValue `json:"set_threshold,omitempty"`
	// SetStream addresses a subscription by (viewer, stream) instead of by
	// raw unit: it sets the threshold of viewer Sink's slot for stream
	// Stream (subscribe with a positive target, unsubscribe with 0). The
	// slot must exist in the instance's fixed stream layout — deltas never
	// resize, so a viewer can only toggle streams it was built with, the
	// same way SetThreshold toggles sinks rather than adding them.
	SetStream []StreamValue `json:"set_stream,omitempty"`
	// SetFanout sets Fanout[Ref] = Value (reflector failure at 0,
	// recovery by restoring the original fanout).
	SetFanout []RefValue `json:"set_fanout,omitempty"`
	// ScaleReflectorCost multiplies ReflectorCost[Ref] by Value ≥ 0.
	ScaleReflectorCost []RefValue `json:"scale_reflector_cost,omitempty"`
	// ScaleSrcRefCost multiplies SrcRefCost[A][B] by Value ≥ 0 (A = source,
	// B = reflector); ScaleRefSinkCost likewise with A = reflector, B = sink.
	ScaleSrcRefCost  []ArcValue `json:"scale_src_ref_cost,omitempty"`
	ScaleRefSinkCost []ArcValue `json:"scale_ref_sink_cost,omitempty"`
	// SetSrcRefLoss / SetRefSinkLoss overwrite a link's loss probability
	// (Value in [0,1]); ScaleSrcRefLoss / ScaleRefSinkLoss multiply it,
	// saturating at 1 (loss drift, outages, recoveries).
	SetSrcRefLoss    []ArcValue `json:"set_src_ref_loss,omitempty"`
	SetRefSinkLoss   []ArcValue `json:"set_ref_sink_loss,omitempty"`
	ScaleSrcRefLoss  []ArcValue `json:"scale_src_ref_loss,omitempty"`
	ScaleRefSinkLoss []ArcValue `json:"scale_ref_sink_loss,omitempty"`
}

// SinkValue is an atomic per-sink edit.
type SinkValue struct {
	Sink  int     `json:"sink"`
	Value float64 `json:"value"`
}

// StreamValue is an atomic per-(viewer, stream) subscription edit.
type StreamValue struct {
	Sink   int     `json:"sink"` // viewer id (= unit id on ungrouped instances)
	Stream int     `json:"stream"`
	Value  float64 `json:"value"`
}

// RefValue is an atomic per-reflector edit.
type RefValue struct {
	Ref   int     `json:"ref"`
	Value float64 `json:"value"`
}

// ArcValue is an atomic per-arc edit; the meaning of (A, B) depends on the
// list it appears in (source→reflector or reflector→sink).
type ArcValue struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Value float64 `json:"value"`
}

// Empty reports whether the delta edits nothing.
func (d *Delta) Empty() bool {
	return d.Size() == 0
}

// Size returns the number of atomic edits in the delta.
func (d *Delta) Size() int {
	return len(d.SetThreshold) + len(d.SetStream) + len(d.SetFanout) + len(d.ScaleReflectorCost) +
		len(d.ScaleSrcRefCost) + len(d.ScaleRefSinkCost) +
		len(d.SetSrcRefLoss) + len(d.SetRefSinkLoss) +
		len(d.ScaleSrcRefLoss) + len(d.ScaleRefSinkLoss)
}

// Validate checks every edit against the instance's dimensions and value
// ranges without applying anything.
func (d *Delta) Validate(in *Instance) error {
	S, R, D := in.Dims()
	for _, e := range d.SetThreshold {
		if e.Sink < 0 || e.Sink >= D {
			return fmt.Errorf("netmodel: delta %q: threshold edit for unknown sink %d", d.Note, e.Sink)
		}
		if e.Value < 0 || e.Value >= 1 || math.IsNaN(e.Value) {
			return fmt.Errorf("netmodel: delta %q: threshold %g for sink %d outside [0,1)", d.Note, e.Value, e.Sink)
		}
	}
	for _, e := range d.SetStream {
		if e.Sink < 0 || e.Sink >= in.NumViewers() {
			return fmt.Errorf("netmodel: delta %q: stream edit for unknown sink %d", d.Note, e.Sink)
		}
		if e.Stream < 0 || e.Stream >= S {
			return fmt.Errorf("netmodel: delta %q: stream edit for unknown stream %d", d.Note, e.Stream)
		}
		if in.FindUnit(e.Sink, e.Stream) < 0 {
			return fmt.Errorf("netmodel: delta %q: sink %d has no slot for stream %d", d.Note, e.Sink, e.Stream)
		}
		if e.Value < 0 || e.Value >= 1 || math.IsNaN(e.Value) {
			return fmt.Errorf("netmodel: delta %q: threshold %g for sink %d stream %d outside [0,1)", d.Note, e.Value, e.Sink, e.Stream)
		}
	}
	for _, e := range d.SetFanout {
		if e.Ref < 0 || e.Ref >= R {
			return fmt.Errorf("netmodel: delta %q: fanout edit for unknown reflector %d", d.Note, e.Ref)
		}
		if e.Value < 0 || math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return fmt.Errorf("netmodel: delta %q: bad fanout %g for reflector %d", d.Note, e.Value, e.Ref)
		}
	}
	for _, e := range d.ScaleReflectorCost {
		if e.Ref < 0 || e.Ref >= R {
			return fmt.Errorf("netmodel: delta %q: cost edit for unknown reflector %d", d.Note, e.Ref)
		}
		if e.Value < 0 || math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return fmt.Errorf("netmodel: delta %q: bad cost factor %g for reflector %d", d.Note, e.Value, e.Ref)
		}
	}
	check := func(list []ArcValue, rows, cols int, kind string, isProb, isSet bool) error {
		for _, e := range list {
			if e.A < 0 || e.A >= rows || e.B < 0 || e.B >= cols {
				return fmt.Errorf("netmodel: delta %q: %s edit for unknown arc (%d,%d)", d.Note, kind, e.A, e.B)
			}
			if math.IsNaN(e.Value) || e.Value < 0 {
				return fmt.Errorf("netmodel: delta %q: bad %s value %g at (%d,%d)", d.Note, kind, e.Value, e.A, e.B)
			}
			if isProb && isSet && e.Value > 1 {
				return fmt.Errorf("netmodel: delta %q: %s probability %g at (%d,%d) outside [0,1]", d.Note, kind, e.Value, e.A, e.B)
			}
			if math.IsInf(e.Value, 0) {
				return fmt.Errorf("netmodel: delta %q: infinite %s value at (%d,%d)", d.Note, kind, e.A, e.B)
			}
		}
		return nil
	}
	if err := check(d.ScaleSrcRefCost, S, R, "src-ref cost", false, false); err != nil {
		return err
	}
	if err := check(d.ScaleRefSinkCost, R, D, "ref-sink cost", false, false); err != nil {
		return err
	}
	if err := check(d.SetSrcRefLoss, S, R, "src-ref loss", true, true); err != nil {
		return err
	}
	if err := check(d.SetRefSinkLoss, R, D, "ref-sink loss", true, true); err != nil {
		return err
	}
	if err := check(d.ScaleSrcRefLoss, S, R, "src-ref loss", true, false); err != nil {
		return err
	}
	return check(d.ScaleRefSinkLoss, R, D, "ref-sink loss", true, false)
}

// Apply validates the delta, applies it to the instance in place, and
// returns the dirty set the edits touched — the currency the incremental LP
// rebuild (lpmodel.Patcher) consumes instead of rescanning the instance. On
// error the instance is untouched and the dirty set is nil. Scaled loss
// probabilities saturate at 1.
//
// The report lists every edit, including ones that happened to rewrite the
// value already present (re-patching is idempotent); what it guarantees is
// the converse — every cell the delta changed is listed.
func (d *Delta) Apply(in *Instance) (*DirtySet, error) {
	if err := d.Validate(in); err != nil {
		return nil, err
	}
	ds := &DirtySet{}
	for _, e := range d.SetThreshold {
		in.Threshold[e.Sink] = e.Value
		ds.SinkDemand = append(ds.SinkDemand, e.Sink)
	}
	for _, e := range d.SetStream {
		j := in.FindUnit(e.Sink, e.Stream)
		in.Threshold[j] = e.Value
		ds.SinkDemand = append(ds.SinkDemand, j)
	}
	for _, e := range d.SetFanout {
		in.Fanout[e.Ref] = e.Value
		ds.Fanout = append(ds.Fanout, e.Ref)
	}
	for _, e := range d.ScaleReflectorCost {
		in.ReflectorCost[e.Ref] = saturateCost(in.ReflectorCost[e.Ref] * e.Value)
		ds.ReflectorCost = append(ds.ReflectorCost, e.Ref)
	}
	for _, e := range d.ScaleSrcRefCost {
		in.SrcRefCost[e.A][e.B] = saturateCost(in.SrcRefCost[e.A][e.B] * e.Value)
		ds.SrcRefCost = append(ds.SrcRefCost, Arc{A: e.A, B: e.B})
	}
	for _, e := range d.ScaleRefSinkCost {
		in.RefSinkCost[e.A][e.B] = saturateCost(in.RefSinkCost[e.A][e.B] * e.Value)
		ds.RefSinkCost = append(ds.RefSinkCost, Arc{A: e.A, B: e.B})
	}
	for _, e := range d.SetSrcRefLoss {
		in.SrcRefLoss[e.A][e.B] = e.Value
		ds.SrcRefLoss = append(ds.SrcRefLoss, Arc{A: e.A, B: e.B})
	}
	for _, e := range d.SetRefSinkLoss {
		in.RefSinkLoss[e.A][e.B] = e.Value
		ds.RefSinkLoss = append(ds.RefSinkLoss, Arc{A: e.A, B: e.B})
	}
	for _, e := range d.ScaleSrcRefLoss {
		in.SrcRefLoss[e.A][e.B] = saturate1(in.SrcRefLoss[e.A][e.B] * e.Value)
		ds.SrcRefLoss = append(ds.SrcRefLoss, Arc{A: e.A, B: e.B})
	}
	for _, e := range d.ScaleRefSinkLoss {
		in.RefSinkLoss[e.A][e.B] = saturate1(in.RefSinkLoss[e.A][e.B] * e.Value)
		ds.RefSinkLoss = append(ds.RefSinkLoss, Arc{A: e.A, B: e.B})
	}
	return ds, nil
}

func saturate1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// saturateCost caps scaled costs at MaxFloat64. Two large scale factors on
// the same cell within one delta can overflow a finite cost to +Inf, and a
// later ×0 edit would then turn it into NaN — an instance no solver can
// price. Saturating keeps repeated Apply closed over valid instances, which
// FuzzDeltaApply asserts.
func saturateCost(v float64) float64 {
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	return v
}
