package netmodel

// Arc names one (A, B) cell of a source→reflector or reflector→sink matrix;
// the meaning of the pair follows the DirtySet field it appears in.
type Arc struct {
	A int `json:"a"`
	B int `json:"b"`
}

// DirtySet reports which parts of an Instance a mutation touched, in LP
// terms: it is the contract between the churn surface (Delta.Apply, the
// stickiness bias of core.Reoptimize) and the incremental LP rebuild
// (lpmodel.Patcher), which translates each category into the matrix, bound,
// rhs, and objective cells it must refresh instead of rebuilding the whole
// model. Entries are a SUPERSET of what actually changed: an edit that
// happens to write the value already present is still listed (re-patching is
// idempotent), but an actual change MUST be listed — a mutation the set
// omits leaves a patched LP stale, which the golden equivalence tests lock
// out for the delta flow.
//
// Entries may repeat; consumers treat the lists as sets.
type DirtySet struct {
	// SinkDemand lists sinks whose Threshold changed: their covering row's
	// rhs (the demand W_j) and every capped weight in the row move.
	SinkDemand []int `json:"sink_demand,omitempty"`
	// Fanout lists reflectors whose Fanout changed: the -F_i coefficients
	// of constraint (3) and the per-commodity cutting planes (4).
	Fanout []int `json:"fanout,omitempty"`
	// ReflectorCost lists reflectors whose build cost changed (z objective).
	ReflectorCost []int `json:"reflector_cost,omitempty"`
	// SrcRefCost lists (source, reflector) arcs whose cost changed
	// (y objective); RefSinkCost lists (reflector, sink) arcs (x objective).
	SrcRefCost  []Arc `json:"src_ref_cost,omitempty"`
	RefSinkCost []Arc `json:"ref_sink_cost,omitempty"`
	// SrcRefLoss lists (source, reflector) arcs whose loss changed: the
	// capped weight of every sink of that commodity moves at that
	// reflector. RefSinkLoss lists (reflector, sink) arcs: one capped
	// weight moves.
	SrcRefLoss  []Arc `json:"src_ref_loss,omitempty"`
	RefSinkLoss []Arc `json:"ref_sink_loss,omitempty"`
	// SinkWeight lists demand units whose UnitWeight changed: their load
	// coefficient in constraint (3) and the commodity cutting plane (4)
	// moves at every reflector. Only the aggregation layer (internal/agg)
	// produces weighted instances, so flat delta flows never emit it.
	SinkWeight []int `json:"sink_weight,omitempty"`
}

// Empty reports whether the set lists nothing.
func (d *DirtySet) Empty() bool {
	return d == nil || d.Size() == 0
}

// Size returns the number of listed entries (with multiplicity).
func (d *DirtySet) Size() int {
	if d == nil {
		return 0
	}
	return len(d.SinkDemand) + len(d.Fanout) + len(d.ReflectorCost) +
		len(d.SrcRefCost) + len(d.RefSinkCost) + len(d.SrcRefLoss) + len(d.RefSinkLoss) +
		len(d.SinkWeight)
}

// Merge appends every entry of o into d (set semantics make duplicates
// harmless). A nil o is a no-op.
func (d *DirtySet) Merge(o *DirtySet) {
	if o == nil {
		return
	}
	d.SinkDemand = append(d.SinkDemand, o.SinkDemand...)
	d.Fanout = append(d.Fanout, o.Fanout...)
	d.ReflectorCost = append(d.ReflectorCost, o.ReflectorCost...)
	d.SrcRefCost = append(d.SrcRefCost, o.SrcRefCost...)
	d.RefSinkCost = append(d.RefSinkCost, o.RefSinkCost...)
	d.SrcRefLoss = append(d.SrcRefLoss, o.SrcRefLoss...)
	d.RefSinkLoss = append(d.RefSinkLoss, o.RefSinkLoss...)
	d.SinkWeight = append(d.SinkWeight, o.SinkWeight...)
}

// DiffDesigns returns the cost cells whose stickiness discount flips when
// the deployed design moves from prev to next: Build flips touch the z
// objective, Ingest flips the y objective, Serve flips the x objective. A
// nil design means "no deployment" (nothing discounted), so the first
// deployment dirties exactly its own arcs. Both designs must be shaped for
// the same instance. Returns nil when nothing flips.
//
// core.Session feeds the result into the epoch's DirtySet so the Patcher
// refreshes the biased objective without rescanning every cost.
func DiffDesigns(prev, next *Design) *DirtySet {
	if prev == nil && next == nil {
		return nil
	}
	ds := &DirtySet{}
	builds := func(d *Design, i int) bool { return d != nil && d.Build[i] }
	ingests := func(d *Design, k, i int) bool { return d != nil && d.Ingest[k][i] }
	serves := func(d *Design, i, j int) bool { return d != nil && d.Serve[i][j] }

	ref := prev
	if ref == nil {
		ref = next
	}
	for i := range ref.Build {
		if builds(prev, i) != builds(next, i) {
			ds.ReflectorCost = append(ds.ReflectorCost, i)
		}
	}
	for k := range ref.Ingest {
		for i := range ref.Ingest[k] {
			if ingests(prev, k, i) != ingests(next, k, i) {
				ds.SrcRefCost = append(ds.SrcRefCost, Arc{A: k, B: i})
			}
		}
	}
	for i := range ref.Serve {
		for j := range ref.Serve[i] {
			if serves(prev, i, j) != serves(next, i, j) {
				ds.RefSinkCost = append(ds.RefSinkCost, Arc{A: i, B: j})
			}
		}
	}
	if ds.Empty() {
		return nil
	}
	return ds
}
