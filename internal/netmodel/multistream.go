package netmodel

// Multi-stream sinks. §2 of the paper assumes WLOG that every sink demands
// exactly one stream — "a sink wanting several streams is split into one
// copy per stream". That trick is sound for the static LP but wrong for
// everything built on top of it: churn accounting, stickiness, SLO windows
// and shard partitions all acted on the copies instead of the real sink.
//
// This file makes the grouping first-class. The instance's sink axis keeps
// its meaning as DEMAND UNITS — one (sink, stream) subscription per column,
// exactly the paper's copies, so every solver stage keeps its shape — and
// SinkOf records which physical sink (a "viewer" below, to keep the two
// axes unambiguous) each unit belongs to. A multi-stream sink is then a
// contiguous run of units sharing a SinkOf value: its stream demand set.
// Layers that care about real sinks read the grouping:
//
//   - lpmodel adds shared physical-arc capacity rows per (reflector,
//     viewer) — coupling the §6.3 EdgeCap across a sink's streams, which
//     the copy-split cannot express;
//   - shard partitions viewers atomically, so one sink's streams never
//     straddle shards;
//   - live/core report fractional viewer churn (a 3-stream sink switching
//     one stream churns 1/3 of a viewer, not a whole one) and viewer-level
//     audit counts.
//
// SplitStreams is the WLOG made executable: it forgets the grouping,
// producing the paper's copy-split instance. The golden tests assert the
// native LP equals the copy-split LP cell for cell (they differ only by the
// shared-capacity rows, absent without EdgeCap), so the paper's reduction
// holds as a tested theorem rather than a modeling assumption.

import (
	"fmt"
	"sort"
)

// MultiStream reports whether the instance carries a sink grouping (some
// viewer may demand several streams). Without one, every demand unit is its
// own viewer and all viewer-level accessors degrade to the unit view.
func (in *Instance) MultiStream() bool { return in.SinkOf != nil }

// NumViewers returns the number of physical sinks (viewers). Equal to
// NumSinks when the instance has no grouping.
func (in *Instance) NumViewers() int {
	if in.SinkOf == nil {
		return in.NumSinks
	}
	if len(in.SinkOf) == 0 {
		return 0
	}
	return in.SinkOf[len(in.SinkOf)-1] + 1
}

// Viewer returns the physical sink that demand unit j belongs to.
func (in *Instance) Viewer(j int) int {
	if in.SinkOf == nil {
		return j
	}
	return in.SinkOf[j]
}

// ViewerRange returns the half-open unit range [lo, hi) of viewer g
// (Validate guarantees a viewer's units are contiguous and ascending).
func (in *Instance) ViewerRange(g int) (lo, hi int) {
	if in.SinkOf == nil {
		return g, g + 1
	}
	lo = sort.SearchInts(in.SinkOf, g)
	hi = sort.SearchInts(in.SinkOf, g+1)
	return lo, hi
}

// ViewerUnits returns, per viewer, the demand units that belong to it.
func (in *Instance) ViewerUnits() [][]int {
	out := make([][]int, in.NumViewers())
	for j := 0; j < in.NumSinks; j++ {
		g := in.Viewer(j)
		out[g] = append(out[g], j)
	}
	return out
}

// FindUnit returns the demand unit of viewer g subscribing to stream k, or
// -1 when g has no slot for k. Validate guarantees at most one such unit.
func (in *Instance) FindUnit(g, k int) int {
	lo, hi := in.ViewerRange(g)
	for j := lo; j < hi; j++ {
		if in.Commodity[j] == k {
			return j
		}
	}
	return -1
}

// validateSinkOf checks the grouping invariants: one entry per demand unit,
// dense contiguous viewer ids (nondecreasing, starting at 0, steps of at
// most 1 — so a viewer's units form one ascending run), distinct streams
// within a viewer, and §6.3 edge capacities constant across a viewer's
// units (the capacity is a property of the physical reflector→sink arc, not
// of any one stream flowing over it).
func (in *Instance) validateSinkOf() error {
	if in.SinkOf == nil {
		return nil
	}
	D := in.NumSinks
	if len(in.SinkOf) != D {
		return fmt.Errorf("netmodel: SinkOf has %d entries, want %d", len(in.SinkOf), D)
	}
	if in.SinkOf[0] != 0 {
		return fmt.Errorf("netmodel: SinkOf must start at viewer 0, got %d", in.SinkOf[0])
	}
	for j := 1; j < D; j++ {
		if step := in.SinkOf[j] - in.SinkOf[j-1]; step < 0 || step > 1 {
			return fmt.Errorf("netmodel: SinkOf not contiguous at unit %d (%d after %d)", j, in.SinkOf[j], in.SinkOf[j-1])
		}
	}
	lo := 0
	for j := 1; j <= D; j++ {
		if j < D && in.SinkOf[j] == in.SinkOf[lo] {
			continue
		}
		for a := lo; a < j; a++ {
			for b := a + 1; b < j; b++ {
				if in.Commodity[a] == in.Commodity[b] {
					return fmt.Errorf("netmodel: viewer %d subscribes to stream %d twice (units %d, %d)",
						in.SinkOf[lo], in.Commodity[a], a, b)
				}
			}
		}
		if in.EdgeCap != nil {
			for i := range in.EdgeCap {
				for a := lo + 1; a < j; a++ {
					if in.EdgeCap[i][a] != in.EdgeCap[i][lo] {
						return fmt.Errorf("netmodel: viewer %d has differing edge caps %g vs %g at reflector %d (units %d, %d)",
							in.SinkOf[lo], in.EdgeCap[i][lo], in.EdgeCap[i][a], i, lo, a)
					}
				}
			}
		}
		lo = j
	}
	return nil
}

// SplitStreams applies the paper's §2 WLOG in executable form: it returns a
// copy of the instance with the sink grouping forgotten, so every demand
// unit becomes an independent single-stream sink — exactly the copy-split
// instance the paper's LP is stated over. Unit indices are unchanged, so a
// native solution and a copy-split solution are comparable cell for cell.
//
// The transform is lossless for the LP except for one thing the copies
// cannot express: the shared §6.3 capacity of a physical reflector→sink arc
// (each copy gets its own private cap). The golden equivalence tests pin
// native ≡ split on instances without edge caps, and pin the strict gap on
// instances where the shared cap binds.
func (in *Instance) SplitStreams() *Instance {
	out := in.Clone()
	out.SinkOf = nil
	if in.MultiStream() {
		out.Name = in.Name + "/split"
	}
	return out
}

// ViewerChurn compares two designs on the same instance and reports churn
// at stream and viewer granularity: streams counts demand units whose
// serving reflector set changed, and viewers sums, per viewer, the CHANGED
// FRACTION of its relevant units — a 3-stream sink that re-pulls one stream
// contributes 1/3, where the copy-split view would have charged a full
// viewer. A unit is relevant when it is actively subscribed (positive
// threshold) or its service changed (covers full leaves, whose thresholds
// are already 0). A nil design serves nothing.
func ViewerChurn(in *Instance, prev, next *Design) (viewers float64, streams int) {
	D := in.NumSinks
	changed := make([]bool, D)
	serve := func(d *Design, i, j int) bool { return d != nil && d.Serve[i][j] }
	nRef := in.NumReflectors
	for i := 0; i < nRef; i++ {
		for j := 0; j < D; j++ {
			if serve(prev, i, j) != serve(next, i, j) {
				changed[j] = true
			}
		}
	}
	lo := 0
	for j := 0; j <= D; j++ {
		if j < D && in.Viewer(j) == in.Viewer(lo) {
			continue
		}
		ch, rel := 0, 0
		for u := lo; u < j; u++ {
			if changed[u] {
				ch++
				streams++
			}
			if changed[u] || in.Threshold[u] > 0 {
				rel++
			}
		}
		if ch > 0 {
			viewers += float64(ch) / float64(rel)
		}
		lo = j
	}
	return viewers, streams
}

// ActiveViewers counts viewers with at least one active subscription.
func (in *Instance) ActiveViewers() int {
	n, lo := 0, 0
	D := in.NumSinks
	for j := 0; j <= D; j++ {
		if j < D && in.Viewer(j) == in.Viewer(lo) {
			continue
		}
		for u := lo; u < j; u++ {
			if in.Threshold[u] > 0 {
				n++
				break
			}
		}
		lo = j
	}
	return n
}
