package netmodel_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gen"
	"repro/internal/netmodel"
)

// multiInstance returns a small native multi-stream instance: 12 viewers ×
// 2 streams = 24 demand units on the clustered topology.
func multiInstance(t testing.TB) *netmodel.Instance {
	t.Helper()
	cc := gen.DefaultClustered(3, 2, 2, 6)
	cc.StreamsPerSink = 2
	in := gen.Clustered(cc, 7)
	if err := in.Validate(); err != nil {
		t.Fatalf("generated multi-stream instance invalid: %v", err)
	}
	if !in.MultiStream() || in.NumSinks != 24 || in.NumViewers() != 12 {
		t.Fatalf("unexpected shape: units=%d viewers=%d", in.NumSinks, in.NumViewers())
	}
	return in
}

func TestSinkOfValidation(t *testing.T) {
	base := multiInstance(t)
	cases := []struct {
		name   string
		mutate func(*netmodel.Instance)
	}{
		{"wrong length", func(in *netmodel.Instance) { in.SinkOf = in.SinkOf[:len(in.SinkOf)-1] }},
		{"not starting at 0", func(in *netmodel.Instance) {
			for j := range in.SinkOf {
				in.SinkOf[j]++
			}
		}},
		{"gap in viewer ids", func(in *netmodel.Instance) {
			for j := range in.SinkOf {
				if in.SinkOf[j] >= 5 {
					in.SinkOf[j] += 2
				}
			}
		}},
		{"non-contiguous group", func(in *netmodel.Instance) { in.SinkOf[1], in.SinkOf[2] = in.SinkOf[2], in.SinkOf[1] }},
		{"duplicate stream in a group", func(in *netmodel.Instance) { in.Commodity[1] = in.Commodity[0] }},
		{"differing edge caps within a group", func(in *netmodel.Instance) {
			in.EdgeCap = make([][]float64, in.NumReflectors)
			for i := range in.EdgeCap {
				in.EdgeCap[i] = make([]float64, in.NumSinks)
				for j := range in.EdgeCap[i] {
					in.EdgeCap[i][j] = 2
				}
			}
			in.EdgeCap[0][1] = 3 // unit 1 shares viewer 0 with unit 0
		}},
	}
	for _, tc := range cases {
		in := base.Clone()
		tc.mutate(in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken grouping", tc.name)
		}
	}
}

func TestSplitStreamsIsTheWLOG(t *testing.T) {
	in := multiInstance(t)
	split := in.SplitStreams()
	if split.MultiStream() {
		t.Fatal("split instance still grouped")
	}
	if err := split.Validate(); err != nil {
		t.Fatalf("split instance invalid: %v", err)
	}
	if split.NumViewers() != in.NumSinks {
		t.Fatalf("split has %d viewers, want one per unit (%d)", split.NumViewers(), in.NumSinks)
	}
	// Unit indices — and every per-unit array — are untouched, so native
	// and copy-split solutions are comparable cell for cell.
	for j := 0; j < in.NumSinks; j++ {
		if split.Commodity[j] != in.Commodity[j] || split.Threshold[j] != in.Threshold[j] {
			t.Fatalf("split changed unit %d", j)
		}
	}
	// And the original is untouched (SplitStreams clones).
	if !in.MultiStream() {
		t.Fatal("SplitStreams mutated its receiver")
	}
}

// TestViewerChurnFractional is the acceptance-criterion lock: a one-stream
// switch on a 3-stream sink reports 1/3 of a viewer, not a full one.
func TestViewerChurnFractional(t *testing.T) {
	in := netmodel.NewZeroInstance(3, 2, 3)
	in.SinkOf = []int{0, 0, 0}
	in.Commodity = []int{0, 1, 2}
	for j := range in.Threshold {
		in.Threshold[j] = 0.9
	}
	for i := range in.Fanout {
		in.Fanout[i] = 10
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	serveAll := func(i int) *netmodel.Design {
		d := netmodel.NewDesign(in)
		for j := 0; j < 3; j++ {
			d.Serve[i][j] = true
		}
		d.Normalize(in)
		return d
	}
	prev := serveAll(0)
	next := serveAll(0)
	next.Serve[0][2], next.Serve[1][2] = false, true // one stream re-pulled
	next.Normalize(in)

	viewers, streams := netmodel.ViewerChurn(in, prev, next)
	if streams != 1 {
		t.Fatalf("stream churn = %d, want 1", streams)
	}
	if viewers != 1.0/3.0 {
		t.Fatalf("viewer churn = %g, want 1/3", viewers)
	}
	// The copy-split view (grouping forgotten) charges a full viewer.
	split := in.SplitStreams()
	sv, _ := netmodel.ViewerChurn(split, prev, next)
	if sv != 1 {
		t.Fatalf("copy-split viewer churn = %g, want 1", sv)
	}
	// A full re-pull of every stream is a whole viewer either way.
	viewers, streams = netmodel.ViewerChurn(in, prev, serveAll(1))
	if viewers != 1 || streams != 3 {
		t.Fatalf("full switch: viewers=%g streams=%d, want 1 and 3", viewers, streams)
	}
	// No change, no churn.
	if v, s := netmodel.ViewerChurn(in, prev, prev.Clone()); v != 0 || s != 0 {
		t.Fatalf("identical designs churned: viewers=%g streams=%d", v, s)
	}
}

func TestSetStreamDelta(t *testing.T) {
	in := multiInstance(t)
	v := 3
	lo, hi := in.ViewerRange(v)
	if hi-lo != 2 {
		t.Fatalf("viewer %d has %d units, want 2", v, hi-lo)
	}
	k := in.Commodity[lo+1]
	d := netmodel.Delta{
		Note:      "unsubscribe then resubscribe",
		SetStream: []netmodel.StreamValue{{Sink: v, Stream: k, Value: 0}},
	}
	ds, err := d.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if in.Threshold[lo+1] != 0 {
		t.Fatalf("unsubscribe did not zero the slot threshold")
	}
	if len(ds.SinkDemand) != 1 || ds.SinkDemand[0] != lo+1 {
		t.Fatalf("dirty set %v, want the unit %d", ds.SinkDemand, lo+1)
	}
	d = netmodel.Delta{SetStream: []netmodel.StreamValue{{Sink: v, Stream: k, Value: 0.95}}}
	if _, err := d.Apply(in); err != nil {
		t.Fatal(err)
	}
	if in.Threshold[lo+1] != 0.95 {
		t.Fatalf("subscribe did not set the slot threshold")
	}

	// A viewer can only toggle streams it was built with.
	var missing int
	for k := 0; k < in.NumSources; k++ {
		if in.FindUnit(v, k) < 0 {
			missing = k
			break
		}
	}
	bad := netmodel.Delta{SetStream: []netmodel.StreamValue{{Sink: v, Stream: missing, Value: 0.9}}}
	snapshot := in.Clone()
	if _, err := bad.Apply(in); err == nil {
		t.Fatal("Apply accepted a stream the viewer has no slot for")
	}
	a, _ := json.Marshal(snapshot)
	b, _ := json.Marshal(in)
	if !bytes.Equal(a, b) {
		t.Fatal("rejected delta mutated the instance")
	}
}

func TestMultiStreamJSONRoundTrip(t *testing.T) {
	in := multiInstance(t)
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := netmodel.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.MultiStream() || back.NumViewers() != in.NumViewers() {
		t.Fatalf("grouping lost in round trip: viewers=%d want %d", back.NumViewers(), in.NumViewers())
	}
	for j, g := range in.SinkOf {
		if back.SinkOf[j] != g {
			t.Fatalf("SinkOf[%d] = %d after round trip, want %d", j, back.SinkOf[j], g)
		}
	}
}

func TestActiveViewers(t *testing.T) {
	in := multiInstance(t)
	if got := in.ActiveViewers(); got != 12 {
		t.Fatalf("ActiveViewers = %d, want 12", got)
	}
	lo, hi := in.ViewerRange(0)
	for j := lo; j < hi; j++ {
		in.Threshold[j] = 0 // viewer 0 fully leaves
	}
	lo, _ = in.ViewerRange(1)
	in.Threshold[lo] = 0 // viewer 1 drops one of two streams: still active
	if got := in.ActiveViewers(); got != 11 {
		t.Fatalf("ActiveViewers = %d after one full leave, want 11", got)
	}
}
